// Ablation bench (beyond the paper's tables): isolates the design
// decisions documented in DESIGN.md / README by re-running the T = 24 ms
// search with each mechanism disabled or swapped:
//
//   A. full LightNAS configuration (reference);
//   B. lambda clamped at zero (KKT inequality instead of the paper's
//      equality) — the search never climbs up to T from below;
//   C. no augmented-Lagrangian damping (mu = 0, the paper's literal
//      Eq 10) — same fixed point, more oscillation at the end;
//   D. LUT predictor inside the search loop instead of the MLP — the
//      ~10 ms systematic bias makes the engine steer against a wrong
//      target unless the LUT is debiased;
//   E. no best-from-trace selection — take the literal last epoch.

#include <cstdio>
#include <iostream>

#include "common.hpp"
#include "core/lightnas.hpp"
#include "predictors/lut_predictor.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace lightnas;

namespace {

struct Variant {
  std::string name;
  core::LightNasConfig config;
  const predictors::HardwarePredictor* predictor = nullptr;
};

}  // namespace

int main() {
  bench::banner("ablation_lightnas",
                "design-choice ablations at T = 24 ms (extension; not a "
                "paper artifact)");
  bench::Pipeline pipeline;
  auto mlp = bench::train_latency_predictor(pipeline);
  const predictors::LutPredictor lut(pipeline.space, pipeline.device);

  nn::SyntheticTaskConfig task_config;
  task_config.train_size = bench::scaled(16384, 4096);
  const nn::SyntheticTask task = nn::make_synthetic_task(task_config);

  core::LightNasConfig base;
  base.target = 24.0;
  if (bench::fast_mode()) {
    base.epochs = 24;
    base.warmup_epochs = 8;
    base.w_steps_per_epoch = 24;
    base.alpha_steps_per_epoch = 16;
  }

  std::vector<Variant> variants;
  variants.push_back({"A. full (reference)", base, mlp.get()});
  {
    // B: clamp is not exposed on the config (the paper's equality view
    // is the default); emulate by starting lambda high and using a tiny
    // rate, which can only decay toward — never below — zero pressure.
    // Instead we approximate the inequality regime by disabling the
    // negative-lambda reward: initialize at 0 with a tiny rate so lambda
    // stays ~0 whenever LAT < T.
    core::LightNasConfig c = base;
    c.lambda_lr = 1e-6;
    variants.push_back({"B. lambda frozen at ~0 (no ascent)", c, mlp.get()});
  }
  {
    core::LightNasConfig c = base;
    c.penalty_mu = 0.0;
    variants.push_back({"C. no quadratic damping (mu=0)", c, mlp.get()});
  }
  variants.push_back({"D. LUT predictor in the loop", base, &lut});
  {
    core::LightNasConfig c = base;
    c.select_best_from_trace = false;
    variants.push_back({"E. last-epoch selection", c, mlp.get()});
  }

  util::Table table({"variant", "pred cost (ms)", "measured (ms)",
                     "|measured-24|/24 (%)", "final lambda"});
  for (const Variant& variant : variants) {
    std::vector<double> measured;
    double pred = 0.0, lambda = 0.0;
    for (std::uint64_t seed : {3ull, 9ull}) {
      core::LightNasConfig config = variant.config;
      config.seed = seed;
      core::LightNas engine(pipeline.space, *variant.predictor, task,
                            core::SupernetConfig{}, config);
      const core::SearchResult result = engine.search();
      measured.push_back(pipeline.cost().network_latency_ms(
          pipeline.space, result.architecture));
      pred = result.final_predicted_cost;
      lambda = result.final_lambda;
    }
    const double mean_measured = util::mean(measured);
    table.add_row({variant.name, util::fmt_double(pred, 2),
                   util::fmt_double(mean_measured, 2),
                   util::fmt_double(
                       std::abs(mean_measured - 24.0) / 24.0 * 100.0, 1),
                   util::fmt_double(lambda, 3)});
    std::printf("%s done\n", variant.name.c_str());
  }
  std::printf("\n");
  table.print(std::cout);

  std::printf(
      "\nExpected: A tracks the target best. B cannot rise to T from the\n"
      "fast initialization (constraint mechanism disabled). C reaches T\n"
      "on average but with a worse final-epoch gap. D inherits the LUT's\n"
      "bias: it steers the *predicted* cost to T, so the measured cost\n"
      "lands ~bias below it. E is A without the oscillation guard.\n");
  return 0;
}
