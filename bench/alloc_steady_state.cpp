// Zero-allocation steady state: after a one-train warmup of the tensor
// pool, further same-shape training must run entirely out of recycled
// buffers and recycled graph nodes.
//
// Gates (exit 1 on violation):
//  - Zero-miss (always enforced): a second predictor training run under
//    a warmed pool adds zero buffer misses and zero node misses; a
//    search run stops adding buffer misses after its first post-warmup
//    epochs (the last quarter of epochs must add none).
//  - Bit-identity (always enforced): search trajectories and trained
//    predictor weights are bit-identical with pooling on or off, at 1
//    and 4 GEMM threads.
//  - Throughput (full mode only): steady-state pooled *search* steps
//    must be >= 1.3x the steps/s of the pooling-disabled arm at the
//    paper's small-batch operating point (batch 8), where allocator and
//    graph-node churn — not GEMM arithmetic — dominate a step. The
//    pooling-off arm was measured against a build of the pre-pool
//    commit at identical workloads and matches it, so in-binary
//    pooled-vs-off is a faithful proxy for "vs the previous engine";
//    the first-k-block assign peel in the GEMM kernels speeds the off
//    arm up slightly too, making the proxy conservative. Predictor
//    training throughput is reported as well but not gated: its step
//    cost is dominated by O(params) weight-gradient GEMMs and Adam
//    updates, so buffer recycling is neutral-to-mildly-positive there
//    (~1.05-1.10x) — see EXPERIMENTS.md. Skipped in `--smoke` /
//    LIGHTNAS_FAST runs, mirroring train_throughput.
//
// Results are also emitted machine-readably to BENCH_alloc.json.

#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "common.hpp"
#include "core/lightnas.hpp"
#include "hw/cost_model.hpp"
#include "io/json.hpp"
#include "nn/parallel.hpp"
#include "nn/pool.hpp"
#include "predictors/mlp_predictor.hpp"
#include "util/table.hpp"

using namespace lightnas;

namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::size_t peak_rss_bytes() {
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  // ru_maxrss is KiB on Linux.
  return static_cast<std::size_t>(usage.ru_maxrss) * 1024;
}

predictors::MeasurementDataset make_dataset(const space::SearchSpace& space,
                                            std::size_t count) {
  const hw::CostModel model(hw::DeviceProfile::jetson_xavier_maxn(), 8);
  util::Rng rng(1234);
  predictors::MeasurementDataset data;
  data.architectures.reserve(count);
  data.encodings.reserve(count);
  data.targets.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    space::Architecture arch = space.random_architecture(rng);
    data.encodings.push_back(arch.encode_one_hot(space.num_ops()));
    data.targets.push_back(model.network_latency_ms(space, arch));
    data.architectures.push_back(std::move(arch));
  }
  return data;
}

struct TrainRun {
  double seconds = 0.0;
  predictors::MlpPredictor::State state;
};

TrainRun run_training(const space::SearchSpace& space,
                      const predictors::MeasurementDataset& data,
                      std::size_t epochs, std::size_t batch, bool pooled,
                      const nn::ParallelContext* parallel) {
  predictors::MlpPredictor predictor(space.num_layers(), space.num_ops(),
                                     /*seed=*/7);
  predictors::MlpTrainConfig config;
  config.epochs = epochs;
  config.batch_size = batch;
  config.pool_tensors = pooled;
  config.parallel = parallel;
  const double start = now_seconds();
  predictor.train(data, config);
  TrainRun run;
  run.seconds = now_seconds() - start;
  run.state = predictor.export_state();
  return run;
}

bool states_identical(const predictors::MlpPredictor::State& a,
                      const predictors::MlpPredictor::State& b) {
  if (a.tensors.size() != b.tensors.size()) return false;
  for (std::size_t i = 0; i < a.tensors.size(); ++i) {
    if (a.tensors[i] != b.tensors[i]) return false;  // exact float equality
  }
  return a.target_mean == b.target_mean && a.target_std == b.target_std;
}

core::LightNasConfig search_config(bool smoke, bool pooled,
                                   const nn::ParallelContext* parallel) {
  core::LightNasConfig config;
  config.seed = 3;
  config.epochs = smoke ? 4 : 8;
  config.warmup_epochs = 1;
  config.w_steps_per_epoch = smoke ? 8 : 16;
  config.alpha_steps_per_epoch = smoke ? 4 : 8;
  config.batch_size = smoke ? 16 : 32;
  config.target = 24.0;
  config.pool_tensors = pooled;
  config.parallel = parallel;
  return config;
}

/// The throughput workload: many short search epochs at the paper's
/// embedded operating point (batch 8). Small batches keep per-step
/// tensors small, which is exactly where allocator traffic dominates a
/// step — the regime the pool is built for.
core::LightNasConfig throughput_search_config(bool pooled) {
  core::LightNasConfig config;
  config.seed = 3;
  config.epochs = 40;
  config.warmup_epochs = 1;
  config.w_steps_per_epoch = 16;
  config.alpha_steps_per_epoch = 8;
  config.batch_size = 8;
  config.target = 24.0;
  config.pool_tensors = pooled;
  return config;
}

bool search_results_identical(const core::SearchResult& a,
                              const core::SearchResult& b) {
  if (a.trace.size() != b.trace.size()) return false;
  for (std::size_t e = 0; e < a.trace.size(); ++e) {
    if (a.trace[e].derived.ops() != b.trace[e].derived.ops() ||
        a.trace[e].lambda != b.trace[e].lambda ||
        a.trace[e].predicted_cost != b.trace[e].predicted_cost ||
        a.trace[e].valid_loss != b.trace[e].valid_loss) {
      return false;
    }
  }
  return a.architecture.ops() == b.architecture.ops() &&
         a.final_predicted_cost == b.final_predicted_cost &&
         a.final_lambda == b.final_lambda;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  smoke = smoke || bench::fast_mode();

  bench::banner("alloc_steady_state",
                "pooled tensors + recycled graphs: zero-miss gate, "
                "bit-identity, steady-state throughput");

  const space::SearchSpace space = space::SearchSpace::fbnet_xavier();
  const std::size_t samples = smoke ? 768 : 4000;
  const std::size_t throughput_epochs = smoke ? 4 : 12;
  const std::size_t batch = 16;
  const std::size_t steps_per_run =
      throughput_epochs * ((samples + batch - 1) / batch);
  const predictors::MeasurementDataset data = make_dataset(space, samples);

  bool all_pass = true;

  // --- 1. zero-miss steady state: predictor training -------------------
  nn::PoolStats train_steady;
  std::uint64_t warm_tape_hits = 0;
  {
    nn::PooledScope scope(nn::PoolMode::kFresh);
    run_training(space, data, throughput_epochs, batch, true, nullptr);
    const nn::PoolStats warm = scope.pool().stats();
    run_training(space, data, throughput_epochs, batch, true, nullptr);
    train_steady = scope.pool().stats() - warm;
    warm_tape_hits = train_steady.tape_hits;
  }
  const bool train_zero_miss =
      train_steady.buffer_misses == 0 && train_steady.node_misses == 0;
  std::printf("steady-state training (warmed pool, %zu steps):\n",
              steps_per_run);
  std::printf("  buffer misses: %llu (required 0)   node misses: %llu "
              "(required 0)\n",
              static_cast<unsigned long long>(train_steady.buffer_misses),
              static_cast<unsigned long long>(train_steady.node_misses));
  std::printf("  buffer hits: %llu   tape hits: %llu   recycled: %.1f MB\n",
              static_cast<unsigned long long>(train_steady.buffer_hits),
              static_cast<unsigned long long>(train_steady.tape_hits),
              static_cast<double>(train_steady.bytes_recycled) / 1e6);
  if (!train_zero_miss) {
    std::printf("  FAIL: warmed pool still misses\n");
    all_pass = false;
  }
  if (warm_tape_hits == 0) {
    std::printf("  FAIL: no cached-tape reuse in fixed-topology training\n");
    all_pass = false;
  }

  // The predictor + task used by the search sections below.
  predictors::MlpPredictor predictor = predictors::MlpPredictor::from_state(
      run_training(space, data, smoke ? 4 : 8, 64, true, nullptr).state);
  nn::SyntheticTaskConfig task_config;
  task_config.train_size = smoke ? 512 : 2048;
  const nn::SyntheticTask task = nn::make_synthetic_task(task_config);

  // --- 2. throughput: pooled steady state vs pooling disabled ----------
  //
  // Gated workload: search steps at batch 8 (see
  // throughput_search_config). Reported workload: predictor training,
  // where the pool is neutral-to-mildly-positive because step cost is
  // O(params) GEMM/Adam arithmetic. Both arms take the best of three
  // reps; the pooled arm is warmed first so the gate measures the
  // steady state, not the bucket-discovery transient.
  double pooled_steps_per_s = 0.0;
  double unpooled_steps_per_s = 0.0;
  double train_speedup = 0.0;
  double search_pooled_steps_per_s = 0.0;
  double search_unpooled_steps_per_s = 0.0;
  double search_speedup = 0.0;
  double hit_rate = 0.0;
  bool throughput_pass = true;
  if (smoke) {
    std::printf("\nthroughput gate: SKIPPED (smoke mode)\n");
  } else {
    double unpooled_seconds = 1e300;
    for (int rep = 0; rep < 3; ++rep) {
      unpooled_seconds = std::min(
          unpooled_seconds,
          run_training(space, data, throughput_epochs, batch, false, nullptr)
              .seconds);
    }
    double pooled_seconds = 1e300;
    {
      nn::PooledScope scope(nn::PoolMode::kFresh);
      run_training(space, data, throughput_epochs, batch, true, nullptr);
      const nn::PoolStats warm = scope.pool().stats();
      for (int rep = 0; rep < 3; ++rep) {
        pooled_seconds = std::min(
            pooled_seconds,
            run_training(space, data, throughput_epochs, batch, true, nullptr)
                .seconds);
      }
      const nn::PoolStats timed = scope.pool().stats() - warm;
      hit_rate = timed.buffer_hit_rate();
    }
    pooled_steps_per_s = static_cast<double>(steps_per_run) / pooled_seconds;
    unpooled_steps_per_s =
        static_cast<double>(steps_per_run) / unpooled_seconds;
    train_speedup = pooled_steps_per_s / unpooled_steps_per_s;

    const core::LightNasConfig tp_config = throughput_search_config(true);
    const std::size_t search_steps =
        tp_config.epochs *
        (tp_config.w_steps_per_epoch + tp_config.alpha_steps_per_epoch);
    double search_unpooled_seconds = 1e300;
    for (int rep = 0; rep < 3; ++rep) {
      core::LightNas engine(space, predictor, task, core::SupernetConfig{},
                            throughput_search_config(false));
      const double start = now_seconds();
      (void)engine.search();
      search_unpooled_seconds =
          std::min(search_unpooled_seconds, now_seconds() - start);
    }
    double search_pooled_seconds = 1e300;
    {
      nn::PooledScope scope(nn::PoolMode::kFresh);
      {
        core::LightNas warm_engine(space, predictor, task,
                                   core::SupernetConfig{},
                                   throughput_search_config(true));
        (void)warm_engine.search();
      }
      for (int rep = 0; rep < 3; ++rep) {
        core::LightNas engine(space, predictor, task, core::SupernetConfig{},
                              throughput_search_config(true));
        const double start = now_seconds();
        (void)engine.search();
        search_pooled_seconds =
            std::min(search_pooled_seconds, now_seconds() - start);
      }
    }
    search_pooled_steps_per_s =
        static_cast<double>(search_steps) / search_pooled_seconds;
    search_unpooled_steps_per_s =
        static_cast<double>(search_steps) / search_unpooled_seconds;
    search_speedup = search_pooled_steps_per_s / search_unpooled_steps_per_s;

    util::Table table({"workload", "off steps/s", "pooled steps/s",
                       "speedup", "gate"});
    table.add_row({"search (batch 8)",
                   util::fmt_double(search_unpooled_steps_per_s, 1),
                   util::fmt_double(search_pooled_steps_per_s, 1),
                   util::fmt_double(search_speedup, 2), ">= 1.3x"});
    table.add_row({"training (batch " + std::to_string(batch) + ")",
                   util::fmt_double(unpooled_steps_per_s, 1),
                   util::fmt_double(pooled_steps_per_s, 1),
                   util::fmt_double(train_speedup, 2), "reported"});
    std::printf("\nsteady-state throughput (pool hit rate %.1f%%):\n",
                100.0 * hit_rate);
    table.print(std::cout);
    std::printf("search-step speedup: %.2fx (required >= 1.3x)\n",
                search_speedup);
    if (search_speedup < 1.3) {
      std::printf("FAIL: pooled search steps below 1.3x\n");
      throughput_pass = false;
      all_pass = false;
    }
  }

  // --- 3. zero-miss steady state: search epochs ------------------------
  // Sampled op choices change the activation widths step to step, so a
  // single search keeps discovering new bucket sizes for several epochs
  // (the per-epoch trace below decays fast but stochastically). The
  // steady-state claim is therefore gated on a *repeat* of the same
  // search under the warmed pool: same seed, same draws, same shapes —
  // it must not miss at all.
  std::vector<std::uint64_t> misses_by_epoch;
  nn::PoolStats search_steady;
  {
    nn::PooledScope scope(nn::PoolMode::kFresh);
    core::LightNas engine(space, predictor, task, core::SupernetConfig{},
                          search_config(smoke, true, nullptr));
    core::SearchHooks hooks;
    hooks.checkpoint_every = 1;
    hooks.on_checkpoint = [&](const core::SearchCheckpoint&) {
      misses_by_epoch.push_back(
          nn::TensorPool::global_stats().buffer_misses);
    };
    engine.search(hooks);

    const nn::PoolStats warm = scope.pool().stats();
    core::LightNas repeat(space, predictor, task, core::SupernetConfig{},
                          search_config(smoke, true, nullptr));
    repeat.search();
    search_steady = scope.pool().stats() - warm;
  }
  std::printf("\nsearch buffer misses by epoch, first run (cumulative):");
  for (const std::uint64_t m : misses_by_epoch) {
    std::printf(" %llu", static_cast<unsigned long long>(m));
  }
  std::printf("\n");
  const bool search_zero_miss =
      search_steady.buffer_misses == 0 && search_steady.node_misses == 0;
  std::printf("repeat search under warmed pool: %llu buffer misses, %llu "
              "node misses (required 0)\n",
              static_cast<unsigned long long>(search_steady.buffer_misses),
              static_cast<unsigned long long>(search_steady.node_misses));
  if (!search_zero_miss) {
    std::printf("FAIL: warmed pool still misses during search\n");
    all_pass = false;
  }

  // --- 4. bit-identity: pooled vs unpooled at 1 and 4 threads ----------
  nn::ParallelConfig pc;
  pc.threads = 4;
  const nn::ParallelContext ctx(pc);

  const std::size_t identity_epochs = smoke ? 3 : 6;
  const TrainRun train_off =
      run_training(space, data, identity_epochs, 64, false, nullptr);
  const bool train_same_1 = states_identical(
      train_off.state,
      run_training(space, data, identity_epochs, 64, true, nullptr).state);
  const bool train_same_4 = states_identical(
      train_off.state,
      run_training(space, data, identity_epochs, 64, true, &ctx).state);

  auto search_once = [&](bool pooled, const nn::ParallelContext* parallel) {
    core::LightNas engine(space, predictor, task, core::SupernetConfig{},
                          search_config(smoke, pooled, parallel));
    return engine.search();
  };
  const core::SearchResult search_off = search_once(false, nullptr);
  const bool search_same_1 =
      search_results_identical(search_off, search_once(true, nullptr));
  const bool search_same_4 =
      search_results_identical(search_off, search_once(true, &ctx));

  util::Table identity({"comparison", "1 thread", "4 threads"});
  identity.add_row({"trained predictor weights", train_same_1 ? "yes" : "NO",
                    train_same_4 ? "yes" : "NO"});
  identity.add_row({"search trajectory", search_same_1 ? "yes" : "NO",
                    search_same_4 ? "yes" : "NO"});
  std::printf("\nbit-identity pooled vs unpooled:\n");
  identity.print(std::cout);
  const bool identity_pass =
      train_same_1 && train_same_4 && search_same_1 && search_same_4;
  if (!identity_pass) {
    std::printf("FAIL: pooling changed an observable result\n");
    all_pass = false;
  }

  // --- machine-readable summary ----------------------------------------
  io::Json out = io::Json::object();
  out.set("bench", io::Json("alloc_steady_state"));
  out.set("smoke", io::Json(smoke));
  out.set("train_steps_per_s_pooled", io::Json(pooled_steps_per_s));
  out.set("train_steps_per_s_unpooled", io::Json(unpooled_steps_per_s));
  out.set("train_speedup", io::Json(train_speedup));
  out.set("search_steps_per_s_pooled", io::Json(search_pooled_steps_per_s));
  out.set("search_steps_per_s_unpooled",
          io::Json(search_unpooled_steps_per_s));
  out.set("search_speedup", io::Json(search_speedup));
  out.set("throughput_pass", io::Json(throughput_pass));
  out.set("pool_hit_rate", io::Json(hit_rate));
  out.set("steady_buffer_misses",
          io::Json(static_cast<std::size_t>(train_steady.buffer_misses)));
  out.set("steady_node_misses",
          io::Json(static_cast<std::size_t>(train_steady.node_misses)));
  out.set("steady_tape_hits",
          io::Json(static_cast<std::size_t>(train_steady.tape_hits)));
  out.set("train_zero_miss", io::Json(train_zero_miss));
  out.set("search_zero_miss", io::Json(search_zero_miss));
  out.set("bit_identical", io::Json(identity_pass));
  out.set("peak_rss_bytes", io::Json(peak_rss_bytes()));
  bench::update_bench_json("BENCH_alloc.json", "steady_state", out);
  std::printf("\nupdated BENCH_alloc.json (section: steady_state, peak RSS "
              "%.1f MB)\n",
              static_cast<double>(peak_rss_bytes()) / 1e6);

  if (!all_pass) {
    std::printf("FAIL\n");
    return 1;
  }
  std::printf(smoke ? "PASS (smoke: throughput gate skipped)\n" : "PASS\n");
  return 0;
}
