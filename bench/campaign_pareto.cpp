// Campaign amortization gate (extension; generalizes Fig 7): "you only
// search once" run ONCE for K latency targets. The campaign shares one
// supernet-weight trajectory across all K jobs and steps each target's
// (alpha, lambda) head independently, so the cost is ~1x weight training
// plus K cheap head trainings instead of K full searches.
//
// Gates (exit 1 on any failure):
//   1. every target converges with |pred - T| / T within tolerance,
//   2. total update count stays well under K independent searches,
//   3. kill-and-resume from a mid-campaign checkpoint is bit-identical,
//   4. the emitted Pareto front is consistent (sorted, non-dominated,
//      and exactly the jobs flagged on_front).
//
// Results land in BENCH_campaign.json (section "pareto") and
// campaign_pareto.csv.

#include <cmath>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <optional>

#include "campaign/campaign.hpp"
#include "campaign/serialize.hpp"
#include "common.hpp"
#include "core/lightnas.hpp"
#include "util/table.hpp"

using namespace lightnas;

namespace {

/// Bit-exact comparison of two campaign outcomes, trajectory by
/// trajectory. Prints the first divergence it finds.
bool identical(const campaign::CampaignResult& a,
               const campaign::CampaignResult& b) {
  if (a.jobs.size() != b.jobs.size() ||
      a.weight_updates != b.weight_updates ||
      a.alpha_updates != b.alpha_updates) {
    std::printf("  resume mismatch: job/update counters differ\n");
    return false;
  }
  for (std::size_t j = 0; j < a.jobs.size(); ++j) {
    const campaign::JobResult& ja = a.jobs[j];
    const campaign::JobResult& jb = b.jobs[j];
    if (ja.state != jb.state ||
        ja.architecture.ops() != jb.architecture.ops() ||
        ja.predicted_cost != jb.predicted_cost ||
        ja.valid_accuracy != jb.valid_accuracy ||
        ja.trace.size() != jb.trace.size()) {
      std::printf("  resume mismatch: job %zu summary differs\n", j);
      return false;
    }
    for (std::size_t e = 0; e < ja.trace.size(); ++e) {
      const core::SearchEpochStats& sa = ja.trace[e];
      const core::SearchEpochStats& sb = jb.trace[e];
      if (sa.predicted_cost != sb.predicted_cost ||
          sa.sampled_cost_mean != sb.sampled_cost_mean ||
          sa.lambda != sb.lambda || sa.valid_loss != sb.valid_loss ||
          sa.valid_accuracy != sb.valid_accuracy ||
          sa.derived.ops() != sb.derived.ops()) {
        std::printf("  resume mismatch: job %zu epoch %zu differs\n", j, e);
        return false;
      }
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  smoke = smoke || bench::fast_mode();

  bench::banner("campaign_pareto",
                "multi-target campaign: K constraints amortized over one "
                "shared-supernet run (extension; not a paper artifact)");
  bench::Pipeline pipeline;
  auto predictor = bench::train_latency_predictor(pipeline);

  nn::SyntheticTaskConfig task_config;
  task_config.train_size = smoke ? 4096 : 16384;
  task_config.valid_size = smoke ? 1024 : 4096;
  const nn::SyntheticTask task = nn::make_synthetic_task(task_config);

  campaign::CampaignConfig config;
  // Eight targets across the band where the latency constraint binds
  // (the space's unconstrained optimum sits ~34 ms; targets close to it
  // see almost no lambda pressure and are marginal even for a solo
  // search, so they make a flaky gate).
  config.targets = {19.0, 20.0, 21.0, 22.0, 23.0, 24.0, 25.0, 26.0};
  config.search.seed = 17;
  if (smoke) {
    config.search.epochs = 48;
    config.search.warmup_epochs = 8;
    config.search.w_steps_per_epoch = 24;
    config.search.alpha_steps_per_epoch = 16;
  }
  const std::size_t k = config.targets.size();

  campaign::CampaignOrchestrator orchestrator(
      pipeline.space, *predictor, task, core::SupernetConfig{}, config);
  const campaign::CampaignResult result = orchestrator.run();

  // --- per-target report ------------------------------------------------
  util::Table table({"target (ms)", "state", "pred (ms)", "meas (ms)",
                     "|pred-T|/T (%)", "acc", "front"});
  std::size_t within = 0;
  for (const campaign::JobResult& job : result.jobs) {
    if (job.within_tolerance) ++within;
    table.add_row(
        {util::fmt_double(job.target, 1), campaign::to_string(job.state),
         util::fmt_double(job.predicted_cost, 2),
         util::fmt_double(pipeline.cost().network_latency_ms(
                              pipeline.space, job.architecture),
                          2),
         util::fmt_double(job.gap * 100.0, 1),
         util::fmt_double(job.valid_accuracy, 3),
         job.on_front ? "*" : ""});
  }
  table.print(std::cout);

  // --- gate 1: every target lands within tolerance ----------------------
  const bool all_within = within == k;

  // --- gate 2: amortization (deterministic update counts, not wall
  // clock: the container is too noisy for a timing gate) ----------------
  const std::size_t single_updates =
      config.search.epochs * config.search.w_steps_per_epoch +
      (config.search.epochs - config.search.warmup_epochs) *
          config.search.alpha_steps_per_epoch;
  const double cost_ratio =
      static_cast<double>(result.total_updates()) /
      static_cast<double>(k * single_updates);
  const bool amortized = cost_ratio < 0.6;

  // --- gate 3: kill mid-campaign, resume, bit-identical -----------------
  std::optional<campaign::CampaignCheckpoint> saved;
  campaign::CampaignHooks kill;
  const std::size_t kill_at = config.search.epochs / 2;
  kill.on_checkpoint = [&](const campaign::CampaignCheckpoint& ck) {
    saved = ck;
  };
  kill.should_stop = [&](std::size_t done) { return done >= kill_at; };
  (void)campaign::CampaignOrchestrator(pipeline.space, *predictor, task,
                                       core::SupernetConfig{}, config)
      .run(kill);
  bool resume_identical = false;
  if (saved.has_value()) {
    campaign::CampaignHooks resume;
    resume.resume = &*saved;
    const campaign::CampaignResult resumed =
        campaign::CampaignOrchestrator(pipeline.space, *predictor, task,
                                       core::SupernetConfig{}, config)
            .run(resume);
    resume_identical = identical(result, resumed);
  }

  // --- gate 4: front consistency ----------------------------------------
  bool front_ok = !result.front.empty();
  for (std::size_t i = 0; i + 1 < result.front.size(); ++i) {
    front_ok = front_ok && result.front[i].cost <= result.front[i + 1].cost &&
               result.front[i].value <= result.front[i + 1].value;
  }
  std::size_t flagged = 0;
  for (const campaign::JobResult& job : result.jobs) {
    if (job.on_front) ++flagged;
  }
  front_ok = front_ok && flagged == result.front.size();

  std::printf(
      "\nK=%zu targets: %zu/%zu within %.0f%% tolerance\n"
      "updates: campaign %zu vs %zu for K independent searches "
      "(ratio %.2f, gate < 0.60)\n"
      "resume bit-identical: %s | front consistent: %s (%zu points)\n",
      k, within, k, config.tolerance * 100.0, result.total_updates(),
      k * single_updates, cost_ratio, resume_identical ? "yes" : "NO",
      front_ok ? "yes" : "NO", result.front.size());

  // --- artifacts ---------------------------------------------------------
  io::Json out = io::Json::object();
  out.set("bench", io::Json("campaign_pareto"));
  out.set("smoke", io::Json(smoke));
  out.set("k", io::Json(k));
  out.set("within_tolerance", io::Json(within));
  out.set("all_within_tolerance", io::Json(all_within));
  out.set("campaign_updates", io::Json(result.total_updates()));
  out.set("k_single_search_updates", io::Json(k * single_updates));
  out.set("cost_ratio", io::Json(cost_ratio));
  out.set("resume_bit_identical", io::Json(resume_identical));
  out.set("front_consistent", io::Json(front_ok));
  out.set("front_size", io::Json(result.front.size()));
  io::Json fronts = io::Json::array();
  for (const util::ParetoPoint& point : result.front) {
    io::Json entry = io::Json::object();
    entry.set("cost_ms", io::Json(point.cost));
    entry.set("accuracy", io::Json(point.value));
    entry.set("job", io::Json(point.tag));
    fronts.push_back(entry);
  }
  out.set("front", fronts);
  bench::update_bench_json("BENCH_campaign.json", "pareto", out);
  campaign::write_campaign_csv("campaign_pareto.csv", result);
  std::printf("updated BENCH_campaign.json (section: pareto), wrote "
              "campaign_pareto.csv\n");

  if (!all_within || !amortized || !resume_identical || !front_ok) {
    std::printf("\nFAIL: campaign gate failed (within=%s amortized=%s "
                "resume=%s front=%s)\n",
                all_within ? "ok" : "FAIL", amortized ? "ok" : "FAIL",
                resume_identical ? "ok" : "FAIL", front_ok ? "ok" : "FAIL");
    return 1;
  }
  std::printf("\nAll campaign gates passed.\n");
  return 0;
}
