#include "common.hpp"

#include <cstdio>

#include "predictors/dataset.hpp"
#include "util/rng.hpp"

namespace lightnas::bench {

bool fast_mode() {
  const char* env = std::getenv("LIGHTNAS_FAST");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

std::size_t scaled(std::size_t full, std::size_t fast) {
  return fast_mode() ? fast : full;
}

namespace {

std::unique_ptr<predictors::MlpPredictor> train_predictor(
    Pipeline& pipeline, predictors::Metric metric, std::size_t samples,
    std::size_t epochs, std::uint64_t seed, const char* unit) {
  if (samples == 0) samples = scaled(10000, 2500);
  if (epochs == 0) epochs = scaled(120, 60);
  util::Rng rng(seed);
  const predictors::MeasurementDataset data =
      predictors::build_measurement_dataset(pipeline.space, pipeline.device,
                                            samples, metric, rng);
  auto predictor = std::make_unique<predictors::MlpPredictor>(
      pipeline.space.num_layers(), pipeline.space.num_ops(), seed + 100,
      unit);
  predictors::MlpTrainConfig config;
  config.epochs = epochs;
  config.batch_size = 128;
  predictor->train(data, config);
  return predictor;
}

}  // namespace

std::unique_ptr<predictors::MlpPredictor> train_latency_predictor(
    Pipeline& pipeline, std::size_t samples, std::size_t epochs,
    std::uint64_t seed) {
  return train_predictor(pipeline, predictors::Metric::kLatencyMs, samples,
                         epochs, seed, "ms");
}

std::unique_ptr<predictors::MlpPredictor> train_energy_predictor(
    Pipeline& pipeline, std::size_t samples, std::size_t epochs,
    std::uint64_t seed) {
  return train_predictor(pipeline, predictors::Metric::kEnergyMj, samples,
                         epochs, seed, "mJ");
}

void update_bench_json(const std::string& path, const std::string& key,
                       const io::Json& section) {
  io::Json root = io::Json::object();
  try {
    io::Json existing = io::read_json_file(path);
    if (existing.type() == io::Json::Type::kObject) root = std::move(existing);
  } catch (...) {
    // Missing or corrupt file: start fresh.
  }
  root.set(key, section);
  io::write_json_file(path, root);
}

void banner(const std::string& title, const std::string& paper_artifact) {
  std::printf("=======================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("Reproduces: %s\n", paper_artifact.c_str());
  std::printf("Substrate : simulated Jetson AGX Xavier (MAXN, batch 8)\n");
  if (fast_mode()) std::printf("Mode      : FAST (reduced scale)\n");
  std::printf("=======================================================\n\n");
}

}  // namespace lightnas::bench
