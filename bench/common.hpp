#pragma once

#include <cstdlib>
#include <memory>
#include <string>

#include "hw/simulator.hpp"
#include "io/json.hpp"
#include "predictors/mlp_predictor.hpp"
#include "space/search_space.hpp"

namespace lightnas::bench {

/// Scale knob for the experiment binaries: LIGHTNAS_FAST=1 in the
/// environment shrinks measurement campaigns and search budgets by ~4x
/// for smoke runs. Default is full scale (the paper's settings, scaled
/// to the simulated substrate).
bool fast_mode();

/// count / divisor, at least `floor`, honouring fast mode.
std::size_t scaled(std::size_t full, std::size_t fast);

/// Standard pipeline front end shared by the experiment binaries:
/// the canonical search space and a simulated Jetson AGX Xavier
/// (MAXN, batch 8 — Sec 4's measurement protocol).
struct Pipeline {
  space::SearchSpace space = space::SearchSpace::fbnet_xavier();
  hw::HardwareSimulator device{hw::DeviceProfile::jetson_xavier_maxn(), 8,
                               42};

  const hw::CostModel& cost() const { return device.model(); }
};

/// Run the Sec-3.2 measurement campaign and train the MLP predictor.
/// `samples`/`epochs` default to the paper's 10,000-architecture
/// campaign (reduced under fast mode).
std::unique_ptr<predictors::MlpPredictor> train_latency_predictor(
    Pipeline& pipeline, std::size_t samples = 0, std::size_t epochs = 0,
    std::uint64_t seed = 1);

/// Same campaign against the energy meter (Sec 4.3).
std::unique_ptr<predictors::MlpPredictor> train_energy_predictor(
    Pipeline& pipeline, std::size_t samples = 0, std::size_t epochs = 0,
    std::uint64_t seed = 2);

/// Print the standard bench banner.
void banner(const std::string& title, const std::string& paper_artifact);

/// Merge `section` into the JSON object at `path` under `key`,
/// preserving other top-level keys (so several benches can share one
/// trajectory file, e.g. serving_throughput and serve_resilience both
/// writing BENCH_serve.json). An unreadable/corrupt existing file is
/// replaced rather than fatal.
void update_bench_json(const std::string& path, const std::string& key,
                       const io::Json& section);

}  // namespace lightnas::bench
