// Device-transfer study (extension; motivated by Sec 3.5's pluggability
// claim): a network searched for one device is generally NOT on the
// frontier of another. We search at matched relative budgets on the
// Xavier and on two other device profiles, then cross-measure every
// searched network on every device.

#include <cstdio>
#include <iostream>

#include "common.hpp"
#include "core/lightnas.hpp"
#include "eval/accuracy_model.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace lightnas;

namespace {

struct Target {
  std::string name;
  hw::DeviceProfile profile;
};

}  // namespace

int main() {
  bench::banner("device_transfer",
                "cross-device transfer of searched networks (extension; "
                "not a paper artifact)");
  const space::SearchSpace space = space::SearchSpace::fbnet_xavier();
  const eval::AccuracyModel accuracy(space);

  const Target targets[] = {
      {"Xavier", hw::DeviceProfile::jetson_xavier_maxn()},
      {"Nano-like", hw::DeviceProfile::jetson_nano_like()},
      {"Accel-like", hw::DeviceProfile::edge_accelerator_like()},
  };

  nn::SyntheticTaskConfig task_config;
  task_config.train_size = bench::scaled(16384, 4096);
  const nn::SyntheticTask task = nn::make_synthetic_task(task_config);

  // Search one network per device at that device's median budget.
  std::vector<space::Architecture> searched;
  std::vector<double> budgets;
  for (const Target& target : targets) {
    hw::HardwareSimulator device(target.profile, 8, 42);
    util::Rng rng(1);
    const predictors::MeasurementDataset data =
        predictors::build_measurement_dataset(
            space, device, bench::scaled(6000, 1500),
            predictors::Metric::kLatencyMs, rng);
    predictors::MlpPredictor predictor(space.num_layers(), space.num_ops(),
                                       7);
    predictors::MlpTrainConfig train_config;
    train_config.epochs = bench::scaled(120, 50);
    train_config.batch_size = 128;
    predictor.train(data, train_config);

    const double budget = util::median(data.targets);
    budgets.push_back(budget);
    core::LightNasConfig config;
    config.target = budget;
    config.seed = 3;
    if (bench::fast_mode()) {
      config.epochs = 24;
      config.warmup_epochs = 8;
      config.w_steps_per_epoch = 24;
      config.alpha_steps_per_epoch = 16;
    }
    core::LightNas engine(space, predictor, task, core::SupernetConfig{},
                          config);
    searched.push_back(engine.search().architecture);
    std::printf("searched for %s at T = %.1f ms\n", target.name.c_str(),
                budget);
  }

  // Cross-measure.
  util::Table table({"network \\ device", "Xavier (ms)", "Nano-like (ms)",
                     "Accel-like (ms)", "surrogate top-1"});
  for (std::size_t i = 0; i < searched.size(); ++i) {
    std::vector<std::string> row;
    row.push_back("searched-for-" + targets[i].name + " (T=" +
                  util::fmt_double(budgets[i], 0) + ")");
    for (const Target& target : targets) {
      const hw::CostModel model(target.profile, 8);
      row.push_back(util::fmt_ms(model.network_latency_ms(space,
                                                          searched[i])));
    }
    row.push_back(util::fmt_pct(accuracy.top1(searched[i])));
    table.add_row(row);
  }
  std::printf("\n");
  table.print(std::cout);

  std::printf(
      "\nEach row is tuned to its own device's budget; off-diagonal\n"
      "entries show why a per-device predictor (and a one-shot search\n"
      "per target, at 10 GPU hours each) is the practical deployment\n"
      "path the paper argues for.\n");
  return 0;
}
