// Fault-tolerance campaign: the robustness counterpart to Figures 5/7.
//
// Part 1 measures the predictor pipeline against a faulty device: the
// same campaign is run once on a clean simulator and once on a simulator
// injecting latency outliers, transient failures, hangs, and calibration
// drift — with the robust per-sample policy (retry + backoff, MAD
// outlier rejection, median-of-repeats) absorbing the faults. The
// headline number is the held-out RMSE ratio faulty/clean.
//
// Part 2 runs the watchdog-guarded search with the predictor trained
// under faults and reports how close the derived architecture lands to
// the constraint T, plus the run-health record. A third run provokes
// the watchdog on purpose (hot lambda rate) to show rollback + cooldown
// rescuing a diverging run.

#include <cmath>
#include <cstdio>
#include <iostream>

#include "common.hpp"
#include "core/lightnas.hpp"
#include "predictors/dataset.hpp"
#include "predictors/metrics.hpp"
#include "util/table.hpp"

using namespace lightnas;

namespace {

std::unique_ptr<predictors::MlpPredictor> fit(
    const space::SearchSpace& space, const predictors::MeasurementDataset& data,
    std::uint64_t seed) {
  auto predictor = std::make_unique<predictors::MlpPredictor>(
      space.num_layers(), space.num_ops(), seed, "ms");
  predictors::MlpTrainConfig config;
  config.epochs = bench::scaled(120, 60);
  config.batch_size = 128;
  predictor->train(data, config);
  return predictor;
}

core::LightNasConfig search_config(double target, std::uint64_t seed) {
  core::LightNasConfig config;
  config.target = target;
  config.seed = seed;
  if (bench::fast_mode()) {
    config.epochs = 32;
    config.warmup_epochs = 8;
    config.w_steps_per_epoch = 24;
    config.alpha_steps_per_epoch = 16;
  }
  return config;
}

}  // namespace

int main() {
  bench::banner("fault_tolerance",
                "robustness campaign (faulty measurements + divergence "
                "watchdog; extends Figures 5 and 7)");
  bench::Pipeline pipeline;
  const std::size_t samples = bench::scaled(10000, 2500);

  // --- Part 1: measurement campaign under injected faults --------------
  const hw::FaultSpec faults = [] {
    hw::FaultSpec spec;
    spec.outlier_prob = 0.06;             // >= 5% latency spikes
    spec.transient_failure_prob = 0.015;  // >= 1% failed reads
    spec.hang_prob = 0.004;               // occasional hung measurement
    spec.drift_per_measurement = 5e-4;    // slow recalibration drift
    return spec;
  }();

  util::Rng clean_rng(11);
  const predictors::MeasurementDataset clean_data =
      predictors::build_measurement_dataset(pipeline.space, pipeline.device,
                                            samples,
                                            predictors::Metric::kLatencyMs,
                                            clean_rng);
  auto clean_predictor = fit(pipeline.space, clean_data, 101);

  hw::HardwareSimulator faulty_device(hw::DeviceProfile::jetson_xavier_maxn(),
                                      8, 43);
  faulty_device.set_fault_spec(faults);
  util::Rng faulty_rng(11);
  predictors::CampaignReport report;
  const predictors::MeasurementDataset robust_data =
      predictors::build_robust_measurement_dataset(
          pipeline.space, faulty_device, samples,
          predictors::Metric::kLatencyMs, faulty_rng, {}, &report);
  auto robust_predictor = fit(pipeline.space, robust_data, 101);

  std::printf("campaign under faults (outliers %.1f%%, transients %.1f%%, "
              "hangs %.2f%%, drift):\n  %s\n\n",
              faults.outlier_prob * 100.0,
              faults.transient_failure_prob * 100.0,
              faults.hang_prob * 100.0, report.to_string().c_str());

  // Held-out truth always comes from a clean device: the question is how
  // well each predictor recovers the device's real behaviour.
  hw::HardwareSimulator eval_device(hw::DeviceProfile::jetson_xavier_maxn(),
                                    8, 77);
  util::Rng eval_rng(99);
  const predictors::MeasurementDataset eval_data =
      predictors::build_measurement_dataset(pipeline.space, eval_device,
                                            bench::scaled(2000, 500),
                                            predictors::Metric::kLatencyMs,
                                            eval_rng);
  const predictors::PredictorReport clean_report =
      clean_predictor->evaluate(eval_data);
  const predictors::PredictorReport robust_report =
      robust_predictor->evaluate(eval_data);

  util::Table table({"campaign", "held-out RMSE (ms)", "MAE (ms)",
                     "kendall tau"});
  table.add_row({"clean device", util::fmt_double(clean_report.rmse, 3),
                 util::fmt_double(clean_report.mae, 3),
                 util::fmt_double(clean_report.kendall, 3)});
  table.add_row({"faulty device + robust policy",
                 util::fmt_double(robust_report.rmse, 3),
                 util::fmt_double(robust_report.mae, 3),
                 util::fmt_double(robust_report.kendall, 3)});
  table.print(std::cout);
  const double rmse_ratio = robust_report.rmse / clean_report.rmse;
  std::printf("\nRMSE ratio (faulty+robust / clean): %.2fx %s\n\n",
              rmse_ratio, rmse_ratio <= 2.0 ? "(within 2x budget)"
                                            : "(EXCEEDS 2x budget)");

  // --- Part 2: watchdog-guarded search ---------------------------------
  nn::SyntheticTaskConfig task_config;
  task_config.train_size = bench::scaled(16384, 4096);
  const nn::SyntheticTask task = nn::make_synthetic_task(task_config);

  const double target = 24.0;
  core::LightNas engine(pipeline.space, *robust_predictor, task,
                        core::SupernetConfig{}, search_config(target, 3));
  const core::SearchResult result = engine.search();
  core::RunHealth health = result.health;
  health.measurement_retries = report.retries;
  health.measurements_rejected = report.rejected_outliers;

  const double gap =
      std::abs(result.final_predicted_cost - target) / target * 100.0;
  std::printf("guarded search at T = %.0f ms (predictor trained under "
              "faults):\n  final predicted %.2f ms, gap %.1f%% %s\n  %s\n",
              target, result.final_predicted_cost, gap,
              gap <= 10.0 ? "(within 10%)" : "(EXCEEDS 10%)",
              health.summary().c_str());

  // --- Part 3: provoke the watchdog ------------------------------------
  // A lambda rate ~60x the tuned value makes the multiplier integrator
  // ring; the watchdog should catch the runaway, roll back, and finish
  // the run with cooled step sizes instead of shipping a diverged alpha.
  core::LightNasConfig hot = search_config(target, 3);
  hot.lambda_lr = 25.0;
  hot.penalty_mu = 0.0;
  hot.watchdog.lambda_limit = 40.0;
  core::LightNas hot_engine(pipeline.space, *robust_predictor, task,
                            core::SupernetConfig{}, hot);
  const core::SearchResult hot_result = hot_engine.search();
  std::printf("\nprovoked divergence (lambda_lr %.1f):\n  final predicted "
              "%.2f ms\n  %s\n",
              hot.lambda_lr, hot_result.final_predicted_cost,
              hot_result.health.summary().c_str());
  for (const core::WatchdogEvent& event : hot_result.health.events) {
    std::printf("  epoch %zu: %s -> %s\n", event.epoch,
                event.reason.c_str(),
                event.rolled_back ? "rolled back" : "aborted");
  }

  io::Json out = io::Json::object();
  out.set("fast_mode", io::Json(bench::fast_mode()));
  out.set("samples", io::Json(samples));
  out.set("clean_rmse_ms", io::Json(clean_report.rmse));
  out.set("robust_rmse_ms", io::Json(robust_report.rmse));
  out.set("rmse_ratio", io::Json(rmse_ratio));
  out.set("rmse_ratio_budget", io::Json(2.0));
  out.set("clean_kendall", io::Json(clean_report.kendall));
  out.set("robust_kendall", io::Json(robust_report.kendall));
  out.set("campaign_retries", io::Json(report.retries));
  out.set("campaign_rejected_outliers", io::Json(report.rejected_outliers));
  out.set("guarded_gap_pct", io::Json(gap));
  out.set("watchdog_events",
          io::Json(hot_result.health.events.size()));
  out.set("pass", io::Json(rmse_ratio <= 2.0 && gap <= 10.0));
  bench::update_bench_json("BENCH_fault.json", "fault_tolerance", out);
  std::printf("\nupdated BENCH_fault.json (section: fault_tolerance)\n");

  std::printf(
      "\nTakeaway: the per-sample retry/MAD policy keeps the predictor\n"
      "within the 2x RMSE budget on a device injecting outliers and\n"
      "failures, and the watchdog keeps a single 'search once' run\n"
      "recoverable instead of losing its budget to one bad epoch.\n");
  return 0;
}
