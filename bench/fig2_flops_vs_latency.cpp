// Reproduces Figure 2: the number of FLOPs is a poor proxy for on-device
// latency and energy. We sample random architectures, bucket them by
// measured latency (and energy), and report how widely MACs spread within
// each narrow cost band — plus overall correlation statistics.

#include <cstdio>
#include <iostream>

#include "common.hpp"
#include "space/flops.hpp"
#include "util/csv.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace lightnas;

int main() {
  bench::banner("fig2_flops_vs_latency",
                "Figure 2 (FLOPs vs latency / energy on Xavier)");
  bench::Pipeline pipeline;

  const std::size_t samples = bench::scaled(3000, 600);
  util::Rng rng(7);

  std::vector<double> macs, lats, energies;
  util::CsvWriter csv({"macs_m", "latency_ms", "energy_mj"});
  for (std::size_t i = 0; i < samples; ++i) {
    const space::Architecture arch =
        pipeline.space.random_architecture(rng);
    const double m = space::count_macs(pipeline.space, arch) / 1e6;
    const double lat = pipeline.device.measure_latency_ms(pipeline.space,
                                                          arch);
    const double e = pipeline.device.measure_energy_mj(pipeline.space, arch);
    macs.push_back(m);
    lats.push_back(lat);
    energies.push_back(e);
    csv.add_row(std::vector<double>{m, lat, e});
  }
  csv.write_file("fig2_flops_vs_latency.csv");

  std::printf("sampled %zu random architectures\n\n", samples);
  std::printf("correlation(MACs, latency): pearson=%.3f kendall=%.3f\n",
              util::pearson(macs, lats), util::kendall_tau(macs, lats));
  std::printf("correlation(MACs, energy) : pearson=%.3f kendall=%.3f\n\n",
              util::pearson(macs, energies),
              util::kendall_tau(macs, energies));

  // Bucket by latency and report the MACs spread inside each band: the
  // visual message of Fig 2's scatter.
  util::Table table({"latency band (ms)", "#archs", "MACs min (M)",
                     "MACs max (M)", "MACs spread"});
  const double lo = util::min_of(lats);
  const double hi = util::max_of(lats);
  const int bands = 8;
  for (int b = 0; b < bands; ++b) {
    const double band_lo = lo + (hi - lo) * b / bands;
    const double band_hi = lo + (hi - lo) * (b + 1) / bands;
    double mn = 1e18, mx = 0.0;
    int count = 0;
    for (std::size_t i = 0; i < lats.size(); ++i) {
      if (lats[i] >= band_lo && lats[i] < band_hi) {
        mn = std::min(mn, macs[i]);
        mx = std::max(mx, macs[i]);
        ++count;
      }
    }
    if (count < 5) continue;
    table.add_row({util::fmt_double(band_lo, 1) + " - " +
                       util::fmt_double(band_hi, 1),
                   std::to_string(count), util::fmt_double(mn, 0),
                   util::fmt_double(mx, 0),
                   "x" + util::fmt_double(mx / mn, 2)});
  }
  table.print(std::cout);

  std::printf(
      "\nPaper's claim: architectures with the same latency/energy can\n"
      "differ greatly in FLOPs. Bands above with spread >> x1.0 and a\n"
      "kendall tau well below 1.0 reproduce that conclusion.\n");
  return 0;
}
