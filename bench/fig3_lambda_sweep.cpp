// Reproduces Figure 3 (and the Sec 2.2 motivation): with a fixed-lambda
// soft latency penalty (FBNet-style, Eq 3), the achieved latency is an
// uncontrollable function of lambda — small lambdas are ignored, large
// lambdas collapse the search to SkipConnect, and hitting a *specific*
// latency requires a manual sweep (the "implicit search cost").

#include <cstdio>
#include <iostream>

#include "baselines/fbnet.hpp"
#include "common.hpp"
#include "eval/accuracy_model.hpp"
#include "predictors/lut_predictor.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

using namespace lightnas;

int main() {
  bench::banner("fig3_lambda_sweep",
                "Figure 3 (search results under lambda in [0, 1])");
  bench::Pipeline pipeline;

  // FBNet uses a latency LUT as its differentiable cost (Sec 3.5).
  const predictors::LutPredictor lut(pipeline.space, pipeline.device);
  const eval::AccuracyModel accuracy(pipeline.space);

  nn::SyntheticTaskConfig task_config;
  task_config.train_size = bench::scaled(8192, 2048);
  const nn::SyntheticTask task = nn::make_synthetic_task(task_config);

  const double lambdas[] = {0.0,    0.0005, 0.00075, 0.001, 0.0025,
                            0.005,  0.01,   0.05,    0.1,   0.25,
                            0.5,    1.0};

  util::Table table({"lambda", "latency (ms)", "depth",
                     "quick top-1 (%)", "collapsed to skip?"});
  util::CsvWriter csv({"lambda", "latency_ms", "depth", "quick_top1"});

  for (double lambda : lambdas) {
    baselines::FbNetConfig config;
    config.lambda = lambda;
    config.epochs = bench::scaled(30, 12);
    config.warmup_epochs = bench::scaled(8, 3);
    config.w_steps_per_epoch = bench::scaled(10, 4);
    config.alpha_steps_per_epoch = bench::scaled(8, 4);
    config.seed = 5;
    baselines::FbNetSearch search(pipeline.space, lut, task,
                                  core::SupernetConfig{}, config);
    const core::SearchResult result = search.search();

    const double lat =
        pipeline.cost().network_latency_ms(pipeline.space,
                                           result.architecture);
    const std::size_t depth =
        result.architecture.effective_depth(pipeline.space);
    const double quick = accuracy.quick_top1(result.architecture);
    const bool collapsed = depth <= 4;

    table.add_row({util::fmt_double(lambda, 5), util::fmt_ms(lat),
                   std::to_string(depth), util::fmt_pct(quick),
                   collapsed ? "YES" : "no"});
    csv.add_row(std::vector<double>{lambda, lat,
                                    static_cast<double>(depth), quick});
    std::printf("lambda=%-8g -> latency %.1f ms, depth %zu\n", lambda, lat,
                depth);
  }
  csv.write_file("fig3_lambda_sweep.csv");
  std::printf("\n");
  table.print(std::cout);

  std::printf(
      "\nPaper's shape: latency decreases monotonically-ish with lambda;\n"
      "accuracy follows; past a threshold the search collapses to all-\n"
      "SkipConnect (the paper reports lambda > 0.25). Note how unevenly\n"
      "latency responds to lambda: targeting a specific latency by\n"
      "sweeping lambda costs ~10 search runs (Sec 2.2).\n");
  return 0;
}
