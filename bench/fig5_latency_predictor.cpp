// Reproduces Figure 5: the MLP latency predictor (left) against the
// latency lookup table (right). The paper reports MLP RMSE ~0.04 ms,
// a consistent LUT gap of ~11.5 ms and a debiased LUT RMSE of ~0.41 ms.

#include <cstdio>
#include <iostream>

#include "common.hpp"
#include "predictors/lut_predictor.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

using namespace lightnas;

int main() {
  bench::banner("fig5_latency_predictor",
                "Figure 5 (MLP latency predictor vs lookup table)");
  bench::Pipeline pipeline;

  // The paper's campaign: 10,000 measured architectures, 80/20 split.
  const std::size_t samples = bench::scaled(10000, 2500);
  util::Rng rng(1);
  const predictors::MeasurementDataset data =
      predictors::build_measurement_dataset(pipeline.space, pipeline.device,
                                            samples,
                                            predictors::Metric::kLatencyMs,
                                            rng);
  auto [train, valid] = data.split(0.8, rng);
  std::printf("campaign: %zu measurements (%zu train / %zu valid)\n\n",
              samples, train.size(), valid.size());

  predictors::MlpPredictor mlp(pipeline.space.num_layers(),
                               pipeline.space.num_ops(), 7);
  predictors::MlpTrainConfig config;
  config.epochs = bench::scaled(150, 60);
  config.batch_size = 128;
  mlp.train(train, config);
  const predictors::PredictorReport mlp_report = mlp.evaluate(valid);

  const predictors::LutPredictor lut(pipeline.space, pipeline.device);
  const predictors::PredictorReport lut_report = lut.evaluate(valid);

  util::Table table({"predictor", "RMSE (ms)", "bias (ms)",
                     "debiased RMSE (ms)", "pearson", "kendall"});
  table.add_row({"MLP (ours, Sec 3.2)", util::fmt_double(mlp_report.rmse, 3),
                 util::fmt_double(mlp_report.bias, 3),
                 util::fmt_double(mlp_report.debiased_rmse, 3),
                 util::fmt_double(mlp_report.pearson, 4),
                 util::fmt_double(mlp_report.kendall, 4)});
  table.add_row({"LUT [4,5,18]", util::fmt_double(lut_report.rmse, 3),
                 util::fmt_double(lut_report.bias, 3),
                 util::fmt_double(lut_report.debiased_rmse, 3),
                 util::fmt_double(lut_report.pearson, 4),
                 util::fmt_double(lut_report.kendall, 4)});
  table.print(std::cout);

  // Dump the scatter for plotting (Fig 5's two panels).
  util::CsvWriter csv({"measured_ms", "mlp_predicted_ms",
                       "lut_predicted_ms"});
  for (std::size_t i = 0; i < valid.size(); ++i) {
    csv.add_row(std::vector<double>{
        valid.targets[i], mlp.predict_encoding(valid.encodings[i]),
        lut.predict_encoding(valid.encodings[i])});
  }
  csv.write_file("fig5_latency_predictor.csv");

  std::printf(
      "\nPaper's numbers: MLP RMSE = 0.04 ms; LUT gap ~ 11.48 ms with\n"
      "0.41 ms RMSE after debiasing. Expected shape: MLP RMSE well under\n"
      "the debiased LUT RMSE, LUT bias in the ~10 ms range (one isolated\n"
      "measurement sync per layer), both predictors strongly rank-\n"
      "correlated with ground truth.\n");
  return 0;
}
