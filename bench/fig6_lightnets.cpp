// Reproduces Figure 6: the LightNets searched under latency constraints
// from 20 ms to 30 ms, rendered as per-stage operator diagrams. The
// paper's qualitative observations: layer diversity (unlike MobileNetV2's
// uniform stack) and deeper/wider networks as the budget grows.

#include <cstdio>
#include <iostream>

#include "common.hpp"
#include "core/lightnas.hpp"
#include "space/flops.hpp"
#include "util/table.hpp"

using namespace lightnas;

int main() {
  bench::banner("fig6_lightnets",
                "Figure 6 (LightNets under 20/22/24/26/28/30 ms)");
  bench::Pipeline pipeline;
  auto predictor = bench::train_latency_predictor(pipeline);

  nn::SyntheticTaskConfig task_config;
  task_config.train_size = bench::scaled(16384, 4096);
  const nn::SyntheticTask task = nn::make_synthetic_task(task_config);

  util::Table summary({"LightNet", "predicted (ms)", "measured (ms)",
                       "MACs (M)", "depth", "K7 ops", "E6 ops", "skips"});

  for (double target : {20.0, 22.0, 24.0, 26.0, 28.0, 30.0}) {
    core::LightNasConfig config;
    config.target = target;
    config.seed = 11;
    if (bench::fast_mode()) {
      config.epochs = 24;
      config.warmup_epochs = 8;
      config.w_steps_per_epoch = 24;
      config.alpha_steps_per_epoch = 16;
    }
    core::LightNas engine(pipeline.space, *predictor, task,
                          core::SupernetConfig{}, config);
    const core::SearchResult result = engine.search();
    const space::Architecture& arch = result.architecture;

    int k7 = 0, e6 = 0, skips = 0;
    for (std::size_t l = 0; l < arch.num_layers(); ++l) {
      const space::Operator& op = pipeline.space.ops().op(arch.op_at(l));
      if (op.kind == space::OpKind::kSkip) {
        ++skips;
      } else {
        if (op.kernel == 7) ++k7;
        if (op.expansion == 6) ++e6;
      }
    }

    std::printf("--- LightNet-%.0fms ---------------------------------\n",
                target);
    std::printf("%s\n", arch.to_diagram(pipeline.space).c_str());
    std::printf("serialized: %s\n\n", arch.serialize().c_str());

    summary.add_row(
        {"LightNet-" + util::fmt_double(target, 0) + "ms",
         util::fmt_ms(result.final_predicted_cost),
         util::fmt_ms(pipeline.cost().network_latency_ms(pipeline.space,
                                                         arch)),
         util::fmt_double(space::count_macs(pipeline.space, arch) / 1e6, 0),
         std::to_string(arch.effective_depth(pipeline.space)),
         std::to_string(k7), std::to_string(e6), std::to_string(skips)});
  }
  summary.print(std::cout);

  std::printf(
      "\nPaper's shape: every LightNet mixes operators across layers\n"
      "(layer diversity), and larger budgets produce deeper (fewer\n"
      "skips) and wider (more E6 / larger kernels) networks.\n");
  return 0;
}
