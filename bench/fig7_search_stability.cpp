// Reproduces Figure 7: the search trajectory under each latency
// constraint, averaged over three seeds. The paper's observation: the
// search always ends up at the given constraint, exploring architectures
// around the target latency.

#include <cstdio>
#include <iostream>

#include "common.hpp"
#include "core/lightnas.hpp"
#include "util/csv.hpp"
#include "util/plot.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace lightnas;

int main() {
  bench::banner("fig7_search_stability",
                "Figure 7 (search process under various constraints, "
                "3 seeds each)");
  bench::Pipeline pipeline;
  auto predictor = bench::train_latency_predictor(pipeline);

  nn::SyntheticTaskConfig task_config;
  task_config.train_size = bench::scaled(16384, 4096);
  const nn::SyntheticTask task = nn::make_synthetic_task(task_config);

  const std::vector<double> targets = {20.0, 22.0, 24.0, 26.0, 28.0, 30.0};
  const std::uint64_t seeds[] = {3, 7, 13};

  util::Table table({"target (ms)", "final pred (ms) mean+/-sd",
                     "final measured (ms)", "final lambda",
                     "|pred-T|/T (%)"});
  util::CsvWriter csv({"target_ms", "seed", "epoch", "derived_pred_ms",
                       "sampled_mean_ms", "lambda", "tau"});

  for (double target : targets) {
    std::vector<double> finals, measured, lambdas;
    for (std::uint64_t seed : seeds) {
      core::LightNasConfig config;
      config.target = target;
      config.seed = seed;
      if (bench::fast_mode()) {
        config.epochs = 24;
        config.warmup_epochs = 8;
        config.w_steps_per_epoch = 24;
        config.alpha_steps_per_epoch = 16;
      }
      core::LightNas engine(pipeline.space, *predictor, task,
                            core::SupernetConfig{}, config);
      const core::SearchResult result = engine.search();
      finals.push_back(result.final_predicted_cost);
      measured.push_back(pipeline.cost().network_latency_ms(
          pipeline.space, result.architecture));
      lambdas.push_back(result.final_lambda);
      for (const core::SearchEpochStats& stats : result.trace) {
        csv.add_row(std::vector<double>{
            target, static_cast<double>(seed),
            static_cast<double>(stats.epoch), stats.predicted_cost,
            stats.sampled_cost_mean, stats.lambda, stats.tau});
      }
      std::printf("T=%.0f seed=%llu: final pred %.2f ms (lambda %.3f)\n",
                  target, static_cast<unsigned long long>(seed),
                  result.final_predicted_cost, result.final_lambda);
    }
    const double mean_final = util::mean(finals);
    table.add_row(
        {util::fmt_double(target, 0),
         util::fmt_double(mean_final, 2) + " +/- " +
             util::fmt_double(util::stddev(finals), 2),
         util::fmt_double(util::mean(measured), 2),
         util::fmt_double(util::mean(lambdas), 3),
         util::fmt_double(std::abs(mean_final - target) / target * 100.0,
                          1)});
  }
  csv.write_file("fig7_search_traces.csv");
  std::printf("\n");
  table.print(std::cout);

  // Render one representative trace (T = 24 ms, seed 3) as an inline
  // chart: the derived architecture's predicted latency converging to
  // the dashed target line after the warmup epochs.
  {
    core::LightNasConfig config;
    config.target = 24.0;
    config.seed = 3;
    if (bench::fast_mode()) {
      config.epochs = 24;
      config.warmup_epochs = 8;
      config.w_steps_per_epoch = 24;
      config.alpha_steps_per_epoch = 16;
    }
    core::LightNas engine(pipeline.space, *predictor, task,
                          core::SupernetConfig{}, config);
    const core::SearchResult result = engine.search();
    std::vector<double> derived, sampled;
    for (const core::SearchEpochStats& stats : result.trace) {
      derived.push_back(stats.predicted_cost);
      sampled.push_back(stats.sampled_cost_mean);
    }
    util::AsciiChart chart(64, 16);
    chart.add_hline(24.0, '.');
    chart.add_series("derived arch predicted latency (ms)", derived, '*');
    chart.add_series("sampled paths mean (ms)", sampled, 'o');
    std::printf("\nsearch trace at T = 24 ms (x-axis: epoch):\n%s",
                chart.render().c_str());
  }

  std::printf(
      "\nPaper's shape: each run converges to its target latency (the\n"
      "traces in fig7_search_traces.csv oscillate around T after the\n"
      "warmup epochs), and the learned lambda settles at a run-specific\n"
      "equilibrium instead of being hand-tuned.\n");
  return 0;
}
