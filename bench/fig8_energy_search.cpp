// Reproduces Figure 8: (left) the same predictor machinery trained on
// energy measurements; (right) the search under an energy constraint of
// 500 mJ. Demonstrates the Sec 4.3 generality claim: only the predictor
// is swapped, the engine is untouched.

#include <cstdio>
#include <iostream>

#include "common.hpp"
#include "core/lightnas.hpp"
#include "util/csv.hpp"
#include "util/plot.hpp"
#include "util/table.hpp"

using namespace lightnas;

int main() {
  bench::banner("fig8_energy_search",
                "Figure 8 (energy predictor + search at 500 mJ)");
  bench::Pipeline pipeline;

  // --- left panel: energy predictor quality --------------------------
  const std::size_t samples = bench::scaled(10000, 2500);
  util::Rng rng(2);
  const predictors::MeasurementDataset data =
      predictors::build_measurement_dataset(pipeline.space, pipeline.device,
                                            samples,
                                            predictors::Metric::kEnergyMj,
                                            rng);
  auto [train, valid] = data.split(0.8, rng);
  predictors::MlpPredictor energy(pipeline.space.num_layers(),
                                  pipeline.space.num_ops(), 9, "mJ");
  predictors::MlpTrainConfig train_config;
  train_config.epochs = bench::scaled(150, 60);
  train_config.batch_size = 128;
  energy.train(train, train_config);
  const predictors::PredictorReport report = energy.evaluate(valid);
  std::printf("energy predictor (%zu measurements): %s\n", samples,
              report.to_string("mJ").c_str());
  std::printf(
      "(energy measurements carry thermal noise, Sec 4.3 — the RMSE floor\n"
      " is set by the device, not the predictor)\n\n");

  util::CsvWriter scatter({"measured_mj", "predicted_mj"});
  for (std::size_t i = 0; i < valid.size(); ++i) {
    scatter.add_row(std::vector<double>{
        valid.targets[i], energy.predict_encoding(valid.encodings[i])});
  }
  scatter.write_file("fig8_energy_predictor.csv");

  // --- right panel: energy-constrained search ------------------------
  nn::SyntheticTaskConfig task_config;
  task_config.train_size = bench::scaled(16384, 4096);
  const nn::SyntheticTask task = nn::make_synthetic_task(task_config);

  const double target_mj = 500.0;  // the paper's constraint
  core::LightNasConfig config;
  config.target = target_mj;
  config.seed = 21;
  if (bench::fast_mode()) {
    config.epochs = 24;
    config.warmup_epochs = 8;
    config.w_steps_per_epoch = 24;
    config.alpha_steps_per_epoch = 16;
  }
  core::LightNas engine(pipeline.space, energy, task,
                        core::SupernetConfig{}, config);
  const core::SearchResult result = engine.search();

  util::CsvWriter trace({"epoch", "derived_pred_mj", "lambda"});
  for (const core::SearchEpochStats& stats : result.trace) {
    trace.add_row(std::vector<double>{static_cast<double>(stats.epoch),
                                      stats.predicted_cost, stats.lambda});
  }
  trace.write_file("fig8_energy_search_trace.csv");

  {
    std::vector<double> derived;
    for (const core::SearchEpochStats& stats : result.trace) {
      derived.push_back(stats.predicted_cost);
    }
    util::AsciiChart chart(64, 14);
    chart.add_hline(target_mj, '.');
    chart.add_series("derived arch predicted energy (mJ)", derived, '*');
    std::printf("search trace (x-axis: epoch):\n%s\n",
                chart.render().c_str());
  }

  util::Table table({"quantity", "value"});
  table.add_row({"energy constraint T_E", "500.0 mJ"});
  table.add_row({"predicted energy of searched arch",
                 util::fmt_double(result.final_predicted_cost, 1) + " mJ"});
  table.add_row(
      {"measured energy (noise-free model)",
       util::fmt_double(pipeline.cost().network_energy_mj(
                            pipeline.space, result.architecture),
                        1) +
           " mJ"});
  table.add_row(
      {"corresponding latency",
       util::fmt_double(pipeline.cost().network_latency_ms(
                            pipeline.space, result.architecture),
                        1) +
           " ms"});
  table.add_row({"final lambda", util::fmt_double(result.final_lambda, 3)});
  table.print(std::cout);

  std::printf(
      "\nPaper's shape: the energy-constrained search converges to the\n"
      "500 mJ budget exactly like the latency-constrained one — the\n"
      "framework is metric-agnostic (Sec 3.5 / 4.3).\n");
  return 0;
}
