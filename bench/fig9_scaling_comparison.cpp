// Reproduces Figure 9: LightNets against MobileNetV2 scaled by width or
// input resolution to meet the same latency budgets, all under the
// 50-epoch quick-evaluation protocol. The paper's conclusion: searched
// architectures clearly beat uniform scaling at every latency.

#include <cstdio>
#include <iostream>

#include "baselines/scaling.hpp"
#include "common.hpp"
#include "core/lightnas.hpp"
#include "eval/accuracy_model.hpp"
#include "space/flops.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

using namespace lightnas;

int main() {
  bench::banner("fig9_scaling_comparison",
                "Figure 9 (LightNAS vs width/resolution scaling)");
  bench::Pipeline pipeline;
  const eval::AccuracyModel accuracy(pipeline.space);

  util::Table table({"model", "latency (ms)", "MACs (M)",
                     "quick top-1 (%)", "family"});
  util::CsvWriter csv({"family", "latency_ms", "quick_top1"});

  // --- width-scaled MobileNetV2 ----------------------------------------
  for (const baselines::ScaledModel& model : baselines::width_scaled_mobilenets(
           {0.75, 0.9, 1.0, 1.1, 1.25, 1.4}, pipeline.cost())) {
    const eval::AccuracyModel scaled_accuracy(model.space);
    const double quick = scaled_accuracy.quick_top1(model.arch);
    table.add_row({model.label(), util::fmt_ms(model.latency_ms),
                   util::fmt_double(model.macs / 1e6, 0),
                   util::fmt_pct(quick), "width-scaled"});
    csv.add_row({"width", util::fmt_double(model.latency_ms, 3),
                 util::fmt_double(quick, 3)});
  }

  // --- resolution-scaled MobileNetV2 -----------------------------------
  for (const baselines::ScaledModel& model :
       baselines::resolution_scaled_mobilenets({176, 192, 208, 224, 240, 256},
                                               pipeline.cost())) {
    const eval::AccuracyModel scaled_accuracy(model.space);
    const double quick = scaled_accuracy.quick_top1(model.arch);
    table.add_row({model.label(), util::fmt_ms(model.latency_ms),
                   util::fmt_double(model.macs / 1e6, 0),
                   util::fmt_pct(quick), "resolution-scaled"});
    csv.add_row({"resolution", util::fmt_double(model.latency_ms, 3),
                 util::fmt_double(quick, 3)});
  }

  // --- LightNets at matching budgets ------------------------------------
  auto predictor = bench::train_latency_predictor(pipeline);
  nn::SyntheticTaskConfig task_config;
  task_config.train_size = bench::scaled(16384, 4096);
  const nn::SyntheticTask task = nn::make_synthetic_task(task_config);

  table.add_separator();
  for (double target : {18.0, 21.0, 24.0, 27.0}) {
    core::LightNasConfig config;
    config.target = target;
    config.seed = 31;
    if (bench::fast_mode()) {
      config.epochs = 24;
      config.warmup_epochs = 8;
      config.w_steps_per_epoch = 24;
      config.alpha_steps_per_epoch = 16;
    }
    core::LightNas engine(pipeline.space, *predictor, task,
                          core::SupernetConfig{}, config);
    const core::SearchResult result = engine.search();
    const double lat = pipeline.cost().network_latency_ms(
        pipeline.space, result.architecture);
    const double quick = accuracy.quick_top1(result.architecture);
    table.add_row({"LightNet-" + util::fmt_double(target, 0) + "ms",
                   util::fmt_ms(lat),
                   util::fmt_double(space::count_macs(pipeline.space,
                                                      result.architecture) /
                                        1e6,
                                    0),
                   util::fmt_pct(quick), "LightNAS (searched)"});
    csv.add_row({"lightnas", util::fmt_double(lat, 3),
                 util::fmt_double(quick, 3)});
  }
  csv.write_file("fig9_scaling_comparison.csv");
  table.print(std::cout);

  std::printf(
      "\nPaper's shape: at matched latency, searched LightNets sit above\n"
      "both scaling families on the accuracy axis (the families overlap\n"
      "each other; search dominates both).\n");
  return 0;
}
