// Google-benchmark microbenchmarks for the hot paths of the framework:
// the analytical cost model, predictor inference/backprop, Gumbel
// sampling, architecture encoding, and one supernet optimization step.
// These quantify the "negligible overhead" claims (Sec 3.2: predictor
// inference < 1 ms) on the host machine.

#include <benchmark/benchmark.h>

#include "core/gumbel.hpp"
#include "core/supernet.hpp"
#include "hw/cost_model.hpp"
#include "nn/ops.hpp"
#include "nn/optim.hpp"
#include "predictors/mlp_predictor.hpp"
#include "space/flops.hpp"

namespace {

using namespace lightnas;

const space::SearchSpace& the_space() {
  static const space::SearchSpace space = space::SearchSpace::fbnet_xavier();
  return space;
}

void BM_CostModelLatency(benchmark::State& state) {
  const hw::CostModel model(hw::DeviceProfile::jetson_xavier_maxn(), 8);
  util::Rng rng(1);
  const space::Architecture arch = the_space().random_architecture(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        model.network_latency_ms(the_space(), arch));
  }
}
BENCHMARK(BM_CostModelLatency);

void BM_CostModelEnergy(benchmark::State& state) {
  const hw::CostModel model(hw::DeviceProfile::jetson_xavier_maxn(), 8);
  util::Rng rng(2);
  const space::Architecture arch = the_space().random_architecture(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.network_energy_mj(the_space(), arch));
  }
}
BENCHMARK(BM_CostModelEnergy);

void BM_MacsCount(benchmark::State& state) {
  util::Rng rng(3);
  const space::Architecture arch = the_space().random_architecture(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(space::count_macs(the_space(), arch));
  }
}
BENCHMARK(BM_MacsCount);

void BM_OneHotEncode(benchmark::State& state) {
  util::Rng rng(4);
  const space::Architecture arch = the_space().random_architecture(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(arch.encode_one_hot(the_space().num_ops()));
  }
}
BENCHMARK(BM_OneHotEncode);

void BM_GumbelNoise(benchmark::State& state) {
  util::Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::gumbel_noise(21, 7, rng));
  }
}
BENCHMARK(BM_GumbelNoise);

predictors::MlpPredictor& trained_predictor() {
  static predictors::MlpPredictor* predictor = [] {
    auto* p = new predictors::MlpPredictor(the_space().num_layers(),
                                           the_space().num_ops(), 7);
    hw::HardwareSimulator device(hw::DeviceProfile::jetson_xavier_maxn(), 8,
                                 42);
    util::Rng rng(1);
    const predictors::MeasurementDataset data =
        predictors::build_measurement_dataset(
            the_space(), device, 400, predictors::Metric::kLatencyMs, rng);
    predictors::MlpTrainConfig config;
    config.epochs = 10;
    p->train(data, config);
    return p;
  }();
  return *predictor;
}

void BM_PredictorInference(benchmark::State& state) {
  // The paper's Sec 3.2 claim: one-time inference takes well under a
  // millisecond.
  util::Rng rng(6);
  const space::Architecture arch = the_space().random_architecture(rng);
  trained_predictor();
  for (auto _ : state) {
    benchmark::DoNotOptimize(trained_predictor().predict(arch));
  }
}
BENCHMARK(BM_PredictorInference);

void BM_PredictorBackward(benchmark::State& state) {
  // Eq 12's d(LAT)/d(encoding): one forward + one backward pass.
  util::Rng rng(7);
  const space::Architecture arch = the_space().random_architecture(rng);
  const std::vector<float> enc =
      arch.encode_one_hot(the_space().num_ops());
  trained_predictor();
  for (auto _ : state) {
    nn::Tensor x(1, enc.size());
    std::copy(enc.begin(), enc.end(), x.data().begin());
    nn::VarPtr input = nn::make_leaf(std::move(x));
    nn::backward(trained_predictor().forward_var(input));
    benchmark::DoNotOptimize(input->grad);
  }
}
BENCHMARK(BM_PredictorBackward);

void BM_SupernetSinglePathStep(benchmark::State& state) {
  nn::SyntheticTaskConfig task_config;
  task_config.train_size = 256;
  task_config.valid_size = 64;
  const nn::SyntheticTask task = nn::make_synthetic_task(task_config);
  core::SurrogateSupernet net(the_space(), task.train.feature_dim(), 10,
                              core::SupernetConfig{});
  nn::Sgd optimizer(net.weight_parameters(), 0.1, 0.9, 0.0, 5.0);
  util::Rng rng(8);
  const space::Architecture arch = the_space().random_architecture(rng);
  nn::Dataset batch = task.train.gather(rng.permutation(48));
  for (auto _ : state) {
    optimizer.zero_grad();
    const nn::VarPtr logits =
        net.forward_single_path(batch.features, arch.ops());
    const nn::VarPtr loss =
        nn::ops::softmax_cross_entropy(logits, batch.labels);
    nn::backward(loss);
    optimizer.step();
  }
}
BENCHMARK(BM_SupernetSinglePathStep);

void BM_SupernetMultiPathForward(benchmark::State& state) {
  // The K-times compute of the multi-path mode (Table 1's complexity
  // column), measured directly.
  nn::SyntheticTaskConfig task_config;
  task_config.train_size = 256;
  task_config.valid_size = 64;
  const nn::SyntheticTask task = nn::make_synthetic_task(task_config);
  core::SurrogateSupernet net(the_space(), task.train.feature_dim(), 10,
                              core::SupernetConfig{});
  util::Rng rng(9);
  nn::Dataset batch = task.train.gather(rng.permutation(48));
  nn::Tensor weights = nn::Tensor::full(the_space().num_layers(),
                                        the_space().num_ops(),
                                        1.0f / 7.0f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.forward_multi_path(
        batch.features, nn::make_const(weights)));
  }
}
BENCHMARK(BM_SupernetMultiPathForward);

}  // namespace

BENCHMARK_MAIN();
