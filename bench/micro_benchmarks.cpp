// Roofline microbenchmark + gate for the SIMD microkernel layer
// (src/nn/simd.hpp): the four dense hot-path kernels — matmul (NN),
// matmul_tn, matmul_nt, and the fused add_row_relu — timed per ISA tier
// against the machine's measured roofline.
//
// Method (HPC measurement discipline, not google-benchmark vibes):
//  - every kernel arm runs `warmup` untimed reps, then 30+ timed reps
//    inside a warmed TensorPool (so the timer sees arithmetic, not the
//    allocator); median and p95 of the per-rep times are reported
//  - the machine roofline is probed directly: peak one-core GFLOP/s from
//    a register-tiled FMA loop and sustained bandwidth from a
//    STREAM-triad sweep (simd::peak_gflops_probe / stream_bandwidth_probe)
//  - each kernel reports achieved GFLOP/s (GB/s for the bandwidth-bound
//    relu), its arithmetic intensity, and percent of its roofline bound
//    min(peak, bandwidth * intensity)
//
// Gates (exit 1 on violation):
//  - bit-identity (always enforced): scalar vs AVX2 on an odd-shape
//    matrix sweep including NaN/inf propagation, and full scalar-vs-AVX2
//    search-step trajectory + trained-predictor-state identity — the
//    accumulation-order contract that keeps checkpoints portable across
//    hosts. Skipped (reported as such) only when no AVX2 tier exists.
//  - speedup (AVX2 hosts): vectorized matmul median throughput >= 2x the
//    scalar tier. Gracefully SKIPPED when AVX2 is not compiled in or not
//    supported by the CPU.
//
// Results land machine-readably in BENCH_micro.json (section "roofline")
// through bench::update_bench_json, next to BENCH_train/alloc/serve.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <limits>
#include <string>
#include <vector>

#include "common.hpp"
#include "core/lightnas.hpp"
#include "hw/cost_model.hpp"
#include "io/json.hpp"
#include "nn/pool.hpp"
#include "nn/simd.hpp"
#include "nn/tensor.hpp"
#include "predictors/mlp_predictor.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace lightnas;

namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct RepStats {
  double median_ms = 0.0;
  double p95_ms = 0.0;
};

RepStats summarize(std::vector<double> seconds) {
  std::sort(seconds.begin(), seconds.end());
  RepStats stats;
  stats.median_ms = seconds[seconds.size() / 2] * 1e3;
  const std::size_t p95 =
      std::min(seconds.size() - 1,
               static_cast<std::size_t>(
                   std::ceil(0.95 * static_cast<double>(seconds.size()))));
  stats.p95_ms = seconds[p95] * 1e3;
  return stats;
}

/// One benchmark arm: `reps` timed calls of `fn` under a warmed pool,
/// forced to the given ISA tier for the whole arm.
template <typename Fn>
RepStats time_kernel(nn::simd::IsaLevel isa, std::size_t warmup,
                     std::size_t reps, Fn&& fn) {
  const nn::simd::ScopedIsa forced(isa);
  nn::PooledScope pool(nn::PoolMode::kFresh);
  for (std::size_t i = 0; i < warmup; ++i) fn();
  std::vector<double> seconds;
  seconds.reserve(reps);
  for (std::size_t i = 0; i < reps; ++i) {
    const double start = now_seconds();
    fn();
    seconds.push_back(now_seconds() - start);
  }
  return summarize(std::move(seconds));
}

nn::Tensor random_tensor(std::size_t rows, std::size_t cols,
                         std::uint64_t seed) {
  util::Rng rng(seed);
  nn::Tensor t = nn::Tensor::uninitialized(rows, cols);
  for (std::size_t i = 0; i < t.size(); ++i) {
    t[i] = static_cast<float>(rng.normal(0.0, 1.0));
  }
  return t;
}

bool bits_equal(const nn::Tensor& a, const nn::Tensor& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() &&
         std::memcmp(a.data().data(), b.data().data(),
                     a.size() * sizeof(float)) == 0;
}

/// Scalar-vs-forced-ISA bitwise identity over an odd-shape sweep of all
/// four kernels, including a NaN/inf propagation shape (the relu max and
/// the no-zero-skip GEMM contract must not launder non-finite values).
bool identity_sweep(nn::simd::IsaLevel isa) {
  const std::size_t dims[] = {1, 2, 3, 5, 7, 8, 9, 15, 16, 17};
  bool pass = true;
  for (const std::size_t m : dims) {
    for (const std::size_t k : dims) {
      for (const std::size_t n : dims) {
        const nn::Tensor a = random_tensor(m, k, 1000 + m * 37 + k);
        const nn::Tensor b = random_tensor(k, n, 2000 + k * 37 + n);
        const nn::Tensor at = random_tensor(k, m, 3000 + m + k);
        const nn::Tensor bt = random_tensor(n, k, 4000 + n + k);
        nn::Tensor scalar_nn, scalar_tn, scalar_nt, forced_nn, forced_tn,
            forced_nt;
        {
          const nn::simd::ScopedIsa forced(nn::simd::IsaLevel::kScalar);
          scalar_nn = nn::matmul(a, b);
          scalar_tn = nn::matmul_tn(at, b);
          scalar_nt = nn::matmul_nt(a, bt);
        }
        {
          const nn::simd::ScopedIsa forced_scope(isa);
          forced_nn = nn::matmul(a, b);
          forced_tn = nn::matmul_tn(at, b);
          forced_nt = nn::matmul_nt(a, bt);
        }
        if (!bits_equal(scalar_nn, forced_nn) ||
            !bits_equal(scalar_tn, forced_tn) ||
            !bits_equal(scalar_nt, forced_nt)) {
          std::printf("  identity FAIL at m=%zu k=%zu n=%zu\n", m, k, n);
          pass = false;
        }
      }
    }
  }
  // Fused add_row_relu over odd widths, with non-finite values mixed in.
  for (const std::size_t rows : dims) {
    for (const std::size_t cols : dims) {
      nn::Tensor x = random_tensor(rows, cols, 5000 + rows * 41 + cols);
      nn::Tensor bias = random_tensor(1, cols, 6000 + cols);
      x[0] = std::numeric_limits<float>::quiet_NaN();
      if (x.size() > 1) x[x.size() - 1] = -std::numeric_limits<float>::infinity();
      nn::Tensor x_scalar = x;
      nn::Tensor x_forced = x;
      {
        const nn::simd::ScopedIsa forced(nn::simd::IsaLevel::kScalar);
        x_scalar.add_row_relu_inplace(bias);
      }
      {
        const nn::simd::ScopedIsa forced_scope(isa);
        x_forced.add_row_relu_inplace(bias);
      }
      if (!bits_equal(x_scalar, x_forced)) {
        std::printf("  identity FAIL add_row_relu rows=%zu cols=%zu\n", rows,
                    cols);
        pass = false;
      }
    }
  }
  return pass;
}

predictors::MlpPredictor::State train_tiny_predictor(
    const space::SearchSpace& space, nn::simd::IsaLevel isa, bool smoke) {
  const nn::simd::ScopedIsa forced(isa);
  const hw::CostModel model(hw::DeviceProfile::jetson_xavier_maxn(), 8);
  util::Rng rng(99);
  predictors::MeasurementDataset data;
  const std::size_t samples = smoke ? 256 : 1024;
  for (std::size_t i = 0; i < samples; ++i) {
    space::Architecture arch = space.random_architecture(rng);
    data.encodings.push_back(arch.encode_one_hot(space.num_ops()));
    data.targets.push_back(model.network_latency_ms(space, arch));
    data.architectures.push_back(std::move(arch));
  }
  predictors::MlpPredictor predictor(space.num_layers(), space.num_ops(),
                                     /*seed=*/11);
  predictors::MlpTrainConfig config;
  config.epochs = smoke ? 3 : 6;
  config.batch_size = 32;
  predictor.train(data, config);
  return predictor.export_state();
}

bool states_identical(const predictors::MlpPredictor::State& a,
                      const predictors::MlpPredictor::State& b) {
  if (a.tensors.size() != b.tensors.size()) return false;
  for (std::size_t i = 0; i < a.tensors.size(); ++i) {
    if (a.tensors[i] != b.tensors[i]) return false;  // exact float equality
  }
  return a.target_mean == b.target_mean && a.target_std == b.target_std;
}

core::SearchResult run_tiny_search(const space::SearchSpace& space,
                                   const predictors::MlpPredictor& predictor,
                                   const nn::SyntheticTask& task,
                                   nn::simd::IsaLevel isa, bool smoke) {
  const nn::simd::ScopedIsa forced(isa);
  core::LightNasConfig config;
  config.seed = 5;
  config.epochs = smoke ? 3 : 6;
  config.warmup_epochs = 1;
  config.w_steps_per_epoch = smoke ? 6 : 12;
  config.alpha_steps_per_epoch = smoke ? 3 : 6;
  config.batch_size = smoke ? 16 : 32;
  config.target = 24.0;
  core::LightNas engine(space, predictor, task, core::SupernetConfig{},
                        config);
  return engine.search();
}

bool search_results_identical(const core::SearchResult& a,
                              const core::SearchResult& b) {
  if (a.trace.size() != b.trace.size()) return false;
  for (std::size_t e = 0; e < a.trace.size(); ++e) {
    if (a.trace[e].derived.ops() != b.trace[e].derived.ops() ||
        a.trace[e].lambda != b.trace[e].lambda ||
        a.trace[e].predicted_cost != b.trace[e].predicted_cost ||
        a.trace[e].valid_loss != b.trace[e].valid_loss) {
      return false;
    }
  }
  return a.architecture.ops() == b.architecture.ops() &&
         a.final_predicted_cost == b.final_predicted_cost &&
         a.final_lambda == b.final_lambda;
}

struct KernelReport {
  std::string name;
  double flops = 0.0;         // per call (or bytes for bandwidth kernels)
  double bytes = 0.0;         // memory traffic per call
  RepStats scalar;
  RepStats simd;              // zeroed when no AVX2 tier
  double speedup = 0.0;       // scalar_median / simd_median
  double gflops_simd = 0.0;   // best tier achieved
  double gflops_scalar = 0.0;
  double intensity = 0.0;     // flops / bytes
  double roof_gflops = 0.0;   // min(peak, bw * intensity)
  double pct_roof = 0.0;
};

io::Json arm_json(const RepStats& stats, double flops) {
  io::Json arm = io::Json::object();
  arm.set("median_ms", io::Json(stats.median_ms));
  arm.set("p95_ms", io::Json(stats.p95_ms));
  if (stats.median_ms > 0.0 && flops > 0.0) {
    arm.set("gflops", io::Json(flops / (stats.median_ms * 1e-3) / 1e9));
  }
  return arm;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  smoke = smoke || bench::fast_mode();

  bench::banner("micro_benchmarks",
                "SIMD microkernel roofline: per-kernel GFLOPs/bandwidth, "
                "scalar-vs-AVX2 speedup gate, bit-identity gate");

  const bool avx2 = nn::simd::avx2_compiled() &&
                    nn::simd::cpu_supports(nn::simd::IsaLevel::kAvx2);
  const bool fma = avx2 && nn::simd::cpu_supports(nn::simd::IsaLevel::kAvx2Fma);
  std::printf("isa: compiled_avx2=%d cpu_avx2=%d cpu_fma=%d -> default "
              "tier %s\n",
              nn::simd::avx2_compiled() ? 1 : 0, avx2 ? 1 : 0, fma ? 1 : 0,
              nn::simd::isa_name(nn::simd::detect_best()));

  bool all_pass = true;

  // --- machine roofline -------------------------------------------------
  const double probe_seconds = smoke ? 0.08 : 0.25;
  const double peak_gflops = avx2
                                 ? nn::simd::peak_gflops_probe(probe_seconds)
                                 : 0.0;
  const double bandwidth_gbs = nn::simd::stream_bandwidth_probe(probe_seconds);
  std::printf("roofline probes: peak %.1f GFLOP/s (one core%s), triad "
              "bandwidth %.1f GB/s\n",
              peak_gflops, avx2 ? (fma ? ", fma" : ", avx2") : ", n/a",
              bandwidth_gbs);

  // --- kernel arms ------------------------------------------------------
  const std::size_t dim = smoke ? 160 : 256;
  // Sized well past any LLC (256 MB vs ~100-400 MB server L3; adaptive
  // replacement policies retain slices of a barely-larger working set)
  // so the bandwidth-bound kernel is actually DRAM-resident — otherwise
  // "% roof" compares cache throughput against the DRAM triad roof and
  // reads above 100.
  const std::size_t relu_rows = 16384;
  const std::size_t relu_cols = 4096;
  const std::size_t warmup = 3;
  const std::size_t reps = smoke ? 30 : 40;

  const nn::Tensor a = random_tensor(dim, dim, 1);
  const nn::Tensor b = random_tensor(dim, dim, 2);
  const double d = static_cast<double>(dim);

  std::vector<KernelReport> reports;
  const auto bench_kernel = [&](const std::string& name, double flops,
                                double bytes, const auto& fn) {
    KernelReport report;
    report.name = name;
    report.flops = flops;
    report.bytes = bytes;
    report.scalar = time_kernel(nn::simd::IsaLevel::kScalar, warmup, reps, fn);
    report.gflops_scalar =
        flops / (report.scalar.median_ms * 1e-3) / 1e9;
    if (avx2) {
      report.simd = time_kernel(nn::simd::IsaLevel::kAvx2, warmup, reps, fn);
      report.speedup = report.scalar.median_ms / report.simd.median_ms;
      report.gflops_simd = flops / (report.simd.median_ms * 1e-3) / 1e9;
    }
    report.intensity = bytes > 0.0 ? flops / bytes : 0.0;
    if (peak_gflops > 0.0 && bandwidth_gbs > 0.0) {
      report.roof_gflops =
          std::min(peak_gflops, bandwidth_gbs * report.intensity);
      const double achieved = avx2 ? report.gflops_simd : report.gflops_scalar;
      report.pct_roof = 100.0 * achieved / report.roof_gflops;
    }
    reports.push_back(report);
  };

  // 2mnk flops; traffic approximated as the three operand matrices once
  // (cache-resident blocking makes this the compulsory lower bound, which
  // is the standard roofline convention).
  bench_kernel("matmul_nn", 2.0 * d * d * d, 3.0 * d * d * 4.0,
               [&] { (void)nn::matmul(a, b); });
  bench_kernel("matmul_tn", 2.0 * d * d * d, 3.0 * d * d * 4.0,
               [&] { (void)nn::matmul_tn(a, b); });
  bench_kernel("matmul_nt", 2.0 * d * d * d, 3.0 * d * d * 4.0,
               [&] { (void)nn::matmul_nt(a, b); });
  {
    const double rr = static_cast<double>(relu_rows);
    const double rc = static_cast<double>(relu_cols);
    nn::Tensor x = random_tensor(relu_rows, relu_cols, 3);
    const nn::Tensor bias = random_tensor(1, relu_cols, 4);
    // add + max per element; read + write of x, bias stays cached.
    bench_kernel("add_row_relu", 2.0 * rr * rc, 2.0 * rr * rc * 4.0,
                 [&] { x.add_row_relu_inplace(bias); });
  }

  util::Table table({"kernel", "scalar ms (p50/p95)", "avx2 ms (p50/p95)",
                     "speedup", "GFLOP/s", "roof", "% roof"});
  for (const KernelReport& r : reports) {
    table.add_row(
        {r.name,
         util::fmt_double(r.scalar.median_ms, 3) + " / " +
             util::fmt_double(r.scalar.p95_ms, 3),
         avx2 ? util::fmt_double(r.simd.median_ms, 3) + " / " +
                    util::fmt_double(r.simd.p95_ms, 3)
              : "n/a",
         avx2 ? util::fmt_double(r.speedup, 2) + "x" : "n/a",
         util::fmt_double(avx2 ? r.gflops_simd : r.gflops_scalar, 2),
         r.roof_gflops > 0.0 ? util::fmt_double(r.roof_gflops, 1) : "n/a",
         r.pct_roof > 0.0 ? util::fmt_double(r.pct_roof, 1) : "n/a"});
  }
  std::printf("\nkernel roofline (%zux%zux%zu GEMMs, %zux%zu relu, %zu reps "
              "median):\n",
              dim, dim, dim, relu_rows, relu_cols, reps);
  table.print(std::cout);

  // --- gate: vectorized matmul >= 2x scalar -----------------------------
  bool speedup_pass = true;
  double matmul_speedup = 0.0;
  if (!avx2) {
    std::printf("\nspeedup gate: SKIPPED (no AVX2 tier on this host/build)\n");
  } else {
    matmul_speedup = reports[0].speedup;
    std::printf("\nmatmul speedup: %.2fx (required >= 2x)\n", matmul_speedup);
    if (matmul_speedup < 2.0) {
      std::printf("FAIL: vectorized matmul below 2x scalar\n");
      speedup_pass = false;
      all_pass = false;
    }
  }

  // --- gate: bit-identity -----------------------------------------------
  bool identity_pass = true;
  bool trajectory_pass = true;
  if (!avx2) {
    std::printf("identity gates: SKIPPED (no AVX2 tier on this host/build)\n");
  } else {
    identity_pass = identity_sweep(nn::simd::IsaLevel::kAvx2);
    std::printf("odd-shape scalar-vs-avx2 bit-identity: %s\n",
                identity_pass ? "ok" : "FAIL");

    const space::SearchSpace space = space::SearchSpace::fbnet_xavier();
    const bool predictor_same = states_identical(
        train_tiny_predictor(space, nn::simd::IsaLevel::kScalar, smoke),
        train_tiny_predictor(space, nn::simd::IsaLevel::kAvx2, smoke));
    predictors::MlpPredictor predictor = predictors::MlpPredictor::from_state(
        train_tiny_predictor(space, nn::simd::IsaLevel::kScalar, smoke));
    nn::SyntheticTaskConfig task_config;
    task_config.train_size = smoke ? 384 : 1024;
    const nn::SyntheticTask task = nn::make_synthetic_task(task_config);
    const bool search_same = search_results_identical(
        run_tiny_search(space, predictor, task, nn::simd::IsaLevel::kScalar,
                        smoke),
        run_tiny_search(space, predictor, task, nn::simd::IsaLevel::kAvx2,
                        smoke));
    std::printf("predictor-training trajectory identity: %s\n",
                predictor_same ? "ok" : "FAIL");
    std::printf("search-step trajectory identity: %s\n",
                search_same ? "ok" : "FAIL");
    trajectory_pass = predictor_same && search_same;
    if (!identity_pass || !trajectory_pass) all_pass = false;
  }

  // --- machine-readable summary ----------------------------------------
  io::Json out = io::Json::object();
  out.set("bench", io::Json("micro_benchmarks"));
  out.set("smoke", io::Json(smoke));
  out.set("avx2_compiled", io::Json(nn::simd::avx2_compiled()));
  out.set("avx2_available", io::Json(avx2));
  out.set("fma_available", io::Json(fma));
  out.set("default_isa",
          io::Json(nn::simd::isa_name(nn::simd::detect_best())));
  out.set("peak_gflops", io::Json(peak_gflops));
  out.set("bandwidth_gbs", io::Json(bandwidth_gbs));
  io::Json kernels = io::Json::object();
  for (const KernelReport& r : reports) {
    io::Json k = io::Json::object();
    k.set("flops_per_call", io::Json(r.flops));
    k.set("bytes_per_call", io::Json(r.bytes));
    k.set("arithmetic_intensity", io::Json(r.intensity));
    k.set("scalar", arm_json(r.scalar, r.flops));
    if (avx2) {
      k.set("avx2", arm_json(r.simd, r.flops));
      k.set("speedup", io::Json(r.speedup));
    }
    if (r.roof_gflops > 0.0) {
      k.set("roof_gflops", io::Json(r.roof_gflops));
      k.set("pct_roof", io::Json(r.pct_roof));
    }
    kernels.set(r.name, std::move(k));
  }
  out.set("kernels", std::move(kernels));
  out.set("matmul_speedup", io::Json(matmul_speedup));
  out.set("speedup_pass", io::Json(speedup_pass));
  out.set("identity_pass", io::Json(identity_pass));
  out.set("trajectory_identical", io::Json(trajectory_pass));
  bench::update_bench_json("BENCH_micro.json", "roofline", out);
  std::printf("\nupdated BENCH_micro.json (section: roofline)\n");

  if (!all_pass) {
    std::printf("FAIL\n");
    return 1;
  }
  std::printf(avx2 ? "PASS\n" : "PASS (AVX2 gates skipped on this host)\n");
  return 0;
}
