// Multi-constraint search (extension; generalizes Fig 7/8): one search
// run satisfying a latency target AND an energy target simultaneously,
// each with its own learned multiplier. The paper's Sec 3.5 notes the
// predictor can be swapped for any metric; with independent lambdas the
// engine composes metrics instead of merely swapping them.

#include <cstdio>
#include <iostream>

#include "common.hpp"
#include "core/lightnas.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

using namespace lightnas;

int main() {
  bench::banner("multi_constraint",
                "joint latency+energy constrained search (extension; not "
                "a paper artifact)");
  bench::Pipeline pipeline;
  auto latency = bench::train_latency_predictor(pipeline);
  auto energy = bench::train_energy_predictor(pipeline);

  nn::SyntheticTaskConfig task_config;
  task_config.train_size = bench::scaled(16384, 4096);
  const nn::SyntheticTask task = nn::make_synthetic_task(task_config);

  struct Case {
    double t_lat;
    double t_energy;
  };
  // Feasible pairs (the latency/energy frontier is tight but not rigid:
  // compute-heavy vs memory-heavy ops trade the two differently).
  const Case cases[] = {{20.0, 500.0}, {24.0, 600.0}, {22.0, 560.0}};

  util::Table table({"T_lat (ms)", "T_energy (mJ)", "pred lat", "meas lat",
                     "pred energy", "meas energy", "lambda_lat",
                     "lambda_energy"});
  for (const Case& c : cases) {
    core::LightNasConfig config;
    config.seed = 17;
    if (bench::fast_mode()) {
      config.epochs = 24;
      config.warmup_epochs = 8;
      config.w_steps_per_epoch = 24;
      config.alpha_steps_per_epoch = 16;
    }
    core::LightNas engine(
        pipeline.space,
        {core::Constraint{latency.get(), c.t_lat},
         core::Constraint{energy.get(), c.t_energy}},
        task, core::SupernetConfig{}, config);
    const core::SearchResult result = engine.search();

    table.add_row(
        {util::fmt_double(c.t_lat, 0), util::fmt_double(c.t_energy, 0),
         util::fmt_ms(result.final_costs[0]),
         util::fmt_ms(pipeline.cost().network_latency_ms(
             pipeline.space, result.architecture)),
         util::fmt_double(result.final_costs[1], 0),
         util::fmt_double(pipeline.cost().network_energy_mj(
                              pipeline.space, result.architecture),
                          0),
         util::fmt_double(result.final_lambdas[0], 3),
         util::fmt_double(result.final_lambdas[1], 3)});
    std::printf("T=(%.0f ms, %.0f mJ) done\n", c.t_lat, c.t_energy);
  }
  std::printf("\n");
  table.print(std::cout);

  std::printf(
      "\nBoth constraints are tracked by their own lambda in the same\n"
      "one-shot run; when the pair is infeasible one multiplier grows\n"
      "without bound — a useful feasibility signal in itself.\n");
  return 0;
}
