// Compiled-plan gate: the shape-specialized execution plan
// (nn/plan.hpp) against the recycled-tape dynamic path.
//
// Gates (exit 1 on violation):
//  - Throughput (full mode only): steady-state *planned* w-steps must be
//    >= 1.3x the steps/s of the warmed dynamic path (pool + cached tape
//    both active — the strongest dynamic configuration) at the paper's
//    embedded operating point (batch 8, fixed path), where Var/pool
//    bookkeeping — not GEMM arithmetic — dominates a step.
//  - Zero overhead (always enforced): once a plan is compiled, further
//    planned steps perform zero heap allocations (operator new is
//    instrumented in this binary) and zero tensor-pool traffic.
//  - Bit-identity (always enforced): full search trajectories with
//    plans enabled are bit-identical to the dynamic engine, including
//    through a checkpoint kill + resume.
//  - Artifact round-trip (always enforced): recorded programs survive
//    save_plan -> load_plan -> bind_program_params -> compile with
//    bit-identical execution, and a cache warmed from the artifact
//    serves hits from the first lookup (no dynamic steps needed).
//  - Predictor plans (always enforced): a forward-only plan of the MLP
//    predictor matches forward_var bit-for-bit.
//
// Results are emitted machine-readably to BENCH_plan.json.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <memory>
#include <new>
#include <optional>
#include <string>
#include <vector>

#include "common.hpp"
#include "core/lightnas.hpp"
#include "core/search_step.hpp"
#include "hw/cost_model.hpp"
#include "io/json.hpp"
#include "io/serialize.hpp"
#include "nn/ops.hpp"
#include "nn/parallel.hpp"
#include "nn/plan.hpp"
#include "nn/pool.hpp"
#include "predictors/mlp_predictor.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

// --- heap-allocation instrumentation -----------------------------------
// Replacing the global allocation functions lets the zero-overhead gate
// observe *every* heap allocation in the steady-state window, from any
// translation unit. Counting is flipped on only around the measured
// steps; the counter itself is lock-free.

namespace {
std::atomic<std::uint64_t> g_heap_allocs{0};
std::atomic<bool> g_count_allocs{false};

void* counted_alloc(std::size_t size) {
  if (g_count_allocs.load(std::memory_order_relaxed)) {
    g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  }
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

using namespace lightnas;

namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

core::LightNasConfig trainer_config(bool planned) {
  core::LightNasConfig config;
  config.seed = 3;
  config.plan = nn::plan::PlanSettings{};
  config.plan.enabled = planned;
  config.plan.compile_after = 2;
  return config;
}

/// Fixed batch at the embedded operating point (batch 8): the plan-hit
/// regime is a recurring (path, batch shape) key, exactly like the
/// tape-hit regime of the dynamic path.
nn::Dataset make_batch(const nn::SyntheticTask& task, std::size_t rows) {
  nn::Dataset batch;
  batch.features =
      nn::Tensor::uninitialized(rows, task.train.feature_dim());
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < batch.features.cols(); ++c) {
      batch.features.at(r, c) = task.train.features.at(r, c);
    }
    batch.labels.push_back(task.train.labels[r]);
  }
  return batch;
}

/// Best-of-`reps` timing of `steps` fixed-path w-steps on a fresh
/// trainer (warmed first so compiles / bucket discovery stay off the
/// clock).
double time_steps(const core::SearchTopology& topology,
                  const nn::SyntheticTask& task, const nn::Dataset& batch,
                  const std::vector<std::size_t>& path, bool planned,
                  std::size_t steps, int reps) {
  nn::PooledScope scope(nn::PoolMode::kFresh);
  core::SharedWTrainer trainer(topology, task, core::SupernetConfig{},
                               trainer_config(planned),
                               steps * static_cast<std::size_t>(reps) + 16);
  for (int i = 0; i < 8; ++i) (void)trainer.step(batch, path);
  double best = 1e300;
  for (int rep = 0; rep < reps; ++rep) {
    const double start = now_seconds();
    for (std::size_t s = 0; s < steps; ++s) (void)trainer.step(batch, path);
    best = std::min(best, now_seconds() - start);
  }
  return best;
}

core::LightNasConfig search_config(bool smoke, bool planned) {
  core::LightNasConfig config;
  config.seed = 3;
  config.epochs = smoke ? 4 : 8;
  config.warmup_epochs = 1;
  config.w_steps_per_epoch = smoke ? 8 : 16;
  config.alpha_steps_per_epoch = smoke ? 4 : 8;
  config.batch_size = smoke ? 16 : 32;
  config.target = 24.0;
  config.plan = nn::plan::PlanSettings{};
  config.plan.enabled = planned;
  config.plan.compile_after = 1;
  config.plan.max_plans = 64;
  return config;
}

bool search_results_identical(const core::SearchResult& a,
                              const core::SearchResult& b) {
  if (a.trace.size() != b.trace.size()) return false;
  for (std::size_t e = 0; e < a.trace.size(); ++e) {
    if (a.trace[e].derived.ops() != b.trace[e].derived.ops() ||
        a.trace[e].lambda != b.trace[e].lambda ||
        a.trace[e].predicted_cost != b.trace[e].predicted_cost ||
        a.trace[e].valid_loss != b.trace[e].valid_loss) {
      return false;
    }
  }
  return a.architecture.ops() == b.architecture.ops() &&
         a.final_predicted_cost == b.final_predicted_cost &&
         a.final_lambda == b.final_lambda;
}

// --- artifact round-trip fixtures ---------------------------------------

nn::Tensor random_tensor(std::size_t rows, std::size_t cols,
                         std::uint64_t seed) {
  util::Rng rng(seed);
  nn::Tensor t = nn::Tensor::uninitialized(rows, cols);
  for (std::size_t i = 0; i < t.size(); ++i) {
    t[i] = static_cast<float>(rng.normal(0.0, 1.0));
  }
  return t;
}

struct MlpSpec {
  std::size_t batch, in, hidden, classes;
};

struct MlpModel {
  nn::VarPtr W1, b1, W2, b2;
  std::vector<nn::VarPtr> params() const { return {W1, b1, W2, b2}; }
};

MlpModel make_mlp(const MlpSpec& spec, std::uint64_t seed) {
  MlpModel m;
  m.W1 = nn::make_leaf(random_tensor(spec.in, spec.hidden, seed + 1), "W1");
  m.b1 = nn::make_leaf(random_tensor(1, spec.hidden, seed + 2), "b1");
  m.W2 =
      nn::make_leaf(random_tensor(spec.hidden, spec.classes, seed + 3), "W2");
  m.b2 = nn::make_leaf(random_tensor(1, spec.classes, seed + 4), "b2");
  return m;
}

nn::VarPtr mlp_loss(const MlpModel& m, const nn::VarPtr& x,
                    const std::vector<std::size_t>& labels) {
  using namespace nn::ops;  // NOLINT
  const nn::VarPtr h = relu(add_bias(matmul(x, m.W1), m.b1));
  return softmax_cross_entropy(add_bias(matmul(h, m.W2), m.b2), labels);
}

bool grads_equal(const std::vector<nn::VarPtr>& a,
                 const std::vector<nn::VarPtr>& b) {
  for (std::size_t i = 0; i < a.size(); ++i) {
    const nn::Tensor& ga = a[i]->grad;
    const nn::Tensor& gb = b[i]->grad;
    if (ga.rows() != gb.rows() || ga.cols() != gb.cols() ||
        std::memcmp(ga.data().data(), gb.data().data(),
                    ga.size() * sizeof(float)) != 0) {
      return false;
    }
  }
  return true;
}

bool float_bits_equal(float a, float b) {
  std::uint32_t ua = 0, ub = 0;
  std::memcpy(&ua, &a, sizeof(float));
  std::memcpy(&ub, &b, sizeof(float));
  return ua == ub;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  smoke = smoke || bench::fast_mode();

  bench::banner("plan_compile",
                "shape-specialized execution plans: throughput, zero "
                "overhead, bit-identity, compiled-model artifacts");

  const space::SearchSpace space = space::SearchSpace::fbnet_xavier();
  const core::SearchTopology topology(space);
  nn::SyntheticTaskConfig task_config;
  task_config.train_size = smoke ? 256 : 1024;
  task_config.valid_size = smoke ? 128 : 512;
  const nn::SyntheticTask task = nn::make_synthetic_task(task_config);
  const nn::Dataset batch = make_batch(task, 8);
  const std::vector<std::size_t> path = space.uniform_architecture(0).ops();

  const nn::plan::PlanStats bench_start = nn::plan::global_stats();
  bool all_pass = true;

  // --- 1. throughput: planned vs warmed dynamic w-steps ----------------
  double steps_per_s_dynamic = 0.0;
  double steps_per_s_planned = 0.0;
  double speedup = 0.0;
  bool throughput_pass = true;
  if (smoke) {
    std::printf("throughput gate: SKIPPED (smoke mode)\n");
  } else {
    const std::size_t steps = 1200;
    const double dynamic_s =
        time_steps(topology, task, batch, path, false, steps, 3);
    const double planned_s =
        time_steps(topology, task, batch, path, true, steps, 3);
    steps_per_s_dynamic = static_cast<double>(steps) / dynamic_s;
    steps_per_s_planned = static_cast<double>(steps) / planned_s;
    speedup = steps_per_s_planned / steps_per_s_dynamic;

    util::Table table({"path", "steps/s", "speedup", "gate"});
    table.add_row({"dynamic (pool + tape)",
                   util::fmt_double(steps_per_s_dynamic, 1), "1.0",
                   "reference"});
    table.add_row({"planned", util::fmt_double(steps_per_s_planned, 1),
                   util::fmt_double(speedup, 2), ">= 1.3x"});
    std::printf("steady-state w-steps (batch 8, fixed path, best of 3):\n");
    table.print(std::cout);
    if (speedup < 1.3) {
      std::printf("FAIL: planned steps below 1.3x dynamic\n");
      throughput_pass = false;
      all_pass = false;
    }
  }

  // --- 2. zero overhead: no heap, no pool traffic under the plan -------
  //
  // Two windows:
  //  - plan->execute() alone must perform zero heap allocations and zero
  //    pool operations of any kind — the plan's own contract (no Var
  //    machinery, no buckets, no heap);
  //  - a full planned trainer step (key build + cache lookup + execute +
  //    sparse SGD) must do the same: the fused Sgd::step_on path reads
  //    and writes parameters in place, so even the optimizer touches no
  //    pooled buffers.
  std::uint64_t exec_heap_allocs = 1;
  std::uint64_t exec_pool_ops = 1;
  std::uint64_t steady_heap_allocs = 0;
  std::uint64_t steady_pool_misses = 0;
  std::uint64_t steady_pool_hits = 0;
  std::uint64_t steady_plan_hits = 0;
  const std::size_t steady_steps = smoke ? 32 : 256;
  {
    nn::PooledScope scope(nn::PoolMode::kFresh);
    core::SharedWTrainer trainer(topology, task, core::SupernetConfig{},
                                 trainer_config(true), steady_steps + 16);
    // Warm until the plan is compiled and serving (compile_after = 2).
    for (int i = 0; i < 4; ++i) (void)trainer.step(batch, path);

    // Pure-execute window: record the same forward on this supernet,
    // compile a standalone plan, and drive execute() directly.
    {
      std::unique_ptr<nn::plan::Program> program;
      {
        nn::plan::Recording recording;
        const nn::VarPtr logits =
            trainer.supernet().forward_single_path(batch.features, path);
        const nn::VarPtr loss =
            nn::ops::softmax_cross_entropy(logits, batch.labels);
        program = recording.capture(loss);
      }
      const nn::ParallelContext& ctx = nn::ParallelContext::current();
      std::unique_ptr<nn::plan::ExecutionPlan> plan =
          program != nullptr ? nn::plan::ExecutionPlan::compile(
                                   *program, nn::plan::CompileOptions{}, ctx)
                             : nullptr;
      if (plan != nullptr) {
        const std::vector<const nn::Tensor*> inputs = {&batch.features};
        const std::vector<const std::vector<std::size_t>*> labels = {
            &batch.labels};
        (void)plan->execute(inputs, labels, ctx);  // ensure_grad warmup
        const nn::PoolStats pool_before = nn::TensorPool::global_stats();
        g_heap_allocs.store(0, std::memory_order_relaxed);
        g_count_allocs.store(true, std::memory_order_relaxed);
        for (std::size_t s = 0; s < steady_steps; ++s) {
          (void)plan->execute(inputs, labels, ctx);
        }
        g_count_allocs.store(false, std::memory_order_relaxed);
        const nn::PoolStats pd =
            nn::TensorPool::global_stats() - pool_before;
        exec_heap_allocs = g_heap_allocs.load(std::memory_order_relaxed);
        exec_pool_ops = pd.buffer_hits + pd.buffer_misses + pd.node_hits +
                        pd.node_misses + pd.tape_hits + pd.tape_misses;
      }
    }

    // Full planned-step window: key build + lookup + execute + SGD.
    const nn::PoolStats pool_before = nn::TensorPool::global_stats();
    const nn::plan::PlanStats plan_before = nn::plan::global_stats();
    g_heap_allocs.store(0, std::memory_order_relaxed);
    g_count_allocs.store(true, std::memory_order_relaxed);
    for (std::size_t s = 0; s < steady_steps; ++s) {
      (void)trainer.step(batch, path);
    }
    g_count_allocs.store(false, std::memory_order_relaxed);
    const nn::PoolStats pool_delta =
        nn::TensorPool::global_stats() - pool_before;
    steady_heap_allocs = g_heap_allocs.load(std::memory_order_relaxed);
    steady_pool_misses = pool_delta.buffer_misses + pool_delta.node_misses;
    steady_pool_hits = pool_delta.buffer_hits + pool_delta.node_hits;
    steady_plan_hits = (nn::plan::global_stats() - plan_before).hits;
  }
  const bool zero_overhead =
      exec_heap_allocs == 0 && exec_pool_ops == 0 &&
      steady_heap_allocs == 0 && steady_pool_misses == 0 &&
      steady_pool_hits == 0 && steady_plan_hits == steady_steps;
  std::printf("\npure execute() x%zu: %llu heap allocs, %llu pool ops "
              "(required 0/0)\n",
              steady_steps,
              static_cast<unsigned long long>(exec_heap_allocs),
              static_cast<unsigned long long>(exec_pool_ops));
  std::printf("planned trainer steps x%zu: %llu plan hits, %llu heap "
              "allocs, %llu pool misses, %llu pool hits (required "
              "%zu/0/0/0)\n",
              steady_steps,
              static_cast<unsigned long long>(steady_plan_hits),
              static_cast<unsigned long long>(steady_heap_allocs),
              static_cast<unsigned long long>(steady_pool_misses),
              static_cast<unsigned long long>(steady_pool_hits),
              steady_steps);
  if (!zero_overhead) {
    std::printf("FAIL: planned steps still touch the heap or miss the "
                "pool\n");
    all_pass = false;
  }

  // --- 3. bit-identity: planned vs dynamic search, incl. kill/resume ---
  predictors::MlpPredictor::State pstate =
      predictors::MlpPredictor(space.num_layers(), space.num_ops(), 7)
          .export_state();
  pstate.trained = true;
  pstate.target_mean = 12.0;
  pstate.target_std = 2.5;
  const predictors::MlpPredictor predictor =
      predictors::MlpPredictor::from_state(pstate);

  auto run_search = [&](bool planned,
                        const core::SearchHooks* hooks) {
    core::LightNas engine(space, predictor, task, core::SupernetConfig{},
                          search_config(smoke, planned));
    return hooks != nullptr ? engine.search(*hooks) : engine.search();
  };
  const core::SearchResult dynamic_run = run_search(false, nullptr);
  const core::SearchResult planned_run = run_search(true, nullptr);
  const bool full_identical =
      search_results_identical(dynamic_run, planned_run);

  // Kill after epoch 3, resume from the checkpoint, plans on throughout.
  std::optional<core::SearchCheckpoint> saved;
  core::SearchHooks kill;
  kill.on_checkpoint = [&](const core::SearchCheckpoint& ck) { saved = ck; };
  kill.should_stop = [](std::size_t done) { return done >= 3; };
  (void)run_search(true, &kill);
  bool resume_identical = false;
  if (saved.has_value()) {
    core::SearchHooks resume;
    resume.resume = &*saved;
    resume_identical =
        search_results_identical(planned_run, run_search(true, &resume));
  }
  const bool search_bit_identical = full_identical && resume_identical;
  std::printf("\nsearch trajectory, plans on vs off: %s\n",
              full_identical ? "bit-identical" : "MISMATCH");
  std::printf("kill/resume with plans on: %s\n",
              resume_identical ? "bit-identical" : "MISMATCH");
  std::printf("planned run plan telemetry: hits=%llu misses=%llu "
              "compiles=%llu fused=%llu arena=%llu B\n",
              static_cast<unsigned long long>(planned_run.health.plan_hits),
              static_cast<unsigned long long>(
                  planned_run.health.plan_misses),
              static_cast<unsigned long long>(
                  planned_run.health.plan_compiles),
              static_cast<unsigned long long>(
                  planned_run.health.plan_fused_ops),
              static_cast<unsigned long long>(
                  planned_run.health.plan_arena_bytes));
  if (!search_bit_identical) {
    std::printf("FAIL: plans changed an observable search result\n");
    all_pass = false;
  }

  // --- 4. compiled-model artifact round-trip ---------------------------
  const std::vector<MlpSpec> specs = {
      {8, 16, 32, 10}, {4, 7, 9, 3}, {16, 24, 24, 5}, {1, 12, 8, 2}};
  bool roundtrip_bit_identical = true;
  bool roundtrip_cold_hits = true;
  const nn::ParallelContext serial_ctx{};
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const MlpSpec& spec = specs[i];
    const nn::Tensor features =
        random_tensor(spec.batch, spec.in, 100 + i);
    std::vector<std::size_t> labels;
    for (std::size_t r = 0; r < spec.batch; ++r) {
      labels.push_back(r % spec.classes);
    }
    // Dynamic reference.
    const MlpModel reference = make_mlp(spec, 50 + i);
    const nn::VarPtr loss =
        mlp_loss(reference, nn::make_const(features), labels);
    nn::backward(loss);

    // Record, serialize, reload, bind to a fresh same-seed model.
    const MlpModel recorded = make_mlp(spec, 50 + i);
    std::unique_ptr<nn::plan::Program> program;
    {
      nn::plan::Recording recording;
      const nn::VarPtr traced =
          mlp_loss(recorded, nn::make_const(features), labels);
      program = recording.capture(traced);
    }
    if (program == nullptr) {
      roundtrip_bit_identical = false;
      continue;
    }
    const std::string file =
        (std::filesystem::temp_directory_path() /
         ("lightnas_plan_bench_" + std::to_string(i) + ".json"))
            .string();
    io::save_plan(file, *program);
    nn::plan::Program loaded = io::load_plan(file);
    std::filesystem::remove(file);
    const MlpModel host = make_mlp(spec, 50 + i);
    io::bind_program_params(loaded, host.params());
    std::unique_ptr<nn::plan::ExecutionPlan> plan =
        nn::plan::ExecutionPlan::compile(loaded, nn::plan::CompileOptions{},
                                         serial_ctx);
    if (plan == nullptr ||
        !plan->execute({&features}, {&labels}, serial_ctx)) {
      roundtrip_bit_identical = false;
      continue;
    }
    roundtrip_bit_identical =
        roundtrip_bit_identical &&
        float_bits_equal(loss->value.item(), plan->root_data()[0]) &&
        grads_equal(reference.params(), host.params());

    // A cache warmed from the artifact must serve hits cold: no
    // dynamic steps, no compile trigger.
    nn::plan::PlanSettings settings;
    settings.enabled = true;
    nn::plan::PlanCache cache(settings);
    cache.store("artifact", std::move(plan));
    roundtrip_cold_hits = roundtrip_cold_hits &&
                          cache.lookup("artifact", serial_ctx) != nullptr;
  }
  std::printf("\nartifact round-trip over %zu specs: %s, cold cache hits: "
              "%s\n",
              specs.size(), roundtrip_bit_identical ? "bit-identical" : "FAIL",
              roundtrip_cold_hits ? "yes" : "NO");
  if (!roundtrip_bit_identical || !roundtrip_cold_hits) {
    std::printf("FAIL: compiled-model artifact round-trip broken\n");
    all_pass = false;
  }

  // --- 5. forward-only predictor plans ---------------------------------
  bool predictor_bit_identical = true;
  {
    util::Rng rng(9);
    for (int rep = 0; rep < 8; ++rep) {
      const space::Architecture arch = space.random_architecture(rng);
      const std::vector<float> one_hot =
          arch.encode_one_hot(space.num_ops());
      nn::Tensor encoding(1, one_hot.size());
      for (std::size_t i = 0; i < one_hot.size(); ++i) {
        encoding[i] = one_hot[i];
      }
      const nn::VarPtr dynamic =
          predictor.forward_var(nn::make_const(encoding));
      nn::plan::Recording recording;
      const nn::VarPtr traced =
          predictor.forward_var(nn::make_const(encoding));
      const std::unique_ptr<nn::plan::Program> program =
          recording.capture(traced);
      if (program == nullptr) {
        predictor_bit_identical = false;
        break;
      }
      nn::plan::CompileOptions opts;
      opts.backward = false;
      const auto plan =
          nn::plan::ExecutionPlan::compile(*program, opts, serial_ctx);
      if (plan == nullptr ||
          !plan->execute({&encoding}, {}, serial_ctx) ||
          !float_bits_equal(dynamic->value.item(), plan->root_data()[0])) {
        predictor_bit_identical = false;
        break;
      }
    }
  }
  std::printf("forward-only predictor plans: %s\n",
              predictor_bit_identical ? "bit-identical" : "MISMATCH");
  if (!predictor_bit_identical) {
    std::printf("FAIL: predictor plan diverged from forward_var\n");
    all_pass = false;
  }

  // --- machine-readable summary ----------------------------------------
  const nn::plan::PlanStats delta =
      nn::plan::global_stats() - bench_start;
  io::Json out = io::Json::object();
  out.set("bench", io::Json("plan_compile"));
  out.set("smoke", io::Json(smoke));
  out.set("steps_per_s_dynamic", io::Json(steps_per_s_dynamic));
  out.set("steps_per_s_planned", io::Json(steps_per_s_planned));
  out.set("speedup", io::Json(speedup));
  out.set("throughput_pass", io::Json(throughput_pass));
  out.set("exec_heap_allocs",
          io::Json(static_cast<std::size_t>(exec_heap_allocs)));
  out.set("exec_pool_ops",
          io::Json(static_cast<std::size_t>(exec_pool_ops)));
  out.set("steady_heap_allocs",
          io::Json(static_cast<std::size_t>(steady_heap_allocs)));
  out.set("steady_pool_misses",
          io::Json(static_cast<std::size_t>(steady_pool_misses)));
  out.set("steady_pool_hits",
          io::Json(static_cast<std::size_t>(steady_pool_hits)));
  out.set("steady_plan_hits",
          io::Json(static_cast<std::size_t>(steady_plan_hits)));
  out.set("zero_overhead", io::Json(zero_overhead));
  out.set("search_bit_identical", io::Json(search_bit_identical));
  out.set("roundtrip_bit_identical", io::Json(roundtrip_bit_identical));
  out.set("roundtrip_cold_hits", io::Json(roundtrip_cold_hits));
  out.set("roundtrip_specs", io::Json(specs.size()));
  out.set("predictor_bit_identical", io::Json(predictor_bit_identical));
  out.set("plan_hits", io::Json(static_cast<std::size_t>(delta.hits)));
  out.set("plan_misses", io::Json(static_cast<std::size_t>(delta.misses)));
  out.set("plan_compiles",
          io::Json(static_cast<std::size_t>(delta.compiles)));
  out.set("plan_fused_ops",
          io::Json(static_cast<std::size_t>(delta.fused_ops)));
  out.set("plan_arena_bytes",
          io::Json(static_cast<std::size_t>(delta.arena_bytes)));
  bench::update_bench_json("BENCH_plan.json", "plan_compile", out);
  std::printf("\nupdated BENCH_plan.json (section: plan_compile)\n");

  if (!all_pass) {
    std::printf("FAIL\n");
    return 1;
  }
  std::printf(smoke ? "PASS (smoke: throughput gate skipped)\n" : "PASS\n");
  return 0;
}
