// Serve-resilience campaign: the chaos-tested SLO gate for the
// prediction service.
//
// The serving counterpart of bench/fault_tolerance: where that campaign
// injects faults into the *measurement* path and checks the predictor
// survives, this one injects fault storms into the *serving* backend
// (transients, hangs, drift via serve::FaultyOracle — the hw::FaultSpec
// vocabulary) and checks the service degrades instead of wedging.
//
// Gates:
//   1. identity   — with every resilience feature disabled, answers are
//                   bit-identical to direct predictor calls (the PR 2
//                   contract is untouched);
//   2. parity     — arming deadlines + breaker + fallback on a *clean*
//                   backend keeps closed-loop throughput within noise
//                   of the plain service and resolves everything;
//   3. storm SLO  — under an injected fault storm, >= 99% of requests
//                   resolve (value or typed error) within deadline +
//                   grace, client p99 wait stays bounded, and the
//                   breaker opens;
//   4. recovery   — once the storm stops, the breaker closes again and
//                   answers return to bit-exact fresh predictions;
//   5. liveness   — the whole campaign finishes under a hard watchdog
//                   timeout (a deadlock exits 3 instead of hanging CI).
//
// Results are also emitted machine-readably into BENCH_serve.json
// (section "resilience"; serving_throughput owns section "throughput").

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <thread>
#include <vector>

#include "common.hpp"
#include "predictors/oracle.hpp"
#include "serve/resilience.hpp"
#include "serve/service.hpp"
#include "serve/workload.hpp"
#include "util/table.hpp"

using namespace lightnas;
using namespace std::chrono_literals;

namespace {

struct Gate {
  const char* name;
  bool pass;
  std::string detail;
};

void print_gates(const std::vector<Gate>& gates) {
  util::Table table({"gate", "status", "detail"});
  for (const Gate& gate : gates) {
    table.add_row({gate.name, gate.pass ? "OK" : "FAIL", gate.detail});
  }
  table.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  smoke = smoke || bench::fast_mode();

  bench::banner("serve_resilience",
                "overload/failure SLO gate for the prediction service "
                "(chaos-testing counterpart of fault_tolerance)");

  // Liveness gate: the campaign must finish; a deadlocked service turns
  // into a loud exit instead of a hung CI job.
  std::atomic<bool> done{false};
  const int liveness_budget_s = smoke ? 300 : 1200;
  std::thread([&done, liveness_budget_s] {
    for (int i = 0; i < liveness_budget_s * 10; ++i) {
      std::this_thread::sleep_for(100ms);
      if (done.load(std::memory_order_relaxed)) return;
    }
    std::fprintf(stderr,
                 "\nLIVENESS FAIL: serve_resilience still running after "
                 "%d s — presumed deadlock\n",
                 liveness_budget_s);
    std::_Exit(3);
  }).detach();

  bench::Pipeline pipeline;
  const auto predictor = bench::train_latency_predictor(
      pipeline, smoke ? 800 : 2500, smoke ? 30 : 60);

  util::Rng pool_rng(123);
  const std::vector<space::Architecture> pool =
      serve::random_architecture_pool(pipeline.space, smoke ? 512 : 2048,
                                      pool_rng);
  const serve::ZipfSampler zipf(pool.size(), 1.1);

  std::vector<Gate> gates;

  // --- Gate 1: bit-identity with resilience disabled -------------------
  double plain_qps = 0.0;
  {
    serve::ServiceConfig plain;
    plain.num_workers = 2;
    plain.max_batch = 16;
    plain.queue_capacity = 128;
    serve::PredictionService service(*predictor, plain);
    util::Rng rng(7);
    std::size_t mismatches = 0;
    const std::size_t checks = smoke ? 400 : 2000;
    for (std::size_t i = 0; i < checks; ++i) {
      const space::Architecture& arch = pool[zipf.sample(rng)];
      if (service.predict(arch) != predictor->predict(arch)) ++mismatches;
    }
    const serve::LoadResult load = serve::run_closed_loop(
        service, pool, zipf, 8, smoke ? 250 : 2000, /*seed=*/31);
    plain_qps = load.qps();
    gates.push_back({"identity (resilience off)", mismatches == 0,
                     std::to_string(checks - mismatches) + "/" +
                         std::to_string(checks) + " bit-exact"});
  }

  // --- Gate 2: clean-path parity with resilience armed ------------------
  const std::vector<space::Architecture> calibration(
      pool.begin(), pool.begin() + std::min<std::size_t>(pool.size(), 128));
  const predictors::FlopsProxyOracle proxy =
      predictors::FlopsProxyOracle::calibrated(pipeline.space, *predictor,
                                               calibration);

  const auto armed_config = [&proxy](bool with_watchdog) {
    serve::ServiceConfig config;
    config.num_workers = 2;
    config.max_batch = 16;
    config.queue_capacity = 64;
    config.default_deadline = 250ms;
    config.overflow = serve::OverflowPolicy::kShedOldest;
    config.cache_ttl = 150ms;
    config.breaker.enabled = true;
    config.breaker.window = 16;
    config.breaker.min_samples = 6;
    config.breaker.failure_threshold = 0.5;
    config.breaker.cooldown = 100ms;
    config.breaker.half_open_probes = 3;
    config.fallback_oracle = &proxy;
    if (with_watchdog) config.worker_stall_timeout = 500ms;
    return config;
  };

  {
    serve::PredictionService service(*predictor, armed_config(false));
    const serve::ResilientLoadResult load = serve::run_resilient_closed_loop(
        service, pool, zipf, 8, smoke ? 250 : 2000, /*seed=*/31, 1000ms);
    const double parity = plain_qps > 0.0 ? load.qps() / plain_qps : 0.0;
    char detail[128];
    std::snprintf(detail, sizeof(detail),
                  "%.0f vs %.0f q/s (%.2fx), resolved %.4f", load.qps(),
                  plain_qps, parity, load.resolved_ratio());
    gates.push_back(
        {"clean-path parity (armed)",
         parity >= 0.5 && load.resolved_ratio() >= 0.999, detail});
  }

  // --- Gate 3: fault storm ---------------------------------------------
  serve::OracleFaultConfig storm_spec;
  storm_spec.spec.transient_failure_prob = 0.30;
  storm_spec.spec.hang_prob = 0.05;
  storm_spec.spec.drift_per_measurement = 1e-3;
  storm_spec.spec.outlier_prob = 0.05;
  storm_spec.hang_duration = 20ms;
  serve::FaultyOracle faulty(*predictor, storm_spec);

  serve::PredictionService service(faulty, armed_config(true));
  const auto deadline = service.config().default_deadline;
  const auto wait_budget = deadline + 250ms;

  // Warm the cache (and the breaker window) on clean traffic first —
  // the stale tier can only serve what was once computed.
  serve::run_resilient_closed_loop(service, pool, zipf, 4, smoke ? 100 : 400,
                                   /*seed=*/47, 2000ms);

  faulty.set_storm(true);
  const serve::ResilientLoadResult storm = serve::run_resilient_closed_loop(
      service, pool, zipf, 8, smoke ? 150 : 1000, /*seed=*/53, wait_budget);
  faulty.set_storm(false);
  const serve::ServiceStats storm_stats = service.stats();

  {
    char detail[160];
    std::snprintf(detail, sizeof(detail),
                  "resolved %.4f (%zu values, %zu typed, %zu unresolved)",
                  storm.resolved_ratio(), storm.values, storm.typed_errors,
                  storm.unresolved);
    gates.push_back(
        {"storm SLO (>=99% resolved)", storm.resolved_ratio() >= 0.99,
         detail});
    const double budget_us =
        std::chrono::duration<double, std::micro>(wait_budget).count();
    std::snprintf(detail, sizeof(detail), "p99 wait %.0f us (budget %.0f us)",
                  storm.wait_us.p99, budget_us);
    gates.push_back(
        {"storm p99 bounded", storm.wait_us.p99 <= budget_us * 1.25, detail});
    std::snprintf(detail, sizeof(detail),
                  "opens=%llu stale=%llu proxy=%llu shed=%llu expired=%llu",
                  static_cast<unsigned long long>(storm_stats.breaker_opens),
                  static_cast<unsigned long long>(storm_stats.degraded_stale),
                  static_cast<unsigned long long>(storm_stats.degraded_proxy),
                  static_cast<unsigned long long>(storm_stats.shed),
                  static_cast<unsigned long long>(storm_stats.expired));
    gates.push_back(
        {"breaker opened under storm", storm_stats.breaker_opens >= 1,
         detail});
  }

  // --- Gate 4: recovery -------------------------------------------------
  bool recovered = false;
  for (int round = 0; round < 40 && !recovered; ++round) {
    serve::run_resilient_closed_loop(service, pool, zipf, 2, 50,
                                     /*seed=*/61 + round, 2000ms);
    recovered =
        service.stats().breaker_state == serve::BreakerState::kClosed;
    if (!recovered) std::this_thread::sleep_for(50ms);
  }
  // Let every storm-era cache entry age out, then answers must be fresh
  // and bit-exact again (the TTL is the revalidation mechanism).
  std::this_thread::sleep_for(service.config().cache_ttl + 50ms);
  std::size_t fresh_mismatches = 0;
  util::Rng recovery_rng(71);
  for (int i = 0; i < 50; ++i) {
    const space::Architecture& arch = pool[zipf.sample(recovery_rng)];
    if (service.predict(arch) != predictor->predict(arch)) ++fresh_mismatches;
  }
  gates.push_back({"breaker recovered to closed", recovered,
                   std::string("final state: ") +
                       serve::to_string(service.stats().breaker_state)});
  gates.push_back({"post-storm answers bit-exact", fresh_mismatches == 0,
                   std::to_string(50 - fresh_mismatches) + "/50 fresh"});

  const serve::ServiceStats final_stats = service.stats();
  service.shutdown();

  std::printf("\n");
  print_gates(gates);
  std::printf("\nstorm service stats: %s\n", final_stats.to_string().c_str());

  bool all_pass = true;
  for (const Gate& gate : gates) all_pass = all_pass && gate.pass;

  // --- machine-readable summary ----------------------------------------
  {
    io::Json out = io::Json::object();
    out.set("smoke", io::Json(smoke));
    out.set("plain_qps", io::Json(plain_qps));
    out.set("storm_resolved_ratio", io::Json(storm.resolved_ratio()));
    out.set("storm_values", io::Json(storm.values));
    out.set("storm_typed_errors", io::Json(storm.typed_errors));
    out.set("storm_unresolved", io::Json(storm.unresolved));
    out.set("storm_p99_wait_us", io::Json(storm.wait_us.p99));
    out.set("storm_qps", io::Json(storm.qps()));
    out.set("breaker_opens",
            io::Json(static_cast<std::size_t>(final_stats.breaker_opens)));
    out.set("shed", io::Json(static_cast<std::size_t>(final_stats.shed)));
    out.set("expired",
            io::Json(static_cast<std::size_t>(final_stats.expired)));
    out.set("degraded_stale",
            io::Json(static_cast<std::size_t>(final_stats.degraded_stale)));
    out.set("degraded_proxy",
            io::Json(static_cast<std::size_t>(final_stats.degraded_proxy)));
    out.set("oracle_failures",
            io::Json(static_cast<std::size_t>(final_stats.oracle_failures)));
    out.set("worker_respawns",
            io::Json(static_cast<std::size_t>(final_stats.worker_respawns)));
    out.set("deadline_hit_ratio",
            io::Json(final_stats.deadline_hit_ratio()));
    out.set("recovered", io::Json(recovered));
    out.set("all_gates_pass", io::Json(all_pass));
    bench::update_bench_json("BENCH_serve.json", "resilience", out);
    std::printf("updated BENCH_serve.json (section: resilience)\n");
  }

  done.store(true, std::memory_order_relaxed);
  if (!all_pass) {
    std::printf("\nFAIL: one or more resilience gates failed\n");
    return 1;
  }
  std::printf("\nAll resilience gates passed.\n");
  return 0;
}
