// Serving-throughput campaign: the scalability counterpart of the
// search-cost tables.
//
// The north-star deployment amortizes one trained predictor across many
// concurrent consumers (search loops, baselines, external callers). This
// bench quantifies the three levers the serve/ subsystem stacks on top
// of the sequential CostOracle::predict baseline:
//   1. micro-batching   — B pending queries -> one B x (L*K) MLP forward,
//   2. sharded LRU cache — Zipf-skewed popularity means hot
//      architectures are answered without any forward at all,
//   3. concurrency      — multiple batching workers + many clients.
//
// Headline number: closed-loop queries/sec vs the single-thread
// baseline on the same Zipf workload (acceptance floor: >= 5x), with
// cache hit rate, p50/p99 latency, and mean batch size reported per
// configuration.

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <vector>

#include "common.hpp"
#include "serve/service.hpp"
#include "serve/workload.hpp"
#include "util/table.hpp"

using namespace lightnas;

int main() {
  bench::banner("serving_throughput",
                "concurrent batched prediction service (extends the "
                "Sec 3.2 predictor into a serving layer)");

  bench::Pipeline pipeline;
  const auto predictor = bench::train_latency_predictor(pipeline);

  util::Rng rng(123);
  const std::vector<space::Architecture> pool =
      serve::random_architecture_pool(pipeline.space,
                                      bench::scaled(4096, 1024), rng);
  const serve::ZipfSampler zipf(pool.size(), 1.1);
  const std::size_t requests = bench::scaled(400000, 80000);
  const std::uint64_t seed = 99;

  std::printf("pool=%zu architectures, zipf s=1.1, %zu requests\n\n",
              pool.size(), requests);

  const serve::LoadResult baseline = serve::run_sequential_baseline(
      *predictor, pool, zipf, requests, seed);
  std::printf("sequential baseline: %.0f q/s (%.2f s wall)\n\n",
              baseline.qps(), baseline.wall_seconds);

  struct Config {
    const char* label;
    std::size_t workers;
    std::size_t clients;
    std::size_t max_batch;
    std::size_t cache_capacity;
  };
  const std::vector<Config> configs = {
      {"1 worker, no cache", 1, 32, 64, 0},
      {"1 worker, cached", 1, 32, 64, 1 << 16},
      {"2 workers, cached", 2, 32, 64, 1 << 16},
      {"4 workers, cached", 4, 64, 64, 1 << 16},
  };

  util::Table table({"config", "q/s", "speedup", "hit rate", "p50 us",
                     "p99 us", "mean batch"});
  double best_speedup = 0.0;
  double best_qps = 0.0;
  for (const Config& config : configs) {
    serve::ServiceConfig service_config;
    service_config.num_workers = config.workers;
    service_config.max_batch = config.max_batch;
    service_config.cache_capacity = config.cache_capacity;
    service_config.queue_capacity = 256;

    serve::PredictionService service(*predictor, service_config);
    const serve::LoadResult result = serve::run_closed_loop(
        service, pool, zipf, config.clients, requests / config.clients,
        seed);
    const serve::ServiceStats stats = service.stats();
    service.shutdown();

    const double speedup = result.qps() / baseline.qps();
    best_speedup = std::max(best_speedup, speedup);
    best_qps = std::max(best_qps, result.qps());
    table.add_row({config.label, util::fmt_double(result.qps(), 0),
                   util::fmt_double(speedup, 1) + "x",
                   util::fmt_pct(100.0 * stats.cache.hit_rate()) + " %",
                   util::fmt_double(stats.latency_us.p50, 0),
                   util::fmt_double(stats.latency_us.p99, 0),
                   util::fmt_double(stats.batch_size.mean(), 1)});
  }
  table.print(std::cout);

  const bool pass = best_speedup >= 5.0;
  std::printf("\nbest speedup over sequential baseline: %.1fx (floor: 5x)"
              " -> %s\n",
              best_speedup, pass ? "OK" : "BELOW FLOOR");

  io::Json out = io::Json::object();
  out.set("fast_mode", io::Json(bench::fast_mode()));
  out.set("requests", io::Json(requests));
  out.set("pool_size", io::Json(pool.size()));
  out.set("baseline_qps", io::Json(baseline.qps()));
  out.set("best_qps", io::Json(best_qps));
  out.set("best_speedup", io::Json(best_speedup));
  out.set("speedup_floor", io::Json(5.0));
  out.set("pass", io::Json(pass));
  bench::update_bench_json("BENCH_serve.json", "throughput", out);
  std::printf("updated BENCH_serve.json (section: throughput)\n");

  return pass ? 0 : 1;
}
