// Reproduces Table 1: the framework comparison matrix (differentiable?
// latency-optimizing? can it hit a *specified* latency? proxyless? search
// complexity and cost) — augmented with measured quantities from our own
// substrate: single-path vs multi-path activation memory and the
// step-count accounting of one LightNAS run.

#include <cstdio>
#include <iostream>

#include "common.hpp"
#include "core/lightnas.hpp"
#include "core/supernet.hpp"
#include "eval/search_cost.hpp"
#include "util/table.hpp"

using namespace lightnas;

int main() {
  bench::banner("table1_method_comparison",
                "Table 1 (comparison with previous NAS approaches)");

  util::Table table({"method", "paradigm", "differentiable",
                     "latency opt.", "specified latency", "proxyless",
                     "complexity", "explicit cost (GPU h)",
                     "implicit runs", "total (GPU h)"});
  for (const eval::MethodProfile& p : eval::method_profiles()) {
    table.add_row(
        {p.name, p.paradigm, p.differentiable ? "yes" : "no",
         p.latency_optimization ? "yes" : "no",
         p.specified_latency ? "yes" : "no", p.proxyless ? "yes" : "no",
         p.complexity,
         p.explicit_gpu_hours > 0 ? util::fmt_double(p.explicit_gpu_hours, 0)
                                  : "-",
         util::fmt_double(p.implicit_runs, 0),
         p.explicit_gpu_hours > 0 ? util::fmt_double(p.total_gpu_hours(), 0)
                                  : "-"});
  }
  table.print(std::cout);

  // Quantify the single-path vs multi-path memory claim on our supernet.
  bench::Pipeline pipeline;
  nn::SyntheticTaskConfig task_config;
  task_config.train_size = 1024;
  const nn::SyntheticTask task = nn::make_synthetic_task(task_config);
  const core::SurrogateSupernet net(pipeline.space,
                                    task.train.feature_dim(), 10,
                                    core::SupernetConfig{});
  const std::size_t batch = 128;
  std::printf(
      "\nactivation memory at batch %zu (floats):\n"
      "  single-path (LightNAS, Sec 3.3): %zu\n"
      "  multi-path  (DARTS/FBNet, Eq 1): %zu  (x%.1f)\n",
      batch, net.activations_single_path(batch),
      net.activations_multi_path(batch),
      static_cast<double>(net.activations_multi_path(batch)) /
          static_cast<double>(net.activations_single_path(batch)));

  std::printf(
      "\nPaper's message: LightNAS is the only row with differentiable +\n"
      "specified-latency + O(1) single-path complexity, at 10 GPU hours\n"
      "per *deployed* architecture (no implicit lambda sweep).\n");
  return 0;
}
