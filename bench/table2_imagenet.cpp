// Reproduces Table 2: comparison with state-of-the-art architectures on
// ImageNet, grouped by latency band. Baseline rows carry the numbers
// reported in the paper (literature results) plus our pipeline's
// evaluation of a latency-fitted stand-in architecture; LightNet rows are
// produced by actually running the one-shot search at each target.
//
// Absolute accuracies come from the calibrated surrogate (see DESIGN.md);
// the comparisons that matter are within the "surrogate top-1" column.

#include <cstdio>
#include <iostream>

#include "common.hpp"
#include "core/lightnas.hpp"
#include "eval/accuracy_model.hpp"
#include "eval/zoo.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

using namespace lightnas;

int main() {
  bench::banner("table2_imagenet",
                "Table 2 (comparison with SOTA architectures)");
  bench::Pipeline pipeline;
  const eval::AccuracyModel accuracy(pipeline.space);
  auto predictor = bench::train_latency_predictor(pipeline);

  nn::SyntheticTaskConfig task_config;
  task_config.train_size = bench::scaled(16384, 4096);
  const nn::SyntheticTask task = nn::make_synthetic_task(task_config);

  struct Row {
    std::string name, method, cost;
    double reported_top1, reported_top5, reported_lat;
    double sim_lat, surrogate_top1, surrogate_top5;
    bool ours;
  };
  std::vector<Row> rows;

  for (const eval::ZooEntry& entry :
       eval::architecture_zoo(pipeline.space, pipeline.cost())) {
    Row row;
    row.name = entry.name + (entry.extra_techniques ? " +" : "");
    row.method = entry.method;
    row.cost = entry.search_gpu_hours > 0
                   ? util::fmt_double(entry.search_gpu_hours, 0)
                   : "-";
    row.reported_top1 = entry.reported_top1;
    row.reported_top5 = entry.reported_top5;
    row.reported_lat = entry.reported_latency_ms;
    row.sim_lat =
        pipeline.cost().network_latency_ms(pipeline.space, entry.arch);
    row.surrogate_top1 = accuracy.top1(entry.arch);
    row.surrogate_top5 = accuracy.top5(entry.arch);
    row.ours = false;
    rows.push_back(row);
  }

  for (double target : {20.0, 22.0, 24.0, 26.0, 28.0, 30.0}) {
    core::LightNasConfig config;
    config.target = target;
    config.seed = 11;
    if (bench::fast_mode()) {
      config.epochs = 24;
      config.warmup_epochs = 8;
      config.w_steps_per_epoch = 24;
      config.alpha_steps_per_epoch = 16;
    }
    core::LightNas engine(pipeline.space, *predictor, task,
                          core::SupernetConfig{}, config);
    const core::SearchResult result = engine.search();
    Row row;
    row.name = "LightNet-" + util::fmt_double(target, 0) + "ms (ours)";
    row.method = "Differentiable";
    row.cost = "10";
    row.reported_top1 = row.reported_top5 = row.reported_lat = -1;
    row.sim_lat = pipeline.cost().network_latency_ms(pipeline.space,
                                                     result.architecture);
    row.surrogate_top1 = accuracy.top1(result.architecture);
    row.surrogate_top5 = accuracy.top5(result.architecture);
    row.ours = true;
    rows.push_back(row);
    std::printf("searched LightNet-%.0fms: sim %.1f ms, surrogate top-1 "
                "%.1f%%\n",
                target, row.sim_lat, row.surrogate_top1);
  }

  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    return a.sim_lat < b.sim_lat;
  });

  util::Table table({"architecture", "method", "cost (GPU h)",
                     "reported top-1/top-5", "reported lat (ms)",
                     "sim lat (ms)", "surrogate top-1", "surrogate top-5"});
  util::CsvWriter csv({"name", "sim_lat_ms", "surrogate_top1", "ours"});
  for (const Row& row : rows) {
    std::string reported = "-";
    if (row.reported_top1 > 0) {
      reported = util::fmt_pct(row.reported_top1) + " / " +
                 (row.reported_top5 > 0 ? util::fmt_pct(row.reported_top5)
                                        : "-");
    }
    table.add_row({row.name, row.method, row.cost, reported,
                   row.reported_lat > 0 ? util::fmt_ms(row.reported_lat)
                                        : "-",
                   util::fmt_ms(row.sim_lat),
                   util::fmt_pct(row.surrogate_top1),
                   util::fmt_pct(row.surrogate_top5)});
    csv.add_row({row.name, util::fmt_double(row.sim_lat, 3),
                 util::fmt_double(row.surrogate_top1, 3),
                 row.ours ? "1" : "0"});
  }
  csv.write_file("table2_imagenet.csv");
  table.print(std::cout);

  // Head-to-head summary within the pipeline: each LightNet vs the best
  // baseline stand-in within +/-1.2 ms of it.
  std::printf("\nwithin-pipeline head-to-head (surrogate top-1):\n");
  for (const Row& ln : rows) {
    if (!ln.ours) continue;
    double best_baseline = 0.0;
    std::string best_name = "-";
    for (const Row& other : rows) {
      if (other.ours || std::abs(other.sim_lat - ln.sim_lat) > 1.2) continue;
      if (other.surrogate_top1 > best_baseline) {
        best_baseline = other.surrogate_top1;
        best_name = other.name;
      }
    }
    if (best_name == "-") continue;
    std::printf("  %-24s %.2f%%  vs  %-18s %.2f%%  (%+.2f)\n",
                ln.name.c_str(), ln.surrogate_top1, best_name.c_str(),
                best_baseline, ln.surrogate_top1 - best_baseline);
  }

  std::printf(
      "\nPaper's shape: LightNets dominate same-latency baselines (the\n"
      "paper reports e.g. +0.9%% over FBNet-Xavier at 24 ms), with a\n"
      "one-shot 10-GPU-hour search against 10x-swept 200+ hour methods.\n");
  return 0;
}
