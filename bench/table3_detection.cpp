// Reproduces Table 3: COCO2017 object detection with SSDLite, treating
// each backbone as a drop-in replacement. Baseline backbones are the
// latency-fitted zoo stand-ins; LightNet backbones come from fresh
// one-shot searches at 20/24/28 ms.

#include <cstdio>
#include <iostream>

#include "common.hpp"
#include "core/lightnas.hpp"
#include "eval/detection.hpp"
#include "eval/zoo.hpp"
#include "util/table.hpp"

using namespace lightnas;

int main() {
  bench::banner("table3_detection",
                "Table 3 (SSDLite on COCO2017, backbone comparison)");
  bench::Pipeline pipeline;
  const eval::DetectionEvaluator detector(
      hw::DeviceProfile::jetson_xavier_maxn());
  auto predictor = bench::train_latency_predictor(pipeline);

  nn::SyntheticTaskConfig task_config;
  task_config.train_size = bench::scaled(16384, 4096);
  const nn::SyntheticTask task = nn::make_synthetic_task(task_config);

  util::Table table({"backbone", "AP", "AP50", "AP75", "APs", "APm", "APl",
                     "latency (ms)"});

  auto add_row = [&](const std::string& name,
                     const space::Architecture& arch) {
    const eval::DetectionResult r = detector.evaluate(arch);
    table.add_row({name, util::fmt_double(r.ap, 1),
                   util::fmt_double(r.ap50, 1), util::fmt_double(r.ap75, 1),
                   util::fmt_double(r.ap_small, 1),
                   util::fmt_double(r.ap_medium, 1),
                   util::fmt_double(r.ap_large, 1),
                   util::fmt_ms(r.latency_ms)});
  };

  // Baselines from the zoo (same names as the paper's Table 3).
  for (const eval::ZooEntry& entry :
       eval::architecture_zoo(pipeline.space, pipeline.cost())) {
    if (entry.name == "ProxylessNAS" || entry.name == "MobileNetV2" ||
        entry.name == "MnasNet-A1" || entry.name == "FBNet-C" ||
        entry.name == "OFA-M") {
      add_row(entry.name, entry.arch);
    }
  }
  table.add_separator();

  for (double target : {20.0, 24.0, 28.0}) {
    core::LightNasConfig config;
    config.target = target;
    config.seed = 11;
    if (bench::fast_mode()) {
      config.epochs = 24;
      config.warmup_epochs = 8;
      config.w_steps_per_epoch = 24;
      config.alpha_steps_per_epoch = 16;
    }
    core::LightNas engine(pipeline.space, *predictor, task,
                          core::SupernetConfig{}, config);
    const core::SearchResult result = engine.search();
    add_row("LightNet-" + util::fmt_double(target, 0) + "ms (ours)",
            result.architecture);
  }
  table.print(std::cout);

  std::printf(
      "\nPaper's shape: detection AP tracks backbone quality; LightNet\n"
      "backbones give competitive-or-better AP at visibly lower detector\n"
      "latency (paper: LightNet-28ms reaches AP 21.9 at 69.7 ms vs\n"
      "FBNet-C's 21.5 at 76.5 ms).\n");
  return 0;
}
