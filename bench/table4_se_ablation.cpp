// Reproduces Table 4: the Squeeze-and-Excitation ablation. SE modules are
// attached to the last nine layers of each searched LightNet; the table
// reports accuracy gain vs MACs/latency overhead.

#include <cstdio>
#include <iostream>

#include "common.hpp"
#include "core/lightnas.hpp"
#include "eval/accuracy_model.hpp"
#include "space/flops.hpp"
#include "util/table.hpp"

using namespace lightnas;

int main() {
  bench::banner("table4_se_ablation",
                "Table 4 (Squeeze-and-Excitation ablation)");
  bench::Pipeline pipeline;
  const eval::AccuracyModel accuracy(pipeline.space);
  auto predictor = bench::train_latency_predictor(pipeline);

  nn::SyntheticTaskConfig task_config;
  task_config.train_size = bench::scaled(16384, 4096);
  const nn::SyntheticTask task = nn::make_synthetic_task(task_config);

  util::Table table({"architecture", "top-1 (%)", "top-5 (%)", "MACs (M)",
                     "latency (ms)"});

  for (double target : {20.0, 22.0, 24.0, 26.0, 28.0, 30.0}) {
    core::LightNasConfig config;
    config.target = target;
    config.seed = 11;
    if (bench::fast_mode()) {
      config.epochs = 24;
      config.warmup_epochs = 8;
      config.w_steps_per_epoch = 24;
      config.alpha_steps_per_epoch = 16;
    }
    core::LightNas engine(pipeline.space, *predictor, task,
                          core::SupernetConfig{}, config);
    space::Architecture arch = engine.search().architecture;

    const double base_top1 = accuracy.top1(arch);
    const double base_top5 = accuracy.top5(arch);
    const double base_macs = space::count_macs(pipeline.space, arch) / 1e6;
    const double base_lat =
        pipeline.cost().network_latency_ms(pipeline.space, arch);

    arch.set_with_se(true);
    const double se_top1 = accuracy.top1(arch);
    const double se_top5 = accuracy.top5(arch);
    const double se_macs = space::count_macs(pipeline.space, arch) / 1e6;
    const double se_lat =
        pipeline.cost().network_latency_ms(pipeline.space, arch);

    const std::string name =
        "LightNet-" + util::fmt_double(target, 0) + "ms";
    table.add_row({name, util::fmt_pct(base_top1), util::fmt_pct(base_top5),
                   util::fmt_double(base_macs, 0), util::fmt_ms(base_lat)});
    table.add_row({name + "-SE",
                   util::fmt_pct(se_top1) + " (" +
                       util::fmt_signed(se_top1 - base_top1, 1) + ")",
                   util::fmt_pct(se_top5) + " (" +
                       util::fmt_signed(se_top5 - base_top5, 1) + ")",
                   util::fmt_double(se_macs, 0) + " (" +
                       util::fmt_signed(se_macs - base_macs, 0) + ")",
                   util::fmt_ms(se_lat) + " (" +
                       util::fmt_signed(se_lat - base_lat, 1) + ")"});
  }
  table.print(std::cout);

  std::printf(
      "\nPaper's shape: SE adds a consistent fraction of a top-1 point\n"
      "(+0.4 .. +0.9) for a few extra MACs and ~1-2 ms of latency — a\n"
      "good trade when the budget allows it (Table 4).\n");
  return 0;
}
