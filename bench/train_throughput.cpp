// Training-stack throughput: predictor training and search steps,
// serial vs. 2/4/8 parallel GEMM lanes, plus a plan-compiled search leg.
//
// Three claims are checked, with different strictness:
//  - Determinism (always enforced, any hardware): the threaded, the
//    repeated, and the plan-compiled search paths must all produce
//    bit-identical results to the serial dynamic path. A mismatch
//    exits 1.
//  - Pool steady state (always enforced): repeating the identical
//    serial search over the bench's long-lived warmed pool must incur
//    zero buffer misses. The cumulative process-wide miss counter is
//    still reported but is dominated by cold first-touch discovery and
//    scales with workload size — the steady window is the property that
//    would regress on a leak.
//  - Speedup (enforced only when the machine can express it): with
//    >= 4 hardware threads available, predictor training at 4 lanes
//    must be >= 2x faster than serial, else exit 1. On smaller machines
//    (CI containers are often 1-2 cores) the gate is SKIPPED — a 4-lane
//    run on one core cannot beat serial by construction. The verdict is
//    recorded in the JSON as `speedup_gate`
//    (pass|fail|skipped_smoke|skipped_low_core) next to `hw_threads`,
//    so a sub-1x reading on a starved container is self-describing.
//
// `--smoke` (used by the ctest registration, together with
// LIGHTNAS_FAST=1) shrinks the workload to seconds and checks the
// determinism and pool contracts only.

#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common.hpp"
#include "core/lightnas.hpp"
#include "hw/cost_model.hpp"
#include "io/json.hpp"
#include "nn/parallel.hpp"
#include "nn/pool.hpp"
#include "predictors/mlp_predictor.hpp"
#include "util/table.hpp"

using namespace lightnas;

namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Deterministic synthetic campaign: random architectures priced by the
/// analytic cost model. Measurement noise is irrelevant for throughput,
/// so this keeps dataset construction off the clock.
predictors::MeasurementDataset make_dataset(const space::SearchSpace& space,
                                            std::size_t count) {
  const hw::CostModel model(hw::DeviceProfile::jetson_xavier_maxn(), 8);
  util::Rng rng(1234);
  predictors::MeasurementDataset data;
  data.architectures.reserve(count);
  data.encodings.reserve(count);
  data.targets.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    space::Architecture arch = space.random_architecture(rng);
    data.encodings.push_back(arch.encode_one_hot(space.num_ops()));
    data.targets.push_back(model.network_latency_ms(space, arch));
    data.architectures.push_back(std::move(arch));
  }
  return data;
}

struct TrainRun {
  double seconds = 0.0;
  predictors::MlpPredictor::State state;
  std::vector<double> probe;
};

TrainRun run_training(const space::SearchSpace& space,
                      const predictors::MeasurementDataset& data,
                      std::size_t epochs,
                      const nn::ParallelContext* parallel) {
  predictors::MlpPredictor predictor(space.num_layers(), space.num_ops(),
                                     /*seed=*/7);
  predictors::MlpTrainConfig config;
  config.epochs = epochs;
  config.batch_size = 128;
  config.parallel = parallel;
  const double start = now_seconds();
  predictor.train(data, config);
  TrainRun run;
  run.seconds = now_seconds() - start;
  run.state = predictor.export_state();
  const std::vector<space::Architecture> probe_archs(
      data.architectures.begin(),
      data.architectures.begin() +
          static_cast<std::ptrdiff_t>(std::min<std::size_t>(64, data.size())));
  run.probe = parallel != nullptr
                  ? predictor.predict_batch(probe_archs, *parallel)
                  : predictor.predict_batch(probe_archs);
  return run;
}

bool states_identical(const predictors::MlpPredictor::State& a,
                      const predictors::MlpPredictor::State& b) {
  if (a.tensors.size() != b.tensors.size()) return false;
  for (std::size_t i = 0; i < a.tensors.size(); ++i) {
    if (a.tensors[i] != b.tensors[i]) return false;  // exact float equality
  }
  return a.target_mean == b.target_mean && a.target_std == b.target_std;
}

struct SearchRun {
  double seconds = 0.0;
  std::string arch;
  double predicted_cost = 0.0;
  core::RunHealth health;
};

SearchRun run_search(const space::SearchSpace& space,
                     const predictors::MlpPredictor& predictor,
                     const nn::SyntheticTask& task, bool smoke,
                     const nn::ParallelContext* parallel,
                     bool planned = false) {
  core::LightNasConfig config;
  config.seed = 3;
  config.epochs = smoke ? 2 : 6;
  config.warmup_epochs = 1;
  config.w_steps_per_epoch = smoke ? 8 : 32;
  config.alpha_steps_per_epoch = smoke ? 4 : 12;
  config.batch_size = smoke ? 16 : 48;
  config.target = 24.0;
  config.parallel = parallel;
  // Pin the plan compiler explicitly per leg (ignore LIGHTNAS_PLAN) so
  // the dynamic legs stay dynamic and the planned leg is always planned,
  // whatever the environment says. compile_after=1 (compile on first
  // request) because short searches rarely repeat a Gumbel path: with
  // the default trigger of 3 structural hits nothing would ever compile
  // and the leg would exercise no plan machinery at all.
  config.plan.enabled = planned;
  config.plan.compile_after = 1;
  core::LightNas engine(space, predictor, task, core::SupernetConfig{},
                        config);
  const double start = now_seconds();
  const core::SearchResult result = engine.search();
  SearchRun run;
  run.seconds = now_seconds() - start;
  run.arch = result.architecture.serialize();
  run.predicted_cost = result.final_predicted_cost;
  run.health = result.health;
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  smoke = smoke || bench::fast_mode();

  bench::banner("train_throughput",
                "parallel blocked-GEMM training engine (serial vs threads)");

  // Long-lived tensor pool for the whole bench. Engines install
  // PoolMode::kInherit scopes, which *create and destroy* a private pool
  // when the caller has none active — so without this scope every
  // search() leg below rediscovered its buffers cold and the cumulative
  // miss counter grew linearly with the number of legs (the old
  // pool_misses:15018 reading). With it, warmth carries across legs and
  // the steady-state window below measures the pool's real behavior.
  nn::PooledScope bench_pool(nn::PoolMode::kFresh);

  const space::SearchSpace space = space::SearchSpace::fbnet_xavier();
  const std::size_t samples = smoke ? 768 : 6000;
  const std::size_t epochs = smoke ? 4 : 30;
  const std::vector<std::size_t> thread_counts =
      smoke ? std::vector<std::size_t>{2} : std::vector<std::size_t>{2, 4, 8};

  std::fprintf(stderr, "dataset: %zu synthetic measurements\n", samples);
  const predictors::MeasurementDataset data = make_dataset(space, samples);

  // --- predictor training ---------------------------------------------
  const TrainRun serial = run_training(space, data, epochs, nullptr);
  std::fprintf(stderr, "serial training: %.2fs (%zu epochs)\n",
               serial.seconds, epochs);

  util::Table table({"threads", "train (s)", "speedup", "bit-identical"});
  table.add_row({"1 (serial)", util::fmt_double(serial.seconds, 2), "1.0",
                 "reference"});

  bool identical = true;
  double speedup_at_4 = 0.0;
  std::vector<std::unique_ptr<nn::ParallelContext>> contexts;
  for (const std::size_t threads : thread_counts) {
    nn::ParallelConfig pc;
    pc.threads = threads;
    contexts.push_back(std::make_unique<nn::ParallelContext>(pc));
    const TrainRun run =
        run_training(space, data, epochs, contexts.back().get());
    const bool same = states_identical(serial.state, run.state) &&
                      serial.probe == run.probe;
    identical = identical && same;
    const double speedup = serial.seconds / run.seconds;
    if (threads == 4) speedup_at_4 = speedup;
    table.add_row({std::to_string(threads),
                   util::fmt_double(run.seconds, 2),
                   util::fmt_double(speedup, 2), same ? "yes" : "NO"});
  }
  std::printf("\npredictor training (%zu samples, %zu epochs):\n", samples,
              epochs);
  table.print(std::cout);

  // --- search steps ----------------------------------------------------
  predictors::MlpPredictor predictor =
      predictors::MlpPredictor::from_state(serial.state);
  nn::SyntheticTaskConfig task_config;
  task_config.train_size = smoke ? 512 : 4096;
  const nn::SyntheticTask task = nn::make_synthetic_task(task_config);

  const SearchRun search_serial =
      run_search(space, predictor, task, smoke, nullptr);

  // Steady-state pool window: the cumulative pool counters at process
  // exit mix in every cold first-touch allocation (dataset construction,
  // predictor training, the first epochs of each search), so their miss
  // count grows with workload size without indicating a leak. Repeat the
  // identical serial search over the now-warmed pool and measure the
  // delta — in a healthy steady state the second run's misses are (near)
  // zero because every buffer shape was discovered by the first.
  const nn::PoolStats pool_warm = nn::TensorPool::global_stats();
  const SearchRun search_steady =
      run_search(space, predictor, task, smoke, nullptr);
  const nn::PoolStats pool_steady =
      nn::TensorPool::global_stats() - pool_warm;
  const bool steady_repeat_same =
      search_serial.arch == search_steady.arch &&
      search_serial.predicted_cost == search_steady.predicted_cost;
  identical = identical && steady_repeat_same;

  nn::ParallelConfig search_pc;
  search_pc.threads = 4;
  const nn::ParallelContext search_ctx(search_pc);
  const SearchRun search_parallel =
      run_search(space, predictor, task, smoke, &search_ctx);
  const bool search_same =
      search_serial.arch == search_parallel.arch &&
      search_serial.predicted_cost == search_parallel.predicted_cost;
  identical = identical && search_same;

  // Planned leg: same serial search with the plan compiler on. The plan
  // contract (bench/plan_compile, tests/plan_test) makes this trajectory
  // bit-identical to the dynamic one, so it joins the identity gate.
  const SearchRun search_planned =
      run_search(space, predictor, task, smoke, nullptr, /*planned=*/true);
  const bool planned_same =
      search_serial.arch == search_planned.arch &&
      search_serial.predicted_cost == search_planned.predicted_cost;
  identical = identical && planned_same;

  util::Table search_table({"config", "search (s)", "speedup", "derived"});
  search_table.add_row({"serial",
                        util::fmt_double(search_serial.seconds, 2), "1.0",
                        "reference"});
  search_table.add_row(
      {"serial (warm)", util::fmt_double(search_steady.seconds, 2),
       util::fmt_double(search_serial.seconds / search_steady.seconds, 2),
       steady_repeat_same ? "bit-identical" : "MISMATCH"});
  search_table.add_row(
      {"4 threads", util::fmt_double(search_parallel.seconds, 2),
       util::fmt_double(search_serial.seconds / search_parallel.seconds, 2),
       search_same ? "bit-identical" : "MISMATCH"});
  search_table.add_row(
      {"planned", util::fmt_double(search_planned.seconds, 2),
       util::fmt_double(search_serial.seconds / search_planned.seconds, 2),
       planned_same ? "bit-identical" : "MISMATCH"});
  std::printf("\nsearch steps:\n");
  search_table.print(std::cout);
  std::printf("steady-state pool window (2nd serial search): %llu buffer "
              "misses, %.4f hit rate\n",
              static_cast<unsigned long long>(pool_steady.buffer_misses),
              pool_steady.buffer_hit_rate());

  // --- gate verdicts (computed before the JSON so the file records
  // --- them; a 0.958x speedup on a 2-core container previously went
  // --- into the JSON with no hint that the gate never applied) --------
  const unsigned hw_threads = std::thread::hardware_concurrency();
  const char* speedup_gate = "pass";
  if (smoke) {
    speedup_gate = "skipped_smoke";
  } else if (hw_threads < 4) {
    speedup_gate = "skipped_low_core";
  } else if (speedup_at_4 < 2.0) {
    speedup_gate = "fail";
  }

  // --- machine-readable summary ----------------------------------------
  {
    const std::size_t steps =
        epochs * ((samples + 128 - 1) / 128);  // batch_size = 128
    rusage usage{};
    getrusage(RUSAGE_SELF, &usage);
    io::Json out = io::Json::object();
    out.set("bench", io::Json("train_throughput"));
    out.set("smoke", io::Json(smoke));
    out.set("steps_per_s_serial",
            io::Json(static_cast<double>(steps) / serial.seconds));
    out.set("speedup_at_4_threads", io::Json(speedup_at_4));
    out.set("speedup_gate", io::Json(speedup_gate));
    out.set("hw_threads", io::Json(static_cast<std::size_t>(hw_threads)));
    out.set("search_s_serial", io::Json(search_serial.seconds));
    out.set("search_s_4_threads", io::Json(search_parallel.seconds));
    out.set("search_s_planned", io::Json(search_planned.seconds));
    out.set("bit_identical", io::Json(identical));
    // Plan-compiler telemetry of the planned leg (RunHealth counters).
    out.set("plan_hits", io::Json(static_cast<std::size_t>(
                             search_planned.health.plan_hits)));
    out.set("plan_misses", io::Json(static_cast<std::size_t>(
                               search_planned.health.plan_misses)));
    out.set("plan_compiles", io::Json(static_cast<std::size_t>(
                                 search_planned.health.plan_compiles)));
    out.set("plan_fused_ops", io::Json(static_cast<std::size_t>(
                                  search_planned.health.plan_fused_ops)));
    out.set("plan_arena_bytes", io::Json(static_cast<std::size_t>(
                                    search_planned.health.plan_arena_bytes)));
    // Cumulative pool counters (whole process, cold discovery included)
    // plus the warmed steady-state window measured above — the cumulative
    // miss count scales with workload size and says nothing about leaks;
    // the steady window is the real property.
    const nn::PoolStats pool = nn::TensorPool::global_stats();
    out.set("pool_hit_rate", io::Json(pool.buffer_hit_rate()));
    out.set("pool_misses",
            io::Json(static_cast<std::size_t>(pool.buffer_misses)));
    out.set("pool_steady_misses",
            io::Json(static_cast<std::size_t>(pool_steady.buffer_misses)));
    out.set("pool_steady_hit_rate", io::Json(pool_steady.buffer_hit_rate()));
    out.set("pool_steady_zero_miss", io::Json(pool_steady.buffer_misses == 0));
    // ru_maxrss is KiB on Linux.
    out.set("peak_rss_bytes",
            io::Json(static_cast<std::size_t>(usage.ru_maxrss) * 1024));
    bench::update_bench_json("BENCH_train.json", "throughput", out);
    std::printf("\nupdated BENCH_train.json (section: throughput)\n");
  }

  // --- verdict ---------------------------------------------------------
  if (!identical) {
    std::printf("\nFAIL: parallel/planned/repeat results are not "
                "bit-identical to serial\n");
    return 1;
  }
  std::printf("\ndeterminism: all measured runs bit-identical to serial\n");

  if (pool_steady.buffer_misses != 0) {
    std::printf("FAIL: %llu pool misses during the warmed repeat search "
                "(steady state must be all hits)\n",
                static_cast<unsigned long long>(pool_steady.buffer_misses));
    return 1;
  }
  std::printf("steady-state pool: zero misses over the warmed repeat "
              "search\n");

  if (std::strcmp(speedup_gate, "skipped_smoke") == 0) {
    std::printf("speedup gate: SKIPPED (smoke mode)\n");
    return 0;
  }
  if (std::strcmp(speedup_gate, "skipped_low_core") == 0) {
    std::printf(
        "speedup gate: SKIPPED (%u hardware thread(s); a 4-lane run "
        "cannot beat serial on this machine)\n",
        hw_threads);
    return 0;
  }
  std::printf("speedup at 4 threads: %.2fx (required >= 2.0x)\n",
              speedup_at_4);
  if (std::strcmp(speedup_gate, "fail") == 0) {
    std::printf("FAIL: parallel speedup below 2x\n");
    return 1;
  }
  std::printf("PASS\n");
  return 0;
}
