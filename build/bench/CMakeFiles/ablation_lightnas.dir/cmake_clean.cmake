file(REMOVE_RECURSE
  "CMakeFiles/ablation_lightnas.dir/ablation_lightnas.cpp.o"
  "CMakeFiles/ablation_lightnas.dir/ablation_lightnas.cpp.o.d"
  "ablation_lightnas"
  "ablation_lightnas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_lightnas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
