# Empty dependencies file for ablation_lightnas.
# This may be replaced when dependencies are built.
