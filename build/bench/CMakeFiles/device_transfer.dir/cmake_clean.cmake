file(REMOVE_RECURSE
  "CMakeFiles/device_transfer.dir/device_transfer.cpp.o"
  "CMakeFiles/device_transfer.dir/device_transfer.cpp.o.d"
  "device_transfer"
  "device_transfer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/device_transfer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
