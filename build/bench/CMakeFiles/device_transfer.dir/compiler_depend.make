# Empty compiler generated dependencies file for device_transfer.
# This may be replaced when dependencies are built.
