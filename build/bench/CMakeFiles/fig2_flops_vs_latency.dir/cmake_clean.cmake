file(REMOVE_RECURSE
  "CMakeFiles/fig2_flops_vs_latency.dir/fig2_flops_vs_latency.cpp.o"
  "CMakeFiles/fig2_flops_vs_latency.dir/fig2_flops_vs_latency.cpp.o.d"
  "fig2_flops_vs_latency"
  "fig2_flops_vs_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_flops_vs_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
