# Empty dependencies file for fig2_flops_vs_latency.
# This may be replaced when dependencies are built.
