# Empty dependencies file for fig3_lambda_sweep.
# This may be replaced when dependencies are built.
