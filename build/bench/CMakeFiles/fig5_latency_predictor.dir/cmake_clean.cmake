file(REMOVE_RECURSE
  "CMakeFiles/fig5_latency_predictor.dir/fig5_latency_predictor.cpp.o"
  "CMakeFiles/fig5_latency_predictor.dir/fig5_latency_predictor.cpp.o.d"
  "fig5_latency_predictor"
  "fig5_latency_predictor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_latency_predictor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
