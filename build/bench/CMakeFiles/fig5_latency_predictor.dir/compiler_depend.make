# Empty compiler generated dependencies file for fig5_latency_predictor.
# This may be replaced when dependencies are built.
