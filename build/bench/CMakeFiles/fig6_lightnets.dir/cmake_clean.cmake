file(REMOVE_RECURSE
  "CMakeFiles/fig6_lightnets.dir/fig6_lightnets.cpp.o"
  "CMakeFiles/fig6_lightnets.dir/fig6_lightnets.cpp.o.d"
  "fig6_lightnets"
  "fig6_lightnets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_lightnets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
