# Empty compiler generated dependencies file for fig6_lightnets.
# This may be replaced when dependencies are built.
