file(REMOVE_RECURSE
  "CMakeFiles/fig7_search_stability.dir/fig7_search_stability.cpp.o"
  "CMakeFiles/fig7_search_stability.dir/fig7_search_stability.cpp.o.d"
  "fig7_search_stability"
  "fig7_search_stability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_search_stability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
