# Empty dependencies file for fig7_search_stability.
# This may be replaced when dependencies are built.
