file(REMOVE_RECURSE
  "CMakeFiles/fig8_energy_search.dir/fig8_energy_search.cpp.o"
  "CMakeFiles/fig8_energy_search.dir/fig8_energy_search.cpp.o.d"
  "fig8_energy_search"
  "fig8_energy_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_energy_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
