# Empty dependencies file for fig8_energy_search.
# This may be replaced when dependencies are built.
