file(REMOVE_RECURSE
  "CMakeFiles/fig9_scaling_comparison.dir/fig9_scaling_comparison.cpp.o"
  "CMakeFiles/fig9_scaling_comparison.dir/fig9_scaling_comparison.cpp.o.d"
  "fig9_scaling_comparison"
  "fig9_scaling_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_scaling_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
