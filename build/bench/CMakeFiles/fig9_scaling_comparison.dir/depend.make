# Empty dependencies file for fig9_scaling_comparison.
# This may be replaced when dependencies are built.
