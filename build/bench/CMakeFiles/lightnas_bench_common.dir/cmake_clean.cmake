file(REMOVE_RECURSE
  "CMakeFiles/lightnas_bench_common.dir/common.cpp.o"
  "CMakeFiles/lightnas_bench_common.dir/common.cpp.o.d"
  "liblightnas_bench_common.a"
  "liblightnas_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lightnas_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
