file(REMOVE_RECURSE
  "liblightnas_bench_common.a"
)
