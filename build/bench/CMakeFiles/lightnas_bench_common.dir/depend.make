# Empty dependencies file for lightnas_bench_common.
# This may be replaced when dependencies are built.
