file(REMOVE_RECURSE
  "CMakeFiles/multi_constraint.dir/multi_constraint.cpp.o"
  "CMakeFiles/multi_constraint.dir/multi_constraint.cpp.o.d"
  "multi_constraint"
  "multi_constraint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_constraint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
