# Empty dependencies file for multi_constraint.
# This may be replaced when dependencies are built.
