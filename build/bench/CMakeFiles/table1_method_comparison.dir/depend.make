# Empty dependencies file for table1_method_comparison.
# This may be replaced when dependencies are built.
