file(REMOVE_RECURSE
  "CMakeFiles/table2_imagenet.dir/table2_imagenet.cpp.o"
  "CMakeFiles/table2_imagenet.dir/table2_imagenet.cpp.o.d"
  "table2_imagenet"
  "table2_imagenet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_imagenet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
