# Empty dependencies file for table2_imagenet.
# This may be replaced when dependencies are built.
