# Empty compiler generated dependencies file for table3_detection.
# This may be replaced when dependencies are built.
