# Empty dependencies file for table4_se_ablation.
# This may be replaced when dependencies are built.
