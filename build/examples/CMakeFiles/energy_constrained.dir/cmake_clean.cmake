file(REMOVE_RECURSE
  "CMakeFiles/energy_constrained.dir/energy_constrained.cpp.o"
  "CMakeFiles/energy_constrained.dir/energy_constrained.cpp.o.d"
  "energy_constrained"
  "energy_constrained.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/energy_constrained.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
