# Empty compiler generated dependencies file for energy_constrained.
# This may be replaced when dependencies are built.
