file(REMOVE_RECURSE
  "CMakeFiles/latency_predictor.dir/latency_predictor.cpp.o"
  "CMakeFiles/latency_predictor.dir/latency_predictor.cpp.o.d"
  "latency_predictor"
  "latency_predictor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/latency_predictor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
