# Empty compiler generated dependencies file for latency_predictor.
# This may be replaced when dependencies are built.
