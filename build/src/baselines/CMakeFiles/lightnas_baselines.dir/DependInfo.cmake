
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/evolution.cpp" "src/baselines/CMakeFiles/lightnas_baselines.dir/evolution.cpp.o" "gcc" "src/baselines/CMakeFiles/lightnas_baselines.dir/evolution.cpp.o.d"
  "/root/repo/src/baselines/fbnet.cpp" "src/baselines/CMakeFiles/lightnas_baselines.dir/fbnet.cpp.o" "gcc" "src/baselines/CMakeFiles/lightnas_baselines.dir/fbnet.cpp.o.d"
  "/root/repo/src/baselines/proxyless.cpp" "src/baselines/CMakeFiles/lightnas_baselines.dir/proxyless.cpp.o" "gcc" "src/baselines/CMakeFiles/lightnas_baselines.dir/proxyless.cpp.o.d"
  "/root/repo/src/baselines/random_search.cpp" "src/baselines/CMakeFiles/lightnas_baselines.dir/random_search.cpp.o" "gcc" "src/baselines/CMakeFiles/lightnas_baselines.dir/random_search.cpp.o.d"
  "/root/repo/src/baselines/rl_search.cpp" "src/baselines/CMakeFiles/lightnas_baselines.dir/rl_search.cpp.o" "gcc" "src/baselines/CMakeFiles/lightnas_baselines.dir/rl_search.cpp.o.d"
  "/root/repo/src/baselines/scaling.cpp" "src/baselines/CMakeFiles/lightnas_baselines.dir/scaling.cpp.o" "gcc" "src/baselines/CMakeFiles/lightnas_baselines.dir/scaling.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/lightnas_core.dir/DependInfo.cmake"
  "/root/repo/build/src/predictors/CMakeFiles/lightnas_predictors.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/lightnas_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/space/CMakeFiles/lightnas_space.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lightnas_util.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/lightnas_nn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
