file(REMOVE_RECURSE
  "CMakeFiles/lightnas_baselines.dir/evolution.cpp.o"
  "CMakeFiles/lightnas_baselines.dir/evolution.cpp.o.d"
  "CMakeFiles/lightnas_baselines.dir/fbnet.cpp.o"
  "CMakeFiles/lightnas_baselines.dir/fbnet.cpp.o.d"
  "CMakeFiles/lightnas_baselines.dir/proxyless.cpp.o"
  "CMakeFiles/lightnas_baselines.dir/proxyless.cpp.o.d"
  "CMakeFiles/lightnas_baselines.dir/random_search.cpp.o"
  "CMakeFiles/lightnas_baselines.dir/random_search.cpp.o.d"
  "CMakeFiles/lightnas_baselines.dir/rl_search.cpp.o"
  "CMakeFiles/lightnas_baselines.dir/rl_search.cpp.o.d"
  "CMakeFiles/lightnas_baselines.dir/scaling.cpp.o"
  "CMakeFiles/lightnas_baselines.dir/scaling.cpp.o.d"
  "liblightnas_baselines.a"
  "liblightnas_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lightnas_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
