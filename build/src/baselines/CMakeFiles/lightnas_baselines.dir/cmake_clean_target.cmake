file(REMOVE_RECURSE
  "liblightnas_baselines.a"
)
