# Empty compiler generated dependencies file for lightnas_baselines.
# This may be replaced when dependencies are built.
