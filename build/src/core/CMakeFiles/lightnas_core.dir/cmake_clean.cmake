file(REMOVE_RECURSE
  "CMakeFiles/lightnas_core.dir/gumbel.cpp.o"
  "CMakeFiles/lightnas_core.dir/gumbel.cpp.o.d"
  "CMakeFiles/lightnas_core.dir/lightnas.cpp.o"
  "CMakeFiles/lightnas_core.dir/lightnas.cpp.o.d"
  "CMakeFiles/lightnas_core.dir/supernet.cpp.o"
  "CMakeFiles/lightnas_core.dir/supernet.cpp.o.d"
  "liblightnas_core.a"
  "liblightnas_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lightnas_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
