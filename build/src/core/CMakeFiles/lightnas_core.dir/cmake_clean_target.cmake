file(REMOVE_RECURSE
  "liblightnas_core.a"
)
