# Empty dependencies file for lightnas_core.
# This may be replaced when dependencies are built.
