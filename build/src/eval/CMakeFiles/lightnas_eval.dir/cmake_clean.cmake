file(REMOVE_RECURSE
  "CMakeFiles/lightnas_eval.dir/accuracy_model.cpp.o"
  "CMakeFiles/lightnas_eval.dir/accuracy_model.cpp.o.d"
  "CMakeFiles/lightnas_eval.dir/detection.cpp.o"
  "CMakeFiles/lightnas_eval.dir/detection.cpp.o.d"
  "CMakeFiles/lightnas_eval.dir/search_cost.cpp.o"
  "CMakeFiles/lightnas_eval.dir/search_cost.cpp.o.d"
  "CMakeFiles/lightnas_eval.dir/standalone.cpp.o"
  "CMakeFiles/lightnas_eval.dir/standalone.cpp.o.d"
  "CMakeFiles/lightnas_eval.dir/zoo.cpp.o"
  "CMakeFiles/lightnas_eval.dir/zoo.cpp.o.d"
  "liblightnas_eval.a"
  "liblightnas_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lightnas_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
