file(REMOVE_RECURSE
  "liblightnas_eval.a"
)
