# Empty dependencies file for lightnas_eval.
# This may be replaced when dependencies are built.
