file(REMOVE_RECURSE
  "CMakeFiles/lightnas_hw.dir/cost_model.cpp.o"
  "CMakeFiles/lightnas_hw.dir/cost_model.cpp.o.d"
  "CMakeFiles/lightnas_hw.dir/device.cpp.o"
  "CMakeFiles/lightnas_hw.dir/device.cpp.o.d"
  "CMakeFiles/lightnas_hw.dir/simulator.cpp.o"
  "CMakeFiles/lightnas_hw.dir/simulator.cpp.o.d"
  "liblightnas_hw.a"
  "liblightnas_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lightnas_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
