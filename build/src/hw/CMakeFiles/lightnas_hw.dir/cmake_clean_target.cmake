file(REMOVE_RECURSE
  "liblightnas_hw.a"
)
