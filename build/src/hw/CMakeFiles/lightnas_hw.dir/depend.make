# Empty dependencies file for lightnas_hw.
# This may be replaced when dependencies are built.
