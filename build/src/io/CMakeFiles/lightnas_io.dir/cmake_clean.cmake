file(REMOVE_RECURSE
  "CMakeFiles/lightnas_io.dir/json.cpp.o"
  "CMakeFiles/lightnas_io.dir/json.cpp.o.d"
  "CMakeFiles/lightnas_io.dir/serialize.cpp.o"
  "CMakeFiles/lightnas_io.dir/serialize.cpp.o.d"
  "liblightnas_io.a"
  "liblightnas_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lightnas_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
