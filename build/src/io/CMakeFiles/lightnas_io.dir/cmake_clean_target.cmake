file(REMOVE_RECURSE
  "liblightnas_io.a"
)
