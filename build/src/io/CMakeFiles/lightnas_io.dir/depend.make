# Empty dependencies file for lightnas_io.
# This may be replaced when dependencies are built.
