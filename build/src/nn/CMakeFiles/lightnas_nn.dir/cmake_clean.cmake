file(REMOVE_RECURSE
  "CMakeFiles/lightnas_nn.dir/autograd.cpp.o"
  "CMakeFiles/lightnas_nn.dir/autograd.cpp.o.d"
  "CMakeFiles/lightnas_nn.dir/data.cpp.o"
  "CMakeFiles/lightnas_nn.dir/data.cpp.o.d"
  "CMakeFiles/lightnas_nn.dir/gradcheck.cpp.o"
  "CMakeFiles/lightnas_nn.dir/gradcheck.cpp.o.d"
  "CMakeFiles/lightnas_nn.dir/modules.cpp.o"
  "CMakeFiles/lightnas_nn.dir/modules.cpp.o.d"
  "CMakeFiles/lightnas_nn.dir/ops.cpp.o"
  "CMakeFiles/lightnas_nn.dir/ops.cpp.o.d"
  "CMakeFiles/lightnas_nn.dir/optim.cpp.o"
  "CMakeFiles/lightnas_nn.dir/optim.cpp.o.d"
  "CMakeFiles/lightnas_nn.dir/tensor.cpp.o"
  "CMakeFiles/lightnas_nn.dir/tensor.cpp.o.d"
  "liblightnas_nn.a"
  "liblightnas_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lightnas_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
