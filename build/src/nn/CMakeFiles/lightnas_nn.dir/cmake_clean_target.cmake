file(REMOVE_RECURSE
  "liblightnas_nn.a"
)
