# Empty dependencies file for lightnas_nn.
# This may be replaced when dependencies are built.
