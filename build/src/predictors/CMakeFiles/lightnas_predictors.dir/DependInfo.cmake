
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/predictors/dataset.cpp" "src/predictors/CMakeFiles/lightnas_predictors.dir/dataset.cpp.o" "gcc" "src/predictors/CMakeFiles/lightnas_predictors.dir/dataset.cpp.o.d"
  "/root/repo/src/predictors/ensemble.cpp" "src/predictors/CMakeFiles/lightnas_predictors.dir/ensemble.cpp.o" "gcc" "src/predictors/CMakeFiles/lightnas_predictors.dir/ensemble.cpp.o.d"
  "/root/repo/src/predictors/lut_predictor.cpp" "src/predictors/CMakeFiles/lightnas_predictors.dir/lut_predictor.cpp.o" "gcc" "src/predictors/CMakeFiles/lightnas_predictors.dir/lut_predictor.cpp.o.d"
  "/root/repo/src/predictors/metrics.cpp" "src/predictors/CMakeFiles/lightnas_predictors.dir/metrics.cpp.o" "gcc" "src/predictors/CMakeFiles/lightnas_predictors.dir/metrics.cpp.o.d"
  "/root/repo/src/predictors/mlp_predictor.cpp" "src/predictors/CMakeFiles/lightnas_predictors.dir/mlp_predictor.cpp.o" "gcc" "src/predictors/CMakeFiles/lightnas_predictors.dir/mlp_predictor.cpp.o.d"
  "/root/repo/src/predictors/oracle.cpp" "src/predictors/CMakeFiles/lightnas_predictors.dir/oracle.cpp.o" "gcc" "src/predictors/CMakeFiles/lightnas_predictors.dir/oracle.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/lightnas_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/lightnas_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/space/CMakeFiles/lightnas_space.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lightnas_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
