file(REMOVE_RECURSE
  "CMakeFiles/lightnas_predictors.dir/dataset.cpp.o"
  "CMakeFiles/lightnas_predictors.dir/dataset.cpp.o.d"
  "CMakeFiles/lightnas_predictors.dir/ensemble.cpp.o"
  "CMakeFiles/lightnas_predictors.dir/ensemble.cpp.o.d"
  "CMakeFiles/lightnas_predictors.dir/lut_predictor.cpp.o"
  "CMakeFiles/lightnas_predictors.dir/lut_predictor.cpp.o.d"
  "CMakeFiles/lightnas_predictors.dir/metrics.cpp.o"
  "CMakeFiles/lightnas_predictors.dir/metrics.cpp.o.d"
  "CMakeFiles/lightnas_predictors.dir/mlp_predictor.cpp.o"
  "CMakeFiles/lightnas_predictors.dir/mlp_predictor.cpp.o.d"
  "CMakeFiles/lightnas_predictors.dir/oracle.cpp.o"
  "CMakeFiles/lightnas_predictors.dir/oracle.cpp.o.d"
  "liblightnas_predictors.a"
  "liblightnas_predictors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lightnas_predictors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
