file(REMOVE_RECURSE
  "liblightnas_predictors.a"
)
