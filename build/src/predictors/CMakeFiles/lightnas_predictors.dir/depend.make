# Empty dependencies file for lightnas_predictors.
# This may be replaced when dependencies are built.
