
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/space/architecture.cpp" "src/space/CMakeFiles/lightnas_space.dir/architecture.cpp.o" "gcc" "src/space/CMakeFiles/lightnas_space.dir/architecture.cpp.o.d"
  "/root/repo/src/space/flops.cpp" "src/space/CMakeFiles/lightnas_space.dir/flops.cpp.o" "gcc" "src/space/CMakeFiles/lightnas_space.dir/flops.cpp.o.d"
  "/root/repo/src/space/operator_space.cpp" "src/space/CMakeFiles/lightnas_space.dir/operator_space.cpp.o" "gcc" "src/space/CMakeFiles/lightnas_space.dir/operator_space.cpp.o.d"
  "/root/repo/src/space/search_space.cpp" "src/space/CMakeFiles/lightnas_space.dir/search_space.cpp.o" "gcc" "src/space/CMakeFiles/lightnas_space.dir/search_space.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/lightnas_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
