file(REMOVE_RECURSE
  "CMakeFiles/lightnas_space.dir/architecture.cpp.o"
  "CMakeFiles/lightnas_space.dir/architecture.cpp.o.d"
  "CMakeFiles/lightnas_space.dir/flops.cpp.o"
  "CMakeFiles/lightnas_space.dir/flops.cpp.o.d"
  "CMakeFiles/lightnas_space.dir/operator_space.cpp.o"
  "CMakeFiles/lightnas_space.dir/operator_space.cpp.o.d"
  "CMakeFiles/lightnas_space.dir/search_space.cpp.o"
  "CMakeFiles/lightnas_space.dir/search_space.cpp.o.d"
  "liblightnas_space.a"
  "liblightnas_space.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lightnas_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
