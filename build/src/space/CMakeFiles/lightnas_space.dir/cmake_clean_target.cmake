file(REMOVE_RECURSE
  "liblightnas_space.a"
)
