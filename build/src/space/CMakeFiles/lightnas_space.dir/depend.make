# Empty dependencies file for lightnas_space.
# This may be replaced when dependencies are built.
