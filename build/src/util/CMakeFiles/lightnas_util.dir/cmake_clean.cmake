file(REMOVE_RECURSE
  "CMakeFiles/lightnas_util.dir/csv.cpp.o"
  "CMakeFiles/lightnas_util.dir/csv.cpp.o.d"
  "CMakeFiles/lightnas_util.dir/log.cpp.o"
  "CMakeFiles/lightnas_util.dir/log.cpp.o.d"
  "CMakeFiles/lightnas_util.dir/metrics.cpp.o"
  "CMakeFiles/lightnas_util.dir/metrics.cpp.o.d"
  "CMakeFiles/lightnas_util.dir/plot.cpp.o"
  "CMakeFiles/lightnas_util.dir/plot.cpp.o.d"
  "CMakeFiles/lightnas_util.dir/rng.cpp.o"
  "CMakeFiles/lightnas_util.dir/rng.cpp.o.d"
  "CMakeFiles/lightnas_util.dir/stats.cpp.o"
  "CMakeFiles/lightnas_util.dir/stats.cpp.o.d"
  "CMakeFiles/lightnas_util.dir/table.cpp.o"
  "CMakeFiles/lightnas_util.dir/table.cpp.o.d"
  "CMakeFiles/lightnas_util.dir/thread_pool.cpp.o"
  "CMakeFiles/lightnas_util.dir/thread_pool.cpp.o.d"
  "liblightnas_util.a"
  "liblightnas_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lightnas_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
