file(REMOVE_RECURSE
  "liblightnas_util.a"
)
