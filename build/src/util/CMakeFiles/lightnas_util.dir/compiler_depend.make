# Empty compiler generated dependencies file for lightnas_util.
# This may be replaced when dependencies are built.
