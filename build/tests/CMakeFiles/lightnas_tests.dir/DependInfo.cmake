
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/autograd_test.cpp" "tests/CMakeFiles/lightnas_tests.dir/autograd_test.cpp.o" "gcc" "tests/CMakeFiles/lightnas_tests.dir/autograd_test.cpp.o.d"
  "/root/repo/tests/baselines_test.cpp" "tests/CMakeFiles/lightnas_tests.dir/baselines_test.cpp.o" "gcc" "tests/CMakeFiles/lightnas_tests.dir/baselines_test.cpp.o.d"
  "/root/repo/tests/checkpoint_test.cpp" "tests/CMakeFiles/lightnas_tests.dir/checkpoint_test.cpp.o" "gcc" "tests/CMakeFiles/lightnas_tests.dir/checkpoint_test.cpp.o.d"
  "/root/repo/tests/core_test.cpp" "tests/CMakeFiles/lightnas_tests.dir/core_test.cpp.o" "gcc" "tests/CMakeFiles/lightnas_tests.dir/core_test.cpp.o.d"
  "/root/repo/tests/data_test.cpp" "tests/CMakeFiles/lightnas_tests.dir/data_test.cpp.o" "gcc" "tests/CMakeFiles/lightnas_tests.dir/data_test.cpp.o.d"
  "/root/repo/tests/eval_test.cpp" "tests/CMakeFiles/lightnas_tests.dir/eval_test.cpp.o" "gcc" "tests/CMakeFiles/lightnas_tests.dir/eval_test.cpp.o.d"
  "/root/repo/tests/flops_test.cpp" "tests/CMakeFiles/lightnas_tests.dir/flops_test.cpp.o" "gcc" "tests/CMakeFiles/lightnas_tests.dir/flops_test.cpp.o.d"
  "/root/repo/tests/hw_test.cpp" "tests/CMakeFiles/lightnas_tests.dir/hw_test.cpp.o" "gcc" "tests/CMakeFiles/lightnas_tests.dir/hw_test.cpp.o.d"
  "/root/repo/tests/integration_test.cpp" "tests/CMakeFiles/lightnas_tests.dir/integration_test.cpp.o" "gcc" "tests/CMakeFiles/lightnas_tests.dir/integration_test.cpp.o.d"
  "/root/repo/tests/io_test.cpp" "tests/CMakeFiles/lightnas_tests.dir/io_test.cpp.o" "gcc" "tests/CMakeFiles/lightnas_tests.dir/io_test.cpp.o.d"
  "/root/repo/tests/multi_constraint_test.cpp" "tests/CMakeFiles/lightnas_tests.dir/multi_constraint_test.cpp.o" "gcc" "tests/CMakeFiles/lightnas_tests.dir/multi_constraint_test.cpp.o.d"
  "/root/repo/tests/optim_test.cpp" "tests/CMakeFiles/lightnas_tests.dir/optim_test.cpp.o" "gcc" "tests/CMakeFiles/lightnas_tests.dir/optim_test.cpp.o.d"
  "/root/repo/tests/predictors_test.cpp" "tests/CMakeFiles/lightnas_tests.dir/predictors_test.cpp.o" "gcc" "tests/CMakeFiles/lightnas_tests.dir/predictors_test.cpp.o.d"
  "/root/repo/tests/property_test.cpp" "tests/CMakeFiles/lightnas_tests.dir/property_test.cpp.o" "gcc" "tests/CMakeFiles/lightnas_tests.dir/property_test.cpp.o.d"
  "/root/repo/tests/robustness_test.cpp" "tests/CMakeFiles/lightnas_tests.dir/robustness_test.cpp.o" "gcc" "tests/CMakeFiles/lightnas_tests.dir/robustness_test.cpp.o.d"
  "/root/repo/tests/serve_test.cpp" "tests/CMakeFiles/lightnas_tests.dir/serve_test.cpp.o" "gcc" "tests/CMakeFiles/lightnas_tests.dir/serve_test.cpp.o.d"
  "/root/repo/tests/space_test.cpp" "tests/CMakeFiles/lightnas_tests.dir/space_test.cpp.o" "gcc" "tests/CMakeFiles/lightnas_tests.dir/space_test.cpp.o.d"
  "/root/repo/tests/tensor_test.cpp" "tests/CMakeFiles/lightnas_tests.dir/tensor_test.cpp.o" "gcc" "tests/CMakeFiles/lightnas_tests.dir/tensor_test.cpp.o.d"
  "/root/repo/tests/util_test.cpp" "tests/CMakeFiles/lightnas_tests.dir/util_test.cpp.o" "gcc" "tests/CMakeFiles/lightnas_tests.dir/util_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/io/CMakeFiles/lightnas_io.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/lightnas_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/lightnas_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/lightnas_core.dir/DependInfo.cmake"
  "/root/repo/build/src/serve/CMakeFiles/lightnas_serve.dir/DependInfo.cmake"
  "/root/repo/build/src/predictors/CMakeFiles/lightnas_predictors.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/lightnas_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/space/CMakeFiles/lightnas_space.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/lightnas_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lightnas_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
