# Empty compiler generated dependencies file for lightnas_tests.
# This may be replaced when dependencies are built.
