
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/lightnas_cli.cpp" "tools/CMakeFiles/lightnas.dir/lightnas_cli.cpp.o" "gcc" "tools/CMakeFiles/lightnas.dir/lightnas_cli.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/io/CMakeFiles/lightnas_io.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/lightnas_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/lightnas_core.dir/DependInfo.cmake"
  "/root/repo/build/src/serve/CMakeFiles/lightnas_serve.dir/DependInfo.cmake"
  "/root/repo/build/src/predictors/CMakeFiles/lightnas_predictors.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/lightnas_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/space/CMakeFiles/lightnas_space.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/lightnas_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lightnas_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
