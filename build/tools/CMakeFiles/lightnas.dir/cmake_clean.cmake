file(REMOVE_RECURSE
  "CMakeFiles/lightnas.dir/lightnas_cli.cpp.o"
  "CMakeFiles/lightnas.dir/lightnas_cli.cpp.o.d"
  "lightnas"
  "lightnas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lightnas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
