# Empty compiler generated dependencies file for lightnas.
# This may be replaced when dependencies are built.
