// Example: retarget the whole pipeline to YOUR device (Sec 3.5's
// "effortlessly plugged into various scenarios").
//
// A DeviceProfile is a plain struct of roofline parameters — fill it in
// from your datasheet + a few microbenchmarks, re-run the measurement
// campaign, retrain the predictor, and search. This example defines a
// fictional "PocketEdge-1" NPU, shows how architecture *rankings* shift
// versus the Xavier, and searches a latency-constrained network for it.

#include <cstdio>

#include "core/lightnas.hpp"
#include "predictors/mlp_predictor.hpp"
#include "util/stats.hpp"

using namespace lightnas;

int main() {
  const space::SearchSpace space = space::SearchSpace::fbnet_xavier();

  // ---- your device goes here -----------------------------------------
  hw::DeviceProfile pocket_edge;
  pocket_edge.name = "PocketEdge-1";
  pocket_edge.peak_gmacs = 1200.0;          // 1.2 TMAC/s NPU
  pocket_edge.memory_bandwidth_gbs = 20.0;  // LPDDR4 single channel
  pocket_edge.pointwise_efficiency = 0.70;  // systolic GEMM
  pocket_edge.depthwise_efficiency = 0.05;  // depthwise falls off the array
  pocket_edge.dense_efficiency = 0.75;
  pocket_edge.memory_efficiency = 0.60;
  pocket_edge.half_utilization_channels = 64.0;
  pocket_edge.kernel_launch_us = 25.0;
  pocket_edge.network_overhead_ms = 1.8;
  pocket_edge.overlap_factor = 0.95;
  pocket_edge.cache_bytes = 2.0 * 1024 * 1024;
  pocket_edge.cache_saving = 0.5;
  pocket_edge.compute_power_w = 3.2;
  pocket_edge.memory_power_w = 1.4;
  pocket_edge.static_power_w = 0.8;
  pocket_edge.latency_noise_ms = 0.05;
  pocket_edge.energy_noise_frac = 0.02;

  hw::HardwareSimulator device(pocket_edge, /*batch=*/8, /*seed=*/17);
  hw::HardwareSimulator xavier(hw::DeviceProfile::jetson_xavier_maxn(), 8,
                               42);

  // ---- rankings shift across devices ----------------------------------
  util::Rng rng(3);
  std::vector<double> ours, theirs;
  for (int i = 0; i < 80; ++i) {
    const space::Architecture arch = space.random_architecture(rng);
    ours.push_back(device.model().network_latency_ms(space, arch));
    theirs.push_back(xavier.model().network_latency_ms(space, arch));
  }
  std::printf(
      "kendall-tau of architecture latencies, PocketEdge-1 vs Xavier: "
      "%.3f\n",
      util::kendall_tau(ours, theirs));
  std::printf("(< 1.0 means a Xavier-optimal network is NOT optimal here —\n"
              " which is why the predictor must be retrained per device)\n\n");

  // ---- retrain the predictor on the new device -------------------------
  util::Rng campaign_rng(4);
  const predictors::MeasurementDataset data =
      predictors::build_measurement_dataset(
          space, device, 4000, predictors::Metric::kLatencyMs,
          campaign_rng);
  predictors::MlpPredictor predictor(space.num_layers(), space.num_ops());
  predictors::MlpTrainConfig train_config;
  train_config.epochs = 80;
  train_config.batch_size = 128;
  predictor.train(data, train_config);
  std::printf("PocketEdge-1 predictor: %s\n",
              predictor.evaluate(data).to_string("ms").c_str());
  std::printf("latency range sampled: %.1f .. %.1f ms\n\n",
              util::min_of(data.targets), util::max_of(data.targets));

  // ---- and search for it ------------------------------------------------
  const double target = util::median(data.targets);  // mid-range budget
  std::printf("searching at T = %.1f ms on PocketEdge-1...\n", target);
  const nn::SyntheticTask task = nn::make_synthetic_task({});
  core::LightNasConfig config;
  config.target = target;
  config.seed = 13;
  core::LightNas engine(space, predictor, task, core::SupernetConfig{},
                        config);
  const core::SearchResult result = engine.search();
  std::printf("\n%s\n\n", result.architecture.to_diagram(space).c_str());
  std::printf("predicted %.2f ms / measured %.2f ms on PocketEdge-1\n",
              result.final_predicted_cost,
              device.measure_latency_ms(space, result.architecture, 16));
  std::printf("the same network on Xavier: %.2f ms\n",
              xavier.model().network_latency_ms(space,
                                                result.architecture));
  return 0;
}
