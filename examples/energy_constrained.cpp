// Example: energy-constrained search (Sec 4.3 "Generality to
// Energy-Critical Tasks"). Identical pipeline to quickstart, except the
// measurement campaign reads the power meter and the constraint is a
// budget in millijoules. Nothing in the engine changes — only the
// predictor instance.

#include <cstdio>
#include <cstdlib>

#include "core/lightnas.hpp"
#include "predictors/mlp_predictor.hpp"
#include "space/flops.hpp"

using namespace lightnas;

int main(int argc, char** argv) {
  const double target_mj = argc > 1 ? std::atof(argv[1]) : 500.0;

  const space::SearchSpace space = space::SearchSpace::fbnet_xavier();
  hw::HardwareSimulator device(hw::DeviceProfile::jetson_xavier_maxn(), 8,
                               42);

  std::printf("measuring energy of 4000 random architectures...\n");
  std::printf("(note: energy readings include simulated thermal drift,\n");
  std::printf(" as the paper observes for the real power rails)\n");
  util::Rng rng(5);
  const predictors::MeasurementDataset data =
      predictors::build_measurement_dataset(
          space, device, 4000, predictors::Metric::kEnergyMj, rng);
  predictors::MlpPredictor predictor(space.num_layers(), space.num_ops(),
                                     7, "mJ");
  predictors::MlpTrainConfig train_config;
  train_config.epochs = 80;
  train_config.batch_size = 128;
  predictor.train(data, train_config);
  std::printf("energy predictor: %s\n\n",
              predictor.evaluate(data).to_string("mJ").c_str());

  const nn::SyntheticTask task = nn::make_synthetic_task({});
  core::LightNasConfig config;
  config.target = target_mj;  // constraint now in millijoules
  config.seed = 9;
  core::LightNas engine(space, predictor, task, core::SupernetConfig{},
                        config);
  const core::SearchResult result = engine.search();

  std::printf("searched under E <= %.0f mJ:\n%s\n\n", target_mj,
              result.architecture.to_diagram(space).c_str());
  std::printf("predicted energy : %.1f mJ (target %.0f mJ)\n",
              result.final_predicted_cost, target_mj);
  std::printf("measured energy  : %.1f mJ\n",
              device.measure_energy_mj(space, result.architecture));
  std::printf("latency (bonus)  : %.2f ms\n",
              device.model().network_latency_ms(space,
                                                result.architecture));
  std::printf("MACs             : %.0f M\n",
              space::count_macs(space, result.architecture) / 1e6);
  return 0;
}
