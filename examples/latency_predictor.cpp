// Example: build, train and inspect hardware-cost predictors.
//
// Shows the Sec-3.2 workflow in isolation: measurement campaign, MLP vs
// LUT comparison, per-operator sensitivity analysis (what the predictor
// believes each operator costs at each layer), and the differentiable
// interface the search engine consumes.

#include <cstdio>

#include "nn/ops.hpp"
#include "predictors/lut_predictor.hpp"
#include "predictors/mlp_predictor.hpp"
#include "space/search_space.hpp"

using namespace lightnas;

int main() {
  const space::SearchSpace space = space::SearchSpace::fbnet_xavier();
  hw::HardwareSimulator device(hw::DeviceProfile::jetson_xavier_maxn(), 8,
                               42);

  // Campaign + split (80/20 like the paper).
  util::Rng rng(1);
  predictors::MeasurementDataset data =
      predictors::build_measurement_dataset(
          space, device, 5000, predictors::Metric::kLatencyMs, rng);
  auto [train, valid] = data.split(0.8, rng);

  predictors::MlpPredictor mlp(space.num_layers(), space.num_ops());
  predictors::MlpTrainConfig config;
  config.epochs = 100;
  config.batch_size = 128;
  config.log_every = 25;
  mlp.train(train, config);

  const predictors::LutPredictor lut(space, device);

  std::printf("\nheld-out quality (%zu archs):\n", valid.size());
  std::printf("  MLP: %s\n", mlp.evaluate(valid).to_string("ms").c_str());
  std::printf("  LUT: %s\n", lut.evaluate(valid).to_string("ms").c_str());

  // Per-operator sensitivity at three representative layers: flip the
  // op at one layer of the MobileNetV2-like base and read the predicted
  // delta. This is exactly the gradient signal the search uses (Eq 12).
  const space::Architecture base = space.mobilenet_v2_like();
  const double base_pred = mlp.predict(base);
  std::printf("\npredicted marginal cost of each operator (vs K3_E6):\n");
  std::printf("%-8s", "layer");
  for (std::size_t k = 0; k < space.num_ops(); ++k) {
    std::printf("%9s", space.ops().name(k).c_str());
  }
  std::printf("\n");
  for (std::size_t layer : {1ul, 10ul, 20ul}) {
    std::printf("%-8zu", layer);
    for (std::size_t k = 0; k < space.num_ops(); ++k) {
      space::Architecture probe = base;
      probe.set_op(layer, k);
      std::printf("%+8.2f ", mlp.predict(probe) - base_pred);
    }
    std::printf("\n");
  }

  // The differentiable hook: d(predicted latency)/d(encoding).
  const std::vector<float> enc = base.encode_one_hot(space.num_ops());
  nn::Tensor x(1, enc.size());
  std::copy(enc.begin(), enc.end(), x.data().begin());
  nn::VarPtr input = nn::make_leaf(std::move(x));
  nn::backward(mlp.forward_var(input));
  std::printf(
      "\nd(LAT)/d(encoding) computed in one backward pass; |grad|_max = "
      "%.3f ms per unit one-hot\n",
      input->grad.abs_max());
  return 0;
}
