// Quickstart: the whole LightNAS pipeline in ~60 lines.
//
//  1. Define the search space (FBNet-style, 22 layers, |A| = 7^21).
//  2. Stand up the device (here: the simulated Jetson AGX Xavier).
//  3. Run the one-time measurement campaign and train the MLP latency
//     predictor (Sec 3.2).
//  4. Ask for an architecture at a specific latency target — ONE search
//     call, no hyper-parameter sweep ("you only search once", Sec 3.4).
//
// Build & run:  ./build/examples/quickstart [target_ms]

#include <cstdio>
#include <cstdlib>

#include "core/lightnas.hpp"
#include "eval/accuracy_model.hpp"
#include "predictors/mlp_predictor.hpp"
#include "space/flops.hpp"

using namespace lightnas;

int main(int argc, char** argv) {
  const double target_ms = argc > 1 ? std::atof(argv[1]) : 24.0;

  // 1. Search space ----------------------------------------------------
  const space::SearchSpace space = space::SearchSpace::fbnet_xavier();
  std::printf("%s\n", space.describe().c_str());

  // 2. Device ----------------------------------------------------------
  hw::HardwareSimulator device(hw::DeviceProfile::jetson_xavier_maxn(),
                               /*batch=*/8, /*seed=*/42);
  std::printf("device: %s\n", device.profile().name.c_str());

  // 3. Latency predictor -----------------------------------------------
  std::printf("measuring 4000 random architectures...\n");
  util::Rng rng(1);
  const predictors::MeasurementDataset data =
      predictors::build_measurement_dataset(
          space, device, 4000, predictors::Metric::kLatencyMs, rng);
  predictors::MlpPredictor predictor(space.num_layers(), space.num_ops());
  predictors::MlpTrainConfig train_config;
  train_config.epochs = 80;
  train_config.batch_size = 128;
  predictor.train(data, train_config);
  std::printf("predictor trained: %s\n\n",
              predictor.evaluate(data).to_string("ms").c_str());

  // 4. One-shot constrained search ---------------------------------------
  std::printf("searching for a %.1f ms architecture (one run)...\n",
              target_ms);
  const nn::SyntheticTask task = nn::make_synthetic_task({});
  core::LightNasConfig config;
  config.target = target_ms;
  config.seed = 7;
  core::LightNas engine(space, predictor, task, core::SupernetConfig{},
                        config);
  const core::SearchResult result = engine.search();

  const eval::AccuracyModel accuracy(space);
  std::printf("\nsearched architecture:\n%s\n\n",
              result.architecture.to_diagram(space).c_str());
  std::printf("predicted latency : %.2f ms (target %.1f ms)\n",
              result.final_predicted_cost, target_ms);
  std::printf("measured latency  : %.2f ms\n",
              device.measure_latency_ms(space, result.architecture, 32));
  std::printf("MACs              : %.0f M\n",
              space::count_macs(space, result.architecture) / 1e6);
  std::printf("surrogate top-1   : %.1f %%\n",
              accuracy.top1(result.architecture));
  std::printf("learned lambda    : %.3f\n", result.final_lambda);
  std::printf("\nserialized: %s\n", result.architecture.serialize().c_str());
  return 0;
}
