#include "baselines/evolution.hpp"

#include <algorithm>
#include <cassert>

namespace lightnas::baselines {

namespace {

struct Individual {
  space::Architecture arch;
  double score = 0.0;
};

bool feasible(const predictors::CostOracle& cost,
              const space::Architecture& arch, const EvolutionConfig& cfg) {
  const double predicted = cost.predict(arch);
  return predicted <= cfg.target && predicted >= cfg.target - cfg.slack;
}

}  // namespace

EvolutionResult evolutionary_search(const space::SearchSpace& space,
                                    const predictors::CostOracle& cost,
                                    const ScoreFn& score,
                                    const EvolutionConfig& config) {
  assert(config.population >= 2);
  assert(config.tournament >= 1);
  util::Rng rng(config.seed * 0x6a09e667f3bcc909ULL + 3);

  EvolutionResult result;

  // Seed a feasible population by rejection sampling (with a mutation-
  // repair fallback so tight targets still fill the population).
  std::vector<Individual> population;
  std::size_t attempts = 0;
  while (population.size() < config.population &&
         attempts < config.population * 500) {
    ++attempts;
    space::Architecture arch = space.random_architecture(rng);
    if (!feasible(cost, arch, config)) {
      // Repair: nudge towards the target with single-op mutations.
      for (int repair = 0; repair < 40; ++repair) {
        space::Architecture mutated = space.mutate(arch, 1, rng);
        if (std::abs(cost.predict(mutated) - config.target) <
            std::abs(cost.predict(arch) - config.target)) {
          arch = std::move(mutated);
        }
        if (feasible(cost, arch, config)) break;
      }
      if (!feasible(cost, arch, config)) continue;
    }
    Individual ind;
    ind.score = score(arch);
    ind.arch = std::move(arch);
    ++result.num_evaluated;
    population.push_back(std::move(ind));
  }
  assert(!population.empty() && "could not seed a feasible population");

  auto tournament_pick = [&]() -> const Individual& {
    const Individual* best = nullptr;
    for (std::size_t i = 0; i < config.tournament; ++i) {
      const Individual& cand =
          population[rng.uniform_index(population.size())];
      if (best == nullptr || cand.score > best->score) best = &cand;
    }
    return *best;
  };

  for (std::size_t gen = 0; gen < config.generations; ++gen) {
    std::vector<Individual> children;
    children.reserve(config.children);
    std::size_t guard = 0;
    while (children.size() < config.children &&
           guard < config.children * 200) {
      ++guard;
      space::Architecture child =
          (children.size() % 2 == 0)
              ? space.mutate(tournament_pick().arch,
                             config.mutations_per_child, rng)
              : space.crossover(tournament_pick().arch,
                                tournament_pick().arch, rng);
      if (!feasible(cost, child, config)) continue;
      Individual ind;
      ind.score = score(child);
      ind.arch = std::move(child);
      ++result.num_evaluated;
      children.push_back(std::move(ind));
    }

    // Elitist replacement: merge and keep the top `population`.
    for (Individual& child : children) {
      population.push_back(std::move(child));
    }
    std::sort(population.begin(), population.end(),
              [](const Individual& a, const Individual& b) {
                return a.score > b.score;
              });
    if (population.size() > config.population) {
      population.resize(config.population);
    }
    result.best_score_per_generation.push_back(population.front().score);
  }

  result.best = population.front().arch;
  result.best_score = population.front().score;
  return result;
}

}  // namespace lightnas::baselines
