#pragma once

#include <cstdint>
#include <vector>

#include "baselines/random_search.hpp"
#include "predictors/predictor.hpp"
#include "space/architecture.hpp"
#include "space/search_space.hpp"
#include "util/rng.hpp"

namespace lightnas::baselines {

struct EvolutionConfig {
  std::size_t population = 64;
  std::size_t generations = 30;
  /// Parents drawn per generation by tournament of this size.
  std::size_t tournament = 8;
  /// Children produced per generation (half mutation, half crossover).
  std::size_t children = 32;
  std::size_t mutations_per_child = 2;
  double target = 24.0;
  double slack = 2.0;
  std::uint64_t seed = 0;
};

struct EvolutionResult {
  space::Architecture best;
  double best_score = 0.0;
  std::vector<double> best_score_per_generation;
  std::size_t num_evaluated = 0;
};

/// Constraint-aware evolutionary search in the style of the Once-for-All
/// specialization stage (reference [18]): a feasible-only population is
/// evolved by mutation + uniform crossover under tournament selection,
/// with the latency predictor acting as the feasibility oracle.
EvolutionResult evolutionary_search(const space::SearchSpace& space,
                                    const predictors::CostOracle& cost,
                                    const ScoreFn& score,
                                    const EvolutionConfig& config);

}  // namespace lightnas::baselines
