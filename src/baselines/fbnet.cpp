#include "baselines/fbnet.hpp"

#include <algorithm>
#include <cassert>

#include "core/gumbel.hpp"
#include "nn/ops.hpp"
#include "nn/optim.hpp"
#include "util/rng.hpp"

namespace lightnas::baselines {

FbNetSearch::FbNetSearch(const space::SearchSpace& space,
                         const predictors::HardwarePredictor& predictor,
                         const nn::SyntheticTask& task,
                         const core::SupernetConfig& supernet,
                         const FbNetConfig& config)
    : space_(&space),
      predictor_(&predictor),
      task_(&task),
      supernet_config_(supernet),
      config_(config) {
  assert(config.lambda >= 0.0);
  assert(config.warmup_epochs < config.epochs);
}

core::SearchResult FbNetSearch::search() {
  const std::size_t num_layers = space_->num_layers();
  const std::size_t num_ops = space_->num_ops();

  std::vector<std::size_t> searchable_layers;
  for (std::size_t l = 0; l < num_layers; ++l) {
    if (space_->layers()[l].searchable) searchable_layers.push_back(l);
  }
  const std::size_t num_searchable = searchable_layers.size();

  util::Rng rng(config_.seed * 0x2545f4914f6cdd1dULL + 99);
  core::SupernetConfig supernet_config = supernet_config_;
  supernet_config.seed ^= config_.seed;
  const std::size_t num_classes =
      1 + *std::max_element(task_->train.labels.begin(),
                            task_->train.labels.end());
  core::SurrogateSupernet supernet(*space_, task_->train.feature_dim(),
                                   num_classes, supernet_config);

  nn::VarPtr alpha =
      nn::make_leaf(nn::Tensor::zeros(num_searchable, num_ops), "alpha");

  nn::Sgd w_optimizer(supernet.weight_parameters(), config_.w_lr,
                      config_.w_momentum, config_.w_weight_decay,
                      /*clip_norm=*/5.0);
  const nn::CosineSchedule w_schedule(
      config_.w_lr, config_.epochs * config_.w_steps_per_epoch);
  nn::Adam alpha_optimizer({alpha}, config_.alpha_lr, 0.9, 0.999, 1e-8,
                           config_.alpha_weight_decay);
  const core::TemperatureSchedule tau_schedule(
      config_.tau_initial, config_.tau_final, config_.epochs);

  util::Rng data_rng = rng.fork();
  nn::Batcher train_batches(task_->train, config_.batch_size, data_rng);
  util::Rng valid_rng = rng.fork();
  nn::Batcher valid_batches(task_->valid, config_.batch_size, valid_rng);

  // Soft Gumbel path weights for the full layer stack; fixed layers get
  // a constant placeholder row (forward_multi_path executes their fixed
  // op unweighted).
  auto soft_weights = [&](double tau) {
    const nn::VarPtr p_hat = nn::ops::row_softmax(nn::ops::scale(
        nn::ops::add(alpha, nn::make_const(core::gumbel_noise(
                                num_searchable, num_ops, rng))),
        1.0 / tau));
    std::vector<nn::VarPtr> rows;
    rows.reserve(num_layers);
    std::size_t s = 0;
    for (std::size_t l = 0; l < num_layers; ++l) {
      if (space_->layers()[l].searchable) {
        rows.push_back(nn::ops::slice_rows(p_hat, s++, 1));
      } else {
        nn::Tensor one_hot = nn::Tensor::zeros(1, num_ops);
        one_hot.at(0, 0) = 1.0f;
        rows.push_back(nn::make_const(std::move(one_hot)));
      }
    }
    return nn::ops::vstack(rows);
  };

  auto derive = [&]() {
    std::vector<std::size_t> ops(num_layers, 0);
    for (std::size_t s = 0; s < num_searchable; ++s) {
      ops[searchable_layers[s]] = alpha->value.argmax_row(s);
    }
    return space::Architecture(std::move(ops));
  };

  core::SearchResult result;
  std::size_t w_step_counter = 0;

  for (std::size_t epoch = 0; epoch < config_.epochs; ++epoch) {
    const double tau = tau_schedule.at(epoch);
    double sampled_cost_sum = 0.0;
    std::size_t sampled_cost_count = 0;

    // ---- w phase: multi-path soft-weighted forward ---------------------
    for (std::size_t step = 0; step < config_.w_steps_per_epoch; ++step) {
      const nn::Dataset batch = train_batches.next();
      const nn::VarPtr weights = soft_weights(tau);
      w_optimizer.zero_grad();
      alpha->zero_grad();
      const nn::VarPtr logits =
          supernet.forward_multi_path(batch.features, weights);
      const nn::VarPtr loss =
          nn::ops::softmax_cross_entropy(logits, batch.labels);
      nn::backward(loss);
      w_optimizer.set_lr(w_schedule.lr_at(w_step_counter++));
      w_optimizer.step();
      alpha->zero_grad();  // w phase must not leak into alpha
      ++result.weight_updates;
    }

    // ---- alpha phase: CE + fixed-lambda soft latency penalty (Eq 3) ----
    if (epoch >= config_.warmup_epochs) {
      for (std::size_t step = 0; step < config_.alpha_steps_per_epoch;
           ++step) {
        const nn::Dataset batch = valid_batches.next();
        const nn::VarPtr weights = soft_weights(tau);

        const nn::VarPtr logits =
            supernet.forward_multi_path(batch.features, weights);
        const nn::VarPtr ce =
            nn::ops::softmax_cross_entropy(logits, batch.labels);

        // Expected cost under the soft path distribution. With the LUT
        // predictor (linear in the encoding) this is exactly FBNet's
        // sum_{l,k} P_hat[l,k] * LUT[l,k].
        const nn::VarPtr encoding =
            nn::ops::reshape(weights, 1, num_layers * num_ops);
        const nn::VarPtr expected_cost = predictor_->forward_var(encoding);
        const nn::VarPtr loss = nn::ops::add(
            ce, nn::ops::scale(expected_cost, config_.lambda));

        alpha_optimizer.zero_grad();
        nn::backward(loss);
        alpha_optimizer.step();
        for (const nn::VarPtr& param : supernet.weight_parameters()) {
          param->zero_grad();
        }
        ++result.alpha_updates;

        sampled_cost_sum += static_cast<double>(expected_cost->value.item());
        ++sampled_cost_count;
      }
    }

    // ---- telemetry ------------------------------------------------------
    core::SearchEpochStats stats;
    stats.epoch = epoch;
    stats.tau = tau;
    stats.lambda = config_.lambda;
    stats.derived = derive();
    stats.predicted_cost = predictor_->predict(stats.derived);
    stats.sampled_cost_mean =
        sampled_cost_count > 0
            ? sampled_cost_sum / static_cast<double>(sampled_cost_count)
            : stats.predicted_cost;
    {
      const nn::VarPtr logits = supernet.forward_single_path(
          task_->valid.features, stats.derived.ops());
      const nn::VarPtr loss =
          nn::ops::softmax_cross_entropy(logits, task_->valid.labels);
      stats.valid_loss = static_cast<double>(loss->value.item());
      stats.valid_accuracy =
          nn::ops::accuracy(logits->value, task_->valid.labels);
    }
    result.trace.push_back(std::move(stats));
  }

  result.architecture = derive();
  result.final_predicted_cost = predictor_->predict(result.architecture);
  result.final_lambda = config_.lambda;
  return result;
}

}  // namespace lightnas::baselines
