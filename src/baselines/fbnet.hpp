#pragma once

#include <cstdint>

#include "core/lightnas.hpp"
#include "core/supernet.hpp"
#include "nn/data.hpp"
#include "predictors/predictor.hpp"
#include "space/search_space.hpp"

namespace lightnas::baselines {

/// Configuration of the FBNet-style baseline search.
struct FbNetConfig {
  /// Fixed trade-off coefficient of Eq (3). THE knob the paper's
  /// motivation section is about: each latency target requires re-tuning
  /// this by trial and error (Fig 3), i.e., ~10 search runs.
  double lambda = 0.001;

  std::size_t epochs = 30;
  std::size_t warmup_epochs = 5;
  std::size_t w_steps_per_epoch = 8;
  std::size_t alpha_steps_per_epoch = 8;
  std::size_t batch_size = 48;

  double w_lr = 0.05;
  double w_momentum = 0.9;
  double w_weight_decay = 3e-5;
  double alpha_lr = 1e-3;
  double alpha_weight_decay = 1e-3;

  double tau_initial = 5.0;
  double tau_final = 0.1;

  std::uint64_t seed = 0;
};

/// FBNet-style hardware-aware differentiable search (reference [5]):
/// multi-path supernet execution with soft Gumbel weights — every
/// candidate of every layer is evaluated and mixed (Eq 1/8-soft), giving
/// O(K) compute and activation memory per layer — plus a *soft* latency
/// penalty lambda * LAT(alpha) with a constant, hand-tuned lambda.
///
/// Differences from LightNAS the paper calls out, all reproduced here:
///  - multi-path => K-times memory (the "memory bottleneck", Table 1);
///  - soft penalty => the achieved latency is an uncontrolled function
///    of lambda (Fig 3), so hitting a target T takes a manual sweep;
///  - expected latency is the probability-weighted sum of per-op costs,
///    naturally expressed with the (linear) LUT predictor.
class FbNetSearch {
 public:
  FbNetSearch(const space::SearchSpace& space,
              const predictors::HardwarePredictor& predictor,
              const nn::SyntheticTask& task,
              const core::SupernetConfig& supernet,
              const FbNetConfig& config);

  core::SearchResult search();

  const FbNetConfig& config() const { return config_; }

 private:
  const space::SearchSpace* space_;
  const predictors::HardwarePredictor* predictor_;
  const nn::SyntheticTask* task_;
  core::SupernetConfig supernet_config_;
  FbNetConfig config_;
};

}  // namespace lightnas::baselines
