#include "baselines/proxyless.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "nn/ops.hpp"
#include "nn/optim.hpp"
#include "util/rng.hpp"

namespace lightnas::baselines {

ProxylessSearch::ProxylessSearch(const space::SearchSpace& space,
                                 const predictors::HardwarePredictor& predictor,
                                 const nn::SyntheticTask& task,
                                 const core::SupernetConfig& supernet,
                                 const ProxylessConfig& config)
    : space_(&space),
      predictor_(&predictor),
      task_(&task),
      supernet_config_(supernet),
      config_(config) {
  assert(config.lambda >= 0.0);
  assert(config.warmup_epochs < config.epochs);
}

core::SearchResult ProxylessSearch::search() {
  const std::size_t num_layers = space_->num_layers();
  const std::size_t num_ops = space_->num_ops();

  std::vector<std::size_t> searchable_layers;
  for (std::size_t l = 0; l < num_layers; ++l) {
    if (space_->layers()[l].searchable) searchable_layers.push_back(l);
  }
  const std::size_t num_searchable = searchable_layers.size();

  util::Rng rng(config_.seed * 0x9ddfea08eb382d69ULL + 31);
  core::SupernetConfig supernet_config = supernet_config_;
  supernet_config.seed ^= config_.seed;
  const std::size_t num_classes =
      1 + *std::max_element(task_->train.labels.begin(),
                            task_->train.labels.end());
  core::SurrogateSupernet supernet(*space_, task_->train.feature_dim(),
                                   num_classes, supernet_config);

  nn::VarPtr alpha =
      nn::make_leaf(nn::Tensor::zeros(num_searchable, num_ops), "alpha");

  nn::Sgd w_optimizer(supernet.weight_parameters(), config_.w_lr,
                      config_.w_momentum, config_.w_weight_decay,
                      /*clip_norm=*/5.0);
  const nn::CosineSchedule w_schedule(
      config_.w_lr, config_.epochs * config_.w_steps_per_epoch);
  nn::Adam alpha_optimizer({alpha}, config_.alpha_lr, 0.9, 0.999, 1e-8,
                           config_.alpha_weight_decay);

  util::Rng data_rng = rng.fork();
  nn::Batcher train_batches(task_->train, config_.batch_size, data_rng);
  util::Rng valid_rng = rng.fork();
  nn::Batcher valid_batches(task_->valid, config_.batch_size, valid_rng);

  // Per-row softmax probabilities of alpha (values only).
  auto row_probs = [&](std::size_t s) {
    std::vector<double> probs(num_ops);
    double mx = alpha->value.at(s, 0);
    for (std::size_t k = 1; k < num_ops; ++k) {
      mx = std::max(mx, static_cast<double>(alpha->value.at(s, k)));
    }
    double total = 0.0;
    for (std::size_t k = 0; k < num_ops; ++k) {
      probs[k] = std::exp(alpha->value.at(s, k) - mx);
      total += probs[k];
    }
    for (double& p : probs) p /= total;
    return probs;
  };

  auto derive = [&]() {
    std::vector<std::size_t> ops(num_layers, 0);
    for (std::size_t s = 0; s < num_searchable; ++s) {
      ops[searchable_layers[s]] = alpha->value.argmax_row(s);
    }
    return space::Architecture(std::move(ops));
  };

  core::SearchResult result;
  std::size_t w_step_counter = 0;

  for (std::size_t epoch = 0; epoch < config_.epochs; ++epoch) {
    double sampled_cost_sum = 0.0;
    std::size_t sampled_cost_count = 0;

    // ---- w phase: single sampled path (ProxylessNAS trains w this way)
    for (std::size_t step = 0; step < config_.w_steps_per_epoch; ++step) {
      const nn::Dataset batch = train_batches.next();
      std::vector<std::size_t> op_choice(num_layers, 0);
      for (std::size_t s = 0; s < num_searchable; ++s) {
        op_choice[searchable_layers[s]] = rng.categorical(row_probs(s));
      }
      w_optimizer.zero_grad();
      const nn::VarPtr logits =
          supernet.forward_single_path(batch.features, op_choice);
      const nn::VarPtr loss =
          nn::ops::softmax_cross_entropy(logits, batch.labels);
      nn::backward(loss);
      w_optimizer.set_lr(w_schedule.lr_at(w_step_counter++));
      w_optimizer.step();
      ++result.weight_updates;
    }

    // ---- alpha phase: two sampled candidates per layer ----------------
    if (epoch >= config_.warmup_epochs) {
      for (std::size_t step = 0; step < config_.alpha_steps_per_epoch;
           ++step) {
        const nn::Dataset batch = valid_batches.next();

        // Sample two distinct candidates per searchable layer and build
        // a masked softmax over exactly that pair: a differentiable
        // renormalization of their probabilities.
        nn::Tensor mask(num_searchable, num_ops, -1e9f);
        for (std::size_t s = 0; s < num_searchable; ++s) {
          const std::vector<double> probs = row_probs(s);
          const std::size_t first = rng.categorical(probs);
          std::vector<double> rest = probs;
          rest[first] = 0.0;
          const std::size_t second = rng.categorical(rest);
          mask.at(s, first) = 0.0f;
          mask.at(s, second) = 0.0f;
        }
        const nn::VarPtr pair_weights = nn::ops::row_softmax(
            nn::ops::add(alpha, nn::make_const(std::move(mask))));

        // Assemble full-layer weights (fixed layers: constant one-hot).
        std::vector<nn::VarPtr> rows;
        rows.reserve(num_layers);
        std::size_t s = 0;
        for (std::size_t l = 0; l < num_layers; ++l) {
          if (space_->layers()[l].searchable) {
            rows.push_back(nn::ops::slice_rows(pair_weights, s++, 1));
          } else {
            nn::Tensor one_hot = nn::Tensor::zeros(1, num_ops);
            one_hot.at(0, 0) = 1.0f;
            rows.push_back(nn::make_const(std::move(one_hot)));
          }
        }
        const nn::VarPtr weights = nn::ops::vstack(rows);

        const nn::VarPtr logits =
            supernet.forward_multi_path(batch.features, weights);
        const nn::VarPtr ce =
            nn::ops::softmax_cross_entropy(logits, batch.labels);
        const nn::VarPtr encoding =
            nn::ops::reshape(weights, 1, num_layers * num_ops);
        const nn::VarPtr expected_cost = predictor_->forward_var(encoding);
        const nn::VarPtr loss = nn::ops::add(
            ce, nn::ops::scale(expected_cost, config_.lambda));

        alpha_optimizer.zero_grad();
        nn::backward(loss);
        alpha_optimizer.step();
        for (const nn::VarPtr& param : supernet.weight_parameters()) {
          param->zero_grad();
        }
        ++result.alpha_updates;
        sampled_cost_sum += static_cast<double>(expected_cost->value.item());
        ++sampled_cost_count;
      }
    }

    // ---- telemetry ------------------------------------------------------
    core::SearchEpochStats stats;
    stats.epoch = epoch;
    stats.tau = 0.0;  // Proxyless does not anneal a temperature
    stats.lambda = config_.lambda;
    stats.derived = derive();
    stats.predicted_cost = predictor_->predict(stats.derived);
    stats.lambdas = {config_.lambda};
    stats.predicted_costs = {stats.predicted_cost};
    stats.sampled_cost_mean =
        sampled_cost_count > 0
            ? sampled_cost_sum / static_cast<double>(sampled_cost_count)
            : stats.predicted_cost;
    {
      const nn::VarPtr logits = supernet.forward_single_path(
          task_->valid.features, stats.derived.ops());
      const nn::VarPtr loss =
          nn::ops::softmax_cross_entropy(logits, task_->valid.labels);
      stats.valid_loss = static_cast<double>(loss->value.item());
      stats.valid_accuracy =
          nn::ops::accuracy(logits->value, task_->valid.labels);
    }
    result.trace.push_back(std::move(stats));
  }

  result.architecture = derive();
  result.final_predicted_cost = predictor_->predict(result.architecture);
  result.final_lambda = config_.lambda;
  result.final_costs = {result.final_predicted_cost};
  result.final_lambdas = {config_.lambda};
  return result;
}

}  // namespace lightnas::baselines
