#pragma once

#include <cstdint>

#include "core/lightnas.hpp"
#include "core/supernet.hpp"
#include "nn/data.hpp"
#include "predictors/predictor.hpp"
#include "space/search_space.hpp"

namespace lightnas::baselines {

struct ProxylessConfig {
  /// Fixed soft latency coefficient (swept by hand, like FBNet's).
  double lambda = 0.001;

  std::size_t epochs = 30;
  std::size_t warmup_epochs = 5;
  std::size_t w_steps_per_epoch = 8;
  std::size_t alpha_steps_per_epoch = 8;
  std::size_t batch_size = 48;

  double w_lr = 0.15;
  double w_momentum = 0.9;
  double w_weight_decay = 3e-5;
  double alpha_lr = 1e-3;
  double alpha_weight_decay = 1e-3;

  std::uint64_t seed = 0;
};

/// ProxylessNAS-style baseline (reference [4]): weights are trained on
/// sampled single paths, while the architecture parameters are updated
/// on *two* sampled candidates per layer whose probabilities are
/// renormalized over the pair ("binarized" path weights). This sits
/// between DARTS' full multi-path (O(K) memory) and LightNAS' single
/// path: O(2) active candidates per layer (the paper's Table 1 lists it
/// as O(K^2) in search complexity due to the pairwise updates).
///
/// Like FBNet, the latency penalty is a *soft* fixed-lambda term, so
/// hitting a specified latency requires the manual sweep the paper's
/// motivation section counts against these methods.
///
/// Note on the substrate: candidates outside the sampled pair get an
/// exactly-zero mixture weight; we evaluate them anyway through the
/// generic multi-path forward for implementation simplicity. The
/// two-path memory saving is accounted analytically (Table 1 bench),
/// not measured from this simulation.
class ProxylessSearch {
 public:
  ProxylessSearch(const space::SearchSpace& space,
                  const predictors::HardwarePredictor& predictor,
                  const nn::SyntheticTask& task,
                  const core::SupernetConfig& supernet,
                  const ProxylessConfig& config);

  core::SearchResult search();

 private:
  const space::SearchSpace* space_;
  const predictors::HardwarePredictor* predictor_;
  const nn::SyntheticTask* task_;
  core::SupernetConfig supernet_config_;
  ProxylessConfig config_;
};

}  // namespace lightnas::baselines
