#include "baselines/random_search.hpp"

#include <cassert>

namespace lightnas::baselines {

RandomSearchResult random_search(const space::SearchSpace& space,
                                 const predictors::CostOracle& cost,
                                 const ScoreFn& score,
                                 const RandomSearchConfig& config,
                                 util::Rng& rng) {
  assert(config.num_samples > 0);
  assert(config.target > 0.0);

  RandomSearchResult result;
  for (std::size_t i = 0; i < config.num_samples; ++i) {
    const space::Architecture arch = space.random_architecture(rng);
    const double predicted = cost.predict(arch);
    if (predicted > config.target ||
        predicted < config.target - config.slack) {
      continue;
    }
    ++result.num_feasible;
    const double s = score(arch);
    ++result.num_evaluated;
    if (!result.best || s > result.best_score) {
      result.best = arch;
      result.best_score = s;
    }
  }
  return result;
}

}  // namespace lightnas::baselines
