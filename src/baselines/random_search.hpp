#pragma once

#include <cstddef>
#include <functional>
#include <optional>

#include "predictors/predictor.hpp"
#include "space/architecture.hpp"
#include "space/search_space.hpp"
#include "util/rng.hpp"

namespace lightnas::baselines {

/// Scoring callback: higher is better (e.g. the surrogate top-1, or a
/// quickly-trained validation accuracy).
using ScoreFn = std::function<double(const space::Architecture&)>;

struct RandomSearchConfig {
  std::size_t num_samples = 2000;
  /// Constraint: keep candidates with predicted cost <= target (and
  /// >= target - slack, so the budget is actually used).
  double target = 24.0;
  double slack = 2.0;
};

struct RandomSearchResult {
  std::optional<space::Architecture> best;
  double best_score = 0.0;
  std::size_t num_feasible = 0;
  std::size_t num_evaluated = 0;
};

/// Constraint-filtered random search: the simplest baseline that can hit
/// a latency target through a one-time (but sample-hungry) procedure.
RandomSearchResult random_search(const space::SearchSpace& space,
                                 const predictors::CostOracle& cost,
                                 const ScoreFn& score,
                                 const RandomSearchConfig& config,
                                 util::Rng& rng);

}  // namespace lightnas::baselines
