#include "baselines/rl_search.hpp"

#include <cassert>
#include <cmath>
#include <vector>

#include "util/rng.hpp"

namespace lightnas::baselines {

RlSearchResult rl_search(const space::SearchSpace& space,
                         const predictors::CostOracle& cost,
                         const ScoreFn& score,
                         const RlSearchConfig& config) {
  assert(config.iterations > 0 && config.batch > 0);
  util::Rng rng(config.seed * 0xbb67ae8584caa73bULL + 11);

  const std::size_t num_layers = space.num_layers();
  const std::size_t num_ops = space.num_ops();

  // Factorized policy: independent per-layer logits.
  std::vector<std::vector<double>> logits(
      num_layers, std::vector<double>(num_ops, 0.0));

  auto sample_arch = [&](std::vector<std::vector<double>>& probs_out) {
    std::vector<std::size_t> ops(num_layers, 0);
    probs_out.assign(num_layers, {});
    for (std::size_t l = 0; l < num_layers; ++l) {
      if (!space.layers()[l].searchable) continue;
      std::vector<double> probs(num_ops);
      double mx = logits[l][0];
      for (double v : logits[l]) mx = std::max(mx, v);
      double total = 0.0;
      for (std::size_t k = 0; k < num_ops; ++k) {
        probs[k] = std::exp(logits[l][k] - mx);
        total += probs[k];
      }
      for (double& p : probs) p /= total;
      ops[l] = rng.categorical(probs);
      probs_out[l] = std::move(probs);
    }
    return space::Architecture(std::move(ops));
  };

  auto reward_of = [&](const space::Architecture& arch, double s) {
    const double lat = cost.predict(arch);
    // MnasNet hard-constraint reward: full score when under target,
    // sharply discounted when over.
    if (lat <= config.target) return s;
    return s * std::pow(lat / config.target, config.latency_exponent);
  };

  RlSearchResult result;
  double baseline = 0.0;
  bool baseline_initialized = false;

  for (std::size_t iter = 0; iter < config.iterations; ++iter) {
    double reward_sum = 0.0;
    for (std::size_t b = 0; b < config.batch; ++b) {
      std::vector<std::vector<double>> probs;
      const space::Architecture arch = sample_arch(probs);
      const double s = score(arch);
      ++result.num_evaluated;
      const double reward = reward_of(arch, s);
      reward_sum += reward;

      if (!result.best_score || reward > result.best_score) {
        const double lat = cost.predict(arch);
        if (lat <= config.target) {
          result.best = arch;
          result.best_score = reward;
        }
      }

      if (!baseline_initialized) {
        baseline = reward;
        baseline_initialized = true;
      }
      const double advantage = reward - baseline;

      // REINFORCE: d log pi / d logit[l][k] = 1{k == a_l} - probs[l][k].
      for (std::size_t l = 0; l < num_layers; ++l) {
        if (!space.layers()[l].searchable) continue;
        for (std::size_t k = 0; k < num_ops; ++k) {
          const double indicator = (arch.op_at(l) == k) ? 1.0 : 0.0;
          logits[l][k] += config.policy_lr * advantage *
                          (indicator - probs[l][k]);
        }
      }
      baseline = config.baseline_momentum * baseline +
                 (1.0 - config.baseline_momentum) * reward;
    }
    result.mean_reward_per_iteration.push_back(
        reward_sum / static_cast<double>(config.batch));
  }

  // If no feasible architecture was ever sampled, fall back to the
  // policy's greedy arch (callers should check predicted cost).
  if (result.best.num_layers() == 0) {
    std::vector<std::size_t> ops(num_layers, 0);
    for (std::size_t l = 0; l < num_layers; ++l) {
      if (!space.layers()[l].searchable) continue;
      std::size_t best_k = 0;
      for (std::size_t k = 1; k < num_ops; ++k) {
        if (logits[l][k] > logits[l][best_k]) best_k = k;
      }
      ops[l] = best_k;
    }
    result.best = space::Architecture(std::move(ops));
    result.best_score = score(result.best);
  }
  return result;
}

}  // namespace lightnas::baselines
