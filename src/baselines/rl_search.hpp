#pragma once

#include <cstdint>
#include <vector>

#include "baselines/random_search.hpp"
#include "predictors/predictor.hpp"
#include "space/architecture.hpp"
#include "space/search_space.hpp"

namespace lightnas::baselines {

struct RlSearchConfig {
  std::size_t iterations = 150;
  std::size_t batch = 8;  ///< architectures sampled per policy update
  double policy_lr = 0.15;
  double baseline_momentum = 0.9;
  double target = 24.0;
  /// MnasNet reward exponent w in acc * (lat/T)^w for lat > T; the hard
  /// constraint variant the paper's Table 1 row refers to.
  double latency_exponent = -2.0;
  std::uint64_t seed = 0;
};

struct RlSearchResult {
  space::Architecture best;
  double best_score = 0.0;
  std::vector<double> mean_reward_per_iteration;
  std::size_t num_evaluated = 0;
};

/// MnasNet-style reinforcement-learning search (reference [14]): a
/// factorized per-layer categorical policy trained with REINFORCE and a
/// moving-average baseline on the reward acc * (LAT/T)^w. Demonstrates
/// the "can hit a specified latency, but at prohibitive sample cost"
/// trade-off of Table 1: every sampled architecture costs one full
/// evaluation.
RlSearchResult rl_search(const space::SearchSpace& space,
                         const predictors::CostOracle& cost,
                         const ScoreFn& score, const RlSearchConfig& config);

}  // namespace lightnas::baselines
