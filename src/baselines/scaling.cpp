#include "baselines/scaling.hpp"

#include <sstream>

#include "space/flops.hpp"

namespace lightnas::baselines {

std::string ScaledModel::label() const {
  std::ostringstream oss;
  oss << "MBV2-w" << width_mult << "-r" << resolution;
  return oss.str();
}

namespace {

ScaledModel make_scaled(double width, std::size_t resolution,
                        const hw::CostModel& device) {
  ScaledModel model;
  model.width_mult = width;
  model.resolution = resolution;
  model.space = space::SearchSpace::scaled(width, resolution);
  model.arch = model.space.mobilenet_v2_like();
  model.latency_ms = device.network_latency_ms(model.space, model.arch);
  model.macs = space::count_macs(model.space, model.arch);
  return model;
}

}  // namespace

std::vector<ScaledModel> width_scaled_mobilenets(
    const std::vector<double>& width_mults, const hw::CostModel& device) {
  std::vector<ScaledModel> models;
  models.reserve(width_mults.size());
  for (double w : width_mults) {
    models.push_back(make_scaled(w, 224, device));
  }
  return models;
}

std::vector<ScaledModel> resolution_scaled_mobilenets(
    const std::vector<std::size_t>& resolutions,
    const hw::CostModel& device) {
  std::vector<ScaledModel> models;
  models.reserve(resolutions.size());
  for (std::size_t r : resolutions) {
    models.push_back(make_scaled(1.0, r, device));
  }
  return models;
}

}  // namespace lightnas::baselines
