#pragma once

#include <string>
#include <vector>

#include "hw/cost_model.hpp"
#include "space/architecture.hpp"
#include "space/search_space.hpp"

namespace lightnas::baselines {

/// One point of the model-scaling baseline (Fig 9): a MobileNetV2-like
/// stack (uniform K3_E6) at a given width multiplier and input
/// resolution, with its simulated latency.
struct ScaledModel {
  double width_mult = 1.0;
  std::size_t resolution = 224;
  space::SearchSpace space =
      space::SearchSpace::fbnet_xavier();  // scaled macro-architecture
  space::Architecture arch;
  double latency_ms = 0.0;
  double macs = 0.0;

  std::string label() const;
};

/// Enumerate width-scaled variants (fixed 224 resolution).
std::vector<ScaledModel> width_scaled_mobilenets(
    const std::vector<double>& width_mults, const hw::CostModel& device);

/// Enumerate resolution-scaled variants (fixed 1.0 width).
std::vector<ScaledModel> resolution_scaled_mobilenets(
    const std::vector<std::size_t>& resolutions, const hw::CostModel& device);

}  // namespace lightnas::baselines
