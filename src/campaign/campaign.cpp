#include "campaign/campaign.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <optional>
#include <stdexcept>

#include "core/gumbel.hpp"
#include "core/search_step.hpp"
#include "nn/ops.hpp"
#include "nn/parallel.hpp"
#include "nn/pool.hpp"
#include "util/log.hpp"

namespace lightnas::campaign {

namespace {

[[noreturn]] void config_error(const std::string& message) {
  throw std::invalid_argument("CampaignConfig: " + message);
}

bool tensor_finite(const nn::Tensor& t) {
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (!std::isfinite(t[i])) return false;
  }
  return true;
}

/// One target's live state inside a running campaign. Heap-allocated:
/// the Batcher holds a reference to this job's valid_rng, so addresses
/// must be stable.
struct Job {
  Job(std::size_t id_, double target_, const core::SearchTopology& topology,
      const std::vector<core::Constraint>& constraints,
      const core::LightNasConfig& search, const nn::Dataset& valid_data,
      util::Rng path_rng_, util::Rng valid_rng_)
      : id(id_),
        target(target_),
        head(topology, constraints, search),
        path_rng(path_rng_),
        valid_rng(valid_rng_),
        valid_batches(valid_data, search.batch_size, valid_rng) {}

  std::size_t id;
  double target;
  JobState state = JobState::kPending;
  core::AlphaLambdaHead head;
  util::Rng path_rng;
  util::Rng valid_rng;
  nn::Batcher valid_batches;

  // Watchdog / cooldown state (per job: one target may diverge while
  // the rest of the campaign stays healthy).
  double cooldown_scale = 1.0;
  double tau_floor = 0.0;
  std::size_t rollbacks = 0;
  std::vector<core::WatchdogEvent> events;
  /// Head state at the end of the last healthy epoch — the rollback
  /// point. Campaign rollbacks are HEAD-ONLY: the shared weights have
  /// moved on (other jobs trained them), so only this job's (alpha,
  /// Adam, lambda) rewinds; the epoch is not re-run.
  std::optional<core::AlphaLambdaHead::State> last_good;
  double best_accuracy = 0.0;

  // Convergence bookkeeping.
  std::size_t tolerance_streak = 0;
  std::size_t converged_epoch = 0;
  std::size_t alpha_updates = 0;
  std::vector<core::SearchEpochStats> trace;

  // Epoch-scratch: sampled-cost telemetry accumulated by alpha steps.
  double sampled_cost_sum = 0.0;
  std::size_t sampled_cost_count = 0;

  bool steps(bool preempt_converged) const {
    if (state == JobState::kPending || state == JobState::kRunning) {
      return true;
    }
    return state == JobState::kConverged && !preempt_converged;
  }
};

}  // namespace

const char* to_string(JobState state) {
  switch (state) {
    case JobState::kPending:
      return "pending";
    case JobState::kRunning:
      return "running";
    case JobState::kConverged:
      return "converged";
    case JobState::kDiverged:
      return "diverged";
    case JobState::kPreempted:
      return "preempted";
  }
  return "unknown";
}

void CampaignConfig::validate() const {
  search.validate();
  if (targets.empty()) config_error("need at least one target");
  for (std::size_t i = 0; i < targets.size(); ++i) {
    if (!(targets[i] > 0.0) || !std::isfinite(targets[i])) {
      config_error("target " + std::to_string(i) + " (" +
                   std::to_string(targets[i]) +
                   ") must be a positive finite number");
    }
  }
  if (!(tolerance > 0.0) || !std::isfinite(tolerance)) {
    config_error("tolerance must be a positive finite number");
  }
  if (convergence_patience == 0) {
    config_error("convergence_patience must be > 0");
  }
}

std::size_t CampaignResult::count(JobState state) const {
  std::size_t n = 0;
  for (const JobResult& job : jobs) {
    if (job.state == state) ++n;
  }
  return n;
}

CampaignOrchestrator::CampaignOrchestrator(
    const space::SearchSpace& space,
    const predictors::HardwarePredictor& predictor,
    const nn::SyntheticTask& task, const core::SupernetConfig& supernet,
    const CampaignConfig& config)
    : space_(&space),
      predictor_(&predictor),
      task_(&task),
      supernet_config_(supernet),
      config_(config) {
  config_.validate();
  job_constraints_.reserve(config_.targets.size());
  for (double target : config_.targets) {
    job_constraints_.push_back({core::Constraint{predictor_, target}});
  }
}

CampaignResult CampaignOrchestrator::run() { return run(CampaignHooks{}); }

CampaignResult CampaignOrchestrator::run(const CampaignHooks& hooks) {
  const core::LightNasConfig& search = config_.search;
  // Same execution scopes as the single-target engine: every tensor
  // kernel dispatches through the parallel context, buffers recycle
  // through the pool. Neither changes any value.
  const nn::ParallelScope parallel_scope(search.parallel);
  nn::PooledScope pool_scope(search.pool_tensors ? nn::PoolMode::kInherit
                                                 : nn::PoolMode::kDisabled);

  const core::SearchTopology topology(*space_);
  // Distinct stream constant from the single-target engine (…+ 17): a
  // campaign with K=1 is intentionally not RNG-aliased to a solo search.
  util::Rng rng(search.seed * 0x9e3779b9ULL + 29);
  core::SharedWTrainer trainer(topology, *task_, supernet_config_, search,
                               search.epochs * search.w_steps_per_epoch);
  const core::TemperatureSchedule tau_schedule(
      search.tau_initial, search.tau_final, search.epochs);

  util::Rng data_rng = rng.fork();
  nn::Batcher train_batches(task_->train, search.batch_size, data_rng);

  // Per-job heads, RNG streams, and validation batchers. Fork order is
  // part of the campaign's deterministic fingerprint: shared data stream
  // first, then (path, valid) per job in target order.
  std::vector<std::unique_ptr<Job>> jobs;
  jobs.reserve(num_jobs());
  for (std::size_t j = 0; j < num_jobs(); ++j) {
    util::Rng path_rng = rng.fork();
    util::Rng valid_rng = rng.fork();
    jobs.push_back(std::make_unique<Job>(
        j, config_.targets[j], topology, job_constraints_[j], search,
        task_->valid, path_rng, valid_rng));
  }

  CampaignResult result;

  auto capture = [&](std::size_t next_epoch) {
    CampaignCheckpoint ck;
    ck.seed = search.seed;
    ck.total_epochs = search.epochs;
    ck.targets = config_.targets;
    ck.next_epoch = next_epoch;
    core::SharedWTrainer::State w_state = trainer.export_state();
    ck.supernet_weights = std::move(w_state.weights);
    ck.w_velocity = std::move(w_state.velocity);
    ck.w_step_counter = w_state.step_counter;
    ck.weight_updates = result.weight_updates;
    ck.rng = rng.state();
    ck.data_rng = data_rng.state();
    ck.train_batcher = train_batches.export_state();
    ck.jobs.reserve(jobs.size());
    for (const std::unique_ptr<Job>& job : jobs) {
      JobCheckpoint jck;
      jck.state = job->state;
      core::AlphaLambdaHead::State head = job->head.export_state();
      jck.alpha = std::move(head.alpha);
      jck.adam_m = std::move(head.adam_m);
      jck.adam_v = std::move(head.adam_v);
      jck.adam_t = head.adam_t;
      jck.lambdas = std::move(head.lambdas);
      jck.path_rng = job->path_rng.state();
      jck.valid_rng = job->valid_rng.state();
      jck.valid_batcher = job->valid_batches.export_state();
      jck.cooldown_scale = job->cooldown_scale;
      jck.tau_floor = job->tau_floor;
      jck.rollbacks = job->rollbacks;
      jck.events = job->events;
      jck.tolerance_streak = job->tolerance_streak;
      jck.converged_epoch = job->converged_epoch;
      jck.alpha_updates = job->alpha_updates;
      jck.trace = job->trace;
      ck.jobs.push_back(std::move(jck));
    }
    return ck;
  };

  auto restore = [&](const CampaignCheckpoint& ck) {
    if (ck.seed != search.seed || ck.total_epochs != search.epochs) {
      throw std::invalid_argument(
          "CampaignCheckpoint: run fingerprint (seed/epochs) does not "
          "match this campaign's configuration");
    }
    if (ck.targets != config_.targets) {
      throw std::invalid_argument(
          "CampaignCheckpoint: target list does not match this campaign's "
          "configuration");
    }
    if (ck.jobs.size() != jobs.size()) {
      throw std::invalid_argument("CampaignCheckpoint: job count mismatch");
    }
    trainer.restore_state(
        {ck.supernet_weights, ck.w_velocity, ck.w_step_counter});
    result.weight_updates = ck.weight_updates;
    rng.set_state(ck.rng);
    data_rng.set_state(ck.data_rng);
    train_batches.restore_state(ck.train_batcher);
    for (std::size_t j = 0; j < jobs.size(); ++j) {
      Job& job = *jobs[j];
      const JobCheckpoint& jck = ck.jobs[j];
      job.state = jck.state;
      job.head.restore_state(
          {jck.alpha, jck.adam_m, jck.adam_v, jck.adam_t, jck.lambdas});
      job.cooldown_scale = jck.cooldown_scale;
      job.tau_floor = jck.tau_floor;
      job.head.set_cooldown_scale(job.cooldown_scale);
      job.path_rng.set_state(jck.path_rng);
      job.valid_rng.set_state(jck.valid_rng);
      job.valid_batches.restore_state(jck.valid_batcher);
      job.rollbacks = jck.rollbacks;
      job.events = jck.events;
      job.tolerance_streak = jck.tolerance_streak;
      job.converged_epoch = jck.converged_epoch;
      job.alpha_updates = jck.alpha_updates;
      job.trace = jck.trace;
      // Snapshots are taken at epoch boundaries, where the in-memory
      // rollback point coincides with the live head — reconstruct it.
      job.last_good = job.head.export_state();
      job.best_accuracy = 0.0;
      for (const core::SearchEpochStats& stats : job.trace) {
        job.best_accuracy = std::max(job.best_accuracy,
                                     stats.valid_accuracy);
      }
    }
  };

  std::size_t start_epoch = 0;
  if (hooks.resume != nullptr) {
    restore(*hooks.resume);
    start_epoch = hooks.resume->next_epoch;
    result.resumed = true;
    result.resumed_from_epoch = start_epoch;
  }

  const core::WatchdogConfig& watchdog = search.watchdog;

  for (std::size_t epoch = start_epoch; epoch < search.epochs; ++epoch) {
    // The schedule: every job still stepping this epoch, in id order.
    std::vector<Job*> active;
    for (const std::unique_ptr<Job>& job : jobs) {
      if (job->steps(config_.preempt_converged)) active.push_back(job.get());
    }
    if (active.empty()) break;
    for (Job* job : active) {
      if (job->state == JobState::kPending) job->state = JobState::kRunning;
      job->sampled_cost_sum = 0.0;
      job->sampled_cost_count = 0;
    }

    // ---- shared-w phase: ONE weight update per step ---------------------
    // The path is sampled from the active jobs round-robin, so the
    // shared weights stay trained in every target's preferred region of
    // the space, at the cost of a single search's w budget.
    for (std::size_t step = 0; step < search.w_steps_per_epoch; ++step) {
      const nn::Dataset batch = train_batches.next();
      Job& driver = *active[step % active.size()];
      const double tau =
          std::max(tau_schedule.at(epoch), driver.tau_floor);
      const core::PathSample sample =
          driver.head.sample(tau, driver.path_rng);
      trainer.step(batch, sample.op_choice);
      ++result.weight_updates;
    }

    // ---- per-target alpha/lambda phase ---------------------------------
    // Heads are independent, but every alpha backward traverses the
    // shared supernet's gradient buffers, so jobs step serially in id
    // order (the GEMMs inside each step still use the parallel context).
    if (epoch >= search.warmup_epochs) {
      for (Job* job_ptr : active) {
        Job& job = *job_ptr;
        const double tau = std::max(tau_schedule.at(epoch), job.tau_floor);
        for (std::size_t step = 0; step < search.alpha_steps_per_epoch;
             ++step) {
          const nn::Dataset batch = job.valid_batches.next();
          job.sampled_cost_sum += job.head.alpha_step(
              trainer.supernet(), trainer.weight_parameters(), batch, tau,
              job.path_rng);
          ++job.sampled_cost_count;
          ++job.alpha_updates;
        }
      }
    }

    // ---- epoch-end evaluation, multiplexed across jobs ------------------
    // Read-only over the shared weights and each job's own head, one
    // output slot per job — deterministic for any thread count, and the
    // only campaign phase where job-level parallelism is free.
    std::vector<core::SearchEpochStats> epoch_stats(active.size());
    nn::ParallelContext::current().for_rows(
        active.size(), [&](std::size_t begin, std::size_t end) {
          for (std::size_t i = begin; i < end; ++i) {
            Job& job = *active[i];
            core::SearchEpochStats stats;
            stats.epoch = epoch;
            stats.tau = std::max(tau_schedule.at(epoch), job.tau_floor);
            stats.derived = job.head.derive();
            stats.lambdas = job.head.lambda_values();
            stats.predicted_costs = {predictor_->predict(stats.derived)};
            stats.lambda = stats.lambdas.front();
            stats.predicted_cost = stats.predicted_costs.front();
            stats.sampled_cost_mean =
                job.sampled_cost_count > 0
                    ? job.sampled_cost_sum /
                          static_cast<double>(job.sampled_cost_count)
                    : stats.predicted_cost;
            const nn::VarPtr logits =
                trainer.supernet().forward_single_path(
                    task_->valid.features, stats.derived.ops());
            const nn::VarPtr loss = nn::ops::softmax_cross_entropy(
                logits, task_->valid.labels);
            stats.valid_loss = static_cast<double>(loss->value.item());
            stats.valid_accuracy =
                nn::ops::accuracy(logits->value, task_->valid.labels);
            epoch_stats[i] = std::move(stats);
          }
        });

    // ---- per-job watchdog + lifecycle (serial, id order) ----------------
    for (std::size_t i = 0; i < active.size(); ++i) {
      Job& job = *active[i];
      core::SearchEpochStats& stats = epoch_stats[i];

      std::string unhealthy;
      if (watchdog.enabled) {
        if (!std::isfinite(stats.valid_loss)) {
          unhealthy = "non-finite validation loss";
        } else if (!tensor_finite(job.head.alpha()->value)) {
          unhealthy = "non-finite alpha";
        } else if (!std::isfinite(stats.lambda) ||
                   std::abs(stats.lambda) > watchdog.lambda_limit) {
          unhealthy =
              "runaway lambda (value " + std::to_string(stats.lambda) + ")";
        } else if (!std::isfinite(stats.predicted_cost)) {
          unhealthy = "non-finite predicted cost";
        } else if (job.best_accuracy >= watchdog.min_reference_accuracy &&
                   stats.valid_accuracy <
                       watchdog.accuracy_collapse_frac *
                           job.best_accuracy) {
          unhealthy = "accuracy collapse (" +
                      std::to_string(stats.valid_accuracy) + " vs best " +
                      std::to_string(job.best_accuracy) + ")";
        }
      }

      if (!unhealthy.empty()) {
        core::WatchdogEvent event;
        event.epoch = epoch;
        event.reason = unhealthy;
        event.rolled_back =
            job.rollbacks < watchdog.max_rollbacks && job.last_good;
        if (search.log_progress) {
          util::log_info() << "campaign job " << job.id << " (target "
                           << job.target << "): watchdog: " << unhealthy
                           << " at epoch " << epoch
                           << (event.rolled_back ? " -> head rollback"
                                                 : " -> job diverged");
        }
        if (job.last_good) job.head.restore_state(*job.last_good);
        if (event.rolled_back) {
          // Head-only rollback: this job's (alpha, Adam, lambda) rewind
          // to the last healthy epoch and retry against the LIVE shared
          // weights (which other jobs have moved on); the unhealthy
          // epoch's stats are discarded from this job's trace.
          ++job.rollbacks;
          job.cooldown_scale *= watchdog.cooldown_factor;
          job.head.set_cooldown_scale(job.cooldown_scale);
          job.tau_floor =
              std::max(job.tau_floor, tau_schedule.at(epoch));
          job.tolerance_streak = 0;
          job.events.push_back(std::move(event));
        } else {
          job.events.push_back(std::move(event));
          job.state = JobState::kDiverged;
        }
        continue;
      }

      // Healthy epoch: record, decay the tau floor, track convergence.
      job.trace.push_back(std::move(stats));
      const core::SearchEpochStats& recorded = job.trace.back();
      job.best_accuracy =
          std::max(job.best_accuracy, recorded.valid_accuracy);
      job.tau_floor *= 0.8;
      if (job.tau_floor < search.tau_final) job.tau_floor = 0.0;
      if (epoch >= search.warmup_epochs) {
        const double gap =
            std::abs(recorded.predicted_cost - job.target) / job.target;
        if (gap <= config_.tolerance) {
          ++job.tolerance_streak;
        } else {
          job.tolerance_streak = 0;
        }
        if (job.state == JobState::kRunning &&
            job.tolerance_streak >= config_.convergence_patience) {
          job.state = JobState::kConverged;
          job.converged_epoch = epoch;
          if (search.log_progress) {
            util::log_info()
                << "campaign job " << job.id << " (target " << job.target
                << ") converged at epoch " << epoch << " (cost "
                << recorded.predicted_cost << ")";
          }
        }
      }
      job.last_good = job.head.export_state();
    }

    // Absolute epoch count (solo-search semantics): a resumed campaign
    // reports the same completed_epochs as the uninterrupted run.
    result.completed_epochs = epoch + 1;
    if (search.log_progress) {
      util::log_info() << "campaign epoch " << epoch << ": " << active.size()
                       << " active job(s), " << result.weight_updates
                       << " weight updates";
    }

    const std::size_t boundary = epoch + 1;
    if (hooks.on_checkpoint &&
        (boundary % std::max<std::size_t>(1, hooks.checkpoint_every) == 0 ||
         boundary == search.epochs)) {
      hooks.on_checkpoint(capture(boundary));
    }
    if (hooks.should_stop && boundary < search.epochs &&
        hooks.should_stop(result.completed_epochs)) {
      result.interrupted = true;
      break;
    }
  }

  // ---- finalization: per-job report + Pareto front ----------------------
  util::ParetoFront front;
  for (const std::unique_ptr<Job>& job_ptr : jobs) {
    Job& job = *job_ptr;
    JobResult report;
    report.job_id = job.id;
    report.target = job.target;
    report.alpha_updates = job.alpha_updates;
    report.rollbacks = job.rollbacks;
    report.events = job.events;
    report.trace = job.trace;
    report.converged_epoch = job.converged_epoch;
    result.alpha_updates += job.alpha_updates;

    if (job.trace.empty()) {
      // Never completed a healthy epoch (interrupted before the first
      // boundary, or diverged immediately): report the live head.
      report.state = JobState::kPreempted;
      report.architecture = job.head.derive();
      report.predicted_cost = predictor_->predict(report.architecture);
      report.gap =
          std::abs(report.predicted_cost - job.target) / job.target;
      report.within_tolerance = report.gap <= config_.tolerance;
      result.jobs.push_back(std::move(report));
      continue;
    }

    // Same guard as the single-target engine: pick the derived snapshot
    // from the last quarter of this job's trace whose predicted cost is
    // closest to the target, instead of trusting the very last epoch.
    const std::size_t window_start =
        job.trace.size() -
        std::max<std::size_t>(1, job.trace.size() / 4);
    std::size_t best_idx = job.trace.size() - 1;
    double best_gap =
        std::abs(job.trace[best_idx].predicted_cost - job.target) /
        job.target;
    for (std::size_t i = window_start; i < job.trace.size(); ++i) {
      const double gap =
          std::abs(job.trace[i].predicted_cost - job.target) / job.target;
      if (gap < best_gap) {
        best_gap = gap;
        best_idx = i;
      }
    }
    const core::SearchEpochStats& chosen = job.trace[best_idx];
    report.architecture = chosen.derived;
    report.predicted_cost = chosen.predicted_cost;
    report.valid_accuracy = chosen.valid_accuracy;
    report.final_lambda = chosen.lambda;
    report.gap = best_gap;
    report.within_tolerance = best_gap <= config_.tolerance;

    // Final state: converged/diverged stick; a job still running at the
    // end of the budget either landed in tolerance (converged, just
    // without the patience streak) or was preempted by budget
    // exhaustion.
    if (job.state == JobState::kConverged ||
        job.state == JobState::kDiverged) {
      report.state = job.state;
    } else if (report.within_tolerance) {
      report.state = JobState::kConverged;
      report.converged_epoch = chosen.epoch;
    } else {
      report.state = JobState::kPreempted;
    }

    front.insert({report.predicted_cost, report.valid_accuracy,
                  std::to_string(job.id)});
    result.jobs.push_back(std::move(report));
  }

  result.front = front.points();
  for (const util::ParetoPoint& point : result.front) {
    result.jobs[std::stoul(point.tag)].on_front = true;
  }
  return result;
}

}  // namespace lightnas::campaign
