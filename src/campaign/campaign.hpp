#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/lightnas.hpp"
#include "core/supernet.hpp"
#include "nn/data.hpp"
#include "predictors/predictor.hpp"
#include "space/architecture.hpp"
#include "space/search_space.hpp"
#include "util/pareto.hpp"
#include "util/rng.hpp"

namespace lightnas::campaign {

/// Multi-target search campaign: amortize "you only search once" across
/// K constraint targets.
///
/// The paper's engine (core::LightNas) finds one architecture for one
/// target T at the cost of a full supernet training run. A deployment
/// fleet needs architectures for many targets, and running K independent
/// searches repeats the expensive part — supernet weight training — K
/// times, even though w is target-agnostic (the target only enters
/// through the lambda penalty on alpha). The orchestrator exploits that
/// separation: ONE shared supernet/weight-trainer serves K per-target
/// (alpha, lambda) heads. Each w-step trains the shared weights on a
/// path sampled from one head (round-robin over the active jobs, so
/// every target's preferred region of the space stays trained); each
/// alpha-step touches only that job's head. Total cost is
/// ~1x weight training + K x head training instead of K x both.

/// Lifecycle of one target's job inside a campaign.
enum class JobState {
  /// Created, not yet stepped (campaign not started or resumed early).
  kPending,
  /// Actively stepping its head each epoch.
  kRunning,
  /// Reached its target within tolerance for `convergence_patience`
  /// consecutive epochs (or ended within tolerance); stops consuming
  /// alpha steps when `preempt_converged` is set.
  kConverged,
  /// The per-job watchdog exhausted its rollback budget; the job is
  /// frozen at its last healthy head state.
  kDiverged,
  /// Removed from the schedule before converging: either the campaign
  /// was interrupted / ran out of epochs, or a converged job was
  /// preempted mid-streak. Its best-from-trace result is still reported.
  kPreempted,
};

const char* to_string(JobState state);

struct CampaignConfig {
  /// One job per entry, in the cost unit of the predictor (ms / mJ).
  std::vector<double> targets;

  /// Shared search hyper-parameters (epochs, step counts, learning
  /// rates, watchdog, parallel context...). `search.target` is ignored —
  /// `targets` drives the jobs.
  core::LightNasConfig search;

  /// Relative tolerance of the per-target report: a job lands when
  /// |COST - T| / T <= tolerance. The repo's integration envelope for a
  /// single search is ~8-15%, so 10% is the production default.
  double tolerance = 0.10;

  /// Consecutive within-tolerance epochs (after warmup) before a job is
  /// declared converged.
  std::size_t convergence_patience = 3;

  /// Stop stepping converged jobs (their heads freeze; the shared
  /// weights keep training for the rest). The main cost lever: late in
  /// a campaign most jobs are done and their alpha steps are pure waste.
  bool preempt_converged = true;

  /// Throws std::invalid_argument on out-of-range fields.
  void validate() const;
};

/// Final report for one target.
struct JobResult {
  std::size_t job_id = 0;
  double target = 0.0;
  JobState state = JobState::kPending;
  space::Architecture architecture;
  /// Predicted cost of `architecture` and the relative gap |COST-T|/T.
  double predicted_cost = 0.0;
  double gap = 0.0;
  bool within_tolerance = false;
  /// Validation accuracy of the trace snapshot `architecture` came from.
  double valid_accuracy = 0.0;
  double final_lambda = 0.0;
  /// True when this job's (cost, accuracy) point survived the dominance
  /// filter.
  bool on_front = false;
  /// Epoch at which the convergence streak completed (meaningful for
  /// kConverged only).
  std::size_t converged_epoch = 0;
  std::size_t alpha_updates = 0;
  std::size_t rollbacks = 0;
  std::vector<core::WatchdogEvent> events;
  std::vector<core::SearchEpochStats> trace;
};

struct CampaignResult {
  std::vector<JobResult> jobs;
  /// Non-dominated (cost, accuracy) subset of the jobs' results,
  /// ascending cost; tags carry the source job's target.
  std::vector<util::ParetoPoint> front;
  /// Shared weight updates across the whole campaign (the amortized
  /// part) and the sum of per-job alpha updates.
  std::size_t weight_updates = 0;
  std::size_t alpha_updates = 0;
  std::size_t completed_epochs = 0;
  bool interrupted = false;
  bool resumed = false;
  std::size_t resumed_from_epoch = 0;

  /// Total optimizer updates — the deterministic cost metric the
  /// campaign_pareto gate compares against K independent searches.
  std::size_t total_updates() const { return weight_updates + alpha_updates; }
  /// Count of jobs in the given state.
  std::size_t count(JobState state) const;
};

/// Serializable snapshot of one job inside a campaign checkpoint.
struct JobCheckpoint {
  JobState state = JobState::kPending;
  // Head state (mirrors core::AlphaLambdaHead::State).
  nn::Tensor alpha;
  std::vector<nn::Tensor> adam_m, adam_v;
  std::size_t adam_t = 0;
  std::vector<double> lambdas;
  // Job-local RNG / data-order state.
  util::RngState path_rng, valid_rng;
  nn::Batcher::State valid_batcher;
  // Watchdog / cooldown state.
  double cooldown_scale = 1.0;
  double tau_floor = 0.0;
  std::size_t rollbacks = 0;
  std::vector<core::WatchdogEvent> events;
  // Convergence bookkeeping.
  std::size_t tolerance_streak = 0;
  std::size_t converged_epoch = 0;
  std::size_t alpha_updates = 0;
  std::vector<core::SearchEpochStats> trace;
};

/// Complete serializable snapshot of a running campaign: restoring it
/// and continuing reproduces the uninterrupted campaign bit-for-bit
/// (same floats, same RNG streams, same batch order, same schedule
/// decisions). Snapshots are taken at epoch boundaries only, which is
/// also each job's watchdog rollback point — so a resumed campaign
/// reconstructs every job's in-memory rollback state exactly.
struct CampaignCheckpoint {
  // --- fingerprint ------------------------------------------------------
  std::uint64_t seed = 0;
  std::size_t total_epochs = 0;
  std::vector<double> targets;

  // --- position ---------------------------------------------------------
  std::size_t next_epoch = 0;

  // --- shared trainer state --------------------------------------------
  std::vector<nn::Tensor> supernet_weights;
  std::vector<nn::Tensor> w_velocity;
  std::size_t w_step_counter = 0;
  std::size_t weight_updates = 0;

  // --- shared RNG / data-order state -----------------------------------
  util::RngState rng, data_rng;
  nn::Batcher::State train_batcher;

  // --- per-job state ----------------------------------------------------
  std::vector<JobCheckpoint> jobs;
};

/// Runtime hooks, mirroring core::SearchHooks: the orchestrator stays
/// free of file I/O; the caller decides where checkpoints go.
struct CampaignHooks {
  std::function<void(const CampaignCheckpoint&)> on_checkpoint;
  std::size_t checkpoint_every = 1;
  /// Polled after each completed epoch; returning true interrupts the
  /// campaign (still-running jobs finalize as kPreempted).
  std::function<bool(std::size_t completed_epochs)> should_stop;
  const CampaignCheckpoint* resume = nullptr;
};

/// The campaign orchestrator. One instance = one campaign over one
/// search space / predictor / task; `run()` may be called repeatedly
/// (each call is an independent, deterministic campaign).
class CampaignOrchestrator {
 public:
  /// All jobs constrain the same predictor (one target each) — the
  /// paper's single-constraint setting, K times.
  CampaignOrchestrator(const space::SearchSpace& space,
                       const predictors::HardwarePredictor& predictor,
                       const nn::SyntheticTask& task,
                       const core::SupernetConfig& supernet,
                       const CampaignConfig& config);

  CampaignResult run();
  CampaignResult run(const CampaignHooks& hooks);

  const CampaignConfig& config() const { return config_; }
  std::size_t num_jobs() const { return config_.targets.size(); }

 private:
  const space::SearchSpace* space_;
  const predictors::HardwarePredictor* predictor_;
  const nn::SyntheticTask* task_;
  core::SupernetConfig supernet_config_;
  CampaignConfig config_;
  /// Per-job single-entry constraint vectors; heads keep references
  /// into these, so the storage is stable for the orchestrator's life.
  std::vector<std::vector<core::Constraint>> job_constraints_;
};

}  // namespace lightnas::campaign
