#include "campaign/serialize.hpp"

#include <stdexcept>
#include <string>

#include "io/serialize.hpp"
#include "util/csv.hpp"

namespace lightnas::campaign {

namespace {

using io::Json;
namespace detail = io::detail;

JobState job_state_from_string(const std::string& name) {
  for (JobState state :
       {JobState::kPending, JobState::kRunning, JobState::kConverged,
        JobState::kDiverged, JobState::kPreempted}) {
    if (name == to_string(state)) return state;
  }
  throw std::runtime_error("unknown job state '" + name + "'");
}

Json trace_to_json(const std::vector<core::SearchEpochStats>& trace) {
  Json arr = Json::array();
  for (const core::SearchEpochStats& stats : trace) {
    arr.push_back(detail::epoch_stats_to_json(stats));
  }
  return arr;
}

std::vector<core::SearchEpochStats> trace_from_json(const Json& json) {
  std::vector<core::SearchEpochStats> trace;
  trace.reserve(json.size());
  for (const Json& row : json.as_array()) {
    trace.push_back(detail::epoch_stats_from_json(row));
  }
  return trace;
}

Json events_to_json(const std::vector<core::WatchdogEvent>& events) {
  Json arr = Json::array();
  for (const core::WatchdogEvent& event : events) {
    Json row = Json::object();
    row.set("epoch", Json(event.epoch));
    row.set("reason", Json(event.reason));
    row.set("rolled_back", Json(event.rolled_back));
    arr.push_back(std::move(row));
  }
  return arr;
}

std::vector<core::WatchdogEvent> events_from_json(const Json& json) {
  std::vector<core::WatchdogEvent> events;
  for (const Json& row : json.as_array()) {
    core::WatchdogEvent event;
    event.epoch = static_cast<std::size_t>(row.at("epoch").as_number());
    event.reason = row.at("reason").as_string();
    event.rolled_back = row.at("rolled_back").as_bool();
    events.push_back(std::move(event));
  }
  return events;
}

Json job_checkpoint_to_json(const JobCheckpoint& job) {
  Json json = Json::object();
  json.set("state", Json(std::string(to_string(job.state))));
  json.set("alpha", detail::tensor_to_json(job.alpha));
  json.set("adam_m", detail::tensor_list_to_json(job.adam_m));
  json.set("adam_v", detail::tensor_list_to_json(job.adam_v));
  json.set("adam_t", Json(job.adam_t));
  json.set("lambdas", Json::from_doubles(job.lambdas));
  json.set("path_rng", detail::rng_state_to_json(job.path_rng));
  json.set("valid_rng", detail::rng_state_to_json(job.valid_rng));
  json.set("valid_batcher",
           detail::batcher_state_to_json(job.valid_batcher));
  json.set("cooldown_scale", Json(job.cooldown_scale));
  json.set("tau_floor", Json(job.tau_floor));
  json.set("rollbacks", Json(job.rollbacks));
  json.set("events", events_to_json(job.events));
  json.set("tolerance_streak", Json(job.tolerance_streak));
  json.set("converged_epoch", Json(job.converged_epoch));
  json.set("alpha_updates", Json(job.alpha_updates));
  json.set("trace", trace_to_json(job.trace));
  return json;
}

JobCheckpoint job_checkpoint_from_json(const Json& json) {
  JobCheckpoint job;
  job.state = job_state_from_string(json.at("state").as_string());
  job.alpha = detail::tensor_from_json(json.at("alpha"));
  job.adam_m = detail::tensor_list_from_json(json.at("adam_m"));
  job.adam_v = detail::tensor_list_from_json(json.at("adam_v"));
  job.adam_t = static_cast<std::size_t>(json.at("adam_t").as_number());
  job.lambdas = json.at("lambdas").to_doubles();
  job.path_rng = detail::rng_state_from_json(json.at("path_rng"));
  job.valid_rng = detail::rng_state_from_json(json.at("valid_rng"));
  job.valid_batcher =
      detail::batcher_state_from_json(json.at("valid_batcher"));
  job.cooldown_scale = json.at("cooldown_scale").number_or_nan();
  job.tau_floor = json.at("tau_floor").number_or_nan();
  job.rollbacks =
      static_cast<std::size_t>(json.at("rollbacks").as_number());
  job.events = events_from_json(json.at("events"));
  job.tolerance_streak =
      static_cast<std::size_t>(json.at("tolerance_streak").as_number());
  job.converged_epoch =
      static_cast<std::size_t>(json.at("converged_epoch").as_number());
  job.alpha_updates =
      static_cast<std::size_t>(json.at("alpha_updates").as_number());
  job.trace = trace_from_json(json.at("trace"));
  return job;
}

}  // namespace

// --- campaign checkpoints ----------------------------------------------

Json campaign_checkpoint_to_json(const CampaignCheckpoint& ck) {
  Json json = Json::object();
  json.set("kind", Json("lightnas.campaign_checkpoint"));
  json.set("version", Json(detail::format_version()));
  json.set("seed", detail::u64_to_json(ck.seed));
  json.set("total_epochs", Json(ck.total_epochs));
  json.set("targets", Json::from_doubles(ck.targets));
  json.set("next_epoch", Json(ck.next_epoch));
  json.set("supernet_weights",
           detail::tensor_list_to_json(ck.supernet_weights));
  json.set("w_velocity", detail::tensor_list_to_json(ck.w_velocity));
  json.set("w_step_counter", Json(ck.w_step_counter));
  json.set("weight_updates", Json(ck.weight_updates));
  json.set("rng", detail::rng_state_to_json(ck.rng));
  json.set("data_rng", detail::rng_state_to_json(ck.data_rng));
  json.set("train_batcher",
           detail::batcher_state_to_json(ck.train_batcher));
  Json jobs = Json::array();
  for (const JobCheckpoint& job : ck.jobs) {
    jobs.push_back(job_checkpoint_to_json(job));
  }
  json.set("jobs", std::move(jobs));
  return json;
}

CampaignCheckpoint campaign_checkpoint_from_json(const Json& json) {
  detail::check_header(json, "lightnas.campaign_checkpoint");
  CampaignCheckpoint ck;
  ck.seed = detail::u64_from_json(json.at("seed"));
  ck.total_epochs =
      static_cast<std::size_t>(json.at("total_epochs").as_number());
  ck.targets = json.at("targets").to_doubles();
  ck.next_epoch =
      static_cast<std::size_t>(json.at("next_epoch").as_number());
  ck.supernet_weights =
      detail::tensor_list_from_json(json.at("supernet_weights"));
  ck.w_velocity = detail::tensor_list_from_json(json.at("w_velocity"));
  ck.w_step_counter =
      static_cast<std::size_t>(json.at("w_step_counter").as_number());
  ck.weight_updates =
      static_cast<std::size_t>(json.at("weight_updates").as_number());
  ck.rng = detail::rng_state_from_json(json.at("rng"));
  ck.data_rng = detail::rng_state_from_json(json.at("data_rng"));
  ck.train_batcher =
      detail::batcher_state_from_json(json.at("train_batcher"));
  for (const Json& job : json.at("jobs").as_array()) {
    ck.jobs.push_back(job_checkpoint_from_json(job));
  }
  return ck;
}

void save_campaign_checkpoint(const std::string& path,
                              const CampaignCheckpoint& checkpoint) {
  io::write_json_file_atomic(path, campaign_checkpoint_to_json(checkpoint));
}

CampaignCheckpoint load_campaign_checkpoint(const std::string& path) {
  return campaign_checkpoint_from_json(io::read_json_file(path));
}

// --- campaign results ---------------------------------------------------

Json campaign_result_to_json(const CampaignResult& result) {
  Json json = Json::object();
  json.set("kind", Json("lightnas.campaign_result"));
  json.set("version", Json(detail::format_version()));
  json.set("weight_updates", Json(result.weight_updates));
  json.set("alpha_updates", Json(result.alpha_updates));
  json.set("total_updates", Json(result.total_updates()));
  json.set("completed_epochs", Json(result.completed_epochs));
  json.set("interrupted", Json(result.interrupted));
  json.set("resumed", Json(result.resumed));
  json.set("resumed_from_epoch", Json(result.resumed_from_epoch));
  Json jobs = Json::array();
  for (const JobResult& job : result.jobs) {
    Json row = Json::object();
    row.set("job_id", Json(job.job_id));
    row.set("target", Json(job.target));
    row.set("state", Json(std::string(to_string(job.state))));
    row.set("architecture", Json(job.architecture.serialize()));
    row.set("predicted_cost", Json(job.predicted_cost));
    row.set("gap", Json(job.gap));
    row.set("within_tolerance", Json(job.within_tolerance));
    row.set("valid_accuracy", Json(job.valid_accuracy));
    row.set("final_lambda", Json(job.final_lambda));
    row.set("on_front", Json(job.on_front));
    row.set("converged_epoch", Json(job.converged_epoch));
    row.set("alpha_updates", Json(job.alpha_updates));
    row.set("rollbacks", Json(job.rollbacks));
    row.set("events", events_to_json(job.events));
    row.set("trace", trace_to_json(job.trace));
    jobs.push_back(std::move(row));
  }
  json.set("jobs", std::move(jobs));
  Json front = Json::array();
  for (const util::ParetoPoint& point : result.front) {
    Json row = Json::object();
    row.set("cost", Json(point.cost));
    row.set("accuracy", Json(point.value));
    row.set("job_id", Json(point.tag));
    front.push_back(std::move(row));
  }
  json.set("front", std::move(front));
  return json;
}

void save_campaign_result(const std::string& path,
                          const CampaignResult& result) {
  io::write_json_file(path, campaign_result_to_json(result));
}

bool write_campaign_csv(const std::string& path,
                        const CampaignResult& result) {
  util::CsvWriter csv({"job_id", "target", "state", "predicted_cost",
                       "valid_accuracy", "gap", "within_tolerance",
                       "on_front", "alpha_updates", "rollbacks",
                       "architecture"});
  for (const JobResult& job : result.jobs) {
    csv.add_row({std::to_string(job.job_id), std::to_string(job.target),
                 to_string(job.state), std::to_string(job.predicted_cost),
                 std::to_string(job.valid_accuracy),
                 std::to_string(job.gap),
                 job.within_tolerance ? "1" : "0",
                 job.on_front ? "1" : "0",
                 std::to_string(job.alpha_updates),
                 std::to_string(job.rollbacks),
                 job.architecture.serialize()});
  }
  return csv.write_file(path);
}

}  // namespace lightnas::campaign
