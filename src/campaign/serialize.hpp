#pragma once

#include <string>

#include "campaign/campaign.hpp"
#include "io/json.hpp"

namespace lightnas::campaign {

/// Persistence for campaign artifacts, built on the same io building
/// blocks (hex u64s, shape-checked tensors, word-exact RNG state) as
/// the single-search checkpoint format.

// --- campaign checkpoints ----------------------------------------------

io::Json campaign_checkpoint_to_json(const CampaignCheckpoint& checkpoint);
CampaignCheckpoint campaign_checkpoint_from_json(const io::Json& json);

/// Atomic write (temp-then-rename): a crash mid-write never corrupts the
/// previous checkpoint at `path`.
void save_campaign_checkpoint(const std::string& path,
                              const CampaignCheckpoint& checkpoint);
CampaignCheckpoint load_campaign_checkpoint(const std::string& path);

// --- campaign results ---------------------------------------------------

io::Json campaign_result_to_json(const CampaignResult& result);
void save_campaign_result(const std::string& path,
                          const CampaignResult& result);

/// Write the per-target report (every job, front membership flagged) as
/// CSV via util::csv; returns false when the file cannot be opened.
bool write_campaign_csv(const std::string& path,
                        const CampaignResult& result);

}  // namespace lightnas::campaign
