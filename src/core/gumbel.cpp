#include "core/gumbel.hpp"

#include <cassert>
#include <cmath>

namespace lightnas::core {

nn::Tensor gumbel_noise(std::size_t rows, std::size_t cols,
                        util::Rng& rng) {
  nn::Tensor noise = nn::Tensor::uninitialized(rows, cols);
  for (auto& v : noise.data()) {
    v = static_cast<float>(rng.gumbel());
  }
  return noise;
}

TemperatureSchedule::TemperatureSchedule(double initial_tau,
                                         double final_tau,
                                         std::size_t total_epochs)
    : initial_(initial_tau), final_(final_tau),
      total_epochs_(total_epochs) {
  assert(initial_tau >= final_tau);
  assert(final_tau > 0.0);
  assert(total_epochs > 0);
}

double TemperatureSchedule::at(std::size_t epoch) const {
  if (epoch >= total_epochs_) return final_;
  const double progress = static_cast<double>(epoch) /
                          static_cast<double>(total_epochs_);
  // Exponential interpolation from initial to final temperature.
  return initial_ * std::pow(final_ / initial_, progress);
}

}  // namespace lightnas::core
