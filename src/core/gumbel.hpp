#pragma once

#include <cstddef>

#include "nn/tensor.hpp"
#include "util/rng.hpp"

namespace lightnas::core {

/// Matrix of i.i.d. Gumbel(0, 1) samples — the G of Eq (7).
nn::Tensor gumbel_noise(std::size_t rows, std::size_t cols, util::Rng& rng);

/// Softmax temperature schedule (Sec 3.3): tau starts at 5 and decays
/// "gradually to zero". We decay exponentially and floor at `final_tau`
/// (> 0) because Eq (7) divides by tau; the floor stands in for the
/// limit, which the Gumbel-Softmax paper proves is unbiased.
class TemperatureSchedule {
 public:
  TemperatureSchedule(double initial_tau, double final_tau,
                      std::size_t total_epochs);

  double at(std::size_t epoch) const;

  double initial_tau() const { return initial_; }
  double final_tau() const { return final_; }

 private:
  double initial_;
  double final_;
  std::size_t total_epochs_;
};

}  // namespace lightnas::core
