#include "core/lightnas.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "nn/ops.hpp"
#include "nn/optim.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"

namespace lightnas::core {

namespace {

/// GDAS-style hard gate: value exactly 1, gradient d(gate)/d(p_soft) = 1,
/// so the path's output gradient is credited to its soft probability.
nn::VarPtr hard_gate(const nn::VarPtr& soft_prob) {
  return nn::ops::add_scalar(
      nn::ops::sub(soft_prob, nn::ops::detach(soft_prob)), 1.0);
}

}  // namespace

LightNas::LightNas(const space::SearchSpace& space,
                   const predictors::HardwarePredictor& predictor,
                   const nn::SyntheticTask& task,
                   const SupernetConfig& supernet,
                   const LightNasConfig& config)
    : LightNas(space, std::vector<Constraint>{{&predictor, config.target}},
               task, supernet, config) {}

LightNas::LightNas(const space::SearchSpace& space,
                   std::vector<Constraint> constraints,
                   const nn::SyntheticTask& task,
                   const SupernetConfig& supernet,
                   const LightNasConfig& config)
    : space_(&space),
      constraints_(std::move(constraints)),
      task_(&task),
      supernet_config_(supernet),
      config_(config) {
  assert(!constraints_.empty());
  for (const Constraint& constraint : constraints_) {
    assert(constraint.predictor != nullptr);
    assert(constraint.target > 0.0);
  }
  assert(config.warmup_epochs < config.epochs);
}

SearchResult LightNas::search() {
  const std::size_t num_layers = space_->num_layers();
  const std::size_t num_ops = space_->num_ops();
  const std::size_t num_constraints = constraints_.size();

  // Map searchable layer <-> row in the alpha matrix.
  std::vector<std::size_t> searchable_layers;
  for (std::size_t l = 0; l < num_layers; ++l) {
    if (space_->layers()[l].searchable) searchable_layers.push_back(l);
  }
  const std::size_t num_searchable = searchable_layers.size();

  util::Rng rng(config_.seed * 0x9e3779b9ULL + 17);
  SupernetConfig supernet_config = supernet_config_;
  supernet_config.seed ^= config_.seed;
  SurrogateSupernet supernet(*space_, task_->train.feature_dim(),
                             task_->train.labels.empty()
                                 ? 10
                                 : 1 + *std::max_element(
                                           task_->train.labels.begin(),
                                           task_->train.labels.end()),
                             supernet_config);

  // Architecture parameters: one row per *searchable* layer (Sec 3.1:
  // the first layer is fixed).
  nn::VarPtr alpha =
      nn::make_leaf(nn::Tensor::zeros(num_searchable, num_ops), "alpha");

  nn::Sgd w_optimizer(supernet.weight_parameters(), config_.w_lr,
                      config_.w_momentum, config_.w_weight_decay,
                      /*clip_norm=*/5.0);
  const nn::CosineSchedule w_schedule(config_.w_lr,
                                      config_.epochs *
                                          config_.w_steps_per_epoch);
  nn::Adam alpha_optimizer({alpha}, config_.alpha_lr, 0.9, 0.999, 1e-8,
                           config_.alpha_weight_decay);
  std::vector<nn::LambdaAscent> lambdas(
      num_constraints,
      nn::LambdaAscent(config_.lambda_lr, config_.lambda_init));
  const TemperatureSchedule tau_schedule(config_.tau_initial,
                                         config_.tau_final, config_.epochs);

  util::Rng data_rng = rng.fork();
  nn::Batcher train_batches(task_->train, config_.batch_size, data_rng);
  util::Rng valid_rng = rng.fork();
  nn::Batcher valid_batches(task_->valid, config_.batch_size, valid_rng);

  // Derive the stand-alone architecture: strongest operator per layer
  // (Sec 2.1), fixed layers keep their fixed op.
  auto derive = [&]() {
    std::vector<std::size_t> ops(num_layers, 0);
    for (std::size_t s = 0; s < num_searchable; ++s) {
      ops[searchable_layers[s]] = alpha->value.argmax_row(s);
    }
    return space::Architecture(std::move(ops));
  };

  // Assemble the full L x K encoding Var from the searchable block,
  // splicing in constant one-hot rows for fixed layers (their operator
  // index is 0 by construction of the space).
  auto assemble_encoding = [&](const nn::VarPtr& binarized) {
    std::vector<nn::VarPtr> rows;
    rows.reserve(num_layers);
    std::size_t s = 0;
    for (std::size_t l = 0; l < num_layers; ++l) {
      if (space_->layers()[l].searchable) {
        rows.push_back(nn::ops::slice_rows(binarized, s++, 1));
      } else {
        nn::Tensor one_hot = nn::Tensor::zeros(1, num_ops);
        one_hot.at(0, 0) = 1.0f;
        rows.push_back(nn::make_const(std::move(one_hot)));
      }
    }
    return nn::ops::reshape(nn::ops::vstack(rows), 1,
                            num_layers * num_ops);
  };

  SearchResult result;
  std::size_t w_step_counter = 0;

  for (std::size_t epoch = 0; epoch < config_.epochs; ++epoch) {
    const double tau = tau_schedule.at(epoch);
    double sampled_cost_sum = 0.0;
    std::size_t sampled_cost_count = 0;

    // ---- training phase: update w on sampled single paths -------------
    for (std::size_t step = 0; step < config_.w_steps_per_epoch; ++step) {
      const nn::Dataset batch = train_batches.next();

      // Sample one path through the Gumbel-Softmax of Eq (7) (values
      // only; no gradient needed in the w phase). Note: we apply the
      // noise on the logits alpha as in the cited Gumbel-Softmax paper —
      // softmax((log P + G)/tau) == softmax((alpha + G)/tau) since the
      // per-row log-normalizer cancels inside the softmax.
      const nn::VarPtr p_hat = nn::ops::row_softmax(nn::ops::scale(
          nn::ops::add(alpha, nn::make_const(gumbel_noise(num_searchable,
                                                          num_ops, rng))),
          1.0 / tau));

      std::vector<std::size_t> op_choice(num_layers, 0);
      for (std::size_t s = 0; s < num_searchable; ++s) {
        op_choice[searchable_layers[s]] = p_hat->value.argmax_row(s);
      }

      w_optimizer.zero_grad();
      const nn::VarPtr logits =
          supernet.forward_single_path(batch.features, op_choice);
      const nn::VarPtr loss =
          nn::ops::softmax_cross_entropy(logits, batch.labels);
      nn::backward(loss);
      w_optimizer.set_lr(w_schedule.lr_at(w_step_counter++));
      w_optimizer.step();
      ++result.weight_updates;
    }

    // ---- validation phase: update alpha and lambdas --------------------
    if (epoch >= config_.warmup_epochs) {
      for (std::size_t step = 0; step < config_.alpha_steps_per_epoch;
           ++step) {
        const nn::Dataset batch = valid_batches.next();

        const nn::VarPtr p_hat = nn::ops::row_softmax(nn::ops::scale(
            nn::ops::add(alpha,
                         nn::make_const(gumbel_noise(num_searchable,
                                                     num_ops, rng))),
            1.0 / tau));

        // Sampled path + GDAS gates so d(CE)/d(alpha) exists (Eq 12).
        std::vector<std::size_t> op_choice(num_layers, 0);
        std::vector<nn::VarPtr> gates(num_layers, nullptr);
        for (std::size_t s = 0; s < num_searchable; ++s) {
          const std::size_t j = p_hat->value.argmax_row(s);
          op_choice[searchable_layers[s]] = j;
          gates[searchable_layers[s]] =
              hard_gate(nn::ops::select(p_hat, s, j));
        }

        const nn::VarPtr logits = supernet.forward_single_path(
            batch.features, op_choice, gates);
        nn::VarPtr loss =
            nn::ops::softmax_cross_entropy(logits, batch.labels);

        // Differentiable cost of the binarized architecture (Eq 9 + 12),
        // one penalty term per constraint.
        const nn::VarPtr p_bar = nn::ops::binarize_rows_ste(p_hat);
        const nn::VarPtr encoding = assemble_encoding(p_bar);
        for (std::size_t c = 0; c < num_constraints; ++c) {
          const nn::VarPtr cost =
              constraints_[c].predictor->forward_var(encoding);
          const nn::VarPtr violation = nn::ops::add_scalar(
              nn::ops::scale(cost, 1.0 / constraints_[c].target), -1.0);
          loss = nn::ops::add(
              loss, nn::ops::scale(violation, lambdas[c].value()));
          if (config_.penalty_mu != 0.0) {
            loss = nn::ops::add(
                loss, nn::ops::scale(nn::ops::mul(violation, violation),
                                     config_.penalty_mu));
          }
          if (c == 0) {
            sampled_cost_sum += static_cast<double>(cost->value.item());
            ++sampled_cost_count;
          }
        }

        alpha_optimizer.zero_grad();
        // The supernet weights also receive gradients here; they are
        // cleared without being applied (bi-level: alpha-only update).
        nn::backward(loss);
        alpha_optimizer.step();
        for (const nn::VarPtr& param : supernet.weight_parameters()) {
          param->zero_grad();
        }

        // Gradient ascent on each lambda (Eq 11): dL/dlambda_c =
        // COST_c(alpha)/T_c - 1, where the architecture encoded by alpha
        // is the argmax one of Eq (4) — NOT the Gumbel-sampled path,
        // whose cost is a noisy draw centred on the distribution rather
        // than on the encoding.
        const space::Architecture derived = derive();
        for (std::size_t c = 0; c < num_constraints; ++c) {
          lambdas[c].step(constraints_[c].predictor->predict(derived) /
                              constraints_[c].target -
                          1.0);
        }
        ++result.alpha_updates;
      }
    }

    // ---- telemetry ------------------------------------------------------
    SearchEpochStats stats;
    stats.epoch = epoch;
    stats.tau = tau;
    stats.derived = derive();
    for (std::size_t c = 0; c < num_constraints; ++c) {
      stats.lambdas.push_back(lambdas[c].value());
      stats.predicted_costs.push_back(
          constraints_[c].predictor->predict(stats.derived));
    }
    stats.lambda = stats.lambdas.front();
    stats.predicted_cost = stats.predicted_costs.front();
    stats.sampled_cost_mean =
        sampled_cost_count > 0
            ? sampled_cost_sum / static_cast<double>(sampled_cost_count)
            : stats.predicted_cost;
    {
      const nn::VarPtr logits = supernet.forward_single_path(
          task_->valid.features, stats.derived.ops());
      const nn::VarPtr loss =
          nn::ops::softmax_cross_entropy(logits, task_->valid.labels);
      stats.valid_loss = static_cast<double>(loss->value.item());
      stats.valid_accuracy =
          nn::ops::accuracy(logits->value, task_->valid.labels);
    }
    if (config_.log_progress) {
      util::log_info() << "epoch " << epoch << " tau=" << stats.tau
                       << " lambda=" << stats.lambda << " cost="
                       << stats.predicted_cost << " (target "
                       << constraints_.front().target << ") valid_acc="
                       << stats.valid_accuracy;
    }
    result.trace.push_back(std::move(stats));
  }

  // Worst-case relative constraint gap of an epoch snapshot.
  auto gap_of = [&](const std::vector<double>& costs) {
    double worst = 0.0;
    for (std::size_t c = 0; c < num_constraints; ++c) {
      worst = std::max(worst,
                       std::abs(costs[c] - constraints_[c].target) /
                           constraints_[c].target);
    }
    return worst;
  };

  result.architecture = derive();
  if (config_.select_best_from_trace && !result.trace.empty()) {
    const std::size_t window_start =
        result.trace.size() - std::max<std::size_t>(
                                  1, result.trace.size() / 4);
    std::vector<double> final_costs;
    for (const Constraint& constraint : constraints_) {
      final_costs.push_back(constraint.predictor->predict(
          result.architecture));
    }
    double best_gap = gap_of(final_costs);
    for (std::size_t i = window_start; i < result.trace.size(); ++i) {
      const double gap = gap_of(result.trace[i].predicted_costs);
      if (gap < best_gap) {
        best_gap = gap;
        result.architecture = result.trace[i].derived;
      }
    }
  }
  for (std::size_t c = 0; c < num_constraints; ++c) {
    result.final_costs.push_back(
        constraints_[c].predictor->predict(result.architecture));
    result.final_lambdas.push_back(lambdas[c].value());
  }
  result.final_predicted_cost = result.final_costs.front();
  result.final_lambda = result.final_lambdas.front();
  return result;
}

}  // namespace lightnas::core
