#include "core/lightnas.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>
#include <sstream>
#include <stdexcept>

#include "core/search_step.hpp"
#include "nn/ops.hpp"
#include "nn/optim.hpp"
#include "nn/pool.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"

namespace lightnas::core {

namespace {

[[noreturn]] void config_error(const std::string& message) {
  throw std::invalid_argument("LightNasConfig: " + message);
}

bool tensor_finite(const nn::Tensor& t) {
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (!std::isfinite(t[i])) return false;
  }
  return true;
}

}  // namespace

void LightNasConfig::validate() const {
  if (epochs == 0) config_error("epochs must be > 0");
  if (warmup_epochs >= epochs) {
    config_error("warmup_epochs (" + std::to_string(warmup_epochs) +
                 ") must be < epochs (" + std::to_string(epochs) + ")");
  }
  if (w_steps_per_epoch == 0) config_error("w_steps_per_epoch must be > 0");
  if (alpha_steps_per_epoch == 0) {
    config_error("alpha_steps_per_epoch must be > 0");
  }
  if (batch_size == 0) config_error("batch_size must be > 0");
  if (!(w_lr > 0.0) || !std::isfinite(w_lr)) {
    config_error("w_lr must be a positive finite number");
  }
  if (!(alpha_lr > 0.0) || !std::isfinite(alpha_lr)) {
    config_error("alpha_lr must be a positive finite number");
  }
  if (!(lambda_lr > 0.0) || !std::isfinite(lambda_lr)) {
    config_error("lambda_lr must be a positive finite number");
  }
  if (!std::isfinite(lambda_init)) config_error("lambda_init must be finite");
  if (penalty_mu < 0.0 || !std::isfinite(penalty_mu)) {
    config_error("penalty_mu must be >= 0 and finite");
  }
  if (!(tau_final > 0.0) || !(tau_initial >= tau_final)) {
    config_error("need tau_initial >= tau_final > 0");
  }
  if (watchdog.enabled) {
    if (!(watchdog.lambda_limit > 0.0)) {
      config_error("watchdog.lambda_limit must be > 0");
    }
    if (watchdog.accuracy_collapse_frac < 0.0 ||
        watchdog.accuracy_collapse_frac >= 1.0) {
      config_error("watchdog.accuracy_collapse_frac must be in [0, 1)");
    }
    if (!(watchdog.cooldown_factor > 0.0) ||
        watchdog.cooldown_factor > 1.0) {
      config_error("watchdog.cooldown_factor must be in (0, 1]");
    }
  }
}

std::string RunHealth::summary() const {
  std::ostringstream out;
  out << "epochs=" << completed_epochs << " rollbacks=" << rollbacks;
  if (resumed) out << " resumed_from=" << resumed_from_epoch;
  if (aborted_early) out << " ABORTED_EARLY";
  if (interrupted) out << " interrupted";
  if (measurement_retries > 0 || measurements_rejected > 0) {
    out << " campaign_retries=" << measurement_retries
        << " campaign_rejected=" << measurements_rejected;
  }
  if (pool_buffer_hits + pool_buffer_misses > 0) {
    const double rate =
        static_cast<double>(pool_buffer_hits) /
        static_cast<double>(pool_buffer_hits + pool_buffer_misses);
    out << " pool{hit_rate=" << rate
        << " misses=" << pool_buffer_misses
        << " recycled_mb="
        << static_cast<double>(pool_bytes_recycled) / (1 << 20)
        << " tape_hits=" << pool_tape_hits
        << " tape_misses=" << pool_tape_misses << "}";
  }
  if (plan_hits + plan_misses + plan_compiles > 0) {
    out << " plan{hits=" << plan_hits << " misses=" << plan_misses
        << " compiles=" << plan_compiles << " fused_ops=" << plan_fused_ops
        << " arena_bytes=" << plan_arena_bytes << "}";
  }
  for (const WatchdogEvent& event : events) {
    out << " [epoch " << event.epoch << ": " << event.reason
        << (event.rolled_back ? " -> rollback" : " -> abort") << "]";
  }
  return out.str();
}

LightNas::LightNas(const space::SearchSpace& space,
                   const predictors::HardwarePredictor& predictor,
                   const nn::SyntheticTask& task,
                   const SupernetConfig& supernet,
                   const LightNasConfig& config)
    : LightNas(space, std::vector<Constraint>{{&predictor, config.target}},
               task, supernet, config) {}

LightNas::LightNas(const space::SearchSpace& space,
                   std::vector<Constraint> constraints,
                   const nn::SyntheticTask& task,
                   const SupernetConfig& supernet,
                   const LightNasConfig& config)
    : space_(&space),
      constraints_(std::move(constraints)),
      task_(&task),
      supernet_config_(supernet),
      config_(config) {
  config_.validate();
  if (constraints_.empty()) {
    throw std::invalid_argument("LightNas: need at least one constraint");
  }
  for (std::size_t c = 0; c < constraints_.size(); ++c) {
    if (constraints_[c].predictor == nullptr) {
      throw std::invalid_argument("LightNas: constraint " +
                                  std::to_string(c) +
                                  " has a null predictor");
    }
    if (!(constraints_[c].target > 0.0) ||
        !std::isfinite(constraints_[c].target)) {
      throw std::invalid_argument(
          "LightNas: constraint " + std::to_string(c) + " target " +
          std::to_string(constraints_[c].target) +
          " must be a positive finite number");
    }
  }
}

SearchResult LightNas::search() { return search(SearchHooks{}); }

SearchResult LightNas::search(const SearchHooks& hooks) {
  // All tensor kernels below (supernet forwards, predictor evaluation,
  // every backward pass) dispatch through this scope; the trajectory is
  // bit-identical for any thread count.
  const nn::ParallelScope parallel_scope(config_.parallel);
  // Memory-reuse layer: buffers, Var nodes, and the backward tape
  // recycle through the active TensorPool (inherited from the caller
  // when one is installed). Pure buffer recycling — the trajectory is
  // bit-identical with pooling on or off.
  nn::PooledScope pool_scope(config_.pool_tensors ? nn::PoolMode::kInherit
                                                  : nn::PoolMode::kDisabled);
  const nn::PoolStats pool_start = config_.pool_tensors
                                       ? pool_scope.pool().stats()
                                       : nn::PoolStats{};
  const nn::plan::PlanStats plan_start = nn::plan::global_stats();

  const std::size_t num_constraints = constraints_.size();

  // The search loop is assembled from the reusable pieces in
  // search_step.hpp — the same ones the campaign orchestrator
  // (src/campaign) multiplexes K heads over. Here: one trainer, one head.
  const SearchTopology topology(*space_);

  util::Rng rng(config_.seed * 0x9e3779b9ULL + 17);
  SharedWTrainer trainer(topology, *task_, supernet_config_, config_,
                         config_.epochs * config_.w_steps_per_epoch);
  AlphaLambdaHead head(topology, constraints_, config_);

  const TemperatureSchedule tau_schedule(config_.tau_initial,
                                         config_.tau_final, config_.epochs);

  util::Rng data_rng = rng.fork();
  nn::Batcher train_batches(task_->train, config_.batch_size, data_rng);
  util::Rng valid_rng = rng.fork();
  nn::Batcher valid_batches(task_->valid, config_.batch_size, valid_rng);

  SearchResult result;
  // Watchdog cooldown state: rollbacks shrink the alpha/lambda step
  // sizes by cooldown_factor and can hold tau above its schedule for a
  // few epochs (tau_floor decays back towards zero).
  double cooldown_scale = 1.0;
  double tau_floor = 0.0;

  // --- checkpoint capture / restore -----------------------------------
  // The same snapshot structure backs on-disk checkpoints and the
  // watchdog's in-memory rollback point, so restore is exercised on
  // healthy runs too.
  auto capture = [&](std::size_t next_epoch) {
    SearchCheckpoint ck;
    ck.seed = config_.seed;
    ck.total_epochs = config_.epochs;
    for (const Constraint& constraint : constraints_) {
      ck.targets.push_back(constraint.target);
    }
    ck.next_epoch = next_epoch;
    SharedWTrainer::State w_state = trainer.export_state();
    ck.w_step_counter = w_state.step_counter;
    ck.supernet_weights = std::move(w_state.weights);
    ck.w_velocity = std::move(w_state.velocity);
    AlphaLambdaHead::State head_state = head.export_state();
    ck.alpha = std::move(head_state.alpha);
    ck.adam_m = std::move(head_state.adam_m);
    ck.adam_v = std::move(head_state.adam_v);
    ck.adam_t = head_state.adam_t;
    ck.lambdas = std::move(head_state.lambdas);
    ck.cooldown_scale = cooldown_scale;
    ck.tau_floor = tau_floor;
    ck.rng = rng.state();
    ck.data_rng = data_rng.state();
    ck.valid_rng = valid_rng.state();
    ck.train_batcher = train_batches.export_state();
    ck.valid_batcher = valid_batches.export_state();
    ck.trace = result.trace;
    ck.weight_updates = result.weight_updates;
    ck.alpha_updates = result.alpha_updates;
    ck.health = result.health;
    return ck;
  };

  auto restore = [&](const SearchCheckpoint& ck) {
    if (ck.seed != config_.seed || ck.total_epochs != config_.epochs) {
      throw std::invalid_argument(
          "SearchCheckpoint: run fingerprint (seed/epochs) does not match "
          "this engine's configuration");
    }
    if (ck.targets.size() != num_constraints) {
      throw std::invalid_argument(
          "SearchCheckpoint: constraint count mismatch");
    }
    for (std::size_t c = 0; c < num_constraints; ++c) {
      if (ck.targets[c] != constraints_[c].target) {
        throw std::invalid_argument(
            "SearchCheckpoint: constraint target mismatch");
      }
    }
    if (!ck.alpha.same_shape(head.alpha()->value)) {
      throw std::invalid_argument(
          "SearchCheckpoint: alpha shape does not match the search space");
    }
    trainer.restore_state(
        {ck.supernet_weights, ck.w_velocity, ck.w_step_counter});
    if (ck.lambdas.size() != num_constraints) {
      throw std::invalid_argument("SearchCheckpoint: lambda count mismatch");
    }
    head.restore_state({ck.alpha, ck.adam_m, ck.adam_v, ck.adam_t,
                        ck.lambdas});
    cooldown_scale = ck.cooldown_scale;
    tau_floor = ck.tau_floor;
    head.set_cooldown_scale(cooldown_scale);
    rng.set_state(ck.rng);
    data_rng.set_state(ck.data_rng);
    valid_rng.set_state(ck.valid_rng);
    train_batches.restore_state(ck.train_batcher);
    valid_batches.restore_state(ck.valid_batcher);
    result.trace = ck.trace;
    result.weight_updates = ck.weight_updates;
    result.alpha_updates = ck.alpha_updates;
    result.health = ck.health;
  };

  std::size_t start_epoch = 0;
  if (hooks.resume != nullptr) {
    restore(*hooks.resume);
    start_epoch = hooks.resume->next_epoch;
    result.health.resumed = true;
    result.health.resumed_from_epoch = start_epoch;
  }

  // The watchdog's in-memory rollback point: the end of the last healthy
  // epoch. Seeded from the resume snapshot when there is one.
  std::optional<SearchCheckpoint> last_good;
  if (hooks.resume != nullptr) last_good = *hooks.resume;
  double best_accuracy = 0.0;
  for (const SearchEpochStats& stats : result.trace) {
    best_accuracy = std::max(best_accuracy, stats.valid_accuracy);
  }

  std::size_t epoch = start_epoch;
  while (epoch < config_.epochs) {
    const double tau = std::max(tau_schedule.at(epoch), tau_floor);
    double sampled_cost_sum = 0.0;
    std::size_t sampled_cost_count = 0;

    // ---- training phase: update w on sampled single paths -------------
    for (std::size_t step = 0; step < config_.w_steps_per_epoch; ++step) {
      const nn::Dataset batch = train_batches.next();
      const PathSample sample = head.sample(tau, rng);
      trainer.step(batch, sample.op_choice);
      ++result.weight_updates;
    }

    // ---- validation phase: update alpha and lambdas --------------------
    if (epoch >= config_.warmup_epochs) {
      for (std::size_t step = 0; step < config_.alpha_steps_per_epoch;
           ++step) {
        const nn::Dataset batch = valid_batches.next();
        sampled_cost_sum += head.alpha_step(
            trainer.supernet(), trainer.weight_parameters(), batch, tau,
            rng);
        ++sampled_cost_count;
        ++result.alpha_updates;
      }
    }

    // ---- telemetry ------------------------------------------------------
    SearchEpochStats stats;
    stats.epoch = epoch;
    stats.tau = tau;
    stats.derived = head.derive();
    stats.lambdas = head.lambda_values();
    for (std::size_t c = 0; c < num_constraints; ++c) {
      stats.predicted_costs.push_back(
          constraints_[c].predictor->predict(stats.derived));
    }
    stats.lambda = stats.lambdas.front();
    stats.predicted_cost = stats.predicted_costs.front();
    stats.sampled_cost_mean =
        sampled_cost_count > 0
            ? sampled_cost_sum / static_cast<double>(sampled_cost_count)
            : stats.predicted_cost;
    {
      const nn::VarPtr logits = trainer.supernet().forward_single_path(
          task_->valid.features, stats.derived.ops());
      const nn::VarPtr loss =
          nn::ops::softmax_cross_entropy(logits, task_->valid.labels);
      stats.valid_loss = static_cast<double>(loss->value.item());
      stats.valid_accuracy =
          nn::ops::accuracy(logits->value, task_->valid.labels);
    }
    if (config_.log_progress) {
      util::log_info() << "epoch " << epoch << " tau=" << stats.tau
                       << " lambda=" << stats.lambda << " cost="
                       << stats.predicted_cost << " (target "
                       << constraints_.front().target << ") valid_acc="
                       << stats.valid_accuracy;
    }

    // ---- divergence watchdog -------------------------------------------
    std::string unhealthy;
    if (config_.watchdog.enabled) {
      if (!std::isfinite(stats.valid_loss)) {
        unhealthy = "non-finite validation loss";
      } else if (!tensor_finite(head.alpha()->value)) {
        unhealthy = "non-finite alpha";
      } else {
        for (std::size_t c = 0; c < num_constraints && unhealthy.empty();
             ++c) {
          if (!std::isfinite(stats.lambdas[c]) ||
              std::abs(stats.lambdas[c]) >
                  config_.watchdog.lambda_limit) {
            unhealthy = "runaway lambda (constraint " + std::to_string(c) +
                        ", value " + std::to_string(stats.lambdas[c]) + ")";
          } else if (!std::isfinite(stats.predicted_costs[c])) {
            unhealthy = "non-finite predicted cost (constraint " +
                        std::to_string(c) + ")";
          }
        }
        if (unhealthy.empty() &&
            best_accuracy >= config_.watchdog.min_reference_accuracy &&
            stats.valid_accuracy <
                config_.watchdog.accuracy_collapse_frac * best_accuracy) {
          unhealthy = "accuracy collapse (" +
                      std::to_string(stats.valid_accuracy) + " vs best " +
                      std::to_string(best_accuracy) + ")";
        }
      }
    }

    if (!unhealthy.empty()) {
      WatchdogEvent event;
      event.epoch = epoch;
      event.reason = unhealthy;
      event.rolled_back = result.health.rollbacks <
                              config_.watchdog.max_rollbacks &&
                          last_good.has_value();
      if (config_.log_progress) {
        util::log_info() << "watchdog: " << unhealthy << " at epoch "
                         << epoch
                         << (event.rolled_back ? " -> rolling back"
                                               : " -> aborting");
      }
      if (!event.rolled_back) {
        result.health.events.push_back(std::move(event));
        result.health.aborted_early = true;
        break;
      }
      // Roll back to the last healthy epoch, keeping the health record
      // accumulated so far, and retry with cooled-down step sizes.
      RunHealth health = result.health;
      health.events.push_back(std::move(event));
      ++health.rollbacks;
      restore(*last_good);
      result.health = std::move(health);
      cooldown_scale *= config_.watchdog.cooldown_factor;
      head.set_cooldown_scale(cooldown_scale);
      // Hold the temperature near its value at the rollback point so the
      // retry explores more softly; the floor decays on healthy epochs.
      tau_floor = std::max(tau_floor, tau_schedule.at(epoch));
      epoch = last_good->next_epoch;
      continue;
    }

    result.trace.push_back(std::move(stats));
    best_accuracy =
        std::max(best_accuracy, result.trace.back().valid_accuracy);
    tau_floor *= 0.8;
    if (tau_floor < config_.tau_final) tau_floor = 0.0;
    ++epoch;
    result.health.completed_epochs = result.trace.size();
    last_good = capture(epoch);

    if (hooks.on_checkpoint &&
        (epoch % std::max<std::size_t>(1, hooks.checkpoint_every) == 0 ||
         epoch == config_.epochs)) {
      hooks.on_checkpoint(*last_good);
    }
    if (hooks.should_stop && epoch < config_.epochs &&
        hooks.should_stop(epoch)) {
      result.health.interrupted = true;
      break;
    }
  }

  // Worst-case relative constraint gap of an epoch snapshot.
  auto gap_of = [&](const std::vector<double>& costs) {
    double worst = 0.0;
    for (std::size_t c = 0; c < num_constraints; ++c) {
      worst = std::max(worst,
                       std::abs(costs[c] - constraints_[c].target) /
                           constraints_[c].target);
    }
    return worst;
  };

  result.architecture = head.derive();
  if (config_.select_best_from_trace && !result.trace.empty()) {
    const std::size_t window_start =
        result.trace.size() - std::max<std::size_t>(
                                  1, result.trace.size() / 4);
    std::vector<double> final_costs;
    for (const Constraint& constraint : constraints_) {
      final_costs.push_back(constraint.predictor->predict(
          result.architecture));
    }
    double best_gap = gap_of(final_costs);
    // An aborted run's live alpha may be the diverged state itself;
    // never let it win over the trace in that case.
    if (result.health.aborted_early) {
      best_gap = std::numeric_limits<double>::infinity();
      result.architecture = result.trace.back().derived;
    }
    for (std::size_t i = window_start; i < result.trace.size(); ++i) {
      const double gap = gap_of(result.trace[i].predicted_costs);
      if (gap < best_gap) {
        best_gap = gap;
        result.architecture = result.trace[i].derived;
      }
    }
  }
  result.health.completed_epochs = result.trace.size();
  const std::vector<double> live_lambdas = head.lambda_values();
  for (std::size_t c = 0; c < num_constraints; ++c) {
    result.final_costs.push_back(
        constraints_[c].predictor->predict(result.architecture));
    // An aborted run's live multiplier IS the diverged (possibly
    // non-finite) state; report the last healthy epoch's value instead,
    // matching the trace-sourced architecture above.
    if (result.health.aborted_early && !result.trace.empty()) {
      result.final_lambdas.push_back(result.trace.back().lambdas[c]);
    } else {
      result.final_lambdas.push_back(live_lambdas[c]);
    }
  }
  result.final_predicted_cost = result.final_costs.front();
  result.final_lambda = result.final_lambdas.front();
  if (config_.pool_tensors) {
    const nn::PoolStats used = pool_scope.pool().stats() - pool_start;
    result.health.pool_buffer_hits = used.buffer_hits;
    result.health.pool_buffer_misses = used.buffer_misses;
    result.health.pool_bytes_recycled = used.bytes_recycled;
    result.health.pool_tape_hits = used.tape_hits;
    result.health.pool_tape_misses = used.tape_misses;
  }
  {
    const nn::plan::PlanStats used = nn::plan::global_stats() - plan_start;
    result.health.plan_hits = used.hits;
    result.health.plan_misses = used.misses;
    result.health.plan_compiles = used.compiles;
    result.health.plan_fused_ops = used.fused_ops;
    result.health.plan_arena_bytes = used.arena_bytes;
  }
  return result;
}

}  // namespace lightnas::core
