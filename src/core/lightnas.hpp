#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/gumbel.hpp"
#include "core/supernet.hpp"
#include "nn/data.hpp"
#include "nn/parallel.hpp"
#include "nn/plan.hpp"
#include "nn/tensor.hpp"
#include "predictors/predictor.hpp"
#include "space/architecture.hpp"
#include "space/search_space.hpp"
#include "util/rng.hpp"

namespace lightnas::core {

/// Divergence-watchdog policy. Differentiable searches fail late and
/// loudly — non-finite losses, a runaway multiplier, or the accuracy
/// collapse of the DARTS failure mode — and a single long "search once"
/// run cannot afford to lose its budget to one bad epoch. The watchdog
/// rolls the run back to the last healthy epoch snapshot and retries
/// with cooled-down step sizes, up to a bounded budget.
struct WatchdogConfig {
  bool enabled = true;
  /// |lambda| beyond this is treated as integrator runaway. Healthy runs
  /// settle at single-digit magnitudes (Fig. 7), so the default is far
  /// outside normal operation.
  double lambda_limit = 75.0;
  /// Trigger when validation accuracy falls below this fraction of the
  /// best accuracy seen so far ...
  double accuracy_collapse_frac = 0.25;
  /// ... but only once the best accuracy is itself meaningful.
  double min_reference_accuracy = 0.30;
  /// Rollback retry budget for the whole run; when exhausted the search
  /// stops early and returns the best snapshot from the trace.
  std::size_t max_rollbacks = 3;
  /// Each rollback multiplies the alpha / lambda step sizes by this.
  double cooldown_factor = 0.5;
};

/// Hyper-parameters of one LightNAS run (Sec 4.1 "Architecture Search
/// Settings", scaled to the surrogate substrate; the paper's values are
/// noted inline).
struct LightNasConfig {
  /// The performance constraint T of Eq (10), in the predictor's unit
  /// (ms for latency, mJ for energy).
  double target = 24.0;

  std::size_t epochs = 65;          // paper: 90
  std::size_t warmup_epochs = 20;   // paper: 10 (w only, alpha frozen).
                                    // Weight-shared blocks must be trained
                                    // past the point where they beat the
                                    // identity path before alpha updates
                                    // begin, or the search collapses to
                                    // SkipConnect (the classic DARTS
                                    // failure mode).
  std::size_t w_steps_per_epoch = 48;
  std::size_t alpha_steps_per_epoch = 20;
  std::size_t batch_size = 48;      // paper: 128

  // Supernet weights w: SGD + momentum + cosine decay (paper: 0.1; our
  // surrogate blocks need a hotter schedule to mature under weight
  // sharing — see the warmup calibration test).
  double w_lr = 0.15;
  double w_momentum = 0.9;
  double w_weight_decay = 3e-5;

  // Architecture parameters alpha: Adam (paper: 1e-3 / wd 1e-3).
  double alpha_lr = 1e-3;
  double alpha_weight_decay = 1e-3;

  // Trade-off coefficient lambda: gradient ascent, initialized at zero
  // (Sec 3.4). The rate is scale-matched to the surrogate's loss
  // magnitudes; the paper uses 5e-4 against ImageNet-100 CE losses.
  double lambda_lr = 0.035;
  double lambda_init = 0.0;

  /// Augmented-Lagrangian damping: adds mu * (COST/T - 1)^2 to the alpha
  /// objective. The lambda-ascent/alpha-descent pair is a double
  /// integrator and oscillates around T; the quadratic term damps the
  /// oscillation without changing the fixed point (COST = T). Setting 0
  /// recovers Eq (10) exactly.
  double penalty_mu = 4.0;

  /// When true, the returned architecture is the derived snapshot from
  /// the last quarter of epochs whose *predicted* cost is closest to T
  /// (predictor-only, no extra measurements) instead of the very last
  /// epoch — a cheap guard against landing on an oscillation peak.
  bool select_best_from_trace = true;

  // Gumbel-Softmax temperature (Sec 3.3): 5 decaying towards zero.
  double tau_initial = 5.0;
  double tau_final = 0.1;

  std::uint64_t seed = 0;
  bool log_progress = false;

  /// Parallel-kernel context for the bi-level loop's GEMMs (supernet
  /// forwards, predictor evaluation, backward passes); null uses
  /// ParallelContext::current(). The search trajectory is bit-identical
  /// for every thread count, so checkpoints and resumes interoperate
  /// freely across --threads settings.
  const nn::ParallelContext* parallel = nullptr;

  /// Recycle tensor buffers, autograd nodes, and the backward tape
  /// through a nn::TensorPool for the duration of the run (inheriting a
  /// caller-installed pool when one is active). Steady-state steps then
  /// perform zero allocations. Pooling only changes where buffers live,
  /// never their contents: trajectories are bit-identical on vs off.
  bool pool_tensors = true;

  /// Execution-plan compilation of repeated w-step graphs (nn/plan.hpp):
  /// after `plan.compile_after` structural hits on one (op_choice, batch
  /// shape) key, the recycled autograd tape is lowered into a
  /// shape-specialized plan and subsequent hits run it instead of the
  /// dynamic graph. Planned and dynamic steps are bit-identical, so this
  /// is purely a throughput knob. Disabled by default to keep the seed
  /// counter telemetry (tape/pool hit rates) unchanged; enable with
  /// LIGHTNAS_PLAN=on|N (applied here via from_env) or the CLI's --plan.
  nn::plan::PlanSettings plan = nn::plan::PlanSettings::from_env([] {
    nn::plan::PlanSettings base;
    base.enabled = false;
    return base;
  }());

  WatchdogConfig watchdog;

  /// Throws std::invalid_argument with a descriptive message when any
  /// field is out of range. Called by the LightNas constructor.
  void validate() const;
};

/// One hardware constraint: drive `predictor`'s estimate of the derived
/// architecture to `target`. The engine accepts several simultaneously
/// (e.g. latency AND energy), each with its own learned multiplier —
/// the natural extension of Eq (10) the paper's Sec 3.5 gestures at.
struct Constraint {
  const predictors::HardwarePredictor* predictor = nullptr;
  double target = 0.0;
};

/// Per-epoch search telemetry; Figure 7 is drawn from these.
struct SearchEpochStats {
  std::size_t epoch = 0;
  double tau = 0.0;
  /// Multiplier / predicted cost of the FIRST constraint (convenience
  /// mirrors for the common single-constraint case).
  double lambda = 0.0;
  double predicted_cost = 0.0;
  /// Per-constraint values, in constructor order.
  std::vector<double> lambdas;
  std::vector<double> predicted_costs;
  /// Mean predicted cost (first constraint) over the epoch's samples.
  double sampled_cost_mean = 0.0;
  double valid_loss = 0.0;
  double valid_accuracy = 0.0;
  space::Architecture derived;
};

/// One watchdog intervention, kept in the run-health record.
struct WatchdogEvent {
  std::size_t epoch = 0;
  std::string reason;
  /// True when the run was rolled back; false when the retry budget was
  /// already spent and the search aborted instead.
  bool rolled_back = false;
};

/// Run-health telemetry: what a production operator needs to judge
/// whether a finished run is trustworthy. The measurement counters
/// describe the campaign that produced the predictor (the search itself
/// performs no measurements) and are filled in by the pipeline driver.
struct RunHealth {
  std::size_t rollbacks = 0;
  std::vector<WatchdogEvent> events;
  /// Watchdog retry budget exhausted; result is best-so-far.
  bool aborted_early = false;
  /// Stopped by SearchHooks::should_stop (e.g. a simulated kill).
  bool interrupted = false;
  bool resumed = false;
  std::size_t resumed_from_epoch = 0;
  std::size_t completed_epochs = 0;
  /// Campaign-side counters (see predictors::CampaignReport).
  std::size_t measurement_retries = 0;
  std::size_t measurements_rejected = 0;
  /// Allocation telemetry of this run's TensorPool (all zero when
  /// pooling was disabled): buffer/tape recycling counters accumulated
  /// between search() entry and exit. In a healthy steady state the
  /// miss counters stop growing after the first epochs.
  std::uint64_t pool_buffer_hits = 0;
  std::uint64_t pool_buffer_misses = 0;
  std::uint64_t pool_bytes_recycled = 0;
  std::uint64_t pool_tape_hits = 0;
  std::uint64_t pool_tape_misses = 0;
  /// Execution-plan telemetry (all zero when plans are disabled):
  /// planned-step executions, dynamic fallbacks, compilations, fused
  /// kernel records, and static arena bytes across this run's plans.
  std::uint64_t plan_hits = 0;
  std::uint64_t plan_misses = 0;
  std::uint64_t plan_compiles = 0;
  std::uint64_t plan_fused_ops = 0;
  std::uint64_t plan_arena_bytes = 0;

  std::string summary() const;
};

struct SearchResult {
  space::Architecture architecture;
  std::vector<SearchEpochStats> trace;
  double final_predicted_cost = 0.0;
  double final_lambda = 0.0;
  std::vector<double> final_costs;
  std::vector<double> final_lambdas;
  std::size_t weight_updates = 0;
  std::size_t alpha_updates = 0;
  RunHealth health;
};

/// Complete serializable snapshot of a running search: restoring it and
/// continuing reproduces the uninterrupted run bit-for-bit (same floats,
/// same RNG streams, same batch order). The same structure backs both
/// the on-disk checkpoint (io::save_checkpoint) and the watchdog's
/// in-memory rollback snapshots, so the restore path is exercised on
/// every run, not only after a crash.
struct SearchCheckpoint {
  // --- fingerprint of the run this snapshot belongs to ----------------
  std::uint64_t seed = 0;
  std::size_t total_epochs = 0;
  std::vector<double> targets;  ///< one per constraint

  // --- position ---------------------------------------------------------
  std::size_t next_epoch = 0;
  std::size_t w_step_counter = 0;

  // --- learnable state -------------------------------------------------
  nn::Tensor alpha;
  std::vector<nn::Tensor> supernet_weights;
  std::vector<nn::Tensor> w_velocity;            ///< SGD momentum buffers
  std::vector<nn::Tensor> adam_m, adam_v;        ///< Adam moments (alpha)
  std::size_t adam_t = 0;
  std::vector<double> lambdas;

  // --- watchdog / cooldown state ---------------------------------------
  double cooldown_scale = 1.0;
  double tau_floor = 0.0;

  // --- RNG and data-order state ----------------------------------------
  util::RngState rng, data_rng, valid_rng;
  nn::Batcher::State train_batcher, valid_batcher;

  // --- accumulated outputs ---------------------------------------------
  std::vector<SearchEpochStats> trace;
  std::size_t weight_updates = 0;
  std::size_t alpha_updates = 0;
  RunHealth health;
};

/// Runtime hooks for fault tolerance. The engine stays free of file I/O:
/// the caller (CLI / bench) decides where checkpoints go.
struct SearchHooks {
  /// Invoked after every `checkpoint_every`-th completed epoch (and the
  /// final one) with a full snapshot.
  std::function<void(const SearchCheckpoint&)> on_checkpoint;
  std::size_t checkpoint_every = 1;
  /// Polled after each completed epoch; returning true stops the run
  /// (health.interrupted is set) — the test harness's simulated kill.
  std::function<bool(std::size_t completed_epochs)> should_stop;
  /// Resume from this snapshot instead of starting fresh. The snapshot's
  /// fingerprint must match the engine's configuration.
  const SearchCheckpoint* resume = nullptr;
};

/// The LightNAS engine (Sec 3): single-path differentiable search with a
/// learned constraint multiplier.
///
/// One `search()` call runs the full bi-level loop of Eq (11):
///  - w minimizes the training loss on sampled single paths;
///  - alpha minimizes  L_valid + lambda * (COST(alpha)/T - 1)  through the
///    Gumbel-Softmax relaxation (Eq 7), binarization with a straight-
///    through estimator (Eq 9/12), and the differentiable predictor;
///  - lambda rises/falls by gradient ascent on the same objective, which
///    drives COST(alpha) -> T without any manual sweep — the paper's
///    "you only search once" property.
class LightNas {
 public:
  /// Single-constraint form (the paper's setting): the constraint target
  /// is `config.target`.
  LightNas(const space::SearchSpace& space,
           const predictors::HardwarePredictor& predictor,
           const nn::SyntheticTask& task, const SupernetConfig& supernet,
           const LightNasConfig& config);

  /// Multi-constraint form: each constraint carries its own target and
  /// gets an independent lambda; `config.target` is ignored.
  LightNas(const space::SearchSpace& space,
           std::vector<Constraint> constraints,
           const nn::SyntheticTask& task, const SupernetConfig& supernet,
           const LightNasConfig& config);

  SearchResult search();
  /// Fault-tolerant entry point: checkpoint emission, simulated
  /// interruption, and resume all flow through the hooks.
  SearchResult search(const SearchHooks& hooks);

  const LightNasConfig& config() const { return config_; }
  std::size_t num_constraints() const { return constraints_.size(); }

 private:
  const space::SearchSpace* space_;
  std::vector<Constraint> constraints_;
  const nn::SyntheticTask* task_;
  SupernetConfig supernet_config_;
  LightNasConfig config_;
};

}  // namespace lightnas::core
