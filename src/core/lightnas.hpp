#pragma once

#include <cstdint>
#include <vector>

#include "core/gumbel.hpp"
#include "core/supernet.hpp"
#include "nn/data.hpp"
#include "predictors/predictor.hpp"
#include "space/architecture.hpp"
#include "space/search_space.hpp"

namespace lightnas::core {

/// Hyper-parameters of one LightNAS run (Sec 4.1 "Architecture Search
/// Settings", scaled to the surrogate substrate; the paper's values are
/// noted inline).
struct LightNasConfig {
  /// The performance constraint T of Eq (10), in the predictor's unit
  /// (ms for latency, mJ for energy).
  double target = 24.0;

  std::size_t epochs = 65;          // paper: 90
  std::size_t warmup_epochs = 20;   // paper: 10 (w only, alpha frozen).
                                    // Weight-shared blocks must be trained
                                    // past the point where they beat the
                                    // identity path before alpha updates
                                    // begin, or the search collapses to
                                    // SkipConnect (the classic DARTS
                                    // failure mode).
  std::size_t w_steps_per_epoch = 48;
  std::size_t alpha_steps_per_epoch = 20;
  std::size_t batch_size = 48;      // paper: 128

  // Supernet weights w: SGD + momentum + cosine decay (paper: 0.1; our
  // surrogate blocks need a hotter schedule to mature under weight
  // sharing — see the warmup calibration test).
  double w_lr = 0.15;
  double w_momentum = 0.9;
  double w_weight_decay = 3e-5;

  // Architecture parameters alpha: Adam (paper: 1e-3 / wd 1e-3).
  double alpha_lr = 1e-3;
  double alpha_weight_decay = 1e-3;

  // Trade-off coefficient lambda: gradient ascent, initialized at zero
  // (Sec 3.4). The rate is scale-matched to the surrogate's loss
  // magnitudes; the paper uses 5e-4 against ImageNet-100 CE losses.
  double lambda_lr = 0.035;
  double lambda_init = 0.0;

  /// Augmented-Lagrangian damping: adds mu * (COST/T - 1)^2 to the alpha
  /// objective. The lambda-ascent/alpha-descent pair is a double
  /// integrator and oscillates around T; the quadratic term damps the
  /// oscillation without changing the fixed point (COST = T). Setting 0
  /// recovers Eq (10) exactly.
  double penalty_mu = 4.0;

  /// When true, the returned architecture is the derived snapshot from
  /// the last quarter of epochs whose *predicted* cost is closest to T
  /// (predictor-only, no extra measurements) instead of the very last
  /// epoch — a cheap guard against landing on an oscillation peak.
  bool select_best_from_trace = true;

  // Gumbel-Softmax temperature (Sec 3.3): 5 decaying towards zero.
  double tau_initial = 5.0;
  double tau_final = 0.1;

  std::uint64_t seed = 0;
  bool log_progress = false;
};

/// One hardware constraint: drive `predictor`'s estimate of the derived
/// architecture to `target`. The engine accepts several simultaneously
/// (e.g. latency AND energy), each with its own learned multiplier —
/// the natural extension of Eq (10) the paper's Sec 3.5 gestures at.
struct Constraint {
  const predictors::HardwarePredictor* predictor = nullptr;
  double target = 0.0;
};

/// Per-epoch search telemetry; Figure 7 is drawn from these.
struct SearchEpochStats {
  std::size_t epoch = 0;
  double tau = 0.0;
  /// Multiplier / predicted cost of the FIRST constraint (convenience
  /// mirrors for the common single-constraint case).
  double lambda = 0.0;
  double predicted_cost = 0.0;
  /// Per-constraint values, in constructor order.
  std::vector<double> lambdas;
  std::vector<double> predicted_costs;
  /// Mean predicted cost (first constraint) over the epoch's samples.
  double sampled_cost_mean = 0.0;
  double valid_loss = 0.0;
  double valid_accuracy = 0.0;
  space::Architecture derived;
};

struct SearchResult {
  space::Architecture architecture;
  std::vector<SearchEpochStats> trace;
  double final_predicted_cost = 0.0;
  double final_lambda = 0.0;
  std::vector<double> final_costs;
  std::vector<double> final_lambdas;
  std::size_t weight_updates = 0;
  std::size_t alpha_updates = 0;
};

/// The LightNAS engine (Sec 3): single-path differentiable search with a
/// learned constraint multiplier.
///
/// One `search()` call runs the full bi-level loop of Eq (11):
///  - w minimizes the training loss on sampled single paths;
///  - alpha minimizes  L_valid + lambda * (COST(alpha)/T - 1)  through the
///    Gumbel-Softmax relaxation (Eq 7), binarization with a straight-
///    through estimator (Eq 9/12), and the differentiable predictor;
///  - lambda rises/falls by gradient ascent on the same objective, which
///    drives COST(alpha) -> T without any manual sweep — the paper's
///    "you only search once" property.
class LightNas {
 public:
  /// Single-constraint form (the paper's setting): the constraint target
  /// is `config.target`.
  LightNas(const space::SearchSpace& space,
           const predictors::HardwarePredictor& predictor,
           const nn::SyntheticTask& task, const SupernetConfig& supernet,
           const LightNasConfig& config);

  /// Multi-constraint form: each constraint carries its own target and
  /// gets an independent lambda; `config.target` is ignored.
  LightNas(const space::SearchSpace& space,
           std::vector<Constraint> constraints,
           const nn::SyntheticTask& task, const SupernetConfig& supernet,
           const LightNasConfig& config);

  SearchResult search();

  const LightNasConfig& config() const { return config_; }
  std::size_t num_constraints() const { return constraints_.size(); }

 private:
  const space::SearchSpace* space_;
  std::vector<Constraint> constraints_;
  const nn::SyntheticTask* task_;
  SupernetConfig supernet_config_;
  LightNasConfig config_;
};

}  // namespace lightnas::core
