#include "core/search_step.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "nn/ops.hpp"

namespace lightnas::core {

namespace {

/// GDAS-style hard gate: value exactly 1, gradient d(gate)/d(p_soft) = 1,
/// so the path's output gradient is credited to its soft probability.
nn::VarPtr hard_gate(const nn::VarPtr& soft_prob) {
  return nn::ops::add_scalar(
      nn::ops::sub(soft_prob, nn::ops::detach(soft_prob)), 1.0);
}

std::size_t infer_num_classes(const nn::SyntheticTask& task) {
  return task.train.labels.empty()
             ? 10
             : 1 + *std::max_element(task.train.labels.begin(),
                                     task.train.labels.end());
}

}  // namespace

// ---------------------------------------------------------------- topology

SearchTopology::SearchTopology(const space::SearchSpace& space)
    : space_(&space),
      num_layers_(space.num_layers()),
      num_ops_(space.num_ops()) {
  for (std::size_t l = 0; l < num_layers_; ++l) {
    if (space.layers()[l].searchable) searchable_layers_.push_back(l);
  }
}

PathSample SearchTopology::sample_path(const nn::VarPtr& alpha, double tau,
                                       util::Rng& rng) const {
  PathSample sample;
  sample.p_hat = nn::ops::row_softmax(nn::ops::scale(
      nn::ops::add(alpha, nn::make_const(gumbel_noise(
                              num_searchable(), num_ops_, rng))),
      1.0 / tau));
  sample.op_choice.assign(num_layers_, 0);
  for (std::size_t s = 0; s < num_searchable(); ++s) {
    sample.op_choice[searchable_layers_[s]] =
        sample.p_hat->value.argmax_row(s);
  }
  return sample;
}

space::Architecture SearchTopology::derive(const nn::Tensor& alpha) const {
  std::vector<std::size_t> ops(num_layers_, 0);
  for (std::size_t s = 0; s < num_searchable(); ++s) {
    ops[searchable_layers_[s]] = alpha.argmax_row(s);
  }
  return space::Architecture(std::move(ops));
}

nn::VarPtr SearchTopology::assemble_encoding(
    const nn::VarPtr& binarized) const {
  std::vector<nn::VarPtr> rows;
  rows.reserve(num_layers_);
  std::size_t s = 0;
  for (std::size_t l = 0; l < num_layers_; ++l) {
    if (space_->layers()[l].searchable) {
      rows.push_back(nn::ops::slice_rows(binarized, s++, 1));
    } else {
      nn::Tensor one_hot = nn::Tensor::zeros(1, num_ops_);
      one_hot.at(0, 0) = 1.0f;
      rows.push_back(nn::make_const(std::move(one_hot)));
    }
  }
  return nn::ops::reshape(nn::ops::vstack(rows), 1, num_layers_ * num_ops_);
}

// ------------------------------------------------------- shared-w trainer

SharedWTrainer::SharedWTrainer(const SearchTopology& topology,
                               const nn::SyntheticTask& task,
                               const SupernetConfig& supernet,
                               const LightNasConfig& config,
                               std::size_t total_w_steps)
    : supernet_(topology.space(), task.train.feature_dim(),
                infer_num_classes(task),
                [&] {
                  SupernetConfig seeded = supernet;
                  seeded.seed ^= config.seed;
                  return seeded;
                }()),
      weight_params_(supernet_.weight_parameters()),
      w_optimizer_(weight_params_, config.w_lr, config.w_momentum,
                   config.w_weight_decay, /*clip_norm=*/5.0),
      w_schedule_(config.w_lr, total_w_steps),
      plans_(config.plan) {
  plan_inputs_.resize(1);
  plan_labels_.resize(1);
  param_index_.reserve(weight_params_.size());
  for (std::uint32_t i = 0; i < weight_params_.size(); ++i) {
    param_index_.emplace(weight_params_[i].get(), i);
  }
}

void SharedWTrainer::rebuild_plan_active(
    const nn::plan::ExecutionPlan* plan) {
  // Runs once per plan switch (never in the planned steady state, so
  // the vector growth here stays off the zero-alloc hot path).
  active_plan_ = plan;
  plan_active_valid_ = true;
  plan_active_.clear();
  for (const nn::plan::ProgramSlot& slot : plan->program().slots) {
    if (slot.kind != nn::plan::SlotKind::kParam) continue;
    const auto it = param_index_.find(slot.param.get());
    if (it == param_index_.end()) {
      // A parameter this trainer does not own (should not happen for
      // w-step plans) — no manifest, use the dense optimizer sweep.
      plan_active_valid_ = false;
      return;
    }
    plan_active_.push_back(it->second);
  }
  std::sort(plan_active_.begin(), plan_active_.end());
  plan_active_.erase(
      std::unique(plan_active_.begin(), plan_active_.end()),
      plan_active_.end());
}

double SharedWTrainer::step(const nn::Dataset& batch,
                            const std::vector<std::size_t>& op_choice) {
  // Zero exactly what the previous step's backward wrote: a planned
  // step accumulates gradients only into its plan's parameter set, so
  // the next step needs to clear just those. Dynamic steps have no
  // such manifest and fall back to the dense sweep.
  if (wrote_all_) {
    w_optimizer_.zero_grad();
  } else {
    for (const std::uint32_t i : plan_active_) {
      weight_params_[i]->zero_grad();
    }
  }
  wrote_all_ = true;
  if (!plans_.settings().enabled) {
    return dynamic_step(batch, op_choice, /*record=*/false);
  }

  // Structural key of this step: the sampled path plus the batch shape.
  // Digits are appended in place so the steady state reuses the string's
  // capacity (no allocation on the hot path).
  plan_key_.clear();
  const auto append_num = [this](std::size_t v) {
    char digits[20];
    std::size_t len = 0;
    do {
      digits[len++] = static_cast<char>('0' + v % 10);
      v /= 10;
    } while (v != 0);
    while (len > 0) plan_key_.push_back(digits[--len]);
  };
  for (const std::size_t op : op_choice) {
    append_num(op);
    plan_key_.push_back(',');
  }
  plan_key_.push_back(':');
  append_num(batch.features.rows());
  plan_key_.push_back('x');
  append_num(batch.features.cols());

  const nn::ParallelContext& ctx = nn::ParallelContext::current();
  if (nn::plan::ExecutionPlan* plan = plans_.lookup(plan_key_, ctx)) {
    plan_inputs_[0] = &batch.features;
    plan_labels_[0] = &batch.labels;
    if (plan->execute(plan_inputs_, plan_labels_, ctx)) {
      // The graph was never built, so drop the (empty) construction log
      // and advance the tape generation before the optimizer runs.
      nn::discard_tape_log();
      w_optimizer_.set_lr(w_schedule_.lr_at(step_counter_++));
      if (plan != active_plan_) rebuild_plan_active(plan);
      if (plan_active_valid_) {
        // The plan's parameter table is an exact manifest of which
        // gradients this step produced — every other parameter's grad
        // is still zero, so the optimizer can skip reading it.
        w_optimizer_.step_on(plan_active_);
        wrote_all_ = false;
      } else {
        w_optimizer_.step();
      }
      return static_cast<double>(plan->root_data()[0]);
    }
  }
  return dynamic_step(batch, op_choice, plans_.should_record(plan_key_));
}

double SharedWTrainer::dynamic_step(
    const nn::Dataset& batch, const std::vector<std::size_t>& op_choice,
    bool record) {
  // Any compile below may free an evicted plan and a later compile may
  // reuse its address — drop the pointer-identity cache so the next
  // planned step rebuilds its parameter manifest.
  active_plan_ = nullptr;
  plan_active_valid_ = false;
  std::unique_ptr<nn::plan::Program> program;
  nn::VarPtr loss;
  if (record) {
    // Trace this step's forward; the capture happens before backward()
    // recycles the graph. A poisoned capture marks the key uncompilable.
    nn::plan::Recording recording;
    const nn::VarPtr logits =
        supernet_.forward_single_path(batch.features, op_choice);
    loss = nn::ops::softmax_cross_entropy(logits, batch.labels);
    program = recording.capture(loss);
  } else {
    const nn::VarPtr logits =
        supernet_.forward_single_path(batch.features, op_choice);
    loss = nn::ops::softmax_cross_entropy(logits, batch.labels);
  }
  nn::backward(loss);
  w_optimizer_.set_lr(w_schedule_.lr_at(step_counter_++));
  w_optimizer_.step();
  if (record) {
    plans_.store(plan_key_,
                 program != nullptr
                     ? nn::plan::ExecutionPlan::compile(
                           *program, nn::plan::CompileOptions{},
                           nn::ParallelContext::current())
                     : nullptr);
  }
  return static_cast<double>(loss->value.item());
}

void SharedWTrainer::clear_weight_grads() {
  for (const nn::VarPtr& param : weight_params_) {
    param->zero_grad();
  }
}

SharedWTrainer::State SharedWTrainer::export_state() const {
  State state;
  state.weights.reserve(weight_params_.size());
  for (const nn::VarPtr& p : weight_params_) {
    state.weights.push_back(p->value);
  }
  state.velocity = w_optimizer_.export_state().velocity;
  state.step_counter = step_counter_;
  return state;
}

void SharedWTrainer::restore_state(const State& state) {
  if (state.weights.size() != weight_params_.size()) {
    throw std::invalid_argument(
        "SharedWTrainer: supernet parameter count mismatch");
  }
  for (std::size_t i = 0; i < weight_params_.size(); ++i) {
    if (!state.weights[i].same_shape(weight_params_[i]->value)) {
      throw std::invalid_argument(
          "SharedWTrainer: supernet tensor shape mismatch");
    }
    weight_params_[i]->value = state.weights[i];
  }
  w_optimizer_.restore_state({state.velocity});
  step_counter_ = state.step_counter;
  // Whatever gradients are in flight belong to the pre-restore
  // trajectory — make the next step sweep all of them.
  wrote_all_ = true;
}

// ------------------------------------------------------ alpha-lambda head

AlphaLambdaHead::AlphaLambdaHead(const SearchTopology& topology,
                                 const std::vector<Constraint>& constraints,
                                 const LightNasConfig& config)
    : topology_(&topology),
      constraints_(&constraints),
      alpha_lr_(config.alpha_lr),
      lambda_lr_(config.lambda_lr),
      penalty_mu_(config.penalty_mu),
      alpha_(nn::make_leaf(
          nn::Tensor::zeros(topology.num_searchable(), topology.num_ops()),
          "alpha")),
      alpha_optimizer_({alpha_}, config.alpha_lr, 0.9, 0.999, 1e-8,
                       config.alpha_weight_decay),
      lambdas_(constraints.size(),
               nn::LambdaAscent(config.lambda_lr, config.lambda_init)) {}

PathSample AlphaLambdaHead::sample(double tau, util::Rng& rng) const {
  return topology_->sample_path(alpha_, tau, rng);
}

double AlphaLambdaHead::alpha_step(
    const SurrogateSupernet& supernet,
    const std::vector<nn::VarPtr>& weight_params, const nn::Dataset& batch,
    double tau, util::Rng& rng) {
  const std::size_t num_layers = topology_->num_layers();
  const std::vector<std::size_t>& searchable =
      topology_->searchable_layers();
  const std::vector<Constraint>& constraints = *constraints_;

  const nn::VarPtr p_hat = nn::ops::row_softmax(nn::ops::scale(
      nn::ops::add(alpha_, nn::make_const(gumbel_noise(
                               searchable.size(), topology_->num_ops(),
                               rng))),
      1.0 / tau));

  // Sampled path + GDAS gates so d(CE)/d(alpha) exists (Eq 12).
  std::vector<std::size_t> op_choice(num_layers, 0);
  std::vector<nn::VarPtr> gates(num_layers, nullptr);
  for (std::size_t s = 0; s < searchable.size(); ++s) {
    const std::size_t j = p_hat->value.argmax_row(s);
    op_choice[searchable[s]] = j;
    gates[searchable[s]] = hard_gate(nn::ops::select(p_hat, s, j));
  }

  const nn::VarPtr logits =
      supernet.forward_single_path(batch.features, op_choice, gates);
  nn::VarPtr loss = nn::ops::softmax_cross_entropy(logits, batch.labels);

  // Differentiable cost of the binarized architecture (Eq 9 + 12), one
  // penalty term per constraint.
  double sampled_cost = 0.0;
  const nn::VarPtr p_bar = nn::ops::binarize_rows_ste(p_hat);
  const nn::VarPtr encoding = topology_->assemble_encoding(p_bar);
  for (std::size_t c = 0; c < constraints.size(); ++c) {
    const nn::VarPtr cost = constraints[c].predictor->forward_var(encoding);
    const nn::VarPtr violation = nn::ops::add_scalar(
        nn::ops::scale(cost, 1.0 / constraints[c].target), -1.0);
    loss = nn::ops::add(loss, nn::ops::scale(violation, lambdas_[c].value()));
    if (penalty_mu_ != 0.0) {
      loss = nn::ops::add(
          loss, nn::ops::scale(nn::ops::mul(violation, violation),
                               penalty_mu_));
    }
    if (c == 0) sampled_cost = static_cast<double>(cost->value.item());
  }

  alpha_optimizer_.zero_grad();
  // The supernet weights also receive gradients here; the caller-supplied
  // weight_params are cleared without being applied (bi-level: alpha-only
  // update).
  nn::backward(loss);
  alpha_optimizer_.step();
  for (const nn::VarPtr& param : weight_params) {
    param->zero_grad();
  }

  // Gradient ascent on each lambda (Eq 11): dL/dlambda_c =
  // COST_c(alpha)/T_c - 1, where the architecture encoded by alpha is the
  // argmax one of Eq (4) — NOT the Gumbel-sampled path, whose cost is a
  // noisy draw centred on the distribution rather than on the encoding.
  const space::Architecture derived_arch = derive();
  for (std::size_t c = 0; c < constraints.size(); ++c) {
    lambdas_[c].step(constraints[c].predictor->predict(derived_arch) /
                         constraints[c].target -
                     1.0);
  }
  return sampled_cost;
}

space::Architecture AlphaLambdaHead::derive() const {
  return topology_->derive(alpha_->value);
}

std::vector<double> AlphaLambdaHead::lambda_values() const {
  std::vector<double> values;
  values.reserve(lambdas_.size());
  for (const nn::LambdaAscent& l : lambdas_) values.push_back(l.value());
  return values;
}

void AlphaLambdaHead::set_cooldown_scale(double scale) {
  alpha_optimizer_.set_lr(alpha_lr_ * scale);
  for (nn::LambdaAscent& l : lambdas_) {
    l.set_lr(lambda_lr_ * scale);
  }
}

AlphaLambdaHead::State AlphaLambdaHead::export_state() const {
  State state;
  state.alpha = alpha_->value;
  nn::Adam::State adam = alpha_optimizer_.export_state();
  state.adam_m = std::move(adam.m);
  state.adam_v = std::move(adam.v);
  state.adam_t = adam.t;
  state.lambdas = lambda_values();
  return state;
}

void AlphaLambdaHead::restore_state(const State& state) {
  if (!state.alpha.same_shape(alpha_->value)) {
    throw std::invalid_argument(
        "AlphaLambdaHead: alpha shape does not match the search space");
  }
  if (state.lambdas.size() != lambdas_.size()) {
    throw std::invalid_argument("AlphaLambdaHead: lambda count mismatch");
  }
  alpha_->value = state.alpha;
  alpha_optimizer_.restore_state({state.adam_m, state.adam_v, state.adam_t});
  for (std::size_t c = 0; c < lambdas_.size(); ++c) {
    lambdas_[c].reset(state.lambdas[c]);
  }
}

}  // namespace lightnas::core
