#include "core/search_step.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "nn/ops.hpp"

namespace lightnas::core {

namespace {

/// GDAS-style hard gate: value exactly 1, gradient d(gate)/d(p_soft) = 1,
/// so the path's output gradient is credited to its soft probability.
nn::VarPtr hard_gate(const nn::VarPtr& soft_prob) {
  return nn::ops::add_scalar(
      nn::ops::sub(soft_prob, nn::ops::detach(soft_prob)), 1.0);
}

std::size_t infer_num_classes(const nn::SyntheticTask& task) {
  return task.train.labels.empty()
             ? 10
             : 1 + *std::max_element(task.train.labels.begin(),
                                     task.train.labels.end());
}

}  // namespace

// ---------------------------------------------------------------- topology

SearchTopology::SearchTopology(const space::SearchSpace& space)
    : space_(&space),
      num_layers_(space.num_layers()),
      num_ops_(space.num_ops()) {
  for (std::size_t l = 0; l < num_layers_; ++l) {
    if (space.layers()[l].searchable) searchable_layers_.push_back(l);
  }
}

PathSample SearchTopology::sample_path(const nn::VarPtr& alpha, double tau,
                                       util::Rng& rng) const {
  PathSample sample;
  sample.p_hat = nn::ops::row_softmax(nn::ops::scale(
      nn::ops::add(alpha, nn::make_const(gumbel_noise(
                              num_searchable(), num_ops_, rng))),
      1.0 / tau));
  sample.op_choice.assign(num_layers_, 0);
  for (std::size_t s = 0; s < num_searchable(); ++s) {
    sample.op_choice[searchable_layers_[s]] =
        sample.p_hat->value.argmax_row(s);
  }
  return sample;
}

space::Architecture SearchTopology::derive(const nn::Tensor& alpha) const {
  std::vector<std::size_t> ops(num_layers_, 0);
  for (std::size_t s = 0; s < num_searchable(); ++s) {
    ops[searchable_layers_[s]] = alpha.argmax_row(s);
  }
  return space::Architecture(std::move(ops));
}

nn::VarPtr SearchTopology::assemble_encoding(
    const nn::VarPtr& binarized) const {
  std::vector<nn::VarPtr> rows;
  rows.reserve(num_layers_);
  std::size_t s = 0;
  for (std::size_t l = 0; l < num_layers_; ++l) {
    if (space_->layers()[l].searchable) {
      rows.push_back(nn::ops::slice_rows(binarized, s++, 1));
    } else {
      nn::Tensor one_hot = nn::Tensor::zeros(1, num_ops_);
      one_hot.at(0, 0) = 1.0f;
      rows.push_back(nn::make_const(std::move(one_hot)));
    }
  }
  return nn::ops::reshape(nn::ops::vstack(rows), 1, num_layers_ * num_ops_);
}

// ------------------------------------------------------- shared-w trainer

SharedWTrainer::SharedWTrainer(const SearchTopology& topology,
                               const nn::SyntheticTask& task,
                               const SupernetConfig& supernet,
                               const LightNasConfig& config,
                               std::size_t total_w_steps)
    : supernet_(topology.space(), task.train.feature_dim(),
                infer_num_classes(task),
                [&] {
                  SupernetConfig seeded = supernet;
                  seeded.seed ^= config.seed;
                  return seeded;
                }()),
      weight_params_(supernet_.weight_parameters()),
      w_optimizer_(weight_params_, config.w_lr, config.w_momentum,
                   config.w_weight_decay, /*clip_norm=*/5.0),
      w_schedule_(config.w_lr, total_w_steps) {}

double SharedWTrainer::step(const nn::Dataset& batch,
                            const std::vector<std::size_t>& op_choice) {
  w_optimizer_.zero_grad();
  const nn::VarPtr logits =
      supernet_.forward_single_path(batch.features, op_choice);
  const nn::VarPtr loss =
      nn::ops::softmax_cross_entropy(logits, batch.labels);
  nn::backward(loss);
  w_optimizer_.set_lr(w_schedule_.lr_at(step_counter_++));
  w_optimizer_.step();
  return static_cast<double>(loss->value.item());
}

void SharedWTrainer::clear_weight_grads() {
  for (const nn::VarPtr& param : weight_params_) {
    param->zero_grad();
  }
}

SharedWTrainer::State SharedWTrainer::export_state() const {
  State state;
  state.weights.reserve(weight_params_.size());
  for (const nn::VarPtr& p : weight_params_) {
    state.weights.push_back(p->value);
  }
  state.velocity = w_optimizer_.export_state().velocity;
  state.step_counter = step_counter_;
  return state;
}

void SharedWTrainer::restore_state(const State& state) {
  if (state.weights.size() != weight_params_.size()) {
    throw std::invalid_argument(
        "SharedWTrainer: supernet parameter count mismatch");
  }
  for (std::size_t i = 0; i < weight_params_.size(); ++i) {
    if (!state.weights[i].same_shape(weight_params_[i]->value)) {
      throw std::invalid_argument(
          "SharedWTrainer: supernet tensor shape mismatch");
    }
    weight_params_[i]->value = state.weights[i];
  }
  w_optimizer_.restore_state({state.velocity});
  step_counter_ = state.step_counter;
}

// ------------------------------------------------------ alpha-lambda head

AlphaLambdaHead::AlphaLambdaHead(const SearchTopology& topology,
                                 const std::vector<Constraint>& constraints,
                                 const LightNasConfig& config)
    : topology_(&topology),
      constraints_(&constraints),
      alpha_lr_(config.alpha_lr),
      lambda_lr_(config.lambda_lr),
      penalty_mu_(config.penalty_mu),
      alpha_(nn::make_leaf(
          nn::Tensor::zeros(topology.num_searchable(), topology.num_ops()),
          "alpha")),
      alpha_optimizer_({alpha_}, config.alpha_lr, 0.9, 0.999, 1e-8,
                       config.alpha_weight_decay),
      lambdas_(constraints.size(),
               nn::LambdaAscent(config.lambda_lr, config.lambda_init)) {}

PathSample AlphaLambdaHead::sample(double tau, util::Rng& rng) const {
  return topology_->sample_path(alpha_, tau, rng);
}

double AlphaLambdaHead::alpha_step(
    const SurrogateSupernet& supernet,
    const std::vector<nn::VarPtr>& weight_params, const nn::Dataset& batch,
    double tau, util::Rng& rng) {
  const std::size_t num_layers = topology_->num_layers();
  const std::vector<std::size_t>& searchable =
      topology_->searchable_layers();
  const std::vector<Constraint>& constraints = *constraints_;

  const nn::VarPtr p_hat = nn::ops::row_softmax(nn::ops::scale(
      nn::ops::add(alpha_, nn::make_const(gumbel_noise(
                               searchable.size(), topology_->num_ops(),
                               rng))),
      1.0 / tau));

  // Sampled path + GDAS gates so d(CE)/d(alpha) exists (Eq 12).
  std::vector<std::size_t> op_choice(num_layers, 0);
  std::vector<nn::VarPtr> gates(num_layers, nullptr);
  for (std::size_t s = 0; s < searchable.size(); ++s) {
    const std::size_t j = p_hat->value.argmax_row(s);
    op_choice[searchable[s]] = j;
    gates[searchable[s]] = hard_gate(nn::ops::select(p_hat, s, j));
  }

  const nn::VarPtr logits =
      supernet.forward_single_path(batch.features, op_choice, gates);
  nn::VarPtr loss = nn::ops::softmax_cross_entropy(logits, batch.labels);

  // Differentiable cost of the binarized architecture (Eq 9 + 12), one
  // penalty term per constraint.
  double sampled_cost = 0.0;
  const nn::VarPtr p_bar = nn::ops::binarize_rows_ste(p_hat);
  const nn::VarPtr encoding = topology_->assemble_encoding(p_bar);
  for (std::size_t c = 0; c < constraints.size(); ++c) {
    const nn::VarPtr cost = constraints[c].predictor->forward_var(encoding);
    const nn::VarPtr violation = nn::ops::add_scalar(
        nn::ops::scale(cost, 1.0 / constraints[c].target), -1.0);
    loss = nn::ops::add(loss, nn::ops::scale(violation, lambdas_[c].value()));
    if (penalty_mu_ != 0.0) {
      loss = nn::ops::add(
          loss, nn::ops::scale(nn::ops::mul(violation, violation),
                               penalty_mu_));
    }
    if (c == 0) sampled_cost = static_cast<double>(cost->value.item());
  }

  alpha_optimizer_.zero_grad();
  // The supernet weights also receive gradients here; the caller-supplied
  // weight_params are cleared without being applied (bi-level: alpha-only
  // update).
  nn::backward(loss);
  alpha_optimizer_.step();
  for (const nn::VarPtr& param : weight_params) {
    param->zero_grad();
  }

  // Gradient ascent on each lambda (Eq 11): dL/dlambda_c =
  // COST_c(alpha)/T_c - 1, where the architecture encoded by alpha is the
  // argmax one of Eq (4) — NOT the Gumbel-sampled path, whose cost is a
  // noisy draw centred on the distribution rather than on the encoding.
  const space::Architecture derived_arch = derive();
  for (std::size_t c = 0; c < constraints.size(); ++c) {
    lambdas_[c].step(constraints[c].predictor->predict(derived_arch) /
                         constraints[c].target -
                     1.0);
  }
  return sampled_cost;
}

space::Architecture AlphaLambdaHead::derive() const {
  return topology_->derive(alpha_->value);
}

std::vector<double> AlphaLambdaHead::lambda_values() const {
  std::vector<double> values;
  values.reserve(lambdas_.size());
  for (const nn::LambdaAscent& l : lambdas_) values.push_back(l.value());
  return values;
}

void AlphaLambdaHead::set_cooldown_scale(double scale) {
  alpha_optimizer_.set_lr(alpha_lr_ * scale);
  for (nn::LambdaAscent& l : lambdas_) {
    l.set_lr(lambda_lr_ * scale);
  }
}

AlphaLambdaHead::State AlphaLambdaHead::export_state() const {
  State state;
  state.alpha = alpha_->value;
  nn::Adam::State adam = alpha_optimizer_.export_state();
  state.adam_m = std::move(adam.m);
  state.adam_v = std::move(adam.v);
  state.adam_t = adam.t;
  state.lambdas = lambda_values();
  return state;
}

void AlphaLambdaHead::restore_state(const State& state) {
  if (!state.alpha.same_shape(alpha_->value)) {
    throw std::invalid_argument(
        "AlphaLambdaHead: alpha shape does not match the search space");
  }
  if (state.lambdas.size() != lambdas_.size()) {
    throw std::invalid_argument("AlphaLambdaHead: lambda count mismatch");
  }
  alpha_->value = state.alpha;
  alpha_optimizer_.restore_state({state.adam_m, state.adam_v, state.adam_t});
  for (std::size_t c = 0; c < lambdas_.size(); ++c) {
    lambdas_[c].reset(state.lambdas[c]);
  }
}

}  // namespace lightnas::core
