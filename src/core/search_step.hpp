#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/gumbel.hpp"
#include "core/lightnas.hpp"
#include "core/supernet.hpp"
#include "nn/autograd.hpp"
#include "nn/data.hpp"
#include "nn/optim.hpp"
#include "nn/plan.hpp"
#include "nn/tensor.hpp"
#include "space/architecture.hpp"
#include "space/search_space.hpp"
#include "util/rng.hpp"

namespace lightnas::core {

/// Reusable building blocks of the differentiable search loop, factored
/// out of the monolithic LightNas::search() so the single-target engine
/// and the multi-target campaign orchestrator (src/campaign) share one
/// implementation of the paper's update rules:
///
///  - SearchTopology: searchable-layer bookkeeping, Gumbel-Softmax path
///    sampling (Eq 7), encoding assembly for the differentiable cost
///    (Eq 9/12) and argmax derivation (Eq 4);
///  - SharedWTrainer: the supernet-weight half of the bi-level loop —
///    one SGD+cosine step on a sampled single path;
///  - AlphaLambdaHead: the per-target half — architecture parameters
///    alpha, their Adam state, and one learned multiplier per
///    constraint, stepped against any supernet sharing the topology.
///
/// Every method preserves the exact op order (and therefore the exact
/// floating-point trajectory) of the pre-refactor loop; the engine
/// tests' bit-identity contracts hold across this factoring.

/// One Gumbel-Softmax draw: the relaxed distribution p_hat plus the
/// argmax path it selects (fixed layers carry op 0 by construction).
struct PathSample {
  nn::VarPtr p_hat;
  std::vector<std::size_t> op_choice;
};

/// Searchable-layer bookkeeping for one search space: maps searchable
/// layers onto alpha rows and back.
class SearchTopology {
 public:
  explicit SearchTopology(const space::SearchSpace& space);

  const space::SearchSpace& space() const { return *space_; }
  std::size_t num_layers() const { return num_layers_; }
  std::size_t num_ops() const { return num_ops_; }
  std::size_t num_searchable() const { return searchable_layers_.size(); }
  const std::vector<std::size_t>& searchable_layers() const {
    return searchable_layers_;
  }

  /// Sample one path through the Gumbel-Softmax of Eq (7). The noise is
  /// applied on the logits alpha as in the cited Gumbel-Softmax paper —
  /// softmax((log P + G)/tau) == softmax((alpha + G)/tau) since the
  /// per-row log-normalizer cancels inside the softmax.
  PathSample sample_path(const nn::VarPtr& alpha, double tau,
                         util::Rng& rng) const;

  /// Derive the stand-alone architecture: strongest operator per layer
  /// (Sec 2.1), fixed layers keep their fixed op.
  space::Architecture derive(const nn::Tensor& alpha) const;

  /// Assemble the full L x K encoding Var from the searchable block,
  /// splicing in constant one-hot rows for fixed layers (their operator
  /// index is 0 by construction of the space).
  nn::VarPtr assemble_encoding(const nn::VarPtr& binarized) const;

 private:
  const space::SearchSpace* space_;
  std::size_t num_layers_;
  std::size_t num_ops_;
  std::vector<std::size_t> searchable_layers_;
};

/// The shared supernet and its weight-update machinery: SGD + momentum +
/// cosine decay over sampled single paths. In the single-target engine
/// there is one of these per run; in a campaign one instance is shared
/// by every target's head — the "shared w" of the amortized search.
class SharedWTrainer {
 public:
  /// Serializable trainer state (checkpoint support).
  struct State {
    std::vector<nn::Tensor> weights;
    std::vector<nn::Tensor> velocity;
    std::size_t step_counter = 0;
  };

  /// `total_w_steps` sizes the cosine schedule (epochs x steps/epoch of
  /// the run this trainer drives). The supernet seed is
  /// `supernet.seed ^ config.seed`, matching the original engine.
  SharedWTrainer(const SearchTopology& topology,
                 const nn::SyntheticTask& task,
                 const SupernetConfig& supernet,
                 const LightNasConfig& config, std::size_t total_w_steps);

  /// One shared-w update: cross-entropy on the sampled single path,
  /// backward, cosine-scheduled SGD step.  Returns the training loss.
  double step(const nn::Dataset& batch,
              const std::vector<std::size_t>& op_choice);

  /// Clear gradients accumulated into the supernet weights by an
  /// alpha-phase backward (bi-level: those gradients are never applied).
  void clear_weight_grads();

  /// Plan-layer telemetry of this trainer's cache (see nn/plan.hpp).
  const nn::plan::PlanCache& plans() const { return plans_; }

  const SurrogateSupernet& supernet() const { return supernet_; }
  const std::vector<nn::VarPtr>& weight_parameters() const {
    return weight_params_;
  }
  std::size_t step_counter() const { return step_counter_; }

  State export_state() const;
  /// Restore a snapshot taken on a trainer over the same supernet
  /// shape; throws std::invalid_argument on mismatch.
  void restore_state(const State& state);

 private:
  SurrogateSupernet supernet_;
  std::vector<nn::VarPtr> weight_params_;
  nn::Sgd w_optimizer_;
  nn::CosineSchedule w_schedule_;
  std::size_t step_counter_ = 0;

  /// Compiled-plan machinery for the w-step hot path: plans are keyed on
  /// (op_choice, batch shape); the key buffer and binding vectors are
  /// members so a steady-state planned step allocates nothing.
  nn::plan::PlanCache plans_;
  std::string plan_key_;
  std::vector<const nn::Tensor*> plan_inputs_;
  std::vector<const std::vector<std::size_t>*> plan_labels_;

  /// Sparse-optimizer bookkeeping. A compiled plan's parameter table is
  /// an exact manifest of which gradients a planned step produces, so
  /// the optimizer can run Sgd::step_on over just that set (and the
  /// next step zeroes just that set). `active_plan_` caches the
  /// manifest by plan identity; `wrote_all_` falls back to the dense
  /// sweep after any step without a manifest.
  std::unordered_map<const nn::Var*, std::uint32_t> param_index_;
  const nn::plan::ExecutionPlan* active_plan_ = nullptr;
  std::vector<std::uint32_t> plan_active_;
  bool plan_active_valid_ = false;
  bool wrote_all_ = true;

  void rebuild_plan_active(const nn::plan::ExecutionPlan* plan);
  double dynamic_step(const nn::Dataset& batch,
                      const std::vector<std::size_t>& op_choice,
                      bool record);
};

/// Per-target architecture head: the alpha matrix, its Adam optimizer,
/// and one learned multiplier per constraint. Heads are independent of
/// each other and of the supernet they are stepped against — the
/// campaign orchestrator runs K of them over one SharedWTrainer.
class AlphaLambdaHead {
 public:
  /// Serializable head state (checkpoint support).
  struct State {
    nn::Tensor alpha;
    std::vector<nn::Tensor> adam_m, adam_v;
    std::size_t adam_t = 0;
    std::vector<double> lambdas;
  };

  /// The head keeps a reference to `constraints`; the caller owns them
  /// and must keep them alive for the head's lifetime.
  AlphaLambdaHead(const SearchTopology& topology,
                  const std::vector<Constraint>& constraints,
                  const LightNasConfig& config);

  /// Gumbel-Softmax draw on this head's alpha.
  PathSample sample(double tau, util::Rng& rng) const;

  /// One alpha + lambda update (the validation-phase body of Eq 11):
  /// sampled path with GDAS gates, CE + per-constraint penalty terms,
  /// Adam step on alpha, gradient ascent on each lambda against the
  /// derived architecture's predicted cost. Gradients leaked into the
  /// supernet weights are cleared (bi-level: alpha-only update).
  /// Returns the sampled first-constraint cost (epoch telemetry).
  double alpha_step(const SurrogateSupernet& supernet,
                    const std::vector<nn::VarPtr>& weight_params,
                    const nn::Dataset& batch, double tau, util::Rng& rng);

  space::Architecture derive() const;

  const nn::VarPtr& alpha() const { return alpha_; }
  const std::vector<Constraint>& constraints() const { return *constraints_; }
  std::vector<double> lambda_values() const;

  /// Watchdog cooldown: scales the alpha and lambda step sizes relative
  /// to their configured base values.
  void set_cooldown_scale(double scale);

  State export_state() const;
  /// Restore a snapshot taken on a head over the same topology and
  /// constraint count; throws std::invalid_argument on mismatch.
  void restore_state(const State& state);

 private:
  const SearchTopology* topology_;
  const std::vector<Constraint>* constraints_;
  double alpha_lr_;
  double lambda_lr_;
  double penalty_mu_;
  nn::VarPtr alpha_;
  nn::Adam alpha_optimizer_;
  std::vector<nn::LambdaAscent> lambdas_;
};

}  // namespace lightnas::core
