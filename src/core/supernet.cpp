#include "core/supernet.hpp"

#include <cassert>
#include <cmath>

#include "nn/ops.hpp"
#include "util/rng.hpp"

namespace lightnas::core {

SurrogateSupernet::SurrogateSupernet(const space::SearchSpace& space,
                                     std::size_t feature_dim,
                                     std::size_t num_classes,
                                     const SupernetConfig& config)
    : space_(&space),
      embed_dim_(config.embed_dim),
      base_hidden_(config.base_hidden) {
  util::Rng rng(config.seed);
  stem_ = std::make_unique<nn::Linear>(feature_dim, embed_dim_, rng,
                                       "supernet.stem");

  blocks_.resize(space.num_layers());
  for (std::size_t l = 0; l < space.num_layers(); ++l) {
    blocks_[l].resize(space.num_ops());
    for (std::size_t k = 0; k < space.num_ops(); ++k) {
      const space::Operator& op = space.ops().op(k);
      if (op.kind == space::OpKind::kSkip) continue;  // identity: no weights
      const double branch_scale =
          config.branch_scale > 0.0
              ? config.branch_scale
              : 1.0 / std::sqrt(static_cast<double>(space.num_layers()));
      blocks_[l][k] = std::make_unique<nn::ResidualBlock>(
          embed_dim_, hidden_width(op, space.layers()[l].stage), rng,
          "supernet.l" + std::to_string(l) + ".k" + std::to_string(k),
          branch_scale);
    }
  }
  classifier_ = std::make_unique<nn::Linear>(embed_dim_, num_classes, rng,
                                             "supernet.classifier");
}

std::size_t SurrogateSupernet::hidden_width(const space::Operator& op,
                                            std::size_t stage) const {
  if (op.kind == space::OpKind::kSkip) return 0;
  const double stage_factor = 0.6 + 0.1 * static_cast<double>(stage);
  const double width = static_cast<double>(base_hidden_) *
                       static_cast<double>(op.expansion) *
                       (static_cast<double>(op.kernel) + 1.0) / 4.0 *
                       stage_factor;
  return std::max<std::size_t>(
      4, static_cast<std::size_t>(std::lround(width)));
}

nn::VarPtr SurrogateSupernet::forward_single_path(
    const nn::Tensor& features, const std::vector<std::size_t>& op_choice,
    const std::vector<nn::VarPtr>& gates) const {
  assert(op_choice.size() == space_->num_layers());
  assert(gates.empty() || gates.size() == space_->num_layers());

  nn::VarPtr x = nn::ops::relu(stem_->forward(nn::make_const(features)));
  for (std::size_t l = 0; l < op_choice.size(); ++l) {
    const std::size_t k = op_choice[l];
    assert(k < space_->num_ops());
    const nn::ResidualBlock* block = blocks_[l][k].get();
    const bool gated = !gates.empty() && gates[l] != nullptr;
    // GDAS-style gating of the *whole* operator output, SkipConnect
    // included (out = g * o_k(x), Eq 8): every candidate receives the
    // same credit form <grad, o_k(x)>, so the op-independent trunk
    // component biases all operators symmetrically and the softmax
    // competition is decided by the op-specific residue. Gating only
    // block ops (and not skip) was tried and collapses the search to
    // SkipConnect: blocks then absorb all of the common-mode gradient.
    nn::VarPtr y = (block != nullptr) ? block->forward(x) : x;
    if (gated) y = nn::ops::mul_scalar(y, gates[l]);
    x = std::move(y);
  }
  return classifier_->forward(x);
}

nn::VarPtr SurrogateSupernet::forward_multi_path(
    const nn::Tensor& features, const nn::VarPtr& path_weights) const {
  assert(path_weights->value.rows() == space_->num_layers());
  assert(path_weights->value.cols() == space_->num_ops());

  nn::VarPtr x = nn::ops::relu(stem_->forward(nn::make_const(features)));
  for (std::size_t l = 0; l < space_->num_layers(); ++l) {
    nn::VarPtr mix;
    if (!space_->layers()[l].searchable) {
      // Fixed layers run their fixed candidate unweighted.
      const nn::ResidualBlock* block = blocks_[l][0].get();
      x = (block != nullptr) ? block->forward(x) : x;
      continue;
    }
    for (std::size_t k = 0; k < space_->num_ops(); ++k) {
      const nn::ResidualBlock* block = blocks_[l][k].get();
      nn::VarPtr candidate = (block != nullptr) ? block->forward(x) : x;
      nn::VarPtr weighted = nn::ops::mul_scalar(
          candidate, nn::ops::select(path_weights, l, k));
      mix = mix ? nn::ops::add(mix, weighted) : weighted;
    }
    x = std::move(mix);
  }
  return classifier_->forward(x);
}

std::vector<nn::VarPtr> SurrogateSupernet::weight_parameters() const {
  std::vector<nn::VarPtr> params = stem_->parameters();
  for (const auto& layer : blocks_) {
    for (const auto& block : layer) {
      if (!block) continue;
      for (const nn::VarPtr& p : block->parameters()) params.push_back(p);
    }
  }
  for (const nn::VarPtr& p : classifier_->parameters()) params.push_back(p);
  return params;
}

std::size_t SurrogateSupernet::activations_single_path(
    std::size_t batch) const {
  // Per layer: one hidden activation (width of the active block, bounded
  // by the widest candidate) plus the embed-width output.
  std::size_t widest = 0;
  for (std::size_t k = 0; k < space_->num_ops(); ++k) {
    widest = std::max(widest, hidden_width(space_->ops().op(k)));
  }
  return batch * space_->num_layers() * (widest + embed_dim_);
}

std::size_t SurrogateSupernet::activations_multi_path(
    std::size_t batch) const {
  std::size_t per_layer = 0;
  for (std::size_t k = 0; k < space_->num_ops(); ++k) {
    per_layer += hidden_width(space_->ops().op(k)) + embed_dim_;
  }
  return batch * space_->num_layers() * per_layer;
}

}  // namespace lightnas::core
