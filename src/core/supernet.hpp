#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "nn/data.hpp"
#include "nn/modules.hpp"
#include "space/search_space.hpp"

namespace lightnas::core {

/// Configuration of the surrogate supernet.
struct SupernetConfig {
  /// Embedding width d of the backbone feature stream.
  std::size_t embed_dim = 32;
  /// Base hidden width; an MBConv(k, e) candidate gets a residual block
  /// of hidden width ~ base * e * (k+1)/4, so capacity grows with both
  /// kernel size and expansion ratio exactly as in the real space.
  std::size_t base_hidden = 8;
  /// Residual branch scale. 0 selects 1/sqrt(L) (variance-preserving at
  /// init); larger values speed up block learning at some stability cost.
  double branch_scale = 0.0;
  std::uint64_t seed = 99;
};

/// Trainable weight-sharing supernet over the layer-wise search space.
///
/// This is the repo's substitute for the ImageNet-100 supernet (see
/// DESIGN.md): each (layer, MBConv-candidate) pair owns a residual MLP
/// block whose width scales with the candidate's kernel/expansion, and
/// SkipConnect is a true identity. The search dynamics the paper studies
/// — accuracy improves with capacity, the latency penalty pushes back —
/// are fully real here; only the task is synthetic.
///
/// Both execution modes of the literature are provided:
///  - `forward_single_path`: LightNAS's memory-light mode (Sec 3.3),
///    evaluating exactly one candidate per layer, with optional GDAS-style
///    gate scalars so gradients reach the architecture distribution.
///  - `forward_multi_path`: the FBNet/DARTS mode (Eq 1), evaluating every
///    candidate in every layer weighted by soft path probabilities; used
///    by the baselines and by the memory-cost comparisons.
class SurrogateSupernet {
 public:
  SurrogateSupernet(const space::SearchSpace& space,
                    std::size_t feature_dim, std::size_t num_classes,
                    const SupernetConfig& config);

  const space::SearchSpace& space() const { return *space_; }

  /// Hidden width assigned to an operator candidate (0 for Skip).
  /// Capacity additionally grows with the layer's stage: late stages
  /// (more channels in the real space) learn higher-level features and
  /// benefit more from capacity, mirroring the channel progression of
  /// the macro-architecture.
  std::size_t hidden_width(const space::Operator& op,
                           std::size_t stage = 3) const;

  /// Single-path forward. `op_choice` selects one op per layer (length
  /// L, fixed layers must carry their fixed op). `gates`, when non-empty,
  /// is one 1x1 Var per layer multiplied onto that layer's output
  /// (pass graph-connected gates valued 1.0 for GDAS-style credit
  /// assignment; empty for plain weight training).
  nn::VarPtr forward_single_path(
      const nn::Tensor& features,
      const std::vector<std::size_t>& op_choice,
      const std::vector<nn::VarPtr>& gates = {}) const;

  /// Multi-path forward per Eq (1)/(8)-soft: `path_weights` is an L x K
  /// Var of per-layer op weights (rows of a softmax). Every candidate in
  /// every layer is evaluated — K times the compute and activation
  /// memory of the single-path mode.
  nn::VarPtr forward_multi_path(const nn::Tensor& features,
                                const nn::VarPtr& path_weights) const;

  /// All supernet weights (stem, every candidate block, classifier).
  std::vector<nn::VarPtr> weight_parameters() const;

  /// Activation-memory footprint (floats) of one forward pass at the
  /// given batch size — single-path vs multi-path. Quantifies the
  /// "memory bottleneck" argument of Sec 3.3 / Table 1.
  std::size_t activations_single_path(std::size_t batch) const;
  std::size_t activations_multi_path(std::size_t batch) const;

  std::size_t num_classes() const { return classifier_->out_features(); }
  std::size_t feature_dim() const { return stem_->in_features(); }

 private:
  const space::SearchSpace* space_;
  std::size_t embed_dim_;
  std::size_t base_hidden_;
  std::unique_ptr<nn::Linear> stem_;
  /// blocks_[l][k]: candidate block, nullptr for SkipConnect.
  std::vector<std::vector<std::unique_ptr<nn::ResidualBlock>>> blocks_;
  std::unique_ptr<nn::Linear> classifier_;
};

}  // namespace lightnas::core
