#include "eval/accuracy_model.hpp"

#include <cassert>
#include <cmath>

namespace lightnas::eval {

namespace {

constexpr double kSkipAnchorTop1 = 55.0;   // minimal all-skip stack
constexpr double kMbv2AnchorTop1 = 72.0;   // Table 2: MobileNetV2

}  // namespace

AccuracyModel::AccuracyModel(const space::SearchSpace& space)
    : space_(&space) {
  // Solve B and S so the two anchor architectures land exactly on the
  // paper's numbers for the given asymptote A:
  //   A - B exp(-q_skip / S) = 55   (minimal network)
  //   A - B exp(-q_mbv2 / S) = 72   (MobileNetV2, Table 2)
  const double q0 =
      capacity(space.uniform_architecture(space.ops().skip_index()));
  const double q1 = capacity(space.mobilenet_v2_like());
  assert(q1 > q0);
  const double y0 = asymptote_ - kSkipAnchorTop1;
  const double y1 = asymptote_ - kMbv2AnchorTop1;
  assert(y0 > y1 && y1 > 0.0);
  saturation_ = (q1 - q0) / std::log(y0 / y1);
  range_ = y0 * std::exp(q0 / saturation_);
}

double AccuracyModel::op_capacity(const space::Operator& op) const {
  if (op.kind == space::OpKind::kSkip) return 0.0;
  return std::pow(static_cast<double>(op.expansion) / 6.0, 0.4) *
         (1.0 + 0.3 * (static_cast<double>(op.kernel) - 3.0) / 2.0);
}

double AccuracyModel::stage_weight(std::size_t layer_index) const {
  assert(layer_index < space_->num_layers());
  return 0.6 + 0.1 * static_cast<double>(
                         space_->layers()[layer_index].stage);
}

double AccuracyModel::capacity(const space::Architecture& arch) const {
  assert(arch.num_layers() == space_->num_layers());
  double q = 0.0;
  for (std::size_t l = 0; l < space_->num_layers(); ++l) {
    q += stage_weight(l) * op_capacity(space_->ops().op(arch.op_at(l)));
  }
  return q;
}

double AccuracyModel::top1(const space::Architecture& arch) const {
  const double q = capacity(arch);
  double acc = asymptote_ - range_ * std::exp(-q / saturation_);
  if (arch.with_se()) acc += se_bonus_;
  return acc;
}

double AccuracyModel::top5(const space::Architecture& arch) const {
  return 100.0 - top5_error_ratio_ * (100.0 - top1(arch));
}

double AccuracyModel::quick_top1(const space::Architecture& arch) const {
  return quick_slope_ * top1(arch) + quick_offset_;
}

}  // namespace lightnas::eval
