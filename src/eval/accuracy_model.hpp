#pragma once

#include "space/architecture.hpp"
#include "space/search_space.hpp"

namespace lightnas::eval {

/// Calibrated surrogate of ImageNet top-1/top-5 accuracy after full
/// (360-epoch) training, as a smooth function of architecture capacity.
///
/// This replaces the paper's 4-GPU ImageNet training runs (see DESIGN.md,
/// substitutions table). The functional form is
///
///   top1(arch) = A - B * exp(-q(arch) / S)
///   q(arch)    = sum_l stage_weight(l) * cap(op_l)
///
/// i.e. each non-skip layer contributes capacity that grows with kernel
/// size and expansion ratio, later stages contribute more per block
/// (high-level features benefit most from capacity), and accuracy shows
/// diminishing returns in total capacity. Constants are anchored on the
/// paper's reported numbers: MobileNetV2 (uniform K3_E6) = 72.0 top-1,
/// a minimal all-skip stack ~ 55, and the heaviest all-K7_E6 stack ~ 77.
///
/// Because stage weights rise with depth while the device cost model
/// charges most for early high-resolution layers, capacity is cheapest
/// (per ms) late in the network — so latency-constrained search finds
/// materially better accuracy-per-ms than uniform scaling, reproducing
/// the paper's headline comparisons (Table 2, Fig 9).
class AccuracyModel {
 public:
  explicit AccuracyModel(const space::SearchSpace& space);

  /// Total capacity score q of an architecture.
  double capacity(const space::Architecture& arch) const;

  /// Surrogate ImageNet top-1 (%) after full training.
  double top1(const space::Architecture& arch) const;

  /// Surrogate top-5 (%), derived from top-1 with the empirical error
  /// ratio of the paper's Table 2 (top-5 error ~ 0.315 * top-1 error).
  double top5(const space::Architecture& arch) const;

  /// Surrogate top-1 (%) after the 50-epoch "quick evaluation" protocol
  /// used in the paper's Fig 3 and Fig 9.
  double quick_top1(const space::Architecture& arch) const;

  /// Per-operator capacity factor (0 for Skip).
  double op_capacity(const space::Operator& op) const;

  /// Per-layer stage weighting.
  double stage_weight(std::size_t layer_index) const;

 private:
  const space::SearchSpace* space_;

  // Calibration constants (see class comment and the calibration test).
  double asymptote_ = 82.0;       // A
  double range_ = 0.0;            // B, solved from anchors in ctor
  double saturation_ = 0.0;       // S, solved from anchors in ctor
  double se_bonus_ = 0.45;        // Table-4 average SE gain
  double top5_error_ratio_ = 0.315;
  double quick_slope_ = 0.92;     // 50-epoch proxy: quick = a*top1 + b
  double quick_offset_ = -2.0;
};

}  // namespace lightnas::eval
