#include "eval/detection.hpp"

#include <cassert>

namespace lightnas::eval {

namespace {

// AP anchor: MobileNetV2 (top-1 72.0) scores AP 20.4 in Table 3; the
// fitted slope across the table's backbones is ~0.38 AP per top-1 point.
constexpr double kApAnchor = 20.4;
constexpr double kApSlope = 0.38;

// Sub-metric ratios averaged over the paper's Table 3 rows.
constexpr double kAp50Ratio = 1.69;
constexpr double kAp75Ratio = 1.005;
constexpr double kApSmallRatio = 0.105;
constexpr double kApMediumRatio = 0.975;
constexpr double kApLargeRatio = 1.93;

// SSDLite head (extra feature maps + class/box predictors) on the
// simulated Xavier at batch 8.
constexpr double kHeadLatencyMs = 26.0;

}  // namespace

DetectionEvaluator::DetectionEvaluator(const hw::DeviceProfile& device,
                                       std::size_t batch_size)
    : detection_space_(space::SearchSpace::scaled(1.0, 320)),
      accuracy_(detection_space_),
      cost_(device, batch_size) {}

DetectionResult DetectionEvaluator::evaluate(
    const space::Architecture& arch) const {
  assert(arch.num_layers() == detection_space_.num_layers());
  const double top1 = accuracy_.top1(arch);

  DetectionResult result;
  result.ap = kApAnchor + kApSlope * (top1 - 72.0);
  result.ap50 = result.ap * kAp50Ratio;
  result.ap75 = result.ap * kAp75Ratio;
  result.ap_small = result.ap * kApSmallRatio;
  result.ap_medium = result.ap * kApMediumRatio;
  result.ap_large = result.ap * kApLargeRatio;
  result.latency_ms =
      cost_.network_latency_ms(detection_space_, arch) + kHeadLatencyMs;
  return result;
}

}  // namespace lightnas::eval
