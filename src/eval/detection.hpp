#pragma once

#include "eval/accuracy_model.hpp"
#include "hw/cost_model.hpp"
#include "space/architecture.hpp"
#include "space/search_space.hpp"

namespace lightnas::eval {

/// COCO-style detection metrics of an SSDLite detector built on a given
/// backbone (paper Table 3).
struct DetectionResult {
  double ap = 0.0;
  double ap50 = 0.0;
  double ap75 = 0.0;
  double ap_small = 0.0;
  double ap_medium = 0.0;
  double ap_large = 0.0;
  double latency_ms = 0.0;
};

/// SSDLite-sim: surrogate for training SSDLite on COCO2017 with each
/// backbone (see DESIGN.md substitutions). Detection AP is modelled as an
/// affine function of backbone classification quality — the empirical
/// relationship Table 3 itself demonstrates (better/faster backbones give
/// better/faster detectors) — with the sub-metric ratios taken from the
/// paper's rows. Detector latency = backbone at SSD's 320x320 input plus
/// the SSDLite head measured on the simulated device.
class DetectionEvaluator {
 public:
  DetectionEvaluator(const hw::DeviceProfile& device,
                     std::size_t batch_size = 8);

  DetectionResult evaluate(const space::Architecture& arch) const;

 private:
  space::SearchSpace detection_space_;  // 320x320 variant of the space
  AccuracyModel accuracy_;
  hw::CostModel cost_;
};

}  // namespace lightnas::eval
