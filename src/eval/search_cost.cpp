#include "eval/search_cost.hpp"

namespace lightnas::eval {

std::vector<MethodProfile> method_profiles() {
  std::vector<MethodProfile> profiles;

  MethodProfile darts;
  darts.name = "DARTS";
  darts.paradigm = "Differentiable";
  darts.differentiable = true;
  darts.latency_optimization = false;
  darts.specified_latency = false;
  darts.proxyless = false;
  darts.complexity = "O(K^2)";  // cell-level, all edges x all ops
  darts.explicit_gpu_hours = 24.0;
  darts.implicit_runs = 1.0;  // no latency target to sweep for
  profiles.push_back(darts);

  MethodProfile mnasnet;
  mnasnet.name = "MnasNet";
  mnasnet.paradigm = "Reinforcement";
  mnasnet.differentiable = false;
  mnasnet.latency_optimization = true;
  mnasnet.specified_latency = true;
  mnasnet.proxyless = true;
  mnasnet.complexity = "O(1)";
  mnasnet.explicit_gpu_hours = 40000.0;
  mnasnet.implicit_runs = 1.0;
  profiles.push_back(mnasnet);

  MethodProfile ofa;
  ofa.name = "OFA";
  ofa.paradigm = "Evolution";
  ofa.differentiable = false;
  ofa.latency_optimization = true;
  ofa.specified_latency = true;
  ofa.proxyless = true;
  ofa.complexity = "O(1)";
  ofa.explicit_gpu_hours = 1275.0;
  ofa.implicit_runs = 1.0;
  profiles.push_back(ofa);

  MethodProfile proxyless;
  proxyless.name = "ProxylessNAS";
  proxyless.paradigm = "Differentiable";
  proxyless.differentiable = true;
  proxyless.latency_optimization = true;
  proxyless.specified_latency = false;  // soft penalty, lambda swept
  proxyless.proxyless = true;
  proxyless.complexity = "O(K^2)";  // two-path sampling over K ops
  proxyless.explicit_gpu_hours = 200.0;  // paper Table 2 (216 in Table 1)
  proxyless.implicit_runs = 10.0;        // Sec 2.2: empirically ~10
  profiles.push_back(proxyless);

  MethodProfile fbnet;
  fbnet.name = "FBNet";
  fbnet.paradigm = "Differentiable";
  fbnet.differentiable = true;
  fbnet.latency_optimization = true;
  fbnet.specified_latency = false;  // soft penalty, lambda swept
  fbnet.proxyless = true;
  fbnet.complexity = "O(2^2)";  // as printed in the paper's Table 1
  fbnet.explicit_gpu_hours = 216.0;
  fbnet.implicit_runs = 10.0;
  profiles.push_back(fbnet);

  MethodProfile lightnas;
  lightnas.name = "LightNAS (ours)";
  lightnas.paradigm = "Differentiable";
  lightnas.differentiable = true;
  lightnas.latency_optimization = true;
  lightnas.specified_latency = true;  // lambda learned: LAT -> T
  lightnas.proxyless = true;
  lightnas.complexity = "O(1)";  // single path
  lightnas.explicit_gpu_hours = 10.0;
  lightnas.implicit_runs = 1.0;  // you only search once
  profiles.push_back(lightnas);

  return profiles;
}

}  // namespace lightnas::eval
