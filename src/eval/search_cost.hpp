#pragma once

#include <string>
#include <vector>

namespace lightnas::eval {

/// Feature/cost profile of a NAS framework, mirroring the paper's
/// Table 1. Reported GPU-hours are the literature numbers the paper
/// cites; implicit_runs captures the hidden hyper-parameter sweep a
/// method needs before it lands on a *specified* latency target
/// (Sec 2.2: "empirically 10" trial-and-error runs for soft-penalty
/// differentiable methods).
struct MethodProfile {
  std::string name;
  std::string paradigm;           // Differentiable / RL / Evolution
  bool differentiable = false;
  bool latency_optimization = false;
  bool specified_latency = false;  // can it *hit a given* latency?
  bool proxyless = false;          // searches on the target task/hardware
  std::string complexity;          // per-step optimization complexity
  double explicit_gpu_hours = 0.0; // one search run (literature)
  double implicit_runs = 1.0;      // runs needed to satisfy a target
  double total_gpu_hours() const {
    return explicit_gpu_hours * implicit_runs;
  }
};

/// The six frameworks of the paper's Table 1:
/// DARTS, MnasNet, OFA, ProxylessNAS, FBNet, LightNAS.
std::vector<MethodProfile> method_profiles();

/// Supernet-training cost model for our simulated substrate: converts
/// counted optimizer steps into "supernet-step equivalents", the unit we
/// report next to wall-clock so memory/complexity claims (single-path
/// O(1) vs multi-path O(K)) are quantitative.
struct SimulatedSearchCost {
  std::size_t weight_updates = 0;
  std::size_t alpha_updates = 0;
  /// Paths evaluated per step: 1 for single-path, K for multi-path.
  double paths_per_step = 1.0;
  double step_equivalents() const {
    return static_cast<double>(weight_updates + alpha_updates) *
           paths_per_step;
  }
};

}  // namespace lightnas::eval
