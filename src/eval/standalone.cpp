#include "eval/standalone.hpp"

#include <algorithm>
#include <cassert>

#include "nn/ops.hpp"
#include "nn/optim.hpp"
#include "util/rng.hpp"

namespace lightnas::eval {

StandaloneResult train_standalone(const space::SearchSpace& space,
                                  const space::Architecture& arch,
                                  const nn::SyntheticTask& task,
                                  const core::SupernetConfig& blocks,
                                  const StandaloneConfig& config) {
  assert(arch.num_layers() == space.num_layers());

  core::SupernetConfig block_config = blocks;
  block_config.seed ^= config.seed * 0x1000193ULL;
  const std::size_t num_classes =
      1 + *std::max_element(task.train.labels.begin(),
                            task.train.labels.end());
  // The supernet container doubles as the stand-alone network: we simply
  // always execute the same (fixed) path. Unused candidate blocks stay
  // untouched (their gradients are never populated).
  core::SurrogateSupernet net(space, task.train.feature_dim(), num_classes,
                              block_config);

  nn::Sgd optimizer(net.weight_parameters(), config.lr, config.momentum,
                    config.weight_decay, /*clip_norm=*/5.0);
  const std::size_t total_steps = config.epochs * config.steps_per_epoch;
  const auto warmup_steps = static_cast<std::size_t>(
      config.warmup_fraction * static_cast<double>(total_steps));
  const nn::CosineSchedule schedule(config.lr, total_steps, warmup_steps,
                                    config.lr * 0.2);

  util::Rng rng(config.seed * 0x9e3779b97f4a7c15ULL + 5);
  nn::Batcher batches(task.train, config.batch_size, rng);

  StandaloneResult result;
  std::size_t step_counter = 0;
  for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
    double epoch_loss = 0.0;
    for (std::size_t step = 0; step < config.steps_per_epoch; ++step) {
      const nn::Dataset batch = batches.next();
      optimizer.zero_grad();
      const nn::VarPtr logits =
          net.forward_single_path(batch.features, arch.ops());
      const nn::VarPtr loss =
          nn::ops::softmax_cross_entropy(logits, batch.labels);
      nn::backward(loss);
      optimizer.set_lr(schedule.lr_at(step_counter++));
      optimizer.step();
      epoch_loss += static_cast<double>(loss->value.item());
    }
    result.train_loss =
        epoch_loss / static_cast<double>(config.steps_per_epoch);
  }

  const nn::VarPtr logits =
      net.forward_single_path(task.valid.features, arch.ops());
  const nn::VarPtr loss =
      nn::ops::softmax_cross_entropy(logits, task.valid.labels);
  result.valid_loss = static_cast<double>(loss->value.item());
  result.valid_accuracy = nn::ops::accuracy(logits->value, task.valid.labels);
  return result;
}

}  // namespace lightnas::eval
