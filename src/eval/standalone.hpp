#pragma once

#include <cstdint>

#include "core/supernet.hpp"
#include "nn/data.hpp"
#include "space/architecture.hpp"
#include "space/search_space.hpp"

namespace lightnas::eval {

/// Stand-alone training protocol for a fixed architecture on the
/// surrogate task — the miniature of the paper's "retrain from scratch"
/// evaluation (Sec 4.1), including LR warmup + cosine decay.
struct StandaloneConfig {
  std::size_t epochs = 30;
  std::size_t steps_per_epoch = 16;
  std::size_t batch_size = 64;
  double lr = 0.1;
  double warmup_fraction = 0.05;  // paper: 5 of 360 epochs
  double momentum = 0.9;
  double weight_decay = 4e-5;     // paper's evaluation setting
  std::uint64_t seed = 0;
};

struct StandaloneResult {
  double valid_accuracy = 0.0;
  double valid_loss = 0.0;
  double train_loss = 0.0;
};

/// Train `arch` from scratch (fresh weights) on `task` and report
/// held-out accuracy. Used by integration tests and examples to verify
/// that searched architectures genuinely outperform random ones at
/// comparable cost on the surrogate substrate.
StandaloneResult train_standalone(const space::SearchSpace& space,
                                  const space::Architecture& arch,
                                  const nn::SyntheticTask& task,
                                  const core::SupernetConfig& blocks,
                                  const StandaloneConfig& config);

}  // namespace lightnas::eval
