#include "eval/zoo.hpp"

#include <cassert>
#include <cmath>

#include "util/rng.hpp"

namespace lightnas::eval {

space::Architecture fit_architecture_to_latency(
    const space::SearchSpace& space, const hw::CostModel& cost,
    double target_ms, std::uint64_t seed, std::size_t iterations) {
  util::Rng rng(seed * 0x100000001b3ULL + 0x811c9dc5ULL);
  space::Architecture best = space.random_architecture(rng);
  double best_gap =
      std::abs(cost.network_latency_ms(space, best) - target_ms);
  for (std::size_t i = 0; i < iterations; ++i) {
    const space::Architecture candidate = space.mutate(best, 1, rng);
    const double gap =
        std::abs(cost.network_latency_ms(space, candidate) - target_ms);
    if (gap < best_gap) {
      best = candidate;
      best_gap = gap;
    }
  }
  return best;
}

std::vector<ZooEntry> architecture_zoo(const space::SearchSpace& space,
                                       const hw::CostModel& cost) {
  struct Spec {
    const char* name;
    const char* method;
    double gpu_hours;
    double top1;
    double top5;  // <= 0: not reported
    double latency_ms;
    bool extra;
  };
  // Rows of the paper's Table 2 (excluding LightNets, which the caller
  // produces by actually searching).
  const Spec specs[] = {
      {"MobileNetV2", "Manual", 0, 72.0, 91.0, 20.2, false},
      {"ProxylessNAS", "Differentiable", 200, 74.6, 92.2, 21.2, false},
      {"FBNet-A", "Differentiable", 216, 73.0, 90.9, 21.7, false},
      {"OFA-S", "Evolution", 1275, 72.9, 91.1, 21.4, false},
      {"MnasNet-B1", "Reinforcement", 40000, 74.5, 92.1, 20.1, false},
      {"FBNet-B", "Differentiable", 216, 74.1, 91.8, 23.0, false},
      {"MobileNetV3", "Manual", 0, 75.2, -1, 23.0, true},
      {"MnasNet-A1", "Reinforcement", 40000, 75.2, 92.5, 22.9, true},
      {"ProxylessNAS-24", "Differentiable", 200, 75.1, 92.5, 24.5, false},
      {"UNAS", "Differentiable", 103, 75.3, 92.4, 24.2, false},
      {"FBNet-Xavier", "Differentiable", 186, 74.6, 92.1, 24.1, false},
      {"FBNet-C", "Differentiable", 216, 74.9, 92.3, 26.4, false},
      {"OFA-M", "Evolution", 1275, 75.4, 92.4, 26.3, false},
      {"OFA-L", "Evolution", 1275, 75.8, 92.7, 29.3, false},
      {"ProxylessNAS-29", "Differentiable", 200, 75.3, -1, 29.9, false},
      {"EfficientNet-B0", "Reinforcement", 0, 76.3, -1, 37.2, true},
  };

  std::vector<ZooEntry> zoo;
  std::uint64_t seed = 1;
  for (const Spec& spec : specs) {
    ZooEntry entry;
    entry.name = spec.name;
    entry.method = spec.method;
    entry.search_gpu_hours = spec.gpu_hours;
    entry.reported_top1 = spec.top1;
    entry.reported_top5 = spec.top5;
    entry.reported_latency_ms = spec.latency_ms;
    entry.extra_techniques = spec.extra;
    entry.arch = (entry.name == "MobileNetV2")
                     ? space.mobilenet_v2_like()
                     : fit_architecture_to_latency(
                           space, cost, spec.latency_ms, seed);
    ++seed;
    zoo.push_back(std::move(entry));
  }
  return zoo;
}

}  // namespace lightnas::eval
