#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hw/cost_model.hpp"
#include "space/architecture.hpp"
#include "space/search_space.hpp"

namespace lightnas::eval {

/// A named comparison architecture from the paper's Table 2 / Table 3:
/// the literature-reported numbers plus a stand-in architecture in our
/// search space whose *simulated* latency is fitted to the reported
/// Xavier latency (so it can be pushed through the same evaluation
/// pipeline as our searched LightNets).
struct ZooEntry {
  std::string name;
  std::string method;             // Manual / Differentiable / ...
  double search_gpu_hours = 0.0;  // 0 => "-" (manual design)
  double reported_top1 = 0.0;
  double reported_top5 = 0.0;     // <= 0 => not reported
  double reported_latency_ms = 0.0;
  bool extra_techniques = false;  // the dagger in Table 2 (SE/Swish)
  space::Architecture arch;
};

/// Hill-climb a seeded random architecture until its noise-free simulated
/// latency is as close as possible to `target_ms`.
space::Architecture fit_architecture_to_latency(
    const space::SearchSpace& space, const hw::CostModel& cost,
    double target_ms, std::uint64_t seed, std::size_t iterations = 400);

/// All Table-2 comparison rows. MobileNetV2 is the exact uniform-K3_E6
/// stack; every other entry is latency-fitted.
std::vector<ZooEntry> architecture_zoo(const space::SearchSpace& space,
                                       const hw::CostModel& cost);

}  // namespace lightnas::eval
