#include "hw/cost_model.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "space/flops.hpp"

namespace lightnas::hw {

namespace {

constexpr double kBytesPerElement = 4.0;  // fp32 activations/weights

/// Extra synchronization/cold-start cost paid by *each* isolated per-op
/// measurement when building a lookup table (device sync, cold cache,
/// no inter-kernel pipelining). Summing 22 such entries produces the
/// consistent multi-millisecond LUT offset the paper shows in Fig 5.
constexpr double kIsolationSyncMs = 0.5;

double out_resolution(const space::LayerSpec& layer) {
  return static_cast<double>(
      (layer.in_resolution + static_cast<std::size_t>(layer.stride) - 1) /
      static_cast<std::size_t>(layer.stride));
}

}  // namespace

CostModel::CostModel(DeviceProfile profile, std::size_t batch_size)
    : profile_(std::move(profile)), batch_(batch_size) {
  assert(batch_size > 0);
}

double CostModel::efficiency_for(const KernelWorkload& kernel) const {
  double base = 0.0;
  switch (kernel.kind) {
    case KernelKind::kPointwise: base = profile_.pointwise_efficiency; break;
    case KernelKind::kDepthwise: base = profile_.depthwise_efficiency; break;
    case KernelKind::kDense: base = profile_.dense_efficiency; break;
    case KernelKind::kElementwise: base = 1.0; break;
  }
  // Small channel counts underutilize the SM array.
  const double util =
      kernel.channels /
      (kernel.channels + profile_.half_utilization_channels);
  return base * util;
}

double CostModel::kernel_time_ms(const KernelWorkload& kernel) const {
  double compute_ms = 0.0;
  if (kernel.macs > 0.0) {
    const double eff = efficiency_for(kernel);
    compute_ms = kernel.macs / (profile_.peak_gmacs * 1e9 * eff) * 1e3;
  }
  const double bytes =
      kernel.input_bytes + kernel.weight_bytes + kernel.output_bytes;
  const double memory_ms =
      bytes /
      (profile_.memory_bandwidth_gbs * 1e9 * profile_.memory_efficiency) *
      1e3;
  return std::max(compute_ms, memory_ms);
}

std::vector<KernelWorkload> CostModel::operator_kernels(
    const space::LayerSpec& layer, const space::Operator& op,
    bool with_se) const {
  const double b = static_cast<double>(batch_);
  const double in_res = static_cast<double>(layer.in_resolution);
  const double o_res = out_resolution(layer);
  const double cin = static_cast<double>(layer.in_channels);
  const double cout = static_cast<double>(layer.out_channels);

  std::vector<KernelWorkload> kernels;

  if (op.kind == space::OpKind::kSkip) {
    const bool shape_preserving =
        layer.stride == 1 && layer.in_channels == layer.out_channels;
    if (shape_preserving) {
      return kernels;  // identity: computation-free (Sec 3.1)
    }
    KernelWorkload projection;
    projection.kind = KernelKind::kPointwise;
    projection.macs = b * o_res * o_res * cin * cout;
    projection.input_bytes = b * in_res * in_res * cin * kBytesPerElement;
    projection.weight_bytes = cin * cout * kBytesPerElement;
    projection.output_bytes = b * o_res * o_res * cout * kBytesPerElement;
    projection.channels = cout;
    kernels.push_back(projection);
    return kernels;
  }

  assert(op.kind == space::OpKind::kMBConv);
  const double expanded = cin * static_cast<double>(op.expansion);

  KernelWorkload expand;
  expand.kind = KernelKind::kPointwise;
  expand.macs = b * in_res * in_res * cin * expanded;
  expand.input_bytes = b * in_res * in_res * cin * kBytesPerElement;
  expand.weight_bytes = cin * expanded * kBytesPerElement;
  expand.output_bytes = b * in_res * in_res * expanded * kBytesPerElement;
  expand.channels = expanded;
  kernels.push_back(expand);

  KernelWorkload depthwise;
  depthwise.kind = KernelKind::kDepthwise;
  depthwise.macs = b * o_res * o_res * expanded *
                   static_cast<double>(op.kernel) *
                   static_cast<double>(op.kernel);
  depthwise.input_bytes =
      b * in_res * in_res * expanded * kBytesPerElement;
  depthwise.weight_bytes = expanded * static_cast<double>(op.kernel) *
                           static_cast<double>(op.kernel) *
                           kBytesPerElement;
  depthwise.output_bytes = b * o_res * o_res * expanded * kBytesPerElement;
  depthwise.channels = expanded;
  kernels.push_back(depthwise);

  if (with_se) {
    const double hidden = expanded / 4.0;
    KernelWorkload squeeze;  // global average pool
    squeeze.kind = KernelKind::kElementwise;
    squeeze.input_bytes = b * o_res * o_res * expanded * kBytesPerElement;
    squeeze.output_bytes = b * expanded * kBytesPerElement;
    squeeze.channels = expanded;
    kernels.push_back(squeeze);

    KernelWorkload excite;  // two tiny FC layers fused
    excite.kind = KernelKind::kDense;
    excite.macs = b * expanded * hidden * 2.0;
    excite.input_bytes = b * expanded * kBytesPerElement;
    excite.weight_bytes = expanded * hidden * 2.0 * kBytesPerElement;
    excite.output_bytes = b * expanded * kBytesPerElement;
    excite.channels = hidden;
    kernels.push_back(excite);

    KernelWorkload rescale;  // per-pixel channel rescale
    rescale.kind = KernelKind::kElementwise;
    rescale.input_bytes =
        b * o_res * o_res * expanded * kBytesPerElement;
    rescale.output_bytes =
        b * o_res * o_res * expanded * kBytesPerElement;
    rescale.channels = expanded;
    kernels.push_back(rescale);
  }

  KernelWorkload project;
  project.kind = KernelKind::kPointwise;
  project.macs = b * o_res * o_res * expanded * cout;
  project.input_bytes = b * o_res * o_res * expanded * kBytesPerElement;
  project.weight_bytes = expanded * cout * kBytesPerElement;
  project.output_bytes = b * o_res * o_res * cout * kBytesPerElement;
  project.channels = cout;
  kernels.push_back(project);

  if (layer.stride == 1 && layer.in_channels == layer.out_channels) {
    KernelWorkload residual;  // elementwise shortcut add
    residual.kind = KernelKind::kElementwise;
    residual.input_bytes =
        2.0 * b * o_res * o_res * cout * kBytesPerElement;
    residual.output_bytes = b * o_res * o_res * cout * kBytesPerElement;
    residual.channels = cout;
    kernels.push_back(residual);
  }
  return kernels;
}

LayerTiming CostModel::layer_timing(const space::LayerSpec& layer,
                                    const space::Operator& op, bool with_se,
                                    double prev_output_bytes) const {
  std::vector<KernelWorkload> kernels =
      operator_kernels(layer, op, with_se);
  LayerTiming timing;
  if (kernels.empty()) return timing;

  // Cache residency: when the producing layer's output fits in L2, the
  // first kernel's input reads mostly hit cache.
  if (prev_output_bytes > 0.0 && prev_output_bytes <= profile_.cache_bytes) {
    kernels.front().input_bytes *= (1.0 - profile_.cache_saving);
  }

  for (const KernelWorkload& kernel : kernels) {
    const double t = kernel_time_ms(kernel);
    double compute_ms = 0.0;
    if (kernel.macs > 0.0) {
      compute_ms = kernel.macs /
                   (profile_.peak_gmacs * 1e9 * efficiency_for(kernel)) *
                   1e3;
    }
    // Attribute the kernel to whichever roofline side dominates.
    if (compute_ms >= t) {
      timing.compute_ms += t;
    } else {
      timing.memory_ms += t;
    }
    timing.total_ms += t;
    ++timing.kernels;
  }
  timing.overhead_ms =
      static_cast<double>(timing.kernels) * profile_.kernel_launch_us / 1e3;
  timing.total_ms += timing.overhead_ms;
  return timing;
}

double CostModel::layer_output_bytes(const space::LayerSpec& layer) const {
  const double o_res = out_resolution(layer);
  return static_cast<double>(batch_) * o_res * o_res *
         static_cast<double>(layer.out_channels) * kBytesPerElement;
}

CostModel::NetworkBreakdown CostModel::network_breakdown(
    const space::SearchSpace& space, const space::Architecture& arch) const {
  assert(arch.num_layers() == space.num_layers());
  const double b = static_cast<double>(batch_);
  NetworkBreakdown net;
  double layer_sum_ms = 0.0;

  // --- stem: 3x3 conv stride 2, 3 -> stem channels ---------------------
  const double stem_res = static_cast<double>(space.input_resolution()) / 2.0;
  KernelWorkload stem;
  stem.kind = KernelKind::kDense;
  stem.macs = b * stem_res * stem_res * 3.0 *
              static_cast<double>(space.stem_channels()) * 9.0;
  stem.input_bytes = b * static_cast<double>(space.input_resolution()) *
                     static_cast<double>(space.input_resolution()) * 3.0 *
                     kBytesPerElement;
  stem.weight_bytes = 3.0 * static_cast<double>(space.stem_channels()) *
                      9.0 * kBytesPerElement;
  stem.output_bytes = b * stem_res * stem_res *
                      static_cast<double>(space.stem_channels()) *
                      kBytesPerElement;
  stem.channels = static_cast<double>(space.stem_channels());
  {
    const double t =
        kernel_time_ms(stem) + profile_.kernel_launch_us / 1e3;
    layer_sum_ms += t;
    net.compute_ms += t;  // stem is compute-bound on every profile we ship
  }
  double prev_bytes = stem.output_bytes;

  // --- candidate layers -------------------------------------------------
  for (std::size_t l = 0; l < space.num_layers(); ++l) {
    const space::LayerSpec& layer = space.layers()[l];
    const bool se = arch.with_se() && space::se_applies_at(space, l);
    const LayerTiming t = layer_timing(
        layer, space.ops().op(arch.op_at(l)), se, prev_bytes);
    layer_sum_ms += t.total_ms;
    net.compute_ms += t.compute_ms;
    net.memory_ms += t.memory_ms + t.overhead_ms;
    // Identity skip layers pass the producer's tensor through unchanged,
    // so the cache-interaction context is preserved.
    if (t.kernels > 0) prev_bytes = layer_output_bytes(layer);
  }

  // --- head: 1x1 conv -> pool -> FC -------------------------------------
  const space::LayerSpec& last = space.layers().back();
  const double final_res = out_resolution(last);
  KernelWorkload head_conv;
  head_conv.kind = KernelKind::kPointwise;
  head_conv.macs = b * final_res * final_res *
                   static_cast<double>(last.out_channels) *
                   static_cast<double>(space.head_channels());
  head_conv.input_bytes = b * final_res * final_res *
                          static_cast<double>(last.out_channels) *
                          kBytesPerElement;
  head_conv.weight_bytes = static_cast<double>(last.out_channels) *
                           static_cast<double>(space.head_channels()) *
                           kBytesPerElement;
  head_conv.output_bytes = b * final_res * final_res *
                           static_cast<double>(space.head_channels()) *
                           kBytesPerElement;
  head_conv.channels = static_cast<double>(space.head_channels());

  KernelWorkload pool;
  pool.kind = KernelKind::kElementwise;
  pool.input_bytes = head_conv.output_bytes;
  pool.output_bytes =
      b * static_cast<double>(space.head_channels()) * kBytesPerElement;
  pool.channels = static_cast<double>(space.head_channels());

  KernelWorkload fc;
  fc.kind = KernelKind::kDense;
  fc.macs = b * static_cast<double>(space.head_channels()) *
            static_cast<double>(space.num_classes());
  fc.input_bytes = pool.output_bytes;
  fc.weight_bytes = static_cast<double>(space.head_channels()) *
                    static_cast<double>(space.num_classes()) *
                    kBytesPerElement;
  fc.output_bytes =
      b * static_cast<double>(space.num_classes()) * kBytesPerElement;
  fc.channels = static_cast<double>(space.num_classes());

  for (const KernelWorkload& kernel : {head_conv, pool, fc}) {
    const double t =
        kernel_time_ms(kernel) + profile_.kernel_launch_us / 1e3;
    layer_sum_ms += t;
    if (kernel.kind == KernelKind::kElementwise) {
      net.memory_ms += t;
    } else {
      net.compute_ms += t;
    }
  }

  net.latency_ms =
      profile_.network_overhead_ms + profile_.overlap_factor * layer_sum_ms;
  return net;
}

double CostModel::network_latency_ms(const space::SearchSpace& space,
                                     const space::Architecture& arch) const {
  return network_breakdown(space, arch).latency_ms;
}

double CostModel::network_energy_mj(const space::SearchSpace& space,
                                    const space::Architecture& arch) const {
  const NetworkBreakdown net = network_breakdown(space, arch);
  // W * ms = mJ. Dynamic power applies to busy phases (scaled by the same
  // overlap factor as latency); static power burns for the full run.
  const double dynamic_mj =
      profile_.overlap_factor * (net.compute_ms * profile_.compute_power_w +
                                 net.memory_ms * profile_.memory_power_w);
  return dynamic_mj + net.latency_ms * profile_.static_power_w;
}

double CostModel::isolated_operator_latency_ms(
    const space::LayerSpec& layer, const space::Operator& op,
    bool with_se) const {
  // Isolated measurements never benefit from warm caches or pipelining
  // and pay a per-measurement sync cost.
  const LayerTiming t =
      layer_timing(layer, op, with_se, /*prev_output_bytes=*/0.0);
  if (t.kernels == 0) return kIsolationSyncMs;  // even a no-op sync costs
  return t.total_ms + kIsolationSyncMs;
}

}  // namespace lightnas::hw
