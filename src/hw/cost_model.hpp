#pragma once

#include <cstddef>
#include <vector>

#include "hw/device.hpp"
#include "space/architecture.hpp"
#include "space/search_space.hpp"

namespace lightnas::hw {

/// Kernel class; determines the efficiency bucket in the roofline model.
enum class KernelKind { kPointwise, kDepthwise, kDense, kElementwise };

/// Workload of one GPU kernel: arithmetic plus memory traffic.
struct KernelWorkload {
  KernelKind kind = KernelKind::kPointwise;
  double macs = 0.0;
  double input_bytes = 0.0;
  double weight_bytes = 0.0;
  double output_bytes = 0.0;
  /// Channel dimension driving SM utilization.
  double channels = 1.0;
};

/// Timing breakdown of one macro layer (one operator instance).
struct LayerTiming {
  double total_ms = 0.0;
  double compute_ms = 0.0;   ///< time attributed to compute-bound kernels
  double memory_ms = 0.0;    ///< time attributed to memory-bound kernels
  double overhead_ms = 0.0;  ///< kernel launch overheads
  int kernels = 0;
};

/// Deterministic analytical latency/energy model of a DeviceProfile.
///
/// The network latency decomposes as
///   overhead + overlap * sum_l t_l(context)
/// where t_l depends on the *previous* layer via a cache-residency term —
/// a genuine inter-layer interaction that an additive per-op lookup table
/// cannot express (this is what separates Fig 5 left from Fig 5 right).
class CostModel {
 public:
  CostModel(DeviceProfile profile, std::size_t batch_size = 8);

  const DeviceProfile& profile() const { return profile_; }
  std::size_t batch_size() const { return batch_; }

  /// Roofline time of one kernel in milliseconds (launch overhead
  /// excluded; the caller accounts for it per layer).
  double kernel_time_ms(const KernelWorkload& kernel) const;

  /// Decompose an operator instance into its kernels.
  /// `cached_input_bytes` is the number of input bytes assumed L2-resident
  /// (0 for an isolated measurement).
  std::vector<KernelWorkload> operator_kernels(
      const space::LayerSpec& layer, const space::Operator& op,
      bool with_se) const;

  /// Timing of one operator instance. `prev_output_bytes` enables the
  /// cache-residency discount when the producer's output fits in cache.
  LayerTiming layer_timing(const space::LayerSpec& layer,
                           const space::Operator& op, bool with_se,
                           double prev_output_bytes) const;

  /// Output tensor size of a layer in bytes (batch included).
  double layer_output_bytes(const space::LayerSpec& layer) const;

  /// Deterministic end-to-end latency of an architecture, milliseconds.
  double network_latency_ms(const space::SearchSpace& space,
                            const space::Architecture& arch) const;

  /// Deterministic inference energy of an architecture, millijoules.
  double network_energy_mj(const space::SearchSpace& space,
                           const space::Architecture& arch) const;

  /// Latency of one operator measured in isolation (cold cache, its own
  /// sync overhead) — how lookup-table entries are built in practice.
  /// The paper's Fig 5 (right) shows why this is systematically biased.
  double isolated_operator_latency_ms(const space::LayerSpec& layer,
                                      const space::Operator& op,
                                      bool with_se = false) const;

 private:
  struct NetworkBreakdown {
    double latency_ms = 0.0;
    double compute_ms = 0.0;
    double memory_ms = 0.0;
  };
  NetworkBreakdown network_breakdown(const space::SearchSpace& space,
                                     const space::Architecture& arch) const;

  double efficiency_for(const KernelWorkload& kernel) const;

  DeviceProfile profile_;
  std::size_t batch_;
};

}  // namespace lightnas::hw
