#include "hw/device.hpp"

namespace lightnas::hw {

DeviceProfile DeviceProfile::jetson_xavier_maxn() {
  DeviceProfile d;
  d.name = "Jetson-AGX-Xavier-MAXN";
  // Volta iGPU, 512 CUDA cores @ ~1.4 GHz: ~1.4 TFLOPs fp32 ≈ 700 GMAC/s
  // dense peak; LPDDR4x ~137 GB/s. Values below are calibrated so the
  // all-K3_E6 architecture (MobileNetV2-like) lands at ~20.2 ms for a
  // batch of 8 at 224x224, matching the paper's Table 2 anchor.
  d.peak_gmacs = 700.0;
  d.memory_bandwidth_gbs = 137.0;
  d.pointwise_efficiency = 0.55;
  d.depthwise_efficiency = 0.12;
  d.dense_efficiency = 0.55;
  d.memory_efficiency = 0.80;
  d.half_utilization_channels = 48.0;
  d.kernel_launch_us = 11.0;
  d.network_overhead_ms = 1.3;
  d.overlap_factor = 0.93;
  d.cache_bytes = 4.0 * 1024 * 1024;
  d.cache_saving = 0.65;
  d.compute_power_w = 19.0;
  d.memory_power_w = 10.0;
  d.static_power_w = 7.5;
  d.latency_noise_ms = 0.03;
  d.energy_noise_frac = 0.02;
  return d;
}

DeviceProfile DeviceProfile::jetson_xavier_30w() {
  // nvpmodel 30W ALL: GPU ~900 MHz (vs 1.4 GHz), EMC ~1.6 GHz (vs 2.1).
  DeviceProfile d = jetson_xavier_maxn();
  d.name = "Jetson-AGX-Xavier-30W";
  d.peak_gmacs = 450.0;
  d.memory_bandwidth_gbs = 102.0;
  d.compute_power_w = 13.0;
  d.memory_power_w = 7.0;
  d.static_power_w = 6.0;
  return d;
}

DeviceProfile DeviceProfile::jetson_xavier_15w() {
  // nvpmodel 15W: GPU ~670 MHz, EMC ~1.33 GHz, fewer active cores.
  DeviceProfile d = jetson_xavier_maxn();
  d.name = "Jetson-AGX-Xavier-15W";
  d.peak_gmacs = 235.0;
  d.memory_bandwidth_gbs = 85.0;
  d.kernel_launch_us = 14.0;
  d.compute_power_w = 7.0;
  d.memory_power_w = 4.5;
  d.static_power_w = 3.5;
  return d;
}

DeviceProfile DeviceProfile::jetson_nano_like() {
  DeviceProfile d;
  d.name = "Jetson-Nano-like";
  d.peak_gmacs = 230.0;
  d.memory_bandwidth_gbs = 25.0;
  d.pointwise_efficiency = 0.38;
  d.depthwise_efficiency = 0.06;
  d.dense_efficiency = 0.50;
  d.memory_efficiency = 0.65;
  d.half_utilization_channels = 32.0;
  d.kernel_launch_us = 18.0;
  d.network_overhead_ms = 2.0;
  d.overlap_factor = 0.95;
  d.cache_bytes = 1.0 * 1024 * 1024;
  d.cache_saving = 0.55;
  d.compute_power_w = 7.5;
  d.memory_power_w = 3.5;
  d.static_power_w = 2.0;
  d.latency_noise_ms = 0.08;
  d.energy_noise_frac = 0.03;
  return d;
}

DeviceProfile DeviceProfile::edge_accelerator_like() {
  DeviceProfile d;
  d.name = "Edge-Accelerator-like";
  d.peak_gmacs = 2000.0;
  d.memory_bandwidth_gbs = 34.0;
  d.pointwise_efficiency = 0.80;   // systolic arrays love GEMM
  d.depthwise_efficiency = 0.03;   // ...and hate depthwise
  d.dense_efficiency = 0.85;
  d.memory_efficiency = 0.60;
  d.half_utilization_channels = 96.0;
  d.kernel_launch_us = 30.0;
  d.network_overhead_ms = 0.8;
  d.overlap_factor = 0.90;
  d.cache_bytes = 8.0 * 1024 * 1024;
  d.cache_saving = 0.75;
  d.compute_power_w = 4.0;
  d.memory_power_w = 2.0;
  d.static_power_w = 1.0;
  d.latency_noise_ms = 0.02;
  d.energy_noise_frac = 0.015;
  return d;
}

}  // namespace lightnas::hw
