#pragma once

#include <string>

namespace lightnas::hw {

/// Analytical profile of an embedded inference device.
///
/// This is the repo's stand-in for physical hardware (the paper measures a
/// Nvidia Jetson AGX Xavier in MAXN mode). The numbers parameterize a
/// roofline-style cost model: each kernel is either compute-bound
/// (MACs / effective-throughput) or memory-bound (bytes / bandwidth) and
/// pays a fixed launch overhead. Depthwise convolutions have very low
/// arithmetic intensity and effective utilization, which is precisely why
/// FLOPs is a poor latency proxy on real devices (paper Fig. 2).
struct DeviceProfile {
  std::string name;

  // --- throughput ---------------------------------------------------
  double peak_gmacs = 1000.0;          ///< peak multiply-accumulates / s, in 1e9
  double memory_bandwidth_gbs = 100.0; ///< DRAM bandwidth, GB/s

  /// Effective utilization of peak throughput per kernel class.
  double pointwise_efficiency = 0.45;  ///< 1x1 convolutions (GEMM-like)
  double depthwise_efficiency = 0.08;  ///< depthwise kxk (bandwidth starved)
  double dense_efficiency = 0.55;      ///< stem conv / head conv / FC
  double memory_efficiency = 0.70;     ///< achieved fraction of peak DRAM bw

  /// Channel count at which a kernel reaches half of its class
  /// efficiency; small layers underutilize the SMs.
  double half_utilization_channels = 48.0;

  // --- overheads ------------------------------------------------------
  double kernel_launch_us = 11.0;   ///< per-kernel dispatch latency
  double network_overhead_ms = 1.1; ///< per-inference fixed cost (I/O, sync)

  /// Fraction of the naive per-layer time sum actually observed on a
  /// full-network run: consecutive kernels pipeline/fuse slightly.
  double overlap_factor = 0.93;

  /// L2/SLC cache size in bytes. When one layer's output fits, the next
  /// layer's input reads mostly hit cache — an inter-layer interaction a
  /// per-op lookup table cannot represent.
  double cache_bytes = 4.0 * 1024 * 1024;
  /// Fraction of input-read traffic saved on a cache hit.
  double cache_saving = 0.65;

  // --- energy ---------------------------------------------------------
  double compute_power_w = 26.0;  ///< dynamic power when compute-bound
  double memory_power_w = 13.0;   ///< dynamic power when memory-bound
  double static_power_w = 9.0;    ///< rail/idle power drawn for the whole run

  // --- measurement noise ----------------------------------------------
  double latency_noise_ms = 0.03;   ///< repeat-measurement jitter (stddev)
  double energy_noise_frac = 0.02;  ///< thermal noise on energy (relative)

  /// Jetson AGX Xavier, MAXN power mode, batch 8 — the paper's platform.
  static DeviceProfile jetson_xavier_maxn();
  /// Xavier capped at the 30 W nvpmodel: lower GPU/EMC clocks. The paper
  /// measures under MAXN; these modes exercise constraint retargeting
  /// when the deployment power budget changes.
  static DeviceProfile jetson_xavier_30w();
  /// Xavier capped at the 15 W nvpmodel (half the GPU clocks again).
  static DeviceProfile jetson_xavier_15w();
  /// A smaller, bandwidth-starved device (Jetson-Nano-like) used by the
  /// generality tests and the custom-hardware example.
  static DeviceProfile jetson_nano_like();
  /// A systolic-array accelerator profile: very high GEMM efficiency,
  /// punishing depthwise ops — exercises predictor retargeting.
  static DeviceProfile edge_accelerator_like();
};

}  // namespace lightnas::hw
