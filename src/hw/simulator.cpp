#include "hw/simulator.hpp"

#include <algorithm>
#include <stdexcept>

namespace lightnas::hw {

const char* to_string(MeasurementStatus status) {
  switch (status) {
    case MeasurementStatus::kOk: return "ok";
    case MeasurementStatus::kTransientFailure: return "transient_failure";
    case MeasurementStatus::kTimeout: return "timeout";
  }
  return "unknown";
}

HardwareSimulator::HardwareSimulator(DeviceProfile profile,
                                     std::size_t batch_size,
                                     std::uint64_t seed)
    : model_(std::move(profile), batch_size), rng_(seed) {}

double HardwareSimulator::apply_value_faults(double clean_value) {
  if (!faults_.enabled()) return clean_value;
  double value = clean_value;
  if (faults_.drift_per_measurement > 0.0) {
    drift_state_ += rng_.normal(0.0, faults_.drift_per_measurement);
    drift_state_ = std::clamp(drift_state_, 1.0 - faults_.drift_max_frac,
                              1.0 + faults_.drift_max_frac);
    value *= drift_state_;
  }
  if (faults_.outlier_prob > 0.0 && rng_.bernoulli(faults_.outlier_prob)) {
    value *= rng_.uniform(faults_.outlier_scale_lo,
                          faults_.outlier_scale_hi);
  }
  return value;
}

Measurement HardwareSimulator::apply_faults(double clean_value) {
  if (faults_.enabled()) {
    if (faults_.transient_failure_prob > 0.0 &&
        rng_.bernoulli(faults_.transient_failure_prob)) {
      return {MeasurementStatus::kTransientFailure, 0.0};
    }
    if (faults_.hang_prob > 0.0 && rng_.bernoulli(faults_.hang_prob)) {
      return {MeasurementStatus::kTimeout, 0.0};
    }
  }
  return {MeasurementStatus::kOk, apply_value_faults(clean_value)};
}

double HardwareSimulator::measure_latency_ms(
    const space::SearchSpace& space, const space::Architecture& arch) {
  const double truth = model_.network_latency_ms(space, arch);
  return apply_value_faults(
      std::max(0.0, truth + rng_.normal(0.0, profile().latency_noise_ms)));
}

double HardwareSimulator::measure_latency_ms(
    const space::SearchSpace& space, const space::Architecture& arch,
    std::size_t repeats) {
  if (repeats == 0) {
    // An assert here vanishes in NDEBUG builds and the division below
    // silently returns NaN into the measurement dataset.
    throw std::invalid_argument(
        "HardwareSimulator::measure_latency_ms: repeats must be > 0");
  }
  double total = 0.0;
  for (std::size_t i = 0; i < repeats; ++i) {
    total += measure_latency_ms(space, arch);
  }
  return total / static_cast<double>(repeats);
}

double HardwareSimulator::measure_energy_mj(
    const space::SearchSpace& space, const space::Architecture& arch) {
  // Thermal state wanders slowly around 1.0: successive measurements are
  // correlated, exactly like a heating/cooling board.
  thermal_state_ += rng_.normal(0.0, 0.004);
  thermal_state_ = std::clamp(thermal_state_, 0.97, 1.05);
  const double truth = model_.network_energy_mj(space, arch);
  const double relative_noise =
      rng_.normal(0.0, profile().energy_noise_frac);
  return apply_value_faults(
      std::max(0.0, truth * thermal_state_ * (1.0 + relative_noise)));
}

Measurement HardwareSimulator::try_measure_latency_ms(
    const space::SearchSpace& space, const space::Architecture& arch) {
  const double truth = model_.network_latency_ms(space, arch);
  return apply_faults(
      std::max(0.0, truth + rng_.normal(0.0, profile().latency_noise_ms)));
}

Measurement HardwareSimulator::try_measure_energy_mj(
    const space::SearchSpace& space, const space::Architecture& arch) {
  thermal_state_ += rng_.normal(0.0, 0.004);
  thermal_state_ = std::clamp(thermal_state_, 0.97, 1.05);
  const double truth = model_.network_energy_mj(space, arch);
  const double relative_noise =
      rng_.normal(0.0, profile().energy_noise_frac);
  return apply_faults(
      std::max(0.0, truth * thermal_state_ * (1.0 + relative_noise)));
}

double HardwareSimulator::measure_isolated_op_ms(
    const space::LayerSpec& layer, const space::Operator& op, bool with_se) {
  const double truth =
      model_.isolated_operator_latency_ms(layer, op, with_se);
  return std::max(0.0,
                  truth + rng_.normal(0.0, profile().latency_noise_ms));
}

}  // namespace lightnas::hw
