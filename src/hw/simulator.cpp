#include "hw/simulator.hpp"

#include <algorithm>
#include <cassert>

namespace lightnas::hw {

HardwareSimulator::HardwareSimulator(DeviceProfile profile,
                                     std::size_t batch_size,
                                     std::uint64_t seed)
    : model_(std::move(profile), batch_size), rng_(seed) {}

double HardwareSimulator::measure_latency_ms(
    const space::SearchSpace& space, const space::Architecture& arch) {
  const double truth = model_.network_latency_ms(space, arch);
  return std::max(0.0,
                  truth + rng_.normal(0.0, profile().latency_noise_ms));
}

double HardwareSimulator::measure_latency_ms(
    const space::SearchSpace& space, const space::Architecture& arch,
    std::size_t repeats) {
  assert(repeats > 0);
  double total = 0.0;
  for (std::size_t i = 0; i < repeats; ++i) {
    total += measure_latency_ms(space, arch);
  }
  return total / static_cast<double>(repeats);
}

double HardwareSimulator::measure_energy_mj(
    const space::SearchSpace& space, const space::Architecture& arch) {
  // Thermal state wanders slowly around 1.0: successive measurements are
  // correlated, exactly like a heating/cooling board.
  thermal_state_ += rng_.normal(0.0, 0.004);
  thermal_state_ = std::clamp(thermal_state_, 0.97, 1.05);
  const double truth = model_.network_energy_mj(space, arch);
  const double relative_noise =
      rng_.normal(0.0, profile().energy_noise_frac);
  return std::max(0.0, truth * thermal_state_ * (1.0 + relative_noise));
}

double HardwareSimulator::measure_isolated_op_ms(
    const space::LayerSpec& layer, const space::Operator& op, bool with_se) {
  const double truth =
      model_.isolated_operator_latency_ms(layer, op, with_se);
  return std::max(0.0,
                  truth + rng_.normal(0.0, profile().latency_noise_ms));
}

}  // namespace lightnas::hw
