#pragma once

#include <cstdint>

#include "hw/cost_model.hpp"
#include "util/rng.hpp"

namespace lightnas::hw {

/// The "device on the bench": wraps the deterministic CostModel with the
/// measurement imperfections a real profiling campaign sees — repeat
/// jitter on latency and slow thermal drift on energy (the paper calls
/// the latter out explicitly in Sec 4.3). All predictor training data is
/// drawn through this class, never from the noise-free model, so the
/// predictors are evaluated under realistic conditions.
class HardwareSimulator {
 public:
  HardwareSimulator(DeviceProfile profile, std::size_t batch_size = 8,
                    std::uint64_t seed = 42);

  const CostModel& model() const { return model_; }
  const DeviceProfile& profile() const { return model_.profile(); }

  /// One noisy end-to-end latency measurement, in milliseconds.
  double measure_latency_ms(const space::SearchSpace& space,
                            const space::Architecture& arch);

  /// Mean of `repeats` measurements (standard profiling practice).
  double measure_latency_ms(const space::SearchSpace& space,
                            const space::Architecture& arch,
                            std::size_t repeats);

  /// One noisy energy measurement, in millijoules. Includes a slowly
  /// wandering thermal state shared across successive measurements.
  double measure_energy_mj(const space::SearchSpace& space,
                           const space::Architecture& arch);

  /// Noisy isolated per-operator measurement (lookup-table construction).
  double measure_isolated_op_ms(const space::LayerSpec& layer,
                                const space::Operator& op,
                                bool with_se = false);

 private:
  CostModel model_;
  util::Rng rng_;
  double thermal_state_ = 1.0;
};

}  // namespace lightnas::hw
