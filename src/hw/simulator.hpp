#pragma once

#include <cstdint>

#include "hw/cost_model.hpp"
#include "util/rng.hpp"

namespace lightnas::hw {

/// Adversarial imperfections of a real profiling campaign, injected on
/// top of the simulator's baseline jitter/thermal noise. Every robustness
/// mechanism in the repo (retry, outlier rejection, watchdog) is
/// exercised against this spec rather than against hand-crafted unit
/// fixtures — the same substitution philosophy as the cost model itself.
///
/// All probabilities default to zero, so a default-constructed spec is a
/// no-op and the simulator behaves exactly as before.
struct FaultSpec {
  /// Probability that a measurement is an outlier spike (background
  /// interference: another process grabbing the GPU, a DVFS transition).
  /// The spike multiplies the true value by uniform(outlier_scale_lo,
  /// outlier_scale_hi).
  double outlier_prob = 0.0;
  double outlier_scale_lo = 2.0;
  double outlier_scale_hi = 8.0;

  /// Probability that a measurement fails transiently (profiler hiccup,
  /// lost serial line) — no value is produced; callers should retry.
  double transient_failure_prob = 0.0;

  /// Probability that a measurement hangs until the campaign's timeout
  /// fires — no value is produced, but the attempt cost is much higher
  /// than a plain failure (tracked by the campaign report).
  double hang_prob = 0.0;

  /// Per-measurement multiplicative calibration drift (random walk step
  /// stddev, relative). Models a power sensor or timer slowly drifting
  /// out of calibration between recalibrations; bounded at +/-
  /// drift_max_frac.
  double drift_per_measurement = 0.0;
  double drift_max_frac = 0.05;

  bool enabled() const {
    return outlier_prob > 0.0 || transient_failure_prob > 0.0 ||
           hang_prob > 0.0 || drift_per_measurement > 0.0;
  }
};

/// Outcome of a single fault-aware measurement attempt.
enum class MeasurementStatus {
  kOk,
  kTransientFailure,  ///< no value; retry is cheap
  kTimeout,           ///< no value; the attempt burned the full timeout
};

struct Measurement {
  MeasurementStatus status = MeasurementStatus::kOk;
  double value = 0.0;

  bool ok() const { return status == MeasurementStatus::kOk; }
};

const char* to_string(MeasurementStatus status);

/// The "device on the bench": wraps the deterministic CostModel with the
/// measurement imperfections a real profiling campaign sees — repeat
/// jitter on latency, slow thermal drift on energy (the paper calls the
/// latter out explicitly in Sec 4.3), and, when a FaultSpec is installed,
/// the outliers / transient failures / hangs / calibration drift that
/// real 10k-sample campaigns routinely hit. All predictor training data
/// is drawn through this class, never from the noise-free model, so the
/// predictors are evaluated under realistic conditions.
class HardwareSimulator {
 public:
  HardwareSimulator(DeviceProfile profile, std::size_t batch_size = 8,
                    std::uint64_t seed = 42);

  const CostModel& model() const { return model_; }
  const DeviceProfile& profile() const { return model_.profile(); }

  /// Install (or clear, with a default-constructed spec) the fault model.
  void set_fault_spec(const FaultSpec& spec) { faults_ = spec; }
  const FaultSpec& fault_spec() const { return faults_; }

  /// Reset the calibration-drift state, as a real campaign's periodic
  /// recalibration pass would.
  void recalibrate() { drift_state_ = 1.0; }
  /// Current multiplicative calibration error (1.0 = calibrated).
  double drift_state() const { return drift_state_; }

  /// One noisy end-to-end latency measurement, in milliseconds. Injects
  /// outlier spikes and calibration drift when a fault spec is installed,
  /// but always produces a value (the pre-fault-model API).
  double measure_latency_ms(const space::SearchSpace& space,
                            const space::Architecture& arch);

  /// Mean of `repeats` measurements (standard profiling practice).
  /// Throws std::invalid_argument when repeats == 0.
  double measure_latency_ms(const space::SearchSpace& space,
                            const space::Architecture& arch,
                            std::size_t repeats);

  /// One noisy energy measurement, in millijoules. Includes a slowly
  /// wandering thermal state shared across successive measurements.
  double measure_energy_mj(const space::SearchSpace& space,
                           const space::Architecture& arch);

  /// Fault-aware measurement attempts: may report a transient failure or
  /// a timeout instead of a value. Robust campaigns go through these.
  Measurement try_measure_latency_ms(const space::SearchSpace& space,
                                     const space::Architecture& arch);
  Measurement try_measure_energy_mj(const space::SearchSpace& space,
                                    const space::Architecture& arch);

  /// Noisy isolated per-operator measurement (lookup-table construction).
  double measure_isolated_op_ms(const space::LayerSpec& layer,
                                const space::Operator& op,
                                bool with_se = false);

 private:
  /// Roll failure/timeout dice; advance drift; apply outlier scaling.
  Measurement apply_faults(double clean_value);
  /// Outlier + drift only — for the always-a-value legacy API.
  double apply_value_faults(double clean_value);

  CostModel model_;
  util::Rng rng_;
  FaultSpec faults_;
  double thermal_state_ = 1.0;
  double drift_state_ = 1.0;
};

}  // namespace lightnas::hw
