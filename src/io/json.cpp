#include "io/json.hpp"

#include <cassert>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace lightnas::io {

Json Json::array() {
  Json j;
  j.type_ = Type::kArray;
  return j;
}

Json Json::object() {
  Json j;
  j.type_ = Type::kObject;
  return j;
}

bool Json::as_bool() const {
  assert(type_ == Type::kBool);
  return bool_;
}

double Json::as_number() const {
  assert(type_ == Type::kNumber);
  return number_;
}

const std::string& Json::as_string() const {
  assert(type_ == Type::kString);
  return string_;
}

const std::vector<Json>& Json::as_array() const {
  assert(type_ == Type::kArray);
  return array_;
}

const std::map<std::string, Json>& Json::as_object() const {
  assert(type_ == Type::kObject);
  return object_;
}

void Json::push_back(Json value) {
  assert(type_ == Type::kArray);
  array_.push_back(std::move(value));
}

void Json::set(const std::string& key, Json value) {
  assert(type_ == Type::kObject);
  object_[key] = std::move(value);
}

bool Json::contains(const std::string& key) const {
  assert(type_ == Type::kObject);
  return object_.count(key) != 0;
}

const Json& Json::at(const std::string& key) const {
  assert(type_ == Type::kObject);
  auto it = object_.find(key);
  if (it == object_.end()) {
    throw std::runtime_error("json: missing key '" + key + "'");
  }
  return it->second;
}

const Json& Json::at(std::size_t index) const {
  assert(type_ == Type::kArray);
  if (index >= array_.size()) {
    throw std::runtime_error("json: index out of range");
  }
  return array_[index];
}

std::size_t Json::size() const {
  if (type_ == Type::kArray) return array_.size();
  if (type_ == Type::kObject) return object_.size();
  return 0;
}

namespace {

void dump_string(const std::string& s, std::string& out) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void dump_number(double v, std::string& out) {
  // JSON has no literal for NaN/inf; "%g" would emit "nan"/"inf", which
  // our own parser (and every other one) rejects. Emit null instead;
  // readers map null back to NaN (Json::number_or_nan, to_doubles).
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    out += buf;
    return;
  }
  // 17 significant digits round-trip any IEEE double exactly — required
  // for bit-for-bit checkpoint restore (lambda, RNG-derived doubles).
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

}  // namespace

std::string Json::dump() const {
  std::string out;
  switch (type_) {
    case Type::kNull:
      out = "null";
      break;
    case Type::kBool:
      out = bool_ ? "true" : "false";
      break;
    case Type::kNumber:
      dump_number(number_, out);
      break;
    case Type::kString:
      dump_string(string_, out);
      break;
    case Type::kArray: {
      out = "[";
      bool first = true;
      for (const Json& v : array_) {
        if (!first) out += ',';
        first = false;
        out += v.dump();
      }
      out += ']';
      break;
    }
    case Type::kObject: {
      out = "{";
      bool first = true;
      for (const auto& [key, value] : object_) {
        if (!first) out += ',';
        first = false;
        dump_string(key, out);
        out += ':';
        out += value.dump();
      }
      out += '}';
      break;
    }
  }
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Json parse() {
    Json value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    throw std::runtime_error("json parse error at offset " +
                             std::to_string(pos_) + ": " + message);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool try_consume(const std::string& literal) {
    if (text_.compare(pos_, literal.size(), literal) == 0) {
      pos_ += literal.size();
      return true;
    }
    return false;
  }

  Json parse_value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return Json(parse_string());
    if (try_consume("null")) return Json();
    if (try_consume("true")) return Json(true);
    if (try_consume("false")) return Json(false);
    return parse_number();
  }

  Json parse_object() {
    expect('{');
    Json obj = Json::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.set(key, parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return obj;
    }
  }

  Json parse_array() {
    expect('[');
    Json arr = Json::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    while (true) {
      arr.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return arr;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("bad escape");
        char esc = text_[pos_++];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) fail("bad \\u escape");
            const std::string hex = text_.substr(pos_, 4);
            pos_ += 4;
            const auto code =
                static_cast<unsigned>(std::stoul(hex, nullptr, 16));
            // We only emit \u for control chars; decode BMP as UTF-8.
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default: fail("unknown escape");
        }
      } else {
        out += c;
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    try {
      return Json(std::stod(text_.substr(start, pos_ - start)));
    } catch (const std::exception&) {
      fail("malformed number");
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

Json Json::parse(const std::string& text) {
  return Parser(text).parse();
}

Json Json::from_doubles(const std::vector<double>& values) {
  Json arr = Json::array();
  for (double v : values) arr.push_back(Json(v));
  return arr;
}

Json Json::from_floats(const std::vector<float>& values) {
  Json arr = Json::array();
  for (float v : values) arr.push_back(Json(static_cast<double>(v)));
  return arr;
}

double Json::number_or_nan() const {
  if (type_ == Type::kNull) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  return as_number();
}

std::vector<double> Json::to_doubles() const {
  std::vector<double> out;
  out.reserve(as_array().size());
  for (const Json& v : as_array()) out.push_back(v.number_or_nan());
  return out;
}

std::vector<float> Json::to_floats() const {
  std::vector<float> out;
  out.reserve(as_array().size());
  for (const Json& v : as_array()) {
    out.push_back(static_cast<float>(v.number_or_nan()));
  }
  return out;
}

void write_json_file(const std::string& path, const Json& value) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open for write: " + path);
  out << value.dump();
  if (!out.good()) throw std::runtime_error("write failed: " + path);
}

void write_json_file_atomic(const std::string& path, const Json& value) {
  // Write-temp-then-rename so a crash mid-write never leaves a torn
  // artifact at `path` — essential for checkpoints a resume depends on.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) throw std::runtime_error("cannot open for write: " + tmp);
    out << value.dump();
    out.flush();
    if (!out.good()) throw std::runtime_error("write failed: " + tmp);
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    throw std::runtime_error("atomic rename failed for: " + path);
  }
}

Json read_json_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open for read: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return Json::parse(buffer.str());
}

}  // namespace lightnas::io
