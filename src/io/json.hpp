#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace lightnas::io {

/// Minimal JSON document model — enough to persist predictors, datasets
/// and search results without external dependencies. Numbers are stored
/// as double (round-trip safe for the float32 weights we serialize);
/// object keys keep insertion order irrelevant (std::map).
class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() : type_(Type::kNull) {}
  explicit Json(bool b) : type_(Type::kBool), bool_(b) {}
  explicit Json(double v) : type_(Type::kNumber), number_(v) {}
  explicit Json(int v) : Json(static_cast<double>(v)) {}
  explicit Json(std::size_t v) : Json(static_cast<double>(v)) {}
  explicit Json(std::string s) : type_(Type::kString), string_(std::move(s)) {}
  explicit Json(const char* s) : Json(std::string(s)) {}

  static Json array();
  static Json object();

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }

  // --- accessors (assert on type mismatch) ---------------------------
  bool as_bool() const;
  double as_number() const;
  /// Like as_number(), but maps null to NaN — the reader-side half of
  /// the "non-finite doubles serialize as null" convention.
  double number_or_nan() const;
  const std::string& as_string() const;
  const std::vector<Json>& as_array() const;
  const std::map<std::string, Json>& as_object() const;

  // --- builders --------------------------------------------------------
  void push_back(Json value);                       // array
  void set(const std::string& key, Json value);     // object
  bool contains(const std::string& key) const;      // object
  const Json& at(const std::string& key) const;     // object
  const Json& at(std::size_t index) const;          // array
  std::size_t size() const;                         // array/object

  /// Compact serialization (no insignificant whitespace).
  std::string dump() const;

  /// Parse; throws std::runtime_error with position info on bad input.
  static Json parse(const std::string& text);

  // --- convenience for numeric vectors --------------------------------
  static Json from_doubles(const std::vector<double>& values);
  static Json from_floats(const std::vector<float>& values);
  std::vector<double> to_doubles() const;
  std::vector<float> to_floats() const;

 private:
  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Json> array_;
  std::map<std::string, Json> object_;
};

/// Whole-file helpers; throw std::runtime_error on I/O failure.
void write_json_file(const std::string& path, const Json& value);
/// Crash-safe variant: writes `path + ".tmp"` then renames over `path`,
/// so readers never observe a torn file. Used for checkpoints.
void write_json_file_atomic(const std::string& path, const Json& value);
Json read_json_file(const std::string& path);

}  // namespace lightnas::io
