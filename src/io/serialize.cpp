#include "io/serialize.hpp"

#include <stdexcept>

namespace lightnas::io {

namespace {

constexpr int kFormatVersion = 1;

void check_header(const Json& json, const std::string& kind) {
  if (!json.contains("kind") || json.at("kind").as_string() != kind) {
    throw std::runtime_error("file is not a '" + kind + "' artifact");
  }
  if (static_cast<int>(json.at("version").as_number()) != kFormatVersion) {
    throw std::runtime_error("unsupported '" + kind + "' format version");
  }
}

}  // namespace

// --- predictors ---------------------------------------------------------

Json predictor_to_json(const predictors::MlpPredictor& predictor) {
  const predictors::MlpPredictor::State state = predictor.export_state();
  Json json = Json::object();
  json.set("kind", Json("lightnas.predictor.mlp"));
  json.set("version", Json(kFormatVersion));
  json.set("num_layers", Json(state.num_layers));
  json.set("num_ops", Json(state.num_ops));
  json.set("unit", Json(state.unit));
  json.set("target_mean", Json(state.target_mean));
  json.set("target_std", Json(state.target_std));
  json.set("trained", Json(state.trained));
  Json tensors = Json::array();
  for (std::size_t i = 0; i < state.tensors.size(); ++i) {
    Json tensor = Json::object();
    tensor.set("rows", Json(state.shapes[i].first));
    tensor.set("cols", Json(state.shapes[i].second));
    tensor.set("data", Json::from_floats(state.tensors[i]));
    tensors.push_back(std::move(tensor));
  }
  json.set("tensors", std::move(tensors));
  return json;
}

predictors::MlpPredictor predictor_from_json(const Json& json) {
  check_header(json, "lightnas.predictor.mlp");
  predictors::MlpPredictor::State state;
  state.num_layers =
      static_cast<std::size_t>(json.at("num_layers").as_number());
  state.num_ops = static_cast<std::size_t>(json.at("num_ops").as_number());
  state.unit = json.at("unit").as_string();
  state.target_mean = json.at("target_mean").as_number();
  state.target_std = json.at("target_std").as_number();
  state.trained = json.at("trained").as_bool();
  for (const Json& tensor : json.at("tensors").as_array()) {
    state.shapes.emplace_back(
        static_cast<std::size_t>(tensor.at("rows").as_number()),
        static_cast<std::size_t>(tensor.at("cols").as_number()));
    state.tensors.push_back(tensor.at("data").to_floats());
  }
  return predictors::MlpPredictor::from_state(state);
}

void save_predictor(const std::string& path,
                    const predictors::MlpPredictor& predictor) {
  write_json_file(path, predictor_to_json(predictor));
}

predictors::MlpPredictor load_predictor(const std::string& path) {
  return predictor_from_json(read_json_file(path));
}

// --- measurement datasets -------------------------------------------------

Json dataset_to_json(const predictors::MeasurementDataset& data,
                     std::size_t num_ops) {
  Json json = Json::object();
  json.set("kind", Json("lightnas.dataset"));
  json.set("version", Json(kFormatVersion));
  json.set("num_ops", Json(num_ops));
  Json rows = Json::array();
  for (std::size_t i = 0; i < data.size(); ++i) {
    Json row = Json::object();
    row.set("arch", Json(data.architectures[i].serialize()));
    row.set("target", Json(data.targets[i]));
    rows.push_back(std::move(row));
  }
  json.set("rows", std::move(rows));
  return json;
}

predictors::MeasurementDataset dataset_from_json(const Json& json) {
  check_header(json, "lightnas.dataset");
  const auto num_ops =
      static_cast<std::size_t>(json.at("num_ops").as_number());
  predictors::MeasurementDataset data;
  for (const Json& row : json.at("rows").as_array()) {
    space::Architecture arch =
        space::Architecture::deserialize(row.at("arch").as_string());
    data.encodings.push_back(arch.encode_one_hot(num_ops));
    data.architectures.push_back(std::move(arch));
    data.targets.push_back(row.at("target").as_number());
  }
  return data;
}

void save_dataset(const std::string& path,
                  const predictors::MeasurementDataset& data,
                  std::size_t num_ops) {
  write_json_file(path, dataset_to_json(data, num_ops));
}

predictors::MeasurementDataset load_dataset(const std::string& path) {
  return dataset_from_json(read_json_file(path));
}

// --- search results ---------------------------------------------------

Json search_result_to_json(const core::SearchResult& result) {
  Json json = Json::object();
  json.set("kind", Json("lightnas.search_result"));
  json.set("version", Json(kFormatVersion));
  json.set("architecture", Json(result.architecture.serialize()));
  json.set("final_predicted_cost", Json(result.final_predicted_cost));
  json.set("final_lambda", Json(result.final_lambda));
  json.set("weight_updates", Json(result.weight_updates));
  json.set("alpha_updates", Json(result.alpha_updates));
  Json trace = Json::array();
  for (const core::SearchEpochStats& stats : result.trace) {
    Json row = Json::object();
    row.set("epoch", Json(stats.epoch));
    row.set("tau", Json(stats.tau));
    row.set("lambda", Json(stats.lambda));
    row.set("predicted_cost", Json(stats.predicted_cost));
    row.set("sampled_cost_mean", Json(stats.sampled_cost_mean));
    row.set("valid_loss", Json(stats.valid_loss));
    row.set("valid_accuracy", Json(stats.valid_accuracy));
    row.set("derived", Json(stats.derived.serialize()));
    trace.push_back(std::move(row));
  }
  json.set("trace", std::move(trace));
  return json;
}

core::SearchResult search_result_from_json(const Json& json) {
  check_header(json, "lightnas.search_result");
  core::SearchResult result;
  result.architecture =
      space::Architecture::deserialize(json.at("architecture").as_string());
  result.final_predicted_cost = json.at("final_predicted_cost").as_number();
  result.final_lambda = json.at("final_lambda").as_number();
  result.weight_updates =
      static_cast<std::size_t>(json.at("weight_updates").as_number());
  result.alpha_updates =
      static_cast<std::size_t>(json.at("alpha_updates").as_number());
  for (const Json& row : json.at("trace").as_array()) {
    core::SearchEpochStats stats;
    stats.epoch = static_cast<std::size_t>(row.at("epoch").as_number());
    stats.tau = row.at("tau").as_number();
    stats.lambda = row.at("lambda").as_number();
    stats.predicted_cost = row.at("predicted_cost").as_number();
    stats.sampled_cost_mean = row.at("sampled_cost_mean").as_number();
    stats.valid_loss = row.at("valid_loss").as_number();
    stats.valid_accuracy = row.at("valid_accuracy").as_number();
    stats.derived =
        space::Architecture::deserialize(row.at("derived").as_string());
    result.trace.push_back(std::move(stats));
  }
  return result;
}

void save_search_result(const std::string& path,
                        const core::SearchResult& result) {
  write_json_file(path, search_result_to_json(result));
}

core::SearchResult load_search_result(const std::string& path) {
  return search_result_from_json(read_json_file(path));
}

}  // namespace lightnas::io
