#include "io/serialize.hpp"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace lightnas::io {

namespace detail {

namespace {
constexpr int kFormatVersion = 1;
}  // namespace

int format_version() { return kFormatVersion; }

void check_header(const Json& json, const std::string& kind) {
  if (!json.contains("kind") || json.at("kind").as_string() != kind) {
    throw std::runtime_error("file is not a '" + kind + "' artifact");
  }
  if (static_cast<int>(json.at("version").as_number()) != kFormatVersion) {
    throw std::runtime_error("unsupported '" + kind + "' format version");
  }
}

// uint64 does not fit a double exactly; RNG words round-trip as hex.
Json u64_to_json(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return Json(std::string(buf));
}

std::uint64_t u64_from_json(const Json& json) {
  return static_cast<std::uint64_t>(
      std::strtoull(json.as_string().c_str(), nullptr, 16));
}

Json tensor_to_json(const nn::Tensor& t) {
  Json json = Json::object();
  json.set("rows", Json(t.rows()));
  json.set("cols", Json(t.cols()));
  json.set("data", Json::from_floats(
                       std::vector<float>(t.data().begin(), t.data().end())));
  return json;
}

nn::Tensor tensor_from_json(const Json& json) {
  const auto rows = static_cast<std::size_t>(json.at("rows").as_number());
  const auto cols = static_cast<std::size_t>(json.at("cols").as_number());
  const std::vector<float> data = json.at("data").to_floats();
  if (data.size() != rows * cols) {
    throw std::runtime_error("tensor data does not match its shape");
  }
  nn::Tensor t(rows, cols);
  t.data().assign(data.begin(), data.end());
  return t;
}

Json tensor_list_to_json(const std::vector<nn::Tensor>& tensors) {
  Json arr = Json::array();
  for (const nn::Tensor& t : tensors) arr.push_back(tensor_to_json(t));
  return arr;
}

std::vector<nn::Tensor> tensor_list_from_json(const Json& json) {
  std::vector<nn::Tensor> out;
  out.reserve(json.as_array().size());
  for (const Json& t : json.as_array()) out.push_back(tensor_from_json(t));
  return out;
}

Json rng_state_to_json(const util::RngState& state) {
  Json json = Json::object();
  Json words = Json::array();
  for (std::uint64_t w : state.s) words.push_back(u64_to_json(w));
  json.set("s", std::move(words));
  json.set("have_cached_normal", Json(state.have_cached_normal));
  json.set("cached_normal", Json(state.cached_normal));
  return json;
}

util::RngState rng_state_from_json(const Json& json) {
  util::RngState state;
  const Json& words = json.at("s");
  if (words.size() != 4) {
    throw std::runtime_error("rng state must have 4 words");
  }
  for (std::size_t i = 0; i < 4; ++i) {
    state.s[i] = u64_from_json(words.at(i));
  }
  state.have_cached_normal = json.at("have_cached_normal").as_bool();
  state.cached_normal = json.at("cached_normal").number_or_nan();
  return state;
}

Json batcher_state_to_json(const nn::Batcher::State& state) {
  Json json = Json::object();
  Json order = Json::array();
  for (std::size_t i : state.order) order.push_back(Json(i));
  json.set("order", std::move(order));
  json.set("cursor", Json(state.cursor));
  return json;
}

nn::Batcher::State batcher_state_from_json(const Json& json) {
  nn::Batcher::State state;
  state.order.reserve(json.at("order").size());
  for (const Json& i : json.at("order").as_array()) {
    state.order.push_back(static_cast<std::size_t>(i.as_number()));
  }
  state.cursor = static_cast<std::size_t>(json.at("cursor").as_number());
  return state;
}

Json health_to_json(const core::RunHealth& health) {
  Json json = Json::object();
  json.set("rollbacks", Json(health.rollbacks));
  json.set("aborted_early", Json(health.aborted_early));
  json.set("interrupted", Json(health.interrupted));
  json.set("resumed", Json(health.resumed));
  json.set("resumed_from_epoch", Json(health.resumed_from_epoch));
  json.set("completed_epochs", Json(health.completed_epochs));
  json.set("measurement_retries", Json(health.measurement_retries));
  json.set("measurements_rejected", Json(health.measurements_rejected));
  json.set("pool_buffer_hits", Json(health.pool_buffer_hits));
  json.set("pool_buffer_misses", Json(health.pool_buffer_misses));
  json.set("pool_bytes_recycled", Json(health.pool_bytes_recycled));
  json.set("pool_tape_hits", Json(health.pool_tape_hits));
  json.set("pool_tape_misses", Json(health.pool_tape_misses));
  json.set("plan_hits", Json(health.plan_hits));
  json.set("plan_misses", Json(health.plan_misses));
  json.set("plan_compiles", Json(health.plan_compiles));
  json.set("plan_fused_ops", Json(health.plan_fused_ops));
  json.set("plan_arena_bytes", Json(health.plan_arena_bytes));
  Json events = Json::array();
  for (const core::WatchdogEvent& event : health.events) {
    Json row = Json::object();
    row.set("epoch", Json(event.epoch));
    row.set("reason", Json(event.reason));
    row.set("rolled_back", Json(event.rolled_back));
    events.push_back(std::move(row));
  }
  json.set("events", std::move(events));
  return json;
}

core::RunHealth health_from_json(const Json& json) {
  core::RunHealth health;
  health.rollbacks =
      static_cast<std::size_t>(json.at("rollbacks").as_number());
  health.aborted_early = json.at("aborted_early").as_bool();
  health.interrupted = json.at("interrupted").as_bool();
  health.resumed = json.at("resumed").as_bool();
  health.resumed_from_epoch =
      static_cast<std::size_t>(json.at("resumed_from_epoch").as_number());
  health.completed_epochs =
      static_cast<std::size_t>(json.at("completed_epochs").as_number());
  health.measurement_retries =
      static_cast<std::size_t>(json.at("measurement_retries").as_number());
  health.measurements_rejected = static_cast<std::size_t>(
      json.at("measurements_rejected").as_number());
  // Pool telemetry arrived after the first checkpoint format; tolerate
  // its absence so old checkpoints stay loadable.
  if (json.contains("pool_buffer_hits")) {
    health.pool_buffer_hits =
        static_cast<std::uint64_t>(json.at("pool_buffer_hits").as_number());
    health.pool_buffer_misses = static_cast<std::uint64_t>(
        json.at("pool_buffer_misses").as_number());
    health.pool_bytes_recycled = static_cast<std::uint64_t>(
        json.at("pool_bytes_recycled").as_number());
    health.pool_tape_hits =
        static_cast<std::uint64_t>(json.at("pool_tape_hits").as_number());
    health.pool_tape_misses =
        static_cast<std::uint64_t>(json.at("pool_tape_misses").as_number());
  }
  // Plan telemetry is newer still; same tolerance.
  if (json.contains("plan_hits")) {
    health.plan_hits =
        static_cast<std::uint64_t>(json.at("plan_hits").as_number());
    health.plan_misses =
        static_cast<std::uint64_t>(json.at("plan_misses").as_number());
    health.plan_compiles =
        static_cast<std::uint64_t>(json.at("plan_compiles").as_number());
    health.plan_fused_ops =
        static_cast<std::uint64_t>(json.at("plan_fused_ops").as_number());
    health.plan_arena_bytes =
        static_cast<std::uint64_t>(json.at("plan_arena_bytes").as_number());
  }
  for (const Json& row : json.at("events").as_array()) {
    core::WatchdogEvent event;
    event.epoch = static_cast<std::size_t>(row.at("epoch").as_number());
    event.reason = row.at("reason").as_string();
    event.rolled_back = row.at("rolled_back").as_bool();
    health.events.push_back(std::move(event));
  }
  return health;
}

Json epoch_stats_to_json(const core::SearchEpochStats& stats) {
  Json row = Json::object();
  row.set("epoch", Json(stats.epoch));
  row.set("tau", Json(stats.tau));
  row.set("lambda", Json(stats.lambda));
  row.set("predicted_cost", Json(stats.predicted_cost));
  row.set("lambdas", Json::from_doubles(stats.lambdas));
  row.set("predicted_costs", Json::from_doubles(stats.predicted_costs));
  row.set("sampled_cost_mean", Json(stats.sampled_cost_mean));
  row.set("valid_loss", Json(stats.valid_loss));
  row.set("valid_accuracy", Json(stats.valid_accuracy));
  row.set("derived", Json(stats.derived.serialize()));
  return row;
}

core::SearchEpochStats epoch_stats_from_json(const Json& row) {
  core::SearchEpochStats stats;
  stats.epoch = static_cast<std::size_t>(row.at("epoch").as_number());
  stats.tau = row.at("tau").number_or_nan();
  stats.lambda = row.at("lambda").number_or_nan();
  stats.predicted_cost = row.at("predicted_cost").number_or_nan();
  // Per-constraint vectors were added after the first release of this
  // format; fall back to the single-constraint mirrors.
  if (row.contains("lambdas")) {
    stats.lambdas = row.at("lambdas").to_doubles();
    stats.predicted_costs = row.at("predicted_costs").to_doubles();
  } else {
    stats.lambdas = {stats.lambda};
    stats.predicted_costs = {stats.predicted_cost};
  }
  stats.sampled_cost_mean = row.at("sampled_cost_mean").number_or_nan();
  stats.valid_loss = row.at("valid_loss").number_or_nan();
  stats.valid_accuracy = row.at("valid_accuracy").number_or_nan();
  stats.derived =
      space::Architecture::deserialize(row.at("derived").as_string());
  return stats;
}

}  // namespace detail

using namespace detail;

// --- predictors ---------------------------------------------------------

Json predictor_to_json(const predictors::MlpPredictor& predictor) {
  const predictors::MlpPredictor::State state = predictor.export_state();
  Json json = Json::object();
  json.set("kind", Json("lightnas.predictor.mlp"));
  json.set("version", Json(kFormatVersion));
  json.set("num_layers", Json(state.num_layers));
  json.set("num_ops", Json(state.num_ops));
  json.set("unit", Json(state.unit));
  json.set("target_mean", Json(state.target_mean));
  json.set("target_std", Json(state.target_std));
  json.set("trained", Json(state.trained));
  Json tensors = Json::array();
  for (std::size_t i = 0; i < state.tensors.size(); ++i) {
    Json tensor = Json::object();
    tensor.set("rows", Json(state.shapes[i].first));
    tensor.set("cols", Json(state.shapes[i].second));
    tensor.set("data", Json::from_floats(state.tensors[i]));
    tensors.push_back(std::move(tensor));
  }
  json.set("tensors", std::move(tensors));
  return json;
}

predictors::MlpPredictor predictor_from_json(const Json& json) {
  check_header(json, "lightnas.predictor.mlp");
  predictors::MlpPredictor::State state;
  state.num_layers =
      static_cast<std::size_t>(json.at("num_layers").as_number());
  state.num_ops = static_cast<std::size_t>(json.at("num_ops").as_number());
  state.unit = json.at("unit").as_string();
  state.target_mean = json.at("target_mean").as_number();
  state.target_std = json.at("target_std").as_number();
  state.trained = json.at("trained").as_bool();
  for (const Json& tensor : json.at("tensors").as_array()) {
    state.shapes.emplace_back(
        static_cast<std::size_t>(tensor.at("rows").as_number()),
        static_cast<std::size_t>(tensor.at("cols").as_number()));
    state.tensors.push_back(tensor.at("data").to_floats());
  }
  return predictors::MlpPredictor::from_state(state);
}

void save_predictor(const std::string& path,
                    const predictors::MlpPredictor& predictor) {
  write_json_file(path, predictor_to_json(predictor));
}

predictors::MlpPredictor load_predictor(const std::string& path) {
  return predictor_from_json(read_json_file(path));
}

// --- measurement datasets -------------------------------------------------

Json dataset_to_json(const predictors::MeasurementDataset& data,
                     std::size_t num_ops) {
  Json json = Json::object();
  json.set("kind", Json("lightnas.dataset"));
  json.set("version", Json(kFormatVersion));
  json.set("num_ops", Json(num_ops));
  Json rows = Json::array();
  for (std::size_t i = 0; i < data.size(); ++i) {
    Json row = Json::object();
    row.set("arch", Json(data.architectures[i].serialize()));
    row.set("target", Json(data.targets[i]));
    rows.push_back(std::move(row));
  }
  json.set("rows", std::move(rows));
  return json;
}

predictors::MeasurementDataset dataset_from_json(const Json& json) {
  check_header(json, "lightnas.dataset");
  const auto num_ops =
      static_cast<std::size_t>(json.at("num_ops").as_number());
  predictors::MeasurementDataset data;
  for (const Json& row : json.at("rows").as_array()) {
    space::Architecture arch =
        space::Architecture::deserialize(row.at("arch").as_string());
    data.encodings.push_back(arch.encode_one_hot(num_ops));
    data.architectures.push_back(std::move(arch));
    data.targets.push_back(row.at("target").as_number());
  }
  return data;
}

void save_dataset(const std::string& path,
                  const predictors::MeasurementDataset& data,
                  std::size_t num_ops) {
  write_json_file(path, dataset_to_json(data, num_ops));
}

predictors::MeasurementDataset load_dataset(const std::string& path) {
  return dataset_from_json(read_json_file(path));
}

// --- search results ---------------------------------------------------

Json search_result_to_json(const core::SearchResult& result) {
  Json json = Json::object();
  json.set("kind", Json("lightnas.search_result"));
  json.set("version", Json(kFormatVersion));
  json.set("architecture", Json(result.architecture.serialize()));
  json.set("final_predicted_cost", Json(result.final_predicted_cost));
  json.set("final_lambda", Json(result.final_lambda));
  json.set("weight_updates", Json(result.weight_updates));
  json.set("alpha_updates", Json(result.alpha_updates));
  json.set("final_costs", Json::from_doubles(result.final_costs));
  json.set("final_lambdas", Json::from_doubles(result.final_lambdas));
  json.set("health", health_to_json(result.health));
  Json trace = Json::array();
  for (const core::SearchEpochStats& stats : result.trace) {
    trace.push_back(epoch_stats_to_json(stats));
  }
  json.set("trace", std::move(trace));
  return json;
}

core::SearchResult search_result_from_json(const Json& json) {
  check_header(json, "lightnas.search_result");
  core::SearchResult result;
  result.architecture =
      space::Architecture::deserialize(json.at("architecture").as_string());
  result.final_predicted_cost =
      json.at("final_predicted_cost").number_or_nan();
  result.final_lambda = json.at("final_lambda").number_or_nan();
  result.weight_updates =
      static_cast<std::size_t>(json.at("weight_updates").as_number());
  result.alpha_updates =
      static_cast<std::size_t>(json.at("alpha_updates").as_number());
  // Fields added after the first release of this format.
  if (json.contains("final_costs")) {
    result.final_costs = json.at("final_costs").to_doubles();
    result.final_lambdas = json.at("final_lambdas").to_doubles();
  } else {
    result.final_costs = {result.final_predicted_cost};
    result.final_lambdas = {result.final_lambda};
  }
  if (json.contains("health")) {
    result.health = health_from_json(json.at("health"));
  }
  for (const Json& row : json.at("trace").as_array()) {
    result.trace.push_back(epoch_stats_from_json(row));
  }
  return result;
}

void save_search_result(const std::string& path,
                        const core::SearchResult& result) {
  write_json_file(path, search_result_to_json(result));
}

core::SearchResult load_search_result(const std::string& path) {
  return search_result_from_json(read_json_file(path));
}

// --- compiled execution plans -------------------------------------------

namespace {

const char* plan_op_name(nn::plan::OpKind kind) {
  switch (kind) {
    case nn::plan::OpKind::kMatmul: return "matmul";
    case nn::plan::OpKind::kAdd: return "add";
    case nn::plan::OpKind::kAddBias: return "add_bias";
    case nn::plan::OpKind::kScale: return "scale";
    case nn::plan::OpKind::kAddScalar: return "add_scalar";
    case nn::plan::OpKind::kRelu: return "relu";
    case nn::plan::OpKind::kSoftmaxCE: return "softmax_ce";
  }
  return "?";
}

nn::plan::OpKind plan_op_from_name(const std::string& name) {
  if (name == "matmul") return nn::plan::OpKind::kMatmul;
  if (name == "add") return nn::plan::OpKind::kAdd;
  if (name == "add_bias") return nn::plan::OpKind::kAddBias;
  if (name == "scale") return nn::plan::OpKind::kScale;
  if (name == "add_scalar") return nn::plan::OpKind::kAddScalar;
  if (name == "relu") return nn::plan::OpKind::kRelu;
  if (name == "softmax_ce") return nn::plan::OpKind::kSoftmaxCE;
  throw std::runtime_error("unknown plan op kind '" + name + "'");
}

}  // namespace

Json plan_to_json(const nn::plan::Program& program) {
  Json json = Json::object();
  json.set("kind", Json("lightnas.plan"));
  json.set("version", Json(detail::format_version()));
  Json slots = Json::array();
  for (const nn::plan::ProgramSlot& slot : program.slots) {
    Json row = Json::object();
    row.set("rows", Json(slot.rows));
    row.set("cols", Json(slot.cols));
    switch (slot.kind) {
      case nn::plan::SlotKind::kOp:
        row.set("slot", Json("op"));
        break;
      case nn::plan::SlotKind::kParam:
        row.set("slot", Json("param"));
        row.set("name", Json(slot.param_name));
        break;
      case nn::plan::SlotKind::kInput:
        row.set("slot", Json("input"));
        row.set("input_index",
                Json(static_cast<std::size_t>(slot.input_index)));
        break;
      case nn::plan::SlotKind::kBaked:
        row.set("slot", Json("baked"));
        row.set("baked", detail::tensor_to_json(slot.baked));
        break;
    }
    slots.push_back(std::move(row));
  }
  json.set("slots", std::move(slots));
  Json ops = Json::array();
  for (const nn::plan::ProgramOp& op : program.ops) {
    Json row = Json::object();
    row.set("op", Json(plan_op_name(op.kind)));
    row.set("out", Json(static_cast<std::size_t>(op.out)));
    row.set("a", Json(static_cast<std::size_t>(op.a)));
    if (op.b != nn::plan::kNoSlot) {
      row.set("b", Json(static_cast<std::size_t>(op.b)));
    }
    if (op.kind == nn::plan::OpKind::kScale ||
        op.kind == nn::plan::OpKind::kAddScalar) {
      row.set("scalar", Json(op.scalar));
    }
    if (op.kind == nn::plan::OpKind::kSoftmaxCE) {
      row.set("label_binding",
              Json(static_cast<std::size_t>(op.label_binding)));
    }
    ops.push_back(std::move(row));
  }
  json.set("ops", std::move(ops));
  json.set("root", Json(static_cast<std::size_t>(program.root)));
  json.set("num_inputs", Json(static_cast<std::size_t>(program.num_inputs)));
  json.set("num_label_bindings",
           Json(static_cast<std::size_t>(program.num_label_bindings)));
  return json;
}

nn::plan::Program plan_from_json(const Json& json) {
  detail::check_header(json, "lightnas.plan");
  nn::plan::Program program;
  for (const Json& row : json.at("slots").as_array()) {
    nn::plan::ProgramSlot slot;
    slot.rows = static_cast<std::size_t>(row.at("rows").as_number());
    slot.cols = static_cast<std::size_t>(row.at("cols").as_number());
    const std::string& kind = row.at("slot").as_string();
    if (kind == "op") {
      slot.kind = nn::plan::SlotKind::kOp;
    } else if (kind == "param") {
      slot.kind = nn::plan::SlotKind::kParam;
      slot.param_name = row.at("name").as_string();
    } else if (kind == "input") {
      slot.kind = nn::plan::SlotKind::kInput;
      slot.input_index =
          static_cast<std::uint32_t>(row.at("input_index").as_number());
    } else if (kind == "baked") {
      slot.kind = nn::plan::SlotKind::kBaked;
      slot.baked = detail::tensor_from_json(row.at("baked"));
    } else {
      throw std::runtime_error("unknown plan slot kind '" + kind + "'");
    }
    program.slots.push_back(std::move(slot));
  }
  for (const Json& row : json.at("ops").as_array()) {
    nn::plan::ProgramOp op;
    op.kind = plan_op_from_name(row.at("op").as_string());
    op.out = static_cast<std::uint32_t>(row.at("out").as_number());
    op.a = static_cast<std::uint32_t>(row.at("a").as_number());
    if (row.contains("b")) {
      op.b = static_cast<std::uint32_t>(row.at("b").as_number());
    }
    if (row.contains("scalar")) op.scalar = row.at("scalar").as_number();
    if (row.contains("label_binding")) {
      op.label_binding =
          static_cast<std::uint32_t>(row.at("label_binding").as_number());
    }
    program.ops.push_back(op);
  }
  program.root = static_cast<std::uint32_t>(json.at("root").as_number());
  program.num_inputs =
      static_cast<std::uint32_t>(json.at("num_inputs").as_number());
  program.num_label_bindings = static_cast<std::uint32_t>(
      json.at("num_label_bindings").as_number());
  return program;
}

void bind_program_params(nn::plan::Program& program,
                         const std::vector<nn::VarPtr>& params) {
  for (nn::plan::ProgramSlot& slot : program.slots) {
    if (slot.kind != nn::plan::SlotKind::kParam) continue;
    slot.param = nullptr;
    for (const nn::VarPtr& p : params) {
      if (p->name != slot.param_name ||
          p->value.rows() != slot.rows || p->value.cols() != slot.cols) {
        continue;
      }
      if (slot.param != nullptr) {
        throw std::runtime_error("plan parameter '" + slot.param_name +
                                 "' matches multiple model parameters");
      }
      slot.param = p;
    }
    if (slot.param == nullptr) {
      throw std::runtime_error("plan parameter '" + slot.param_name +
                               "' has no matching model parameter");
    }
  }
}

void save_plan(const std::string& path,
               const nn::plan::Program& program) {
  write_json_file(path, plan_to_json(program));
}

nn::plan::Program load_plan(const std::string& path) {
  return plan_from_json(read_json_file(path));
}

// --- search checkpoints ------------------------------------------------

Json checkpoint_to_json(const core::SearchCheckpoint& ck) {
  Json json = Json::object();
  json.set("kind", Json("lightnas.checkpoint"));
  json.set("version", Json(kFormatVersion));
  json.set("seed", u64_to_json(ck.seed));
  json.set("total_epochs", Json(ck.total_epochs));
  json.set("targets", Json::from_doubles(ck.targets));
  json.set("next_epoch", Json(ck.next_epoch));
  json.set("w_step_counter", Json(ck.w_step_counter));
  json.set("alpha", tensor_to_json(ck.alpha));
  json.set("supernet_weights", tensor_list_to_json(ck.supernet_weights));
  json.set("w_velocity", tensor_list_to_json(ck.w_velocity));
  json.set("adam_m", tensor_list_to_json(ck.adam_m));
  json.set("adam_v", tensor_list_to_json(ck.adam_v));
  json.set("adam_t", Json(ck.adam_t));
  json.set("lambdas", Json::from_doubles(ck.lambdas));
  json.set("cooldown_scale", Json(ck.cooldown_scale));
  json.set("tau_floor", Json(ck.tau_floor));
  json.set("rng", rng_state_to_json(ck.rng));
  json.set("data_rng", rng_state_to_json(ck.data_rng));
  json.set("valid_rng", rng_state_to_json(ck.valid_rng));
  json.set("train_batcher", batcher_state_to_json(ck.train_batcher));
  json.set("valid_batcher", batcher_state_to_json(ck.valid_batcher));
  json.set("weight_updates", Json(ck.weight_updates));
  json.set("alpha_updates", Json(ck.alpha_updates));
  json.set("health", health_to_json(ck.health));
  Json trace = Json::array();
  for (const core::SearchEpochStats& stats : ck.trace) {
    trace.push_back(epoch_stats_to_json(stats));
  }
  json.set("trace", std::move(trace));
  return json;
}

core::SearchCheckpoint checkpoint_from_json(const Json& json) {
  check_header(json, "lightnas.checkpoint");
  core::SearchCheckpoint ck;
  ck.seed = u64_from_json(json.at("seed"));
  ck.total_epochs =
      static_cast<std::size_t>(json.at("total_epochs").as_number());
  ck.targets = json.at("targets").to_doubles();
  ck.next_epoch = static_cast<std::size_t>(json.at("next_epoch").as_number());
  ck.w_step_counter =
      static_cast<std::size_t>(json.at("w_step_counter").as_number());
  ck.alpha = tensor_from_json(json.at("alpha"));
  ck.supernet_weights = tensor_list_from_json(json.at("supernet_weights"));
  ck.w_velocity = tensor_list_from_json(json.at("w_velocity"));
  ck.adam_m = tensor_list_from_json(json.at("adam_m"));
  ck.adam_v = tensor_list_from_json(json.at("adam_v"));
  ck.adam_t = static_cast<std::size_t>(json.at("adam_t").as_number());
  ck.lambdas = json.at("lambdas").to_doubles();
  ck.cooldown_scale = json.at("cooldown_scale").number_or_nan();
  ck.tau_floor = json.at("tau_floor").number_or_nan();
  ck.rng = rng_state_from_json(json.at("rng"));
  ck.data_rng = rng_state_from_json(json.at("data_rng"));
  ck.valid_rng = rng_state_from_json(json.at("valid_rng"));
  ck.train_batcher = batcher_state_from_json(json.at("train_batcher"));
  ck.valid_batcher = batcher_state_from_json(json.at("valid_batcher"));
  ck.weight_updates =
      static_cast<std::size_t>(json.at("weight_updates").as_number());
  ck.alpha_updates =
      static_cast<std::size_t>(json.at("alpha_updates").as_number());
  ck.health = health_from_json(json.at("health"));
  for (const Json& row : json.at("trace").as_array()) {
    ck.trace.push_back(epoch_stats_from_json(row));
  }
  return ck;
}

void save_checkpoint(const std::string& path,
                     const core::SearchCheckpoint& checkpoint) {
  write_json_file_atomic(path, checkpoint_to_json(checkpoint));
}

core::SearchCheckpoint load_checkpoint(const std::string& path) {
  return checkpoint_from_json(read_json_file(path));
}

}  // namespace lightnas::io
