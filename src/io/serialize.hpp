#pragma once

#include <string>

#include "core/lightnas.hpp"
#include "io/json.hpp"
#include "predictors/dataset.hpp"
#include "predictors/mlp_predictor.hpp"
#include "space/architecture.hpp"

namespace lightnas::io {

/// Persistence for the artifacts a deployment pipeline wants to keep:
/// the trained predictor (the expensive measurement campaign), the raw
/// measurement dataset, and search results with their traces. All files
/// are self-describing JSON with a `kind` + `version` header.

// --- predictors ---------------------------------------------------------

Json predictor_to_json(const predictors::MlpPredictor& predictor);
predictors::MlpPredictor predictor_from_json(const Json& json);

void save_predictor(const std::string& path,
                    const predictors::MlpPredictor& predictor);
predictors::MlpPredictor load_predictor(const std::string& path);

// --- measurement datasets -------------------------------------------------

Json dataset_to_json(const predictors::MeasurementDataset& data,
                     std::size_t num_ops);
predictors::MeasurementDataset dataset_from_json(const Json& json);

void save_dataset(const std::string& path,
                  const predictors::MeasurementDataset& data,
                  std::size_t num_ops);
predictors::MeasurementDataset load_dataset(const std::string& path);

// --- search results ---------------------------------------------------

Json search_result_to_json(const core::SearchResult& result);
core::SearchResult search_result_from_json(const Json& json);

void save_search_result(const std::string& path,
                        const core::SearchResult& result);
core::SearchResult load_search_result(const std::string& path);

// --- search checkpoints ------------------------------------------------

Json checkpoint_to_json(const core::SearchCheckpoint& checkpoint);
core::SearchCheckpoint checkpoint_from_json(const Json& json);

/// Checkpoint writes are atomic (write-temp-then-rename): a crash during
/// the write never corrupts the previous checkpoint at `path`.
void save_checkpoint(const std::string& path,
                     const core::SearchCheckpoint& checkpoint);
core::SearchCheckpoint load_checkpoint(const std::string& path);

}  // namespace lightnas::io
