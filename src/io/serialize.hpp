#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/lightnas.hpp"
#include "io/json.hpp"
#include "nn/data.hpp"
#include "nn/plan.hpp"
#include "predictors/dataset.hpp"
#include "predictors/mlp_predictor.hpp"
#include "space/architecture.hpp"
#include "util/rng.hpp"

namespace lightnas::io {

/// Low-level JSON building blocks shared by every artifact format in
/// this library (search checkpoints here, campaign checkpoints in
/// src/campaign). Stable conversion invariants: u64 round-trips as hex
/// (a double cannot hold it exactly), tensors as shape + flat float
/// array, RNG state word-exact.
namespace detail {

/// Throws std::runtime_error unless `json` carries the expected
/// `kind` / `version` header.
void check_header(const Json& json, const std::string& kind);
int format_version();

Json u64_to_json(std::uint64_t v);
std::uint64_t u64_from_json(const Json& json);

Json tensor_to_json(const nn::Tensor& t);
nn::Tensor tensor_from_json(const Json& json);
Json tensor_list_to_json(const std::vector<nn::Tensor>& tensors);
std::vector<nn::Tensor> tensor_list_from_json(const Json& json);

Json rng_state_to_json(const util::RngState& state);
util::RngState rng_state_from_json(const Json& json);
Json batcher_state_to_json(const nn::Batcher::State& state);
nn::Batcher::State batcher_state_from_json(const Json& json);

Json health_to_json(const core::RunHealth& health);
core::RunHealth health_from_json(const Json& json);
Json epoch_stats_to_json(const core::SearchEpochStats& stats);
core::SearchEpochStats epoch_stats_from_json(const Json& row);

}  // namespace detail

/// Persistence for the artifacts a deployment pipeline wants to keep:
/// the trained predictor (the expensive measurement campaign), the raw
/// measurement dataset, and search results with their traces. All files
/// are self-describing JSON with a `kind` + `version` header.

// --- predictors ---------------------------------------------------------

Json predictor_to_json(const predictors::MlpPredictor& predictor);
predictors::MlpPredictor predictor_from_json(const Json& json);

void save_predictor(const std::string& path,
                    const predictors::MlpPredictor& predictor);
predictors::MlpPredictor load_predictor(const std::string& path);

// --- measurement datasets -------------------------------------------------

Json dataset_to_json(const predictors::MeasurementDataset& data,
                     std::size_t num_ops);
predictors::MeasurementDataset dataset_from_json(const Json& json);

void save_dataset(const std::string& path,
                  const predictors::MeasurementDataset& data,
                  std::size_t num_ops);
predictors::MeasurementDataset load_dataset(const std::string& path);

// --- search results ---------------------------------------------------

Json search_result_to_json(const core::SearchResult& result);
core::SearchResult search_result_from_json(const Json& json);

void save_search_result(const std::string& path,
                        const core::SearchResult& result);
core::SearchResult load_search_result(const std::string& path);

// --- compiled execution plans -------------------------------------------

/// A recorded nn::plan::Program as a loadable "compiled model" artifact:
/// the shape-specialized dataflow graph with parameter slots saved by
/// name + shape and baked constants inline. Kernel pointers, arena
/// layout, and thread partitions are deliberately NOT serialized — a
/// loaded program is recompiled (ExecutionPlan::compile) against the
/// host it lands on, which re-pins the ISA tier and row partitions for
/// that machine while the numerics stay bit-identical.
Json plan_to_json(const nn::plan::Program& program);
/// Parameter slots come back *unbound* (null VarPtr); call
/// bind_program_params before compiling.
nn::plan::Program plan_from_json(const Json& json);

/// Re-bind a deserialized program's parameter slots to live model
/// parameters, matched by name and value shape. Throws
/// std::runtime_error when a slot has no unique match.
void bind_program_params(nn::plan::Program& program,
                         const std::vector<nn::VarPtr>& params);

void save_plan(const std::string& path, const nn::plan::Program& program);
nn::plan::Program load_plan(const std::string& path);

// --- search checkpoints ------------------------------------------------

Json checkpoint_to_json(const core::SearchCheckpoint& checkpoint);
core::SearchCheckpoint checkpoint_from_json(const Json& json);

/// Checkpoint writes are atomic (write-temp-then-rename): a crash during
/// the write never corrupts the previous checkpoint at `path`.
void save_checkpoint(const std::string& path,
                     const core::SearchCheckpoint& checkpoint);
core::SearchCheckpoint load_checkpoint(const std::string& path);

}  // namespace lightnas::io
