#pragma once

#include <cstddef>
#include <new>
#include <vector>

namespace lightnas::nn {

/// Alignment (bytes) of every Tensor / TensorPool buffer. 32 bytes is
/// one full AVX2 vector, so the SIMD microkernels (see simd.hpp) never
/// straddle a cache line at the buffer start; it also satisfies every
/// narrower ISA. The kernels still use unaligned loads internally
/// (row starts are only aligned when cols % 8 == 0), but an aligned
/// base keeps the common padded shapes on the fast path.
inline constexpr std::size_t kTensorAlignment = 32;

/// Minimal STL allocator with a fixed over-alignment. All instances
/// compare equal (state-free), so vectors can swap buffers freely —
/// exactly what the TensorPool's bucket handout relies on.
template <typename T, std::size_t Alignment = kTensorAlignment>
struct AlignedAllocator {
  using value_type = T;
  static_assert(Alignment >= alignof(T), "alignment below natural");
  static_assert((Alignment & (Alignment - 1)) == 0, "non power of two");

  AlignedAllocator() = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) {}  // NOLINT

  T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{Alignment}));
  }
  void deallocate(T* p, std::size_t n) noexcept {
    ::operator delete(p, n * sizeof(T), std::align_val_t{Alignment});
  }

  template <typename U>
  bool operator==(const AlignedAllocator<U, Alignment>&) const {
    return true;
  }
  template <typename U>
  bool operator!=(const AlignedAllocator<U, Alignment>&) const {
    return false;
  }

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };
};

/// The storage type of Tensor and the TensorPool free lists: a plain
/// std::vector<float> except the buffer start is kTensorAlignment-aligned.
using AlignedVector = std::vector<float, AlignedAllocator<float>>;

}  // namespace lightnas::nn
