#include "nn/autograd.hpp"

#include <cassert>
#include <unordered_set>

namespace lightnas::nn {

void Var::ensure_grad() {
  if (!grad.same_shape(value)) {
    grad = Tensor::zeros(value.rows(), value.cols());
  }
}

void Var::zero_grad() {
  if (grad.same_shape(value)) {
    grad.fill(0.0f);
  } else {
    grad = Tensor::zeros(value.rows(), value.cols());
  }
}

VarPtr make_leaf(Tensor value, std::string name) {
  auto v = std::make_shared<Var>();
  v->value = std::move(value);
  v->requires_grad = true;
  v->name = std::move(name);
  return v;
}

VarPtr make_const(Tensor value, std::string name) {
  auto v = std::make_shared<Var>();
  v->value = std::move(value);
  v->requires_grad = false;
  v->name = std::move(name);
  return v;
}

namespace {

void topo_sort(const VarPtr& node, std::unordered_set<Var*>& visited,
               std::vector<VarPtr>& order) {
  if (!node || visited.count(node.get()) != 0) return;
  visited.insert(node.get());
  for (const VarPtr& parent : node->parents) {
    topo_sort(parent, visited, order);
  }
  order.push_back(node);
}

}  // namespace

void backward(const VarPtr& root) {
  assert(root);
  assert(root->value.rows() == 1 && root->value.cols() == 1 &&
         "backward() requires a scalar root");

  std::unordered_set<Var*> visited;
  std::vector<VarPtr> order;
  topo_sort(root, visited, order);

  for (const VarPtr& node : order) node->ensure_grad();
  root->grad.fill(1.0f);

  // `order` is parents-before-children; traverse children-first.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    Var& node = **it;
    if (node.backward_fn) node.backward_fn(node);
  }
}

std::size_t graph_size(const VarPtr& root) {
  std::unordered_set<Var*> visited;
  std::vector<VarPtr> order;
  topo_sort(root, visited, order);
  return order.size();
}

}  // namespace lightnas::nn
