#include "nn/autograd.hpp"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <unordered_set>

#include "nn/plan.hpp"
#include "nn/pool.hpp"

namespace lightnas::nn {

namespace {

/// Sentinel index marking a ParentRef that refers to a persistent node
/// (by address) rather than a same-generation creation (by position).
constexpr std::uint32_t kPersistentRef = 0xffffffffu;

/// How a logged creation refers to one parent. Recycled interior nodes
/// change addresses step to step (the free list is LIFO, so a chain
/// graph's addresses *rotate* between consecutive steps), which is why
/// the fingerprint is positional: a parent created earlier in the same
/// generation is named by its log position. Nodes surviving from
/// earlier generations (parameters, cached constants) are named by
/// address — stable precisely because the node stayed alive, and
/// un-aliasable between consecutive generations because any node newly
/// occupying a freed address would have been stamped (and hence
/// index-referenced) in the current generation.
struct ParentRef {
  std::uint32_t index = kPersistentRef;
  const Var* persistent = nullptr;

  bool operator==(const ParentRef& other) const {
    return index == other.index && persistent == other.persistent;
  }
  bool operator!=(const ParentRef& other) const { return !(*this == other); }
};

/// One logged Var creation. Two consecutive generations built "the same
/// graph" exactly when their logs compare equal element-for-element:
/// same creation count and order, same op type at each position, same
/// wiring. `node` is this generation's payload (where a cached-tape
/// position resolves to), not part of the fingerprint.
struct CreationRecord {
  Var* node = nullptr;
  /// BackwardFn::type_tag() — distinguishes ops with identical arity
  /// (e.g. relu vs sigmoid), so an op-choice flip at a stable topology
  /// still invalidates the tape.
  const void* op_tag = nullptr;
  std::uint32_t parent_begin = 0;
  std::uint32_t parent_count = 0;

  bool operator==(const CreationRecord& other) const {
    return op_tag == other.op_tag && parent_begin == other.parent_begin &&
           parent_count == other.parent_count;
  }
};

/// Cached-tape slot: either a persistent node pinned by address or a
/// position in the *current* generation's construction log (resolved at
/// replay time, after the structural match has proven the logs line up).
struct TapeEntry {
  Var* persistent = nullptr;
  std::uint32_t record = 0;
};

/// Backstop for pathological forward-only loops that never consume the
/// log with a backward(): past this many records the log is dropped and
/// tape reuse is disabled until the next backward. ~48 MB worst case.
constexpr std::size_t kMaxLogRecords = std::size_t{1} << 21;

/// Thread-local recycling state for the autograd layer: the Var free
/// list, the construction logs of the current and previous step, and
/// the cached reverse-topological tape.
struct GraphArena {
  std::vector<Var*> free_vars;

  /// A "generation" is the span between two pooled backward() calls;
  /// every pooled creation is stamped with it. Starts at 1 so the
  /// scrubbed/default stamp 0 can never match a live generation — that
  /// zero-scrub is load-bearing for buffers donated across threads,
  /// whose stale stamps came from a *different* arena's numbering.
  std::uint64_t generation = 1;

  std::vector<CreationRecord> log, prev_log;
  std::vector<ParentRef> log_parents, prev_log_parents;

  std::vector<TapeEntry> tape;  // parents-before-children order
  std::vector<Var*> resolved;   // tape resolved against the current log
  ParentRef prev_root;          // root of the previous generation
  bool tape_valid = false;

  /// Poison flags: any Var created outside the pooled path (its
  /// creation is unlogged, so the structural fingerprint would not see
  /// it) or a dropped log makes the next tape comparison an automatic
  /// miss.
  bool unpooled_creation = false;
  bool log_overflow = false;

  std::unordered_set<Var*> visited_scratch;

  ~GraphArena() {
    // Free-listed nodes were scrubbed on release (empty tensors, no
    // closure, no parents), so this is a flat delete with no recursion.
    for (Var* var : free_vars) delete var;
  }
};

GraphArena& arena() {
  thread_local GraphArena instance;
  return instance;
}

/// shared_ptr deleter that recycles instead of deleting while a pool is
/// active on the destroying thread. Scrubbing releases the node's
/// buffers to the TensorPool and drops parent references (cascading the
/// recycling up the graph); the emptied shell keeps its vector/string
/// capacity for the next step.
struct VarRecycler {
  void operator()(Var* var) const noexcept {
    if (TensorPool::active() != nullptr) {
      var->backward_fn.reset();
      var->parents.clear();
      var->name.clear();
      var->requires_grad = false;
      var->creation_gen = 0;  // never alias another generation's stamp
      var->grad = Tensor();
      var->value = Tensor();
      try {
        arena().free_vars.push_back(var);
        return;
      } catch (...) {
        // bookkeeping OOM: fall through to plain delete
      }
    }
    delete var;
  }
};

VarPtr new_var() {
  TensorPool* pool = TensorPool::active();
  if (pool == nullptr) {
    arena().unpooled_creation = true;
    return std::make_shared<Var>();
  }
  GraphArena& a = arena();
  Var* var = nullptr;
  if (!a.free_vars.empty()) {
    var = a.free_vars.back();
    a.free_vars.pop_back();
    pool->note_node_hit();
  } else {
    var = new Var();
    pool->note_node_miss();
  }
  // Control blocks come from the thread-local block pool, so the whole
  // handle is allocation-free in the steady state.
  return VarPtr(var, VarRecycler{}, PooledBlockAllocator<Var>{});
}

/// Structural name for `node` in the current generation: its log
/// position if it was created (and stamped) this generation, else its
/// address as a persistent node.
ParentRef ref_for(const Var* node, const GraphArena& a) {
  ParentRef ref;
  if (node->creation_gen == a.generation) {
    ref.index = node->creation_index;
    ref.persistent = nullptr;
  } else {
    ref.index = kPersistentRef;
    ref.persistent = node;
  }
  return ref;
}

void log_creation(Var* var) {
  if (TensorPool::active() == nullptr) return;
  GraphArena& a = arena();
  if (a.log_overflow) return;
  if (a.log.size() >= kMaxLogRecords) {
    a.log.clear();
    a.log_parents.clear();
    a.log_overflow = true;
    return;
  }
  var->creation_gen = a.generation;
  var->creation_index = static_cast<std::uint32_t>(a.log.size());
  CreationRecord record;
  record.node = var;
  record.op_tag = var->backward_fn.type_tag();
  record.parent_begin = static_cast<std::uint32_t>(a.log_parents.size());
  record.parent_count = static_cast<std::uint32_t>(var->parents.size());
  for (const VarPtr& parent : var->parents) {
    a.log_parents.push_back(ref_for(parent.get(), a));
  }
  a.log.push_back(record);
}

bool logs_equal(const GraphArena& a) {
  return a.log.size() == a.prev_log.size() &&
         a.log_parents.size() == a.prev_log_parents.size() &&
         std::equal(a.log.begin(), a.log.end(), a.prev_log.begin()) &&
         std::equal(a.log_parents.begin(), a.log_parents.end(),
                    a.prev_log_parents.begin());
}

void topo_sort(const VarPtr& node, std::unordered_set<Var*>& visited,
               std::vector<VarPtr>& order) {
  if (!node || visited.count(node.get()) != 0) return;
  visited.insert(node.get());
  for (const VarPtr& parent : node->parents) {
    topo_sort(parent, visited, order);
  }
  order.push_back(node);
}

/// Same traversal as topo_sort but over raw pointers into the arena's
/// reusable tape buffer. Producing the identical visit order is what
/// keeps pooled backward bit-identical to the classic path.
void tape_sort(Var* node, std::unordered_set<Var*>& visited,
               std::vector<Var*>& tape) {
  if (node == nullptr || visited.count(node) != 0) return;
  visited.insert(node);
  for (const VarPtr& parent : node->parents) {
    tape_sort(parent.get(), visited, tape);
  }
  tape.push_back(node);
}

void run_tape(const std::vector<Var*>& tape, Var* root) {
  for (Var* node : tape) node->ensure_grad();
  root->grad.fill(1.0f);
  // `tape` is parents-before-children; traverse children-first.
  for (auto it = tape.rbegin(); it != tape.rend(); ++it) {
    Var& node = **it;
    if (node.backward_fn) node.backward_fn(node);
  }
}

}  // namespace

void Var::ensure_grad() {
  // Guard on the element count as well as the nominal shape: `value`
  // can be re-materialized (or its buffer resized through data())
  // after `grad` was first allocated, and a stale grad buffer would
  // scatter out of bounds. Allocation goes through the Tensor
  // constructor, i.e. the active pool when there is one.
  if (!grad.same_shape(value) || grad.size() != value.size()) {
    grad = Tensor::zeros(value.rows(), value.cols());
  }
}

void Var::zero_grad() {
  if (grad.same_shape(value) && grad.size() == value.size()) {
    grad.fill(0.0f);
  } else {
    grad = Tensor::zeros(value.rows(), value.cols());
  }
}

VarPtr make_leaf(Tensor value, std::string name) {
  VarPtr v = new_var();
  v->value = std::move(value);
  v->requires_grad = true;
  v->name = std::move(name);
  log_creation(v.get());
  if (plan::detail::recording_active()) plan::detail::record_leaf(v);
  return v;
}

VarPtr make_const(Tensor value, std::string name) {
  VarPtr v = new_var();
  v->value = std::move(value);
  v->requires_grad = false;
  v->name = std::move(name);
  log_creation(v.get());
  if (plan::detail::recording_active()) plan::detail::record_const(v);
  return v;
}

namespace {

template <typename ParentRange>
VarPtr make_node_impl(Tensor value, const ParentRange& parents,
                      BackwardFn backward_fn) {
  VarPtr v = new_var();
  v->value = std::move(value);
  // assign() reuses the recycled node's vector capacity.
  v->parents.assign(parents.begin(), parents.end());
  bool any_grad = false;
  for (const VarPtr& parent : v->parents) any_grad |= parent->requires_grad;
  v->requires_grad = any_grad;
  if (any_grad) v->backward_fn = std::move(backward_fn);
  log_creation(v.get());
  return v;
}

}  // namespace

VarPtr make_node(Tensor value, std::initializer_list<VarPtr> parents,
                 BackwardFn backward_fn) {
  return make_node_impl(std::move(value), parents, std::move(backward_fn));
}

VarPtr make_node(Tensor value, const std::vector<VarPtr>& parents,
                 BackwardFn backward_fn) {
  return make_node_impl(std::move(value), parents, std::move(backward_fn));
}

void backward(const VarPtr& root) {
  assert(root);
  assert(root->value.rows() == 1 && root->value.cols() == 1 &&
         "backward() requires a scalar root");

  TensorPool* pool = TensorPool::active();
  if (pool == nullptr) {
    // Classic path: derive the order fresh, and poison the arena — a
    // pooled scope may have logged creations that this backward will
    // not consume, so the half-built log must not be trusted later.
    arena().unpooled_creation = true;
    std::unordered_set<Var*> visited;
    std::vector<VarPtr> order;
    topo_sort(root, visited, order);
    for (const VarPtr& node : order) node->ensure_grad();
    root->grad.fill(1.0f);
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      Var& node = **it;
      if (node.backward_fn) node.backward_fn(node);
    }
    return;
  }

  GraphArena& a = arena();
  const ParentRef root_ref = ref_for(root.get(), a);
  const bool reuse = a.tape_valid && !a.unpooled_creation &&
                     !a.log_overflow && root_ref == a.prev_root &&
                     logs_equal(a);
  if (reuse) {
    pool->note_tape_hit();
    // The structural match proves this generation's log lines up with
    // the one the tape was built against, position for position; what
    // changed is only which recycled node sits at each position.
    a.resolved.clear();
    a.resolved.reserve(a.tape.size());
    for (const TapeEntry& entry : a.tape) {
      a.resolved.push_back(entry.persistent != nullptr
                               ? entry.persistent
                               : a.log[entry.record].node);
    }
  } else {
    pool->note_tape_miss();
    a.resolved.clear();
    a.visited_scratch.clear();
    tape_sort(root.get(), a.visited_scratch, a.resolved);
    if (a.log_overflow) {
      // Stamps from the dropped log are dangling positions; run this
      // step from `resolved` but cache nothing.
      a.tape_valid = false;
    } else {
      a.tape.clear();
      a.tape.reserve(a.resolved.size());
      for (Var* node : a.resolved) {
        TapeEntry entry;
        if (node->creation_gen == a.generation) {
          entry.record = node->creation_index;
        } else {
          entry.persistent = node;
        }
        a.tape.push_back(entry);
      }
      a.tape_valid = true;
    }
  }

  // Close the generation: this step's log becomes the reference for the
  // next comparison (buffers swap, so no reallocation) and creations
  // from here on stamp a fresh generation.
  a.prev_root = root_ref;
  std::swap(a.log, a.prev_log);
  std::swap(a.log_parents, a.prev_log_parents);
  a.log.clear();
  a.log_parents.clear();
  a.unpooled_creation = false;
  a.log_overflow = false;
  ++a.generation;

  run_tape(a.resolved, root.get());
}

void discard_tape_log() {
  if (TensorPool::active() == nullptr) return;
  GraphArena& a = arena();
  a.log.clear();
  a.log_parents.clear();
  a.unpooled_creation = false;
  a.log_overflow = false;
  ++a.generation;
}

std::size_t graph_size(const VarPtr& root) {
  std::unordered_set<Var*> visited;
  std::vector<VarPtr> order;
  topo_sort(root, visited, order);
  return order.size();
}

}  // namespace lightnas::nn
