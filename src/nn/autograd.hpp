#pragma once

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <new>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "nn/tensor.hpp"

namespace lightnas::nn {

struct Var;
using VarPtr = std::shared_ptr<Var>;

/// Move-only type-erased callable `void(Var&)` with inline storage —
/// the backward closure of one graph node.
///
/// Every op creates exactly one of these per step, so the previous
/// `std::function` representation paid one heap allocation per node per
/// step for any capture beyond two pointers (all of ours: op lambdas
/// capture parent VarPtrs plus cached forward Tensors). The capacity
/// below fits the largest op closure (softmax_cross_entropy: a VarPtr,
/// a Tensor, and a label vector) with headroom; a larger capture is a
/// compile error, not a silent heap fallback, so the zero-allocation
/// steady state cannot regress by accident.
class BackwardFn {
 public:
  static constexpr std::size_t kCapacity = 96;

  BackwardFn() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, BackwardFn> &&
                std::is_invocable_v<std::decay_t<F>&, Var&>>>
  BackwardFn(F&& fn) {  // NOLINT: implicit by design, mirrors std::function
    using Fn = std::decay_t<F>;
    static_assert(sizeof(Fn) <= kCapacity,
                  "backward closure exceeds BackwardFn::kCapacity; raise it");
    static_assert(alignof(Fn) <= alignof(std::max_align_t),
                  "backward closure is over-aligned");
    static_assert(std::is_nothrow_move_constructible_v<Fn>,
                  "backward closure must be nothrow-movable");
    ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(fn));
    ops_ = ops_for<Fn>();
  }

  BackwardFn(BackwardFn&& other) noexcept { move_from(other); }
  BackwardFn& operator=(BackwardFn&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  BackwardFn(const BackwardFn&) = delete;
  BackwardFn& operator=(const BackwardFn&) = delete;

  ~BackwardFn() { reset(); }

  /// Destroy the held closure (releasing its captured VarPtrs/Tensors);
  /// the BackwardFn becomes empty.
  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  explicit operator bool() const { return ops_ != nullptr; }

  void operator()(Var& node) { ops_->invoke(storage_, node); }

  /// Identity of the held closure *type* (null when empty). Each op's
  /// backward lambda is a distinct type, so this distinguishes e.g. a
  /// relu node from a sigmoid node even when the graph wiring matches —
  /// it is the op component of the tape cache's structural fingerprint.
  const void* type_tag() const { return ops_; }

 private:
  struct OpsTable {
    void (*invoke)(void* storage, Var& node);
    void (*relocate)(void* src, void* dst) noexcept;
    void (*destroy)(void* storage) noexcept;
  };

  template <typename Fn>
  static const OpsTable* ops_for() {
    static const OpsTable table = {
        [](void* storage, Var& node) { (*static_cast<Fn*>(storage))(node); },
        [](void* src, void* dst) noexcept {
          ::new (dst) Fn(std::move(*static_cast<Fn*>(src)));
          static_cast<Fn*>(src)->~Fn();
        },
        [](void* storage) noexcept { static_cast<Fn*>(storage)->~Fn(); },
    };
    return &table;
  }

  void move_from(BackwardFn& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(other.storage_, storage_);
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kCapacity];
  const OpsTable* ops_ = nullptr;
};

/// Node in the reverse-mode autodiff graph.
///
/// Each operation in ops.hpp produces a fresh Var whose `backward_fn`
/// scatters the node's accumulated gradient into its parents. Parameters
/// are leaf Vars that persist across forward passes; a new graph is built
/// on every forward and torn down when the loss Var goes out of scope
/// (parents are held by shared_ptr, so the loss root keeps the graph
/// alive exactly as long as needed — classic RAII, no manual frees).
///
/// When a TensorPool is active (see pool.hpp), "torn down" means
/// *recycled*: the node's tensors return to the buffer pool, its closure
/// is destroyed, and the emptied node parks on a thread-local free list
/// for the next step's graph — so a steady-state training step performs
/// no Var allocation at all. The recycling is invisible to users of this
/// API; values and gradients are bit-identical either way.
struct Var {
  Tensor value;
  Tensor grad;  // same shape as value; lazily allocated by backward()
  bool requires_grad = false;
  std::vector<VarPtr> parents;
  /// Propagates this->grad into parents' grads. Empty for leaves.
  BackwardFn backward_fn;
  /// Optional label for debugging / gradcheck diagnostics.
  std::string name;

  /// Tape-cache bookkeeping (see autograd.cpp): the construction-log
  /// generation that created this node and its position in that log.
  /// 0 means "not part of the current generation" — recycling scrubs
  /// the stamp, so a reused node is always re-stamped on creation.
  std::uint64_t creation_gen = 0;
  std::uint32_t creation_index = 0;

  void ensure_grad();
  void zero_grad();
};

/// Create a trainable leaf (parameter or input requiring gradient).
VarPtr make_leaf(Tensor value, std::string name = {});

/// Create a constant (no gradient tracked).
VarPtr make_const(Tensor value, std::string name = {});

/// Create an interior node wired to `parents`. `backward_fn` is kept
/// only if some parent requires a gradient. This is the single Var
/// construction path for all ops: it draws the node from the recycling
/// free list and records the creation in the tape log (both no-ops
/// without an active TensorPool).
VarPtr make_node(Tensor value, std::initializer_list<VarPtr> parents,
                 BackwardFn backward_fn);
VarPtr make_node(Tensor value, const std::vector<VarPtr>& parents,
                 BackwardFn backward_fn);

/// Run reverse-mode accumulation from `root`, which must be a scalar
/// (1x1) Var. Seeds d(root)/d(root) = 1 and visits the graph in reverse
/// topological order. Gradients *accumulate* into leaves; call
/// `zero_grad` on parameters between steps.
///
/// With an active TensorPool the reverse order is served from a cached
/// tape when the step rebuilt a graph structurally identical to the
/// previous step's: same creation order, same wiring (parents referenced
/// by same-generation position, persistent nodes by address), same op
/// types, same root. A changed op choice, batch shape, or topology
/// always invalidates. Tape reuse changes only the scheduling lookup
/// cost, never the visit order, so gradients stay bit-identical.
void backward(const VarPtr& root);

/// Drop any construction-log entries accumulated since the last pooled
/// backward() and advance the generation, leaving the cached tape and
/// the previous step's reference log intact. Called after a step that
/// bypassed the graph entirely (a compiled execution plan, see
/// plan.hpp): the next dynamic step then fingerprints only its own
/// creations, so tape reuse keeps working across planned/dynamic
/// interleavings. No-op without an active TensorPool.
void discard_tape_log();

/// Number of nodes reachable from `root` (diagnostics / tests).
std::size_t graph_size(const VarPtr& root);

}  // namespace lightnas::nn
