#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "nn/tensor.hpp"

namespace lightnas::nn {

struct Var;
using VarPtr = std::shared_ptr<Var>;

/// Node in the reverse-mode autodiff graph.
///
/// Each operation in ops.hpp produces a fresh Var whose `backward_fn`
/// scatters the node's accumulated gradient into its parents. Parameters
/// are leaf Vars that persist across forward passes; a new graph is built
/// on every forward and torn down when the loss Var goes out of scope
/// (parents are held by shared_ptr, so the loss root keeps the graph
/// alive exactly as long as needed — classic RAII, no manual frees).
struct Var {
  Tensor value;
  Tensor grad;  // same shape as value; lazily allocated by backward()
  bool requires_grad = false;
  std::vector<VarPtr> parents;
  /// Propagates this->grad into parents' grads. Null for leaves.
  std::function<void(Var&)> backward_fn;
  /// Optional label for debugging / gradcheck diagnostics.
  std::string name;

  void ensure_grad();
  void zero_grad();
};

/// Create a trainable leaf (parameter or input requiring gradient).
VarPtr make_leaf(Tensor value, std::string name = {});

/// Create a constant (no gradient tracked).
VarPtr make_const(Tensor value, std::string name = {});

/// Run reverse-mode accumulation from `root`, which must be a scalar
/// (1x1) Var. Seeds d(root)/d(root) = 1 and visits the graph in reverse
/// topological order. Gradients *accumulate* into leaves; call
/// `zero_grad` on parameters between steps.
void backward(const VarPtr& root);

/// Number of nodes reachable from `root` (diagnostics / tests).
std::size_t graph_size(const VarPtr& root);

}  // namespace lightnas::nn
