#include "nn/data.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace lightnas::nn {

Dataset Dataset::gather(const std::vector<std::size_t>& indices) const {
  Dataset out;
  out.features = Tensor::uninitialized(indices.size(), features.cols());
  out.labels.reserve(indices.size());
  for (std::size_t r = 0; r < indices.size(); ++r) {
    const std::size_t src = indices[r];
    assert(src < size());
    for (std::size_t c = 0; c < features.cols(); ++c) {
      out.features.at(r, c) = features.at(src, c);
    }
    out.labels.push_back(labels[src]);
  }
  return out;
}

std::pair<Dataset, Dataset> Dataset::split(std::size_t n_first,
                                           lightnas::util::Rng& rng) const {
  assert(n_first <= size());
  const std::vector<std::size_t> order = rng.permutation(size());
  std::vector<std::size_t> first(order.begin(),
                                 order.begin() + static_cast<std::ptrdiff_t>(
                                                     n_first));
  std::vector<std::size_t> second(
      order.begin() + static_cast<std::ptrdiff_t>(n_first), order.end());
  return {gather(first), gather(second)};
}

Batcher::Batcher(const Dataset& data, std::size_t batch_size,
                 lightnas::util::Rng& rng)
    : data_(data), batch_size_(batch_size), rng_(rng) {
  assert(batch_size > 0);
  assert(data.size() > 0);
  order_ = rng_.permutation(data_.size());
}

Dataset Batcher::next() {
  std::vector<std::size_t> indices;
  indices.reserve(batch_size_);
  for (std::size_t i = 0; i < batch_size_; ++i) {
    if (cursor_ >= order_.size()) {
      order_ = rng_.permutation(data_.size());
      cursor_ = 0;
    }
    indices.push_back(order_[cursor_++]);
  }
  return data_.gather(indices);
}

std::size_t Batcher::batches_per_epoch() const {
  return (data_.size() + batch_size_ - 1) / batch_size_;
}

void Batcher::restore_state(State state) {
  if (state.order.size() != data_.size() ||
      state.cursor > state.order.size()) {
    throw std::invalid_argument(
        "Batcher::restore_state: snapshot does not match dataset");
  }
  order_ = std::move(state.order);
  cursor_ = state.cursor;
}

SyntheticTask make_synthetic_task(const SyntheticTaskConfig& config) {
  assert(config.num_classes >= 2);
  assert(config.feature_dim >= 2);
  assert(config.num_centers >= config.num_classes);
  assert(config.label_noise >= 0.0 && config.label_noise < 1.0);
  lightnas::util::Rng rng(config.seed);

  // Random prototypes; classes are assigned round-robin so they are
  // exactly balanced across centers.
  std::vector<std::vector<float>> centers(
      config.num_centers, std::vector<float>(config.feature_dim));
  std::vector<std::size_t> center_class(config.num_centers);
  for (std::size_t j = 0; j < config.num_centers; ++j) {
    for (auto& v : centers[j]) v = static_cast<float>(rng.normal());
    center_class[j] = j % config.num_classes;
  }

  auto sample_split = [&](std::size_t n) {
    Dataset d;
    d.features = Tensor::randn(n, config.feature_dim, rng);
    d.labels.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      double best = 0.0;
      std::size_t best_center = 0;
      for (std::size_t j = 0; j < config.num_centers; ++j) {
        double dist_sq = 0.0;
        for (std::size_t c = 0; c < config.feature_dim; ++c) {
          const double diff = static_cast<double>(d.features.at(i, c)) -
                              static_cast<double>(centers[j][c]);
          dist_sq += diff * diff;
        }
        if (j == 0 || dist_sq < best) {
          best = dist_sq;
          best_center = j;
        }
      }
      std::size_t label = center_class[best_center];
      if (config.label_noise > 0.0 && rng.bernoulli(config.label_noise)) {
        label = static_cast<std::size_t>(
            rng.uniform_index(config.num_classes));
      }
      d.labels.push_back(label);
    }
    return d;
  };

  SyntheticTask task;
  task.train = sample_split(config.train_size);
  task.valid = sample_split(config.valid_size);
  return task;
}

}  // namespace lightnas::nn
