#pragma once

#include <cstddef>
#include <vector>

#include "nn/tensor.hpp"
#include "util/rng.hpp"

namespace lightnas::nn {

/// In-memory labelled dataset: features (N x D) plus integer labels.
struct Dataset {
  Tensor features;                   // N x D
  std::vector<std::size_t> labels;   // size N

  std::size_t size() const { return labels.size(); }
  std::size_t feature_dim() const { return features.cols(); }

  /// Copy the given example indices into a contiguous batch.
  Dataset gather(const std::vector<std::size_t>& indices) const;

  /// Deterministic split into [0, n_first) and [n_first, N) after a
  /// seeded shuffle (the paper's 80/20 predictor split, Sec 3.2).
  std::pair<Dataset, Dataset> split(std::size_t n_first,
                                    lightnas::util::Rng& rng) const;
};

/// Shuffled mini-batch iterator over a Dataset.
class Batcher {
 public:
  /// Serializable iterator position (checkpoint support). Together with
  /// the state of the Rng the batcher draws from, this reproduces the
  /// exact batch sequence after a restore.
  struct State {
    std::vector<std::size_t> order;
    std::size_t cursor = 0;
  };

  Batcher(const Dataset& data, std::size_t batch_size,
          lightnas::util::Rng& rng);

  /// Fetch the next batch, reshuffling at each epoch boundary.
  Dataset next();

  std::size_t batches_per_epoch() const;

  State export_state() const { return {order_, cursor_}; }
  /// Restore a snapshot taken on a batcher over the same dataset.
  void restore_state(State state);

 private:
  const Dataset& data_;
  std::size_t batch_size_;
  lightnas::util::Rng& rng_;
  std::vector<std::size_t> order_;
  std::size_t cursor_ = 0;
};

/// Configuration for the synthetic classification task used to train the
/// supernet surrogate (substitute for ImageNet-100; see DESIGN.md).
///
/// The task is a Voronoi-teacher problem: inputs are isotropic Gaussian
/// vectors; `num_centers` random prototypes are each assigned a class,
/// and an input's true label is the class of its nearest prototype. With
/// several prototypes per class the decision regions are unions of
/// Voronoi cells — strongly non-linear but smooth, so student capacity
/// (depth x width) monotonically buys accuracy over a wide range before
/// saturating. That is exactly the accuracy/latency tension the
/// constrained search trades against. A label-noise floor keeps
/// validation loss sensitive near the top. (A tanh "random teacher
/// network" was rejected: for Gaussian inputs at trainable gains its
/// argmax boundary is quasi-linear and a linear probe matches deep
/// students — no capacity signal.)
struct SyntheticTaskConfig {
  std::size_t num_classes = 10;
  std::size_t feature_dim = 16;
  std::size_t num_centers = 64;
  std::size_t train_size = 16384;
  std::size_t valid_size = 2048;
  /// Fraction of labels flipped uniformly at random.
  double label_noise = 0.05;
  std::uint64_t seed = 1234;
};

struct SyntheticTask {
  Dataset train;
  Dataset valid;
};

/// Generate the Voronoi-teacher classification task described above.
SyntheticTask make_synthetic_task(const SyntheticTaskConfig& config);

}  // namespace lightnas::nn
