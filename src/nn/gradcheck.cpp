#include "nn/gradcheck.hpp"

#include <cassert>
#include <cmath>

namespace lightnas::nn {

GradCheckResult gradcheck(const std::function<VarPtr()>& loss_fn,
                          const VarPtr& leaf, double eps, double tolerance) {
  assert(leaf->requires_grad);

  // Analytic pass.
  leaf->zero_grad();
  VarPtr loss = loss_fn();
  backward(loss);
  const Tensor analytic = leaf->grad;

  GradCheckResult result;
  for (std::size_t i = 0; i < leaf->value.size(); ++i) {
    const float original = leaf->value[i];

    leaf->value[i] = original + static_cast<float>(eps);
    const double up = static_cast<double>(loss_fn()->value.item());
    leaf->value[i] = original - static_cast<float>(eps);
    const double down = static_cast<double>(loss_fn()->value.item());
    leaf->value[i] = original;

    const double numeric = (up - down) / (2.0 * eps);
    const double a = static_cast<double>(analytic[i]);
    const double abs_err = std::abs(a - numeric);
    const double denom = std::max({std::abs(a), std::abs(numeric), 1e-8});
    result.max_abs_error = std::max(result.max_abs_error, abs_err);
    result.max_rel_error = std::max(result.max_rel_error, abs_err / denom);
  }
  result.passed = result.max_abs_error < tolerance ||
                  result.max_rel_error < tolerance;
  return result;
}

}  // namespace lightnas::nn
