#pragma once

#include <functional>

#include "nn/autograd.hpp"

namespace lightnas::nn {

/// Result of comparing analytic gradients against central finite
/// differences for a single leaf tensor.
struct GradCheckResult {
  double max_abs_error = 0.0;
  double max_rel_error = 0.0;
  bool passed = false;
};

/// Check d(loss)/d(leaf) for `loss_fn`, a function that rebuilds the graph
/// from current leaf values and returns a scalar Var. The leaf's value is
/// perturbed elementwise by +-eps. `loss_fn` MUST be deterministic.
GradCheckResult gradcheck(const std::function<VarPtr()>& loss_fn,
                          const VarPtr& leaf, double eps = 1e-3,
                          double tolerance = 5e-2);

}  // namespace lightnas::nn
