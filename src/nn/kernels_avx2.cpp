// AVX2 microkernels for the dense hot paths. This translation unit is
// compiled with -mavx2 -mfma -ffp-contract=off (see src/nn/CMakeLists)
// and only ever entered through the ISA dispatch in tensor.cpp, which
// has already checked CPUID.
//
// Bit-identity contract (see simd.hpp): with fma == false, every output
// element is produced by the exact IEEE op sequence of the scalar
// kernels — a single ascending-k chain of separately rounded mul then
// add, starting from 0.0f on the first k-tile. Vectorization is across
// output columns (8 lanes = 8 independent chains) and row micro-tiling
// is across output rows (independent chains again), so lane/row
// grouping never reorders any one element's chain. -ffp-contract=off
// keeps the compiler from fusing the separate mul/add intrinsics into
// FMAs behind our back. With fma == true the chain's mul+add pairs
// become single-rounded FMAs: faster and slightly more accurate, but
// deliberately opt-in because it breaks cross-ISA reproducibility.
//
// Tail handling is explicit everywhere: columns are processed in tiles
// of 16 and 8 with a masked epilogue for n % 8 (maskload/maskstore
// touch only in-bounds lanes), and row micro-tiles of 4 fall back to
// single rows for the remainder — so odd shapes take the same code
// path, just with masks, rather than a separate scalar loop.

#ifdef LIGHTNAS_HAVE_AVX2

#include <immintrin.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstddef>

#include "nn/simd.hpp"

namespace lightnas::nn::simd {

namespace {

/// Lane masks for a column tail of `rem` (1..7) active lanes:
/// loadu from (kTailMask + 8 - rem) yields rem set lanes then zeros.
alignas(32) constexpr int kTailMask[16] = {-1, -1, -1, -1, -1, -1, -1, -1,
                                           0,  0,  0,  0,  0,  0,  0,  0};

inline __m256i tail_mask(std::size_t rem) {
  return _mm256_loadu_si256(
      reinterpret_cast<const __m256i*>(kTailMask + 8 - rem));
}

/// acc <- acc + av * bv, with the rounding mode of the active tier.
template <bool kFma>
inline __m256 accumulate(__m256 acc, __m256 av, __m256 bv) {
  if constexpr (kFma) {
    return _mm256_fmadd_ps(av, bv, acc);
  } else {
    return _mm256_add_ps(acc, _mm256_mul_ps(av, bv));
  }
}

/// One k-tile of C(i, j..j+15) for up to 4 rows, accumulators held in
/// registers across the tile. `AStride` abstracts the A layout:
/// NN reads a[i * k + p], TN reads a[p * m + i].
struct ANormal {
  const float* a;
  std::size_t k;
  inline float at(std::size_t i, std::size_t p) const { return a[i * k + p]; }
};
struct ATransposed {
  const float* a;
  std::size_t m;
  inline float at(std::size_t i, std::size_t p) const { return a[p * m + i]; }
};

/// Full 16-column tile over rows [i, i+ir), ir in 1..4.
template <bool kFma, typename AView>
inline void tile16(const AView& av, const float* b, float* c, std::size_t n,
                   std::size_t i, std::size_t ir, std::size_t j,
                   std::size_t pb, std::size_t pe) {
  __m256 acc[4][2];
  for (std::size_t r = 0; r < ir; ++r) {
    if (pb == 0) {
      acc[r][0] = _mm256_setzero_ps();
      acc[r][1] = _mm256_setzero_ps();
    } else {
      acc[r][0] = _mm256_loadu_ps(c + (i + r) * n + j);
      acc[r][1] = _mm256_loadu_ps(c + (i + r) * n + j + 8);
    }
  }
  for (std::size_t p = pb; p < pe; ++p) {
    const __m256 b0 = _mm256_loadu_ps(b + p * n + j);
    const __m256 b1 = _mm256_loadu_ps(b + p * n + j + 8);
    for (std::size_t r = 0; r < ir; ++r) {
      const __m256 as = _mm256_set1_ps(av.at(i + r, p));
      acc[r][0] = accumulate<kFma>(acc[r][0], as, b0);
      acc[r][1] = accumulate<kFma>(acc[r][1], as, b1);
    }
  }
  for (std::size_t r = 0; r < ir; ++r) {
    _mm256_storeu_ps(c + (i + r) * n + j, acc[r][0]);
    _mm256_storeu_ps(c + (i + r) * n + j + 8, acc[r][1]);
  }
}

/// One 8-column tile (full vector) over rows [i, i+ir).
template <bool kFma, typename AView>
inline void tile8(const AView& av, const float* b, float* c, std::size_t n,
                  std::size_t i, std::size_t ir, std::size_t j,
                  std::size_t pb, std::size_t pe) {
  __m256 acc[4];
  for (std::size_t r = 0; r < ir; ++r) {
    acc[r] = pb == 0 ? _mm256_setzero_ps()
                     : _mm256_loadu_ps(c + (i + r) * n + j);
  }
  for (std::size_t p = pb; p < pe; ++p) {
    const __m256 b0 = _mm256_loadu_ps(b + p * n + j);
    for (std::size_t r = 0; r < ir; ++r) {
      const __m256 as = _mm256_set1_ps(av.at(i + r, p));
      acc[r] = accumulate<kFma>(acc[r], as, b0);
    }
  }
  for (std::size_t r = 0; r < ir; ++r) {
    _mm256_storeu_ps(c + (i + r) * n + j, acc[r]);
  }
}

/// Masked column tail (rem = n % 8 active lanes) over rows [i, i+ir).
template <bool kFma, typename AView>
inline void tile_tail(const AView& av, const float* b, float* c,
                      std::size_t n, std::size_t i, std::size_t ir,
                      std::size_t j, std::size_t rem, std::size_t pb,
                      std::size_t pe) {
  const __m256i mask = tail_mask(rem);
  __m256 acc[4];
  for (std::size_t r = 0; r < ir; ++r) {
    acc[r] = pb == 0 ? _mm256_setzero_ps()
                     : _mm256_maskload_ps(c + (i + r) * n + j, mask);
  }
  for (std::size_t p = pb; p < pe; ++p) {
    const __m256 b0 = _mm256_maskload_ps(b + p * n + j, mask);
    for (std::size_t r = 0; r < ir; ++r) {
      const __m256 as = _mm256_set1_ps(av.at(i + r, p));
      acc[r] = accumulate<kFma>(acc[r], as, b0);
    }
  }
  for (std::size_t r = 0; r < ir; ++r) {
    _mm256_maskstore_ps(c + (i + r) * n + j, mask, acc[r]);
  }
}

/// Shared driver: rows [r0, r1) of C = A(view) * B with k-tiling `kc`.
template <bool kFma, typename AView>
void gemm_rows(const AView& av, const float* b, float* c, std::size_t k,
               std::size_t n, std::size_t r0, std::size_t r1,
               std::size_t kc) {
  const std::size_t rem = n % 8;
  const std::size_t n16 = n - (n % 16);
  const std::size_t n8 = n - rem;
  for (std::size_t pb = 0; pb < k; pb += kc) {
    const std::size_t pe = std::min(pb + kc, k);
    std::size_t i = r0;
    for (; i + 4 <= r1; i += 4) {
      std::size_t j = 0;
      for (; j < n16; j += 16) tile16<kFma>(av, b, c, n, i, 4, j, pb, pe);
      for (; j < n8; j += 8) tile8<kFma>(av, b, c, n, i, 4, j, pb, pe);
      if (rem != 0) tile_tail<kFma>(av, b, c, n, i, 4, j, rem, pb, pe);
    }
    for (; i < r1; ++i) {
      std::size_t j = 0;
      for (; j < n16; j += 16) tile16<kFma>(av, b, c, n, i, 1, j, pb, pe);
      for (; j < n8; j += 8) tile8<kFma>(av, b, c, n, i, 1, j, pb, pe);
      if (rem != 0) tile_tail<kFma>(av, b, c, n, i, 1, j, rem, pb, pe);
    }
  }
}

}  // namespace

void matmul_rows_avx2(const float* a, const float* b, float* c,
                      std::size_t k, std::size_t n, std::size_t r0,
                      std::size_t r1, std::size_t kc, bool fma) {
  const ANormal av{a, k};
  if (fma) {
    gemm_rows<true>(av, b, c, k, n, r0, r1, kc);
  } else {
    gemm_rows<false>(av, b, c, k, n, r0, r1, kc);
  }
}

void matmul_tn_rows_avx2(const float* a, const float* b, float* c,
                         std::size_t k, std::size_t m, std::size_t n,
                         std::size_t i0, std::size_t i1, std::size_t kc,
                         bool fma) {
  const ATransposed av{a, m};
  if (fma) {
    gemm_rows<true>(av, b, c, k, n, i0, i1, kc);
  } else {
    gemm_rows<false>(av, b, c, k, n, i0, i1, kc);
  }
}

namespace {

/// NT layout: C(i, j) = dot(A row i, B row j), B is (n x k) row-major.
/// Vectorizing the dot along k would split one element's chain across
/// lanes (a horizontal reduction — different rounding order), so like
/// the NN/TN kernels this vectorizes across output COLUMNS: lane l owns
/// the full ascending-p chain of C(i, j + l), fed by a manual 8-way pack
/// of b[(j+l)*k + p]. The pack costs 8 scalar loads per p, but one pack
/// serves all 4 rows of the A micro-tile (32 mul+adds), and the 8 B-row
/// streams advance sequentially so the loads stay in cache. The n % 8
/// column tail runs the scalar dot loop — identical chain, so identity
/// holds without a masked pack.
template <bool kFma>
void nt_rows(const float* a, const float* b, float* c, std::size_t k,
             std::size_t n, std::size_t r0, std::size_t r1) {
  const std::size_t n8 = n - n % 8;
  std::size_t i = r0;
  for (; i + 4 <= r1; i += 4) {
    for (std::size_t j = 0; j < n8; j += 8) {
      __m256 acc[4];
      for (auto& v : acc) v = _mm256_setzero_ps();
      const float* brows = b + j * k;
      for (std::size_t p = 0; p < k; ++p) {
        const __m256 bv = _mm256_set_ps(
            brows[7 * k + p], brows[6 * k + p], brows[5 * k + p],
            brows[4 * k + p], brows[3 * k + p], brows[2 * k + p],
            brows[1 * k + p], brows[0 * k + p]);
        for (std::size_t r = 0; r < 4; ++r) {
          const __m256 as = _mm256_set1_ps(a[(i + r) * k + p]);
          acc[r] = accumulate<kFma>(acc[r], as, bv);
        }
      }
      for (std::size_t r = 0; r < 4; ++r) {
        _mm256_storeu_ps(c + (i + r) * n + j, acc[r]);
      }
    }
  }
  for (; i < r1; ++i) {
    for (std::size_t j = 0; j < n8; j += 8) {
      __m256 acc = _mm256_setzero_ps();
      const float* brows = b + j * k;
      for (std::size_t p = 0; p < k; ++p) {
        const __m256 bv = _mm256_set_ps(
            brows[7 * k + p], brows[6 * k + p], brows[5 * k + p],
            brows[4 * k + p], brows[3 * k + p], brows[2 * k + p],
            brows[1 * k + p], brows[0 * k + p]);
        acc = accumulate<kFma>(acc, _mm256_set1_ps(a[i * k + p]), bv);
      }
      _mm256_storeu_ps(c + i * n + j, acc);
    }
  }
  // Column tail: plain dots (each its own ascending-p chain). With fma,
  // std::fma keeps the tail on the same single-rounding contract.
  for (i = r0; i < r1; ++i) {
    const float* arow = a + i * k;
    for (std::size_t j = n8; j < n; ++j) {
      const float* brow = b + j * k;
      float dot = 0.0f;
      if constexpr (kFma) {
        for (std::size_t p = 0; p < k; ++p) {
          dot = std::fma(arow[p], brow[p], dot);
        }
      } else {
        for (std::size_t p = 0; p < k; ++p) dot += arow[p] * brow[p];
      }
      c[i * n + j] = dot;
    }
  }
}

}  // namespace

void matmul_nt_rows_avx2(const float* a, const float* b, float* c,
                         std::size_t k, std::size_t n, std::size_t r0,
                         std::size_t r1, bool fma) {
  if (fma) {
    nt_rows<true>(a, b, c, k, n, r0, r1);
  } else {
    nt_rows<false>(a, b, c, k, n, r0, r1);
  }
}

void add_row_relu_rows_avx2(float* data, const float* bias,
                            std::size_t cols, std::size_t r0,
                            std::size_t r1) {
  // Operand order matters: vmaxps returns the SECOND operand when either
  // is NaN, and the scalar tier's std::max(v, 0.0f) = (v < 0) ? 0 : v
  // keeps a NaN v. max_ps(zero, v) matches that exactly (including
  // max(+0, -0) == -0); max_ps(v, zero) would silently launder NaN
  // activations into zeros — the same poisoned-value masking PR 3
  // scrubbed out of the GEMM kernels.
  const __m256 zero = _mm256_setzero_ps();
  const std::size_t rem = cols % 8;
  const std::size_t c8 = cols - rem;
  const __m256i mask = rem != 0 ? tail_mask(rem) : _mm256_setzero_si256();
  for (std::size_t r = r0; r < r1; ++r) {
    float* out = data + r * cols;
    std::size_t c = 0;
    for (; c < c8; c += 8) {
      const __m256 v = _mm256_add_ps(_mm256_loadu_ps(out + c),
                                     _mm256_loadu_ps(bias + c));
      _mm256_storeu_ps(out + c, _mm256_max_ps(zero, v));
    }
    if (rem != 0) {
      const __m256 v = _mm256_add_ps(_mm256_maskload_ps(out + c, mask),
                                     _mm256_maskload_ps(bias + c, mask));
      _mm256_maskstore_ps(out + c, mask, _mm256_max_ps(zero, v));
    }
  }
}

namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

double peak_gflops_probe(double seconds) {
  if (!cpu_supports(IsaLevel::kAvx2)) return 0.0;
  const bool fma = cpu_supports(IsaLevel::kAvx2Fma);
  // 8 independent accumulator chains hide the FMA/add latency; per
  // iteration each chain retires 8 lanes x (2 flops fused or 2 separate
  // ops) = 16 flops.
  __m256 acc[8];
  for (auto& v : acc) v = _mm256_set1_ps(1.0f);
  const __m256 x = _mm256_set1_ps(0.999999f);
  const __m256 y = _mm256_set1_ps(1e-7f);
  double best = 0.0;
  const double deadline = now_seconds() + seconds;
  do {
    constexpr std::size_t kIters = 1u << 20;
    const double start = now_seconds();
    if (fma) {
      for (std::size_t it = 0; it < kIters; ++it) {
        for (auto& v : acc) v = _mm256_fmadd_ps(v, x, y);
      }
    } else {
      for (std::size_t it = 0; it < kIters; ++it) {
        for (auto& v : acc) v = _mm256_add_ps(_mm256_mul_ps(v, x), y);
      }
    }
    const double dt = now_seconds() - start;
    const double flops = static_cast<double>(kIters) * 8.0 * 8.0 * 2.0;
    if (dt > 0.0) best = std::max(best, flops / dt / 1e9);
  } while (now_seconds() < deadline);
  // Keep the accumulators alive past the optimizer.
  float sink[8];
  _mm256_storeu_ps(sink, _mm256_add_ps(acc[0], acc[7]));
  volatile float keep = sink[0];
  (void)keep;
  return best;
}

}  // namespace lightnas::nn::simd

#endif  // LIGHTNAS_HAVE_AVX2
