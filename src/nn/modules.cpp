#include "nn/modules.hpp"

#include <cassert>
#include <cmath>

#include "nn/ops.hpp"
#include "util/rng.hpp"

namespace lightnas::nn {

std::size_t Module::num_parameters() const {
  std::size_t total = 0;
  for (const VarPtr& p : parameters()) total += p->value.size();
  return total;
}

void Module::zero_grad() const {
  for (const VarPtr& p : parameters()) p->zero_grad();
}

Linear::Linear(std::size_t in_features, std::size_t out_features,
               lightnas::util::Rng& rng, std::string name)
    : in_(in_features), out_(out_features) {
  assert(in_features > 0 && out_features > 0);
  const float stddev =
      std::sqrt(2.0f / static_cast<float>(in_features));
  weight_ = make_leaf(Tensor::randn(in_, out_, rng, stddev), name + ".W");
  bias_ = make_leaf(Tensor::zeros(1, out_), name + ".b");
}

VarPtr Linear::forward(const VarPtr& x) const {
  assert(x->value.cols() == in_);
  return ops::add_bias(ops::matmul(x, weight_), bias_);
}

Tensor Linear::forward_inference(const Tensor& x, bool fuse_relu) const {
  assert(x.cols() == in_);
  Tensor out = matmul(x, weight_->value);
  if (fuse_relu) {
    out.add_row_relu_inplace(bias_->value);
  } else {
    out.add_row_inplace(bias_->value);
  }
  return out;
}

std::vector<VarPtr> Linear::parameters() const {
  return {weight_, bias_};
}

Mlp::Mlp(const std::vector<std::size_t>& layer_sizes,
         lightnas::util::Rng& rng, std::string name) {
  assert(layer_sizes.size() >= 2);
  layers_.reserve(layer_sizes.size() - 1);
  for (std::size_t i = 0; i + 1 < layer_sizes.size(); ++i) {
    layers_.emplace_back(layer_sizes[i], layer_sizes[i + 1], rng,
                         name + ".fc" + std::to_string(i));
  }
}

VarPtr Mlp::forward(const VarPtr& x) const {
  VarPtr h = x;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    h = layers_[i].forward(h);
    if (i + 1 < layers_.size()) h = ops::relu(h);
  }
  return h;
}

Tensor Mlp::forward_inference(const Tensor& x) const {
  Tensor h = x;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    // Hidden layers take the fused bias+ReLU kernel (one memory pass);
    // the output layer stays linear.
    h = layers_[i].forward_inference(h, /*fuse_relu=*/i + 1 <
                                            layers_.size());
  }
  return h;
}

std::vector<VarPtr> Mlp::parameters() const {
  std::vector<VarPtr> params;
  for (const Linear& layer : layers_) {
    for (const VarPtr& p : layer.parameters()) params.push_back(p);
  }
  return params;
}

ResidualBlock::ResidualBlock(std::size_t dim, std::size_t hidden,
                             lightnas::util::Rng& rng, std::string name,
                             double branch_scale)
    : hidden_(hidden),
      branch_scale_(branch_scale),
      fc1_(dim, hidden, rng, name + ".fc1"),
      fc2_(hidden, dim, rng, name + ".fc2") {}

VarPtr ResidualBlock::forward(const VarPtr& x) const {
  VarPtr branch = fc2_.forward(ops::relu(fc1_.forward(x)));
  if (branch_scale_ != 1.0) branch = ops::scale(branch, branch_scale_);
  return ops::add(x, branch);
}

VarPtr ResidualBlock::forward_gated(const VarPtr& x,
                                    const VarPtr& gate) const {
  VarPtr branch = fc2_.forward(ops::relu(fc1_.forward(x)));
  if (branch_scale_ != 1.0) branch = ops::scale(branch, branch_scale_);
  return ops::add(x, ops::mul_scalar(branch, gate));
}

std::vector<VarPtr> ResidualBlock::parameters() const {
  std::vector<VarPtr> params = fc1_.parameters();
  for (const VarPtr& p : fc2_.parameters()) params.push_back(p);
  return params;
}

}  // namespace lightnas::nn
