#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "nn/autograd.hpp"

namespace lightnas::util {
class Rng;
}

namespace lightnas::nn {

/// Base class for trainable components. Parameters are persistent leaf
/// Vars; every forward pass builds a fresh graph referencing them, so
/// gradients accumulate into the same storage the optimizer updates.
class Module {
 public:
  virtual ~Module() = default;
  virtual std::vector<VarPtr> parameters() const = 0;

  /// Total scalar parameter count.
  std::size_t num_parameters() const;
  /// Clear accumulated gradients on all parameters.
  void zero_grad() const;
};

/// Fully connected layer: y = x W + b, with Kaiming-uniform-flavoured
/// initialization (stddev sqrt(2 / fan_in)).
class Linear : public Module {
 public:
  Linear(std::size_t in_features, std::size_t out_features,
         lightnas::util::Rng& rng, std::string name = "linear");

  VarPtr forward(const VarPtr& x) const;
  /// Graph-free batched forward (B x in -> B x out). Bit-identical to
  /// `forward` — same matmul kernel, same accumulation order — without
  /// allocating autograd nodes; safe to call concurrently from many
  /// threads (touches only the immutable parameter values). With
  /// `fuse_relu` the bias add and ReLU run as one fused kernel (same
  /// math, one memory pass). Kernels dispatch over
  /// ParallelContext::current() and stay bit-identical at any thread
  /// count.
  Tensor forward_inference(const Tensor& x, bool fuse_relu = false) const;
  std::vector<VarPtr> parameters() const override;

  std::size_t in_features() const { return in_; }
  std::size_t out_features() const { return out_; }
  const VarPtr& weight() const { return weight_; }
  const VarPtr& bias() const { return bias_; }

 private:
  std::size_t in_;
  std::size_t out_;
  VarPtr weight_;
  VarPtr bias_;
};

/// Multi-layer perceptron with ReLU between hidden layers and a linear
/// output. `layer_sizes` = {in, h1, ..., out}. This is exactly the shape
/// of the paper's latency predictor (Sec 3.2): {L*K, 128, 64, 1}.
class Mlp : public Module {
 public:
  Mlp(const std::vector<std::size_t>& layer_sizes, lightnas::util::Rng& rng,
      std::string name = "mlp");

  VarPtr forward(const VarPtr& x) const;
  /// Graph-free batched forward over B rows at once: one matmul per
  /// layer instead of B sequential 1-row graph builds. This is the
  /// serving layer's hot path; see Linear::forward_inference for the
  /// bit-identity and thread-safety contract.
  Tensor forward_inference(const Tensor& x) const;
  std::vector<VarPtr> parameters() const override;

  const std::vector<Linear>& layers() const { return layers_; }

 private:
  std::vector<Linear> layers_;
};

/// Residual bottleneck surrogate block: x + s * W2 relu(W1 x). The
/// hidden width plays the role of an MBConv block's expansion capacity
/// in the supernet simulation (see DESIGN.md, supernet substitution).
/// `branch_scale` keeps activation variance bounded in deep stacks
/// (without it, 22 chained residual blocks double the variance per layer
/// and overflow); use ~1/sqrt(depth).
class ResidualBlock : public Module {
 public:
  ResidualBlock(std::size_t dim, std::size_t hidden,
                lightnas::util::Rng& rng, std::string name = "resblock",
                double branch_scale = 1.0);

  VarPtr forward(const VarPtr& x) const;

  /// Forward with a 1x1 gate Var multiplied onto the *branch only*:
  /// x + gate * s * W2 relu(W1 x). With a straight-through gate valued
  /// 1.0 the output is unchanged, while d(out)/d(gate) = branch(x) — an
  /// operator-specific credit signal. (Gating the whole output instead
  /// would make the gate gradient <grad, x + branch>, dominated by the
  /// op-independent trunk term, which destroys single-path credit
  /// assignment.)
  VarPtr forward_gated(const VarPtr& x, const VarPtr& gate) const;

  std::vector<VarPtr> parameters() const override;

  std::size_t hidden() const { return hidden_; }

 private:
  std::size_t hidden_;
  double branch_scale_;
  Linear fc1_;
  Linear fc2_;
};

}  // namespace lightnas::nn
