#include "nn/ops.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "nn/plan.hpp"
#include "util/check.hpp"

namespace lightnas::nn::ops {

namespace {

// Var construction (node recycling + tape logging) lives in
// nn::make_node — see autograd.hpp.

void accumulate(const VarPtr& p, const Tensor& g) {
  if (!p->requires_grad && !p->backward_fn && p->parents.empty()) {
    // Pure constant leaf: skip the work.
    return;
  }
  p->ensure_grad();
  p->grad.add_inplace(g);
}

}  // namespace

VarPtr matmul(const VarPtr& a, const VarPtr& b) {
  LIGHTNAS_CHECK(a->value.cols() == b->value.rows(),
                 "ops::matmul: " + a->value.shape_string() + " * " +
                     b->value.shape_string());
  Tensor out = lightnas::nn::matmul(a->value, b->value);
  VarPtr node = make_node(std::move(out), {a, b}, [a, b](Var& node) {
    // dL/dA = dL/dC * B^T ; dL/dB = A^T * dL/dC
    accumulate(a, matmul_nt(node.grad, b->value));
    accumulate(b, matmul_tn(a->value, node.grad));
  });
  if (plan::detail::recording_active()) {
    plan::detail::record_op(node, plan::OpKind::kMatmul, a, &b, 0.0);
  }
  return node;
}

VarPtr add(const VarPtr& a, const VarPtr& b) {
  LIGHTNAS_CHECK(a->value.same_shape(b->value),
                 "ops::add: " + a->value.shape_string() + " + " +
                     b->value.shape_string());
  Tensor out = a->value;
  out.add_inplace(b->value);
  VarPtr node = make_node(std::move(out), {a, b}, [a, b](Var& node) {
    accumulate(a, node.grad);
    accumulate(b, node.grad);
  });
  if (plan::detail::recording_active()) {
    plan::detail::record_op(node, plan::OpKind::kAdd, a, &b, 0.0);
  }
  return node;
}

VarPtr sub(const VarPtr& a, const VarPtr& b) {
  LIGHTNAS_CHECK(a->value.same_shape(b->value),
                 "ops::sub: " + a->value.shape_string() + " - " +
                     b->value.shape_string());
  Tensor out = a->value;
  out.sub_inplace(b->value);
  return make_node(std::move(out), {a, b}, [a, b](Var& node) {
    accumulate(a, node.grad);
    Tensor neg = node.grad;
    neg.scale_inplace(-1.0f);
    accumulate(b, neg);
  });
}

VarPtr mul(const VarPtr& a, const VarPtr& b) {
  LIGHTNAS_CHECK(a->value.same_shape(b->value),
                 "ops::mul: " + a->value.shape_string() + " * " +
                     b->value.shape_string());
  Tensor out = a->value;
  for (std::size_t i = 0; i < out.size(); ++i) out[i] *= b->value[i];
  return make_node(std::move(out), {a, b}, [a, b](Var& node) {
    Tensor ga = node.grad;
    for (std::size_t i = 0; i < ga.size(); ++i) ga[i] *= b->value[i];
    accumulate(a, ga);
    Tensor gb = node.grad;
    for (std::size_t i = 0; i < gb.size(); ++i) gb[i] *= a->value[i];
    accumulate(b, gb);
  });
}

VarPtr add_bias(const VarPtr& x, const VarPtr& bias) {
  LIGHTNAS_CHECK(bias->value.rows() == 1 &&
                     bias->value.cols() == x->value.cols(),
                 "ops::add_bias: " + x->value.shape_string() + " + bias " +
                     bias->value.shape_string());
  Tensor out = x->value;
  out.add_row_inplace(bias->value);
  VarPtr node = make_node(std::move(out), {x, bias}, [x, bias](Var& node) {
    accumulate(x, node.grad);
    Tensor gb = Tensor::zeros(1, node.grad.cols());
    for (std::size_t r = 0; r < node.grad.rows(); ++r) {
      for (std::size_t c = 0; c < node.grad.cols(); ++c) {
        gb[c] += node.grad.at(r, c);
      }
    }
    accumulate(bias, gb);
  });
  if (plan::detail::recording_active()) {
    plan::detail::record_op(node, plan::OpKind::kAddBias, x, &bias, 0.0);
  }
  return node;
}

VarPtr scale(const VarPtr& x, double factor) {
  Tensor out = x->value;
  out.scale_inplace(static_cast<float>(factor));
  VarPtr node = make_node(std::move(out), {x}, [x, factor](Var& node) {
    Tensor g = node.grad;
    g.scale_inplace(static_cast<float>(factor));
    accumulate(x, g);
  });
  if (plan::detail::recording_active()) {
    plan::detail::record_op(node, plan::OpKind::kScale, x, nullptr, factor);
  }
  return node;
}

VarPtr add_scalar(const VarPtr& x, double constant) {
  Tensor out = x->value;
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] += static_cast<float>(constant);
  }
  VarPtr node = make_node(std::move(out), {x}, [x](Var& node) {
    accumulate(x, node.grad);
  });
  if (plan::detail::recording_active()) {
    plan::detail::record_op(node, plan::OpKind::kAddScalar, x, nullptr,
                            constant);
  }
  return node;
}

VarPtr mul_scalar(const VarPtr& x, const VarPtr& scalar) {
  LIGHTNAS_CHECK(scalar->value.rows() == 1 && scalar->value.cols() == 1,
                 "ops::mul_scalar: scalar operand is " +
                     scalar->value.shape_string());
  const float s = scalar->value.item();
  Tensor out = x->value;
  out.scale_inplace(s);
  return make_node(std::move(out), {x, scalar}, [x, scalar, s](Var& node) {
    Tensor gx = node.grad;
    gx.scale_inplace(s);
    accumulate(x, gx);
    float gs = 0.0f;
    for (std::size_t i = 0; i < node.grad.size(); ++i) {
      gs += node.grad[i] * x->value[i];
    }
    accumulate(scalar, Tensor::scalar(gs));
  });
}

VarPtr relu(const VarPtr& x) {
  Tensor out = x->value;
  out.relu_inplace();
  VarPtr node = make_node(std::move(out), {x}, [x](Var& node) {
    Tensor g = node.grad;
    for (std::size_t i = 0; i < g.size(); ++i) {
      if (x->value[i] <= 0.0f) g[i] = 0.0f;
    }
    accumulate(x, g);
  });
  if (plan::detail::recording_active()) {
    plan::detail::record_op(node, plan::OpKind::kRelu, x, nullptr, 0.0);
  }
  return node;
}

VarPtr sigmoid(const VarPtr& x) {
  Tensor out = x->value;
  for (auto& v : out.data()) v = 1.0f / (1.0f + std::exp(-v));
  auto node = make_node(out, {x}, [x, out](Var& n) {
    Tensor g = n.grad;
    for (std::size_t i = 0; i < g.size(); ++i) {
      g[i] *= out[i] * (1.0f - out[i]);
    }
    accumulate(x, g);
  });
  return node;
}

VarPtr tanh_op(const VarPtr& x) {
  Tensor out = x->value;
  for (auto& v : out.data()) v = std::tanh(v);
  auto node = make_node(out, {x}, [x, out](Var& n) {
    Tensor g = n.grad;
    for (std::size_t i = 0; i < g.size(); ++i) {
      g[i] *= 1.0f - out[i] * out[i];
    }
    accumulate(x, g);
  });
  return node;
}

VarPtr row_softmax(const VarPtr& x) {
  Tensor out = x->value;
  const std::size_t cols = out.cols();
  for (std::size_t r = 0; r < out.rows(); ++r) {
    float mx = out.at(r, 0);
    for (std::size_t c = 1; c < cols; ++c) mx = std::max(mx, out.at(r, c));
    float total = 0.0f;
    for (std::size_t c = 0; c < cols; ++c) {
      const float e = std::exp(out.at(r, c) - mx);
      out.at(r, c) = e;
      total += e;
    }
    for (std::size_t c = 0; c < cols; ++c) out.at(r, c) /= total;
  }
  auto node = make_node(out, {x}, [x, out](Var& n) {
    // dL/dx_j = s_j * (g_j - sum_k g_k s_k), per row; every element is
    // assigned below.
    Tensor gx = Tensor::uninitialized(out.rows(), out.cols());
    for (std::size_t r = 0; r < out.rows(); ++r) {
      float dot = 0.0f;
      for (std::size_t c = 0; c < out.cols(); ++c) {
        dot += n.grad.at(r, c) * out.at(r, c);
      }
      for (std::size_t c = 0; c < out.cols(); ++c) {
        gx.at(r, c) = out.at(r, c) * (n.grad.at(r, c) - dot);
      }
    }
    accumulate(x, gx);
  });
  return node;
}

VarPtr sum_all(const VarPtr& x) {
  Tensor out = Tensor::scalar(x->value.sum());
  return make_node(std::move(out), {x}, [x](Var& node) {
    const float g = node.grad.item();
    Tensor gx = Tensor::full(x->value.rows(), x->value.cols(), g);
    accumulate(x, gx);
  });
}

VarPtr mean_all(const VarPtr& x) {
  const auto n = static_cast<float>(x->value.size());
  Tensor out = Tensor::scalar(x->value.sum() / n);
  return make_node(std::move(out), {x}, [x, n](Var& node) {
    const float g = node.grad.item() / n;
    Tensor gx = Tensor::full(x->value.rows(), x->value.cols(), g);
    accumulate(x, gx);
  });
}

VarPtr select(const VarPtr& x, std::size_t r, std::size_t c) {
  Tensor out = Tensor::scalar(x->value.at(r, c));
  return make_node(std::move(out), {x}, [x, r, c](Var& node) {
    Tensor gx = Tensor::zeros(x->value.rows(), x->value.cols());
    gx.at(r, c) = node.grad.item();
    accumulate(x, gx);
  });
}

VarPtr reshape(const VarPtr& x, std::size_t rows, std::size_t cols) {
  Tensor out = x->value.reshaped(rows, cols);
  return make_node(std::move(out), {x}, [x](Var& node) {
    accumulate(x, node.grad.reshaped(x->value.rows(), x->value.cols()));
  });
}

VarPtr detach(const VarPtr& x) {
  return make_const(x->value, x->name.empty() ? "" : x->name + ".detach");
}

VarPtr vstack(const std::vector<VarPtr>& blocks) {
  LIGHTNAS_CHECK(!blocks.empty(), "ops::vstack: empty block list");
  const std::size_t cols = blocks.front()->value.cols();
  std::size_t rows = 0;
  for (const VarPtr& b : blocks) {
    LIGHTNAS_CHECK(b->value.cols() == cols,
                   "ops::vstack: block " + b->value.shape_string() +
                       " vs leading width " + std::to_string(cols));
    rows += b->value.rows();
  }
  Tensor out = Tensor::uninitialized(rows, cols);
  std::size_t row = 0;
  for (const VarPtr& b : blocks) {
    for (std::size_t r = 0; r < b->value.rows(); ++r, ++row) {
      for (std::size_t c = 0; c < cols; ++c) {
        out.at(row, c) = b->value.at(r, c);
      }
    }
  }
  // Init-capture: a plain `[blocks]` capture of a const& parameter makes
  // a const closure member, which would force BackwardFn moves to copy.
  return make_node(std::move(out), blocks, [blocks = blocks](Var& node) {
    std::size_t row = 0;
    for (const VarPtr& b : blocks) {
      Tensor g = Tensor::uninitialized(b->value.rows(), b->value.cols());
      for (std::size_t r = 0; r < g.rows(); ++r, ++row) {
        for (std::size_t c = 0; c < g.cols(); ++c) {
          g.at(r, c) = node.grad.at(row, c);
        }
      }
      accumulate(b, g);
    }
  });
}

VarPtr binarize_rows_ste(const VarPtr& x) {
  Tensor out = Tensor::zeros(x->value.rows(), x->value.cols());
  for (std::size_t r = 0; r < out.rows(); ++r) {
    out.at(r, x->value.argmax_row(r)) = 1.0f;
  }
  return make_node(std::move(out), {x}, [x](Var& node) {
    // Straight-through: treat the binarization as identity for gradients.
    accumulate(x, node.grad);
  });
}

VarPtr slice_rows(const VarPtr& x, std::size_t start, std::size_t count) {
  LIGHTNAS_CHECK(count > 0 && start + count <= x->value.rows(),
                 "ops::slice_rows: [" + std::to_string(start) + ", " +
                     std::to_string(start + count) + ") of " +
                     x->value.shape_string());
  Tensor out = Tensor::uninitialized(count, x->value.cols());
  for (std::size_t r = 0; r < count; ++r) {
    for (std::size_t c = 0; c < out.cols(); ++c) {
      out.at(r, c) = x->value.at(start + r, c);
    }
  }
  return make_node(std::move(out), {x}, [x, start, count](Var& node) {
    Tensor g = Tensor::zeros(x->value.rows(), x->value.cols());
    for (std::size_t r = 0; r < count; ++r) {
      for (std::size_t c = 0; c < g.cols(); ++c) {
        g.at(start + r, c) = node.grad.at(r, c);
      }
    }
    accumulate(x, g);
  });
}

VarPtr softmax_cross_entropy(const VarPtr& logits,
                             const std::vector<std::size_t>& labels) {
  LIGHTNAS_CHECK(logits->value.rows() == labels.size(),
                 "ops::softmax_cross_entropy: logits " +
                     logits->value.shape_string() + " vs " +
                     std::to_string(labels.size()) + " labels");
  const std::size_t batch = logits->value.rows();
  const std::size_t classes = logits->value.cols();

  // Stable softmax probabilities, cached for the backward pass.
  Tensor probs = Tensor::uninitialized(batch, classes);
  double total_loss = 0.0;
  for (std::size_t r = 0; r < batch; ++r) {
    LIGHTNAS_CHECK(labels[r] < classes,
                   "ops::softmax_cross_entropy: label " +
                       std::to_string(labels[r]) + " >= " +
                       std::to_string(classes) + " classes");
    float mx = logits->value.at(r, 0);
    for (std::size_t c = 1; c < classes; ++c) {
      mx = std::max(mx, logits->value.at(r, c));
    }
    float denom = 0.0f;
    for (std::size_t c = 0; c < classes; ++c) {
      const float e = std::exp(logits->value.at(r, c) - mx);
      probs.at(r, c) = e;
      denom += e;
    }
    for (std::size_t c = 0; c < classes; ++c) probs.at(r, c) /= denom;
    total_loss -= std::log(std::max(probs.at(r, labels[r]), 1e-12f));
  }
  Tensor out = Tensor::scalar(
      static_cast<float>(total_loss / static_cast<double>(batch)));

  VarPtr node = make_node(std::move(out), {logits},
                          [logits, probs, labels = labels](Var& node) {
    const float g = node.grad.item() /
                    static_cast<float>(logits->value.rows());
    Tensor gx = probs;
    for (std::size_t r = 0; r < gx.rows(); ++r) {
      gx.at(r, labels[r]) -= 1.0f;
    }
    gx.scale_inplace(g);
    accumulate(logits, gx);
  });
  if (plan::detail::recording_active()) {
    plan::detail::record_op(node, plan::OpKind::kSoftmaxCE, logits, nullptr,
                            0.0);
  }
  return node;
}

VarPtr mse_loss(const VarPtr& pred, const VarPtr& target) {
  LIGHTNAS_CHECK(pred->value.same_shape(target->value),
                 "ops::mse_loss: pred " + pred->value.shape_string() +
                     " vs target " + target->value.shape_string());
  double total = 0.0;
  for (std::size_t i = 0; i < pred->value.size(); ++i) {
    const double d = static_cast<double>(pred->value[i]) -
                     static_cast<double>(target->value[i]);
    total += d * d;
  }
  const auto n = static_cast<double>(pred->value.size());
  Tensor out = Tensor::scalar(static_cast<float>(total / n));
  return make_node(std::move(out), {pred, target},
                   [pred, target, n](Var& node) {
    const float g = node.grad.item() * 2.0f / static_cast<float>(n);
    Tensor gp = pred->value;
    gp.sub_inplace(target->value);
    gp.scale_inplace(g);
    accumulate(pred, gp);
    Tensor gt = gp;
    gt.scale_inplace(-1.0f);
    accumulate(target, gt);
  });
}

double accuracy(const Tensor& logits, const std::vector<std::size_t>& labels) {
  LIGHTNAS_CHECK(logits.rows() == labels.size() && !labels.empty(),
                 "ops::accuracy: logits " + logits.shape_string() + " vs " +
                     std::to_string(labels.size()) + " labels");
  std::size_t correct = 0;
  for (std::size_t r = 0; r < logits.rows(); ++r) {
    if (logits.argmax_row(r) == labels[r]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(labels.size());
}

}  // namespace lightnas::nn::ops
