#pragma once

#include <cstddef>
#include <vector>

#include "nn/autograd.hpp"

namespace lightnas::nn::ops {

/// Matrix product: (m x k) * (k x n) -> (m x n).
VarPtr matmul(const VarPtr& a, const VarPtr& b);

/// Elementwise sum of same-shape tensors.
VarPtr add(const VarPtr& a, const VarPtr& b);

/// Elementwise difference of same-shape tensors.
VarPtr sub(const VarPtr& a, const VarPtr& b);

/// Elementwise (Hadamard) product of same-shape tensors.
VarPtr mul(const VarPtr& a, const VarPtr& b);

/// Broadcast a 1 x n bias row over every row of x (m x n).
VarPtr add_bias(const VarPtr& x, const VarPtr& bias);

/// Multiply every element by a compile-time constant.
VarPtr scale(const VarPtr& x, double factor);

/// Add a constant to every element (gradient passes through).
VarPtr add_scalar(const VarPtr& x, double constant);

/// Multiply a tensor by a 1x1 Var (gradient flows to both operands).
VarPtr mul_scalar(const VarPtr& x, const VarPtr& scalar);

/// Rectified linear unit.
VarPtr relu(const VarPtr& x);

/// Logistic sigmoid.
VarPtr sigmoid(const VarPtr& x);

/// Hyperbolic tangent.
VarPtr tanh_op(const VarPtr& x);

/// Row-wise softmax (numerically stabilized).
VarPtr row_softmax(const VarPtr& x);

/// Sum of all elements -> 1x1.
VarPtr sum_all(const VarPtr& x);

/// Mean of all elements -> 1x1.
VarPtr mean_all(const VarPtr& x);

/// Extract element (r, c) as a 1x1 Var.
VarPtr select(const VarPtr& x, std::size_t r, std::size_t c);

/// View with a different shape (same element count).
VarPtr reshape(const VarPtr& x, std::size_t rows, std::size_t cols);

/// Value copy with gradient flow severed (stop-gradient).
VarPtr detach(const VarPtr& x);

/// Vertically stack blocks with equal column counts (gradient splits
/// back to each block by row range).
VarPtr vstack(const std::vector<VarPtr>& blocks);

/// Contiguous row range [start, start + count) as a view-copy.
VarPtr slice_rows(const VarPtr& x, std::size_t start, std::size_t count);

/// Row-wise hard one-hot of the argmax with a straight-through estimator:
/// forward emits the binarized matrix P-bar of Eq (9); backward passes the
/// incoming gradient through unchanged (dP-bar/dP-hat ~ identity, Eq 12).
VarPtr binarize_rows_ste(const VarPtr& x);

/// Mean softmax cross-entropy between logits (B x C) and integer labels.
/// Fused for numerical stability; returns a 1x1 loss.
VarPtr softmax_cross_entropy(const VarPtr& logits,
                             const std::vector<std::size_t>& labels);

/// Mean squared error between pred and target (same shape) -> 1x1.
VarPtr mse_loss(const VarPtr& pred, const VarPtr& target);

/// Classification accuracy of logits vs labels (no gradient; diagnostics).
double accuracy(const Tensor& logits, const std::vector<std::size_t>& labels);

}  // namespace lightnas::nn::ops
