#include "nn/optim.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numbers>
#include <stdexcept>
#include <string>

namespace lightnas::nn {

CosineSchedule::CosineSchedule(double base_lr, std::size_t total_steps,
                               std::size_t warmup_steps,
                               double warmup_start_lr)
    : base_lr_(base_lr),
      total_steps_(total_steps),
      warmup_steps_(warmup_steps),
      warmup_start_lr_(warmup_start_lr) {
  assert(total_steps > 0);
  assert(warmup_steps < total_steps);
}

double CosineSchedule::lr_at(std::size_t step) const {
  if (step >= total_steps_) return 0.0;
  if (step < warmup_steps_) {
    const double frac = static_cast<double>(step + 1) /
                        static_cast<double>(warmup_steps_);
    return warmup_start_lr_ + (base_lr_ - warmup_start_lr_) * frac;
  }
  const double progress =
      static_cast<double>(step - warmup_steps_) /
      static_cast<double>(total_steps_ - warmup_steps_);
  return 0.5 * base_lr_ * (1.0 + std::cos(std::numbers::pi * progress));
}

double clip_grad_norm(const std::vector<VarPtr>& params, double max_norm) {
  double norm_sq = 0.0;
  for (const VarPtr& p : params) {
    p->ensure_grad();
    for (std::size_t j = 0; j < p->grad.size(); ++j) {
      norm_sq += static_cast<double>(p->grad[j]) *
                 static_cast<double>(p->grad[j]);
    }
  }
  const double norm = std::sqrt(norm_sq);
  if (max_norm > 0.0 && norm > max_norm) {
    const auto scale = static_cast<float>(max_norm / norm);
    for (const VarPtr& p : params) p->grad.scale_inplace(scale);
  }
  return norm;
}

double clip_grad_norm_on(const std::vector<VarPtr>& params,
                         const std::vector<std::uint32_t>& active,
                         double max_norm) {
  // Same accumulation order as the dense walk with the zero terms
  // skipped: +0.0 never changes the accumulator, so the norm (and the
  // clip decision) is bit-equal as long as inactive grads really are
  // zero.
  double norm_sq = 0.0;
  for (const std::uint32_t i : active) {
    Var& p = *params[i];
    p.ensure_grad();
    for (std::size_t j = 0; j < p.grad.size(); ++j) {
      norm_sq += static_cast<double>(p.grad[j]) *
                 static_cast<double>(p.grad[j]);
    }
  }
  const double norm = std::sqrt(norm_sq);
  if (max_norm > 0.0 && norm > max_norm) {
    const auto scale = static_cast<float>(max_norm / norm);
    for (const std::uint32_t i : active) params[i]->grad.scale_inplace(scale);
  }
  return norm;
}

Sgd::Sgd(std::vector<VarPtr> params, double lr, double momentum,
         double weight_decay, double clip_norm)
    : params_(std::move(params)),
      lr_(lr),
      momentum_(momentum),
      weight_decay_(weight_decay),
      clip_norm_(clip_norm) {
  velocity_.reserve(params_.size());
  for (const VarPtr& p : params_) {
    velocity_.push_back(Tensor::zeros(p->value.rows(), p->value.cols()));
  }
}

namespace {

// The SGD update, fused into one pass per parameter: no pooled scratch
// copy of the gradient, one read/modify/write of velocity and value.
// Each branch runs, per element, the exact op chain the unfused
// formulation ran (g' = g + wd*w rounded once; v' = mom*v + g' in two
// roundings; w' = w + (-lr)*v'), so trajectories are deterministic and
// shared by every caller. The `nograd` variants are the same chains
// with the gradient pinned to +0.0f — used by step_on for parameters
// whose gradient is identically zero, where skipping the read is
// exact. This file is compiled with -ffp-contract=off (see
// src/nn/CMakeLists.txt) so the grad and nograd loops cannot be
// FMA-contracted differently; the step()/step_on() bit-identity
// contract depends on that.

void sgd_update(float* w, float* v, const float* g, std::size_t n,
                bool use_wd, float wd, bool use_mom, float mom, float nlr) {
  if (use_mom) {
    if (use_wd) {
      for (std::size_t j = 0; j < n; ++j) {
        const float gj = g[j] + wd * w[j];
        const float vj = mom * v[j] + gj;
        v[j] = vj;
        w[j] += nlr * vj;
      }
    } else {
      for (std::size_t j = 0; j < n; ++j) {
        const float vj = mom * v[j] + g[j];
        v[j] = vj;
        w[j] += nlr * vj;
      }
    }
  } else {
    if (use_wd) {
      for (std::size_t j = 0; j < n; ++j) {
        const float gj = g[j] + wd * w[j];
        w[j] += nlr * gj;
      }
    } else {
      for (std::size_t j = 0; j < n; ++j) {
        w[j] += nlr * g[j];
      }
    }
  }
}

void sgd_update_nograd(float* w, float* v, std::size_t n, bool use_wd,
                       float wd, bool use_mom, float mom, float nlr) {
  if (use_mom) {
    if (use_wd) {
      for (std::size_t j = 0; j < n; ++j) {
        const float gj = 0.0f + wd * w[j];
        const float vj = mom * v[j] + gj;
        v[j] = vj;
        w[j] += nlr * vj;
      }
    } else {
      for (std::size_t j = 0; j < n; ++j) {
        const float vj = mom * v[j] + 0.0f;
        v[j] = vj;
        w[j] += nlr * vj;
      }
    }
  } else if (use_wd) {
    for (std::size_t j = 0; j < n; ++j) {
      const float gj = 0.0f + wd * w[j];
      w[j] += nlr * gj;
    }
  }
  // use_mom == use_wd == false: w += (-lr)*0.0f leaves every element
  // bit-unchanged (+0 stays +0, -0 stays -0) — nothing to do.
}

}  // namespace

void Sgd::step() {
  if (clip_norm_ > 0.0) clip_grad_norm(params_, clip_norm_);
  const bool use_wd = weight_decay_ != 0.0;
  const bool use_mom = momentum_ != 0.0;
  const auto wd = static_cast<float>(weight_decay_);
  const auto mom = static_cast<float>(momentum_);
  const auto nlr = static_cast<float>(-lr_);
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Var& p = *params_[i];
    p.ensure_grad();
    sgd_update(p.value.data().data(), velocity_[i].data().data(),
               p.grad.data().data(), p.value.size(), use_wd, wd, use_mom,
               mom, nlr);
  }
}

void Sgd::step_on(const std::vector<std::uint32_t>& active) {
  if (clip_norm_ > 0.0) clip_grad_norm_on(params_, active, clip_norm_);
  const bool use_wd = weight_decay_ != 0.0;
  const bool use_mom = momentum_ != 0.0;
  const auto wd = static_cast<float>(weight_decay_);
  const auto mom = static_cast<float>(momentum_);
  const auto nlr = static_cast<float>(-lr_);
  std::size_t next_active = 0;
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Var& p = *params_[i];
    if (next_active < active.size() && active[next_active] == i) {
      ++next_active;
      p.ensure_grad();
      sgd_update(p.value.data().data(), velocity_[i].data().data(),
                 p.grad.data().data(), p.value.size(), use_wd, wd, use_mom,
                 mom, nlr);
    } else {
      sgd_update_nograd(p.value.data().data(), velocity_[i].data().data(),
                        p.value.size(), use_wd, wd, use_mom, mom, nlr);
    }
  }
}

void Sgd::zero_grad() {
  for (const VarPtr& p : params_) p->zero_grad();
}

namespace {

void check_state_shapes(const std::vector<VarPtr>& params,
                        const std::vector<Tensor>& tensors,
                        const char* who) {
  if (tensors.size() != params.size()) {
    throw std::invalid_argument(std::string(who) +
                                ": state has wrong parameter count");
  }
  for (std::size_t i = 0; i < params.size(); ++i) {
    if (!tensors[i].same_shape(params[i]->value)) {
      throw std::invalid_argument(std::string(who) +
                                  ": state tensor shape mismatch");
    }
  }
}

}  // namespace

void Sgd::restore_state(const State& state) {
  check_state_shapes(params_, state.velocity, "Sgd::restore_state");
  velocity_ = state.velocity;
}

Adam::Adam(std::vector<VarPtr> params, double lr, double beta1, double beta2,
           double eps, double weight_decay)
    : params_(std::move(params)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const VarPtr& p : params_) {
    m_.push_back(Tensor::zeros(p->value.rows(), p->value.cols()));
    v_.push_back(Tensor::zeros(p->value.rows(), p->value.cols()));
  }
}

void Adam::step() {
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Var& p = *params_[i];
    p.ensure_grad();
    for (std::size_t j = 0; j < p.value.size(); ++j) {
      double g = p.grad[j];
      if (weight_decay_ != 0.0) {
        g += weight_decay_ * static_cast<double>(p.value[j]);
      }
      m_[i][j] = static_cast<float>(beta1_ * m_[i][j] + (1.0 - beta1_) * g);
      v_[i][j] =
          static_cast<float>(beta2_ * v_[i][j] + (1.0 - beta2_) * g * g);
      const double mhat = m_[i][j] / bc1;
      const double vhat = v_[i][j] / bc2;
      p.value[j] -=
          static_cast<float>(lr_ * mhat / (std::sqrt(vhat) + eps_));
    }
  }
}

void Adam::zero_grad() {
  for (const VarPtr& p : params_) p->zero_grad();
}

void Adam::restore_state(const State& state) {
  check_state_shapes(params_, state.m, "Adam::restore_state");
  check_state_shapes(params_, state.v, "Adam::restore_state");
  m_ = state.m;
  v_ = state.v;
  t_ = state.t;
}

LambdaAscent::LambdaAscent(double lr, double initial, bool clamp_at_zero,
                           double unwind_gain)
    : lr_(lr),
      lambda_(initial),
      clamp_at_zero_(clamp_at_zero),
      unwind_gain_(unwind_gain) {
  assert(lr > 0.0);
  assert(unwind_gain >= 1.0);
}

void LambdaAscent::set_lr(double lr) {
  if (!(lr > 0.0)) {
    throw std::invalid_argument("LambdaAscent::set_lr: lr must be > 0");
  }
  lr_ = lr;
}

void LambdaAscent::step(double violation) {
  double rate = lr_;
  // Anti-windup: once the constraint has been crossed (violation and the
  // accumulated multiplier disagree in sign), unwind faster than the
  // buildup so the closed loop does not overshoot the target.
  if (lambda_ * violation < 0.0) rate *= unwind_gain_;
  lambda_ += rate * violation;
  if (clamp_at_zero_) lambda_ = std::max(0.0, lambda_);
}

}  // namespace lightnas::nn
