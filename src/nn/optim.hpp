#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "nn/autograd.hpp"

namespace lightnas::nn {

/// Cosine learning-rate schedule with optional linear warmup — the
/// schedule the paper uses for both supernet search and final training
/// (Sec 4.1: warm up 0.1 -> 0.5 over 5 epochs, cosine decay to zero).
class CosineSchedule {
 public:
  CosineSchedule(double base_lr, std::size_t total_steps,
                 std::size_t warmup_steps = 0, double warmup_start_lr = 0.0);

  double lr_at(std::size_t step) const;

 private:
  double base_lr_;
  std::size_t total_steps_;
  std::size_t warmup_steps_;
  double warmup_start_lr_;
};

/// Rescale gradients in-place so their global L2 norm is at most
/// `max_norm`; returns the pre-clip norm. No-op when max_norm <= 0.
double clip_grad_norm(const std::vector<VarPtr>& params, double max_norm);

/// clip_grad_norm restricted to the ascending-index subset `active` of
/// `params`. Bit-identical to the dense call whenever every parameter
/// outside `active` holds an exactly-zero (or never-allocated)
/// gradient: zero terms contribute +0.0 to the norm accumulator, and
/// rescaling a zero gradient is a no-op. The caller owns that
/// precondition (see Sgd::step_on).
double clip_grad_norm_on(const std::vector<VarPtr>& params,
                         const std::vector<std::uint32_t>& active,
                         double max_norm);

/// SGD with momentum and decoupled weight decay (the paper's optimizer
/// for supernet weights w: lr 0.1 cosine, momentum 0.9, wd 3e-5).
/// `clip_norm` > 0 enables global-norm gradient clipping before the
/// update (deep residual stacks occasionally spike).
class Sgd {
 public:
  /// Serializable optimizer state (checkpoint support): one velocity
  /// tensor per parameter, in parameter order.
  struct State {
    std::vector<Tensor> velocity;
  };

  Sgd(std::vector<VarPtr> params, double lr, double momentum = 0.0,
      double weight_decay = 0.0, double clip_norm = 0.0);

  void step();

  /// Sparse variant of step() for supernet-style training where one
  /// step's backward reaches only a small subset of the parameters:
  /// `active` lists, in ascending order, the indices of parameters
  /// whose gradients may be nonzero; every other parameter MUST hold an
  /// all-zero (or never-allocated) gradient. Weight decay and momentum
  /// still apply to every parameter each step — only the gradient
  /// reads (clip norm + update) are skipped, which is exact because a
  /// zero gradient contributes +0.0 to the norm and +0.0 to the
  /// velocity. Bit-identical to step(); optim.cpp is compiled with
  /// -ffp-contract=off so both element loops round identically.
  void step_on(const std::vector<std::uint32_t>& active);

  void zero_grad();
  void set_lr(double lr) { lr_ = lr; }
  double lr() const { return lr_; }

  State export_state() const { return {velocity_}; }
  /// Restore a snapshot taken on an optimizer over identically-shaped
  /// parameters; throws std::invalid_argument on shape mismatch.
  void restore_state(const State& state);

 private:
  std::vector<VarPtr> params_;
  std::vector<Tensor> velocity_;
  double lr_;
  double momentum_;
  double weight_decay_;
  double clip_norm_;
};

/// Adam (the paper's optimizer for architecture parameters alpha:
/// lr 1e-3, wd 1e-3).
class Adam {
 public:
  /// Serializable optimizer state (checkpoint support).
  struct State {
    std::vector<Tensor> m;
    std::vector<Tensor> v;
    std::size_t t = 0;
  };

  Adam(std::vector<VarPtr> params, double lr, double beta1 = 0.9,
       double beta2 = 0.999, double eps = 1e-8, double weight_decay = 0.0);

  void step();
  void zero_grad();
  void set_lr(double lr) { lr_ = lr; }
  double lr() const { return lr_; }

  State export_state() const { return {m_, v_, t_}; }
  /// Restore a snapshot taken on an optimizer over identically-shaped
  /// parameters; throws std::invalid_argument on shape mismatch.
  void restore_state(const State& state);

 private:
  std::vector<VarPtr> params_;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
  double lr_;
  double beta1_;
  double beta2_;
  double eps_;
  double weight_decay_;
  std::size_t t_ = 0;
};

/// Scalar gradient-*ascent* controller for the trade-off coefficient
/// lambda (Eq 11): lambda <- lambda + eta * (LAT/T - 1).
///
/// Lambda is deliberately UNclamped by default: the paper enforces the
/// *equality* LAT(alpha) = T, so when the architecture is faster than the
/// target, lambda turns negative and rewards latency until the search
/// climbs back up to T (Sec 3.4's "likewise, if LAT < T ..." argument).
/// Set `clamp_at_zero` for the KKT-style inequality variant LAT <= T
/// (used by the ablation benches).
class LambdaAscent {
 public:
  /// `unwind_gain` is an anti-windup factor: when the violation opposes
  /// the accumulated lambda (the constraint has been crossed), the
  /// update is scaled by this factor so the integrator unwinds faster
  /// than it wound up. 1.0 recovers the plain integrator; ~3 removes
  /// most of the overshoot of the lambda/alpha double-integrator loop.
  explicit LambdaAscent(double lr, double initial = 0.0,
                        bool clamp_at_zero = false,
                        double unwind_gain = 3.0);

  /// Update from the normalized constraint violation (LAT/T - 1).
  void step(double violation);

  double value() const { return lambda_; }
  double lr() const { return lr_; }
  /// The watchdog cools the ascent rate down after a rollback.
  void set_lr(double lr);
  void reset(double value = 0.0) { lambda_ = value; }

 private:
  double lr_;
  double lambda_;
  bool clamp_at_zero_;
  double unwind_gain_;
};

}  // namespace lightnas::nn
