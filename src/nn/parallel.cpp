#include "nn/parallel.hpp"

#include <cassert>
#include <condition_variable>
#include <mutex>

#include "util/thread_pool.hpp"

namespace lightnas::nn {

namespace {

/// Innermost ParallelScope override for this thread (null = use global).
thread_local const ParallelContext* tl_override = nullptr;

/// Set while this thread is executing a dispatched chunk. Kernels called
/// from inside a chunk (e.g. a serving worker whose batch forward is
/// itself a pool task) must not re-enter the pool: with every worker
/// blocked waiting on sub-chunks nobody would be left to run them.
thread_local bool tl_in_chunk = false;

struct ChunkGuard {
  bool saved;
  ChunkGuard() : saved(tl_in_chunk) { tl_in_chunk = true; }
  ~ChunkGuard() { tl_in_chunk = saved; }
};

}  // namespace

ParallelContext::ParallelContext() : ParallelContext(ParallelConfig{}) {}

ParallelContext::ParallelContext(const ParallelConfig& config) {
  install(config);
}

ParallelContext::~ParallelContext() = default;

void ParallelContext::install(const ParallelConfig& config) {
  ParallelConfig normalized = config;
  if (normalized.threads == 0) normalized.threads = 1;
  if (normalized.block == 0) normalized.block = 1;
  std::shared_ptr<util::ThreadPool> pool;
  if (normalized.threads > 1) {
    // The caller always runs the first chunk, so the pool only needs
    // threads - 1 workers to reach the configured lane count.
    pool = std::make_shared<util::ThreadPool>(normalized.threads - 1);
  }
  // Order does not matter for correctness (for_rows tolerates any mix of
  // old/new values), but publish the knobs before the pool so a dispatch
  // racing the swap sizes its chunks for the pool it is about to load.
  threads_.store(normalized.threads, std::memory_order_relaxed);
  block_.store(normalized.block, std::memory_order_relaxed);
  min_work_.store(normalized.min_work, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(pool_mu_);
    pool_.swap(pool);
  }
  // `pool` now holds the previous pool (if any) and releases it here —
  // outside the lock, so joining its workers cannot stall a concurrent
  // dispatch's snapshot. If a concurrent for_rows still holds a
  // snapshot, the pool drains and joins when that last holder drops it.
}

std::shared_ptr<util::ThreadPool> ParallelContext::pool_snapshot() const {
  std::lock_guard<std::mutex> lock(pool_mu_);
  return pool_;
}

ParallelConfig ParallelContext::config() const {
  ParallelConfig config;
  config.threads = threads_.load(std::memory_order_relaxed);
  config.block = block_.load(std::memory_order_relaxed);
  config.min_work = min_work_.load(std::memory_order_relaxed);
  return config;
}

bool ParallelContext::should_parallelize(std::size_t rows,
                                         std::size_t work) const {
  // threads_ > 1 implies a pool was installed; if a reconfigure lands
  // between this check and the snapshot in for_rows, for_rows simply
  // runs serial or on the new pool — both are correct.
  return threads_.load(std::memory_order_relaxed) > 1 && !tl_in_chunk &&
         rows >= 2 && work >= min_work_.load(std::memory_order_relaxed);
}

void ParallelContext::for_rows(
    std::size_t rows,
    const std::function<void(std::size_t, std::size_t)>& fn) const {
  // One snapshot per dispatch: every chunk of this call runs on `pool`,
  // and holding the shared_ptr keeps the pool's workers alive until the
  // per-call latch below has been signalled by all of them — even if
  // configure_global swaps in a replacement mid-call.
  const std::shared_ptr<util::ThreadPool> pool = pool_snapshot();
  const std::size_t chunks =
      std::min(threads_.load(std::memory_order_relaxed), rows);
  if (pool == nullptr || tl_in_chunk || chunks <= 1) {
    fn(0, rows);
    return;
  }

  // Per-call completion latch; the pool is shared, so waiting on the
  // pool's own idle state would entangle unrelated dispatches.
  std::mutex mu;
  std::condition_variable done;
  std::size_t remaining = chunks - 1;

  for (std::size_t c = 1; c < chunks; ++c) {
    const std::size_t begin = c * rows / chunks;
    const std::size_t end = (c + 1) * rows / chunks;
    pool->submit([&, begin, end] {
      {
        ChunkGuard guard;
        fn(begin, end);
      }
      // Notify while holding the lock: mu and done live on the caller's
      // stack, and the caller may return (destroying both) the moment it
      // can observe remaining == 0. Holding mu across the signal keeps
      // the caller from reacquiring it until the signal has completed.
      std::lock_guard<std::mutex> lock(mu);
      if (--remaining == 0) done.notify_one();
    });
  }
  {
    ChunkGuard guard;
    fn(0, rows / chunks);
  }
  std::unique_lock<std::mutex> lock(mu);
  done.wait(lock, [&] { return remaining == 0; });
}

void ParallelContext::for_partition(const std::size_t* bounds,
                                    std::size_t chunks,
                                    void (*fn)(void*, std::size_t,
                                               std::size_t),
                                    void* arg) const {
  const std::shared_ptr<util::ThreadPool> pool = pool_snapshot();
  if (pool == nullptr || tl_in_chunk || chunks <= 1) {
    fn(arg, bounds[0], bounds[chunks]);
    return;
  }

  std::mutex mu;
  std::condition_variable done;
  std::size_t remaining = chunks - 1;

  for (std::size_t c = 1; c < chunks; ++c) {
    const std::size_t begin = bounds[c];
    const std::size_t end = bounds[c + 1];
    pool->submit([&, begin, end] {
      {
        ChunkGuard guard;
        fn(arg, begin, end);
      }
      std::lock_guard<std::mutex> lock(mu);
      if (--remaining == 0) done.notify_one();
    });
  }
  {
    ChunkGuard guard;
    fn(arg, bounds[0], bounds[1]);
  }
  std::unique_lock<std::mutex> lock(mu);
  done.wait(lock, [&] { return remaining == 0; });
}

const ParallelContext& ParallelContext::current() {
  return tl_override != nullptr ? *tl_override : global();
}

ParallelContext& ParallelContext::global() {
  static ParallelContext* instance = new ParallelContext();
  return *instance;
}

void ParallelContext::configure_global(const ParallelConfig& config) {
  global().install(config);
}

ParallelScope::ParallelScope(const ParallelContext* ctx) {
  if (ctx == nullptr) return;
  previous_ = tl_override;
  tl_override = ctx;
  active_ = true;
}

ParallelScope::~ParallelScope() {
  if (active_) tl_override = previous_;
}

}  // namespace lightnas::nn
