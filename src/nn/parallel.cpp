#include "nn/parallel.hpp"

#include <cassert>
#include <condition_variable>
#include <mutex>

#include "util/thread_pool.hpp"

namespace lightnas::nn {

namespace {

/// Innermost ParallelScope override for this thread (null = use global).
thread_local const ParallelContext* tl_override = nullptr;

/// Set while this thread is executing a dispatched chunk. Kernels called
/// from inside a chunk (e.g. a serving worker whose batch forward is
/// itself a pool task) must not re-enter the pool: with every worker
/// blocked waiting on sub-chunks nobody would be left to run them.
thread_local bool tl_in_chunk = false;

struct ChunkGuard {
  bool saved;
  ChunkGuard() : saved(tl_in_chunk) { tl_in_chunk = true; }
  ~ChunkGuard() { tl_in_chunk = saved; }
};

}  // namespace

ParallelContext::ParallelContext() : ParallelContext(ParallelConfig{}) {}

ParallelContext::ParallelContext(const ParallelConfig& config)
    : config_(config) {
  if (config_.threads == 0) config_.threads = 1;
  if (config_.block == 0) config_.block = 1;
  if (config_.threads > 1) {
    // The caller always runs the first chunk, so the pool only needs
    // threads - 1 workers to reach the configured lane count.
    pool_ = std::make_unique<util::ThreadPool>(config_.threads - 1);
  }
}

ParallelContext::~ParallelContext() = default;

bool ParallelContext::should_parallelize(std::size_t rows,
                                         std::size_t work) const {
  return pool_ != nullptr && !tl_in_chunk && rows >= 2 &&
         work >= config_.min_work;
}

void ParallelContext::for_rows(
    std::size_t rows,
    const std::function<void(std::size_t, std::size_t)>& fn) const {
  const std::size_t chunks = std::min(config_.threads, rows);
  if (pool_ == nullptr || tl_in_chunk || chunks <= 1) {
    fn(0, rows);
    return;
  }

  // Per-call completion latch; the pool is shared, so waiting on the
  // pool's own idle state would entangle unrelated dispatches.
  std::mutex mu;
  std::condition_variable done;
  std::size_t remaining = chunks - 1;

  for (std::size_t c = 1; c < chunks; ++c) {
    const std::size_t begin = c * rows / chunks;
    const std::size_t end = (c + 1) * rows / chunks;
    pool_->submit([&, begin, end] {
      {
        ChunkGuard guard;
        fn(begin, end);
      }
      // Notify while holding the lock: mu and done live on the caller's
      // stack, and the caller may return (destroying both) the moment it
      // can observe remaining == 0. Holding mu across the signal keeps
      // the caller from reacquiring it until the signal has completed.
      std::lock_guard<std::mutex> lock(mu);
      if (--remaining == 0) done.notify_one();
    });
  }
  {
    ChunkGuard guard;
    fn(0, rows / chunks);
  }
  std::unique_lock<std::mutex> lock(mu);
  done.wait(lock, [&] { return remaining == 0; });
}

const ParallelContext& ParallelContext::current() {
  return tl_override != nullptr ? *tl_override : global();
}

ParallelContext& ParallelContext::global() {
  static ParallelContext* instance = new ParallelContext();
  return *instance;
}

void ParallelContext::configure_global(const ParallelConfig& config) {
  ParallelContext& g = global();
  g.pool_.reset();
  g.config_ = config;
  if (g.config_.threads == 0) g.config_.threads = 1;
  if (g.config_.block == 0) g.config_.block = 1;
  if (g.config_.threads > 1) {
    g.pool_ = std::make_unique<util::ThreadPool>(g.config_.threads - 1);
  }
}

ParallelScope::ParallelScope(const ParallelContext* ctx) {
  if (ctx == nullptr) return;
  previous_ = tl_override;
  tl_override = ctx;
  active_ = true;
}

ParallelScope::~ParallelScope() {
  if (active_) tl_override = previous_;
}

}  // namespace lightnas::nn
