#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>

namespace lightnas::util {
class ThreadPool;
}

namespace lightnas::nn {

/// Tuning knobs of the parallel dense-kernel layer.
struct ParallelConfig {
  /// Total compute lanes for a dispatched kernel, including the calling
  /// thread. 1 means fully serial (no pool is created).
  std::size_t threads = 1;
  /// Cache-block edge (the k-dimension tile of the blocked GEMM
  /// kernels). Must be >= 1.
  std::size_t block = 64;
  /// Kernels whose work estimate (FLOPs for GEMM, elements for the
  /// fused elementwise kernels) falls below this stay serial: the
  /// dispatch latch costs a few microseconds, which dwarfs a tiny
  /// kernel. Dispatch additionally requires >= 2 output rows.
  std::size_t min_work = 1u << 16;
};

/// Shared parallel-execution context for the nn kernels: a thread pool
/// plus the dispatch policy. One context is meant to be shared by a
/// whole pipeline (trainer, search loop, serving workers); concurrent
/// `for_rows` calls from different threads are safe and simply interleave
/// their chunks on the same workers.
///
/// Determinism contract: `for_rows(rows, fn)` always cuts [0, rows) into
/// the same `min(threads, rows)` contiguous chunks, each chunk is
/// executed by exactly one thread, and no two chunks share output rows.
/// Every output element is therefore produced by one serial kernel
/// invocation with a fixed accumulation order — results are bit-identical
/// to the serial path for every thread count, with no atomics or
/// nondeterministic reductions anywhere.
class ParallelContext {
 public:
  /// Serial context (threads = 1).
  ParallelContext();
  explicit ParallelContext(const ParallelConfig& config);
  ~ParallelContext();

  ParallelContext(const ParallelContext&) = delete;
  ParallelContext& operator=(const ParallelContext&) = delete;

  std::size_t threads() const {
    return threads_.load(std::memory_order_relaxed);
  }
  std::size_t block() const {
    return block_.load(std::memory_order_relaxed);
  }
  /// Snapshot of the current knobs. By value: the global context can be
  /// reconfigured concurrently (see configure_global), so a reference
  /// into the context would be a read of mutating state.
  ParallelConfig config() const;

  /// True when a kernel with `rows` output rows and `work` scalar ops
  /// should be dispatched on the pool. Always false inside a worker
  /// chunk (nested kernels run serial rather than deadlocking the pool).
  bool should_parallelize(std::size_t rows, std::size_t work) const;

  /// Run fn(begin, end) over a fixed contiguous partition of [0, rows).
  /// The caller executes the first chunk itself; the call returns only
  /// after every chunk has finished. Falls back to fn(0, rows) when the
  /// context is serial or the caller is already inside a chunk.
  void for_rows(std::size_t rows,
                const std::function<void(std::size_t, std::size_t)>& fn)
      const;

  /// Allocation-free variant of for_rows over a precomputed partition:
  /// `bounds` holds `chunks + 1` ascending row bounds (chunk c covers
  /// [bounds[c], bounds[c+1])) and fn is a plain function pointer taking
  /// an opaque arg — no std::function, so a compiled execution plan can
  /// dispatch without touching the heap. The caller runs chunk 0; falls
  /// back to one serial fn(arg, bounds[0], bounds[chunks]) call when the
  /// context is serial, the caller is inside a chunk, or chunks <= 1.
  /// The partition must match what for_rows would compute for the same
  /// rows/chunks split if bit-identity with the dynamic path matters.
  void for_partition(const std::size_t* bounds, std::size_t chunks,
                     void (*fn)(void*, std::size_t, std::size_t),
                     void* arg) const;

  /// The context the kernels consult when none is passed explicitly:
  /// the innermost active ParallelScope on this thread, else global().
  static const ParallelContext& current();

  /// Process-wide default context; serial until configured.
  static ParallelContext& global();

  /// Swap the global context's knobs and pool. Safe to call while other
  /// threads are dispatching kernels: every `for_rows` snapshots the
  /// pool once (a shared_ptr copy), so in-flight dispatches finish on
  /// the pool they started with, and the old pool's workers join only
  /// after its last snapshot holder drops it. Must not be called from a
  /// pool worker thread (joining your own pool would deadlock) — kernel
  /// bodies never do.
  static void configure_global(const ParallelConfig& config);

 private:
  void install(const ParallelConfig& config);

  /// Swap-safe snapshot of the current pool (may be null when serial).
  std::shared_ptr<util::ThreadPool> pool_snapshot() const;

  // Knobs are independent relaxed atomics rather than one struct: a
  // kernel mixing a freshly configured block size with the previous
  // thread count is harmless (both values are always valid), and this
  // keeps should_parallelize() — called on every kernel entry — at two
  // plain loads. The pool slot itself is a mutex-guarded shared_ptr
  // (not std::atomic<shared_ptr>, whose libstdc++ spinlock protocol
  // ThreadSanitizer cannot model): the mutex is only touched by actual
  // pool dispatches and reconfigures, never on the serial fast path.
  std::atomic<std::size_t> threads_{1};
  std::atomic<std::size_t> block_{64};
  std::atomic<std::size_t> min_work_{1u << 16};
  mutable std::mutex pool_mu_;
  std::shared_ptr<util::ThreadPool> pool_;
};

/// RAII thread-local override: while alive, ParallelContext::current()
/// on this thread returns *ctx. A null ctx is a no-op, so call sites can
/// thread an optional "const ParallelContext*" config field through
/// without branching.
class ParallelScope {
 public:
  explicit ParallelScope(const ParallelContext* ctx);
  ~ParallelScope();

  ParallelScope(const ParallelScope&) = delete;
  ParallelScope& operator=(const ParallelScope&) = delete;

 private:
  const ParallelContext* previous_ = nullptr;
  bool active_ = false;
};

}  // namespace lightnas::nn
