#pragma once

#include <cstddef>
#include <functional>
#include <memory>

namespace lightnas::util {
class ThreadPool;
}

namespace lightnas::nn {

/// Tuning knobs of the parallel dense-kernel layer.
struct ParallelConfig {
  /// Total compute lanes for a dispatched kernel, including the calling
  /// thread. 1 means fully serial (no pool is created).
  std::size_t threads = 1;
  /// Cache-block edge (the k-dimension tile of the blocked GEMM
  /// kernels). Must be >= 1.
  std::size_t block = 64;
  /// Kernels whose work estimate (FLOPs for GEMM, elements for the
  /// fused elementwise kernels) falls below this stay serial: the
  /// dispatch latch costs a few microseconds, which dwarfs a tiny
  /// kernel. Dispatch additionally requires >= 2 output rows.
  std::size_t min_work = 1u << 16;
};

/// Shared parallel-execution context for the nn kernels: a thread pool
/// plus the dispatch policy. One context is meant to be shared by a
/// whole pipeline (trainer, search loop, serving workers); concurrent
/// `for_rows` calls from different threads are safe and simply interleave
/// their chunks on the same workers.
///
/// Determinism contract: `for_rows(rows, fn)` always cuts [0, rows) into
/// the same `min(threads, rows)` contiguous chunks, each chunk is
/// executed by exactly one thread, and no two chunks share output rows.
/// Every output element is therefore produced by one serial kernel
/// invocation with a fixed accumulation order — results are bit-identical
/// to the serial path for every thread count, with no atomics or
/// nondeterministic reductions anywhere.
class ParallelContext {
 public:
  /// Serial context (threads = 1).
  ParallelContext();
  explicit ParallelContext(const ParallelConfig& config);
  ~ParallelContext();

  ParallelContext(const ParallelContext&) = delete;
  ParallelContext& operator=(const ParallelContext&) = delete;

  std::size_t threads() const { return config_.threads; }
  std::size_t block() const { return config_.block; }
  const ParallelConfig& config() const { return config_; }

  /// True when a kernel with `rows` output rows and `work` scalar ops
  /// should be dispatched on the pool. Always false inside a worker
  /// chunk (nested kernels run serial rather than deadlocking the pool).
  bool should_parallelize(std::size_t rows, std::size_t work) const;

  /// Run fn(begin, end) over a fixed contiguous partition of [0, rows).
  /// The caller executes the first chunk itself; the call returns only
  /// after every chunk has finished. Falls back to fn(0, rows) when the
  /// context is serial or the caller is already inside a chunk.
  void for_rows(std::size_t rows,
                const std::function<void(std::size_t, std::size_t)>& fn)
      const;

  /// The context the kernels consult when none is passed explicitly:
  /// the innermost active ParallelScope on this thread, else global().
  static const ParallelContext& current();

  /// Process-wide default context; serial until configured. Reconfigure
  /// only from single-threaded startup code (the CLI's --threads /
  /// --gemm-block flags) — swapping the pool under running kernels is a
  /// race by construction.
  static ParallelContext& global();
  static void configure_global(const ParallelConfig& config);

 private:
  ParallelConfig config_;
  std::unique_ptr<util::ThreadPool> pool_;
};

/// RAII thread-local override: while alive, ParallelContext::current()
/// on this thread returns *ctx. A null ctx is a no-op, so call sites can
/// thread an optional "const ParallelContext*" config field through
/// without branching.
class ParallelScope {
 public:
  explicit ParallelScope(const ParallelContext* ctx);
  ~ParallelScope();

  ParallelScope(const ParallelScope&) = delete;
  ParallelScope& operator=(const ParallelScope&) = delete;

 private:
  const ParallelContext* previous_ = nullptr;
  bool active_ = false;
};

}  // namespace lightnas::nn
