#include "nn/plan.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>

#include "util/check.hpp"
#include "util/metrics.hpp"

namespace lightnas::nn::plan {

namespace {

// --- global telemetry --------------------------------------------------

util::Counter g_hits;
util::Counter g_misses;
util::Counter g_compiles;
util::Counter g_fused;
util::Counter g_arena_bytes;

/// Hard caps: a recording past this many ops is poisoned (the step is
/// not a fixed training step; tracing it would only burn memory), and a
/// cache past this many distinct keys stops admitting new ones.
constexpr std::size_t kMaxRecordOps = std::size_t{1} << 16;
constexpr std::size_t kMaxCacheEntries = std::size_t{1} << 16;

// --- recorder ----------------------------------------------------------

struct Recorder {
  Program prog;
  std::unordered_map<const Var*, std::uint32_t> slot_of;
  bool poisoned = false;

  void reset() {
    prog = Program{};
    slot_of.clear();
    poisoned = false;
  }
};

thread_local Recorder tl_recorder;
thread_local bool tl_recording = false;

std::uint32_t add_slot(Recorder& r, ProgramSlot slot, const Var* node) {
  const auto id = static_cast<std::uint32_t>(r.prog.slots.size());
  r.prog.slots.push_back(std::move(slot));
  if (node != nullptr) r.slot_of.emplace(node, id);
  return id;
}

/// Slot for a parent the recorder has not seen yet. Persistent leaves
/// are representable (parameters by binding, constants by snapshot);
/// an untraced *interior* node means the step ran an op this layer does
/// not model, so the capture is poisoned.
std::uint32_t intern_parent(Recorder& r, const VarPtr& v) {
  const auto it = r.slot_of.find(v.get());
  if (it != r.slot_of.end()) return it->second;
  if (!v->parents.empty() || v->backward_fn) {
    r.poisoned = true;
    return 0;
  }
  ProgramSlot slot;
  slot.rows = v->value.rows();
  slot.cols = v->value.cols();
  if (v->requires_grad) {
    slot.kind = SlotKind::kParam;
    slot.param = v;
    slot.param_name = v->name;
  } else {
    slot.kind = SlotKind::kBaked;
    slot.baked = v->value;
  }
  return add_slot(r, std::move(slot), v.get());
}

}  // namespace

namespace detail {

bool recording_active() { return tl_recording; }

void record_op(const VarPtr& out, OpKind kind, const VarPtr& a,
               const VarPtr* b, double scalar) {
  if (!tl_recording) return;
  Recorder& r = tl_recorder;
  if (r.poisoned) return;
  if (r.prog.ops.size() >= kMaxRecordOps) {
    r.poisoned = true;
    return;
  }
  ProgramOp op;
  op.kind = kind;
  op.scalar = scalar;
  op.a = intern_parent(r, a);
  op.b = b != nullptr ? intern_parent(r, *b) : kNoSlot;
  if (r.poisoned) return;
  if (kind == OpKind::kSoftmaxCE) {
    op.label_binding = r.prog.num_label_bindings++;
  }
  ProgramSlot slot;
  slot.kind = SlotKind::kOp;
  slot.rows = out->value.rows();
  slot.cols = out->value.cols();
  op.out = add_slot(r, std::move(slot), out.get());
  r.prog.ops.push_back(op);
}

void record_const(const VarPtr& v) {
  if (!tl_recording) return;
  Recorder& r = tl_recorder;
  if (r.poisoned) return;
  ProgramSlot slot;
  slot.kind = SlotKind::kInput;
  slot.rows = v->value.rows();
  slot.cols = v->value.cols();
  slot.input_index = r.prog.num_inputs++;
  add_slot(r, std::move(slot), v.get());
}

void record_leaf(const VarPtr& v) {
  (void)v;
  if (!tl_recording) return;
  // A fresh trainable leaf mid-step is not a fixed training step.
  tl_recorder.poisoned = true;
}

}  // namespace detail

Recording::Recording() {
  LIGHTNAS_CHECK(!tl_recording, "plan::Recording: captures do not nest");
  tl_recorder.reset();
  tl_recording = true;
}

Recording::~Recording() { tl_recording = false; }

bool Recording::poisoned() const { return tl_recorder.poisoned; }

std::unique_ptr<Program> Recording::capture(const VarPtr& root) {
  tl_recording = false;
  Recorder& r = tl_recorder;
  if (r.poisoned || r.prog.ops.empty()) return nullptr;
  const auto it = r.slot_of.find(root.get());
  if (it == r.slot_of.end() ||
      r.prog.slots[it->second].kind != SlotKind::kOp) {
    return nullptr;
  }
  r.prog.root = it->second;
  auto program = std::make_unique<Program>(std::move(r.prog));
  r.reset();
  return program;
}

// --- lowered instruction set ------------------------------------------

namespace {

enum class Space : std::uint8_t {
  kNone,
  kArena,     ///< id: buffer index while compiling, float offset after
  kParamVal,  ///< id: parameter index
  kParamGrad,
  kInput,  ///< id: input binding index
  kBaked,  ///< id: baked-constant index
};

struct Ref {
  Space space = Space::kNone;
  std::uint32_t id = 0;
};

enum class IKind : std::uint8_t {
  kGemm,           // c = A x B via pinned row kernel (desc in gemms)
  kAddEw,          // c[i] = a[i] + b[i]
  kAddRow,         // c[i] = a[i] + b[col]
  kScale,          // c[i] = a[i] * f
  kAddConst,       // c[i] = a[i] + f
  kRelu,           // c[i] = max(a[i], 0)
  kFusedBias,      // c[i] = c[i] + a[col]          (in place, after gemm)
  kFusedBiasRelu,  // c[i] = max(c[i] + a[col], 0)  (in place, after gemm)
  kCeForward,      // a=logits -> c=probs, m=scalar loss
  kFillOne,        // c[0] = 1 (root grad seed)
  kAccum,          // c[i] += a[i]; first: c[i] = 0.0f + a[i]
  kColSum,         // c[col] = sum_r a[r,col] from zero, ascending r
  kReluMask,       // c[i] = m[i] <= 0 ? 0 : a[i]          (m = pre value)
  kMaskedPre,      // c[i] = m[i] <= 0 ? 0 : 0.0f + a[i]   (m = fused out)
  kPreCopy,        // c[i] = 0.0f + a[i]
  kCeBackward,     // c = gx from probs a, root-grad b, labels
};

struct GemmDesc;

struct GemmArgs {
  const float* a;
  const float* b;
  float* c;
  const GemmDesc* d;
};

using GemmRowFn = void (*)(const GemmArgs&, std::size_t, std::size_t);

struct GemmDesc {
  GemmRowFn fn = nullptr;
  std::size_t m = 0, k = 0, n = 0, kc = 64;
  bool fma = false;
  std::uint32_t chunks = 1;        // 1 = serial
  std::uint32_t bounds_begin = 0;  // into the bounds pool when chunks > 1
};

struct Instr {
  IKind kind = IKind::kGemm;
  bool first = false;
  Ref a, b, c, m;
  std::uint32_t rows = 0, cols = 0;
  float f = 0.0f;
  std::uint32_t labels = 0;
  std::int32_t gemm = -1;
};

// The six pinned kernel entry points. Selected once at compile time;
// every row range of one instruction runs the same kernel.
void gemm_nn_scalar(const GemmArgs& g, std::size_t r0, std::size_t r1) {
  matmul_rows_scalar(g.a, g.b, g.c, g.d->k, g.d->n, r0, r1, g.d->kc);
}
void gemm_nn_avx2(const GemmArgs& g, std::size_t r0, std::size_t r1) {
  simd::matmul_rows_avx2(g.a, g.b, g.c, g.d->k, g.d->n, r0, r1, g.d->kc,
                         g.d->fma);
}
void gemm_tn_scalar(const GemmArgs& g, std::size_t r0, std::size_t r1) {
  matmul_tn_rows_scalar(g.a, g.b, g.c, g.d->k, g.d->m, g.d->n, r0, r1,
                        g.d->kc);
}
void gemm_tn_avx2(const GemmArgs& g, std::size_t r0, std::size_t r1) {
  simd::matmul_tn_rows_avx2(g.a, g.b, g.c, g.d->k, g.d->m, g.d->n, r0, r1,
                            g.d->kc, g.d->fma);
}
void gemm_nt_scalar(const GemmArgs& g, std::size_t r0, std::size_t r1) {
  matmul_nt_rows_scalar(g.a, g.b, g.c, g.d->k, g.d->n, r0, r1);
}
void gemm_nt_avx2(const GemmArgs& g, std::size_t r0, std::size_t r1) {
  simd::matmul_nt_rows_avx2(g.a, g.b, g.c, g.d->k, g.d->n, r0, r1,
                            g.d->fma);
}

void gemm_chunk(void* arg, std::size_t r0, std::size_t r1) {
  const GemmArgs& g = *static_cast<GemmArgs*>(arg);
  g.d->fn(g, r0, r1);
}

}  // namespace

// --- the compiled plan -------------------------------------------------

struct PlanImpl {
  Program program;
  CompileOptions opts;
  simd::IsaLevel pinned_isa = simd::IsaLevel::kScalar;
  ParallelConfig pinned_cfg;
  std::size_t fused = 0;

  std::vector<Instr> instrs;
  std::vector<GemmDesc> gemms;
  std::vector<std::size_t> bounds;
  AlignedVector arena;

  std::vector<VarPtr> params;
  std::vector<std::pair<std::size_t, std::size_t>> param_shapes;
  std::vector<bool> param_grad_used;
  std::vector<Tensor> baked;
  std::vector<std::pair<std::size_t, std::size_t>> input_shapes;
  std::vector<std::pair<std::size_t, std::size_t>> label_shapes;

  // Per-execute pointer tables, sized once at compile so execution does
  // not allocate.
  std::vector<float*> pv, pg;
  std::vector<const float*> in, baked_ptrs;

  std::size_t root_off = 0, root_rows = 0, root_cols = 0;

  float* ptr(const Ref& r) {
    switch (r.space) {
      case Space::kArena:
        return arena.data() + r.id;
      case Space::kParamVal:
        return pv[r.id];
      case Space::kParamGrad:
        return pg[r.id];
      case Space::kInput:
        return const_cast<float*>(in[r.id]);
      case Space::kBaked:
        return const_cast<float*>(baked_ptrs[r.id]);
      case Space::kNone:
        break;
    }
    return nullptr;
  }
};

struct ExecutionPlan::Impl : PlanImpl {};

namespace {

// --- compiler ----------------------------------------------------------

/// Internal lowered-op kinds (fusion results included).
enum class LKind : std::uint8_t {
  kMatmul,
  kAdd,
  kAddBias,
  kScale,
  kAddScalar,
  kRelu,
  kSoftmaxCE,
  kFusedLinear,      // matmul + add_bias
  kFusedLinearRelu,  // matmul + add_bias + relu
};

struct LOp {
  LKind kind = LKind::kMatmul;
  std::uint32_t out = 0;
  std::uint32_t a = 0;          // x / left operand
  std::uint32_t b = kNoSlot;    // right operand / weight
  std::uint32_t bias = kNoSlot; // fused kinds only
  double scalar = 0.0;
  std::uint32_t label_binding = 0;
  std::int32_t probs_buf = -1;  // kSoftmaxCE: forward-pass probs buffer
};

struct Compiler {
  const Program& prog;
  CompileOptions opts;
  ParallelConfig cfg;
  simd::IsaLevel isa;
  PlanImpl& out;

  struct Buffer {
    std::size_t floats = 0;
    std::int64_t birth = -1;
    std::int64_t death = -1;
    std::size_t offset = 0;
  };
  std::vector<Buffer> buffers;
  std::vector<bool> grad_first_done;  // per buffer: first kAccum emitted

  std::vector<LOp> lops;
  std::vector<std::int32_t> producer;  // slot -> lop index (-1 none)
  std::vector<bool> needs;             // slot needs a gradient
  std::vector<std::int32_t> val_buf, grad_buf;   // slot -> buffer (-1)
  std::vector<std::int32_t> param_of, baked_of;  // slot -> binding index
  bool failed = false;

  Compiler(const Program& p, const CompileOptions& o,
           const ParallelConfig& c, simd::IsaLevel i,
           PlanImpl& im)
      : prog(p), opts(o), cfg(c), isa(i), out(im) {}

  const ProgramSlot& slot(std::uint32_t id) const { return prog.slots[id]; }

  bool run() {
    if (!validate()) return false;
    bind_slots();
    fuse();
    propagate_needs();
    emit_forward();
    if (opts.backward) emit_backward();
    if (failed) return false;
    if (!allocate_arena()) return false;
    patch_refs();
    const std::uint32_t rb = static_cast<std::uint32_t>(val_buf[prog.root]);
    out.root_off = buffers[rb].offset;
    out.root_rows = slot(prog.root).rows;
    out.root_cols = slot(prog.root).cols;
    return true;
  }

  // -- validation (also guards deserialized programs) ------------------

  bool validate() {
    const std::size_t n = prog.slots.size();
    if (n == 0 || prog.ops.empty() || prog.root >= n) return false;
    for (const ProgramSlot& s : prog.slots) {
      if (s.rows == 0 || s.cols == 0) return false;
      if (s.kind == SlotKind::kParam && s.param == nullptr) return false;
      if (s.kind == SlotKind::kInput && s.input_index >= prog.num_inputs) {
        return false;
      }
      if (s.kind == SlotKind::kBaked &&
          (s.baked.rows() != s.rows || s.baked.cols() != s.cols)) {
        return false;
      }
    }
    std::vector<bool> defined(n, false);
    for (std::size_t i = 0; i < n; ++i) {
      defined[i] = prog.slots[i].kind != SlotKind::kOp;
    }
    for (const ProgramOp& op : prog.ops) {
      if (op.out >= n || op.a >= n || slot(op.out).kind != SlotKind::kOp ||
          defined[op.out] || !defined[op.a]) {
        return false;
      }
      const bool binary =
          op.kind == OpKind::kMatmul || op.kind == OpKind::kAdd ||
          op.kind == OpKind::kAddBias;
      if (binary && (op.b >= n || !defined[op.b])) return false;
      if (!binary && op.b != kNoSlot) return false;
      const ProgramSlot& o = slot(op.out);
      const ProgramSlot& a = slot(op.a);
      switch (op.kind) {
        case OpKind::kMatmul: {
          const ProgramSlot& b = slot(op.b);
          if (a.cols != b.rows || o.rows != a.rows || o.cols != b.cols ||
              a.cols == 0) {
            return false;
          }
          break;
        }
        case OpKind::kAdd: {
          const ProgramSlot& b = slot(op.b);
          if (a.rows != o.rows || a.cols != o.cols || b.rows != o.rows ||
              b.cols != o.cols) {
            return false;
          }
          break;
        }
        case OpKind::kAddBias: {
          const ProgramSlot& b = slot(op.b);
          if (a.rows != o.rows || a.cols != o.cols || b.rows != 1 ||
              b.cols != o.cols) {
            return false;
          }
          break;
        }
        case OpKind::kScale:
        case OpKind::kAddScalar:
        case OpKind::kRelu:
          if (a.rows != o.rows || a.cols != o.cols) return false;
          break;
        case OpKind::kSoftmaxCE:
          if (o.rows != 1 || o.cols != 1 ||
              op.label_binding >= prog.num_label_bindings) {
            return false;
          }
          break;
      }
      defined[op.out] = true;
    }
    if (!defined[prog.root] || slot(prog.root).kind != SlotKind::kOp) {
      return false;
    }
    if (opts.backward &&
        (slot(prog.root).rows != 1 || slot(prog.root).cols != 1)) {
      return false;
    }
    return true;
  }

  void bind_slots() {
    const std::size_t n = prog.slots.size();
    val_buf.assign(n, -1);
    grad_buf.assign(n, -1);
    param_of.assign(n, -1);
    baked_of.assign(n, -1);
    out.input_shapes.assign(prog.num_inputs, {0, 0});
    out.label_shapes.assign(prog.num_label_bindings, {0, 0});
    for (std::size_t i = 0; i < n; ++i) {
      const ProgramSlot& s = prog.slots[i];
      switch (s.kind) {
        case SlotKind::kParam:
          param_of[i] = static_cast<std::int32_t>(out.params.size());
          out.params.push_back(s.param);
          out.param_shapes.emplace_back(s.rows, s.cols);
          break;
        case SlotKind::kBaked:
          baked_of[i] = static_cast<std::int32_t>(out.baked.size());
          out.baked.push_back(s.baked);
          break;
        case SlotKind::kInput:
          out.input_shapes[s.input_index] = {s.rows, s.cols};
          break;
        case SlotKind::kOp:
          break;
      }
    }
    out.param_grad_used.assign(out.params.size(), false);
    for (const ProgramOp& op : prog.ops) {
      if (op.kind == OpKind::kSoftmaxCE) {
        out.label_shapes[op.label_binding] = {slot(op.a).rows,
                                              slot(op.a).cols};
      }
    }
  }

  // -- fusion -----------------------------------------------------------

  void fuse() {
    const std::size_t nslots = prog.slots.size();
    std::vector<std::uint32_t> consumers(nslots, 0);
    for (const ProgramOp& op : prog.ops) {
      ++consumers[op.a];
      if (op.b != kNoSlot) ++consumers[op.b];
    }
    const auto fusable = [&](std::uint32_t mid) {
      return consumers[mid] == 1 && mid != prog.root;
    };
    producer.assign(nslots, -1);
    std::size_t i = 0;
    while (i < prog.ops.size()) {
      const ProgramOp& op = prog.ops[i];
      LOp l;
      l.out = op.out;
      l.a = op.a;
      l.b = op.b;
      l.scalar = op.scalar;
      l.label_binding = op.label_binding;
      if (opts.fuse && op.kind == OpKind::kMatmul &&
          i + 1 < prog.ops.size() &&
          prog.ops[i + 1].kind == OpKind::kAddBias &&
          prog.ops[i + 1].a == op.out && fusable(op.out)) {
        const ProgramOp& ab = prog.ops[i + 1];
        if (i + 2 < prog.ops.size() &&
            prog.ops[i + 2].kind == OpKind::kRelu &&
            prog.ops[i + 2].a == ab.out && fusable(ab.out)) {
          l.kind = LKind::kFusedLinearRelu;
          l.out = prog.ops[i + 2].out;
          l.bias = ab.b;
          i += 3;
        } else {
          l.kind = LKind::kFusedLinear;
          l.out = ab.out;
          l.bias = ab.b;
          i += 2;
        }
        ++out.fused;
      } else {
        switch (op.kind) {
          case OpKind::kMatmul: l.kind = LKind::kMatmul; break;
          case OpKind::kAdd: l.kind = LKind::kAdd; break;
          case OpKind::kAddBias: l.kind = LKind::kAddBias; break;
          case OpKind::kScale: l.kind = LKind::kScale; break;
          case OpKind::kAddScalar: l.kind = LKind::kAddScalar; break;
          case OpKind::kRelu: l.kind = LKind::kRelu; break;
          case OpKind::kSoftmaxCE: l.kind = LKind::kSoftmaxCE; break;
        }
        i += 1;
      }
      producer[l.out] = static_cast<std::int32_t>(lops.size());
      lops.push_back(l);
    }
  }

  void propagate_needs() {
    needs.assign(prog.slots.size(), false);
    for (std::size_t i = 0; i < prog.slots.size(); ++i) {
      needs[i] = prog.slots[i].kind == SlotKind::kParam;
    }
    for (const LOp& l : lops) {
      bool any = needs[l.a];
      if (l.b != kNoSlot) any = any || needs[l.b];
      if (l.bias != kNoSlot) any = any || needs[l.bias];
      needs[l.out] = needs[l.out] || any;
    }
  }

  // -- buffers and refs -------------------------------------------------

  std::uint32_t new_buffer(std::size_t rows, std::size_t cols) {
    Buffer b;
    b.floats = rows * cols;
    buffers.push_back(b);
    grad_first_done.push_back(false);
    return static_cast<std::uint32_t>(buffers.size() - 1);
  }

  std::int64_t pc() const {
    return static_cast<std::int64_t>(out.instrs.size());
  }

  void read(const Ref& r) {
    if (r.space == Space::kArena) {
      buffers[r.id].death = std::max(buffers[r.id].death, pc());
    }
  }

  void write(const Ref& r) {
    if (r.space == Space::kArena) {
      Buffer& b = buffers[r.id];
      if (b.birth < 0) b.birth = pc();
      b.death = std::max(b.death, pc());
    }
  }

  Ref arena_ref(std::uint32_t buffer) { return Ref{Space::kArena, buffer}; }

  /// The recorded value of `id` at execution time.
  Ref val_ref(std::uint32_t id) {
    const ProgramSlot& s = slot(id);
    switch (s.kind) {
      case SlotKind::kParam:
        return Ref{Space::kParamVal,
                   static_cast<std::uint32_t>(param_of[id])};
      case SlotKind::kBaked:
        return Ref{Space::kBaked, static_cast<std::uint32_t>(baked_of[id])};
      case SlotKind::kInput:
        return Ref{Space::kInput, s.input_index};
      case SlotKind::kOp:
        break;
    }
    if (val_buf[id] < 0) {
      val_buf[id] =
          static_cast<std::int32_t>(new_buffer(s.rows, s.cols));
    }
    return arena_ref(static_cast<std::uint32_t>(val_buf[id]));
  }

  /// The gradient sink of `id`: param->grad for parameters, an arena
  /// buffer for interior values.
  Ref grad_ref(std::uint32_t id) {
    const ProgramSlot& s = slot(id);
    if (s.kind == SlotKind::kParam) {
      out.param_grad_used[static_cast<std::size_t>(param_of[id])] = true;
      return Ref{Space::kParamGrad,
                 static_cast<std::uint32_t>(param_of[id])};
    }
    if (grad_buf[id] < 0) {
      grad_buf[id] =
          static_cast<std::int32_t>(new_buffer(s.rows, s.cols));
    }
    return arena_ref(static_cast<std::uint32_t>(grad_buf[id]));
  }

  std::int32_t make_gemm(char kind, std::size_t m, std::size_t k,
                         std::size_t n) {
    GemmDesc d;
    d.m = m;
    d.k = k;
    d.n = n;
    d.kc = cfg.block;
    const bool vec = isa != simd::IsaLevel::kScalar;
    d.fma = isa == simd::IsaLevel::kAvx2Fma;
    switch (kind) {
      case 'N': d.fn = vec ? gemm_nn_avx2 : gemm_nn_scalar; break;
      case 'T': d.fn = vec ? gemm_tn_avx2 : gemm_tn_scalar; break;
      default:  d.fn = vec ? gemm_nt_avx2 : gemm_nt_scalar; break;
    }
    // The exact should_parallelize() / for_rows partition the dynamic
    // dispatch would pick for this shape, decided once here.
    const std::size_t work = 2 * m * k * n;
    if (cfg.threads > 1 && m >= 2 && work >= cfg.min_work) {
      const std::size_t chunks = std::min(cfg.threads, m);
      if (chunks > 1) {
        d.chunks = static_cast<std::uint32_t>(chunks);
        d.bounds_begin = static_cast<std::uint32_t>(out.bounds.size());
        for (std::size_t c = 0; c <= chunks; ++c) {
          out.bounds.push_back(c * m / chunks);
        }
      }
    }
    out.gemms.push_back(d);
    return static_cast<std::int32_t>(out.gemms.size() - 1);
  }

  void emit_gemm(char kind, const Ref& a, const Ref& b, const Ref& c,
                 std::size_t m, std::size_t k, std::size_t n) {
    read(a);
    read(b);
    write(c);
    Instr in;
    in.kind = IKind::kGemm;
    in.a = a;
    in.b = b;
    in.c = c;
    in.gemm = make_gemm(kind, m, k, n);
    out.instrs.push_back(in);
  }

  void emit_ew(IKind kind, const Ref& a, const Ref& b, const Ref& c,
               std::size_t rows, std::size_t cols, float f = 0.0f) {
    read(a);
    if (b.space != Space::kNone) read(b);
    write(c);
    Instr in;
    in.kind = kind;
    in.a = a;
    in.b = b;
    in.c = c;
    in.rows = static_cast<std::uint32_t>(rows);
    in.cols = static_cast<std::uint32_t>(cols);
    in.f = f;
    out.instrs.push_back(in);
  }

  /// accumulate(slot, src): the dynamic path's Tensor::add_inplace onto
  /// a grad that started as fresh zeros — the first contribution into an
  /// arena grad is emitted as `0.0f + src` so the buffer needs no
  /// zero-fill pass (bit-identical: adding to literal zero is exactly
  /// what the dynamic path computes). Parameter grads always accumulate
  /// onto the caller-zeroed param->grad.
  void emit_accum(std::uint32_t slot_id, const Ref& src, std::size_t rows,
                  std::size_t cols) {
    const Ref dst = grad_ref(slot_id);
    bool first = false;
    if (dst.space == Space::kArena && !grad_first_done[dst.id]) {
      grad_first_done[dst.id] = true;
      first = true;
    }
    read(src);
    if (!first) read(dst);
    write(dst);
    Instr in;
    in.kind = IKind::kAccum;
    in.first = first;
    in.a = src;
    in.c = dst;
    in.rows = static_cast<std::uint32_t>(rows);
    in.cols = static_cast<std::uint32_t>(cols);
    out.instrs.push_back(in);
  }

  // -- forward ----------------------------------------------------------

  void emit_forward() {
    for (LOp& l : lops) {
      const ProgramSlot& o = slot(l.out);
      const Ref co = val_ref(l.out);
      switch (l.kind) {
        case LKind::kMatmul:
          emit_gemm('N', val_ref(l.a), val_ref(l.b), co, o.rows,
                    slot(l.a).cols, o.cols);
          break;
        case LKind::kAdd:
          emit_ew(IKind::kAddEw, val_ref(l.a), val_ref(l.b), co, o.rows,
                  o.cols);
          break;
        case LKind::kAddBias:
          emit_ew(IKind::kAddRow, val_ref(l.a), val_ref(l.b), co, o.rows,
                  o.cols);
          break;
        case LKind::kScale:
          emit_ew(IKind::kScale, val_ref(l.a), Ref{}, co, o.rows, o.cols,
                  static_cast<float>(l.scalar));
          break;
        case LKind::kAddScalar:
          emit_ew(IKind::kAddConst, val_ref(l.a), Ref{}, co, o.rows,
                  o.cols, static_cast<float>(l.scalar));
          break;
        case LKind::kRelu:
          emit_ew(IKind::kRelu, val_ref(l.a), Ref{}, co, o.rows, o.cols);
          break;
        case LKind::kSoftmaxCE: {
          const ProgramSlot& a = slot(l.a);
          l.probs_buf =
              static_cast<std::int32_t>(new_buffer(a.rows, a.cols));
          const Ref probs =
              arena_ref(static_cast<std::uint32_t>(l.probs_buf));
          const Ref la = val_ref(l.a);
          read(la);
          write(probs);
          write(co);
          Instr in;
          in.kind = IKind::kCeForward;
          in.a = la;
          in.c = probs;
          in.m = co;
          in.rows = static_cast<std::uint32_t>(a.rows);
          in.cols = static_cast<std::uint32_t>(a.cols);
          in.labels = l.label_binding;
          out.instrs.push_back(in);
          break;
        }
        case LKind::kFusedLinear:
        case LKind::kFusedLinearRelu: {
          emit_gemm('N', val_ref(l.a), val_ref(l.b), co, o.rows,
                    slot(l.a).cols, o.cols);
          const Ref bias = val_ref(l.bias);
          read(bias);
          read(co);
          write(co);
          Instr in;
          in.kind = l.kind == LKind::kFusedLinearRelu
                        ? IKind::kFusedBiasRelu
                        : IKind::kFusedBias;
          in.a = bias;
          in.c = co;
          in.rows = static_cast<std::uint32_t>(o.rows);
          in.cols = static_cast<std::uint32_t>(o.cols);
          out.instrs.push_back(in);
          break;
        }
      }
    }
  }

  // -- backward ---------------------------------------------------------

  void postorder(std::uint32_t slot_id, std::vector<bool>& visited,
                 std::vector<std::uint32_t>& order) {
    const std::int32_t li = producer[slot_id];
    if (li < 0 || visited[static_cast<std::size_t>(li)]) return;
    visited[static_cast<std::size_t>(li)] = true;
    const LOp& l = lops[static_cast<std::size_t>(li)];
    // Parents in operand order — the order the dynamic graph stores
    // them, which fixes the DFS postorder and hence the exact sequence
    // of gradient accumulations.
    postorder(l.a, visited, order);
    if (l.b != kNoSlot) postorder(l.b, visited, order);
    if (l.bias != kNoSlot) postorder(l.bias, visited, order);
    order.push_back(static_cast<std::uint32_t>(li));
  }

  void emit_backward() {
    std::vector<bool> visited(lops.size(), false);
    std::vector<std::uint32_t> order;
    order.reserve(lops.size());
    postorder(prog.root, visited, order);

    // Seed d(root)/d(root) = 1, exactly as run_tape fills the root grad.
    {
      const Ref rg = grad_ref(prog.root);
      if (rg.space == Space::kArena) grad_first_done[rg.id] = true;
      write(rg);
      Instr in;
      in.kind = IKind::kFillOne;
      in.c = rg;
      in.rows = 1;
      in.cols = 1;
      out.instrs.push_back(in);
    }

    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      const LOp& l = lops[*it];
      if (!needs[l.out]) continue;  // no backward_fn on the dynamic node
      const ProgramSlot& o = slot(l.out);
      const Ref g = grad_ref(l.out);
      switch (l.kind) {
        case LKind::kMatmul: {
          const std::size_t m = o.rows, kk = slot(l.a).cols, nn = o.cols;
          if (needs[l.a]) {
            // dA = dC * B^T, then accumulate — scratch keeps the exact
            // "compute then add" chain of the dynamic closure.
            const Ref da = arena_ref(new_buffer(m, kk));
            emit_gemm('B', g, val_ref(l.b), da, m, nn, kk);
            emit_accum(l.a, da, m, kk);
          }
          if (needs[l.b]) {
            const Ref db = arena_ref(new_buffer(kk, nn));
            emit_gemm('T', val_ref(l.a), g, db, kk, m, nn);
            emit_accum(l.b, db, kk, nn);
          }
          break;
        }
        case LKind::kAdd:
          if (needs[l.a]) emit_accum(l.a, g, o.rows, o.cols);
          if (needs[l.b]) emit_accum(l.b, g, o.rows, o.cols);
          break;
        case LKind::kAddBias: {
          if (needs[l.a]) emit_accum(l.a, g, o.rows, o.cols);
          if (needs[l.b]) {
            const Ref gb = arena_ref(new_buffer(1, o.cols));
            emit_ew(IKind::kColSum, g, Ref{}, gb, o.rows, o.cols);
            emit_accum(l.b, gb, 1, o.cols);
          }
          break;
        }
        case LKind::kScale:
          if (needs[l.a]) {
            const Ref gx = arena_ref(new_buffer(o.rows, o.cols));
            emit_ew(IKind::kScale, g, Ref{}, gx, o.rows, o.cols,
                    static_cast<float>(l.scalar));
            emit_accum(l.a, gx, o.rows, o.cols);
          }
          break;
        case LKind::kAddScalar:
          if (needs[l.a]) emit_accum(l.a, g, o.rows, o.cols);
          break;
        case LKind::kRelu:
          if (needs[l.a]) {
            const Ref gx = arena_ref(new_buffer(o.rows, o.cols));
            const Ref mask = val_ref(l.a);
            read(g);
            read(mask);
            write(gx);
            Instr in;
            in.kind = IKind::kReluMask;
            in.a = g;
            in.m = mask;
            in.c = gx;
            in.rows = static_cast<std::uint32_t>(o.rows);
            in.cols = static_cast<std::uint32_t>(o.cols);
            out.instrs.push_back(in);
            emit_accum(l.a, gx, o.rows, o.cols);
          }
          break;
        case LKind::kSoftmaxCE: {
          if (!needs[l.a]) break;
          const ProgramSlot& a = slot(l.a);
          const Ref gx = arena_ref(new_buffer(a.rows, a.cols));
          const Ref probs =
              arena_ref(static_cast<std::uint32_t>(l.probs_buf));
          read(probs);
          read(g);
          write(gx);
          Instr in;
          in.kind = IKind::kCeBackward;
          in.a = probs;
          in.b = g;
          in.c = gx;
          in.rows = static_cast<std::uint32_t>(a.rows);
          in.cols = static_cast<std::uint32_t>(a.cols);
          in.labels = l.label_binding;
          out.instrs.push_back(in);
          emit_accum(l.a, gx, a.rows, a.cols);
          break;
        }
        case LKind::kFusedLinear:
        case LKind::kFusedLinearRelu: {
          // The elided matmul output's grad equals `0.0f + (masked)
          // upstream grad` bit for bit (adding to a zeroed buffer
          // canonicalizes -0 -> +0, and the relu mask on the post-relu
          // output is equivalent to the mask on the pre-relu value,
          // including NaN). One scratch therefore stands in for both
          // elided grads; the column sum reads what the dynamic
          // add_bias closure read: the *raw* upstream grad for the
          // non-relu fusion, the masked/canonicalized one under relu.
          const std::size_t m = o.rows, kk = slot(l.a).cols, nn = o.cols;
          const Ref pre = arena_ref(new_buffer(m, nn));
          if (l.kind == LKind::kFusedLinearRelu) {
            const Ref mask = val_ref(l.out);
            read(g);
            read(mask);
            write(pre);
            Instr in;
            in.kind = IKind::kMaskedPre;
            in.a = g;
            in.m = mask;
            in.c = pre;
            in.rows = static_cast<std::uint32_t>(m);
            in.cols = static_cast<std::uint32_t>(nn);
            out.instrs.push_back(in);
          } else {
            emit_ew(IKind::kPreCopy, g, Ref{}, pre, m, nn);
          }
          if (needs[l.bias]) {
            const Ref gb = arena_ref(new_buffer(1, nn));
            const Ref colsrc =
                l.kind == LKind::kFusedLinearRelu ? pre : g;
            emit_ew(IKind::kColSum, colsrc, Ref{}, gb, m, nn);
            emit_accum(l.bias, gb, 1, nn);
          }
          if (needs[l.a]) {
            const Ref da = arena_ref(new_buffer(m, kk));
            emit_gemm('B', pre, val_ref(l.b), da, m, nn, kk);
            emit_accum(l.a, da, m, kk);
          }
          if (needs[l.b]) {
            const Ref db = arena_ref(new_buffer(kk, nn));
            emit_gemm('T', val_ref(l.a), pre, db, kk, m, nn);
            emit_accum(l.b, db, kk, nn);
          }
          break;
        }
      }
    }
  }

  // -- arena allocation -------------------------------------------------

  static std::size_t round8(std::size_t floats) {
    return (floats + 7) & ~std::size_t{7};  // 32-byte granules
  }

  bool allocate_arena() {
    // Values the caller reads after execute() live to the end.
    if (val_buf[prog.root] >= 0) {
      buffers[static_cast<std::size_t>(val_buf[prog.root])].death =
          std::numeric_limits<std::int64_t>::max();
    }
    std::vector<std::uint32_t> order(buffers.size());
    for (std::uint32_t i = 0; i < buffers.size(); ++i) order[i] = i;
    for (const Buffer& b : buffers) {
      if (b.birth < 0) return false;  // emitted a read-before-write
    }
    std::sort(order.begin(), order.end(),
              [&](std::uint32_t x, std::uint32_t y) {
                return buffers[x].birth < buffers[y].birth;
              });

    struct FreeBlock {
      std::size_t off, size;
    };
    std::vector<FreeBlock> free_list;  // sorted by offset, coalesced
    const auto release = [&](std::size_t off, std::size_t size) {
      auto it = std::lower_bound(
          free_list.begin(), free_list.end(), off,
          [](const FreeBlock& f, std::size_t o) { return f.off < o; });
      it = free_list.insert(it, FreeBlock{off, size});
      if (it + 1 != free_list.end() && it->off + it->size == (it + 1)->off) {
        it->size += (it + 1)->size;
        free_list.erase(it + 1);
      }
      if (it != free_list.begin() &&
          (it - 1)->off + (it - 1)->size == it->off) {
        (it - 1)->size += it->size;
        free_list.erase(it);
      }
    };

    std::vector<std::uint32_t> live;
    std::size_t high = 0;
    for (const std::uint32_t id : order) {
      Buffer& b = buffers[id];
      for (auto it = live.begin(); it != live.end();) {
        const Buffer& lb = buffers[*it];
        if (lb.death < b.birth) {
          release(lb.offset, round8(lb.floats));
          it = live.erase(it);
        } else {
          ++it;
        }
      }
      const std::size_t need = round8(b.floats);
      std::size_t best = free_list.size();
      for (std::size_t f = 0; f < free_list.size(); ++f) {
        if (free_list[f].size >= need &&
            (best == free_list.size() ||
             free_list[f].size < free_list[best].size)) {
          best = f;
        }
      }
      if (best != free_list.size()) {
        b.offset = free_list[best].off;
        free_list[best].off += need;
        free_list[best].size -= need;
        if (free_list[best].size == 0) {
          free_list.erase(free_list.begin() +
                          static_cast<std::ptrdiff_t>(best));
        }
      } else {
        b.offset = high;
        high += need;
      }
      live.push_back(id);
    }
    out.arena.assign(high, 0.0f);
    return true;
  }

  void patch(Ref& r) {
    if (r.space == Space::kArena) {
      r.id = static_cast<std::uint32_t>(buffers[r.id].offset);
    }
  }

  void patch_refs() {
    for (Instr& in : out.instrs) {
      patch(in.a);
      patch(in.b);
      patch(in.c);
      patch(in.m);
    }
  }
};

}  // namespace

// --- ExecutionPlan -----------------------------------------------------

ExecutionPlan::ExecutionPlan() : impl_(new Impl()) {}
ExecutionPlan::~ExecutionPlan() = default;

std::unique_ptr<ExecutionPlan> ExecutionPlan::compile(
    const Program& program, const CompileOptions& opts,
    const ParallelContext& ctx) {
  std::unique_ptr<ExecutionPlan> plan(new ExecutionPlan());
  Impl& im = *plan->impl_;
  im.program = program;
  im.opts = opts;
  im.pinned_isa = simd::active_isa();
  im.pinned_cfg = ctx.config();
  Compiler compiler(im.program, opts, im.pinned_cfg, im.pinned_isa, im);
  if (!compiler.run()) return nullptr;
  im.pv.assign(im.params.size(), nullptr);
  im.pg.assign(im.params.size(), nullptr);
  im.in.assign(im.program.num_inputs, nullptr);
  im.baked_ptrs.reserve(im.baked.size());
  for (const Tensor& t : im.baked) im.baked_ptrs.push_back(t.data().data());
  return plan;
}

bool ExecutionPlan::valid_for(const ParallelContext& ctx) const {
  const Impl& im = *impl_;
  if (simd::active_isa() != im.pinned_isa) return false;
  const ParallelConfig cfg = ctx.config();
  return cfg.threads == im.pinned_cfg.threads &&
         cfg.block == im.pinned_cfg.block &&
         cfg.min_work == im.pinned_cfg.min_work;
}

bool ExecutionPlan::execute(
    const std::vector<const Tensor*>& inputs,
    const std::vector<const std::vector<std::size_t>*>& labels,
    const ParallelContext& ctx) {
  Impl& im = *impl_;
  if (!valid_for(ctx)) return false;
  if (inputs.size() != im.program.num_inputs ||
      labels.size() != im.program.num_label_bindings) {
    return false;
  }
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    if (inputs[i] == nullptr ||
        inputs[i]->rows() != im.input_shapes[i].first ||
        inputs[i]->cols() != im.input_shapes[i].second) {
      return false;
    }
  }
  for (std::size_t i = 0; i < im.params.size(); ++i) {
    const Var& p = *im.params[i];
    if (p.value.rows() != im.param_shapes[i].first ||
        p.value.cols() != im.param_shapes[i].second) {
      return false;
    }
  }
  for (std::size_t j = 0; j < labels.size(); ++j) {
    if (labels[j] == nullptr ||
        labels[j]->size() != im.label_shapes[j].first) {
      return false;
    }
    for (const std::size_t lab : *labels[j]) {
      if (lab >= im.label_shapes[j].second) return false;
    }
  }
  // Bindings are valid: refresh the pointer tables. ensure_grad matches
  // the dynamic accumulate() contract (allocates only on shape drift,
  // which the steady state never hits).
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    im.in[i] = inputs[i]->data().data();
  }
  for (std::size_t i = 0; i < im.params.size(); ++i) {
    Var& p = *im.params[i];
    im.pv[i] = p.value.data().data();
    if (im.param_grad_used[i]) {
      p.ensure_grad();
      im.pg[i] = p.grad.data().data();
    }
  }

  for (const Instr& ins : im.instrs) {
    switch (ins.kind) {
      case IKind::kGemm: {
        const GemmDesc& d = im.gemms[static_cast<std::size_t>(ins.gemm)];
        GemmArgs ga{im.ptr(ins.a), im.ptr(ins.b), im.ptr(ins.c), &d};
        if (d.chunks > 1) {
          ctx.for_partition(im.bounds.data() + d.bounds_begin, d.chunks,
                            &gemm_chunk, &ga);
        } else {
          d.fn(ga, 0, d.m);
        }
        break;
      }
      case IKind::kAddEw: {
        const float* a = im.ptr(ins.a);
        const float* b = im.ptr(ins.b);
        float* c = im.ptr(ins.c);
        const std::size_t count =
            static_cast<std::size_t>(ins.rows) * ins.cols;
        for (std::size_t i = 0; i < count; ++i) c[i] = a[i] + b[i];
        break;
      }
      case IKind::kAddRow: {
        const float* a = im.ptr(ins.a);
        const float* bias = im.ptr(ins.b);
        float* c = im.ptr(ins.c);
        for (std::size_t r = 0; r < ins.rows; ++r) {
          const float* ar = a + r * ins.cols;
          float* cr = c + r * ins.cols;
          for (std::size_t j = 0; j < ins.cols; ++j) {
            cr[j] = ar[j] + bias[j];
          }
        }
        break;
      }
      case IKind::kScale: {
        const float* a = im.ptr(ins.a);
        float* c = im.ptr(ins.c);
        const std::size_t count =
            static_cast<std::size_t>(ins.rows) * ins.cols;
        for (std::size_t i = 0; i < count; ++i) c[i] = a[i] * ins.f;
        break;
      }
      case IKind::kAddConst: {
        const float* a = im.ptr(ins.a);
        float* c = im.ptr(ins.c);
        const std::size_t count =
            static_cast<std::size_t>(ins.rows) * ins.cols;
        for (std::size_t i = 0; i < count; ++i) c[i] = a[i] + ins.f;
        break;
      }
      case IKind::kRelu: {
        const float* a = im.ptr(ins.a);
        float* c = im.ptr(ins.c);
        const std::size_t count =
            static_cast<std::size_t>(ins.rows) * ins.cols;
        for (std::size_t i = 0; i < count; ++i) {
          c[i] = std::max(a[i], 0.0f);
        }
        break;
      }
      case IKind::kFusedBias: {
        const float* bias = im.ptr(ins.a);
        float* c = im.ptr(ins.c);
        for (std::size_t r = 0; r < ins.rows; ++r) {
          float* cr = c + r * ins.cols;
          for (std::size_t j = 0; j < ins.cols; ++j) cr[j] += bias[j];
        }
        break;
      }
      case IKind::kFusedBiasRelu: {
        const float* bias = im.ptr(ins.a);
        float* c = im.ptr(ins.c);
        for (std::size_t r = 0; r < ins.rows; ++r) {
          float* cr = c + r * ins.cols;
          for (std::size_t j = 0; j < ins.cols; ++j) {
            cr[j] = std::max(cr[j] + bias[j], 0.0f);
          }
        }
        break;
      }
      case IKind::kCeForward: {
        // Exact arithmetic of ops::softmax_cross_entropy.
        const float* lg = im.ptr(ins.a);
        float* probs = im.ptr(ins.c);
        float* loss = im.ptr(ins.m);
        const std::vector<std::size_t>& lab = *labels[ins.labels];
        const std::size_t batch = ins.rows, classes = ins.cols;
        double total_loss = 0.0;
        for (std::size_t r = 0; r < batch; ++r) {
          const float* row = lg + r * classes;
          float* prow = probs + r * classes;
          float mx = row[0];
          for (std::size_t c = 1; c < classes; ++c) {
            mx = std::max(mx, row[c]);
          }
          float denom = 0.0f;
          for (std::size_t c = 0; c < classes; ++c) {
            const float e = std::exp(row[c] - mx);
            prow[c] = e;
            denom += e;
          }
          for (std::size_t c = 0; c < classes; ++c) prow[c] /= denom;
          total_loss -= std::log(std::max(prow[lab[r]], 1e-12f));
        }
        loss[0] = static_cast<float>(total_loss /
                                     static_cast<double>(batch));
        break;
      }
      case IKind::kFillOne:
        im.ptr(ins.c)[0] = 1.0f;
        break;
      case IKind::kAccum: {
        const float* a = im.ptr(ins.a);
        float* c = im.ptr(ins.c);
        const std::size_t count =
            static_cast<std::size_t>(ins.rows) * ins.cols;
        if (ins.first) {
          for (std::size_t i = 0; i < count; ++i) c[i] = 0.0f + a[i];
        } else {
          for (std::size_t i = 0; i < count; ++i) c[i] += a[i];
        }
        break;
      }
      case IKind::kColSum: {
        const float* a = im.ptr(ins.a);
        float* c = im.ptr(ins.c);
        for (std::size_t j = 0; j < ins.cols; ++j) c[j] = 0.0f;
        for (std::size_t r = 0; r < ins.rows; ++r) {
          const float* ar = a + r * ins.cols;
          for (std::size_t j = 0; j < ins.cols; ++j) c[j] += ar[j];
        }
        break;
      }
      case IKind::kReluMask: {
        const float* a = im.ptr(ins.a);
        const float* m = im.ptr(ins.m);
        float* c = im.ptr(ins.c);
        const std::size_t count =
            static_cast<std::size_t>(ins.rows) * ins.cols;
        for (std::size_t i = 0; i < count; ++i) {
          c[i] = m[i] <= 0.0f ? 0.0f : a[i];
        }
        break;
      }
      case IKind::kMaskedPre: {
        const float* a = im.ptr(ins.a);
        const float* m = im.ptr(ins.m);
        float* c = im.ptr(ins.c);
        const std::size_t count =
            static_cast<std::size_t>(ins.rows) * ins.cols;
        for (std::size_t i = 0; i < count; ++i) {
          c[i] = m[i] <= 0.0f ? 0.0f : 0.0f + a[i];
        }
        break;
      }
      case IKind::kPreCopy: {
        const float* a = im.ptr(ins.a);
        float* c = im.ptr(ins.c);
        const std::size_t count =
            static_cast<std::size_t>(ins.rows) * ins.cols;
        for (std::size_t i = 0; i < count; ++i) c[i] = 0.0f + a[i];
        break;
      }
      case IKind::kCeBackward: {
        const float* probs = im.ptr(ins.a);
        const float g0 = im.ptr(ins.b)[0];
        float* gx = im.ptr(ins.c);
        const std::vector<std::size_t>& lab = *labels[ins.labels];
        const std::size_t batch = ins.rows, classes = ins.cols;
        const float g = g0 / static_cast<float>(batch);
        const std::size_t count = batch * classes;
        for (std::size_t i = 0; i < count; ++i) gx[i] = probs[i];
        for (std::size_t r = 0; r < batch; ++r) {
          gx[r * classes + lab[r]] -= 1.0f;
        }
        for (std::size_t i = 0; i < count; ++i) gx[i] *= g;
        break;
      }
    }
  }
  return true;
}

const float* ExecutionPlan::root_data() const {
  return impl_->arena.data() + impl_->root_off;
}
std::size_t ExecutionPlan::root_rows() const { return impl_->root_rows; }
std::size_t ExecutionPlan::root_cols() const { return impl_->root_cols; }

std::size_t ExecutionPlan::arena_bytes() const {
  return impl_->arena.size() * sizeof(float);
}
std::size_t ExecutionPlan::fused_ops() const { return impl_->fused; }
std::size_t ExecutionPlan::num_inputs() const {
  return impl_->program.num_inputs;
}
std::size_t ExecutionPlan::num_label_bindings() const {
  return impl_->program.num_label_bindings;
}
bool ExecutionPlan::has_backward() const { return impl_->opts.backward; }
const Program& ExecutionPlan::program() const { return impl_->program; }

// --- settings / stats / cache -----------------------------------------

PlanSettings PlanSettings::from_env(PlanSettings base) {
  const char* env = std::getenv("LIGHTNAS_PLAN");
  if (env == nullptr) return base;
  return from_string(env, base);
}

PlanSettings PlanSettings::from_string(const std::string& v,
                                       PlanSettings base) {
  if (v.empty()) return base;
  if (v == "off" || v == "0" || v == "false") {
    base.enabled = false;
    return base;
  }
  if (v == "on" || v == "1" || v == "true") {
    base.enabled = true;
    return base;
  }
  char* end = nullptr;
  const long n = std::strtol(v.c_str(), &end, 10);
  if (end != nullptr && *end == '\0' && n > 0) {
    base.enabled = true;
    base.compile_after = static_cast<std::size_t>(n);
  }
  return base;
}

PlanStats PlanStats::operator-(const PlanStats& other) const {
  PlanStats d;
  d.hits = hits - other.hits;
  d.misses = misses - other.misses;
  d.compiles = compiles - other.compiles;
  d.fused_ops = fused_ops - other.fused_ops;
  d.arena_bytes = arena_bytes - other.arena_bytes;
  return d;
}

PlanStats global_stats() {
  PlanStats s;
  s.hits = g_hits.value();
  s.misses = g_misses.value();
  s.compiles = g_compiles.value();
  s.fused_ops = g_fused.value();
  s.arena_bytes = g_arena_bytes.value();
  return s;
}

PlanCache::PlanCache(PlanSettings settings) : settings_(settings) {}

ExecutionPlan* PlanCache::lookup(const std::string& key,
                                 const ParallelContext& ctx) {
  if (!settings_.enabled) return nullptr;
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    if (entries_.size() >= kMaxCacheEntries) {
      g_misses.add();
      return nullptr;
    }
    it = entries_.emplace(key, Entry{}).first;
  }
  Entry& e = it->second;
  ++e.count;
  e.last_use = ++tick_;
  if (e.plan != nullptr) {
    if (e.plan->valid_for(ctx)) {
      g_hits.add();
      return e.plan.get();
    }
    // Environment changed under the plan (ISA override, thread
    // reconfigure): drop it, keep the count so it recompiles promptly.
    e.plan.reset();
  }
  g_misses.add();
  return nullptr;
}

bool PlanCache::should_record(const std::string& key) const {
  if (!settings_.enabled) return false;
  const auto it = entries_.find(key);
  if (it == entries_.end()) return false;
  const Entry& e = it->second;
  return !e.uncompilable && e.plan == nullptr &&
         e.count >= settings_.compile_after;
}

void PlanCache::store(const std::string& key,
                      std::unique_ptr<ExecutionPlan> plan) {
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    if (entries_.size() >= kMaxCacheEntries) return;
    it = entries_.emplace(key, Entry{}).first;
  }
  Entry& e = it->second;
  if (plan == nullptr) {
    e.uncompilable = true;
    return;
  }
  g_compiles.add();
  g_fused.add(plan->fused_ops());
  g_arena_bytes.add(plan->arena_bytes());
  e.plan = std::move(plan);
  e.last_use = ++tick_;

  std::size_t with_plan = 0;
  for (const auto& kv : entries_) {
    if (kv.second.plan != nullptr) ++with_plan;
  }
  while (with_plan > settings_.max_plans) {
    auto victim = entries_.end();
    for (auto jt = entries_.begin(); jt != entries_.end(); ++jt) {
      if (jt->second.plan != nullptr &&
          (victim == entries_.end() ||
           jt->second.last_use < victim->second.last_use)) {
        victim = jt;
      }
    }
    if (victim == entries_.end()) break;
    victim->second.plan.reset();
    --with_plan;
  }
}

}  // namespace lightnas::nn::plan
