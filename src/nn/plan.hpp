#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "nn/aligned.hpp"
#include "nn/autograd.hpp"
#include "nn/parallel.hpp"
#include "nn/simd.hpp"
#include "nn/tensor.hpp"

namespace lightnas::nn::plan {

/// The op vocabulary a recorded program can contain. Deliberately only
/// the training-step ops: anything else encountered while recording
/// poisons the capture and the step keeps running on the dynamic path.
/// The two fused kinds never appear in a recorded Program — the
/// compiler synthesizes them from matmul/add_bias/relu runs.
enum class OpKind : std::uint8_t {
  kMatmul,     ///< C = A * B
  kAdd,        ///< C = A + B (same shape)
  kAddBias,    ///< C = X + row-broadcast bias (1 x cols)
  kScale,      ///< C = X * scalar
  kAddScalar,  ///< C = X + scalar
  kRelu,       ///< C = max(X, 0)
  kSoftmaxCE,  ///< scalar = mean softmax cross-entropy(X, labels)
};

/// What a program slot holds at execution time.
enum class SlotKind : std::uint8_t {
  kOp,     ///< output of a recorded op (lives in the plan arena)
  kParam,  ///< persistent trainable leaf, bound by VarPtr (value + grad)
  kInput,  ///< per-execute tensor binding (a make_const created in-step)
  kBaked,  ///< persistent constant snapshotted at record time
};

/// One value in the recorded dataflow program.
struct ProgramSlot {
  SlotKind kind = SlotKind::kOp;
  std::size_t rows = 0;
  std::size_t cols = 0;
  /// kInput: position in ExecutionPlan::execute()'s inputs vector
  /// (make_const creation order during the recorded step).
  std::uint32_t input_index = 0;
  /// kParam: the live parameter node. Gradients accumulate into
  /// param->grad exactly as the dynamic backward would.
  VarPtr param;
  /// kParam: name used to re-bind a deserialized program to a model.
  std::string param_name;
  /// kBaked: value snapshot taken at record time.
  Tensor baked;
};

/// Sentinel for "no second operand".
inline constexpr std::uint32_t kNoSlot = 0xffffffffu;

/// One recorded op: out = kind(a [, b]). Slots are indices into
/// Program::slots; ops are stored in creation order, which is a valid
/// topological order by construction.
struct ProgramOp {
  OpKind kind = OpKind::kMatmul;
  std::uint32_t out = 0;
  std::uint32_t a = 0;
  std::uint32_t b = kNoSlot;
  /// kScale factor / kAddScalar constant, captured at record time.
  double scalar = 0.0;
  /// kSoftmaxCE: position in execute()'s labels vector.
  std::uint32_t label_binding = 0;
};

/// A recorded training/inference step: the shape-specialized dataflow
/// graph one forward pass traced out, with parameters bound by pointer
/// and per-step tensors left as input bindings. This is the
/// serializable "compiled model" IR — ExecutionPlan::compile lowers it
/// against the current ISA/thread environment.
struct Program {
  std::vector<ProgramSlot> slots;
  std::vector<ProgramOp> ops;
  std::uint32_t root = 0;
  std::uint32_t num_inputs = 0;
  std::uint32_t num_label_bindings = 0;
};

namespace detail {
/// True while a Recording is active on this thread — the ops layer
/// checks this before paying for a record call.
bool recording_active();
/// Called by each supported op after make_node: out = kind(a [, b]).
void record_op(const VarPtr& out, OpKind kind, const VarPtr& a,
               const VarPtr* b, double scalar);
/// Called by make_const / make_leaf so in-step tensor creations become
/// input bindings (const) or poison the capture (leaf).
void record_const(const VarPtr& v);
void record_leaf(const VarPtr& v);
}  // namespace detail

/// RAII capture of one step's op stream on the current thread. Create
/// it, run the forward pass, then call capture(root) to finalize.
/// Returns null when the step used an unsupported op, created a fresh
/// trainable leaf, fed a recorded op from an untraced interior node, or
/// overflowed the op budget — the caller then falls back to the dynamic
/// path (and a PlanCache remembers the key as uncompilable).
class Recording {
 public:
  Recording();
  ~Recording();

  Recording(const Recording&) = delete;
  Recording& operator=(const Recording&) = delete;

  /// Finalize: `root` must be the output of a recorded op. Ends the
  /// capture either way; at most one capture() per Recording.
  std::unique_ptr<Program> capture(const VarPtr& root);

  bool poisoned() const;
};

struct CompileOptions {
  /// Emit the reverse pass (root must be 1x1). Off for inference plans.
  bool backward = true;
  /// Fuse matmul+add_bias(+relu) chains into single-kernel records.
  bool fuse = true;
};

/// A recorded Program lowered against the *current* environment: kernel
/// pointers resolved for the active ISA tier, GEMM row partitions
/// precomputed for the given ParallelContext configuration, and every
/// intermediate placed at a fixed offset in one liveness-packed
/// 32-byte-aligned arena. execute() touches no Var machinery, no
/// TensorPool, and no heap; results (values, loss, and parameter
/// gradients) are bit-identical to running the same graph dynamically.
/// Not thread-safe: one plan instance serves one executing thread.
class ExecutionPlan {
 public:
  ~ExecutionPlan();

  ExecutionPlan(const ExecutionPlan&) = delete;
  ExecutionPlan& operator=(const ExecutionPlan&) = delete;

  /// Lower `program` for the current active_isa() and `ctx`'s config.
  /// Returns null when the program is unsupported (non-scalar root with
  /// backward, zero-sized shapes, malformed wiring).
  static std::unique_ptr<ExecutionPlan> compile(const Program& program,
                                                const CompileOptions& opts,
                                                const ParallelContext& ctx);

  /// True when the environment still matches what compile() pinned:
  /// same ISA tier and same ParallelConfig. A stale plan must be
  /// recompiled, not executed — kernel choice and row partitions are
  /// baked in.
  bool valid_for(const ParallelContext& ctx) const;

  /// Run the plan. `inputs[i]` binds input slot i (shape-checked);
  /// `labels[j]` binds softmax-CE call j. Returns false — with no
  /// side effects on gradients — when a binding or a bound parameter
  /// no longer matches the recorded shapes; the caller falls back to
  /// the dynamic path. On success parameter grads have been
  /// accumulated (backward plans) and root_data() exposes the root
  /// value until the next execute().
  bool execute(const std::vector<const Tensor*>& inputs,
               const std::vector<const std::vector<std::size_t>*>& labels,
               const ParallelContext& ctx);

  const float* root_data() const;
  std::size_t root_rows() const;
  std::size_t root_cols() const;

  std::size_t arena_bytes() const;
  std::size_t fused_ops() const;
  std::size_t num_inputs() const;
  std::size_t num_label_bindings() const;
  bool has_backward() const;

  /// The IR this plan was compiled from (for serialization).
  const Program& program() const;

 private:
  ExecutionPlan();
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Knobs for the plan layer, resolved from config + environment.
struct PlanSettings {
  bool enabled = true;
  /// Compile a key after it has been requested this many times (the
  /// "Nth structural hit" trigger; 1 = compile on first repeat lookup).
  std::size_t compile_after = 3;
  /// Retained compiled plans per cache (LRU beyond this).
  std::size_t max_plans = 16;

  /// Apply LIGHTNAS_PLAN to `base`: "off"/"0"/"false" disables,
  /// "on"/"1"/"true" enables with defaults, a positive integer N
  /// enables with compile_after = N. Unset/empty leaves `base` alone.
  static PlanSettings from_env(PlanSettings base);

  /// The grammar behind from_env, reusable by other front ends (the
  /// CLI's --plan flag takes the same values). Empty/unrecognized
  /// leaves `base` alone.
  static PlanSettings from_string(const std::string& value,
                                  PlanSettings base);
};

/// Process-wide plan telemetry (all caches, all threads).
struct PlanStats {
  std::uint64_t hits = 0;       ///< executes served by a compiled plan
  std::uint64_t misses = 0;     ///< lookups that fell to the dynamic path
  std::uint64_t compiles = 0;   ///< successful compilations
  std::uint64_t fused_ops = 0;  ///< fused kernel records across compiles
  std::uint64_t arena_bytes = 0;  ///< live arena bytes across plans

  PlanStats operator-(const PlanStats& other) const;
};

PlanStats global_stats();

/// Keyed store of compiled plans with the compile-after-N trigger.
/// Keys are caller-defined structural fingerprints (op choice + batch
/// shape for the trainer). Thread-confined, like the engine loops that
/// own one.
class PlanCache {
 public:
  explicit PlanCache(PlanSettings settings = PlanSettings{});

  const PlanSettings& settings() const { return settings_; }

  /// Bump the key's request count. Returns the compiled plan when one
  /// exists and is valid for `ctx` (counts a hit); otherwise counts a
  /// miss. A plan invalidated by an environment change is dropped so
  /// the key can recompile.
  ExecutionPlan* lookup(const std::string& key, const ParallelContext& ctx);

  /// True when the caller should trace this step for compilation: the
  /// key has been requested >= compile_after times, has no plan yet,
  /// and has not been marked uncompilable.
  bool should_record(const std::string& key) const;

  /// Install the compile result for `key`. Null marks the key
  /// uncompilable (never traced again). Evicts the least recently used
  /// plan beyond max_plans.
  void store(const std::string& key, std::unique_ptr<ExecutionPlan> plan);

  std::size_t size() const { return entries_.size(); }

 private:
  struct Entry {
    std::uint64_t count = 0;
    std::uint64_t last_use = 0;
    bool uncompilable = false;
    std::unique_ptr<ExecutionPlan> plan;
  };

  PlanSettings settings_;
  std::unordered_map<std::string, Entry> entries_;
  std::uint64_t tick_ = 0;
};

}  // namespace lightnas::nn::plan
