#include "nn/pool.hpp"

#include <cassert>
#include <new>
#include <sstream>
#include <utility>

#include "util/metrics.hpp"

namespace lightnas::nn {

namespace {

// Innermost active pool on this thread. A plain pointer (trivially
// destructible) so it stays readable during thread-exit destruction of
// other thread_locals; scopes are stack-based, so by then it is null.
thread_local TensorPool* tl_active_pool = nullptr;

// Process-wide aggregates. Every per-pool counter bump mirrors into
// these relaxed atomics, so a cross-thread reader (serve-bench, the CLI)
// never touches a thread-confined pool.
struct GlobalCounters {
  util::Counter buffer_hits;
  util::Counter buffer_misses;
  util::Counter bytes_recycled;
  util::Counter node_hits;
  util::Counter node_misses;
  util::Counter tape_hits;
  util::Counter tape_misses;
};

GlobalCounters& global_counters() {
  static GlobalCounters counters;
  return counters;
}

// Thread-local free lists for fixed-size blocks (Var nodes, shared_ptr
// control blocks). Separate from TensorPool so recycled blocks survive
// scope churn within a thread; memory is bounded by the peak live graph.
struct BlockBuckets {
  std::unordered_map<std::size_t, std::vector<void*>> by_size;

  ~BlockBuckets() {
    for (auto& [size, blocks] : by_size) {
      (void)size;
      for (void* block : blocks) ::operator delete(block);
    }
  }
};

BlockBuckets& block_buckets() {
  thread_local BlockBuckets buckets;
  return buckets;
}

}  // namespace

PoolStats PoolStats::operator-(const PoolStats& other) const {
  PoolStats d;
  d.buffer_hits = buffer_hits - other.buffer_hits;
  d.buffer_misses = buffer_misses - other.buffer_misses;
  d.bytes_recycled = bytes_recycled - other.bytes_recycled;
  d.node_hits = node_hits - other.node_hits;
  d.node_misses = node_misses - other.node_misses;
  d.tape_hits = tape_hits - other.tape_hits;
  d.tape_misses = tape_misses - other.tape_misses;
  return d;
}

std::string PoolStats::to_string() const {
  std::ostringstream oss;
  oss.precision(4);
  oss << "buf_hit=" << buffer_hits << " buf_miss=" << buffer_misses
      << " hit_rate=" << buffer_hit_rate()
      << " recycled_mb=" << static_cast<double>(bytes_recycled) / (1 << 20)
      << " node_hit=" << node_hits << " node_miss=" << node_misses
      << " tape_hit=" << tape_hits << " tape_miss=" << tape_misses;
  return oss.str();
}

TensorPool::TensorPool() = default;
TensorPool::~TensorPool() = default;

AlignedVector TensorPool::acquire(std::size_t count) {
  if (count == 0) return {};
  const auto it = buckets_.find(count);
  if (it != buckets_.end() && !it->second.empty()) {
    AlignedVector buffer = std::move(it->second.back());
    it->second.pop_back();
    free_bytes_ -= buffer.capacity() * sizeof(float);
    --free_count_;
    buffer.resize(count);
    ++stats_.buffer_hits;
    const std::uint64_t bytes = count * sizeof(float);
    stats_.bytes_recycled += bytes;
    global_counters().buffer_hits.add();
    global_counters().bytes_recycled.add(bytes);
    return buffer;
  }
  ++stats_.buffer_misses;
  global_counters().buffer_misses.add();
  AlignedVector buffer(count);
  return buffer;
}

void TensorPool::release(AlignedVector&& buffer) noexcept {
  const std::size_t capacity = buffer.capacity();
  if (capacity == 0) return;
  if (free_bytes_ + capacity * sizeof(float) > max_free_bytes_) return;
  try {
    buckets_[capacity].push_back(std::move(buffer));
  } catch (...) {
    return;  // bookkeeping OOM: let the buffer free normally
  }
  free_bytes_ += capacity * sizeof(float);
  ++free_count_;
}

PoolStats TensorPool::stats() const { return stats_; }

std::size_t TensorPool::free_buffers() const { return free_count_; }

void TensorPool::note_node_hit() {
  ++stats_.node_hits;
  global_counters().node_hits.add();
}

void TensorPool::note_node_miss() {
  ++stats_.node_misses;
  global_counters().node_misses.add();
}

void TensorPool::note_tape_hit() {
  ++stats_.tape_hits;
  global_counters().tape_hits.add();
}

void TensorPool::note_tape_miss() {
  ++stats_.tape_misses;
  global_counters().tape_misses.add();
}

TensorPool* TensorPool::active() { return tl_active_pool; }

PoolStats TensorPool::global_stats() {
  const GlobalCounters& counters = global_counters();
  PoolStats stats;
  stats.buffer_hits = counters.buffer_hits.value();
  stats.buffer_misses = counters.buffer_misses.value();
  stats.bytes_recycled = counters.bytes_recycled.value();
  stats.node_hits = counters.node_hits.value();
  stats.node_misses = counters.node_misses.value();
  stats.tape_hits = counters.tape_hits.value();
  stats.tape_misses = counters.tape_misses.value();
  return stats;
}

PooledScope::PooledScope(PoolMode mode) : previous_(tl_active_pool) {
  switch (mode) {
    case PoolMode::kInherit:
      if (tl_active_pool == nullptr) {
        owned_ = new TensorPool();
        tl_active_pool = owned_;
      }
      break;
    case PoolMode::kFresh:
      owned_ = new TensorPool();
      tl_active_pool = owned_;
      break;
    case PoolMode::kDisabled:
      tl_active_pool = nullptr;
      break;
  }
  effective_ = tl_active_pool;
}

PooledScope::~PooledScope() {
  tl_active_pool = previous_;
  delete owned_;
}

TensorPool& PooledScope::pool() {
  assert(effective_ != nullptr && "pool() called on a kDisabled PooledScope");
  return *effective_;
}

void* pooled_block_acquire(std::size_t bytes) {
  if (bytes == 0) bytes = 1;
  if (tl_active_pool != nullptr) {
    auto& bucket = block_buckets().by_size[bytes];
    if (!bucket.empty()) {
      void* block = bucket.back();
      bucket.pop_back();
      return block;
    }
  }
  return ::operator new(bytes);
}

void pooled_block_release(void* block, std::size_t bytes) noexcept {
  if (block == nullptr) return;
  if (bytes == 0) bytes = 1;
  if (tl_active_pool != nullptr) {
    try {
      block_buckets().by_size[bytes].push_back(block);
      return;
    } catch (...) {
      // fall through to plain delete
    }
  }
  ::operator delete(block);
}

}  // namespace lightnas::nn
