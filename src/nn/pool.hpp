#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "nn/aligned.hpp"

namespace lightnas::nn {

/// Allocation-telemetry counters of the memory-reuse layer. A "buffer"
/// event is one Tensor storage acquisition (hit = recycled from a free
/// list, miss = fresh heap allocation); a "node" event is one autograd
/// Var acquisition; a "tape" event is one backward() call (hit = the
/// cached reverse-topological order was reused, miss = it was rebuilt).
/// In the steady state of a fixed-shape training loop every counter but
/// the hit counters should stop moving — bench/alloc_steady_state gates
/// exactly that.
struct PoolStats {
  std::uint64_t buffer_hits = 0;
  std::uint64_t buffer_misses = 0;
  std::uint64_t bytes_recycled = 0;
  std::uint64_t node_hits = 0;
  std::uint64_t node_misses = 0;
  std::uint64_t tape_hits = 0;
  std::uint64_t tape_misses = 0;

  double buffer_hit_rate() const {
    const std::uint64_t total = buffer_hits + buffer_misses;
    return total == 0 ? 0.0
                      : static_cast<double>(buffer_hits) /
                            static_cast<double>(total);
  }

  PoolStats operator-(const PoolStats& other) const;
  std::string to_string() const;
};

/// Shape-bucketed free-list pool for Tensor storage plus the counters
/// for Var-node and tape recycling.
///
/// A pool is *thread-confined*: it is installed on the current thread
/// with a PooledScope and consulted through TensorPool::active() by the
/// Tensor special members and the autograd layer. Buffers are keyed by
/// element count, so a training loop whose tensor shapes repeat step
/// over step reaches a steady state where every acquisition is a hit
/// and the global allocator is never entered. Because handout and
/// recycling only move buffers between free lists — every element of an
/// acquired buffer is overwritten before it is read — pooled and
/// unpooled runs are bit-identical.
///
/// Buffers may migrate between threads: a Tensor created under one
/// thread's pool and destroyed on another thread is simply donated to
/// the destroying thread's pool (or freed when none is active). No
/// locks are involved; the counters mirrored into the process-wide
/// aggregate are lock-free relaxed atomics.
class TensorPool {
 public:
  TensorPool();
  ~TensorPool();

  TensorPool(const TensorPool&) = delete;
  TensorPool& operator=(const TensorPool&) = delete;

  /// A buffer with size() == count, drawn from the matching free list
  /// when possible. Contents are UNSPECIFIED (stale values from the
  /// previous user) — the caller must overwrite every element. The
  /// buffer base is always kTensorAlignment-aligned (recycled buffers
  /// were allocated through the same aligned allocator).
  AlignedVector acquire(std::size_t count);

  /// Return a buffer to its capacity-keyed free list. Never throws;
  /// drops the buffer on the floor (plain free) if the pool is at its
  /// retention cap or bookkeeping cannot allocate.
  void release(AlignedVector&& buffer) noexcept;

  /// Counters since this pool was created (thread-confined reads).
  PoolStats stats() const;

  std::size_t free_buffers() const;
  std::size_t free_bytes() const { return free_bytes_; }

  /// Retention cap: release() beyond this many free bytes frees instead
  /// of pooling. Generous default — steady-state working sets are MBs.
  void set_max_free_bytes(std::size_t bytes) { max_free_bytes_ = bytes; }

  // -- called by the autograd layer -----------------------------------
  void note_node_hit();
  void note_node_miss();
  void note_tape_hit();
  void note_tape_miss();

  /// The pool installed on this thread by the innermost PooledScope
  /// (null when none is active — all pooling is then bypassed).
  static TensorPool* active();

  /// Process-wide aggregate across every pool that ever lived, live or
  /// destroyed, all threads. Lock-free relaxed reads.
  static PoolStats global_stats();

 private:
  void bump_global(std::uint64_t PoolStats::*field, std::uint64_t n);

  std::unordered_map<std::size_t, std::vector<AlignedVector>> buckets_;
  std::size_t free_bytes_ = 0;
  std::size_t free_count_ = 0;
  std::size_t max_free_bytes_ = std::size_t{1} << 29;  // 512 MiB
  PoolStats stats_;
};

/// How a PooledScope changes the thread's active pool.
enum class PoolMode {
  /// Keep the already-active pool if there is one; otherwise install a
  /// fresh pool owned by this scope. What engines use by default, so a
  /// caller-provided pool (e.g. a bench's long-lived scope) is reused
  /// across engine invocations and reaches a shared steady state.
  kInherit,
  /// Always install a fresh pool owned by this scope, shadowing any
  /// outer one (tests that need isolated counters).
  kFresh,
  /// Mask any outer pool: TensorPool::active() is null inside the
  /// scope, so every allocation takes the plain heap path. This is the
  /// "pooling off" arm of the bit-identity comparisons.
  kDisabled,
};

/// RAII activation of a TensorPool on the current thread. Scopes nest;
/// destruction restores the previous active pool. The scope (and any
/// pool it owns) must be destroyed on the thread that created it.
class PooledScope {
 public:
  explicit PooledScope(PoolMode mode = PoolMode::kInherit);
  ~PooledScope();

  PooledScope(const PooledScope&) = delete;
  PooledScope& operator=(const PooledScope&) = delete;

  /// The pool active inside this scope. Must not be called on a
  /// kDisabled scope.
  TensorPool& pool();

 private:
  TensorPool* previous_ = nullptr;
  TensorPool* owned_ = nullptr;
  TensorPool* effective_ = nullptr;
};

/// Fixed-size block recycling for the autograd layer's shared_ptr
/// control blocks and Var nodes. Blocks always originate from
/// ::operator new; when a pool is active on the releasing thread they
/// park in a thread-local size-keyed free list instead of being freed.
void* pooled_block_acquire(std::size_t bytes);
void pooled_block_release(void* block, std::size_t bytes) noexcept;

/// STL-compatible allocator over the block pool; used as the shared_ptr
/// control-block allocator so steady-state Var churn never calls the
/// global allocator.
template <typename T>
struct PooledBlockAllocator {
  using value_type = T;

  PooledBlockAllocator() = default;
  template <typename U>
  PooledBlockAllocator(const PooledBlockAllocator<U>&) {}  // NOLINT

  T* allocate(std::size_t n) {
    return static_cast<T*>(pooled_block_acquire(n * sizeof(T)));
  }
  void deallocate(T* p, std::size_t n) {
    pooled_block_release(p, n * sizeof(T));
  }

  template <typename U>
  bool operator==(const PooledBlockAllocator<U>&) const {
    return true;
  }
  template <typename U>
  bool operator!=(const PooledBlockAllocator<U>&) const {
    return false;
  }
};

}  // namespace lightnas::nn
