#include "nn/simd.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <vector>

namespace lightnas::nn::simd {

namespace {

thread_local bool tl_has_override = false;
thread_local IsaLevel tl_override = IsaLevel::kScalar;

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Startup resolution: explicit LIGHTNAS_ISA wins (with a stderr warning
/// and fallback when the host cannot honour it), else the best
/// bit-identity-preserving tier the host supports.
IsaLevel resolve_startup_isa() {
  const char* env = std::getenv("LIGHTNAS_ISA");
  if (env != nullptr && env[0] != '\0') {
    IsaLevel requested;
    if (!parse_isa(env, &requested)) {
      std::fprintf(stderr,
                   "lightnas: ignoring unknown LIGHTNAS_ISA='%s' "
                   "(expected scalar|avx2|avx2fma)\n",
                   env);
    } else if (requested != IsaLevel::kScalar &&
               (!avx2_compiled() || !cpu_supports(requested))) {
      std::fprintf(stderr,
                   "lightnas: LIGHTNAS_ISA=%s unavailable on this "
                   "host/build, using %s\n",
                   isa_name(requested), isa_name(detect_best()));
    } else {
      return requested;
    }
  }
  return detect_best();
}

std::atomic<IsaLevel>& global_slot() {
  // Magic static: the first kernel call (or CLI flag) resolves the
  // level exactly once, thread-safely.
  static std::atomic<IsaLevel> slot{resolve_startup_isa()};
  return slot;
}

}  // namespace

bool avx2_compiled() {
#ifdef LIGHTNAS_HAVE_AVX2
  return true;
#else
  return false;
#endif
}

bool cpu_supports(IsaLevel level) {
#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
  switch (level) {
    case IsaLevel::kScalar:
      return true;
    case IsaLevel::kAvx2:
      return __builtin_cpu_supports("avx2") != 0;
    case IsaLevel::kAvx2Fma:
      return __builtin_cpu_supports("avx2") != 0 &&
             __builtin_cpu_supports("fma") != 0;
  }
  return false;
#else
  return level == IsaLevel::kScalar;
#endif
}

IsaLevel detect_best() {
  if (avx2_compiled() && cpu_supports(IsaLevel::kAvx2)) {
    return IsaLevel::kAvx2;  // never auto-select FMA: it changes results
  }
  return IsaLevel::kScalar;
}

IsaLevel global_isa() {
  return global_slot().load(std::memory_order_relaxed);
}

void set_global_isa(IsaLevel level) {
  if (level != IsaLevel::kScalar) {
    if (!avx2_compiled()) {
      throw std::runtime_error(
          std::string("--isa ") + isa_name(level) +
          ": SIMD kernels were not compiled in (LIGHTNAS_SIMD=OFF or "
          "unsupported compiler)");
    }
    if (!cpu_supports(level)) {
      throw std::runtime_error(std::string("--isa ") + isa_name(level) +
                               ": this CPU does not support it");
    }
  }
  global_slot().store(level, std::memory_order_relaxed);
}

IsaLevel active_isa() {
  return tl_has_override ? tl_override : global_isa();
}

bool parse_isa(const std::string& text, IsaLevel* out) {
  if (text == "scalar") {
    *out = IsaLevel::kScalar;
  } else if (text == "avx2") {
    *out = IsaLevel::kAvx2;
  } else if (text == "avx2fma") {
    *out = IsaLevel::kAvx2Fma;
  } else {
    return false;
  }
  return true;
}

const char* isa_name(IsaLevel level) {
  switch (level) {
    case IsaLevel::kScalar:
      return "scalar";
    case IsaLevel::kAvx2:
      return "avx2";
    case IsaLevel::kAvx2Fma:
      return "avx2fma";
  }
  return "?";
}

ScopedIsa::ScopedIsa(IsaLevel level)
    : previous_(tl_override), had_previous_(tl_has_override) {
  tl_override = level;
  tl_has_override = true;
}

ScopedIsa::~ScopedIsa() {
  tl_override = previous_;
  tl_has_override = had_previous_;
}

#ifndef LIGHTNAS_HAVE_AVX2

// LIGHTNAS_SIMD=OFF build: the dispatch layer never routes here (see
// active_isa() / detect_best()), so these exist only to satisfy the
// linker — and to fail loudly if a future caller bypasses dispatch.
namespace {
[[noreturn]] void no_avx2() {
  std::fprintf(stderr, "lightnas: AVX2 kernel called in a scalar-only "
                       "build\n");
  std::abort();
}
}  // namespace

void matmul_rows_avx2(const float*, const float*, float*, std::size_t,
                      std::size_t, std::size_t, std::size_t, std::size_t,
                      bool) {
  no_avx2();
}
void matmul_tn_rows_avx2(const float*, const float*, float*, std::size_t,
                         std::size_t, std::size_t, std::size_t,
                         std::size_t, std::size_t, bool) {
  no_avx2();
}
void matmul_nt_rows_avx2(const float*, const float*, float*, std::size_t,
                         std::size_t, std::size_t, std::size_t, bool) {
  no_avx2();
}
void add_row_relu_rows_avx2(float*, const float*, std::size_t, std::size_t,
                            std::size_t) {
  no_avx2();
}
double peak_gflops_probe(double) { return 0.0; }

#endif  // !LIGHTNAS_HAVE_AVX2

double stream_bandwidth_probe(double seconds) {
  // Triad over 3 x 128 MiB — past even a large server L3 (modern Xeon/
  // EPYC parts reach ~100-400 MB), so this measures DRAM, not cache.
  // The scalar loop auto-vectorizes; bandwidth is insensitive to the
  // ISA tier anyway.
  constexpr std::size_t kCount = std::size_t{32} << 20;
  std::vector<float> a(kCount, 1.0f), b(kCount, 2.0f), c(kCount, 3.0f);
  const float s = 0.5f;
  const double deadline = now_seconds() + seconds;
  double best_gbs = 0.0;
  do {
    // Triad pass: 2 streams read, 1 written — and the write misses, so
    // the hardware also reads a[] in (write-allocate): 4 DRAM streams.
    {
      const double start = now_seconds();
      for (std::size_t i = 0; i < kCount; ++i) a[i] = b[i] + s * c[i];
      const double dt = now_seconds() - start;
      const double bytes = static_cast<double>(kCount) * 4.0 * sizeof(float);
      if (dt > 0.0) best_gbs = std::max(best_gbs, bytes / dt / 1e9);
    }
    // In-place scale pass: read + writeback of one stream (no separate
    // write-allocate — the read brings the line in). A single address
    // stream prefetches better than the triad's three, so this usually
    // sustains a higher rate; the probe reports the best of both because
    // the kernels it calibrates (fused in-place bias+relu) are exactly
    // this access pattern.
    {
      const double start = now_seconds();
      for (std::size_t i = 0; i < kCount; ++i) a[i] = s * a[i] + 1.0f;
      const double dt = now_seconds() - start;
      const double bytes = static_cast<double>(kCount) * 2.0 * sizeof(float);
      if (dt > 0.0) best_gbs = std::max(best_gbs, bytes / dt / 1e9);
    }
  } while (now_seconds() < deadline);
  // Defeat dead-store elimination.
  volatile float sink = a[kCount / 2];
  (void)sink;
  return best_gbs;
}

}  // namespace lightnas::nn::simd
