#pragma once

#include <cstddef>
#include <string>

namespace lightnas::nn::simd {

/// Instruction-set tier of the dense microkernels (see kernels_avx2.cpp
/// and the scalar kernels in tensor.cpp).
///
/// Accumulation-order contract: kScalar and kAvx2 produce bit-identical
/// results. Both accumulate every output element along a single
/// ascending-k chain with separately rounded multiply and add (the AVX2
/// tier vectorizes across output *columns*, which changes nothing about
/// any one element's chain, and is compiled with -ffp-contract=off so
/// the compiler cannot fuse the chain behind our back). kAvx2Fma swaps
/// the chain's mul+add pairs for fused multiply-adds — one rounding per
/// product instead of two. That is faster and *more* accurate, but not
/// bit-identical to scalar, so it is never selected by default: search
/// trajectories and checkpoints stay exactly reproducible across hosts
/// unless the user opts in with --isa avx2fma / LIGHTNAS_ISA=avx2fma.
enum class IsaLevel {
  kScalar,   ///< portable C++ kernels; the identity reference
  kAvx2,     ///< 8-wide AVX2, separate mul+add (bit-identical to scalar)
  kAvx2Fma,  ///< 8-wide AVX2 with FMA (opt-in; not bit-identical)
};

/// True when the AVX2 kernels were compiled in (LIGHTNAS_SIMD=AVX2 and
/// the compiler supports -mavx2). Runtime selection additionally
/// requires CPUID support — see detect_best().
bool avx2_compiled();

/// True when the running CPU reports AVX2 (and FMA for kAvx2Fma).
bool cpu_supports(IsaLevel level);

/// Best level that is both compiled in and supported by this CPU.
/// Never returns kAvx2Fma: FMA changes results, so it is opt-in only.
IsaLevel detect_best();

/// Process-wide selected level. Resolved once on first use:
/// LIGHTNAS_ISA=scalar|avx2|avx2fma in the environment wins (falling
/// back to detect_best() with a warning if unsupported), else
/// detect_best(). Thread-safe reads.
IsaLevel global_isa();

/// Install a process-wide level (the CLI's --isa flag). Call during
/// single-threaded startup. Throws std::runtime_error if the level is
/// not compiled in / not supported by this CPU.
void set_global_isa(IsaLevel level);

/// The level the kernels dispatch on: the innermost ScopedIsa override
/// on this thread when one is active, else global_isa(). GEMM entry
/// points read this once per call, so every row chunk of one dispatch
/// uses the same kernels regardless of which pool thread runs it.
IsaLevel active_isa();

/// Parse "scalar" / "avx2" / "avx2fma"; returns false on anything else.
bool parse_isa(const std::string& text, IsaLevel* out);

const char* isa_name(IsaLevel level);

/// RAII thread-local override of active_isa() — how the tests and the
/// roofline bench force a specific tier regardless of host/env. Nests;
/// destruction restores the previous override. Unlike set_global_isa()
/// this does not validate hardware support: forcing an unsupported
/// tier is the caller's own SIGILL to keep.
class ScopedIsa {
 public:
  explicit ScopedIsa(IsaLevel level);
  ~ScopedIsa();

  ScopedIsa(const ScopedIsa&) = delete;
  ScopedIsa& operator=(const ScopedIsa&) = delete;

 private:
  IsaLevel previous_;
  bool had_previous_;
};

// --- AVX2 kernel entry points (defined in kernels_avx2.cpp) -----------
//
// Same row-range semantics as the scalar kernels in tensor.cpp: each
// writes rows [r0, r1) of C and is safe to run concurrently on disjoint
// row ranges. All pointers are to dense row-major storage. When
// avx2_compiled() is false these abort — the dispatch layer never calls
// them in that configuration.

/// C(r0..r1, :) = A(r0..r1, :) * B, A (m x k), B (k x n), kc = k-tile.
void matmul_rows_avx2(const float* a, const float* b, float* c,
                      std::size_t k, std::size_t n, std::size_t r0,
                      std::size_t r1, std::size_t kc, bool fma);

/// C(i0..i1, :) = A^T(i0..i1, :) * B, A (k x m), B (k x n).
void matmul_tn_rows_avx2(const float* a, const float* b, float* c,
                         std::size_t k, std::size_t m, std::size_t n,
                         std::size_t i0, std::size_t i1, std::size_t kc,
                         bool fma);

/// C(r0..r1, :) = A(r0..r1, :) * B^T, A (m x k), B (n x k). Dot-product
/// layout (no k-tiling: each output is one pass over k held in a
/// register), so there is no kc parameter.
void matmul_nt_rows_avx2(const float* a, const float* b, float* c,
                         std::size_t k, std::size_t n, std::size_t r0,
                         std::size_t r1, bool fma);

/// Fused v = max(v + bias[c], 0) over rows [r0, r1) of data (rows x cols).
void add_row_relu_rows_avx2(float* data, const float* bias,
                            std::size_t cols, std::size_t r0,
                            std::size_t r1);

// --- roofline probes (bench/micro_benchmarks) --------------------------

/// Peak sustained single-precision GFLOP/s of one core: a register-tiled
/// FMA (or mul+add when FMA is unavailable) throughput loop. Returns 0
/// when AVX2 is not compiled in / supported — the bench then reports the
/// scalar probe instead.
double peak_gflops_probe(double seconds);

/// Sustained read+write memory bandwidth in GB/s (STREAM-triad-style
/// a[i] = b[i] + s * c[i] over a buffer far larger than L2).
double stream_bandwidth_probe(double seconds);

}  // namespace lightnas::nn::simd
