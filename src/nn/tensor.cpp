#include "nn/tensor.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <sstream>

#include "util/rng.hpp"

namespace lightnas::nn {

Tensor::Tensor(std::size_t rows, std::size_t cols, float fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Tensor Tensor::zeros(std::size_t rows, std::size_t cols) {
  return Tensor(rows, cols, 0.0f);
}

Tensor Tensor::ones(std::size_t rows, std::size_t cols) {
  return Tensor(rows, cols, 1.0f);
}

Tensor Tensor::full(std::size_t rows, std::size_t cols, float value) {
  return Tensor(rows, cols, value);
}

Tensor Tensor::scalar(float value) {
  return Tensor(1, 1, value);
}

Tensor Tensor::randn(std::size_t rows, std::size_t cols,
                     lightnas::util::Rng& rng, float stddev) {
  Tensor t(rows, cols);
  for (auto& v : t.data_) {
    v = static_cast<float>(rng.normal(0.0, stddev));
  }
  return t;
}

Tensor Tensor::from_rows(const std::vector<std::vector<float>>& rows) {
  assert(!rows.empty());
  Tensor t(rows.size(), rows.front().size());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    assert(rows[r].size() == t.cols_);
    std::copy(rows[r].begin(), rows[r].end(),
              t.data_.begin() + static_cast<std::ptrdiff_t>(r * t.cols_));
  }
  return t;
}

float& Tensor::at(std::size_t r, std::size_t c) {
  assert(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

float Tensor::at(std::size_t r, std::size_t c) const {
  assert(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

float Tensor::item() const {
  assert(rows_ == 1 && cols_ == 1);
  return data_[0];
}

void Tensor::fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

void Tensor::add_inplace(const Tensor& other) {
  assert(same_shape(other));
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
}

void Tensor::sub_inplace(const Tensor& other) {
  assert(same_shape(other));
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
}

void Tensor::scale_inplace(float s) {
  for (auto& v : data_) v *= s;
}

void Tensor::axpy_inplace(float s, const Tensor& other) {
  assert(same_shape(other));
  for (std::size_t i = 0; i < data_.size(); ++i) {
    data_[i] += s * other.data_[i];
  }
}

void Tensor::add_row_inplace(const Tensor& row) {
  assert(row.rows() == 1 && row.cols() == cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      data_[r * cols_ + c] += row.data_[c];
    }
  }
}

void Tensor::relu_inplace() {
  for (auto& v : data_) v = std::max(v, 0.0f);
}

Tensor Tensor::reshaped(std::size_t rows, std::size_t cols) const {
  assert(rows * cols == data_.size());
  Tensor t;
  t.rows_ = rows;
  t.cols_ = cols;
  t.data_ = data_;
  return t;
}

float Tensor::sum() const {
  float total = 0.0f;
  for (float v : data_) total += v;
  return total;
}

float Tensor::mean() const {
  assert(!data_.empty());
  return sum() / static_cast<float>(data_.size());
}

float Tensor::abs_max() const {
  float m = 0.0f;
  for (float v : data_) m = std::max(m, std::abs(v));
  return m;
}

std::size_t Tensor::argmax_row(std::size_t r) const {
  assert(r < rows_);
  std::size_t best = 0;
  float best_v = at(r, 0);
  for (std::size_t c = 1; c < cols_; ++c) {
    if (at(r, c) > best_v) {
      best_v = at(r, c);
      best = c;
    }
  }
  return best;
}

std::string Tensor::shape_string() const {
  std::ostringstream oss;
  oss << '(' << rows_ << " x " << cols_ << ')';
  return oss.str();
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  assert(a.cols() == b.rows());
  Tensor c(a.rows(), b.cols());
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t p = 0; p < k; ++p) {
      const float av = a.at(i, p);
      if (av == 0.0f) continue;
      const float* brow = &b.data()[p * n];
      float* crow = &c.data()[i * n];
      for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
  return c;
}

Tensor matmul_tn(const Tensor& a, const Tensor& b) {
  assert(a.rows() == b.rows());
  Tensor c(a.cols(), b.cols());
  const std::size_t k = a.rows(), m = a.cols(), n = b.cols();
  for (std::size_t p = 0; p < k; ++p) {
    const float* arow = &a.data()[p * m];
    const float* brow = &b.data()[p * n];
    for (std::size_t i = 0; i < m; ++i) {
      const float av = arow[i];
      if (av == 0.0f) continue;
      float* crow = &c.data()[i * n];
      for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
  return c;
}

Tensor matmul_nt(const Tensor& a, const Tensor& b) {
  assert(a.cols() == b.cols());
  Tensor c(a.rows(), b.rows());
  const std::size_t m = a.rows(), k = a.cols(), n = b.rows();
  for (std::size_t i = 0; i < m; ++i) {
    const float* arow = &a.data()[i * k];
    float* crow = &c.data()[i * n];
    for (std::size_t j = 0; j < n; ++j) {
      const float* brow = &b.data()[j * k];
      float dot = 0.0f;
      for (std::size_t p = 0; p < k; ++p) dot += arow[p] * brow[p];
      crow[j] = dot;
    }
  }
  return c;
}

}  // namespace lightnas::nn
