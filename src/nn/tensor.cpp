#include "nn/tensor.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "nn/parallel.hpp"
#include "nn/pool.hpp"
#include "nn/simd.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace lightnas::nn {

Tensor::Tensor(std::size_t rows, std::size_t cols, float fill)
    : rows_(rows), cols_(cols) {
  const std::size_t count = rows * cols;
  if (TensorPool* pool = TensorPool::active()) {
    data_ = pool->acquire(count);
    std::fill(data_.begin(), data_.end(), fill);
  } else {
    data_.assign(count, fill);
  }
}

Tensor::Tensor(const Tensor& other) : rows_(other.rows_), cols_(other.cols_) {
  if (TensorPool* pool = TensorPool::active()) {
    data_ = pool->acquire(other.data_.size());
    std::copy(other.data_.begin(), other.data_.end(), data_.begin());
  } else {
    data_ = other.data_;
  }
}

Tensor& Tensor::operator=(const Tensor& other) {
  if (this == &other) return *this;
  rows_ = other.rows_;
  cols_ = other.cols_;
  TensorPool* pool = TensorPool::active();
  if (pool == nullptr || data_.capacity() >= other.data_.size()) {
    // Fits in place (or pooling is off): plain vector copy-assign, which
    // reuses the existing buffer when the capacity suffices.
    data_ = other.data_;
  } else {
    release_buffer(std::move(data_));
    data_ = pool->acquire(other.data_.size());
    std::copy(other.data_.begin(), other.data_.end(), data_.begin());
  }
  return *this;
}

Tensor::Tensor(Tensor&& other) noexcept
    : rows_(other.rows_), cols_(other.cols_), data_(std::move(other.data_)) {
  other.rows_ = 0;
  other.cols_ = 0;
  other.data_.clear();
}

Tensor& Tensor::operator=(Tensor&& other) noexcept {
  if (this == &other) return *this;
  release_buffer(std::move(data_));
  rows_ = other.rows_;
  cols_ = other.cols_;
  data_ = std::move(other.data_);
  other.rows_ = 0;
  other.cols_ = 0;
  other.data_.clear();
  return *this;
}

Tensor::~Tensor() { release_buffer(std::move(data_)); }

void Tensor::release_buffer(AlignedVector&& buffer) noexcept {
  if (buffer.capacity() == 0) return;
  if (TensorPool* pool = TensorPool::active()) {
    pool->release(std::move(buffer));
  }
  // No active pool (or the pool declined): the vector destructor frees.
}

Tensor Tensor::uninitialized(std::size_t rows, std::size_t cols) {
  Tensor t;
  t.rows_ = rows;
  t.cols_ = cols;
  const std::size_t count = rows * cols;
  if (TensorPool* pool = TensorPool::active()) {
    t.data_ = pool->acquire(count);  // contents stale by contract
  } else {
    t.data_.assign(count, 0.0f);
  }
  return t;
}

Tensor Tensor::zeros(std::size_t rows, std::size_t cols) {
  return Tensor(rows, cols, 0.0f);
}

Tensor Tensor::ones(std::size_t rows, std::size_t cols) {
  return Tensor(rows, cols, 1.0f);
}

Tensor Tensor::full(std::size_t rows, std::size_t cols, float value) {
  return Tensor(rows, cols, value);
}

Tensor Tensor::scalar(float value) {
  return Tensor(1, 1, value);
}

Tensor Tensor::randn(std::size_t rows, std::size_t cols,
                     lightnas::util::Rng& rng, float stddev) {
  Tensor t = Tensor::uninitialized(rows, cols);
  for (auto& v : t.data_) {
    v = static_cast<float>(rng.normal(0.0, stddev));
  }
  return t;
}

Tensor Tensor::from_rows(const std::vector<std::vector<float>>& rows) {
  // Validate before allocating: a ragged longer row would otherwise copy
  // past its slice and corrupt the heap in builds where assert is a
  // no-op.
  if (rows.empty()) {
    throw std::invalid_argument("Tensor::from_rows: empty row list");
  }
  const std::size_t cols = rows.front().size();
  if (cols == 0) {
    throw std::invalid_argument("Tensor::from_rows: rows have no columns");
  }
  for (std::size_t r = 0; r < rows.size(); ++r) {
    if (rows[r].size() != cols) {
      std::ostringstream oss;
      oss << "Tensor::from_rows: ragged input, row " << r << " has "
          << rows[r].size() << " columns, expected " << cols;
      throw std::invalid_argument(oss.str());
    }
  }
  Tensor t = Tensor::uninitialized(rows.size(), cols);
  for (std::size_t r = 0; r < rows.size(); ++r) {
    std::copy(rows[r].begin(), rows[r].end(),
              t.data_.begin() + static_cast<std::ptrdiff_t>(r * cols));
  }
  return t;
}

float& Tensor::at(std::size_t r, std::size_t c) {
  assert(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

float Tensor::at(std::size_t r, std::size_t c) const {
  assert(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

float Tensor::item() const {
  assert(rows_ == 1 && cols_ == 1);
  return data_[0];
}

void Tensor::fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

void Tensor::add_inplace(const Tensor& other) {
  LIGHTNAS_CHECK(same_shape(other), "add_inplace: " + shape_string() +
                                        " += " + other.shape_string());
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
}

void Tensor::sub_inplace(const Tensor& other) {
  LIGHTNAS_CHECK(same_shape(other), "sub_inplace: " + shape_string() +
                                        " -= " + other.shape_string());
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
}

void Tensor::scale_inplace(float s) {
  for (auto& v : data_) v *= s;
}

void Tensor::axpy_inplace(float s, const Tensor& other) {
  LIGHTNAS_CHECK(same_shape(other), "axpy_inplace: " + shape_string() +
                                        " += s * " + other.shape_string());
  for (std::size_t i = 0; i < data_.size(); ++i) {
    data_[i] += s * other.data_[i];
  }
}

void Tensor::add_row_inplace(const Tensor& row) {
  add_row_inplace(row, ParallelContext::current());
}

void Tensor::add_row_inplace(const Tensor& row, const ParallelContext& ctx) {
  LIGHTNAS_CHECK(row.rows() == 1 && row.cols() == cols_,
                 "add_row_inplace: " + shape_string() + " += row " +
                     row.shape_string());
  add_row_into(data_.data(), row.data_.data(), rows_, cols_, ctx);
}

void Tensor::relu_inplace() {
  relu_inplace(ParallelContext::current());
}

void Tensor::relu_inplace(const ParallelContext& ctx) {
  const std::size_t cols = cols_;
  float* data = data_.data();
  const auto body = [data, cols](std::size_t r0, std::size_t r1) {
    for (std::size_t i = r0 * cols; i < r1 * cols; ++i) {
      data[i] = std::max(data[i], 0.0f);
    }
  };
  if (ctx.should_parallelize(rows_, size())) {
    ctx.for_rows(rows_, body);
  } else {
    body(0, rows_);
  }
}

void Tensor::add_row_relu_inplace(const Tensor& row) {
  add_row_relu_inplace(row, ParallelContext::current());
}

void Tensor::add_row_relu_inplace(const Tensor& row,
                                  const ParallelContext& ctx) {
  LIGHTNAS_CHECK(row.rows() == 1 && row.cols() == cols_,
                 "add_row_relu_inplace: " + shape_string() + " += row " +
                     row.shape_string());
  add_row_relu_into(data_.data(), row.data_.data(), rows_, cols_, ctx);
}

Tensor Tensor::reshaped(std::size_t rows, std::size_t cols) const {
  assert(rows * cols == data_.size());
  Tensor t(*this);  // pooled copy when a pool is active
  t.rows_ = rows;
  t.cols_ = cols;
  return t;
}

float Tensor::sum() const {
  float total = 0.0f;
  for (float v : data_) total += v;
  return total;
}

float Tensor::mean() const {
  assert(!data_.empty());
  return sum() / static_cast<float>(data_.size());
}

float Tensor::abs_max() const {
  float m = 0.0f;
  for (float v : data_) m = std::max(m, std::abs(v));
  return m;
}

std::size_t Tensor::argmax_row(std::size_t r) const {
  assert(r < rows_);
  std::size_t best = 0;
  float best_v = at(r, 0);
  for (std::size_t c = 1; c < cols_; ++c) {
    if (at(r, c) > best_v) {
      best_v = at(r, c);
      best = c;
    }
  }
  return best;
}

std::string Tensor::shape_string() const {
  std::ostringstream oss;
  oss << '(' << rows_ << " x " << cols_ << ')';
  return oss.str();
}

// ---------------------------------------------------------------------
// Blocked GEMM kernels.
//
// All three variants share one determinism contract: for every output
// element C(i, j), products are accumulated in strictly ascending-p
// order with a single accumulation chain. Cache blocking tiles the k
// dimension (so a block of B rows stays hot across several C rows) and
// register blocking unrolls p in pairs / keeps several independent dot
// accumulators — neither changes the per-element accumulation order, so
// the blocked kernels are bit-identical to the naive triple loop, and a
// row range [r0, r1) computes exactly what the full serial kernel would
// compute for those rows. That is what lets ParallelContext::for_rows
// split rows across threads with exact float equality to the serial
// path.
//
// Note there is deliberately NO zero-operand skip: `0 * NaN` must stay
// NaN and `0 * inf` must stay NaN for IEEE propagation (the old kernels
// silently dropped non-finite values through an `av == 0` fast path,
// which let poisoned activations masquerade as healthy zeros).
//
// The accumulating kernels peel the first write per element into an
// assignment of `0.0f + products` — the exact chain the accumulate form
// produces over a zeroed C — so the output buffer may come from
// Tensor::uninitialized and a pooled hit never pays a zero-fill pass.
// ---------------------------------------------------------------------

/// C(r0..r1, :) = A(r0..r1, :) * B for row-major A (m x k), B (k x n).
/// Fully overwrites the row range; C may start uninitialized (k >= 1).
void matmul_rows_scalar(const float* a, const float* b, float* c,
                        std::size_t k, std::size_t n, std::size_t r0,
                        std::size_t r1, std::size_t kc) {
  for (std::size_t pb = 0; pb < k; pb += kc) {
    const std::size_t pe = std::min(pb + kc, k);
    for (std::size_t i = r0; i < r1; ++i) {
      const float* arow = a + i * k;
      float* crow = c + i * n;
      std::size_t p = pb;
      if (pb == 0) {
        // First touch of this row: assign, don't read stale C.
        if (p + 1 < pe) {
          const float a0 = arow[p];
          const float a1 = arow[p + 1];
          const float* b0 = b + p * n;
          const float* b1 = b0 + n;
          for (std::size_t j = 0; j < n; ++j) {
            crow[j] = 0.0f + a0 * b0[j] + a1 * b1[j];
          }
          p += 2;
        } else {
          const float av = arow[p];
          const float* brow = b + p * n;
          for (std::size_t j = 0; j < n; ++j) {
            crow[j] = 0.0f + av * brow[j];
          }
          ++p;
        }
      }
      for (; p + 1 < pe; p += 2) {
        const float a0 = arow[p];
        const float a1 = arow[p + 1];
        const float* b0 = b + p * n;
        const float* b1 = b0 + n;
        for (std::size_t j = 0; j < n; ++j) {
          // Left-to-right: (crow + a0*b0) + a1*b1 — the same chain the
          // one-p-at-a-time loop produces.
          crow[j] = crow[j] + a0 * b0[j] + a1 * b1[j];
        }
      }
      for (; p < pe; ++p) {
        const float av = arow[p];
        const float* brow = b + p * n;
        for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
  }
}

/// C(i0..i1, :) = A^T(i0..i1, :) * B for row-major A (k x m), B (k x n);
/// row i of C reads column i of A (stride m). Fully overwrites the row
/// range; C may start uninitialized (k >= 1).
void matmul_tn_rows_scalar(const float* a, const float* b, float* c,
                           std::size_t k, std::size_t m, std::size_t n,
                           std::size_t i0, std::size_t i1, std::size_t kc) {
  for (std::size_t pb = 0; pb < k; pb += kc) {
    const std::size_t pe = std::min(pb + kc, k);
    for (std::size_t i = i0; i < i1; ++i) {
      float* crow = c + i * n;
      std::size_t p = pb;
      if (pb == 0) {
        // First touch of this row: assign, don't read stale C.
        if (p + 1 < pe) {
          const float a0 = a[p * m + i];
          const float a1 = a[(p + 1) * m + i];
          const float* b0 = b + p * n;
          const float* b1 = b0 + n;
          for (std::size_t j = 0; j < n; ++j) {
            crow[j] = 0.0f + a0 * b0[j] + a1 * b1[j];
          }
          p += 2;
        } else {
          const float av = a[p * m + i];
          const float* brow = b + p * n;
          for (std::size_t j = 0; j < n; ++j) {
            crow[j] = 0.0f + av * brow[j];
          }
          ++p;
        }
      }
      for (; p + 1 < pe; p += 2) {
        const float a0 = a[p * m + i];
        const float a1 = a[(p + 1) * m + i];
        const float* b0 = b + p * n;
        const float* b1 = b0 + n;
        for (std::size_t j = 0; j < n; ++j) {
          crow[j] = crow[j] + a0 * b0[j] + a1 * b1[j];
        }
      }
      for (; p < pe; ++p) {
        const float av = a[p * m + i];
        const float* brow = b + p * n;
        for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
  }
}

/// C(r0..r1, :) = A(r0..r1, :) * B^T for row-major A (m x k), B (n x k).
/// Four independent dot accumulators per j-tile; each is its own
/// ascending-p chain, so per-element order matches the naive dot.
void matmul_nt_rows_scalar(const float* a, const float* b, float* c,
                           std::size_t k, std::size_t n, std::size_t r0,
                           std::size_t r1) {
  for (std::size_t i = r0; i < r1; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    std::size_t j = 0;
    for (; j + 3 < n; j += 4) {
      const float* b0 = b + j * k;
      const float* b1 = b0 + k;
      const float* b2 = b1 + k;
      const float* b3 = b2 + k;
      float d0 = 0.0f, d1 = 0.0f, d2 = 0.0f, d3 = 0.0f;
      for (std::size_t p = 0; p < k; ++p) {
        const float av = arow[p];
        d0 += av * b0[p];
        d1 += av * b1[p];
        d2 += av * b2[p];
        d3 += av * b3[p];
      }
      crow[j] = d0;
      crow[j + 1] = d1;
      crow[j + 2] = d2;
      crow[j + 3] = d3;
    }
    for (; j < n; ++j) {
      const float* brow = b + j * k;
      float dot = 0.0f;
      for (std::size_t p = 0; p < k; ++p) dot += arow[p] * brow[p];
      crow[j] = dot;
    }
  }
}

void matmul_into(const float* a, const float* b, float* c, std::size_t m,
                 std::size_t k, std::size_t n, const ParallelContext& ctx) {
  if (k == 0) {  // no k-blocks: the kernel never writes C
    std::fill(c, c + m * n, 0.0f);
    return;
  }
  const std::size_t kc = ctx.block();
  // ISA resolved once per call, before any row partitioning, so every
  // chunk of one dispatch runs the same kernel tier (see simd.hpp).
  const simd::IsaLevel isa = simd::active_isa();
  const bool fma = isa == simd::IsaLevel::kAvx2Fma;
  const auto body = [a, b, c, k, n, kc, isa,
                     fma](std::size_t r0, std::size_t r1) {
    if (isa != simd::IsaLevel::kScalar) {
      simd::matmul_rows_avx2(a, b, c, k, n, r0, r1, kc, fma);
    } else {
      matmul_rows_scalar(a, b, c, k, n, r0, r1, kc);
    }
  };
  if (ctx.should_parallelize(m, 2 * m * k * n)) {
    ctx.for_rows(m, body);
  } else {
    body(0, m);
  }
}

void matmul_tn_into(const float* a, const float* b, float* c, std::size_t k,
                    std::size_t m, std::size_t n, const ParallelContext& ctx) {
  if (k == 0) {  // no k-blocks: the kernel never writes C
    std::fill(c, c + m * n, 0.0f);
    return;
  }
  const std::size_t kc = ctx.block();
  const simd::IsaLevel isa = simd::active_isa();
  const bool fma = isa == simd::IsaLevel::kAvx2Fma;
  const auto body = [a, b, c, k, m, n, kc, isa,
                     fma](std::size_t i0, std::size_t i1) {
    if (isa != simd::IsaLevel::kScalar) {
      simd::matmul_tn_rows_avx2(a, b, c, k, m, n, i0, i1, kc, fma);
    } else {
      matmul_tn_rows_scalar(a, b, c, k, m, n, i0, i1, kc);
    }
  };
  if (ctx.should_parallelize(m, 2 * m * k * n)) {
    ctx.for_rows(m, body);
  } else {
    body(0, m);
  }
}

void matmul_nt_into(const float* a, const float* b, float* c, std::size_t m,
                    std::size_t k, std::size_t n, const ParallelContext& ctx) {
  // The NT kernel assigns every element (dot accumulators start at 0),
  // so the output never needs a pre-fill, even for k == 0.
  const simd::IsaLevel isa = simd::active_isa();
  const bool fma = isa == simd::IsaLevel::kAvx2Fma;
  const auto body = [a, b, c, k, n, isa,
                     fma](std::size_t r0, std::size_t r1) {
    if (isa != simd::IsaLevel::kScalar) {
      simd::matmul_nt_rows_avx2(a, b, c, k, n, r0, r1, fma);
    } else {
      matmul_nt_rows_scalar(a, b, c, k, n, r0, r1);
    }
  };
  if (ctx.should_parallelize(m, 2 * m * k * n)) {
    ctx.for_rows(m, body);
  } else {
    body(0, m);
  }
}

void add_row_into(float* data, const float* bias, std::size_t rows,
                  std::size_t cols, const ParallelContext& ctx) {
  const auto body = [data, bias, cols](std::size_t r0, std::size_t r1) {
    for (std::size_t r = r0; r < r1; ++r) {
      float* out = data + r * cols;
      for (std::size_t c = 0; c < cols; ++c) out[c] += bias[c];
    }
  };
  if (ctx.should_parallelize(rows, rows * cols)) {
    ctx.for_rows(rows, body);
  } else {
    body(0, rows);
  }
}

void add_row_relu_into(float* data, const float* bias, std::size_t rows,
                       std::size_t cols, const ParallelContext& ctx) {
  // ISA resolved once per call so every row chunk of one dispatch uses
  // the same kernel. Both tiers compute max(v + bias, 0) with one
  // rounding per element — bit-identical by construction.
  const bool vec = simd::active_isa() != simd::IsaLevel::kScalar;
  const auto body = [data, bias, cols, vec](std::size_t r0, std::size_t r1) {
    if (vec) {
      simd::add_row_relu_rows_avx2(data, bias, cols, r0, r1);
      return;
    }
    for (std::size_t r = r0; r < r1; ++r) {
      float* out = data + r * cols;
      for (std::size_t c = 0; c < cols; ++c) {
        out[c] = std::max(out[c] + bias[c], 0.0f);
      }
    }
  };
  if (ctx.should_parallelize(rows, rows * cols)) {
    ctx.for_rows(rows, body);
  } else {
    body(0, rows);
  }
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  return matmul(a, b, ParallelContext::current());
}

Tensor matmul(const Tensor& a, const Tensor& b, const ParallelContext& ctx) {
  LIGHTNAS_CHECK(a.cols() == b.rows(),
                 "matmul: " + a.shape_string() + " * " + b.shape_string());
  Tensor c = Tensor::uninitialized(a.rows(), b.cols());
  matmul_into(a.data().data(), b.data().data(), c.data().data(), a.rows(),
              a.cols(), b.cols(), ctx);
  return c;
}

Tensor matmul_tn(const Tensor& a, const Tensor& b) {
  return matmul_tn(a, b, ParallelContext::current());
}

Tensor matmul_tn(const Tensor& a, const Tensor& b,
                 const ParallelContext& ctx) {
  LIGHTNAS_CHECK(a.rows() == b.rows(), "matmul_tn: " + a.shape_string() +
                                           "^T * " + b.shape_string());
  Tensor c = Tensor::uninitialized(a.cols(), b.cols());
  matmul_tn_into(a.data().data(), b.data().data(), c.data().data(), a.rows(),
                 a.cols(), b.cols(), ctx);
  return c;
}

Tensor matmul_nt(const Tensor& a, const Tensor& b) {
  return matmul_nt(a, b, ParallelContext::current());
}

Tensor matmul_nt(const Tensor& a, const Tensor& b,
                 const ParallelContext& ctx) {
  LIGHTNAS_CHECK(a.cols() == b.cols(), "matmul_nt: " + a.shape_string() +
                                           " * " + b.shape_string() + "^T");
  Tensor c = Tensor::uninitialized(a.rows(), b.rows());
  matmul_nt_into(a.data().data(), b.data().data(), c.data().data(), a.rows(),
                 a.cols(), b.rows(), ctx);
  return c;
}

}  // namespace lightnas::nn
