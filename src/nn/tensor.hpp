#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "nn/aligned.hpp"

namespace lightnas::util {
class Rng;
}

namespace lightnas::nn {

class ParallelContext;

/// Dense row-major 2-D float tensor.
///
/// The whole reproduction only needs rank-2 math (batch x features):
/// the latency predictor is an MLP over flattened one-hot encodings and
/// the supernet surrogate blocks are residual linear blocks. Scalars are
/// represented as 1x1 tensors. Keeping the tensor rank-2 keeps every op
/// kernel simple and auditable.
class Tensor {
 public:
  Tensor() = default;
  Tensor(std::size_t rows, std::size_t cols, float fill = 0.0f);

  /// All special members route the underlying buffer through the
  /// thread's active TensorPool (see pool.hpp) when one is installed:
  /// construction acquires a recycled buffer and overwrites every
  /// element; destruction / overwrite donates the buffer back to the
  /// pool. Without an active pool behavior is the plain std::vector
  /// one. Either way the element values are identical — pooling only
  /// changes where the bytes live.
  Tensor(const Tensor& other);
  Tensor& operator=(const Tensor& other);
  Tensor(Tensor&& other) noexcept;
  Tensor& operator=(Tensor&& other) noexcept;
  ~Tensor();

  /// Storage whose contents are UNSPECIFIED when drawn from an active
  /// TensorPool — the caller must overwrite every element before any
  /// read. This is the fast path for kernels that fully overwrite their
  /// output (GEMM, batch assembly, stacking): a pooled hit skips the
  /// zero/fill pass entirely. Without an active pool the buffer is
  /// zero-initialized, because std::vector cannot hand out raw storage;
  /// init-free handout is precisely what buffer recycling enables.
  static Tensor uninitialized(std::size_t rows, std::size_t cols);
  static Tensor zeros(std::size_t rows, std::size_t cols);
  static Tensor ones(std::size_t rows, std::size_t cols);
  static Tensor full(std::size_t rows, std::size_t cols, float value);
  static Tensor scalar(float value);
  /// I.i.d. normal entries (Kaiming-style init is built on top of this).
  static Tensor randn(std::size_t rows, std::size_t cols,
                      lightnas::util::Rng& rng, float stddev = 1.0f);
  static Tensor from_rows(const std::vector<std::vector<float>>& rows);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }
  bool same_shape(const Tensor& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  float& at(std::size_t r, std::size_t c);
  float at(std::size_t r, std::size_t c) const;
  float& operator[](std::size_t i) { return data_[i]; }
  float operator[](std::size_t i) const { return data_[i]; }

  /// Underlying storage: a std::vector<float> over a 32-byte-aligned
  /// allocator (see aligned.hpp), so kernel code can assume the buffer
  /// base is AVX2-vector-aligned whether it came from the pool or the
  /// heap.
  const AlignedVector& data() const { return data_; }
  AlignedVector& data() { return data_; }

  /// Scalar accessor; requires a 1x1 tensor.
  float item() const;

  void fill(float value);
  void add_inplace(const Tensor& other);
  void sub_inplace(const Tensor& other);
  void scale_inplace(float s);
  /// this += s * other (axpy), the core optimizer update primitive.
  void axpy_inplace(float s, const Tensor& other);
  /// Broadcast-add a 1 x cols row over every row (bias application).
  /// The no-context overloads dispatch on ParallelContext::current();
  /// results are bit-identical for every thread count.
  void add_row_inplace(const Tensor& row);
  void add_row_inplace(const Tensor& row, const ParallelContext& ctx);
  /// Elementwise max(v, 0) — the inference-path counterpart of ops::relu.
  void relu_inplace();
  void relu_inplace(const ParallelContext& ctx);
  /// Fused bias + ReLU: v = max(v + row[c], 0), one pass over memory.
  /// Identical math to add_row_inplace followed by relu_inplace; the
  /// hidden-layer hot path of Mlp::forward_inference.
  void add_row_relu_inplace(const Tensor& row);
  void add_row_relu_inplace(const Tensor& row, const ParallelContext& ctx);

  /// Reinterpret the elements under a new shape (copies the buffer —
  /// through the pool when one is active); total size must be preserved.
  Tensor reshaped(std::size_t rows, std::size_t cols) const;

  float sum() const;
  float mean() const;
  float abs_max() const;
  /// Column index of the maximum entry in the given row.
  std::size_t argmax_row(std::size_t r) const;

  std::string shape_string() const;

 private:
  /// Donate the buffer to the active pool (plain free otherwise).
  static void release_buffer(AlignedVector&& buffer) noexcept;

  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  AlignedVector data_;
};

/// Cache-blocked, register-blocked GEMM kernels with full IEEE
/// NaN/Inf propagation (no zero-operand skips). The one-argument-pair
/// forms dispatch on ParallelContext::current(); the explicit-context
/// forms take the context to use. For every context and thread count
/// the result is bit-identical to the serial kernel: rows are
/// partitioned into fixed contiguous chunks and every output element
/// keeps a single ascending-k accumulation chain (see parallel.hpp).
///
/// On AVX2-capable hosts the row kernels additionally dispatch (once
/// per call, before any row partitioning) to the SIMD microkernels of
/// simd.hpp. The default `avx2` tier vectorizes across output columns
/// with separately rounded mul+add, so it preserves the per-element
/// accumulation chain exactly — results stay bit-identical to the
/// scalar tier (and hence to every prior release). The opt-in
/// `avx2fma` tier fuses the chain's mul+add pairs and is NOT
/// bit-identical; see simd.hpp for the contract and overrides.

/// C = A * B. Shapes: (m x k) * (k x n) -> (m x n).
Tensor matmul(const Tensor& a, const Tensor& b);
Tensor matmul(const Tensor& a, const Tensor& b, const ParallelContext& ctx);
/// C = A^T * B. Shapes: (k x m)^T * (k x n) -> (m x n).
Tensor matmul_tn(const Tensor& a, const Tensor& b);
Tensor matmul_tn(const Tensor& a, const Tensor& b,
                 const ParallelContext& ctx);
/// C = A * B^T. Shapes: (m x k) * (n x k)^T -> (m x n).
Tensor matmul_nt(const Tensor& a, const Tensor& b);
Tensor matmul_nt(const Tensor& a, const Tensor& b,
                 const ParallelContext& ctx);

/// Raw-pointer forms of the three GEMMs over caller-owned buffers.
/// These hold the single dispatch path — one ISA resolution per call,
/// kc = ctx.block(), row partitioning via should_parallelize/for_rows —
/// and the Tensor wrappers above delegate to them, so a compiled
/// execution plan (plan.hpp) running on arena storage goes through the
/// exact same kernels, bit for bit, as the dynamic graph. Buffers must
/// not alias; `c` holds the full output and is fully overwritten
/// (k == 0 zero-fills it).
void matmul_into(const float* a, const float* b, float* c, std::size_t m,
                 std::size_t k, std::size_t n, const ParallelContext& ctx);
/// C = A^T * B with A stored (k x m) row-major; C is (m x n).
void matmul_tn_into(const float* a, const float* b, float* c, std::size_t k,
                    std::size_t m, std::size_t n, const ParallelContext& ctx);
/// C = A * B^T with B stored (n x k) row-major; C is (m x n).
void matmul_nt_into(const float* a, const float* b, float* c, std::size_t m,
                    std::size_t k, std::size_t n, const ParallelContext& ctx);
/// Raw-pointer row-broadcast helpers (the add_row_*_inplace bodies):
/// data is (rows x cols), bias is one row of cols floats.
void add_row_into(float* data, const float* bias, std::size_t rows,
                  std::size_t cols, const ParallelContext& ctx);
void add_row_relu_into(float* data, const float* bias, std::size_t rows,
                       std::size_t cols, const ParallelContext& ctx);

/// Row-range scalar GEMM kernels (the serial reference tier). Exposed
/// so a compiled execution plan can pin a kernel pointer at compile
/// time instead of re-dispatching per call; the *_into forms above and
/// the SIMD microkernels of simd.hpp share the exact accumulation-chain
/// contract, so any row partitioning of [r0, r1) is bit-identical.
void matmul_rows_scalar(const float* a, const float* b, float* c,
                        std::size_t k, std::size_t n, std::size_t r0,
                        std::size_t r1, std::size_t kc);
void matmul_tn_rows_scalar(const float* a, const float* b, float* c,
                           std::size_t k, std::size_t m, std::size_t n,
                           std::size_t i0, std::size_t i1, std::size_t kc);
void matmul_nt_rows_scalar(const float* a, const float* b, float* c,
                           std::size_t k, std::size_t n, std::size_t r0,
                           std::size_t r1);

}  // namespace lightnas::nn
