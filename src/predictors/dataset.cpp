#include "predictors/dataset.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "util/stats.hpp"

namespace lightnas::predictors {

std::pair<MeasurementDataset, MeasurementDataset> MeasurementDataset::split(
    double first_fraction, util::Rng& rng) const {
  assert(first_fraction > 0.0 && first_fraction < 1.0);
  const auto n_first = static_cast<std::size_t>(
      first_fraction * static_cast<double>(size()));
  const std::vector<std::size_t> order = rng.permutation(size());

  MeasurementDataset first, second;
  for (std::size_t i = 0; i < order.size(); ++i) {
    MeasurementDataset& dst = (i < n_first) ? first : second;
    dst.architectures.push_back(architectures[order[i]]);
    dst.encodings.push_back(encodings[order[i]]);
    dst.targets.push_back(targets[order[i]]);
  }
  return {std::move(first), std::move(second)};
}

namespace {

/// Architecture whose layers favour `bias_op` with probability
/// `strength`, falling back to uniform otherwise.
space::Architecture biased_architecture(const space::SearchSpace& space,
                                        std::size_t bias_op,
                                        double strength, util::Rng& rng) {
  space::Architecture arch = space.random_architecture(rng);
  for (std::size_t l = 0; l < space.num_layers(); ++l) {
    if (space.layers()[l].searchable && rng.bernoulli(strength)) {
      arch.set_op(l, bias_op);
    }
  }
  return arch;
}

}  // namespace

MeasurementDataset build_measurement_dataset(
    const space::SearchSpace& space, hw::HardwareSimulator& device,
    std::size_t count, Metric metric, util::Rng& rng,
    double biased_fraction) {
  assert(biased_fraction >= 0.0 && biased_fraction <= 1.0);
  MeasurementDataset data;
  data.architectures.reserve(count);
  data.encodings.reserve(count);
  data.targets.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    space::Architecture arch =
        rng.bernoulli(biased_fraction)
            ? biased_architecture(
                  space,
                  static_cast<std::size_t>(
                      rng.uniform_index(space.num_ops())),
                  rng.uniform(0.3, 0.95), rng)
            : space.random_architecture(rng);
    const double value = (metric == Metric::kLatencyMs)
                             ? device.measure_latency_ms(space, arch)
                             : device.measure_energy_mj(space, arch);
    data.encodings.push_back(arch.encode_one_hot(space.num_ops()));
    data.architectures.push_back(std::move(arch));
    data.targets.push_back(value);
  }
  return data;
}

double CampaignReport::attempt_failure_rate() const {
  if (attempts == 0) return 0.0;
  return static_cast<double>(transient_failures + timeouts) /
         static_cast<double>(attempts);
}

std::string CampaignReport::to_string() const {
  char buf[320];
  std::snprintf(
      buf, sizeof(buf),
      "campaign: %zu/%zu samples kept (%zu dropped), %zu attempts "
      "(%zu retries, %zu transient failures, %zu timeouts), "
      "%zu outlier repeats rejected, failure rate %.2f%%, "
      "simulated wall clock %.0f s",
      kept_samples, requested_samples, dropped_samples, attempts, retries,
      transient_failures, timeouts, rejected_outliers,
      attempt_failure_rate() * 100.0, simulated_wall_clock_s);
  return buf;
}

namespace {

/// Median-of-survivors after scaled-MAD rejection. `report` counts the
/// rejected repeats.
double robust_aggregate(std::vector<double> values, double mad_threshold,
                        CampaignReport& report) {
  const double med = util::median(values);
  std::vector<double> deviations;
  deviations.reserve(values.size());
  for (double v : values) deviations.push_back(std::abs(v - med));
  // 1.4826 scales the MAD to the stddev of a normal distribution.
  const double mad_sigma = 1.4826 * util::median(deviations);
  if (mad_sigma <= 0.0) return med;  // all repeats (near-)identical
  std::vector<double> kept;
  kept.reserve(values.size());
  for (double v : values) {
    if (std::abs(v - med) / mad_sigma <= mad_threshold) {
      kept.push_back(v);
    } else {
      ++report.rejected_outliers;
    }
  }
  return kept.empty() ? med : util::median(kept);
}

}  // namespace

MeasurementDataset build_robust_measurement_dataset(
    const space::SearchSpace& space, hw::HardwareSimulator& device,
    std::size_t count, Metric metric, util::Rng& rng,
    const RobustCampaignConfig& config, CampaignReport* report,
    double biased_fraction) {
  if (config.repeats == 0) {
    throw std::invalid_argument(
        "build_robust_measurement_dataset: repeats must be > 0");
  }
  if (config.min_good_repeats == 0 ||
      config.min_good_repeats > config.repeats) {
    throw std::invalid_argument(
        "build_robust_measurement_dataset: min_good_repeats must be in "
        "[1, repeats]");
  }
  CampaignReport local;
  local.requested_samples = count;

  MeasurementDataset data;
  data.architectures.reserve(count);
  data.encodings.reserve(count);
  data.targets.reserve(count);

  for (std::size_t i = 0; i < count; ++i) {
    if (config.recalibrate_every > 0 &&
        i % config.recalibrate_every == 0) {
      device.recalibrate();
    }
    space::Architecture arch =
        rng.bernoulli(biased_fraction)
            ? biased_architecture(
                  space,
                  static_cast<std::size_t>(
                      rng.uniform_index(space.num_ops())),
                  rng.uniform(0.3, 0.95), rng)
            : space.random_architecture(rng);

    std::vector<double> repeats;
    repeats.reserve(config.repeats);
    std::size_t consecutive_failures = 0;
    std::size_t retries_left = config.max_retries;
    while (repeats.size() < config.repeats) {
      const hw::Measurement m =
          (metric == Metric::kLatencyMs)
              ? device.try_measure_latency_ms(space, arch)
              : device.try_measure_energy_mj(space, arch);
      ++local.attempts;
      local.simulated_wall_clock_s += config.measurement_s;
      if (m.ok()) {
        repeats.push_back(m.value);
        consecutive_failures = 0;
        continue;
      }
      if (m.status == hw::MeasurementStatus::kTimeout) {
        ++local.timeouts;
        local.simulated_wall_clock_s += config.timeout_s;
      } else {
        ++local.transient_failures;
      }
      if (retries_left == 0) break;
      --retries_left;
      ++local.retries;
      // Capped exponential backoff before the retry (simulated time).
      local.simulated_wall_clock_s += std::min(
          config.backoff_cap_s,
          config.backoff_base_s *
              static_cast<double>(1ULL << std::min<std::size_t>(
                                      consecutive_failures, 10)));
      ++consecutive_failures;
    }

    if (repeats.size() < config.min_good_repeats) {
      ++local.dropped_samples;
      continue;
    }
    const double value =
        robust_aggregate(std::move(repeats), config.mad_threshold, local);
    data.encodings.push_back(arch.encode_one_hot(space.num_ops()));
    data.architectures.push_back(std::move(arch));
    data.targets.push_back(value);
    ++local.kept_samples;
  }

  if (report != nullptr) *report = local;
  return data;
}

}  // namespace lightnas::predictors
