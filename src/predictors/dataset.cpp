#include "predictors/dataset.hpp"

#include <cassert>

namespace lightnas::predictors {

std::pair<MeasurementDataset, MeasurementDataset> MeasurementDataset::split(
    double first_fraction, util::Rng& rng) const {
  assert(first_fraction > 0.0 && first_fraction < 1.0);
  const auto n_first = static_cast<std::size_t>(
      first_fraction * static_cast<double>(size()));
  const std::vector<std::size_t> order = rng.permutation(size());

  MeasurementDataset first, second;
  for (std::size_t i = 0; i < order.size(); ++i) {
    MeasurementDataset& dst = (i < n_first) ? first : second;
    dst.architectures.push_back(architectures[order[i]]);
    dst.encodings.push_back(encodings[order[i]]);
    dst.targets.push_back(targets[order[i]]);
  }
  return {std::move(first), std::move(second)};
}

namespace {

/// Architecture whose layers favour `bias_op` with probability
/// `strength`, falling back to uniform otherwise.
space::Architecture biased_architecture(const space::SearchSpace& space,
                                        std::size_t bias_op,
                                        double strength, util::Rng& rng) {
  space::Architecture arch = space.random_architecture(rng);
  for (std::size_t l = 0; l < space.num_layers(); ++l) {
    if (space.layers()[l].searchable && rng.bernoulli(strength)) {
      arch.set_op(l, bias_op);
    }
  }
  return arch;
}

}  // namespace

MeasurementDataset build_measurement_dataset(
    const space::SearchSpace& space, hw::HardwareSimulator& device,
    std::size_t count, Metric metric, util::Rng& rng,
    double biased_fraction) {
  assert(biased_fraction >= 0.0 && biased_fraction <= 1.0);
  MeasurementDataset data;
  data.architectures.reserve(count);
  data.encodings.reserve(count);
  data.targets.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    space::Architecture arch =
        rng.bernoulli(biased_fraction)
            ? biased_architecture(
                  space,
                  static_cast<std::size_t>(
                      rng.uniform_index(space.num_ops())),
                  rng.uniform(0.3, 0.95), rng)
            : space.random_architecture(rng);
    const double value = (metric == Metric::kLatencyMs)
                             ? device.measure_latency_ms(space, arch)
                             : device.measure_energy_mj(space, arch);
    data.encodings.push_back(arch.encode_one_hot(space.num_ops()));
    data.architectures.push_back(std::move(arch));
    data.targets.push_back(value);
  }
  return data;
}

}  // namespace lightnas::predictors
