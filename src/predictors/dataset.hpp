#pragma once

#include <cstddef>
#include <vector>

#include "hw/simulator.hpp"
#include "space/architecture.hpp"
#include "space/search_space.hpp"
#include "util/rng.hpp"

namespace lightnas::predictors {

/// Which hardware metric a predictor is trained to estimate. The paper
/// demonstrates latency (Sec 3.2) and energy (Sec 4.3); the predictor
/// machinery is metric-agnostic by design ("generalizable to other
/// hardware metrics").
enum class Metric { kLatencyMs, kEnergyMj };

/// (architecture, measurement) pairs with the architectures kept around
/// for diagnostics. Encodings are the flattened L*K one-hots of Eq (4).
struct MeasurementDataset {
  std::vector<space::Architecture> architectures;
  std::vector<std::vector<float>> encodings;
  std::vector<double> targets;

  std::size_t size() const { return targets.size(); }

  /// Seeded shuffle + split, e.g. 80/20 as in the paper.
  std::pair<MeasurementDataset, MeasurementDataset> split(
      double first_fraction, util::Rng& rng) const;
};

/// Sample `count` architectures and measure each once on the (noisy)
/// simulated device. This mirrors the paper's campaign of 10,000
/// on-device measurements.
///
/// `biased_fraction` of the samples are drawn from per-architecture
/// biased op distributions (each biased arch favours one random operator
/// with random strength) instead of uniformly. Pure uniform sampling
/// concentrates around the space's mean cost and leaves the tails — the
/// very fast and very slow architectures a constrained search targets —
/// out of distribution; stratified enrichment is standard practice in
/// predictor-based NAS campaigns.
MeasurementDataset build_measurement_dataset(
    const space::SearchSpace& space, hw::HardwareSimulator& device,
    std::size_t count, Metric metric, util::Rng& rng,
    double biased_fraction = 0.3);

}  // namespace lightnas::predictors
