#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "hw/simulator.hpp"
#include "space/architecture.hpp"
#include "space/search_space.hpp"
#include "util/rng.hpp"

namespace lightnas::predictors {

/// Which hardware metric a predictor is trained to estimate. The paper
/// demonstrates latency (Sec 3.2) and energy (Sec 4.3); the predictor
/// machinery is metric-agnostic by design ("generalizable to other
/// hardware metrics").
enum class Metric { kLatencyMs, kEnergyMj };

/// (architecture, measurement) pairs with the architectures kept around
/// for diagnostics. Encodings are the flattened L*K one-hots of Eq (4).
struct MeasurementDataset {
  std::vector<space::Architecture> architectures;
  std::vector<std::vector<float>> encodings;
  std::vector<double> targets;

  std::size_t size() const { return targets.size(); }

  /// Seeded shuffle + split, e.g. 80/20 as in the paper.
  std::pair<MeasurementDataset, MeasurementDataset> split(
      double first_fraction, util::Rng& rng) const;
};

/// Sample `count` architectures and measure each once on the (noisy)
/// simulated device. This mirrors the paper's campaign of 10,000
/// on-device measurements.
///
/// `biased_fraction` of the samples are drawn from per-architecture
/// biased op distributions (each biased arch favours one random operator
/// with random strength) instead of uniformly. Pure uniform sampling
/// concentrates around the space's mean cost and leaves the tails — the
/// very fast and very slow architectures a constrained search targets —
/// out of distribution; stratified enrichment is standard practice in
/// predictor-based NAS campaigns.
MeasurementDataset build_measurement_dataset(
    const space::SearchSpace& space, hw::HardwareSimulator& device,
    std::size_t count, Metric metric, util::Rng& rng,
    double biased_fraction = 0.3);

/// Per-sample robustness policy for a campaign against a faulty device.
struct RobustCampaignConfig {
  /// Target number of good repeats per architecture; the sample's value
  /// is the median of the surviving repeats.
  std::size_t repeats = 5;
  /// Extra attempts allowed per sample after failures/timeouts before
  /// the sample is dropped.
  std::size_t max_retries = 4;
  /// Simulated per-attempt cost accounting: a retry backs off
  /// backoff_base_s * 2^k seconds, capped at backoff_cap_s; a hung
  /// measurement burns timeout_s. Only the report's simulated wall-clock
  /// uses these — nothing actually sleeps.
  double backoff_base_s = 0.5;
  double backoff_cap_s = 8.0;
  double timeout_s = 30.0;
  double measurement_s = 0.2;
  /// Repeats farther than this many (scaled) MADs from the median are
  /// rejected as outliers. 3.5 is the standard robust-z cutoff.
  double mad_threshold = 3.5;
  /// Minimum surviving repeats for the sample to be kept.
  std::size_t min_good_repeats = 3;
  /// Recalibrate the device (reset drift) every N samples; 0 disables.
  std::size_t recalibrate_every = 250;
};

/// What happened during a (robust) campaign — the numbers a production
/// run reports next to the dataset artifact.
struct CampaignReport {
  std::size_t requested_samples = 0;
  std::size_t kept_samples = 0;
  std::size_t dropped_samples = 0;   ///< retry budget exhausted
  std::size_t attempts = 0;          ///< every measurement attempt
  std::size_t retries = 0;           ///< attempts beyond the first per repeat
  std::size_t transient_failures = 0;
  std::size_t timeouts = 0;
  std::size_t rejected_outliers = 0; ///< repeats discarded by MAD rejection
  double simulated_wall_clock_s = 0.0;

  /// Fraction of attempts that produced no value.
  double attempt_failure_rate() const;
  std::string to_string() const;
};

/// Fault-tolerant variant of `build_measurement_dataset`: each sampled
/// architecture is measured `config.repeats` times through the device's
/// fault-aware API with per-attempt retry + capped exponential backoff,
/// the surviving repeats are MAD-filtered, and the sample's target is
/// their median. Samples whose retry budget is exhausted are dropped
/// (never silently recorded as NaN/garbage). `report`, when non-null,
/// receives the campaign telemetry.
MeasurementDataset build_robust_measurement_dataset(
    const space::SearchSpace& space, hw::HardwareSimulator& device,
    std::size_t count, Metric metric, util::Rng& rng,
    const RobustCampaignConfig& config = {},
    CampaignReport* report = nullptr, double biased_fraction = 0.3);

}  // namespace lightnas::predictors
