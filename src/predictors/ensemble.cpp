#include "predictors/ensemble.hpp"

#include <cassert>
#include <cmath>

#include "nn/ops.hpp"

namespace lightnas::predictors {

EnsemblePredictor::EnsemblePredictor(std::size_t num_layers,
                                     std::size_t num_ops,
                                     std::size_t members, std::string unit)
    : unit_(std::move(unit)) {
  assert(members >= 1);
  members_.reserve(members);
  for (std::size_t m = 0; m < members; ++m) {
    members_.push_back(std::make_unique<MlpPredictor>(
        num_layers, num_ops, /*seed=*/1000 + 37 * m, unit_));
  }
}

double EnsemblePredictor::train(const MeasurementDataset& data,
                                const MlpTrainConfig& config) {
  double total = 0.0;
  for (std::size_t m = 0; m < members_.size(); ++m) {
    MlpTrainConfig member_config = config;
    member_config.seed = config.seed + 101 * m;  // distinct batch orders
    total += members_[m]->train(data, member_config);
  }
  return total / static_cast<double>(members_.size());
}

double EnsemblePredictor::predict(const space::Architecture& arch) const {
  double total = 0.0;
  for (const auto& member : members_) total += member->predict(arch);
  return total / static_cast<double>(members_.size());
}

nn::VarPtr EnsemblePredictor::forward_var(const nn::VarPtr& encoding) const {
  nn::VarPtr total;
  for (const auto& member : members_) {
    const nn::VarPtr out = member->forward_var(encoding);
    total = total ? nn::ops::add(total, out) : out;
  }
  return nn::ops::scale(total, 1.0 / static_cast<double>(members_.size()));
}

double EnsemblePredictor::uncertainty(const space::Architecture& arch) const {
  const double mean = predict(arch);
  double var = 0.0;
  for (const auto& member : members_) {
    const double d = member->predict(arch) - mean;
    var += d * d;
  }
  return std::sqrt(var / static_cast<double>(members_.size()));
}

PredictorReport EnsemblePredictor::evaluate(
    const MeasurementDataset& data) const {
  std::vector<double> predicted;
  predicted.reserve(data.size());
  for (const space::Architecture& arch : data.architectures) {
    predicted.push_back(predict(arch));
  }
  return evaluate_predictions(predicted, data.targets);
}

}  // namespace lightnas::predictors
