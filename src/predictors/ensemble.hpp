#pragma once

#include <memory>
#include <vector>

#include "predictors/mlp_predictor.hpp"

namespace lightnas::predictors {

/// Deep ensemble of MLP predictors: the mean prediction is typically
/// more accurate than any single member, and the member disagreement is
/// a usable uncertainty estimate — valuable when the search wanders into
/// sparsely-measured corners of the space (exactly where a constrained
/// search ends up; see the tail-enrichment note in dataset.hpp).
class EnsemblePredictor : public HardwarePredictor {
 public:
  /// Train `members` MLPs on bootstrap-style shuffles of `data` (each
  /// member gets a different init seed and batch order).
  EnsemblePredictor(std::size_t num_layers, std::size_t num_ops,
                    std::size_t members, std::string unit = "ms");

  /// Train every member; returns the mean of the members' final MSEs.
  double train(const MeasurementDataset& data, const MlpTrainConfig& config);

  double predict(const space::Architecture& arch) const override;
  nn::VarPtr forward_var(const nn::VarPtr& encoding) const override;
  std::string unit() const override { return unit_; }

  /// Standard deviation of the member predictions (epistemic proxy).
  double uncertainty(const space::Architecture& arch) const;

  std::size_t size() const { return members_.size(); }
  const MlpPredictor& member(std::size_t i) const { return *members_[i]; }

  PredictorReport evaluate(const MeasurementDataset& data) const;

 private:
  std::string unit_;
  std::vector<std::unique_ptr<MlpPredictor>> members_;
};

}  // namespace lightnas::predictors
