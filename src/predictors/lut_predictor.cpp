#include "predictors/lut_predictor.hpp"

#include <cassert>

#include "nn/ops.hpp"

namespace lightnas::predictors {

LutPredictor::LutPredictor(const space::SearchSpace& space,
                           hw::HardwareSimulator& device)
    : num_layers_(space.num_layers()), num_ops_(space.num_ops()) {
  entries_.resize(num_layers_ * num_ops_, 0.0);
  for (std::size_t l = 0; l < num_layers_; ++l) {
    for (std::size_t k = 0; k < num_ops_; ++k) {
      entries_[l * num_ops_ + k] = device.measure_isolated_op_ms(
          space.layers()[l], space.ops().op(k));
    }
  }
}

double LutPredictor::entry(std::size_t layer, std::size_t op) const {
  assert(layer < num_layers_ && op < num_ops_);
  return entries_[layer * num_ops_ + op];
}

double LutPredictor::predict(const space::Architecture& arch) const {
  assert(arch.num_layers() == num_layers_);
  double total = 0.0;
  for (std::size_t l = 0; l < num_layers_; ++l) {
    total += entry(l, arch.op_at(l));
  }
  return total;
}

double LutPredictor::predict_encoding(
    const std::vector<float>& encoding) const {
  assert(encoding.size() == entries_.size());
  double total = 0.0;
  for (std::size_t i = 0; i < encoding.size(); ++i) {
    total += static_cast<double>(encoding[i]) * entries_[i];
  }
  return total;
}

nn::VarPtr LutPredictor::forward_var(const nn::VarPtr& encoding) const {
  assert(encoding->value.rows() == 1);
  assert(encoding->value.cols() == entries_.size());
  nn::Tensor weights(entries_.size(), 1);
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    weights[i] = static_cast<float>(entries_[i]);
  }
  return nn::ops::matmul(encoding, nn::make_const(std::move(weights)));
}

PredictorReport LutPredictor::evaluate(const MeasurementDataset& data) const {
  std::vector<double> predicted;
  predicted.reserve(data.size());
  for (const std::vector<float>& enc : data.encodings) {
    predicted.push_back(predict_encoding(enc));
  }
  return evaluate_predictions(predicted, data.targets);
}

}  // namespace lightnas::predictors
