#pragma once

#include <vector>

#include "hw/simulator.hpp"
#include "nn/autograd.hpp"
#include "predictors/metrics.hpp"
#include "predictors/dataset.hpp"
#include "predictors/predictor.hpp"
#include "space/architecture.hpp"
#include "space/search_space.hpp"

namespace lightnas::predictors {

/// Latency lookup table (LUT), the predictor used by FBNet/ProxylessNAS/
/// OFA-style works (paper references [4, 5, 18]): each (layer, operator)
/// pair is profiled *in isolation* on the device and the network latency
/// is predicted as the sum of its entries.
///
/// Because isolated measurements pay per-measurement sync overheads and
/// miss inter-layer cache/pipelining effects, the LUT shows a consistent
/// positive bias plus residual error even after debiasing — the paper's
/// Fig 5 (right). The class also exposes a differentiable form: the LUT
/// prediction is a linear function of the one-hot encoding, so its
/// gradient is simply the entry matrix.
class LutPredictor : public HardwarePredictor {
 public:
  /// Profile every (layer, op) pair once on the simulated device.
  LutPredictor(const space::SearchSpace& space,
               hw::HardwareSimulator& device);

  double entry(std::size_t layer, std::size_t op) const;

  double predict(const space::Architecture& arch) const override;
  double predict_encoding(const std::vector<float>& encoding) const;

  /// Differentiable prediction: dot(encoding, entries) as a 1x1 Var.
  nn::VarPtr forward_var(const nn::VarPtr& encoding) const override;

  std::string unit() const override { return "ms"; }

  PredictorReport evaluate(const MeasurementDataset& data) const;

  std::size_t num_layers() const { return num_layers_; }
  std::size_t num_ops() const { return num_ops_; }

 private:
  std::size_t num_layers_;
  std::size_t num_ops_;
  std::vector<double> entries_;  // row-major L x K
};

}  // namespace lightnas::predictors
