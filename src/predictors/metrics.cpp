#include "predictors/metrics.hpp"

#include <cassert>
#include <sstream>

#include "util/stats.hpp"

namespace lightnas::predictors {

std::string PredictorReport::to_string(const std::string& unit) const {
  std::ostringstream oss;
  oss.precision(4);
  oss << "RMSE=" << rmse << unit << " MAE=" << mae << unit
      << " bias=" << bias << unit << " debiased-RMSE=" << debiased_rmse
      << unit << " pearson=" << pearson << " kendall=" << kendall;
  return oss.str();
}

PredictorReport evaluate_predictions(const std::vector<double>& predicted,
                                     const std::vector<double>& truth) {
  assert(predicted.size() == truth.size());
  assert(predicted.size() >= 2);
  PredictorReport report;
  report.rmse = util::rmse(predicted, truth);
  report.mae = util::mae(predicted, truth);
  report.bias = util::mean_bias(predicted, truth);
  std::vector<double> debiased = predicted;
  for (double& p : debiased) p -= report.bias;
  report.debiased_rmse = util::rmse(debiased, truth);
  report.pearson = util::pearson(predicted, truth);
  report.kendall = util::kendall_tau(predicted, truth);
  return report;
}

}  // namespace lightnas::predictors
