#pragma once

#include <string>
#include <vector>

namespace lightnas::predictors {

/// Quality report for a hardware-metric predictor on a held-out set,
/// matching what Figures 5 and 8 of the paper visualize.
struct PredictorReport {
  double rmse = 0.0;
  double mae = 0.0;
  /// Mean signed error; near zero for the MLP, ~+11.5 ms for the raw LUT.
  double bias = 0.0;
  /// RMSE after removing the mean bias — the paper reports the LUT still
  /// has 0.41 ms residual RMSE "even though the prediction gap is
  /// eliminated".
  double debiased_rmse = 0.0;
  double pearson = 0.0;
  double kendall = 0.0;

  std::string to_string(const std::string& unit) const;
};

PredictorReport evaluate_predictions(const std::vector<double>& predicted,
                                     const std::vector<double>& truth);

}  // namespace lightnas::predictors
