#include "predictors/mlp_predictor.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "nn/ops.hpp"
#include "nn/optim.hpp"
#include "nn/parallel.hpp"
#include "nn/pool.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace lightnas::predictors {

MlpPredictor::MlpPredictor(std::size_t num_layers, std::size_t num_ops,
                           std::uint64_t seed, std::string unit)
    : num_layers_(num_layers), num_ops_(num_ops), unit_(std::move(unit)) {
  util::Rng rng(seed);
  // The paper's predictor: three fully connected layers, 128-64-1.
  mlp_ = std::make_unique<nn::Mlp>(
      std::vector<std::size_t>{input_dim(), 128, 64, 1}, rng,
      "latency_mlp");
}

double MlpPredictor::train(const MeasurementDataset& data,
                           const MlpTrainConfig& config) {
  assert(data.size() >= 2);
  assert(config.batch_size > 0);

  // Route every kernel in the loop (forward, backward, bias/ReLU)
  // through the configured parallel context for the duration of train().
  const nn::ParallelScope parallel_scope(config.parallel);
  // Memory-reuse layer: per-epoch graphs recycle instead of reallocating
  // (pure buffer recycling — weights are bit-identical either way).
  const nn::PooledScope pool_scope(config.pool_tensors
                                       ? nn::PoolMode::kInherit
                                       : nn::PoolMode::kDisabled);

  target_mean_ = util::mean(data.targets);
  target_std_ = std::max(util::stddev(data.targets), 1e-6);

  util::Rng rng(config.seed);
  nn::Adam optimizer(mlp_->parameters(), config.learning_rate, 0.9, 0.999,
                     1e-8, config.weight_decay);
  const nn::CosineSchedule schedule(config.learning_rate,
                                    config.epochs + 1);

  double last_epoch_loss = 0.0;
  std::size_t step_epoch = 0;
  for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
    optimizer.set_lr(schedule.lr_at(step_epoch++));
    const std::vector<std::size_t> order = rng.permutation(data.size());
    double epoch_loss = 0.0;
    std::size_t batches = 0;

    for (std::size_t start = 0; start < order.size();
         start += config.batch_size) {
      const std::size_t end =
          std::min(start + config.batch_size, order.size());
      const std::size_t rows = end - start;

      // Fully overwritten below — pooled hits skip the zero-fill pass.
      nn::Tensor x = nn::Tensor::uninitialized(rows, input_dim());
      nn::Tensor y = nn::Tensor::uninitialized(rows, 1);
      for (std::size_t r = 0; r < rows; ++r) {
        const std::size_t idx = order[start + r];
        const std::vector<float>& enc = data.encodings[idx];
        assert(enc.size() == input_dim());
        std::copy(enc.begin(), enc.end(),
                  x.data().begin() +
                      static_cast<std::ptrdiff_t>(r * input_dim()));
        y.at(r, 0) = static_cast<float>(
            (data.targets[idx] - target_mean_) / target_std_);
      }

      optimizer.zero_grad();
      nn::VarPtr pred = mlp_->forward(nn::make_const(std::move(x)));
      nn::VarPtr loss = nn::ops::mse_loss(pred, nn::make_const(std::move(y)));
      nn::backward(loss);
      optimizer.step();

      epoch_loss += static_cast<double>(loss->value.item());
      ++batches;
    }
    last_epoch_loss = epoch_loss / static_cast<double>(batches);
    if (config.log_every != 0 && (epoch + 1) % config.log_every == 0) {
      util::log_info() << "mlp-predictor epoch " << (epoch + 1) << "/"
                       << config.epochs << " mse=" << last_epoch_loss;
    }
  }
  trained_ = true;
  return last_epoch_loss;
}

double MlpPredictor::predict(const space::Architecture& arch) const {
  return predict_encoding(arch.encode_one_hot(num_ops_));
}

double MlpPredictor::predict_encoding(
    const std::vector<float>& encoding) const {
  assert(trained_);
  assert(encoding.size() == input_dim());
  nn::Tensor x = nn::Tensor::uninitialized(1, input_dim());
  std::copy(encoding.begin(), encoding.end(), x.data().begin());
  const nn::VarPtr out = mlp_->forward(nn::make_const(std::move(x)));
  return target_mean_ +
         target_std_ * static_cast<double>(out->value.item());
}

std::vector<double> MlpPredictor::predict_batch(
    const std::vector<space::Architecture>& archs,
    const nn::ParallelContext& ctx) const {
  const nn::ParallelScope parallel_scope(&ctx);
  return predict_batch(archs);
}

std::vector<double> MlpPredictor::predict_batch(
    const std::vector<space::Architecture>& archs) const {
  assert(trained_);
  if (archs.empty()) return {};
  nn::Tensor x = nn::Tensor::uninitialized(archs.size(), input_dim());
  for (std::size_t r = 0; r < archs.size(); ++r) {
    const std::vector<float> enc = archs[r].encode_one_hot(num_ops_);
    assert(enc.size() == input_dim());
    std::copy(enc.begin(), enc.end(),
              x.data().begin() +
                  static_cast<std::ptrdiff_t>(r * input_dim()));
  }
  const nn::Tensor out = mlp_->forward_inference(x);
  std::vector<double> result(archs.size());
  for (std::size_t r = 0; r < archs.size(); ++r) {
    result[r] =
        target_mean_ + target_std_ * static_cast<double>(out.at(r, 0));
  }
  return result;
}

nn::VarPtr MlpPredictor::forward_var(const nn::VarPtr& encoding) const {
  assert(trained_);
  assert(encoding->value.rows() == 1);
  assert(encoding->value.cols() == input_dim());
  const nn::VarPtr normalized = mlp_->forward(encoding);
  return nn::ops::add_scalar(nn::ops::scale(normalized, target_std_),
                             target_mean_);
}

MlpPredictor::State MlpPredictor::export_state() const {
  State state;
  state.num_layers = num_layers_;
  state.num_ops = num_ops_;
  state.unit = unit_;
  state.target_mean = target_mean_;
  state.target_std = target_std_;
  state.trained = trained_;
  for (const nn::VarPtr& param : mlp_->parameters()) {
    // State stays a plain std::vector blob (it is a serialization
    // format, not kernel storage), so copy out of the aligned buffer.
    state.tensors.emplace_back(param->value.data().begin(),
                               param->value.data().end());
    state.shapes.emplace_back(param->value.rows(), param->value.cols());
  }
  return state;
}

MlpPredictor MlpPredictor::from_state(const State& state) {
  MlpPredictor predictor(state.num_layers, state.num_ops, /*seed=*/0,
                         state.unit);
  const std::vector<nn::VarPtr> params = predictor.mlp_->parameters();
  if (params.size() != state.tensors.size()) {
    throw std::runtime_error("predictor state: wrong tensor count");
  }
  // shapes is parallel to tensors; a blob with fewer shape entries than
  // tensors would otherwise read state.shapes[i] out of bounds below.
  if (state.shapes.size() != state.tensors.size()) {
    throw std::runtime_error(
        "predictor state: shape/tensor count mismatch");
  }
  for (std::size_t i = 0; i < params.size(); ++i) {
    if (params[i]->value.rows() != state.shapes[i].first ||
        params[i]->value.cols() != state.shapes[i].second ||
        params[i]->value.size() != state.tensors[i].size()) {
      throw std::runtime_error("predictor state: shape mismatch");
    }
    params[i]->value.data().assign(state.tensors[i].begin(),
                                   state.tensors[i].end());
  }
  predictor.target_mean_ = state.target_mean;
  predictor.target_std_ = state.target_std;
  predictor.trained_ = state.trained;
  return predictor;
}

PredictorReport MlpPredictor::evaluate(
    const MeasurementDataset& data) const {
  std::vector<double> predicted;
  predicted.reserve(data.size());
  for (const std::vector<float>& enc : data.encodings) {
    predicted.push_back(predict_encoding(enc));
  }
  return evaluate_predictions(predicted, data.targets);
}

}  // namespace lightnas::predictors
