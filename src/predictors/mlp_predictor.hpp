#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "nn/modules.hpp"
#include "predictors/dataset.hpp"
#include "predictors/metrics.hpp"
#include "predictors/predictor.hpp"

namespace lightnas::nn {
class ParallelContext;
}

namespace lightnas::predictors {

/// Training hyper-parameters for the MLP predictor.
struct MlpTrainConfig {
  std::size_t epochs = 120;
  std::size_t batch_size = 64;
  double learning_rate = 5e-3;
  double weight_decay = 1e-4;
  std::uint64_t seed = 7;
  /// Print progress every N epochs; 0 disables logging.
  std::size_t log_every = 0;
  /// Parallel-kernel context for the training loop's GEMMs; null uses
  /// ParallelContext::current() (serial unless the process configured a
  /// global pool). Trained weights are bit-identical either way.
  const nn::ParallelContext* parallel = nullptr;
  /// Recycle tensor buffers / autograd graphs through a nn::TensorPool
  /// for the duration of train() (inheriting a caller-installed pool).
  /// Trained weights are bit-identical with pooling on or off.
  bool pool_tensors = true;
};

/// The paper's hardware-metric predictor (Sec 3.2): a three-layer MLP
/// (128, 64, 1 neurons) over the flattened L*K one-hot architecture
/// encoding. Targets are standardized internally for stable optimization;
/// predictions are reported in the original unit (ms or mJ).
///
/// Crucially for Sec 3.4, the predictor is *differentiable with respect
/// to its input encoding*: `forward_var` splices the prediction into an
/// autograd graph so d(LAT)/d(P-bar) flows back into the architecture
/// parameters during search (Eq 12).
class MlpPredictor : public HardwarePredictor {
 public:
  /// `unit` labels what the predictor estimates ("ms", "mJ", ...).
  MlpPredictor(std::size_t num_layers, std::size_t num_ops,
               std::uint64_t seed = 7, std::string unit = "ms");

  std::size_t input_dim() const { return num_layers_ * num_ops_; }

  /// Train on measurement data; returns the final epoch's training MSE
  /// (in standardized units; diagnostics only).
  double train(const MeasurementDataset& data, const MlpTrainConfig& config);

  /// Point prediction in the target's unit.
  double predict(const space::Architecture& arch) const override;
  double predict_encoding(const std::vector<float>& encoding) const;

  /// True batched inference: stacks the B one-hot encodings into one
  /// B x (L*K) tensor and runs a single graph-free MLP forward instead
  /// of B sequential 1-row autograd forwards. Per-row results are
  /// bit-identical to `predict`. Thread-safe (read-only on the weights);
  /// this is the micro-batching service's hot path.
  std::vector<double> predict_batch(
      const std::vector<space::Architecture>& archs) const override;
  /// Same, with the batched forward's kernels dispatched on `ctx`
  /// instead of ParallelContext::current(). Bit-identical results.
  std::vector<double> predict_batch(
      const std::vector<space::Architecture>& archs,
      const nn::ParallelContext& ctx) const;

  /// Differentiable prediction: input is a 1 x (L*K) Var (typically the
  /// binarized P-bar with a straight-through estimator attached); output
  /// is a 1x1 Var in the target's unit.
  nn::VarPtr forward_var(const nn::VarPtr& encoding) const override;

  std::string unit() const override { return unit_; }

  /// Evaluate on a held-out set.
  PredictorReport evaluate(const MeasurementDataset& data) const;

  bool is_trained() const { return trained_; }
  std::size_t num_parameters() const { return mlp_->num_parameters(); }

  /// Serializable snapshot of a trained predictor (weights + target
  /// normalization). Used by io::save_predictor / io::load_predictor.
  struct State {
    std::size_t num_layers = 0;
    std::size_t num_ops = 0;
    std::string unit;
    double target_mean = 0.0;
    double target_std = 1.0;
    bool trained = false;
    /// Parameter tensors in nn::Mlp::parameters() order, with shapes.
    std::vector<std::vector<float>> tensors;
    std::vector<std::pair<std::size_t, std::size_t>> shapes;
  };

  State export_state() const;
  /// Reconstruct a predictor from a snapshot (shape-checked).
  static MlpPredictor from_state(const State& state);

 private:
  std::size_t num_layers_;
  std::size_t num_ops_;
  std::string unit_;
  std::unique_ptr<nn::Mlp> mlp_;
  double target_mean_ = 0.0;
  double target_std_ = 1.0;
  bool trained_ = false;
};

}  // namespace lightnas::predictors
