#include "predictors/oracle.hpp"

#include <algorithm>
#include <stdexcept>

#include "space/flops.hpp"

namespace lightnas::predictors {

SimulatorOracle::SimulatorOracle(const space::SearchSpace& space,
                                 hw::CostModel model, Metric metric)
    : space_(&space), model_(std::move(model)), metric_(metric) {}

double SimulatorOracle::predict(const space::Architecture& arch) const {
  return metric_ == Metric::kLatencyMs
             ? model_.network_latency_ms(*space_, arch)
             : model_.network_energy_mj(*space_, arch);
}

std::string SimulatorOracle::unit() const {
  return metric_ == Metric::kLatencyMs ? "ms" : "mJ";
}

FlopsProxyOracle::FlopsProxyOracle(const space::SearchSpace& space,
                                   std::string unit, double per_gmac,
                                   double offset)
    : space_(&space),
      unit_(std::move(unit)),
      per_gmac_(per_gmac),
      offset_(offset) {}

FlopsProxyOracle FlopsProxyOracle::calibrated(
    const space::SearchSpace& space, const CostOracle& reference,
    const std::vector<space::Architecture>& sample) {
  if (sample.empty()) {
    throw std::invalid_argument(
        "FlopsProxyOracle::calibrated: empty calibration sample");
  }
  const double n = static_cast<double>(sample.size());
  double sum_x = 0.0, sum_y = 0.0, sum_xx = 0.0, sum_xy = 0.0;
  for (const space::Architecture& arch : sample) {
    const double x = space::count_macs(space, arch) / 1e9;
    const double y = reference.predict(arch);
    sum_x += x;
    sum_y += y;
    sum_xx += x * x;
    sum_xy += x * y;
  }
  const double var = sum_xx - sum_x * sum_x / n;
  double slope = 0.0;
  if (var > 1e-12) {
    slope = std::max(0.0, (sum_xy - sum_x * sum_y / n) / var);
  }
  const double intercept = (sum_y - slope * sum_x) / n;
  return FlopsProxyOracle(space, reference.unit(), slope, intercept);
}

double FlopsProxyOracle::predict(const space::Architecture& arch) const {
  return offset_ + per_gmac_ * (space::count_macs(*space_, arch) / 1e9);
}

}  // namespace lightnas::predictors
