#include "predictors/oracle.hpp"

namespace lightnas::predictors {

SimulatorOracle::SimulatorOracle(const space::SearchSpace& space,
                                 hw::CostModel model, Metric metric)
    : space_(&space), model_(std::move(model)), metric_(metric) {}

double SimulatorOracle::predict(const space::Architecture& arch) const {
  return metric_ == Metric::kLatencyMs
             ? model_.network_latency_ms(*space_, arch)
             : model_.network_energy_mj(*space_, arch);
}

std::string SimulatorOracle::unit() const {
  return metric_ == Metric::kLatencyMs ? "ms" : "mJ";
}

}  // namespace lightnas::predictors
