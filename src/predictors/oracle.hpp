#pragma once

#include "hw/cost_model.hpp"
#include "predictors/dataset.hpp"
#include "predictors/predictor.hpp"
#include "space/search_space.hpp"

namespace lightnas::predictors {

/// Ground-truth (noise-free) cost oracle backed by the analytical device
/// model. Not differentiable — use it where the literature assumes exact
/// per-architecture measurements (evolutionary/RL baselines, calibration
/// tests), and the MLP/LUT predictors where the paper does.
class SimulatorOracle : public CostOracle {
 public:
  SimulatorOracle(const space::SearchSpace& space, hw::CostModel model,
                  Metric metric);

  double predict(const space::Architecture& arch) const override;
  std::string unit() const override;

  const hw::CostModel& model() const { return model_; }

 private:
  const space::SearchSpace* space_;
  hw::CostModel model_;
  Metric metric_;
};

}  // namespace lightnas::predictors
