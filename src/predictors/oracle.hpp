#pragma once

#include "hw/cost_model.hpp"
#include "predictors/dataset.hpp"
#include "predictors/predictor.hpp"
#include "space/search_space.hpp"

namespace lightnas::predictors {

/// Ground-truth (noise-free) cost oracle backed by the analytical device
/// model. Not differentiable — use it where the literature assumes exact
/// per-architecture measurements (evolutionary/RL baselines, calibration
/// tests), and the MLP/LUT predictors where the paper does.
class SimulatorOracle : public CostOracle {
 public:
  SimulatorOracle(const space::SearchSpace& space, hw::CostModel model,
                  Metric metric);

  double predict(const space::Architecture& arch) const override;
  std::string unit() const override;

  const hw::CostModel& model() const { return model_; }

 private:
  const space::SearchSpace* space_;
  hw::CostModel model_;
  Metric metric_;
};

/// Analytic FLOPs-proxy oracle: cost ~ per_gmac * GMACs + offset. Two
/// multiplies over the layer table — no MLP forward, no device model —
/// which makes it the degraded-mode answer of last resort for the
/// serving layer: when the real predictor is unavailable, a
/// compute-proportional estimate is far more useful to a search loop
/// than no answer at all (FLOPs is the proxy the paper's Fig. 2 argues
/// is *insufficient* for ranking, which is exactly why it is a
/// fallback tier and not the predictor).
class FlopsProxyOracle : public CostOracle {
 public:
  FlopsProxyOracle(const space::SearchSpace& space, std::string unit,
                   double per_gmac = 1.0, double offset = 0.0);

  /// Least-squares fit of `reference`'s predictions against GMACs over
  /// `sample` (slope clamped to >= 0; degenerate samples fall back to a
  /// constant at the mean). Throws std::invalid_argument on an empty
  /// sample.
  static FlopsProxyOracle calibrated(
      const space::SearchSpace& space, const CostOracle& reference,
      const std::vector<space::Architecture>& sample);

  double predict(const space::Architecture& arch) const override;
  std::string unit() const override { return unit_; }

  double per_gmac() const { return per_gmac_; }
  double offset() const { return offset_; }

 private:
  const space::SearchSpace* space_;
  std::string unit_;
  double per_gmac_;
  double offset_;
};

}  // namespace lightnas::predictors
