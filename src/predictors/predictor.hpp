#pragma once

#include <string>
#include <vector>

#include "nn/autograd.hpp"
#include "space/architecture.hpp"

namespace lightnas::predictors {

/// Point-prediction interface: everything a sample-based search (random,
/// evolutionary, RL) needs from a hardware-cost estimator.
class CostOracle {
 public:
  virtual ~CostOracle() = default;

  /// Point prediction for a concrete architecture, in `unit()`s.
  virtual double predict(const space::Architecture& arch) const = 0;

  /// Batched prediction: one value per architecture, in `unit()`s.
  /// The default loops over `predict`; implementations with a real
  /// batched path (MlpPredictor) override it. The serving layer calls
  /// this from multiple worker threads concurrently, so overrides must
  /// be const-thread-safe.
  virtual std::vector<double> predict_batch(
      const std::vector<space::Architecture>& archs) const;

  /// Human-readable unit, e.g. "ms" or "mJ".
  virtual std::string unit() const = 0;
};

/// Differentiable predictor interface. The LightNAS engine is written
/// against this interface, which is what makes the framework
/// "effortlessly pluggable into various scenarios" (Sec 3.5): swapping
/// latency for energy — or for any other differentiable cost — means
/// swapping the predictor instance, nothing else.
class HardwarePredictor : public CostOracle {
 public:
  /// Differentiable prediction over a 1 x (L*K) encoding Var.
  virtual nn::VarPtr forward_var(const nn::VarPtr& encoding) const = 0;
};

inline std::vector<double> CostOracle::predict_batch(
    const std::vector<space::Architecture>& archs) const {
  std::vector<double> out;
  out.reserve(archs.size());
  for (const space::Architecture& arch : archs) out.push_back(predict(arch));
  return out;
}

}  // namespace lightnas::predictors
