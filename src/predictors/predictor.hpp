#pragma once

#include <string>

#include "nn/autograd.hpp"
#include "space/architecture.hpp"

namespace lightnas::predictors {

/// Point-prediction interface: everything a sample-based search (random,
/// evolutionary, RL) needs from a hardware-cost estimator.
class CostOracle {
 public:
  virtual ~CostOracle() = default;

  /// Point prediction for a concrete architecture, in `unit()`s.
  virtual double predict(const space::Architecture& arch) const = 0;

  /// Human-readable unit, e.g. "ms" or "mJ".
  virtual std::string unit() const = 0;
};

/// Differentiable predictor interface. The LightNAS engine is written
/// against this interface, which is what makes the framework
/// "effortlessly pluggable into various scenarios" (Sec 3.5): swapping
/// latency for energy — or for any other differentiable cost — means
/// swapping the predictor instance, nothing else.
class HardwarePredictor : public CostOracle {
 public:
  /// Differentiable prediction over a 1 x (L*K) encoding Var.
  virtual nn::VarPtr forward_var(const nn::VarPtr& encoding) const = 0;
};

}  // namespace lightnas::predictors
