#include "serve/cache.hpp"

#include <algorithm>
#include <sstream>

namespace lightnas::serve {

std::string CacheStats::to_string() const {
  std::ostringstream oss;
  oss.precision(3);
  oss << "hits=" << hits << " misses=" << misses
      << " hit_rate=" << hit_rate() << " evictions=" << evictions
      << " entries=" << entries;
  if (expired > 0 || stale_serves > 0) {
    oss << " expired=" << expired << " stale_serves=" << stale_serves;
  }
  return oss.str();
}

ShardedLruCache::ShardedLruCache(std::size_t capacity,
                                 std::size_t num_shards,
                                 std::chrono::nanoseconds ttl)
    : ttl_(ttl), shards_(std::max<std::size_t>(num_shards, 1)) {
  const std::size_t shards = shards_.size();
  per_shard_capacity_ = std::max<std::size_t>(
      1, (capacity + shards - 1) / shards);
}

std::optional<double> ShardedLruCache::get(std::uint64_t key) {
  // One clock read per lookup, and only when aging is on at all.
  const auto now = ttl_.count() > 0 ? std::chrono::steady_clock::now()
                                    : std::chrono::steady_clock::time_point{};
  Shard& shard = shard_for(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    ++shard.misses;
    return std::nullopt;
  }
  if (expired(*it->second, now)) {
    // Refuse the value but keep the entry: the miss sends the request
    // through the oracle (revalidation), while get_stale() can still
    // serve the old value if the oracle turns out to be unavailable.
    ++shard.misses;
    ++shard.expired;
    return std::nullopt;
  }
  ++shard.hits;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  return it->second->value;
}

std::optional<double> ShardedLruCache::get_stale(std::uint64_t key) {
  Shard& shard = shard_for(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.index.find(key);
  if (it == shard.index.end()) return std::nullopt;
  ++shard.stale_serves;
  return it->second->value;
}

void ShardedLruCache::put(std::uint64_t key, double value) {
  const auto now = ttl_.count() > 0 ? std::chrono::steady_clock::now()
                                    : std::chrono::steady_clock::time_point{};
  Shard& shard = shard_for(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    it->second->value = value;
    it->second->stamp = now;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  if (shard.lru.size() >= per_shard_capacity_) {
    shard.index.erase(shard.lru.back().key);
    shard.lru.pop_back();
    ++shard.evictions;
  }
  shard.lru.push_front(Entry{key, value, now});
  shard.index.emplace(key, shard.lru.begin());
}

CacheStats ShardedLruCache::stats() const {
  CacheStats total;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total.hits += shard.hits;
    total.misses += shard.misses;
    total.evictions += shard.evictions;
    total.entries += shard.lru.size();
    total.expired += shard.expired;
    total.stale_serves += shard.stale_serves;
  }
  return total;
}

std::size_t ShardedLruCache::size() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.lru.size();
  }
  return total;
}

void ShardedLruCache::clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.lru.clear();
    shard.index.clear();
  }
}

}  // namespace lightnas::serve
