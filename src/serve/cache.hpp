#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace lightnas::serve {

/// Aggregated cache statistics (summed over shards at read time).
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t entries = 0;

  double hit_rate() const {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / double(total);
  }
  std::string to_string() const;
};

/// Sharded LRU cache from a 64-bit architecture fingerprint to a
/// predicted cost.
///
/// Sharding is the concurrency strategy: each shard owns an independent
/// mutex + LRU list + hash map, and a key's shard is a fixed function of
/// its fingerprint, so two lookups contend only when they land on the
/// same shard (1/num_shards of the time under the fingerprint's uniform
/// mixing). Keys are the *values'* responsibility: Architecture
/// fingerprints are stable and collide with probability ~2^-64, which
/// the serving layer accepts (a collision would silently serve the
/// wrong cost — at 2^-64 per pair that is the same risk class as
/// memory corruption).
class ShardedLruCache {
 public:
  /// `capacity` is the total entry budget, split evenly across shards
  /// (rounded up per shard). `num_shards` is clamped to at least 1.
  ShardedLruCache(std::size_t capacity, std::size_t num_shards = 16);

  /// Lookup; refreshes the entry's LRU position on hit. Counts one hit
  /// or one miss.
  std::optional<double> get(std::uint64_t key);

  /// Insert or overwrite; the entry becomes most-recently-used. Evicts
  /// the shard's least-recently-used entry when the shard is full.
  void put(std::uint64_t key, double value);

  CacheStats stats() const;
  std::size_t size() const;
  std::size_t capacity() const { return per_shard_capacity_ * shards_.size(); }
  void clear();

 private:
  struct Shard {
    mutable std::mutex mu;
    /// Front = most recently used.
    std::list<std::pair<std::uint64_t, double>> lru;
    std::unordered_map<
        std::uint64_t,
        std::list<std::pair<std::uint64_t, double>>::iterator>
        index;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
  };

  Shard& shard_for(std::uint64_t key) {
    // The fingerprint's low bits feed the hash map inside the shard, so
    // pick the shard from the high bits to keep the two independent.
    return shards_[(key >> 48) % shards_.size()];
  }

  std::size_t per_shard_capacity_;
  std::vector<Shard> shards_;
};

}  // namespace lightnas::serve
