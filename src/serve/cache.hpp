#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace lightnas::serve {

/// Aggregated cache statistics (summed over shards at read time).
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t entries = 0;
  /// Fresh lookups that found an entry but refused it because it had
  /// aged past the TTL (a subset of `misses`).
  std::uint64_t expired = 0;
  /// Degraded-mode lookups answered from an entry regardless of age
  /// (stale-while-revalidate tier; not counted in hits/misses).
  std::uint64_t stale_serves = 0;

  double hit_rate() const {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / double(total);
  }
  std::string to_string() const;
};

/// Sharded LRU cache from a 64-bit architecture fingerprint to a
/// predicted cost.
///
/// Sharding is the concurrency strategy: each shard owns an independent
/// mutex + LRU list + hash map, and a key's shard is a fixed function of
/// its fingerprint, so two lookups contend only when they land on the
/// same shard (1/num_shards of the time under the fingerprint's uniform
/// mixing). Keys are the *values'* responsibility: Architecture
/// fingerprints are stable and collide with probability ~2^-64, which
/// the serving layer accepts (a collision would silently serve the
/// wrong cost — at 2^-64 per pair that is the same risk class as
/// memory corruption).
///
/// Entries optionally age: with a finite TTL, get() treats an entry
/// older than the TTL as a miss (so the next worker batch revalidates
/// it through the oracle) but keeps it resident, and get_stale() will
/// still serve it — the stale-while-revalidate tier the service's
/// degraded mode answers from when the backend is unavailable. The
/// default TTL of zero means entries never expire, which preserves the
/// pre-resilience behavior exactly.
class ShardedLruCache {
 public:
  /// `capacity` is the total entry budget, split evenly across shards
  /// (rounded up per shard). `num_shards` is clamped to at least 1.
  /// `ttl` of zero disables aging.
  ShardedLruCache(std::size_t capacity, std::size_t num_shards = 16,
                  std::chrono::nanoseconds ttl = std::chrono::nanoseconds(0));

  /// Fresh lookup; refreshes the entry's LRU position on hit. Counts
  /// one hit or one miss. An entry past the TTL counts a miss (plus
  /// `expired`) and stays resident for get_stale().
  std::optional<double> get(std::uint64_t key);

  /// Degraded-mode lookup: serves the entry regardless of age, without
  /// touching hit/miss accounting or LRU order. Counts `stale_serves`
  /// on success.
  std::optional<double> get_stale(std::uint64_t key);

  /// Insert or overwrite; the entry becomes most-recently-used and its
  /// age resets. Evicts the shard's least-recently-used entry when the
  /// shard is full.
  void put(std::uint64_t key, double value);

  CacheStats stats() const;
  std::size_t size() const;
  std::size_t capacity() const { return per_shard_capacity_ * shards_.size(); }
  std::chrono::nanoseconds ttl() const { return ttl_; }
  void clear();

 private:
  struct Entry {
    std::uint64_t key = 0;
    double value = 0.0;
    std::chrono::steady_clock::time_point stamp{};
  };

  struct Shard {
    mutable std::mutex mu;
    /// Front = most recently used.
    std::list<Entry> lru;
    std::unordered_map<std::uint64_t, std::list<Entry>::iterator> index;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t expired = 0;
    std::uint64_t stale_serves = 0;
  };

  Shard& shard_for(std::uint64_t key) {
    // The fingerprint's low bits feed the hash map inside the shard, so
    // pick the shard from the high bits to keep the two independent.
    return shards_[(key >> 48) % shards_.size()];
  }

  bool expired(const Entry& entry,
               std::chrono::steady_clock::time_point now) const {
    return ttl_.count() > 0 && now - entry.stamp > ttl_;
  }

  std::size_t per_shard_capacity_;
  std::chrono::nanoseconds ttl_;
  std::vector<Shard> shards_;
};

}  // namespace lightnas::serve
