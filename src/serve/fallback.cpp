#include "serve/fallback.hpp"

#include <sstream>

namespace lightnas::serve {

std::string FallbackStats::to_string() const {
  std::ostringstream oss;
  oss << "stale=" << stale << " proxy=" << proxy
      << " unanswered=" << unanswered;
  return oss.str();
}

FallbackChain::FallbackChain(ShardedLruCache* stale_cache,
                             const predictors::CostOracle* proxy)
    : stale_cache_(stale_cache), proxy_(proxy) {}

std::optional<FallbackChain::Answer> FallbackChain::answer(
    std::uint64_t key, const space::Architecture& arch) const {
  if (stale_cache_ != nullptr) {
    if (const std::optional<double> stale = stale_cache_->get_stale(key)) {
      stale_.add();
      return Answer{*stale, FallbackSource::kStaleCache};
    }
  }
  if (proxy_ != nullptr) {
    try {
      const double value = proxy_->predict(arch);
      proxy_answers_.add();
      return Answer{value, FallbackSource::kProxyOracle};
    } catch (...) {
      // A fallback tier must never take the service down with it; a
      // throwing proxy simply falls through to the typed error.
    }
  }
  unanswered_.add();
  return std::nullopt;
}

FallbackStats FallbackChain::stats() const {
  FallbackStats stats;
  stats.stale = stale_.value();
  stats.proxy = proxy_answers_.value();
  stats.unanswered = unanswered_.value();
  return stats;
}

}  // namespace lightnas::serve
