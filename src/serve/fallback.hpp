#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "predictors/predictor.hpp"
#include "serve/cache.hpp"
#include "space/architecture.hpp"
#include "util/metrics.hpp"

namespace lightnas::serve {

/// Where a degraded answer came from.
enum class FallbackSource { kStaleCache, kProxyOracle };

struct FallbackStats {
  std::uint64_t stale = 0;
  std::uint64_t proxy = 0;
  std::uint64_t unanswered = 0;

  std::string to_string() const;
};

/// Degraded-mode answer chain for the prediction service: when the
/// primary oracle is unavailable (circuit open, oracle threw, deadline
/// nearly spent), try in order
///   1. a stale cache entry for the exact architecture (yesterday's
///      answer for the right question), then
///   2. a cheap analytic proxy oracle (today's answer to a simpler
///      question — typically predictors::FlopsProxyOracle),
/// and report which tier answered so degraded traffic is observable.
/// Both tiers are optional; with neither configured every call falls
/// through to "unanswered" and the service delivers a typed error.
class FallbackChain {
 public:
  /// Non-owning: both may be null, and both must outlive the chain.
  FallbackChain(ShardedLruCache* stale_cache,
                const predictors::CostOracle* proxy);

  struct Answer {
    double value = 0.0;
    FallbackSource source = FallbackSource::kStaleCache;
  };

  /// Thread-safe (the cache is sharded-locked, the proxy must be
  /// const-thread-safe like every CostOracle the service touches).
  std::optional<Answer> answer(std::uint64_t key,
                               const space::Architecture& arch) const;

  FallbackStats stats() const;
  bool has_tier() const { return stale_cache_ != nullptr || proxy_ != nullptr; }

 private:
  ShardedLruCache* stale_cache_;
  const predictors::CostOracle* proxy_;
  mutable util::Counter stale_;
  mutable util::Counter proxy_answers_;
  mutable util::Counter unanswered_;
};

}  // namespace lightnas::serve
