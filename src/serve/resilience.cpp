#include "serve/resilience.hpp"

#include <algorithm>
#include <thread>

namespace lightnas::serve {

const char* to_string(ServiceErrorCode code) {
  switch (code) {
    case ServiceErrorCode::kShutdown: return "shutdown";
    case ServiceErrorCode::kShed: return "shed";
    case ServiceErrorCode::kDeadline: return "deadline-exceeded";
    case ServiceErrorCode::kCircuitOpen: return "circuit-open";
    case ServiceErrorCode::kOracleFailure: return "oracle-failure";
  }
  return "unknown";
}

const char* to_string(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed: return "closed";
    case BreakerState::kOpen: return "open";
    case BreakerState::kHalfOpen: return "half-open";
  }
  return "unknown";
}

CircuitBreaker::CircuitBreaker(BreakerConfig config)
    : config_(config) {
  config_.window = std::max<std::size_t>(config_.window, 1);
  config_.min_samples =
      std::min(std::max<std::size_t>(config_.min_samples, 1), config_.window);
  config_.half_open_probes =
      std::max<std::size_t>(config_.half_open_probes, 1);
}

void CircuitBreaker::open_locked() {
  state_ = BreakerState::kOpen;
  opened_at_ = std::chrono::steady_clock::now();
  outcomes_.clear();
  window_failures_ = 0;
  half_open_in_flight_ = 0;
  half_open_successes_ = 0;
  ++opens_;
}

bool CircuitBreaker::allow() {
  std::lock_guard<std::mutex> lock(mu_);
  switch (state_) {
    case BreakerState::kClosed:
      return true;
    case BreakerState::kOpen: {
      const auto now = std::chrono::steady_clock::now();
      if (now - opened_at_ < config_.cooldown) return false;
      state_ = BreakerState::kHalfOpen;
      half_open_in_flight_ = 0;
      half_open_successes_ = 0;
      [[fallthrough]];
    }
    case BreakerState::kHalfOpen:
      if (half_open_in_flight_ >= config_.half_open_probes) return false;
      ++half_open_in_flight_;
      return true;
  }
  return true;
}

bool CircuitBreaker::should_shed() {
  std::lock_guard<std::mutex> lock(mu_);
  if (state_ != BreakerState::kOpen) return false;
  // Once the cooldown has elapsed the front door must let requests
  // through again so worker-side allow() can run its half-open probes.
  return std::chrono::steady_clock::now() - opened_at_ < config_.cooldown;
}

void CircuitBreaker::record_success() {
  std::lock_guard<std::mutex> lock(mu_);
  switch (state_) {
    case BreakerState::kClosed:
      outcomes_.push_back(false);
      if (outcomes_.size() > config_.window) {
        if (outcomes_.front()) --window_failures_;
        outcomes_.pop_front();
      }
      break;
    case BreakerState::kHalfOpen:
      if (half_open_in_flight_ > 0) --half_open_in_flight_;
      if (++half_open_successes_ >= config_.half_open_probes) {
        state_ = BreakerState::kClosed;
        outcomes_.clear();
        window_failures_ = 0;
      }
      break;
    case BreakerState::kOpen:
      // Straggler from a batch admitted before the trip; stale signal.
      break;
  }
}

void CircuitBreaker::record_failure() {
  std::lock_guard<std::mutex> lock(mu_);
  switch (state_) {
    case BreakerState::kClosed:
      outcomes_.push_back(true);
      ++window_failures_;
      if (outcomes_.size() > config_.window) {
        if (outcomes_.front()) --window_failures_;
        outcomes_.pop_front();
      }
      if (outcomes_.size() >= config_.min_samples &&
          static_cast<double>(window_failures_) /
                  static_cast<double>(outcomes_.size()) >=
              config_.failure_threshold) {
        open_locked();
      }
      break;
    case BreakerState::kHalfOpen:
      open_locked();
      break;
    case BreakerState::kOpen:
      break;
  }
}

BreakerState CircuitBreaker::state() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_;
}

std::uint64_t CircuitBreaker::opens() const {
  std::lock_guard<std::mutex> lock(mu_);
  return opens_;
}

FaultyOracle::FaultyOracle(const predictors::CostOracle& inner,
                           OracleFaultConfig config)
    : inner_(inner), config_(config), rng_(config.seed) {}

double FaultyOracle::roll_faults(bool& hang) const {
  std::lock_guard<std::mutex> lock(mu_);
  const hw::FaultSpec& spec = config_.spec;
  if (rng_.bernoulli(spec.transient_failure_prob)) {
    transients_.add();
    throw std::runtime_error("injected transient oracle failure");
  }
  hang = rng_.bernoulli(spec.hang_prob);
  if (hang) hangs_.add();
  double scale = 1.0;
  if (spec.drift_per_measurement > 0.0) {
    drift_state_ += rng_.normal(0.0, spec.drift_per_measurement);
    drift_state_ = std::clamp(drift_state_, 1.0 - spec.drift_max_frac,
                              1.0 + spec.drift_max_frac);
    scale *= drift_state_;
  }
  if (rng_.bernoulli(spec.outlier_prob)) {
    scale *= rng_.uniform(spec.outlier_scale_lo, spec.outlier_scale_hi);
  }
  return scale;
}

double FaultyOracle::predict(const space::Architecture& arch) const {
  if (!storm()) return inner_.predict(arch);
  bool hang = false;
  const double scale = roll_faults(hang);
  if (hang) std::this_thread::sleep_for(config_.hang_duration);
  return inner_.predict(arch) * scale;
}

std::vector<double> FaultyOracle::predict_batch(
    const std::vector<space::Architecture>& archs) const {
  if (!storm()) return inner_.predict_batch(archs);
  bool hang = false;
  const double scale = roll_faults(hang);
  if (hang) std::this_thread::sleep_for(config_.hang_duration);
  std::vector<double> values = inner_.predict_batch(archs);
  if (scale != 1.0) {
    for (double& value : values) value *= scale;
  }
  return values;
}

}  // namespace lightnas::serve
