#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "hw/simulator.hpp"
#include "predictors/predictor.hpp"
#include "util/metrics.hpp"
#include "util/rng.hpp"

namespace lightnas::serve {

/// Why a request resolved without a fresh prediction. Every failure the
/// service can hand a client is one of these — clients never see a bare
/// std::runtime_error from the serving layer, and never see a broken
/// promise.
enum class ServiceErrorCode {
  kShutdown,       ///< submitted to (or parked in) a stopping service
  kShed,           ///< dropped by the queue-overflow policy
  kDeadline,       ///< expired before a worker could answer it
  kCircuitOpen,    ///< breaker open and no fallback tier could answer
  kOracleFailure,  ///< backend threw and no fallback tier could answer
};

const char* to_string(ServiceErrorCode code);

/// Typed serving error, delivered through the request's promise (or
/// thrown from submit() for the shutdown case). Derives from
/// std::runtime_error so pre-resilience callers that caught that still
/// work; resilience-aware callers switch on code().
class ServiceError : public std::runtime_error {
 public:
  ServiceError(ServiceErrorCode code, const std::string& detail)
      : std::runtime_error(std::string(to_string(code)) + ": " + detail),
        code_(code) {}

  ServiceErrorCode code() const { return code_; }

 private:
  ServiceErrorCode code_;
};

enum class BreakerState { kClosed, kOpen, kHalfOpen };

const char* to_string(BreakerState state);

/// Rolling-window circuit breaker configuration. Disabled by default so
/// a default-constructed ServiceConfig behaves exactly like the
/// pre-resilience service.
struct BreakerConfig {
  bool enabled = false;
  /// Rolling window of recent oracle-batch outcomes examined in the
  /// closed state.
  std::size_t window = 32;
  /// Minimum outcomes in the window before the failure rate is trusted.
  std::size_t min_samples = 8;
  /// Open when (failures / window outcomes) >= this.
  double failure_threshold = 0.5;
  /// Open -> half-open after this long without traffic reaching the
  /// backend.
  std::chrono::milliseconds cooldown{250};
  /// Probe batches admitted in half-open; this many consecutive
  /// successes close the breaker, any failure reopens it.
  std::size_t half_open_probes = 3;
};

/// Closed -> open -> half-open circuit breaker around a failing backend.
///
/// Workers call allow() once per oracle batch and record the outcome;
/// the submit() front door calls should_shed() to fail fast while the
/// breaker is open. All transitions happen under one mutex — the
/// breaker is consulted per *batch*, not per request, so this is far
/// off the hot path.
class CircuitBreaker {
 public:
  explicit CircuitBreaker(BreakerConfig config);

  /// Worker-side admission. Transitions open -> half-open once the
  /// cooldown has elapsed; in half-open admits up to
  /// `half_open_probes` in-flight probe batches.
  bool allow();

  /// Front-door check: true while the breaker is open and cooling down
  /// (requests should be answered degraded without queueing). Never
  /// consumes a half-open probe slot.
  bool should_shed();

  void record_success();
  void record_failure();

  BreakerState state() const;
  std::uint64_t opens() const;

 private:
  void open_locked();

  BreakerConfig config_;
  mutable std::mutex mu_;
  BreakerState state_ = BreakerState::kClosed;
  std::deque<bool> outcomes_;  // true = failure (closed-state window)
  std::size_t window_failures_ = 0;
  std::chrono::steady_clock::time_point opened_at_{};
  std::size_t half_open_in_flight_ = 0;
  std::size_t half_open_successes_ = 0;
  std::uint64_t opens_ = 0;
};

/// Fault-injection knobs for FaultyOracle, reusing the hw::FaultSpec
/// vocabulary (transients, hangs, drift, outliers) so chaos tests of
/// the serving layer speak the same language as the measurement
/// campaigns.
struct OracleFaultConfig {
  hw::FaultSpec spec;
  /// How long an injected hang stalls the calling worker. Real hangs
  /// are unbounded; a finite stall keeps tests terminating while still
  /// tripping deadline/watchdog machinery.
  std::chrono::milliseconds hang_duration{50};
  std::uint64_t seed = 0x5eedf00d;
};

/// Chaos-testing decorator over any CostOracle: injects transient
/// failures (throws), hangs (bounded stalls), calibration drift and
/// outlier scaling into predict()/predict_batch(), gated by an atomic
/// storm switch. With the storm off the decorator is a bit-exact
/// passthrough. Thread-safe: fault dice and drift state live under one
/// mutex; the injected stall happens outside it.
class FaultyOracle : public predictors::CostOracle {
 public:
  FaultyOracle(const predictors::CostOracle& inner, OracleFaultConfig config);

  /// Toggle fault injection. Off (the default) = exact passthrough.
  void set_storm(bool active) {
    storm_.store(active, std::memory_order_relaxed);
  }
  bool storm() const { return storm_.load(std::memory_order_relaxed); }

  double predict(const space::Architecture& arch) const override;
  std::vector<double> predict_batch(
      const std::vector<space::Architecture>& archs) const override;
  std::string unit() const override { return inner_.unit(); }

  std::uint64_t transients_injected() const {
    return transients_.value();
  }
  std::uint64_t hangs_injected() const { return hangs_.value(); }

 private:
  /// Roll the per-call fault dice; returns the multiplicative value
  /// scale to apply (1.0 when clean) and whether to hang. Throws for a
  /// transient. One roll per batch: a batched forward is one
  /// measurement attempt, exactly like one hw measurement.
  double roll_faults(bool& hang) const;

  const predictors::CostOracle& inner_;
  OracleFaultConfig config_;
  std::atomic<bool> storm_{false};
  mutable std::mutex mu_;
  mutable util::Rng rng_;
  mutable double drift_state_ = 1.0;
  mutable util::Counter transients_;
  mutable util::Counter hangs_;
};

}  // namespace lightnas::serve
