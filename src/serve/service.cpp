#include "serve/service.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <utility>

namespace lightnas::serve {

std::string ServiceStats::to_string() const {
  std::ostringstream oss;
  oss.precision(4);
  oss << "completed=" << completed << " batches=" << batches
      << " mean_batch=" << batch_size.mean() << " cache{"
      << cache.to_string() << "} pool{" << pool.to_string()
      << "} latency_us{" << latency_us.to_string() << "}";
  return oss.str();
}

PredictionService::PredictionService(const predictors::CostOracle& oracle,
                                     ServiceConfig config)
    : oracle_(oracle),
      config_(config),
      cache_(std::max<std::size_t>(config.cache_capacity, 1),
             config.cache_shards),
      // 1 us .. 10 s covers everything from a cache hit to a cold
      // simulator query.
      latency_us_(util::Histogram::geometric(1.0, 1e7)),
      batch_size_(util::Histogram::linear(
          0.0, static_cast<double>(std::max<std::size_t>(config.max_batch, 1)),
          std::max<std::size_t>(config.max_batch, 1))),
      queue_depth_(util::Histogram::linear(
          0.0,
          static_cast<double>(std::max<std::size_t>(config.queue_capacity, 1)),
          64)) {
  if (config_.num_workers == 0) config_.num_workers = 1;
  if (config_.max_batch == 0) config_.max_batch = 1;
  if (config_.queue_capacity == 0) config_.queue_capacity = 1;
  pool_start_ = nn::TensorPool::global_stats();
  workers_.reserve(config_.num_workers);
  for (std::size_t i = 0; i < config_.num_workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

PredictionService::~PredictionService() { shutdown(); }

std::future<double> PredictionService::submit(
    const space::Architecture& arch) {
  Request request;
  request.arch = arch;
  request.key = arch.fingerprint();
  request.enqueued_at = std::chrono::steady_clock::now();
  std::future<double> future = request.promise.get_future();
  // Front-door cache hit: answer on the caller's thread without touching
  // the queue at all. Under Zipf-skewed traffic this is the common case,
  // and queue + wakeup synchronization (~100us) would otherwise dwarf
  // the lookup (~100ns). Only misses pay for micro-batching.
  if (config_.cache_capacity > 0) {
    if (const std::optional<double> hit = cache_.get(request.key)) {
      submitted_.add();
      fulfill(request, *hit);
      return future;
    }
  }
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_not_full_.wait(lock, [this] {
      return stopping_ || queue_.size() < config_.queue_capacity;
    });
    if (stopping_) {
      throw std::runtime_error("prediction service is shut down");
    }
    queue_.push_back(std::move(request));
  }
  queue_not_empty_.notify_one();
  submitted_.add();
  return future;
}

double PredictionService::predict(const space::Architecture& arch) {
  return submit(arch).get();
}

void PredictionService::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_ && workers_.empty()) return;
    stopping_ = true;
  }
  queue_not_empty_.notify_all();
  queue_not_full_.notify_all();
  for (std::thread& worker : workers_) worker.join();
  workers_.clear();
}

void PredictionService::fulfill(Request& request, double value) {
  const auto now = std::chrono::steady_clock::now();
  latency_us_.record(
      std::chrono::duration<double, std::micro>(now - request.enqueued_at)
          .count());
  // Count before waking the client: a caller that sees its future ready
  // must also see the completion reflected in stats().
  completed_.add();
  request.promise.set_value(value);
}

void PredictionService::worker_loop() {
  // Install the shared GEMM context for every batched forward this
  // worker runs (no-op when config_.parallel is null).
  const nn::ParallelScope parallel_scope(config_.parallel);
  // Per-worker tensor pool: batch inputs and forward activations are
  // created on this thread, so under steady traffic every buffer is
  // recycled locally with no cross-thread traffic at all.
  const nn::PooledScope pool_scope(config_.pool_tensors
                                       ? nn::PoolMode::kInherit
                                       : nn::PoolMode::kDisabled);
  const bool use_cache = config_.cache_capacity > 0;
  for (;;) {
    std::vector<Request> batch;
    {
      std::unique_lock<std::mutex> lock(mu_);
      queue_not_empty_.wait(
          lock, [this] { return stopping_ || !queue_.empty(); });
      // Drain-then-exit: on shutdown the queue must reach empty before
      // any worker leaves, so every submitted future gets a value.
      if (queue_.empty()) return;
      queue_depth_.record(static_cast<double>(queue_.size()));
      const std::size_t take =
          std::min(queue_.size(), config_.max_batch);
      batch.reserve(take);
      for (std::size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
    }
    queue_not_full_.notify_all();
    batch_size_.record(static_cast<double>(batch.size()));
    batches_.add();

    // Second-chance lookup: everything here missed at the front door,
    // but a concurrent batch may have computed it since. (Cold keys can
    // therefore count up to two misses — front door and here — which
    // understates the hit rate slightly; the bias vanishes under the
    // skewed traffic the cache exists for.)
    std::vector<std::size_t> pending;
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (use_cache) {
        if (const std::optional<double> hit = cache_.get(batch[i].key)) {
          fulfill(batch[i], *hit);
          continue;
        }
      }
      pending.push_back(i);
    }
    if (pending.empty()) continue;

    // Deduplicate within the batch: one forward row per unique
    // architecture, fanned back out to every requester of that key.
    std::unordered_map<std::uint64_t, std::size_t> unique_index;
    std::vector<space::Architecture> unique_archs;
    std::vector<std::size_t> row_of(pending.size());
    for (std::size_t p = 0; p < pending.size(); ++p) {
      const Request& request = batch[pending[p]];
      const auto [it, inserted] =
          unique_index.emplace(request.key, unique_archs.size());
      if (inserted) unique_archs.push_back(request.arch);
      row_of[p] = it->second;
    }

    const std::vector<double> costs = oracle_.predict_batch(unique_archs);

    if (use_cache) {
      for (const auto& [key, row] : unique_index) {
        cache_.put(key, costs[row]);
      }
    }
    for (std::size_t p = 0; p < pending.size(); ++p) {
      fulfill(batch[pending[p]], costs[row_of[p]]);
    }
  }
}

ServiceStats PredictionService::stats() const {
  ServiceStats stats;
  stats.submitted = submitted_.value();
  stats.completed = completed_.value();
  stats.batches = batches_.value();
  stats.cache = cache_.stats();
  stats.pool = nn::TensorPool::global_stats() - pool_start_;
  stats.latency_us = latency_us_.snapshot();
  stats.batch_size = batch_size_.snapshot();
  stats.queue_depth = queue_depth_.snapshot();
  return stats;
}

}  // namespace lightnas::serve
