#include "serve/service.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <utility>

namespace lightnas::serve {

namespace {

constexpr auto kNoDeadline = std::chrono::steady_clock::time_point::max();

}  // namespace

const char* to_string(OverflowPolicy policy) {
  switch (policy) {
    case OverflowPolicy::kBlock: return "block";
    case OverflowPolicy::kShedNewest: return "shed-newest";
    case OverflowPolicy::kShedOldest: return "shed-oldest";
  }
  return "unknown";
}

void ServiceConfig::validate() const {
  if (num_workers == 0) {
    throw std::invalid_argument("ServiceConfig: num_workers must be >= 1");
  }
  if (max_batch == 0) {
    throw std::invalid_argument("ServiceConfig: max_batch must be >= 1");
  }
  if (queue_capacity == 0) {
    throw std::invalid_argument("ServiceConfig: queue_capacity must be >= 1");
  }
  if (cache_shards == 0) {
    throw std::invalid_argument("ServiceConfig: cache_shards must be >= 1");
  }
  if (overflow != OverflowPolicy::kBlock && default_deadline.count() <= 0) {
    throw std::invalid_argument(
        std::string("ServiceConfig: overflow policy '") + to_string(overflow) +
        "' requires a finite default_deadline (it bounds the shed wait)");
  }
  if (breaker.enabled) {
    if (breaker.window == 0) {
      throw std::invalid_argument("ServiceConfig: breaker.window must be >= 1");
    }
    if (breaker.failure_threshold <= 0.0 || breaker.failure_threshold > 1.0) {
      throw std::invalid_argument(
          "ServiceConfig: breaker.failure_threshold must be in (0, 1]");
    }
    if (breaker.cooldown.count() <= 0) {
      throw std::invalid_argument(
          "ServiceConfig: breaker.cooldown must be positive");
    }
    if (breaker.half_open_probes == 0) {
      throw std::invalid_argument(
          "ServiceConfig: breaker.half_open_probes must be >= 1");
    }
  }
  if (worker_stall_timeout.count() > 0 && watchdog_interval.count() <= 0) {
    throw std::invalid_argument(
        "ServiceConfig: watchdog_interval must be positive when the "
        "worker watchdog is enabled");
  }
}

std::string ServiceStats::to_string() const {
  std::ostringstream oss;
  oss.precision(4);
  oss << "completed=" << completed << " failed=" << failed
      << " batches=" << batches << " mean_batch=" << batch_size.mean()
      << " cache{" << cache.to_string() << "} pool{" << pool.to_string()
      << "} latency_us{" << latency_us.to_string() << "}";
  if (shed > 0 || expired > 0 || degraded_stale > 0 || degraded_proxy > 0 ||
      oracle_failures > 0 || breaker_opens > 0 || worker_respawns > 0) {
    oss << " resilience{shed=" << shed << " expired=" << expired
        << " stale=" << degraded_stale << " proxy=" << degraded_proxy
        << " oracle_failures=" << oracle_failures
        << " breaker_opens=" << breaker_opens << " breaker="
        << serve::to_string(breaker_state)
        << " respawns=" << worker_respawns
        << " deadline_hit=" << deadline_hit_ratio() << "}";
  }
  return oss.str();
}

PredictionService::PredictionService(const predictors::CostOracle& oracle,
                                     ServiceConfig config)
    : oracle_(oracle),
      config_(config),
      cache_(std::max<std::size_t>(config.cache_capacity, 1),
             std::max<std::size_t>(config.cache_shards, 1),
             config.cache_ttl),
      breaker_(config.breaker.enabled
                   ? std::make_unique<CircuitBreaker>(config.breaker)
                   : nullptr),
      fallback_(config.fallback_stale && config.cache_capacity > 0 ? &cache_
                                                                   : nullptr,
                config.fallback_oracle),
      // 1 us .. 10 s covers everything from a cache hit to a cold
      // simulator query.
      latency_us_(util::Histogram::geometric(1.0, 1e7)),
      batch_size_(util::Histogram::linear(
          0.0, static_cast<double>(std::max<std::size_t>(config.max_batch, 1)),
          std::max<std::size_t>(config.max_batch, 1))),
      queue_depth_(util::Histogram::linear(
          0.0,
          static_cast<double>(std::max<std::size_t>(config.queue_capacity, 1)),
          64)) {
  config_.validate();
  pool_start_ = nn::TensorPool::global_stats();
  {
    std::lock_guard<std::mutex> lock(workers_mu_);
    workers_.reserve(config_.num_workers * 2);
    for (std::size_t i = 0; i < config_.num_workers; ++i) {
      spawn_worker_locked();
    }
  }
  if (config_.worker_stall_timeout.count() > 0) {
    watchdog_ = std::thread([this] { watchdog_loop(); });
  }
}

PredictionService::~PredictionService() { shutdown(); }

void PredictionService::spawn_worker_locked() {
  auto slot = std::make_unique<WorkerSlot>();
  slot->heartbeat.store(now_ticks(), std::memory_order_relaxed);
  WorkerSlot* raw = slot.get();
  workers_.push_back(std::move(slot));
  raw->thread = std::thread([this, raw] { worker_loop(raw); });
}

std::future<double> PredictionService::submit(
    const space::Architecture& arch) {
  return submit(arch, config_.default_deadline);
}

std::future<double> PredictionService::submit(
    const space::Architecture& arch, std::chrono::milliseconds deadline) {
  Request request;
  request.arch = arch;
  request.key = arch.fingerprint();
  request.enqueued_at = std::chrono::steady_clock::now();
  request.deadline = deadline.count() > 0 ? request.enqueued_at + deadline
                                          : kNoDeadline;
  std::future<double> future = request.promise.get_future();
  // Front-door cache hit: answer on the caller's thread without touching
  // the queue at all. Under Zipf-skewed traffic this is the common case,
  // and queue + wakeup synchronization (~100us) would otherwise dwarf
  // the lookup (~100ns). Only misses pay for micro-batching.
  if (config_.cache_capacity > 0) {
    if (const std::optional<double> hit = cache_.get(request.key)) {
      submitted_.add();
      fulfill(request, *hit);
      return future;
    }
  }
  // Fail fast while the breaker is open and cooling down: answer from
  // the fallback chain on the calling thread instead of queueing work
  // the backend cannot absorb.
  if (breaker_ && breaker_->should_shed()) {
    submitted_.add();
    answer_degraded(request, ServiceErrorCode::kCircuitOpen);
    return future;
  }
  {
    std::unique_lock<std::mutex> lock(mu_);
    const auto has_space = [this] {
      return stopping_ || queue_.size() < config_.queue_capacity;
    };
    switch (config_.overflow) {
      case OverflowPolicy::kBlock:
        queue_not_full_.wait(lock, has_space);
        break;
      case OverflowPolicy::kShedNewest: {
        // Bounded wait: the request's own deadline (validation
        // guarantees the config default is finite).
        const auto bound = request.deadline == kNoDeadline
                               ? request.enqueued_at + config_.default_deadline
                               : request.deadline;
        queue_not_full_.wait_until(lock, bound, has_space);
        break;
      }
      case OverflowPolicy::kShedOldest:
        break;  // never waits: evicts instead
    }
    if (stopping_) {
      throw ServiceError(ServiceErrorCode::kShutdown,
                         "prediction service is shut down");
    }
    if (queue_.size() >= config_.queue_capacity) {
      if (config_.overflow == OverflowPolicy::kShedNewest) {
        lock.unlock();
        submitted_.add();
        shed_.add();
        fulfill_error(request, ServiceErrorCode::kShed,
                      "queue stayed full past the request deadline");
        return future;
      }
      // kShedOldest. (kBlock cannot reach here: its wait only returns
      // with space or stopping.)
      Request oldest = std::move(queue_.front());
      queue_.pop_front();
      queue_.push_back(std::move(request));
      lock.unlock();
      submitted_.add();
      shed_.add();
      fulfill_error(oldest, ServiceErrorCode::kShed,
                    "evicted by a newer request (shed-oldest)");
      queue_not_empty_.notify_one();
      return future;
    }
    queue_.push_back(std::move(request));
  }
  queue_not_empty_.notify_one();
  submitted_.add();
  return future;
}

double PredictionService::predict(const space::Architecture& arch) {
  return submit(arch).get();
}

void PredictionService::shutdown() {
  std::lock_guard<std::mutex> shutdown_lock(shutdown_mu_);
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  queue_not_empty_.notify_all();
  queue_not_full_.notify_all();
  // Stop the watchdog before joining workers so no replacement can be
  // spawned mid-join.
  {
    std::lock_guard<std::mutex> lock(watchdog_mu_);
    watchdog_stop_ = true;
  }
  watchdog_cv_.notify_all();
  if (watchdog_.joinable()) watchdog_.join();
  std::vector<std::unique_ptr<WorkerSlot>> workers;
  {
    std::lock_guard<std::mutex> lock(workers_mu_);
    workers.swap(workers_);
  }
  for (const std::unique_ptr<WorkerSlot>& slot : workers) {
    if (slot->thread.joinable()) slot->thread.join();
  }
}

void PredictionService::fulfill(Request& request, double value) {
  const auto now = std::chrono::steady_clock::now();
  latency_us_.record(
      std::chrono::duration<double, std::micro>(now - request.enqueued_at)
          .count());
  if (request.deadline != kNoDeadline) {
    deadline_total_.add();
    if (now <= request.deadline) deadline_hits_.add();
  }
  // Count before waking the client: a caller that sees its future ready
  // must also see the completion reflected in stats().
  completed_.add();
  request.promise.set_value(value);
}

void PredictionService::fulfill_error(Request& request, ServiceErrorCode code,
                                      const std::string& detail) {
  if (request.deadline != kNoDeadline) deadline_total_.add();
  failed_.add();
  request.promise.set_exception(
      std::make_exception_ptr(ServiceError(code, detail)));
}

void PredictionService::answer_degraded(Request& request,
                                        ServiceErrorCode code) {
  if (fallback_.has_tier()) {
    if (const std::optional<FallbackChain::Answer> answer =
            fallback_.answer(request.key, request.arch)) {
      fulfill(request, answer->value);
      return;
    }
  }
  fulfill_error(request, code,
                "backend unavailable and no fallback tier answered");
}

void PredictionService::worker_loop(WorkerSlot* slot) {
  active_workers_.add(1);
  // Install the shared GEMM context for every batched forward this
  // worker runs (no-op when config_.parallel is null).
  const nn::ParallelScope parallel_scope(config_.parallel);
  // Per-worker tensor pool: batch inputs and forward activations are
  // created on this thread, so under steady traffic every buffer is
  // recycled locally with no cross-thread traffic at all.
  const nn::PooledScope pool_scope(config_.pool_tensors
                                       ? nn::PoolMode::kInherit
                                       : nn::PoolMode::kDisabled);
  const bool watchdogged = config_.worker_stall_timeout.count() > 0;
  for (;;) {
    slot->heartbeat.store(now_ticks(), std::memory_order_relaxed);
    if (slot->retired.load(std::memory_order_relaxed)) break;
    std::vector<Request> batch;
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (watchdogged) {
        // Bounded waits so the heartbeat advances while idle; only the
        // oracle call itself can make it go stale.
        while (!stopping_ && queue_.empty() &&
               !slot->retired.load(std::memory_order_relaxed)) {
          queue_not_empty_.wait_for(lock, config_.watchdog_interval);
          slot->heartbeat.store(now_ticks(), std::memory_order_relaxed);
        }
      } else {
        queue_not_empty_.wait(
            lock, [this] { return stopping_ || !queue_.empty(); });
      }
      if (slot->retired.load(std::memory_order_relaxed)) break;
      // Drain-then-exit: on shutdown the queue must reach empty before
      // any worker leaves, so every submitted future gets an outcome.
      if (queue_.empty()) break;
      queue_depth_.record(static_cast<double>(queue_.size()));
      const std::size_t take =
          std::min(queue_.size(), config_.max_batch);
      batch.reserve(take);
      for (std::size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
    }
    queue_not_full_.notify_all();
    process_batch(batch);
  }
  slot->done.store(true, std::memory_order_relaxed);
  active_workers_.add(-1);
}

void PredictionService::process_batch(std::vector<Request>& batch) {
  batch_size_.record(static_cast<double>(batch.size()));
  batches_.add();
  const bool use_cache = config_.cache_capacity > 0;
  const auto now = std::chrono::steady_clock::now();

  // First pass: drop requests that expired while queued (their clients
  // have likely moved on — spending a forward on them only delays the
  // live ones), then the second-chance cache lookup: everything here
  // missed at the front door, but a concurrent batch may have computed
  // it since. (Cold keys can therefore count up to two misses — front
  // door and here — which understates the hit rate slightly; the bias
  // vanishes under the skewed traffic the cache exists for.)
  std::vector<std::size_t> pending;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    Request& request = batch[i];
    if (request.deadline != kNoDeadline && now >= request.deadline) {
      expired_.add();
      fulfill_error(request, ServiceErrorCode::kDeadline,
                    "deadline expired while queued");
      continue;
    }
    if (use_cache) {
      if (const std::optional<double> hit = cache_.get(request.key)) {
        fulfill(request, *hit);
        continue;
      }
    }
    pending.push_back(i);
  }
  if (pending.empty()) return;

  // Deduplicate within the batch: one forward row per unique
  // architecture, fanned back out to every requester of that key.
  std::unordered_map<std::uint64_t, std::size_t> unique_index;
  std::vector<space::Architecture> unique_archs;
  std::vector<std::size_t> row_of(pending.size());
  for (std::size_t p = 0; p < pending.size(); ++p) {
    const Request& request = batch[pending[p]];
    const auto [it, inserted] =
        unique_index.emplace(request.key, unique_archs.size());
    if (inserted) unique_archs.push_back(request.arch);
    row_of[p] = it->second;
  }

  // Failure containment: the breaker decides whether the backend sees
  // this batch at all, and an oracle exception is an outcome for the
  // breaker — never a lost promise.
  bool use_oracle = breaker_ == nullptr || breaker_->allow();
  ServiceErrorCode degraded_code = ServiceErrorCode::kCircuitOpen;
  std::vector<double> costs;
  if (use_oracle) {
    try {
      costs = oracle_.predict_batch(unique_archs);
      if (costs.size() != unique_archs.size()) {
        throw std::runtime_error("predict_batch returned wrong row count");
      }
      if (breaker_) breaker_->record_success();
    } catch (...) {
      oracle_failures_.add();
      if (breaker_) breaker_->record_failure();
      use_oracle = false;
      degraded_code = ServiceErrorCode::kOracleFailure;
    }
  }
  if (!use_oracle) {
    for (std::size_t p : pending) {
      answer_degraded(batch[p], degraded_code);
    }
    return;
  }

  if (use_cache) {
    for (const auto& [key, row] : unique_index) {
      cache_.put(key, costs[row]);
    }
  }
  for (std::size_t p = 0; p < pending.size(); ++p) {
    fulfill(batch[pending[p]], costs[row_of[p]]);
  }
}

void PredictionService::watchdog_loop() {
  const std::int64_t stall_ticks =
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          config_.worker_stall_timeout)
          .count();
  std::unique_lock<std::mutex> lock(watchdog_mu_);
  for (;;) {
    watchdog_cv_.wait_for(lock, config_.watchdog_interval,
                          [this] { return watchdog_stop_; });
    if (watchdog_stop_) return;
    lock.unlock();
    bool stopping;
    {
      std::lock_guard<std::mutex> queue_lock(mu_);
      stopping = stopping_;
    }
    if (!stopping) {
      const std::int64_t now = now_ticks();
      std::lock_guard<std::mutex> workers_lock(workers_mu_);
      // Snapshot the count: replacements appended below must not be
      // scanned in the same pass.
      const std::size_t count = workers_.size();
      for (std::size_t i = 0; i < count; ++i) {
        WorkerSlot* slot = workers_[i].get();
        if (slot->retired.load(std::memory_order_relaxed)) continue;
        const bool vanished = slot->done.load(std::memory_order_relaxed);
        const bool stalled =
            now - slot->heartbeat.load(std::memory_order_relaxed) >
            stall_ticks;
        if (vanished || stalled) {
          // Retire the stuck worker (it will exit after its current
          // batch finally returns — injected hangs are finite) and
          // keep the pool at strength with a replacement.
          slot->retired.store(true, std::memory_order_relaxed);
          respawns_.add();
          spawn_worker_locked();
        }
      }
    }
    lock.lock();
  }
}

ServiceStats PredictionService::stats() const {
  ServiceStats stats;
  stats.submitted = submitted_.value();
  stats.completed = completed_.value();
  stats.failed = failed_.value();
  stats.batches = batches_.value();
  stats.cache = cache_.stats();
  stats.pool = nn::TensorPool::global_stats() - pool_start_;
  stats.latency_us = latency_us_.snapshot();
  stats.batch_size = batch_size_.snapshot();
  stats.queue_depth = queue_depth_.snapshot();
  stats.shed = shed_.value();
  stats.expired = expired_.value();
  const FallbackStats fallback = fallback_.stats();
  stats.degraded_stale = fallback.stale;
  stats.degraded_proxy = fallback.proxy;
  stats.oracle_failures = oracle_failures_.value();
  if (breaker_) {
    stats.breaker_opens = breaker_->opens();
    stats.breaker_state = breaker_->state();
  }
  stats.worker_respawns = respawns_.value();
  stats.active_workers = active_workers_.value();
  stats.deadline_total = deadline_total_.value();
  stats.deadline_hits = deadline_hits_.value();
  return stats;
}

}  // namespace lightnas::serve
