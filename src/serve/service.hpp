#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "nn/parallel.hpp"
#include "nn/pool.hpp"
#include "predictors/predictor.hpp"
#include "serve/cache.hpp"
#include "space/architecture.hpp"
#include "util/metrics.hpp"

namespace lightnas::serve {

/// Tuning knobs for the prediction service.
struct ServiceConfig {
  /// Micro-batching worker threads draining the request queue.
  std::size_t num_workers = 2;
  /// Upper bound on how many pending requests one worker coalesces into
  /// a single batched MLP forward.
  std::size_t max_batch = 32;
  /// Bounded request queue: submit() blocks when this many requests are
  /// pending (backpressure toward the clients).
  std::size_t queue_capacity = 1024;
  /// Total LRU entries across shards; 0 disables caching entirely.
  std::size_t cache_capacity = 1 << 16;
  std::size_t cache_shards = 16;
  /// Parallel-kernel context the workers install for their batched
  /// forwards (the GEMM pool is shared across workers; dispatches
  /// interleave safely). Null leaves the per-thread default — serial
  /// unless the process configured a global pool. Predictions are
  /// bit-identical either way.
  const nn::ParallelContext* parallel = nullptr;
  /// Give each worker a thread-local nn::TensorPool so steady-state
  /// batched forwards recycle their buffers instead of allocating.
  /// Predictions are bit-identical with pooling on or off.
  bool pool_tensors = true;
};

/// Point-in-time service telemetry. Latencies are end-to-end
/// (submit -> fulfilled promise) in microseconds.
struct ServiceStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t batches = 0;
  CacheStats cache;
  /// Tensor-pool activity since the service started (process-wide
  /// counter deltas; with pooling disabled all fields stay zero).
  nn::PoolStats pool;
  util::HistogramSnapshot latency_us;
  util::HistogramSnapshot batch_size;
  util::HistogramSnapshot queue_depth;

  std::string to_string() const;
};

/// Concurrent batched prediction service over any CostOracle.
///
/// Architecture-cost queries flow through a bounded MPMC queue into a
/// small pool of micro-batching workers. Each worker pops up to
/// `max_batch` pending requests at once, answers what it can from the
/// sharded LRU cache (keyed by Architecture::fingerprint), deduplicates
/// the remaining misses, and pushes them through one batched
/// `CostOracle::predict_batch` call — for the MLP predictor a single
/// B x (L*K) graph-free forward instead of B sequential 1-row graphs.
///
/// Threading model:
///   - any number of client threads may call submit()/predict();
///   - submit() blocks while the queue is at capacity (backpressure);
///   - workers never drop requests: shutdown() stops intake, drains the
///     queue completely, then joins the workers, so every future
///     obtained from submit() is eventually fulfilled;
///   - results are delivered through std::promise/std::future, making
///     per-request rendezvous lock-free for the client after wake-up.
class PredictionService {
 public:
  /// The oracle must outlive the service and be const-thread-safe (both
  /// built-in predictors are).
  explicit PredictionService(const predictors::CostOracle& oracle,
                             ServiceConfig config = {});
  ~PredictionService();

  PredictionService(const PredictionService&) = delete;
  PredictionService& operator=(const PredictionService&) = delete;

  /// Submit a query. Cache hits are answered immediately on the calling
  /// thread (the returned future is already ready); misses enqueue and
  /// block while the queue is full. Throws std::runtime_error once the
  /// service is shutting down.
  std::future<double> submit(const space::Architecture& arch);

  /// Synchronous convenience wrapper: submit + wait.
  double predict(const space::Architecture& arch);

  /// Stop accepting new requests, drain everything already queued, and
  /// join the workers. Idempotent; also run by the destructor.
  void shutdown();

  ServiceStats stats() const;
  const ServiceConfig& config() const { return config_; }
  std::string unit() const { return oracle_.unit(); }

 private:
  struct Request {
    space::Architecture arch;
    std::uint64_t key = 0;
    std::promise<double> promise;
    std::chrono::steady_clock::time_point enqueued_at;
  };

  void worker_loop();
  void fulfill(Request& request, double value);

  const predictors::CostOracle& oracle_;
  ServiceConfig config_;
  ShardedLruCache cache_;

  mutable std::mutex mu_;
  std::condition_variable queue_not_empty_;
  std::condition_variable queue_not_full_;
  std::deque<Request> queue_;
  bool stopping_ = false;

  /// Baseline for the pool-counter deltas reported by stats().
  nn::PoolStats pool_start_;

  util::Counter submitted_;
  util::Counter completed_;
  util::Counter batches_;
  util::Histogram latency_us_;
  util::Histogram batch_size_;
  util::Histogram queue_depth_;

  std::vector<std::thread> workers_;
};

}  // namespace lightnas::serve
