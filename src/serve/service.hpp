#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "nn/parallel.hpp"
#include "nn/pool.hpp"
#include "predictors/predictor.hpp"
#include "serve/cache.hpp"
#include "serve/fallback.hpp"
#include "serve/resilience.hpp"
#include "space/architecture.hpp"
#include "util/metrics.hpp"

namespace lightnas::serve {

/// What submit() does when the request queue is at capacity.
enum class OverflowPolicy {
  /// Park the caller until space frees up (backpressure; the
  /// pre-resilience behavior and the default).
  kBlock,
  /// Wait at most until the request's deadline, then resolve *this*
  /// request with a typed shed error. Bounds every client's worst case.
  kShedNewest,
  /// Evict the oldest queued request (resolving it with a typed shed
  /// error) and enqueue this one without waiting. Keeps the queue fresh
  /// under sustained overload — the oldest entry is the one most likely
  /// to miss its deadline anyway.
  kShedOldest,
};

const char* to_string(OverflowPolicy policy);

/// Tuning knobs for the prediction service. Every resilience feature
/// defaults off, so a default-constructed config reproduces the
/// pre-resilience service bit for bit.
struct ServiceConfig {
  /// Micro-batching worker threads draining the request queue.
  std::size_t num_workers = 2;
  /// Upper bound on how many pending requests one worker coalesces into
  /// a single batched MLP forward.
  std::size_t max_batch = 32;
  /// Bounded request queue: submit() blocks (or sheds, per `overflow`)
  /// when this many requests are pending.
  std::size_t queue_capacity = 1024;
  /// Total LRU entries across shards; 0 disables caching entirely.
  std::size_t cache_capacity = 1 << 16;
  std::size_t cache_shards = 16;
  /// Fresh-read TTL for cache entries; 0 = entries never expire.
  /// Expired entries are revalidated through the oracle on the next
  /// miss and remain servable by the degraded-mode stale tier.
  std::chrono::milliseconds cache_ttl{0};
  /// Parallel-kernel context the workers install for their batched
  /// forwards (the GEMM pool is shared across workers; dispatches
  /// interleave safely). Null leaves the per-thread default — serial
  /// unless the process configured a global pool. Predictions are
  /// bit-identical either way.
  const nn::ParallelContext* parallel = nullptr;
  /// Give each worker a thread-local nn::TensorPool so steady-state
  /// batched forwards recycle their buffers instead of allocating.
  /// Predictions are bit-identical with pooling on or off.
  bool pool_tensors = true;

  // --- overload resilience -------------------------------------------
  /// Deadline applied to submit(arch) (overridable per request via
  /// submit(arch, deadline)); 0 = no deadline. Workers drop requests
  /// that expire in the queue and resolve them with a typed error.
  std::chrono::milliseconds default_deadline{0};
  /// Queue-overflow policy. Shed policies require a finite
  /// default_deadline (it bounds the kShedNewest wait).
  OverflowPolicy overflow = OverflowPolicy::kBlock;
  /// Circuit breaker around CostOracle::predict_batch.
  BreakerConfig breaker;
  /// Serve stale cache entries when degraded (only observable with a
  /// finite cache_ttl — unexpired entries are served fresh anyway).
  bool fallback_stale = true;
  /// Optional analytic proxy tier for degraded answers (e.g. a
  /// calibrated predictors::FlopsProxyOracle). Non-owning; must be
  /// const-thread-safe and outlive the service. Null disables the tier.
  const predictors::CostOracle* fallback_oracle = nullptr;
  /// A worker whose heartbeat is older than this is presumed stuck in
  /// the oracle; the watchdog retires it and spawns a replacement.
  /// 0 disables the watchdog entirely.
  std::chrono::milliseconds worker_stall_timeout{0};
  /// How often the watchdog scans worker heartbeats.
  std::chrono::milliseconds watchdog_interval{20};

  /// Throws std::invalid_argument (naming the field) on nonsensical
  /// settings — run at construction, mirroring LightNasConfig.
  void validate() const;
};

/// Point-in-time service telemetry. Latencies are end-to-end
/// (submit -> fulfilled promise) in microseconds.
struct ServiceStats {
  std::uint64_t submitted = 0;
  /// Requests resolved with a value (fresh, stale, or proxy).
  std::uint64_t completed = 0;
  /// Requests resolved with a typed ServiceError.
  std::uint64_t failed = 0;
  std::uint64_t batches = 0;
  CacheStats cache;
  /// Tensor-pool activity since the service started (process-wide
  /// counter deltas; with pooling disabled all fields stay zero).
  nn::PoolStats pool;
  util::HistogramSnapshot latency_us;
  util::HistogramSnapshot batch_size;
  util::HistogramSnapshot queue_depth;

  // --- resilience ----------------------------------------------------
  /// Requests dropped by the overflow policy.
  std::uint64_t shed = 0;
  /// Requests dropped at dequeue because their deadline had passed.
  std::uint64_t expired = 0;
  /// Degraded answers by source.
  std::uint64_t degraded_stale = 0;
  std::uint64_t degraded_proxy = 0;
  /// predict_batch calls that threw.
  std::uint64_t oracle_failures = 0;
  /// Breaker lifecycle.
  std::uint64_t breaker_opens = 0;
  BreakerState breaker_state = BreakerState::kClosed;
  /// Workers retired + replaced by the watchdog.
  std::uint64_t worker_respawns = 0;
  std::int64_t active_workers = 0;
  /// Of requests that carried a deadline and resolved with a value, the
  /// fraction that beat the deadline.
  std::uint64_t deadline_total = 0;
  std::uint64_t deadline_hits = 0;
  double deadline_hit_ratio() const {
    return deadline_total == 0
               ? 1.0
               : static_cast<double>(deadline_hits) / double(deadline_total);
  }
  std::uint64_t resolved() const { return completed + failed; }

  std::string to_string() const;
};

/// Concurrent batched prediction service over any CostOracle, with an
/// overload-and-failure resilience layer.
///
/// Architecture-cost queries flow through a bounded MPMC queue into a
/// small pool of micro-batching workers. Each worker pops up to
/// `max_batch` pending requests at once, answers what it can from the
/// sharded LRU cache (keyed by Architecture::fingerprint), deduplicates
/// the remaining misses, and pushes them through one batched
/// `CostOracle::predict_batch` call — for the MLP predictor a single
/// B x (L*K) graph-free forward instead of B sequential 1-row graphs.
///
/// Resilience (all opt-in via ServiceConfig):
///   - deadlines: requests expire in the queue instead of wedging
///     clients; expiry is a typed error, not a broken promise;
///   - admission control: Block / ShedNewest / ShedOldest overflow
///     policies bound submit()'s worst case;
///   - circuit breaker: a failing backend trips the breaker and the
///     service sheds fast (front door included) until a cooldown +
///     half-open probe sequence proves the backend healthy again;
///   - graceful degradation: while the backend is unavailable, answers
///     come from stale cache entries, then an analytic proxy oracle,
///     then a typed error — never a hang;
///   - worker watchdog: a worker stuck inside the oracle is retired and
///     replaced, so one hung batch cannot absorb the whole pool.
///
/// Threading model:
///   - any number of client threads may call submit()/predict();
///   - workers never lose requests: every future obtained from submit()
///     is eventually fulfilled with a value or a ServiceError, including
///     across worker exceptions, shedding, expiry and shutdown;
///   - shutdown() stops intake, drains the queue completely, then joins
///     the workers.
class PredictionService {
 public:
  /// The oracle must outlive the service and be const-thread-safe (both
  /// built-in predictors are). Throws std::invalid_argument when the
  /// config fails validation.
  explicit PredictionService(const predictors::CostOracle& oracle,
                             ServiceConfig config = {});
  ~PredictionService();

  PredictionService(const PredictionService&) = delete;
  PredictionService& operator=(const PredictionService&) = delete;

  /// Submit a query with the config's default deadline. Cache hits are
  /// answered immediately on the calling thread (the returned future is
  /// already ready); misses enqueue per the overflow policy. Throws
  /// ServiceError{kShutdown} once the service is shutting down; every
  /// other failure is delivered through the future.
  std::future<double> submit(const space::Architecture& arch);

  /// Same, with an explicit deadline for this request (0 = none —
  /// overriding a configured default requires kBlock overflow).
  std::future<double> submit(const space::Architecture& arch,
                             std::chrono::milliseconds deadline);

  /// Synchronous convenience wrapper: submit + wait. Rethrows the
  /// typed error if the request failed.
  double predict(const space::Architecture& arch);

  /// Stop accepting new requests, drain everything already queued, and
  /// join the workers (clients parked in submit() are released with a
  /// typed shutdown error). Idempotent; also run by the destructor.
  void shutdown();

  ServiceStats stats() const;
  const ServiceConfig& config() const { return config_; }
  std::string unit() const { return oracle_.unit(); }

 private:
  struct Request {
    space::Architecture arch;
    std::uint64_t key = 0;
    std::promise<double> promise;
    std::chrono::steady_clock::time_point enqueued_at;
    /// time_point::max() = no deadline.
    std::chrono::steady_clock::time_point deadline;
  };

  /// One worker thread's control block. Heap-allocated and only ever
  /// appended under workers_mu_, so the watchdog and shutdown can walk
  /// the list while workers run.
  struct WorkerSlot {
    std::thread thread;
    /// steady_clock ticks of the last liveness signal.
    std::atomic<std::int64_t> heartbeat{0};
    /// Set by the watchdog: finish the current batch, then exit.
    std::atomic<bool> retired{false};
    /// Set by the worker on exit (vanished-worker detection).
    std::atomic<bool> done{false};
  };

  void worker_loop(WorkerSlot* slot);
  void process_batch(std::vector<Request>& batch);
  void watchdog_loop();
  void spawn_worker_locked();

  void fulfill(Request& request, double value);
  void fulfill_error(Request& request, ServiceErrorCode code,
                     const std::string& detail);
  /// Stale-cache -> proxy-oracle -> typed error with `code`.
  void answer_degraded(Request& request, ServiceErrorCode code);

  static std::int64_t now_ticks() {
    return std::chrono::steady_clock::now().time_since_epoch().count();
  }

  const predictors::CostOracle& oracle_;
  ServiceConfig config_;
  ShardedLruCache cache_;
  std::unique_ptr<CircuitBreaker> breaker_;
  FallbackChain fallback_;

  mutable std::mutex mu_;
  std::condition_variable queue_not_empty_;
  std::condition_variable queue_not_full_;
  std::deque<Request> queue_;
  bool stopping_ = false;

  /// Baseline for the pool-counter deltas reported by stats().
  nn::PoolStats pool_start_;

  util::Counter submitted_;
  util::Counter completed_;
  util::Counter failed_;
  util::Counter batches_;
  util::Counter shed_;
  util::Counter expired_;
  util::Counter oracle_failures_;
  util::Counter respawns_;
  util::Counter deadline_total_;
  util::Counter deadline_hits_;
  util::Gauge active_workers_;
  util::Histogram latency_us_;
  util::Histogram batch_size_;
  util::Histogram queue_depth_;

  /// Guards workers_ growth (constructor + watchdog respawn) against
  /// shutdown's join walk. Separate from mu_: never held while touching
  /// the queue.
  mutable std::mutex workers_mu_;
  std::vector<std::unique_ptr<WorkerSlot>> workers_;

  std::mutex watchdog_mu_;
  std::condition_variable watchdog_cv_;
  bool watchdog_stop_ = false;
  std::thread watchdog_;

  /// Serializes concurrent shutdown() calls (join is not reentrant).
  std::mutex shutdown_mu_;
};

}  // namespace lightnas::serve
