#include "serve/workload.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>
#include <mutex>
#include <thread>
#include <unordered_set>

namespace lightnas::serve {

ZipfSampler::ZipfSampler(std::size_t n, double s) {
  assert(n > 0);
  cdf_.reserve(n);
  double total = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    total += std::pow(static_cast<double>(k + 1), -s);
    cdf_.push_back(total);
  }
  for (double& c : cdf_) c /= total;
  cdf_.back() = 1.0;
}

std::size_t ZipfSampler::sample(util::Rng& rng) const {
  const double u = rng.uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(
      std::min<std::ptrdiff_t>(it - cdf_.begin(),
                               static_cast<std::ptrdiff_t>(cdf_.size()) - 1));
}

std::vector<space::Architecture> random_architecture_pool(
    const space::SearchSpace& space, std::size_t count, util::Rng& rng) {
  std::vector<space::Architecture> pool;
  std::unordered_set<space::Architecture> seen;
  pool.reserve(count);
  while (pool.size() < count) {
    space::Architecture arch = space.random_architecture(rng);
    if (seen.insert(arch).second) pool.push_back(std::move(arch));
  }
  return pool;
}

LoadResult run_closed_loop(PredictionService& service,
                           const std::vector<space::Architecture>& pool,
                           const ZipfSampler& zipf,
                           std::size_t num_clients,
                           std::size_t requests_per_client,
                           std::uint64_t seed) {
  assert(!pool.empty());
  assert(num_clients > 0);
  std::mutex checksum_mu;
  double checksum = 0.0;

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> clients;
  clients.reserve(num_clients);
  for (std::size_t c = 0; c < num_clients; ++c) {
    clients.emplace_back([&] {
      util::Rng rng = util::make_thread_rng(seed);
      double local_sum = 0.0;
      for (std::size_t i = 0; i < requests_per_client; ++i) {
        const space::Architecture& arch = pool[zipf.sample(rng)];
        local_sum += service.predict(arch);
      }
      std::lock_guard<std::mutex> lock(checksum_mu);
      checksum += local_sum;
    });
  }
  for (std::thread& client : clients) client.join();
  const auto end = std::chrono::steady_clock::now();

  LoadResult result;
  result.requests = num_clients * requests_per_client;
  result.wall_seconds = std::chrono::duration<double>(end - start).count();
  result.checksum = checksum;
  return result;
}

ResilientLoadResult run_resilient_closed_loop(
    PredictionService& service, const std::vector<space::Architecture>& pool,
    const ZipfSampler& zipf, std::size_t num_clients,
    std::size_t requests_per_client, std::uint64_t seed,
    std::chrono::milliseconds wait_budget) {
  assert(!pool.empty());
  assert(num_clients > 0);
  struct ClientTally {
    std::size_t values = 0;
    std::size_t typed_errors = 0;
    std::size_t other_errors = 0;
    std::size_t unresolved = 0;
    double checksum = 0.0;
  };
  std::mutex tally_mu;
  ClientTally total;
  util::Histogram wait_us = util::Histogram::geometric(1.0, 1e8);

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> clients;
  clients.reserve(num_clients);
  for (std::size_t c = 0; c < num_clients; ++c) {
    clients.emplace_back([&] {
      util::Rng rng = util::make_thread_rng(seed);
      ClientTally tally;
      for (std::size_t i = 0; i < requests_per_client; ++i) {
        const space::Architecture& arch = pool[zipf.sample(rng)];
        const auto issued = std::chrono::steady_clock::now();
        try {
          std::future<double> future = service.submit(arch);
          if (future.wait_for(wait_budget) != std::future_status::ready) {
            // Do not block on a wedged future — count it and move on;
            // the promise (if ever set) resolves into a discarded
            // shared state.
            ++tally.unresolved;
          } else {
            tally.checksum += future.get();
            ++tally.values;
          }
        } catch (const ServiceError&) {
          ++tally.typed_errors;
        } catch (...) {
          ++tally.other_errors;
        }
        wait_us.record(std::chrono::duration<double, std::micro>(
                           std::chrono::steady_clock::now() - issued)
                           .count());
      }
      std::lock_guard<std::mutex> lock(tally_mu);
      total.values += tally.values;
      total.typed_errors += tally.typed_errors;
      total.other_errors += tally.other_errors;
      total.unresolved += tally.unresolved;
      total.checksum += tally.checksum;
    });
  }
  for (std::thread& client : clients) client.join();
  const auto end = std::chrono::steady_clock::now();

  ResilientLoadResult result;
  result.requests = num_clients * requests_per_client;
  result.values = total.values;
  result.typed_errors = total.typed_errors;
  result.other_errors = total.other_errors;
  result.unresolved = total.unresolved;
  result.wall_seconds = std::chrono::duration<double>(end - start).count();
  result.checksum = total.checksum;
  result.wait_us = wait_us.snapshot();
  return result;
}

LoadResult run_sequential_baseline(
    const predictors::CostOracle& oracle,
    const std::vector<space::Architecture>& pool, const ZipfSampler& zipf,
    std::size_t requests, std::uint64_t seed) {
  assert(!pool.empty());
  util::Rng rng(seed);
  double checksum = 0.0;
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < requests; ++i) {
    checksum += oracle.predict(pool[zipf.sample(rng)]);
  }
  const auto end = std::chrono::steady_clock::now();

  LoadResult result;
  result.requests = requests;
  result.wall_seconds = std::chrono::duration<double>(end - start).count();
  result.checksum = checksum;
  return result;
}

}  // namespace lightnas::serve
