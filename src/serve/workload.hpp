#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "serve/service.hpp"
#include "space/search_space.hpp"
#include "util/rng.hpp"

namespace lightnas::serve {

/// Zipf(s) sampler over ranks [0, n): P(k) proportional to (k+1)^-s.
/// s ~ 1 models the architecture-popularity skew a shared predictor
/// service sees (a few hot candidates queried over and over by search
/// loops, a long tail of one-off queries) and is what exercises an LRU
/// cache honestly: neither uniform (cache-hostile) nor constant
/// (trivially cached). Sampling is O(log n) via CDF bisection.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double s);

  std::size_t sample(util::Rng& rng) const;
  std::size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;  // normalized, ascending, back() == 1.0
};

/// `count` distinct random architectures (the load generators' request
/// universe). Distinctness matters: duplicates would inflate cache hit
/// rates for free.
std::vector<space::Architecture> random_architecture_pool(
    const space::SearchSpace& space, std::size_t count, util::Rng& rng);

/// Outcome of one load-generation run.
struct LoadResult {
  std::size_t requests = 0;
  double wall_seconds = 0.0;
  /// Sum of all returned predictions — validates runs against each
  /// other and keeps the compiler from eliding the query loop.
  double checksum = 0.0;

  double qps() const {
    return wall_seconds <= 0.0 ? 0.0
                               : static_cast<double>(requests) / wall_seconds;
  }
};

/// Closed-loop load: `num_clients` threads, each issuing
/// `requests_per_client` Zipf-distributed queries back-to-back (next
/// request only after the previous answer arrived). Each client thread
/// draws from its own deterministic stream via util::make_thread_rng.
LoadResult run_closed_loop(PredictionService& service,
                           const std::vector<space::Architecture>& pool,
                           const ZipfSampler& zipf,
                           std::size_t num_clients,
                           std::size_t requests_per_client,
                           std::uint64_t seed);

/// The pre-serving baseline: the same Zipf query stream answered by
/// sequential single-thread CostOracle::predict calls — no queue, no
/// batching, no cache.
LoadResult run_sequential_baseline(
    const predictors::CostOracle& oracle,
    const std::vector<space::Architecture>& pool, const ZipfSampler& zipf,
    std::size_t requests, std::uint64_t seed);

/// Outcome of one resilience-aware load run: every request is accounted
/// for as a value, a typed ServiceError, an untyped error, or
/// unresolved (its future never became ready within the wait budget —
/// the deadlock signal the chaos gate watches for).
struct ResilientLoadResult {
  std::size_t requests = 0;
  std::size_t values = 0;
  std::size_t typed_errors = 0;
  std::size_t other_errors = 0;
  std::size_t unresolved = 0;
  double wall_seconds = 0.0;
  double checksum = 0.0;
  /// Client-observed submit -> outcome wait, in microseconds
  /// (unresolved requests record the full wait budget).
  util::HistogramSnapshot wait_us;

  /// Fraction of requests that received *some* answer — a value or a
  /// typed error — within the wait budget. The SLO gate's headline.
  double resolved_ratio() const {
    return requests == 0
               ? 1.0
               : static_cast<double>(values + typed_errors) /
                     static_cast<double>(requests);
  }
  double qps() const {
    return wall_seconds <= 0.0 ? 0.0
                               : static_cast<double>(requests) / wall_seconds;
  }
};

/// Closed-loop load that never wedges on a sick service: each client
/// waits at most `wait_budget` per request, classifies the outcome, and
/// moves on. Submit-side ServiceErrors (shutdown) count as typed
/// errors.
ResilientLoadResult run_resilient_closed_loop(
    PredictionService& service, const std::vector<space::Architecture>& pool,
    const ZipfSampler& zipf, std::size_t num_clients,
    std::size_t requests_per_client, std::uint64_t seed,
    std::chrono::milliseconds wait_budget);

}  // namespace lightnas::serve
