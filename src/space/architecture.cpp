#include "space/architecture.hpp"

#include <cassert>
#include <sstream>

#include "space/search_space.hpp"

namespace lightnas::space {

Architecture::Architecture(std::vector<std::size_t> op_indices)
    : op_indices_(std::move(op_indices)) {}

std::size_t Architecture::op_at(std::size_t layer) const {
  assert(layer < op_indices_.size());
  return op_indices_[layer];
}

void Architecture::set_op(std::size_t layer, std::size_t op_index) {
  assert(layer < op_indices_.size());
  op_indices_[layer] = op_index;
}

std::vector<float> Architecture::encode_one_hot(std::size_t num_ops) const {
  std::vector<float> encoding(op_indices_.size() * num_ops, 0.0f);
  for (std::size_t l = 0; l < op_indices_.size(); ++l) {
    assert(op_indices_[l] < num_ops);
    encoding[l * num_ops + op_indices_[l]] = 1.0f;
  }
  return encoding;
}

Architecture Architecture::decode_one_hot(const std::vector<float>& encoding,
                                          std::size_t num_layers,
                                          std::size_t num_ops) {
  assert(encoding.size() == num_layers * num_ops);
  std::vector<std::size_t> ops(num_layers, 0);
  for (std::size_t l = 0; l < num_layers; ++l) {
    std::size_t best = 0;
    float best_v = encoding[l * num_ops];
    for (std::size_t k = 1; k < num_ops; ++k) {
      if (encoding[l * num_ops + k] > best_v) {
        best_v = encoding[l * num_ops + k];
        best = k;
      }
    }
    ops[l] = best;
  }
  return Architecture(std::move(ops));
}

std::size_t Architecture::effective_depth(const SearchSpace& space) const {
  const std::size_t skip = space.ops().skip_index();
  std::size_t depth = 0;
  for (std::size_t op : op_indices_) {
    if (op != skip) ++depth;
  }
  return depth;
}

std::string Architecture::to_string(const SearchSpace& space) const {
  std::ostringstream oss;
  for (std::size_t l = 0; l < op_indices_.size(); ++l) {
    if (l > 0) oss << ' ';
    oss << l << ':' << space.ops().name(op_indices_[l]);
  }
  if (with_se_) oss << " +SE";
  return oss.str();
}

std::string Architecture::to_diagram(const SearchSpace& space) const {
  std::ostringstream oss;
  const auto& layers = space.layers();
  assert(layers.size() == op_indices_.size());
  std::size_t current_stage = static_cast<std::size_t>(-1);
  for (std::size_t l = 0; l < op_indices_.size(); ++l) {
    if (layers[l].stage != current_stage) {
      current_stage = layers[l].stage;
      if (l > 0) oss << '\n';
      oss << "stage " << current_stage << " (" << layers[l].in_resolution
          << "x" << layers[l].in_resolution << " -> "
          << layers[l].out_channels << "ch): ";
    } else {
      oss << " -> ";
    }
    oss << '[' << space.ops().name(op_indices_[l]);
    oss << ' ' << layers[l].out_channels;
    if (!layers[l].searchable) oss << " fixed";
    oss << ']';
  }
  if (with_se_) oss << "\n(+ SE on last 9 layers)";
  return oss.str();
}

std::string Architecture::serialize() const {
  std::ostringstream oss;
  for (std::size_t l = 0; l < op_indices_.size(); ++l) {
    if (l > 0) oss << ',';
    oss << op_indices_[l];
  }
  if (with_se_) oss << ":se";
  return oss.str();
}

Architecture Architecture::deserialize(const std::string& text) {
  std::string body = text;
  bool se = false;
  if (const auto pos = body.rfind(":se"); pos != std::string::npos &&
                                          pos == body.size() - 3) {
    se = true;
    body = body.substr(0, pos);
  }
  std::vector<std::size_t> ops;
  std::istringstream iss(body);
  std::string token;
  while (std::getline(iss, token, ',')) {
    ops.push_back(static_cast<std::size_t>(std::stoul(token)));
  }
  Architecture arch(std::move(ops));
  arch.set_with_se(se);
  return arch;
}

namespace {

/// SplitMix64 finalizer: a fixed, well-studied 64-bit mixer. Written out
/// here (rather than reusing util::Rng internals) so the fingerprint's
/// byte-level definition lives in exactly one place.
std::uint64_t mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

std::uint64_t Architecture::fingerprint() const {
  // Seed with the layer count so prefixes of one another never collide
  // trivially; fold each op index (+1 to distinguish op 0 from padding)
  // through the mixer chain; close with the SE flag.
  std::uint64_t h =
      mix64(0x9e3779b97f4a7c15ULL ^ static_cast<std::uint64_t>(
                                        op_indices_.size()));
  for (std::size_t op : op_indices_) {
    h = mix64(h ^ (static_cast<std::uint64_t>(op) + 1));
  }
  return mix64(h ^ (with_se_ ? 0x5851f42d4c957f2dULL : 0));
}

bool ArchitectureLess::operator()(const Architecture& a,
                                  const Architecture& b) const {
  if (a.with_se() != b.with_se()) return !a.with_se();
  return a.ops() < b.ops();
}

}  // namespace lightnas::space
