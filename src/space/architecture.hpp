#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace lightnas::space {

class SearchSpace;

/// A concrete architecture: one operator index per layer of the macro-
/// architecture (including fixed layers, whose entry never varies).
/// This is the paper's arch = {op_l} with the sparse one-hot encoding
/// alpha-bar of Eq (4) available via `encode_one_hot`.
class Architecture {
 public:
  Architecture() = default;
  explicit Architecture(std::vector<std::size_t> op_indices);

  const std::vector<std::size_t>& ops() const { return op_indices_; }
  std::size_t op_at(std::size_t layer) const;
  void set_op(std::size_t layer, std::size_t op_index);
  std::size_t num_layers() const { return op_indices_.size(); }

  /// Whether the SE module is applied to the last nine layers
  /// (the Table-4 ablation).
  bool with_se() const { return with_se_; }
  void set_with_se(bool v) { with_se_ = v; }

  /// Flattened L*K one-hot encoding (row-major), Eq (4). This is the
  /// latency predictor's input representation.
  std::vector<float> encode_one_hot(std::size_t num_ops) const;

  /// Inverse of encode_one_hot. Requires a valid one-hot per row.
  static Architecture decode_one_hot(const std::vector<float>& encoding,
                                     std::size_t num_layers,
                                     std::size_t num_ops);

  /// Number of layers whose operator is not SkipConnect (effective depth).
  std::size_t effective_depth(const SearchSpace& space) const;

  /// Compact text form, e.g. "0:K3_E3 1:Skip ...".
  std::string to_string(const SearchSpace& space) const;
  /// One line per stage with box-drawing, Fig-6 style.
  std::string to_diagram(const SearchSpace& space) const;

  /// Serialize as a comma-separated op-index list (plus ":se" suffix).
  std::string serialize() const;
  static Architecture deserialize(const std::string& text);

  /// Stable 64-bit fingerprint over (layer count, op indices, SE flag).
  /// The mixing function is fixed by this library — not std::hash — so
  /// the value is identical across platforms, standard libraries, and
  /// process runs; it keys the serving cache and on-disk artifacts.
  /// Equal architectures always agree; distinct ones collide with
  /// probability ~2^-64.
  std::uint64_t fingerprint() const;

  bool operator==(const Architecture& other) const = default;

 private:
  std::vector<std::size_t> op_indices_;
  bool with_se_ = false;
};

/// Strict-weak-order so architectures can key std::map / std::set in the
/// evolutionary baseline's dedup bookkeeping.
struct ArchitectureLess {
  bool operator()(const Architecture& a, const Architecture& b) const;
};

}  // namespace lightnas::space

/// Hash support so Architecture can key std::unordered_map / set
/// directly (the serving layer's cache uses the raw fingerprint).
template <>
struct std::hash<lightnas::space::Architecture> {
  std::size_t operator()(const lightnas::space::Architecture& arch) const
      noexcept {
    return static_cast<std::size_t>(arch.fingerprint());
  }
};
