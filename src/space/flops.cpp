#include "space/flops.hpp"

#include <cassert>

namespace lightnas::space {

namespace {

double sq(double v) {
  return v * v;
}

LayerCost conv_cost(double out_resolution, double in_ch, double out_ch,
                    double kernel) {
  LayerCost cost;
  cost.macs = sq(out_resolution) * in_ch * out_ch * sq(kernel);
  cost.params = in_ch * out_ch * sq(kernel);
  return cost;
}

LayerCost depthwise_cost(double out_resolution, double channels,
                         double kernel) {
  LayerCost cost;
  cost.macs = sq(out_resolution) * channels * sq(kernel);
  cost.params = channels * sq(kernel);
  return cost;
}

LayerCost se_cost(double out_resolution, double channels) {
  // Squeeze (global pool, ~free), two FC layers with reduction 4, then a
  // per-pixel rescale of the feature map.
  const double hidden = channels / 4.0;
  LayerCost cost;
  cost.macs = channels * hidden * 2.0 + sq(out_resolution) * channels;
  cost.params = channels * hidden * 2.0;
  return cost;
}

}  // namespace

LayerCost operator_cost(const LayerSpec& layer, const Operator& op,
                        bool with_se) {
  const double in_res = static_cast<double>(layer.in_resolution);
  const double out_res =
      static_cast<double>((layer.in_resolution +
                           static_cast<std::size_t>(layer.stride) - 1) /
                          static_cast<std::size_t>(layer.stride));
  const double cin = static_cast<double>(layer.in_channels);
  const double cout = static_cast<double>(layer.out_channels);

  LayerCost total;
  if (op.kind == OpKind::kSkip) {
    const bool shape_preserving = layer.stride == 1 &&
                                  layer.in_channels == layer.out_channels;
    if (!shape_preserving) {
      total += conv_cost(out_res, cin, cout, 1.0);
    }
    return total;
  }

  assert(op.kind == OpKind::kMBConv);
  const double expanded = cin * static_cast<double>(op.expansion);
  // 1x1 expansion at input resolution.
  total += conv_cost(in_res, cin, expanded, 1.0);
  // Depthwise kxk at output resolution.
  total += depthwise_cost(out_res, expanded, static_cast<double>(op.kernel));
  if (with_se) total += se_cost(out_res, expanded);
  // 1x1 projection to the layer's output channels.
  total += conv_cost(out_res, expanded, cout, 1.0);
  return total;
}

LayerCost stem_cost(const SearchSpace& space) {
  const double out_res = static_cast<double>(space.input_resolution()) / 2.0;
  return conv_cost(out_res, 3.0,
                   static_cast<double>(space.stem_channels()), 3.0);
}

LayerCost head_cost(const SearchSpace& space) {
  assert(!space.layers().empty());
  const LayerSpec& last = space.layers().back();
  const double final_res = static_cast<double>(
      (last.in_resolution + static_cast<std::size_t>(last.stride) - 1) /
      static_cast<std::size_t>(last.stride));
  LayerCost total = conv_cost(final_res,
                              static_cast<double>(last.out_channels),
                              static_cast<double>(space.head_channels()),
                              1.0);
  // Classifier FC (after global average pooling).
  LayerCost fc;
  fc.macs = static_cast<double>(space.head_channels()) *
            static_cast<double>(space.num_classes());
  fc.params = fc.macs + static_cast<double>(space.num_classes());
  total += fc;
  return total;
}

bool se_applies_at(const SearchSpace& space, std::size_t layer_index) {
  const std::size_t num_layers = space.num_layers();
  assert(layer_index < num_layers);
  const std::size_t se_layers = 9;
  return layer_index + se_layers >= num_layers;
}

double count_macs(const SearchSpace& space, const Architecture& arch) {
  assert(arch.num_layers() == space.num_layers());
  double total = stem_cost(space).macs + head_cost(space).macs;
  for (std::size_t l = 0; l < space.num_layers(); ++l) {
    const bool se = arch.with_se() && se_applies_at(space, l);
    total += operator_cost(space.layers()[l],
                           space.ops().op(arch.op_at(l)), se)
                 .macs;
  }
  return total;
}

double count_params(const SearchSpace& space, const Architecture& arch) {
  assert(arch.num_layers() == space.num_layers());
  double total = stem_cost(space).params + head_cost(space).params;
  for (std::size_t l = 0; l < space.num_layers(); ++l) {
    const bool se = arch.with_se() && se_applies_at(space, l);
    total += operator_cost(space.layers()[l],
                           space.ops().op(arch.op_at(l)), se)
                 .params;
  }
  return total;
}

}  // namespace lightnas::space
