#pragma once

#include "space/architecture.hpp"
#include "space/search_space.hpp"

namespace lightnas::space {

/// Compute cost of one layer (or stem/head) in multiply-accumulates and
/// parameters. The paper reports "multi-adds" (MACs); 1 MAC = 2 FLOPs.
struct LayerCost {
  double macs = 0.0;
  double params = 0.0;

  LayerCost& operator+=(const LayerCost& other) {
    macs += other.macs;
    params += other.params;
    return *this;
  }
};

/// Cost of a single candidate operator instantiated at a layer position.
/// SkipConnect is free when shape-preserving; at shape-changing layers it
/// degrades to a strided 1x1 projection (see DESIGN.md).
/// `with_se` adds a Squeeze-and-Excitation block on the expanded features
/// (reduction ratio 4), used by the Table-4 ablation.
LayerCost operator_cost(const LayerSpec& layer, const Operator& op,
                        bool with_se = false);

/// Stem: 3x3 conv, stride 2, 3 -> stem_channels.
LayerCost stem_cost(const SearchSpace& space);

/// Head: 1x1 conv to head_channels, global average pool, FC to classes.
LayerCost head_cost(const SearchSpace& space);

/// Whether the SE ablation applies SE at this layer index: the paper
/// attaches SE to the last nine candidate layers (Sec 4.3).
bool se_applies_at(const SearchSpace& space, std::size_t layer_index);

/// Total network MACs for an architecture, stem and head included.
double count_macs(const SearchSpace& space, const Architecture& arch);

/// Total trainable parameters for an architecture.
double count_params(const SearchSpace& space, const Architecture& arch);

}  // namespace lightnas::space
