#include "space/operator_space.hpp"

#include <cassert>

namespace lightnas::space {

OperatorSpace::OperatorSpace() {
  for (int kernel : {3, 5, 7}) {
    for (int expansion : {3, 6}) {
      ops_.push_back(Operator{OpKind::kMBConv, kernel, expansion});
    }
  }
  ops_.push_back(Operator{OpKind::kSkip, 0, 0});
}

const OperatorSpace& OperatorSpace::canonical() {
  static const OperatorSpace instance;
  return instance;
}

const Operator& OperatorSpace::op(std::size_t index) const {
  assert(index < ops_.size());
  return ops_[index];
}

std::string OperatorSpace::name(std::size_t index) const {
  assert(index < ops_.size());
  const Operator& o = ops_[index];
  if (o.kind == OpKind::kSkip) return "Skip";
  return "K" + std::to_string(o.kernel) + "_E" + std::to_string(o.expansion);
}

std::size_t OperatorSpace::index_of(const Operator& op) const {
  for (std::size_t i = 0; i < ops_.size(); ++i) {
    if (ops_[i] == op) return i;
  }
  return ops_.size();
}

std::size_t OperatorSpace::skip_index() const {
  for (std::size_t i = 0; i < ops_.size(); ++i) {
    if (ops_[i].kind == OpKind::kSkip) return i;
  }
  assert(false && "canonical space always contains Skip");
  return ops_.size();
}

std::size_t OperatorSpace::mbconv_index(int kernel, int expansion) const {
  return index_of(Operator{OpKind::kMBConv, kernel, expansion});
}

}  // namespace lightnas::space
