#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace lightnas::space {

/// Kind of a candidate operator in the layer-wise search space (Sec 3.1).
enum class OpKind {
  kMBConv,  ///< MobileNetV2 inverted-residual block
  kSkip,    ///< SkipConnect: identity (or strided 1x1 projection when the
            ///< layer changes shape), enabling depth search
};

/// One candidate operator. The paper's space O is MBConv with kernel
/// sizes {3,5,7} x expansion ratios {3,6} plus SkipConnect: |O| = 7.
struct Operator {
  OpKind kind = OpKind::kMBConv;
  int kernel = 3;     ///< depthwise kernel size (MBConv only)
  int expansion = 6;  ///< channel expansion ratio (MBConv only)

  bool operator==(const Operator& other) const = default;
};

/// The canonical operator space in a fixed, documented order:
///   0: MB k3 e3   1: MB k3 e6   2: MB k5 e3   3: MB k5 e6
///   4: MB k7 e3   5: MB k7 e6   6: SkipConnect
class OperatorSpace {
 public:
  static const OperatorSpace& canonical();

  std::size_t size() const { return ops_.size(); }
  const Operator& op(std::size_t index) const;
  const std::vector<Operator>& ops() const { return ops_; }

  /// Short display name, e.g. "MB3_K5_E6" style is avoided in favour of
  /// the paper's figure labels: "K3_E3" ... "Skip".
  std::string name(std::size_t index) const;

  /// Index of the canonical operator equal to `op`; size() if absent.
  std::size_t index_of(const Operator& op) const;

  /// Index of the SkipConnect operator.
  std::size_t skip_index() const;

  /// Index of MBConv with the given kernel/expansion; size() if absent.
  std::size_t mbconv_index(int kernel, int expansion) const;

 private:
  OperatorSpace();
  std::vector<Operator> ops_;
};

}  // namespace lightnas::space
