#include "space/search_space.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <sstream>

#include "space/architecture.hpp"
#include "util/rng.hpp"

namespace lightnas::space {

namespace {

/// Round channels to the nearest multiple of 8 (standard mobile-net
/// convention so depthwise kernels stay vectorizable), never below 8.
std::size_t scale_channels(std::size_t channels, double width_mult) {
  const double scaled = static_cast<double>(channels) * width_mult;
  auto rounded = static_cast<std::size_t>(std::round(scaled / 8.0)) * 8;
  return std::max<std::size_t>(rounded, 8);
}

struct StageDef {
  std::size_t out_channels;
  std::size_t num_layers;
  int first_stride;
};

}  // namespace

SearchSpace SearchSpace::fbnet_xavier() {
  return scaled(1.0, 224);
}

SearchSpace SearchSpace::scaled(double width_mult, std::size_t resolution) {
  assert(width_mult > 0.0);
  assert(resolution >= 32);

  SearchSpace space;
  space.ops_ = &OperatorSpace::canonical();
  space.resolution_ = resolution;
  space.width_mult_ = width_mult;
  space.num_classes_ = 1000;
  space.stem_channels_ = scale_channels(16, width_mult);
  space.head_channels_ = scale_channels(1504, width_mult);

  // FBNet macro-architecture: 1+4+4+4+4+4+1 = 22 candidate layers.
  const StageDef stages[] = {
      {16, 1, 1},   // stage 0: fixed layer
      {24, 4, 2},   // stage 1
      {32, 4, 2},   // stage 2
      {64, 4, 2},   // stage 3
      {112, 4, 1},  // stage 4
      {184, 4, 2},  // stage 5
      {352, 1, 1},  // stage 6
  };

  // Stem: 3x3 conv stride 2 halves the resolution before the first layer.
  std::size_t res = resolution / 2;
  std::size_t in_ch = space.stem_channels_;
  std::size_t stage_idx = 0;
  for (const StageDef& stage : stages) {
    const std::size_t out_ch = scale_channels(stage.out_channels, width_mult);
    for (std::size_t i = 0; i < stage.num_layers; ++i) {
      LayerSpec layer;
      layer.in_channels = in_ch;
      layer.out_channels = out_ch;
      layer.in_resolution = res;
      layer.stride = (i == 0) ? stage.first_stride : 1;
      layer.stage = stage_idx;
      layer.searchable = !(stage_idx == 0 && i == 0);
      space.layers_.push_back(layer);
      if (layer.stride == 2) res = (res + 1) / 2;
      in_ch = out_ch;
    }
    ++stage_idx;
  }
  assert(space.layers_.size() == 22);
  return space;
}

std::size_t SearchSpace::num_searchable_layers() const {
  std::size_t n = 0;
  for (const LayerSpec& layer : layers_) {
    if (layer.searchable) ++n;
  }
  return n;
}

double SearchSpace::space_size_log10() const {
  return static_cast<double>(num_searchable_layers()) *
         std::log10(static_cast<double>(num_ops()));
}

Architecture SearchSpace::random_architecture(
    lightnas::util::Rng& rng) const {
  std::vector<std::size_t> ops(layers_.size(), 0);
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    if (layers_[l].searchable) {
      ops[l] = static_cast<std::size_t>(rng.uniform_index(num_ops()));
    }
  }
  return Architecture(std::move(ops));
}

Architecture SearchSpace::mutate(const Architecture& base,
                                 std::size_t num_mutations,
                                 lightnas::util::Rng& rng) const {
  assert(base.num_layers() == layers_.size());
  Architecture child = base;
  std::vector<std::size_t> searchable;
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    if (layers_[l].searchable) searchable.push_back(l);
  }
  for (std::size_t m = 0; m < num_mutations; ++m) {
    const std::size_t layer =
        searchable[rng.uniform_index(searchable.size())];
    child.set_op(layer, static_cast<std::size_t>(rng.uniform_index(
                            num_ops())));
  }
  return child;
}

Architecture SearchSpace::crossover(const Architecture& a,
                                    const Architecture& b,
                                    lightnas::util::Rng& rng) const {
  assert(a.num_layers() == layers_.size());
  assert(b.num_layers() == layers_.size());
  Architecture child = a;
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    if (layers_[l].searchable && rng.bernoulli(0.5)) {
      child.set_op(l, b.op_at(l));
    }
  }
  return child;
}

Architecture SearchSpace::mobilenet_v2_like() const {
  return uniform_architecture(ops_->mbconv_index(3, 6));
}

Architecture SearchSpace::uniform_architecture(std::size_t op_index) const {
  assert(op_index < num_ops());
  std::vector<std::size_t> ops(layers_.size(), 0);
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    if (layers_[l].searchable) ops[l] = op_index;
  }
  return Architecture(std::move(ops));
}

std::string SearchSpace::describe() const {
  std::ostringstream oss;
  oss << "SearchSpace: " << resolution_ << "x" << resolution_ << " input, "
      << "width x" << width_mult_ << ", L=" << num_layers() << " (K="
      << num_ops() << " ops, " << num_searchable_layers()
      << " searchable), |A| = 10^" << space_size_log10();
  return oss.str();
}

}  // namespace lightnas::space
