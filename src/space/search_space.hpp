#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "space/operator_space.hpp"

namespace lightnas::util {
class Rng;
}

namespace lightnas::space {

class Architecture;

/// Per-layer shape information of the macro-architecture. Channels and
/// resolutions are those of the layer *input*; `stride` downsamples and
/// `out_channels` applies at this layer's output.
struct LayerSpec {
  std::size_t in_channels = 0;
  std::size_t out_channels = 0;
  std::size_t in_resolution = 0;  ///< square feature map side (H == W)
  int stride = 1;
  std::size_t stage = 0;  ///< stage index, for display only
  bool searchable = true;
};

/// The FBNet-style layer-wise macro-architecture (Sec 3.1, Fig 4):
/// a fixed stem (3x3 conv, stride 2), L = 22 candidate layers whose
/// first layer is fixed, and a fixed head (1x1 conv -> pool -> FC).
/// Width multiplier and input resolution are parameters so that the
/// model-scaling baseline (Fig 9) reuses the same machinery.
class SearchSpace {
 public:
  /// The space used throughout the paper: 224x224 input, width 1.0,
  /// stage channels {16, 24, 32, 64, 112, 184, 352}, 1000 classes.
  static SearchSpace fbnet_xavier();

  /// Scaled variant for the model-scaling comparison (Fig 9).
  static SearchSpace scaled(double width_mult, std::size_t resolution);

  const std::vector<LayerSpec>& layers() const { return layers_; }
  const OperatorSpace& ops() const { return *ops_; }

  std::size_t num_layers() const { return layers_.size(); }    // L = 22
  std::size_t num_ops() const { return ops_->size(); }         // K = 7
  std::size_t num_searchable_layers() const;                   // 21

  std::size_t input_resolution() const { return resolution_; }
  double width_mult() const { return width_mult_; }
  std::size_t num_classes() const { return num_classes_; }
  std::size_t stem_channels() const { return stem_channels_; }
  std::size_t head_channels() const { return head_channels_; }

  /// log10 of |A| = K^(searchable layers); the paper reports ~17.75
  /// (|A| ~ 5.6e17) for the canonical space.
  double space_size_log10() const;

  /// Uniformly random architecture (fixed layers keep their fixed op).
  Architecture random_architecture(lightnas::util::Rng& rng) const;

  /// Copy of `base` with `num_mutations` random searchable layers
  /// reassigned to random operators (evolutionary-search primitive).
  Architecture mutate(const Architecture& base, std::size_t num_mutations,
                      lightnas::util::Rng& rng) const;

  /// Uniform crossover of two parents (evolutionary-search primitive).
  Architecture crossover(const Architecture& a, const Architecture& b,
                         lightnas::util::Rng& rng) const;

  /// The all-MBConv(k3, e6) architecture: our stand-in for plain
  /// MobileNetV2, which stacks the same operator everywhere (Sec 4.2).
  Architecture mobilenet_v2_like() const;

  /// Architecture with every searchable layer set to the given op index.
  Architecture uniform_architecture(std::size_t op_index) const;

  std::string describe() const;

 private:
  SearchSpace() = default;

  std::vector<LayerSpec> layers_;
  const OperatorSpace* ops_ = nullptr;
  std::size_t resolution_ = 224;
  double width_mult_ = 1.0;
  std::size_t num_classes_ = 1000;
  std::size_t stem_channels_ = 16;
  std::size_t head_channels_ = 1504;
};

}  // namespace lightnas::space
