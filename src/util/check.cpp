#include "util/check.hpp"

#include <cstdio>
#include <cstdlib>

namespace lightnas::util {

void check_failed(const char* condition, const char* file, int line,
                  const std::string& detail) {
  std::fprintf(stderr, "LIGHTNAS_CHECK failed: %s\n  at %s:%d\n  %s\n",
               condition, file, line, detail.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace lightnas::util
