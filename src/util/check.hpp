#pragma once

#include <string>

namespace lightnas::util {

/// Print a fatal precondition failure and abort. Never returns. Kept
/// out of line so the failure branch costs one call in the hot paths.
[[noreturn]] void check_failed(const char* condition, const char* file,
                               int line, const std::string& detail);

}  // namespace lightnas::util

/// Hot-path precondition that survives every build type. The old bare
/// `assert`s on the GEMM/elementwise entry points compiled out in
/// Release, so a mismatched matmul or bias add silently read out of
/// bounds; LIGHTNAS_CHECK instead aborts with the offending shapes.
///
/// `detail` is any expression convertible to std::string and is only
/// evaluated on failure, so call sites can build rich messages
/// (shape_string() concatenations) without paying for them when the
/// check passes. The predicate itself must stay O(1) — these run on
/// every kernel invocation.
#define LIGHTNAS_CHECK(cond, detail)                                      \
  do {                                                                    \
    if (!(cond)) [[unlikely]] {                                           \
      ::lightnas::util::check_failed(#cond, __FILE__, __LINE__, (detail)); \
    }                                                                     \
  } while (false)
