#include "util/csv.hpp"

#include <cassert>
#include <fstream>
#include <iomanip>
#include <sstream>

namespace lightnas::util {

CsvWriter::CsvWriter(std::vector<std::string> header)
    : header_(std::move(header)) {
  assert(!header_.empty());
}

void CsvWriter::add_row(const std::vector<std::string>& row) {
  assert(row.size() == header_.size());
  rows_.push_back(row);
}

void CsvWriter::add_row(const std::vector<double>& row, int precision) {
  assert(row.size() == header_.size());
  std::vector<std::string> cells;
  cells.reserve(row.size());
  for (double v : row) {
    std::ostringstream oss;
    oss << std::setprecision(precision) << v;
    cells.push_back(oss.str());
  }
  rows_.push_back(std::move(cells));
}

void CsvWriter::write(std::ostream& os) const {
  auto write_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i > 0) os << ',';
      os << escape(cells[i]);
    }
    os << '\n';
  };
  write_row(header_);
  for (const auto& row : rows_) write_row(row);
}

bool CsvWriter::write_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  write(out);
  return out.good();
}

std::string CsvWriter::escape(const std::string& cell) {
  const bool needs_quotes =
      cell.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quotes) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

}  // namespace lightnas::util
