#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace lightnas::util {

/// Minimal CSV writer: the benchmark binaries dump their raw series
/// (e.g. the Figure-7 search traces) alongside the printed tables so
/// downstream plotting can regenerate the paper's figures.
class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> header);

  void add_row(const std::vector<std::string>& row);
  void add_row(const std::vector<double>& row, int precision = 6);

  void write(std::ostream& os) const;
  /// Writes to the given path; returns false (without throwing) when the
  /// file cannot be opened so benches degrade gracefully in read-only dirs.
  bool write_file(const std::string& path) const;

  std::size_t num_rows() const { return rows_.size(); }

 private:
  static std::string escape(const std::string& cell);

  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace lightnas::util
