#include "util/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace lightnas::util {

namespace {

std::atomic<LogLevel> g_level{LogLevel::kInfo};

/// Leaked on purpose: worker threads (serving layer, benches) may still
/// be logging while static destructors run at process exit; a
/// function-local leaked mutex can never be used after destruction.
std::mutex& log_mutex() {
  static std::mutex* mu = new std::mutex;
  return *mu;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
  }
  return "?????";
}

}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

LogLevel log_level() {
  return g_level.load(std::memory_order_relaxed);
}

void log_message(LogLevel level, const std::string& msg) {
  if (static_cast<int>(level) <
      static_cast<int>(g_level.load(std::memory_order_relaxed))) {
    return;
  }
  // Assemble the whole line first, then emit it with one write under the
  // lock: concurrent writers can interleave *lines* but never characters,
  // even against direct stderr writes from other code.
  std::string line;
  line.reserve(msg.size() + 10);
  line.append("[").append(level_name(level)).append("] ").append(msg).append(
      "\n");
  std::lock_guard<std::mutex> lock(log_mutex());
  std::fwrite(line.data(), 1, line.size(), stderr);
  std::fflush(stderr);
}

}  // namespace lightnas::util
