#pragma once

#include <sstream>
#include <string>

namespace lightnas::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Process-wide minimum level; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emit a message to stderr with a level prefix. Safe to call from any
/// number of threads concurrently — including during process teardown —
/// and lines are never interleaved character-wise.
void log_message(LogLevel level, const std::string& msg);

namespace detail {

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, oss_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    oss_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream oss_;
};

}  // namespace detail

inline detail::LogLine log_debug() {
  return detail::LogLine(LogLevel::kDebug);
}
inline detail::LogLine log_info() { return detail::LogLine(LogLevel::kInfo); }
inline detail::LogLine log_warn() { return detail::LogLine(LogLevel::kWarn); }
inline detail::LogLine log_error() {
  return detail::LogLine(LogLevel::kError);
}

}  // namespace lightnas::util
