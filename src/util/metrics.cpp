#include "util/metrics.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <sstream>

namespace lightnas::util {

namespace {

/// CAS-loop updates keep us off C++20 atomic<double>::fetch_add, whose
/// availability varies across standard libraries.
void atomic_add(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + v,
                                  std::memory_order_relaxed)) {
  }
}

void atomic_min(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v < cur && !a.compare_exchange_weak(cur, v,
                                             std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v > cur && !a.compare_exchange_weak(cur, v,
                                             std::memory_order_relaxed)) {
  }
}

}  // namespace

std::string HistogramSnapshot::to_string(int precision) const {
  std::ostringstream oss;
  oss.precision(precision);
  oss << "n=" << count << " mean=" << mean() << " p50=" << p50
      << " p95=" << p95 << " p99=" << p99 << " max=" << max;
  return oss.str();
}

Histogram Histogram::geometric(double lo, double hi,
                               std::size_t buckets_per_decade) {
  assert(lo > 0.0 && hi > lo && buckets_per_decade > 0);
  const double growth =
      std::pow(10.0, 1.0 / static_cast<double>(buckets_per_decade));
  std::vector<double> bounds;
  for (double b = lo * growth; b < hi; b *= growth) bounds.push_back(b);
  bounds.push_back(hi);
  return Histogram(lo, std::move(bounds));
}

Histogram Histogram::linear(double lo, double hi, std::size_t num_buckets) {
  assert(hi > lo && num_buckets > 0);
  std::vector<double> bounds;
  bounds.reserve(num_buckets);
  const double width = (hi - lo) / static_cast<double>(num_buckets);
  for (std::size_t i = 1; i < num_buckets; ++i) {
    bounds.push_back(lo + width * static_cast<double>(i));
  }
  bounds.push_back(hi);
  return Histogram(lo, std::move(bounds));
}

Histogram::Histogram(double lo, std::vector<double> upper_bounds)
    : lo_(lo),
      upper_bounds_(std::move(upper_bounds)),
      buckets_(upper_bounds_.size()),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {}

Histogram::Histogram(const Histogram& other)
    : lo_(other.lo_),
      upper_bounds_(other.upper_bounds_),
      buckets_(other.upper_bounds_.size()),
      count_(other.count_.load(std::memory_order_relaxed)),
      sum_(other.sum_.load(std::memory_order_relaxed)),
      min_(other.min_.load(std::memory_order_relaxed)),
      max_(other.max_.load(std::memory_order_relaxed)) {
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i].store(other.buckets_[i].load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
  }
}

std::size_t Histogram::bucket_index(double value) const {
  // First bucket whose upper bound contains the value; out-of-range
  // values clamp into the end buckets.
  const auto it = std::lower_bound(upper_bounds_.begin(),
                                   upper_bounds_.end(), value);
  if (it == upper_bounds_.end()) return upper_bounds_.size() - 1;
  return static_cast<std::size_t>(it - upper_bounds_.begin());
}

void Histogram::record(double value) {
  buckets_[bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add(sum_, value);
  atomic_min(min_, value);
  atomic_max(max_, value);
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot snap;
  std::vector<std::uint64_t> counts(buckets_.size());
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
    snap.count += counts[i];
  }
  snap.sum = sum_.load(std::memory_order_relaxed);
  if (snap.count == 0) return snap;
  snap.min = min_.load(std::memory_order_relaxed);
  snap.max = max_.load(std::memory_order_relaxed);

  const auto quantile = [&](double q) {
    const double rank = q * static_cast<double>(snap.count);
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < counts.size(); ++i) {
      if (counts[i] == 0) continue;
      const double before = static_cast<double>(cumulative);
      cumulative += counts[i];
      if (static_cast<double>(cumulative) >= rank) {
        const double lower = i == 0 ? lo_ : upper_bounds_[i - 1];
        const double upper = upper_bounds_[i];
        const double frac = (rank - before) / double(counts[i]);
        return lower + (upper - lower) * std::clamp(frac, 0.0, 1.0);
      }
    }
    return upper_bounds_.back();
  };
  snap.p50 = quantile(0.50);
  snap.p95 = quantile(0.95);
  snap.p99 = quantile(0.99);
  // Interpolated quantiles can't exceed observed extremes.
  snap.p50 = std::clamp(snap.p50, snap.min, snap.max);
  snap.p95 = std::clamp(snap.p95, snap.min, snap.max);
  snap.p99 = std::clamp(snap.p99, snap.min, snap.max);
  return snap;
}

}  // namespace lightnas::util
