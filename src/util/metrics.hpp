#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace lightnas::util {

/// Monotonic event counter, safe for any number of concurrent writers.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-value-wins gauge for levels that go up and down (active workers,
/// breaker state). Same relaxed-atomic discipline as Counter: writers
/// never block, readers see a recent value.
class Gauge {
 public:
  void set(std::int64_t value) {
    value_.store(value, std::memory_order_relaxed);
  }
  void add(std::int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Point-in-time view of a Histogram (see below). Quantiles are
/// estimated by linear interpolation inside the bucket where the rank
/// falls — exact to within one bucket's resolution.
struct HistogramSnapshot {
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double mean() const { return count == 0 ? 0.0 : sum / double(count); }
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;

  /// "n=1234 mean=0.8 p50=0.7 p95=2.1 p99=4.0 max=9.3" (diagnostics).
  std::string to_string(int precision = 3) const;
};

/// Lock-free fixed-bucket histogram for hot-path recording: `record` is
/// one relaxed atomic increment per observation plus min/max CAS loops.
/// Two bucket layouts cover the serving metrics:
///   - geometric: latencies (wide dynamic range, relative resolution)
///   - linear: batch sizes / queue depths (small integer ranges)
/// Values outside [lo, hi] clamp into the first / last bucket.
class Histogram {
 public:
  /// Buckets whose upper bounds grow geometrically from `lo` to `hi`.
  /// `buckets_per_decade` sets relative resolution (12 -> ~21% wide).
  static Histogram geometric(double lo, double hi,
                             std::size_t buckets_per_decade = 12);
  /// `num_buckets` equal-width buckets spanning [lo, hi].
  static Histogram linear(double lo, double hi, std::size_t num_buckets);

  Histogram(const Histogram& other);

  void record(double value);
  HistogramSnapshot snapshot() const;
  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }

 private:
  Histogram(double lo, std::vector<double> upper_bounds);
  std::size_t bucket_index(double value) const;

  double lo_;
  std::vector<double> upper_bounds_;  // ascending; last entry = hi
  std::vector<std::atomic<std::uint64_t>> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};
  std::atomic<double> max_{0.0};
};

}  // namespace lightnas::util
