#include "util/pareto.hpp"

#include <algorithm>
#include <utility>

namespace lightnas::util {

bool dominates(const ParetoPoint& a, const ParetoPoint& b) {
  if (a.cost > b.cost || a.value < b.value) return false;
  return a.cost < b.cost || a.value > b.value;
}

bool ParetoFront::insert(ParetoPoint point) {
  for (const ParetoPoint& incumbent : points_) {
    if (dominates(incumbent, point)) return false;
  }
  points_.erase(std::remove_if(points_.begin(), points_.end(),
                               [&](const ParetoPoint& incumbent) {
                                 return dominates(point, incumbent);
                               }),
                points_.end());
  // Insert before the first strictly-later position so equal (cost,
  // value) pairs keep their insertion order.
  const auto at = std::find_if(
      points_.begin(), points_.end(), [&](const ParetoPoint& incumbent) {
        return incumbent.cost > point.cost ||
               (incumbent.cost == point.cost &&
                incumbent.value < point.value);
      });
  points_.insert(at, std::move(point));
  return true;
}

std::vector<ParetoPoint> non_dominated(std::vector<ParetoPoint> points) {
  ParetoFront front;
  for (ParetoPoint& point : points) front.insert(std::move(point));
  return front.points();
}

}  // namespace lightnas::util
