#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace lightnas::util {

/// One candidate on a cost/value trade-off curve: `cost` is minimized
/// (latency, energy), `value` is maximized (accuracy). `tag` carries an
/// opaque caller label (e.g. the constraint target the point came from).
struct ParetoPoint {
  double cost = 0.0;
  double value = 0.0;
  std::string tag;
};

/// a dominates b when a is no worse on both axes and strictly better on
/// at least one (minimize cost, maximize value).
bool dominates(const ParetoPoint& a, const ParetoPoint& b);

/// Maintains the non-dominated subset of the points inserted so far,
/// kept sorted by ascending cost (ties broken by descending value, then
/// insertion order — deterministic for identical input sequences).
class ParetoFront {
 public:
  /// Returns true when the point joins the front (i.e. no existing point
  /// dominates it); dominated incumbents are evicted. A duplicate of an
  /// existing point (same cost and value) joins the front.
  bool insert(ParetoPoint point);

  const std::vector<ParetoPoint>& points() const { return points_; }
  std::size_t size() const { return points_.size(); }
  bool empty() const { return points_.empty(); }

 private:
  std::vector<ParetoPoint> points_;
};

/// One-shot dominance filter: the non-dominated subset of `points`, in
/// ascending-cost order.
std::vector<ParetoPoint> non_dominated(std::vector<ParetoPoint> points);

}  // namespace lightnas::util
