#include "util/plot.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>

namespace lightnas::util {

AsciiChart::AsciiChart(std::size_t width, std::size_t height)
    : width_(width), height_(height) {
  assert(width >= 8 && height >= 4);
}

void AsciiChart::add_series(std::string name, std::vector<double> values,
                            char glyph) {
  series_.push_back({std::move(name), std::move(values), glyph});
}

void AsciiChart::add_hline(double y, char glyph) {
  hlines_.push_back({y, glyph});
}

std::string AsciiChart::render() const {
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  std::size_t longest = 0;
  for (const Series& s : series_) {
    for (double v : s.values) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    longest = std::max(longest, s.values.size());
  }
  for (const HLine& h : hlines_) {
    lo = std::min(lo, h.y);
    hi = std::max(hi, h.y);
  }
  if (!std::isfinite(lo) || longest == 0) return "(empty chart)\n";
  if (hi - lo < 1e-12) {
    hi = lo + 1.0;  // flat series: give the grid some height
  }
  const double pad = 0.05 * (hi - lo);
  lo -= pad;
  hi += pad;

  std::vector<std::string> grid(height_, std::string(width_, ' '));
  auto row_of = [&](double v) {
    const double frac = (v - lo) / (hi - lo);
    const auto r = static_cast<long>(
        std::lround((1.0 - frac) * static_cast<double>(height_ - 1)));
    return std::clamp<long>(r, 0, static_cast<long>(height_ - 1));
  };

  for (const HLine& h : hlines_) {
    const long r = row_of(h.y);
    for (std::size_t c = 0; c < width_; ++c) {
      grid[static_cast<std::size_t>(r)][c] = h.glyph;
    }
  }
  for (const Series& s : series_) {
    if (s.values.empty()) continue;
    for (std::size_t i = 0; i < s.values.size(); ++i) {
      const std::size_t col =
          longest <= 1
              ? 0
              : i * (width_ - 1) / (longest - 1);
      grid[static_cast<std::size_t>(row_of(s.values[i]))][col] = s.glyph;
    }
  }

  std::ostringstream out;
  char label[32];
  for (std::size_t r = 0; r < height_; ++r) {
    const double y =
        hi - (hi - lo) * static_cast<double>(r) /
                 static_cast<double>(height_ - 1);
    std::snprintf(label, sizeof(label), "%9.2f |", y);
    out << label << grid[r] << '\n';
  }
  out << std::string(11, ' ') << std::string(width_, '-') << '\n';
  out << std::string(11, ' ') << "0" << std::string(width_ - 8, ' ')
      << (longest - 1) << '\n';
  for (const Series& s : series_) {
    out << "  " << s.glyph << " = " << s.name << '\n';
  }
  return out.str();
}

std::string ascii_histogram(const std::vector<double>& values,
                            std::size_t bins, std::size_t max_bar) {
  assert(bins >= 1);
  if (values.empty()) return "(no data)\n";
  const auto [lo_it, hi_it] = std::minmax_element(values.begin(),
                                                  values.end());
  const double lo = *lo_it;
  double hi = *hi_it;
  if (hi - lo < 1e-12) hi = lo + 1.0;

  std::vector<std::size_t> counts(bins, 0);
  for (double v : values) {
    auto b = static_cast<std::size_t>((v - lo) / (hi - lo) *
                                      static_cast<double>(bins));
    if (b >= bins) b = bins - 1;
    ++counts[b];
  }
  const std::size_t peak = *std::max_element(counts.begin(), counts.end());

  std::ostringstream out;
  char label[48];
  for (std::size_t b = 0; b < bins; ++b) {
    const double left = lo + (hi - lo) * static_cast<double>(b) /
                                 static_cast<double>(bins);
    const double right = lo + (hi - lo) * static_cast<double>(b + 1) /
                                  static_cast<double>(bins);
    const std::size_t bar =
        peak == 0 ? 0 : counts[b] * max_bar / peak;
    std::snprintf(label, sizeof(label), "[%8.2f, %8.2f) %5zu |", left,
                  right, counts[b]);
    out << label << std::string(bar, '#') << '\n';
  }
  return out.str();
}

}  // namespace lightnas::util
