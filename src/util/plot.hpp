#pragma once

#include <string>
#include <vector>

namespace lightnas::util {

/// Terminal line chart: renders one or more numeric series into a
/// fixed-size character grid with y-axis labels. Used by the figure
/// benches so the paper's plots are legible directly in the console
/// (the CSVs remain the precise record).
class AsciiChart {
 public:
  /// `width` and `height` are the plot area in characters (axes extra).
  AsciiChart(std::size_t width = 64, std::size_t height = 16);

  /// Add a named series; it will be drawn with the given glyph.
  void add_series(std::string name, std::vector<double> values,
                  char glyph);

  /// Optional horizontal reference line (e.g. the target latency).
  void add_hline(double y, char glyph = '-');

  /// Render the chart (multi-line string, trailing newline included).
  std::string render() const;

 private:
  struct Series {
    std::string name;
    std::vector<double> values;
    char glyph;
  };
  struct HLine {
    double y;
    char glyph;
  };

  std::size_t width_;
  std::size_t height_;
  std::vector<Series> series_;
  std::vector<HLine> hlines_;
};

/// Histogram: bucket `values` into `bins` and render horizontal bars.
std::string ascii_histogram(const std::vector<double>& values,
                            std::size_t bins = 10,
                            std::size_t max_bar = 48);

}  // namespace lightnas::util
