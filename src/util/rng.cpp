#include "util/rng.hpp"

#include <atomic>
#include <cassert>
#include <cmath>
#include <numbers>

namespace lightnas::util {

namespace {

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random bits into the mantissa for a uniform double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  assert(n > 0);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~0ULL - (~0ULL % n);
  std::uint64_t v = next_u64();
  while (v >= limit) v = next_u64();
  return v % n;
}

double Rng::normal() {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = uniform();
  while (u1 <= 1e-300) u1 = uniform();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  have_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

double Rng::gumbel() {
  double u = uniform();
  while (u <= 1e-300) u = uniform();
  return -std::log(-std::log(u));
}

bool Rng::bernoulli(double p) {
  return uniform() < p;
}

std::size_t Rng::categorical(const std::vector<double>& weights) {
  assert(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    assert(w >= 0.0);
    total += w;
  }
  assert(total > 0.0);
  double target = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target <= 0.0) return i;
  }
  return weights.size() - 1;
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  for (std::size_t i = n; i > 1; --i) {
    const std::size_t j = uniform_index(i);
    std::swap(idx[i - 1], idx[j]);
  }
  return idx;
}

Rng Rng::fork() {
  return Rng(next_u64());
}

RngState Rng::state() const {
  RngState out;
  for (std::size_t i = 0; i < 4; ++i) out.s[i] = s_[i];
  out.have_cached_normal = have_cached_normal_;
  out.cached_normal = cached_normal_;
  return out;
}

void Rng::set_state(const RngState& state) {
  for (std::size_t i = 0; i < 4; ++i) s_[i] = state.s[i];
  have_cached_normal_ = state.have_cached_normal;
  cached_normal_ = state.cached_normal;
}

std::size_t this_thread_index() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t index =
      next.fetch_add(1, std::memory_order_relaxed);
  return index;
}

Rng make_thread_rng(std::uint64_t base_seed) {
  // XOR perturbs only the low bits, but Rng seeds through SplitMix64,
  // which diffuses them across the full state.
  return Rng(base_seed ^ static_cast<std::uint64_t>(this_thread_index()));
}

}  // namespace lightnas::util
