#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace lightnas::util {

/// Complete serializable generator state: the xoshiro256** words plus the
/// Box-Muller spare. Restoring it reproduces the stream bit-for-bit —
/// the contract the search checkpoint/resume machinery relies on.
struct RngState {
  std::array<std::uint64_t, 4> s{};
  bool have_cached_normal = false;
  double cached_normal = 0.0;
};

/// Deterministic, seedable pseudo-random number generator.
///
/// Implements xoshiro256** seeded through SplitMix64. We use our own
/// generator rather than std::mt19937 so that results are reproducible
/// bit-for-bit across standard library implementations — every experiment
/// in the benchmark harness is keyed off an explicit seed.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform integer in [0, 2^64).
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_index(std::uint64_t n);

  /// Standard normal via Box-Muller.
  double normal();

  /// Normal with given mean / stddev.
  double normal(double mean, double stddev);

  /// Standard Gumbel(0, 1) sample: -log(-log(U)).
  double gumbel();

  /// Bernoulli trial with probability p of returning true.
  bool bernoulli(double p);

  /// Sample an index from an (unnormalized, non-negative) weight vector.
  std::size_t categorical(const std::vector<double>& weights);

  /// Fisher-Yates shuffle of indices [0, n).
  std::vector<std::size_t> permutation(std::size_t n);

  /// Derive an independent child generator (for parallel streams).
  Rng fork();

  /// Snapshot / restore the full generator state (checkpoint support).
  RngState state() const;
  void set_state(const RngState& state);

 private:
  std::uint64_t s_[4];
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

/// Small dense index of the calling thread: 0 for the first thread that
/// asks, 1 for the second, and so on; stable for the thread's lifetime.
/// With a deterministic thread-spawn order (fixed worker/client counts,
/// as in the serving benches) the assignment is reproducible run-to-run.
std::size_t this_thread_index();

/// Per-thread deterministic generator: Rng(base_seed ^ thread index).
/// Each thread derives an independent stream from one experiment seed
/// without coordination — the multi-threaded counterpart of Rng::fork.
Rng make_thread_rng(std::uint64_t base_seed);

}  // namespace lightnas::util
