#include "util/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace lightnas::util {

double mean(const std::vector<double>& xs) {
  assert(!xs.empty());
  double total = 0.0;
  for (double x : xs) total += x;
  return total / static_cast<double>(xs.size());
}

double variance(const std::vector<double>& xs) {
  assert(!xs.empty());
  const double m = mean(xs);
  double total = 0.0;
  for (double x : xs) total += (x - m) * (x - m);
  return total / static_cast<double>(xs.size());
}

double stddev(const std::vector<double>& xs) {
  return std::sqrt(variance(xs));
}

double min_of(const std::vector<double>& xs) {
  assert(!xs.empty());
  return *std::min_element(xs.begin(), xs.end());
}

double max_of(const std::vector<double>& xs) {
  assert(!xs.empty());
  return *std::max_element(xs.begin(), xs.end());
}

double median(std::vector<double> xs) {
  return percentile(std::move(xs), 50.0);
}

double percentile(std::vector<double> xs, double p) {
  assert(!xs.empty());
  assert(p >= 0.0 && p <= 100.0);
  std::sort(xs.begin(), xs.end());
  const double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

double rmse(const std::vector<double>& pred,
            const std::vector<double>& truth) {
  assert(pred.size() == truth.size());
  assert(!pred.empty());
  double total = 0.0;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    const double d = pred[i] - truth[i];
    total += d * d;
  }
  return std::sqrt(total / static_cast<double>(pred.size()));
}

double mae(const std::vector<double>& pred,
           const std::vector<double>& truth) {
  assert(pred.size() == truth.size());
  assert(!pred.empty());
  double total = 0.0;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    total += std::abs(pred[i] - truth[i]);
  }
  return total / static_cast<double>(pred.size());
}

double mean_bias(const std::vector<double>& pred,
                 const std::vector<double>& truth) {
  assert(pred.size() == truth.size());
  assert(!pred.empty());
  double total = 0.0;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    total += pred[i] - truth[i];
  }
  return total / static_cast<double>(pred.size());
}

double pearson(const std::vector<double>& xs, const std::vector<double>& ys) {
  assert(xs.size() == ys.size());
  assert(xs.size() >= 2);
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  const double denom = std::sqrt(sxx * syy);
  if (denom == 0.0) return 0.0;
  return sxy / denom;
}

double kendall_tau(const std::vector<double>& xs,
                   const std::vector<double>& ys) {
  assert(xs.size() == ys.size());
  assert(xs.size() >= 2);
  const std::size_t n = xs.size();
  long long concordant = 0;
  long long discordant = 0;
  for (std::size_t i = 0; i + 1 < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double dx = xs[i] - xs[j];
      const double dy = ys[i] - ys[j];
      const double prod = dx * dy;
      if (prod > 0.0) {
        ++concordant;
      } else if (prod < 0.0) {
        ++discordant;
      }
      // Ties contribute to neither (tau-a).
    }
  }
  const double pairs = 0.5 * static_cast<double>(n) *
                       static_cast<double>(n - 1);
  return static_cast<double>(concordant - discordant) / pairs;
}

LinearFit linear_fit(const std::vector<double>& xs,
                     const std::vector<double>& ys) {
  assert(xs.size() == ys.size());
  assert(xs.size() >= 2);
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  LinearFit fit;
  if (sxx == 0.0) {
    fit.intercept = my;
    return fit;
  }
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  if (syy > 0.0) {
    double ss_res = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
      const double resid = ys[i] - (fit.slope * xs[i] + fit.intercept);
      ss_res += resid * resid;
    }
    fit.r2 = 1.0 - ss_res / syy;
  }
  return fit;
}

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_);
}

double RunningStats::stddev() const {
  return std::sqrt(variance());
}

}  // namespace lightnas::util
