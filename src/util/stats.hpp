#pragma once

#include <cstddef>
#include <vector>

namespace lightnas::util {

/// Summary statistics and regression-quality metrics used throughout the
/// predictor-evaluation benchmarks (Figures 5 and 8 of the paper).

double mean(const std::vector<double>& xs);
double variance(const std::vector<double>& xs);  // population variance
double stddev(const std::vector<double>& xs);
double min_of(const std::vector<double>& xs);
double max_of(const std::vector<double>& xs);
double median(std::vector<double> xs);  // by value: sorts a copy
double percentile(std::vector<double> xs, double p);  // p in [0, 100]

/// Root-mean-square error between predictions and ground truth.
double rmse(const std::vector<double>& pred, const std::vector<double>& truth);

/// Mean absolute error.
double mae(const std::vector<double>& pred, const std::vector<double>& truth);

/// Mean signed error (pred - truth): exposes systematic bias such as the
/// constant ~11.5 ms gap the paper reports for the latency LUT (Fig. 5).
double mean_bias(const std::vector<double>& pred,
                 const std::vector<double>& truth);

/// Pearson linear correlation coefficient.
double pearson(const std::vector<double>& xs, const std::vector<double>& ys);

/// Kendall rank correlation (tau-a), O(n^2). NAS predictor papers report
/// this because search only needs correct *ranking* of architectures.
double kendall_tau(const std::vector<double>& xs,
                   const std::vector<double>& ys);

struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r2 = 0.0;
};

/// Ordinary least squares fit y = slope * x + intercept.
LinearFit linear_fit(const std::vector<double>& xs,
                     const std::vector<double>& ys);

/// Online accumulator for mean/stddev (Welford).
class RunningStats {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const { return mean_; }
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace lightnas::util
