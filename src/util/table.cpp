#include "util/table.hpp"

#include <algorithm>
#include <cassert>
#include <iomanip>
#include <sstream>

namespace lightnas::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  assert(!header_.empty());
}

void Table::add_row(std::vector<std::string> row) {
  assert(row.size() == header_.size());
  Row r;
  r.cells = std::move(row);
  r.separator_before = pending_separator_;
  pending_separator_ = false;
  rows_.push_back(std::move(r));
}

void Table::add_separator() {
  pending_separator_ = true;
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const Row& row : rows_) {
    for (std::size_t c = 0; c < row.cells.size(); ++c) {
      widths[c] = std::max(widths[c], row.cells[c].size());
    }
  }

  auto print_rule = [&] {
    os << '+';
    for (std::size_t w : widths) {
      os << std::string(w + 2, '-') << '+';
    }
    os << '\n';
  };
  auto print_cells = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << ' ' << std::left << std::setw(static_cast<int>(widths[c]))
         << cells[c] << " |";
    }
    os << '\n';
  };

  print_rule();
  print_cells(header_);
  print_rule();
  for (const Row& row : rows_) {
    if (row.separator_before) print_rule();
    print_cells(row.cells);
  }
  print_rule();
}

std::string Table::to_string() const {
  std::ostringstream oss;
  print(oss);
  return oss.str();
}

std::string fmt_double(double v, int precision) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(precision) << v;
  return oss.str();
}

std::string fmt_ms(double v) {
  return fmt_double(v, 1);
}

std::string fmt_pct(double v) {
  return fmt_double(v, 1);
}

std::string fmt_signed(double v, int precision) {
  std::ostringstream oss;
  oss << std::showpos << std::fixed << std::setprecision(precision) << v;
  return oss.str();
}

}  // namespace lightnas::util
