#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace lightnas::util {

/// Console table printer used by the benchmark harness to emit the same
/// rows the paper's tables report. Columns are sized to fit content; cells
/// are strings so callers control numeric formatting.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);

  /// Insert a horizontal rule before the next added row (used to group
  /// Table-2 style latency bands).
  void add_separator();

  void print(std::ostream& os) const;
  std::string to_string() const;

  std::size_t num_rows() const { return rows_.size(); }

 private:
  struct Row {
    std::vector<std::string> cells;
    bool separator_before = false;
  };

  std::vector<std::string> header_;
  std::vector<Row> rows_;
  bool pending_separator_ = false;
};

/// Format helpers so table cells look consistent across benches.
std::string fmt_double(double v, int precision);
std::string fmt_ms(double v);        // "23.9"
std::string fmt_pct(double v);       // "75.5"
std::string fmt_signed(double v, int precision);  // "+0.4" / "-1.2"

}  // namespace lightnas::util
