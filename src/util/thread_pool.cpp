#include "util/thread_pool.hpp"

#include <cassert>
#include <utility>

namespace lightnas::util {

ThreadPool::ThreadPool(std::size_t num_threads) {
  assert(num_threads > 0);
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  task_ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    assert(!stopping_);
    tasks_.push_back(std::move(task));
  }
  task_ready_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  all_idle_.wait(lock, [this] { return tasks_.empty() && active_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_ready_.wait(lock,
                       [this] { return stopping_ || !tasks_.empty(); });
      // Drain remaining tasks even when stopping: destruction waits for
      // everything already submitted.
      if (tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (tasks_.empty() && active_ == 0) all_idle_.notify_all();
    }
  }
}

}  // namespace lightnas::util
