#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace lightnas::util {

/// Fixed-size pool of worker threads draining a FIFO task queue.
///
/// Deliberately small: submit / wait_idle / join-on-destruction is all
/// the serving layer and the load generators need. Tasks are plain
/// std::function<void()>; exceptions escaping a task terminate the
/// process (workers do not swallow them silently), so tasks must handle
/// their own failures — the same contract as std::thread.
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads);
  /// Joins all workers; pending tasks are still executed first.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task. Never blocks (the queue is unbounded — backpressure
  /// belongs to the serving queue, not the pool).
  void submit(std::function<void()> task);

  /// Block until the queue is empty and every worker is idle.
  void wait_idle();

  std::size_t size() const { return workers_.size(); }

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable task_ready_;
  std::condition_variable all_idle_;
  std::deque<std::function<void()>> tasks_;
  std::size_t active_ = 0;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace lightnas::util
