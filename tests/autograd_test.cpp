#include <gtest/gtest.h>

#include <cmath>

#include "nn/autograd.hpp"
#include "nn/gradcheck.hpp"
#include "nn/modules.hpp"
#include "nn/ops.hpp"
#include "util/rng.hpp"

namespace lightnas::nn {
namespace {

using ops::add;
using ops::add_bias;
using ops::add_scalar;
using ops::binarize_rows_ste;
using ops::detach;
using ops::matmul;
using ops::mean_all;
using ops::mse_loss;
using ops::mul;
using ops::mul_scalar;
using ops::relu;
using ops::reshape;
using ops::row_softmax;
using ops::scale;
using ops::select;
using ops::sigmoid;
using ops::slice_rows;
using ops::softmax_cross_entropy;
using ops::sub;
using ops::sum_all;
using ops::tanh_op;
using ops::vstack;

VarPtr random_leaf(std::size_t r, std::size_t c, std::uint64_t seed) {
  util::Rng rng(seed);
  return make_leaf(Tensor::randn(r, c, rng));
}

TEST(Autograd, EnsureGradTracksValueReshapeAndResize) {
  VarPtr v = make_leaf(Tensor::zeros(2, 3));
  v->ensure_grad();
  v->grad.fill(7.0f);

  // Same element count, different shape: grad must follow the value's
  // shape (and restart at zero), not keep serving the stale 2x3 buffer.
  v->value = Tensor::zeros(3, 2);
  v->ensure_grad();
  EXPECT_EQ(v->grad.rows(), 3u);
  EXPECT_EQ(v->grad.cols(), 2u);
  EXPECT_FLOAT_EQ(v->grad.abs_max(), 0.0f);

  // Different element count: grad must be re-allocated to match.
  v->grad.fill(7.0f);
  v->value = Tensor::zeros(4, 5);
  v->ensure_grad();
  EXPECT_EQ(v->grad.rows(), 4u);
  EXPECT_EQ(v->grad.cols(), 5u);
  EXPECT_EQ(v->grad.size(), 20u);
  EXPECT_FLOAT_EQ(v->grad.abs_max(), 0.0f);

  // Unchanged shape: ensure_grad must NOT clear accumulated gradients.
  v->grad.fill(2.0f);
  v->ensure_grad();
  EXPECT_FLOAT_EQ(v->grad.abs_max(), 2.0f);
}

TEST(Autograd, BackwardRequiresScalarRoot) {
  VarPtr x = random_leaf(1, 1, 1);
  VarPtr y = scale(x, 2.0);
  backward(y);
  EXPECT_FLOAT_EQ(x->grad.item(), 2.0f);
}

TEST(Autograd, GradientsAccumulateAcrossBackward) {
  VarPtr x = random_leaf(1, 1, 2);
  backward(scale(x, 1.0));
  backward(scale(x, 1.0));
  EXPECT_FLOAT_EQ(x->grad.item(), 2.0f);
  x->zero_grad();
  EXPECT_FLOAT_EQ(x->grad.item(), 0.0f);
}

TEST(Autograd, DiamondGraphAccumulates) {
  VarPtr x = random_leaf(1, 1, 3);
  // y = x*2 + x*3 => dy/dx = 5
  VarPtr y = add(scale(x, 2.0), scale(x, 3.0));
  backward(y);
  EXPECT_FLOAT_EQ(x->grad.item(), 5.0f);
}

TEST(Autograd, GraphSizeCountsNodes) {
  VarPtr x = random_leaf(2, 2, 4);
  VarPtr y = relu(scale(x, 1.0));
  EXPECT_EQ(graph_size(sum_all(y)), 4u);  // x, scale, relu, sum
}

TEST(Autograd, DetachStopsGradient) {
  VarPtr x = random_leaf(1, 1, 5);
  VarPtr y = mul(detach(x), x);  // d/dx = detach(x) only
  backward(y);
  EXPECT_FLOAT_EQ(x->grad.item(), x->value.item());
}

// ---- finite-difference checks for every op -----------------------------

TEST(GradCheck, MatmulBothOperands) {
  VarPtr a = random_leaf(3, 4, 10);
  VarPtr b = random_leaf(4, 2, 11);
  auto loss = [&] { return sum_all(matmul(a, b)); };
  EXPECT_TRUE(gradcheck(loss, a).passed);
  EXPECT_TRUE(gradcheck(loss, b).passed);
}

TEST(GradCheck, AddSubMul) {
  VarPtr a = random_leaf(2, 3, 12);
  VarPtr b = random_leaf(2, 3, 13);
  EXPECT_TRUE(gradcheck([&] { return sum_all(add(a, b)); }, a).passed);
  EXPECT_TRUE(gradcheck([&] { return sum_all(sub(a, b)); }, b).passed);
  EXPECT_TRUE(gradcheck([&] { return sum_all(mul(a, b)); }, a).passed);
  EXPECT_TRUE(gradcheck([&] { return sum_all(mul(a, b)); }, b).passed);
}

TEST(GradCheck, AddBias) {
  VarPtr x = random_leaf(3, 4, 14);
  VarPtr bias = random_leaf(1, 4, 15);
  auto loss = [&] { return mean_all(add_bias(x, bias)); };
  EXPECT_TRUE(gradcheck(loss, x).passed);
  EXPECT_TRUE(gradcheck(loss, bias).passed);
}

TEST(GradCheck, ScaleAndAddScalar) {
  VarPtr x = random_leaf(2, 2, 16);
  EXPECT_TRUE(gradcheck([&] { return sum_all(scale(x, -1.7)); }, x).passed);
  EXPECT_TRUE(
      gradcheck([&] { return sum_all(add_scalar(x, 3.0)); }, x).passed);
}

TEST(GradCheck, MulScalarBothInputs) {
  VarPtr x = random_leaf(2, 3, 17);
  VarPtr s = random_leaf(1, 1, 18);
  auto loss = [&] { return sum_all(mul_scalar(x, s)); };
  EXPECT_TRUE(gradcheck(loss, x).passed);
  EXPECT_TRUE(gradcheck(loss, s).passed);
}

TEST(GradCheck, Activations) {
  VarPtr x = random_leaf(3, 3, 19);
  // Shift away from the ReLU kink so finite differences are clean.
  for (auto& v : x->value.data()) {
    if (std::abs(v) < 0.05f) v += 0.1f;
  }
  EXPECT_TRUE(gradcheck([&] { return sum_all(relu(x)); }, x).passed);
  EXPECT_TRUE(gradcheck([&] { return sum_all(sigmoid(x)); }, x).passed);
  EXPECT_TRUE(gradcheck([&] { return sum_all(tanh_op(x)); }, x).passed);
}

TEST(GradCheck, RowSoftmax) {
  VarPtr x = random_leaf(2, 5, 20);
  VarPtr weights = make_const(Tensor::from_rows(
      {{0.3f, -1.0f, 2.0f, 0.1f, 0.7f}, {1.0f, 0.2f, -0.5f, 0.9f, 0.0f}}));
  auto loss = [&] { return sum_all(mul(row_softmax(x), weights)); };
  EXPECT_TRUE(gradcheck(loss, x).passed);
}

TEST(GradCheck, SelectReshapeSlice) {
  VarPtr x = random_leaf(3, 4, 21);
  EXPECT_TRUE(gradcheck([&] { return select(x, 1, 2); }, x).passed);
  EXPECT_TRUE(
      gradcheck([&] { return sum_all(scale(reshape(x, 2, 6), 2.0)); }, x)
          .passed);
  EXPECT_TRUE(
      gradcheck([&] { return sum_all(slice_rows(x, 1, 2)); }, x).passed);
}

TEST(GradCheck, VstackSplitsGradient) {
  VarPtr a = random_leaf(1, 3, 22);
  VarPtr b = random_leaf(2, 3, 23);
  auto loss = [&] {
    return sum_all(scale(vstack({a, b}), 3.0));
  };
  EXPECT_TRUE(gradcheck(loss, a).passed);
  EXPECT_TRUE(gradcheck(loss, b).passed);
}

TEST(GradCheck, SoftmaxCrossEntropy) {
  VarPtr logits = random_leaf(4, 3, 24);
  const std::vector<std::size_t> labels{0, 2, 1, 2};
  auto loss = [&] { return softmax_cross_entropy(logits, labels); };
  EXPECT_TRUE(gradcheck(loss, logits).passed);
}

TEST(GradCheck, MseLoss) {
  VarPtr pred = random_leaf(3, 2, 25);
  VarPtr target = random_leaf(3, 2, 26);
  EXPECT_TRUE(gradcheck([&] { return mse_loss(pred, target); }, pred).passed);
  EXPECT_TRUE(
      gradcheck([&] { return mse_loss(pred, target); }, target).passed);
}

TEST(GradCheck, MlpEndToEnd) {
  util::Rng rng(27);
  const Mlp mlp({4, 8, 3}, rng);
  VarPtr x = random_leaf(5, 4, 28);
  const std::vector<std::size_t> labels{0, 1, 2, 0, 1};
  auto loss = [&] {
    return softmax_cross_entropy(mlp.forward(x), labels);
  };
  EXPECT_TRUE(gradcheck(loss, x).passed);
  // Also check one weight matrix.
  EXPECT_TRUE(gradcheck(loss, mlp.layers()[0].weight()).passed);
}

// ---- op value semantics -------------------------------------------------

TEST(Ops, ReluClampsNegatives) {
  VarPtr x = make_leaf(Tensor::from_rows({{-1.0f, 2.0f}}));
  EXPECT_FLOAT_EQ(relu(x)->value.at(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(relu(x)->value.at(0, 1), 2.0f);
}

TEST(Ops, RowSoftmaxRowsSumToOne) {
  VarPtr x = random_leaf(3, 7, 29);
  const VarPtr s = row_softmax(x);
  for (std::size_t r = 0; r < 3; ++r) {
    float total = 0.0f;
    for (std::size_t c = 0; c < 7; ++c) total += s->value.at(r, c);
    EXPECT_NEAR(total, 1.0f, 1e-5f);
  }
}

TEST(Ops, BinarizeRowsProducesOneHot) {
  VarPtr x = make_leaf(
      Tensor::from_rows({{0.2f, 0.5f, 0.3f}, {0.9f, 0.05f, 0.05f}}));
  const VarPtr b = binarize_rows_ste(x);
  EXPECT_FLOAT_EQ(b->value.at(0, 1), 1.0f);
  EXPECT_FLOAT_EQ(b->value.at(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(b->value.at(1, 0), 1.0f);
  // Straight-through: gradient passes unchanged.
  backward(sum_all(scale(b, 2.0)));
  for (std::size_t i = 0; i < x->grad.size(); ++i) {
    EXPECT_FLOAT_EQ(x->grad[i], 2.0f);
  }
}

TEST(Ops, SoftmaxCrossEntropyKnownValue) {
  // Uniform logits over 4 classes => loss = log(4).
  VarPtr logits = make_leaf(Tensor::zeros(2, 4));
  const VarPtr loss = softmax_cross_entropy(logits, {1, 3});
  EXPECT_NEAR(loss->value.item(), std::log(4.0f), 1e-5f);
}

TEST(Ops, AccuracyCountsArgmaxHits) {
  const Tensor logits =
      Tensor::from_rows({{0.9f, 0.1f}, {0.2f, 0.8f}, {0.6f, 0.4f}});
  EXPECT_DOUBLE_EQ(ops::accuracy(logits, {0, 1, 1}), 2.0 / 3.0);
}

TEST(Modules, LinearShapesAndParamCount) {
  util::Rng rng(31);
  const Linear fc(6, 4, rng);
  EXPECT_EQ(fc.num_parameters(), 6u * 4u + 4u);
  VarPtr x = random_leaf(2, 6, 32);
  EXPECT_EQ(fc.forward(x)->value.cols(), 4u);
}

TEST(Modules, ResidualBlockPreservesShapeAndGates) {
  util::Rng rng(33);
  const ResidualBlock block(5, 9, rng, "b", 0.5);
  VarPtr x = random_leaf(3, 5, 34);
  const VarPtr y = block.forward(x);
  EXPECT_TRUE(y->value.same_shape(x->value));

  // A gate valued exactly 1 must not change the output.
  VarPtr gate = make_leaf(Tensor::scalar(1.0f));
  const VarPtr gated = block.forward_gated(x, gate);
  for (std::size_t i = 0; i < y->value.size(); ++i) {
    EXPECT_NEAR(gated->value[i], y->value[i], 1e-6f);
  }
  // And its gradient is the branch contribution, generally non-zero.
  backward(sum_all(gated));
  EXPECT_NE(gate->grad.item(), 0.0f);
}

TEST(Modules, ZeroGradClearsAllParameters) {
  util::Rng rng(35);
  const Mlp mlp({3, 5, 2}, rng);
  VarPtr x = random_leaf(2, 3, 36);
  backward(mean_all(mlp.forward(x)));
  mlp.zero_grad();
  for (const VarPtr& p : mlp.parameters()) {
    for (std::size_t i = 0; i < p->grad.size(); ++i) {
      EXPECT_FLOAT_EQ(p->grad[i], 0.0f);
    }
  }
}

}  // namespace
}  // namespace lightnas::nn
