#include <gtest/gtest.h>

#include "baselines/evolution.hpp"
#include "baselines/fbnet.hpp"
#include "baselines/proxyless.hpp"
#include "baselines/random_search.hpp"
#include "baselines/rl_search.hpp"
#include "baselines/scaling.hpp"
#include "eval/accuracy_model.hpp"
#include "predictors/lut_predictor.hpp"
#include "predictors/oracle.hpp"

namespace lightnas::baselines {
namespace {

class BaselineTest : public ::testing::Test {
 protected:
  space::SearchSpace space_ = space::SearchSpace::fbnet_xavier();
  hw::CostModel model_{hw::DeviceProfile::jetson_xavier_maxn(), 8};
  predictors::SimulatorOracle oracle_{space_, model_,
                                      predictors::Metric::kLatencyMs};
  eval::AccuracyModel accuracy_{space_};

  ScoreFn score_fn() {
    return [this](const space::Architecture& arch) {
      return accuracy_.top1(arch);
    };
  }
};

TEST_F(BaselineTest, RandomSearchRespectsConstraint) {
  RandomSearchConfig config;
  config.num_samples = 1500;
  config.target = 22.0;
  config.slack = 2.0;
  util::Rng rng(3);
  const RandomSearchResult result =
      random_search(space_, oracle_, score_fn(), config, rng);
  ASSERT_TRUE(result.best.has_value());
  const double lat = model_.network_latency_ms(space_, *result.best);
  EXPECT_LE(lat, config.target + 1e-9);
  EXPECT_GE(lat, config.target - config.slack - 1e-9);
  EXPECT_GT(result.num_feasible, 0u);
  EXPECT_EQ(result.num_evaluated, result.num_feasible);
}

TEST_F(BaselineTest, RandomSearchInfeasibleTargetGivesNoResult) {
  RandomSearchConfig config;
  config.num_samples = 200;
  config.target = 2.0;  // below the all-skip floor
  config.slack = 1.0;
  util::Rng rng(4);
  const RandomSearchResult result =
      random_search(space_, oracle_, score_fn(), config, rng);
  EXPECT_FALSE(result.best.has_value());
  EXPECT_EQ(result.num_feasible, 0u);
}

TEST_F(BaselineTest, EvolutionImprovesOverGenerationsAndIsFeasible) {
  EvolutionConfig config;
  config.population = 24;
  config.generations = 12;
  config.children = 12;
  config.target = 24.0;
  config.slack = 2.0;
  config.seed = 5;
  const EvolutionResult result =
      evolutionary_search(space_, oracle_, score_fn(), config);
  const double lat = model_.network_latency_ms(space_, result.best);
  EXPECT_LE(lat, config.target + 1e-9);
  EXPECT_GE(lat, config.target - config.slack - 1e-9);
  ASSERT_EQ(result.best_score_per_generation.size(), 12u);
  EXPECT_GE(result.best_score_per_generation.back(),
            result.best_score_per_generation.front());
  // Evolution under the budget beats the average random feasible arch.
  EXPECT_GT(result.best_score, accuracy_.top1(space_.mobilenet_v2_like()));
}

TEST_F(BaselineTest, EvolutionBestScoreMonotonePerGeneration) {
  EvolutionConfig config;
  config.population = 16;
  config.generations = 8;
  config.children = 8;
  config.target = 22.0;
  config.seed = 6;
  const EvolutionResult result =
      evolutionary_search(space_, oracle_, score_fn(), config);
  for (std::size_t g = 1; g < result.best_score_per_generation.size(); ++g) {
    EXPECT_GE(result.best_score_per_generation[g],
              result.best_score_per_generation[g - 1]);
  }
}

TEST_F(BaselineTest, RlSearchFindsFeasibleArchitecture) {
  RlSearchConfig config;
  config.iterations = 60;
  config.batch = 6;
  config.target = 24.0;
  config.seed = 7;
  const RlSearchResult result =
      rl_search(space_, oracle_, score_fn(), config);
  EXPECT_EQ(result.num_evaluated, 60u * 6u);
  EXPECT_LE(model_.network_latency_ms(space_, result.best),
            config.target + 1.0);
  ASSERT_FALSE(result.mean_reward_per_iteration.empty());
  // Policy learning: late mean reward should beat the early one.
  const double early = result.mean_reward_per_iteration[4];
  const double late = result.mean_reward_per_iteration.back();
  EXPECT_GT(late, early * 0.95);
}

TEST_F(BaselineTest, FbNetLambdaExtremesBracketLatency) {
  nn::SyntheticTaskConfig task_config;
  task_config.train_size = 512;
  task_config.valid_size = 256;
  const nn::SyntheticTask task = nn::make_synthetic_task(task_config);

  // A linear differentiable predictor over the same space.
  hw::HardwareSimulator device(hw::DeviceProfile::jetson_xavier_maxn(), 8,
                               13);
  const predictors::LutPredictor lut(space_, device);

  FbNetConfig config;
  config.epochs = 8;
  config.warmup_epochs = 2;
  config.w_steps_per_epoch = 3;
  config.alpha_steps_per_epoch = 3;
  config.batch_size = 32;
  config.seed = 11;

  config.lambda = 0.0;
  FbNetSearch accuracy_only(space_, lut, task, core::SupernetConfig{},
                            config);
  const core::SearchResult loose = accuracy_only.search();

  config.lambda = 1.0;  // the paper's collapse regime (Fig 3)
  FbNetSearch latency_heavy(space_, lut, task, core::SupernetConfig{},
                            config);
  const core::SearchResult tight = latency_heavy.search();

  const double loose_lat =
      model_.network_latency_ms(space_, loose.architecture);
  const double tight_lat =
      model_.network_latency_ms(space_, tight.architecture);
  EXPECT_LT(tight_lat, loose_lat);
  // lambda = 1 collapses towards SkipConnect (Fig 3's cliff).
  EXPECT_LT(tight.architecture.effective_depth(space_), 8u);
}

TEST_F(BaselineTest, FbNetTraceCarriesFixedLambda) {
  nn::SyntheticTaskConfig task_config;
  task_config.train_size = 256;
  task_config.valid_size = 128;
  const nn::SyntheticTask task = nn::make_synthetic_task(task_config);
  hw::HardwareSimulator device(hw::DeviceProfile::jetson_xavier_maxn(), 8,
                               17);
  const predictors::LutPredictor lut(space_, device);
  FbNetConfig config;
  config.epochs = 4;
  config.warmup_epochs = 1;
  config.w_steps_per_epoch = 2;
  config.alpha_steps_per_epoch = 2;
  config.batch_size = 32;
  config.lambda = 0.123;
  FbNetSearch search(space_, lut, task, core::SupernetConfig{}, config);
  const core::SearchResult result = search.search();
  for (const core::SearchEpochStats& stats : result.trace) {
    EXPECT_DOUBLE_EQ(stats.lambda, 0.123);
  }
  EXPECT_DOUBLE_EQ(result.final_lambda, 0.123);
}

TEST_F(BaselineTest, ProxylessTwoPathSearchRuns) {
  nn::SyntheticTaskConfig task_config;
  task_config.train_size = 512;
  task_config.valid_size = 256;
  const nn::SyntheticTask task = nn::make_synthetic_task(task_config);
  hw::HardwareSimulator device(hw::DeviceProfile::jetson_xavier_maxn(), 8,
                               23);
  const predictors::LutPredictor lut(space_, device);

  ProxylessConfig config;
  config.epochs = 8;
  config.warmup_epochs = 2;
  config.w_steps_per_epoch = 3;
  config.alpha_steps_per_epoch = 3;
  config.batch_size = 32;
  config.seed = 5;
  ProxylessSearch search(space_, lut, task, core::SupernetConfig{}, config);
  const core::SearchResult result = search.search();
  EXPECT_EQ(result.trace.size(), 8u);
  EXPECT_EQ(result.architecture.num_layers(), space_.num_layers());
  EXPECT_EQ(result.architecture.op_at(0), 0u);  // fixed layer untouched
  EXPECT_GT(result.final_predicted_cost, 0.0);
}

TEST_F(BaselineTest, ProxylessLambdaExtremesBracketLatency) {
  nn::SyntheticTaskConfig task_config;
  task_config.train_size = 512;
  task_config.valid_size = 256;
  const nn::SyntheticTask task = nn::make_synthetic_task(task_config);
  hw::HardwareSimulator device(hw::DeviceProfile::jetson_xavier_maxn(), 8,
                               29);
  const predictors::LutPredictor lut(space_, device);

  ProxylessConfig config;
  config.epochs = 10;
  config.warmup_epochs = 2;
  config.w_steps_per_epoch = 3;
  config.alpha_steps_per_epoch = 4;
  config.batch_size = 32;
  config.seed = 7;

  config.lambda = 0.0;
  ProxylessSearch loose_search(space_, lut, task, core::SupernetConfig{},
                               config);
  const double loose = model_.network_latency_ms(
      space_, loose_search.search().architecture);

  config.lambda = 1.0;
  ProxylessSearch tight_search(space_, lut, task, core::SupernetConfig{},
                               config);
  const double tight = model_.network_latency_ms(
      space_, tight_search.search().architecture);
  EXPECT_LT(tight, loose);
}

TEST_F(BaselineTest, WidthScalingMonotoneInLatency) {
  const auto models =
      width_scaled_mobilenets({0.5, 0.75, 1.0, 1.25}, model_);
  ASSERT_EQ(models.size(), 4u);
  for (std::size_t i = 1; i < models.size(); ++i) {
    EXPECT_GT(models[i].latency_ms, models[i - 1].latency_ms);
    EXPECT_GT(models[i].macs, models[i - 1].macs);
  }
  EXPECT_EQ(models[2].label(), "MBV2-w1-r224");
}

TEST_F(BaselineTest, ResolutionScalingMonotoneInLatency) {
  const auto models =
      resolution_scaled_mobilenets({160, 192, 224, 256}, model_);
  ASSERT_EQ(models.size(), 4u);
  for (std::size_t i = 1; i < models.size(); ++i) {
    EXPECT_GT(models[i].latency_ms, models[i - 1].latency_ms);
  }
}

}  // namespace
}  // namespace lightnas::baselines
