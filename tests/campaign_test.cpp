#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "campaign/campaign.hpp"
#include "campaign/serialize.hpp"
#include "core/lightnas.hpp"
#include "hw/cost_model.hpp"
#include "io/serialize.hpp"
#include "nn/ops.hpp"
#include "nn/parallel.hpp"
#include "util/pareto.hpp"

namespace lightnas::campaign {
namespace {

/// Noise-free linear predictor (same construction as the core tests):
/// the orchestrator under test must be deterministic, so the predictor
/// is too.
class LinearOracle : public predictors::HardwarePredictor {
 public:
  LinearOracle(const space::SearchSpace& space, const hw::CostModel& model)
      : space_(&space) {
    weights_.resize(space.num_layers() * space.num_ops());
    const space::Architecture base =
        space.uniform_architecture(space.ops().skip_index());
    base_ = model.network_latency_ms(space, base);
    for (std::size_t l = 0; l < space.num_layers(); ++l) {
      for (std::size_t k = 0; k < space.num_ops(); ++k) {
        space::Architecture probe = base;
        if (space.layers()[l].searchable) probe.set_op(l, k);
        weights_[l * space.num_ops() + k] =
            model.network_latency_ms(space, probe) - base_;
      }
    }
  }
  double predict(const space::Architecture& arch) const override {
    const auto enc = arch.encode_one_hot(space_->num_ops());
    double total = base_;
    for (std::size_t i = 0; i < enc.size(); ++i) total += enc[i] * weights_[i];
    return total;
  }
  nn::VarPtr forward_var(const nn::VarPtr& encoding) const override {
    nn::Tensor w(weights_.size(), 1);
    for (std::size_t i = 0; i < weights_.size(); ++i) {
      w[i] = static_cast<float>(weights_[i]);
    }
    return nn::ops::add_scalar(
        nn::ops::matmul(encoding, nn::make_const(std::move(w))), base_);
  }
  std::string unit() const override { return "ms"; }

 private:
  const space::SearchSpace* space_;
  std::vector<double> weights_;
  double base_ = 0.0;
};

class CampaignTest : public ::testing::Test {
 protected:
  CampaignTest()
      : space_(space::SearchSpace::fbnet_xavier()),
        model_(hw::DeviceProfile::jetson_xavier_maxn(), 8),
        task_(nn::make_synthetic_task(tiny_task())),
        predictor_(space_, model_) {}

  static CampaignConfig tiny_config() {
    CampaignConfig config;
    config.targets = {20.0, 24.0, 28.0};
    config.search.epochs = 8;
    config.search.warmup_epochs = 3;
    config.search.w_steps_per_epoch = 4;
    config.search.alpha_steps_per_epoch = 4;
    config.search.batch_size = 32;
    config.search.seed = 2;
    return config;
  }
  static nn::SyntheticTaskConfig tiny_task() {
    nn::SyntheticTaskConfig config;
    config.train_size = 512;
    config.valid_size = 256;
    return config;
  }

  CampaignOrchestrator make_orchestrator(const CampaignConfig& config) {
    return CampaignOrchestrator(space_, predictor_, task_,
                                core::SupernetConfig{}, config);
  }

  /// Asserts every observable of two campaigns matches bit-for-bit,
  /// including the full per-target trajectories.
  static void expect_identical(const CampaignResult& a,
                               const CampaignResult& b) {
    EXPECT_EQ(a.weight_updates, b.weight_updates);
    EXPECT_EQ(a.alpha_updates, b.alpha_updates);
    ASSERT_EQ(a.jobs.size(), b.jobs.size());
    for (std::size_t j = 0; j < a.jobs.size(); ++j) {
      SCOPED_TRACE("job " + std::to_string(j));
      EXPECT_EQ(a.jobs[j].state, b.jobs[j].state);
      EXPECT_EQ(a.jobs[j].architecture.ops(), b.jobs[j].architecture.ops());
      EXPECT_EQ(a.jobs[j].predicted_cost, b.jobs[j].predicted_cost);
      EXPECT_EQ(a.jobs[j].gap, b.jobs[j].gap);
      EXPECT_EQ(a.jobs[j].valid_accuracy, b.jobs[j].valid_accuracy);
      EXPECT_EQ(a.jobs[j].on_front, b.jobs[j].on_front);
      EXPECT_EQ(a.jobs[j].alpha_updates, b.jobs[j].alpha_updates);
      EXPECT_EQ(a.jobs[j].rollbacks, b.jobs[j].rollbacks);
      ASSERT_EQ(a.jobs[j].trace.size(), b.jobs[j].trace.size());
      for (std::size_t e = 0; e < a.jobs[j].trace.size(); ++e) {
        SCOPED_TRACE("epoch " + std::to_string(e));
        const core::SearchEpochStats& sa = a.jobs[j].trace[e];
        const core::SearchEpochStats& sb = b.jobs[j].trace[e];
        EXPECT_EQ(sa.derived.ops(), sb.derived.ops());
        EXPECT_EQ(sa.lambda, sb.lambda);
        EXPECT_EQ(sa.predicted_cost, sb.predicted_cost);
        EXPECT_EQ(sa.sampled_cost_mean, sb.sampled_cost_mean);
        EXPECT_EQ(sa.valid_loss, sb.valid_loss);
        EXPECT_EQ(sa.valid_accuracy, sb.valid_accuracy);
      }
    }
    ASSERT_EQ(a.front.size(), b.front.size());
    for (std::size_t i = 0; i < a.front.size(); ++i) {
      EXPECT_EQ(a.front[i].cost, b.front[i].cost);
      EXPECT_EQ(a.front[i].value, b.front[i].value);
      EXPECT_EQ(a.front[i].tag, b.front[i].tag);
    }
  }

  space::SearchSpace space_;
  hw::CostModel model_;
  nn::SyntheticTask task_;
  LinearOracle predictor_;
};

TEST_F(CampaignTest, RunsEveryTargetAndBuildsAFront) {
  const CampaignConfig config = tiny_config();
  const CampaignResult result = make_orchestrator(config).run();

  ASSERT_EQ(result.jobs.size(), config.targets.size());
  EXPECT_EQ(result.completed_epochs, config.search.epochs);
  // ONE shared w-update per step, regardless of K.
  EXPECT_EQ(result.weight_updates,
            config.search.epochs * config.search.w_steps_per_epoch);
  std::size_t alpha_sum = 0;
  for (std::size_t j = 0; j < result.jobs.size(); ++j) {
    SCOPED_TRACE("job " + std::to_string(j));
    const JobResult& job = result.jobs[j];
    EXPECT_EQ(job.job_id, j);
    EXPECT_EQ(job.target, config.targets[j]);
    EXPECT_FALSE(job.trace.empty());
    EXPECT_GT(job.alpha_updates, 0u);
    EXPECT_GT(job.predicted_cost, 0.0);
    alpha_sum += job.alpha_updates;
  }
  EXPECT_EQ(result.alpha_updates, alpha_sum);

  // The front is the non-dominated subset, sorted by cost, and exactly
  // the jobs flagged on_front.
  ASSERT_FALSE(result.front.empty());
  for (std::size_t i = 0; i + 1 < result.front.size(); ++i) {
    EXPECT_LE(result.front[i].cost, result.front[i + 1].cost);
    // Paying more cost must buy more value, or the point is dominated.
    EXPECT_LE(result.front[i].value, result.front[i + 1].value);
  }
  std::size_t flagged = 0;
  for (const JobResult& job : result.jobs) {
    if (job.on_front) ++flagged;
  }
  EXPECT_EQ(flagged, result.front.size());
}

TEST_F(CampaignTest, SameSeedReproducesBitExactly) {
  const CampaignResult a = make_orchestrator(tiny_config()).run();
  const CampaignResult b = make_orchestrator(tiny_config()).run();
  expect_identical(a, b);
}

TEST_F(CampaignTest, ResumeReproducesUninterruptedCampaign) {
  const CampaignResult full = make_orchestrator(tiny_config()).run();

  // Kill the campaign after epoch 4, keeping only the last checkpoint —
  // the simulated power cut.
  constexpr std::size_t kKillAt = 4;
  std::optional<CampaignCheckpoint> saved;
  CampaignHooks hooks;
  hooks.on_checkpoint = [&](const CampaignCheckpoint& ck) { saved = ck; };
  hooks.should_stop = [](std::size_t done) { return done >= kKillAt; };
  const CampaignResult partial = make_orchestrator(tiny_config()).run(hooks);
  EXPECT_TRUE(partial.interrupted);
  ASSERT_TRUE(saved.has_value());
  ASSERT_EQ(saved->next_epoch, kKillAt);

  CampaignHooks resume;
  resume.resume = &*saved;
  const CampaignResult resumed = make_orchestrator(tiny_config()).run(resume);
  EXPECT_TRUE(resumed.resumed);
  EXPECT_EQ(resumed.resumed_from_epoch, kKillAt);
  expect_identical(full, resumed);
}

TEST_F(CampaignTest, ResumeThroughJsonFileIsStillExact) {
  const CampaignResult full = make_orchestrator(tiny_config()).run();

  const std::string path = (std::filesystem::temp_directory_path() /
                            "lightnas_campaign_ck_test.json")
                               .string();
  CampaignHooks hooks;
  hooks.checkpoint_every = 3;
  hooks.on_checkpoint = [&](const CampaignCheckpoint& ck) {
    save_campaign_checkpoint(path, ck);
  };
  hooks.should_stop = [](std::size_t done) { return done >= 3; };
  (void)make_orchestrator(tiny_config()).run(hooks);
  ASSERT_TRUE(std::filesystem::exists(path));
  // Atomic write: the temp file never survives a successful save.
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));

  const CampaignCheckpoint loaded = load_campaign_checkpoint(path);
  EXPECT_EQ(loaded.next_epoch, 3u);
  CampaignHooks resume;
  resume.resume = &loaded;
  const CampaignResult resumed = make_orchestrator(tiny_config()).run(resume);
  expect_identical(full, resumed);
  std::filesystem::remove(path);
}

TEST_F(CampaignTest, CheckpointJsonRoundTripPreservesState) {
  std::optional<CampaignCheckpoint> saved;
  CampaignHooks hooks;
  hooks.on_checkpoint = [&](const CampaignCheckpoint& ck) { saved = ck; };
  hooks.should_stop = [](std::size_t done) { return done >= 5; };
  (void)make_orchestrator(tiny_config()).run(hooks);
  ASSERT_TRUE(saved.has_value());

  const io::Json json =
      io::Json::parse(campaign_checkpoint_to_json(*saved).dump());
  const CampaignCheckpoint back = campaign_checkpoint_from_json(json);
  EXPECT_EQ(back.seed, saved->seed);
  EXPECT_EQ(back.next_epoch, saved->next_epoch);
  EXPECT_EQ(back.targets, saved->targets);
  EXPECT_EQ(back.w_step_counter, saved->w_step_counter);
  EXPECT_EQ(back.weight_updates, saved->weight_updates);
  EXPECT_EQ(back.rng.s, saved->rng.s);
  EXPECT_EQ(back.data_rng.s, saved->data_rng.s);
  EXPECT_EQ(back.train_batcher.order, saved->train_batcher.order);
  ASSERT_EQ(back.supernet_weights.size(), saved->supernet_weights.size());
  for (std::size_t i = 0; i < back.supernet_weights.size(); ++i) {
    ASSERT_EQ(back.supernet_weights[i].data(),
              saved->supernet_weights[i].data());
  }
  ASSERT_EQ(back.jobs.size(), saved->jobs.size());
  for (std::size_t j = 0; j < back.jobs.size(); ++j) {
    SCOPED_TRACE("job " + std::to_string(j));
    EXPECT_EQ(back.jobs[j].state, saved->jobs[j].state);
    EXPECT_EQ(back.jobs[j].alpha.data(), saved->jobs[j].alpha.data());
    EXPECT_EQ(back.jobs[j].adam_t, saved->jobs[j].adam_t);
    EXPECT_EQ(back.jobs[j].lambdas, saved->jobs[j].lambdas);
    EXPECT_EQ(back.jobs[j].path_rng.s, saved->jobs[j].path_rng.s);
    EXPECT_EQ(back.jobs[j].valid_rng.s, saved->jobs[j].valid_rng.s);
    EXPECT_EQ(back.jobs[j].valid_batcher.order,
              saved->jobs[j].valid_batcher.order);
    EXPECT_EQ(back.jobs[j].tolerance_streak,
              saved->jobs[j].tolerance_streak);
    EXPECT_EQ(back.jobs[j].trace.size(), saved->jobs[j].trace.size());
  }
}

TEST_F(CampaignTest, ResumeRejectsMismatchedFingerprint) {
  std::optional<CampaignCheckpoint> saved;
  CampaignHooks hooks;
  hooks.on_checkpoint = [&](const CampaignCheckpoint& ck) { saved = ck; };
  hooks.should_stop = [](std::size_t done) { return done >= 2; };
  (void)make_orchestrator(tiny_config()).run(hooks);
  ASSERT_TRUE(saved.has_value());

  CampaignHooks resume;
  resume.resume = &*saved;

  CampaignConfig other_seed = tiny_config();
  other_seed.search.seed = 99;
  EXPECT_THROW(make_orchestrator(other_seed).run(resume),
               std::invalid_argument);

  CampaignConfig other_targets = tiny_config();
  other_targets.targets = {20.0, 24.0, 30.0};
  EXPECT_THROW(make_orchestrator(other_targets).run(resume),
               std::invalid_argument);

  CampaignConfig other_epochs = tiny_config();
  other_epochs.search.epochs = 12;
  EXPECT_THROW(make_orchestrator(other_epochs).run(resume),
               std::invalid_argument);

  CampaignConfig fewer_jobs = tiny_config();
  fewer_jobs.targets = {20.0, 24.0};
  EXPECT_THROW(make_orchestrator(fewer_jobs).run(resume),
               std::invalid_argument);
}

TEST_F(CampaignTest, PreemptingConvergedJobsSavesAlphaBudget) {
  // Tolerance so loose every job "converges" on its first post-warmup
  // epoch: with preemption the campaign winds down immediately, without
  // it every head keeps stepping to the end of the budget.
  CampaignConfig eager = tiny_config();
  eager.tolerance = 10.0;
  eager.convergence_patience = 1;
  eager.preempt_converged = true;
  const CampaignResult preempted = make_orchestrator(eager).run();

  CampaignConfig lazy = eager;
  lazy.preempt_converged = false;
  const CampaignResult kept = make_orchestrator(lazy).run();

  EXPECT_EQ(preempted.count(JobState::kConverged), eager.targets.size());
  EXPECT_EQ(kept.count(JobState::kConverged), eager.targets.size());
  EXPECT_LT(preempted.alpha_updates, kept.alpha_updates);
  EXPECT_LT(preempted.weight_updates, kept.weight_updates);
  for (const JobResult& job : preempted.jobs) {
    EXPECT_EQ(job.state, JobState::kConverged);
    EXPECT_GT(job.converged_epoch, 0u);
  }
}

TEST_F(CampaignTest, WatchdogFreezesDivergedJobsAndCampaignSurvives) {
  // A lambda limit below any post-warmup multiplier turns the first
  // alpha epoch into a divergence for every job; with no rollback
  // budget each job freezes at its last healthy (warmup) state.
  CampaignConfig config = tiny_config();
  config.search.watchdog.lambda_limit = 1e-6;
  config.search.watchdog.max_rollbacks = 0;
  const CampaignResult result = make_orchestrator(config).run();

  EXPECT_EQ(result.count(JobState::kDiverged), config.targets.size());
  for (const JobResult& job : result.jobs) {
    EXPECT_EQ(job.state, JobState::kDiverged);
    ASSERT_FALSE(job.events.empty());
    EXPECT_FALSE(job.events.back().rolled_back);
    // The job still reports a healthy best-from-trace architecture.
    EXPECT_EQ(job.trace.size(), config.search.warmup_epochs);
    EXPECT_GT(job.predicted_cost, 0.0);
  }
  // The campaign wound down early: every job left the schedule.
  EXPECT_LT(result.completed_epochs, config.search.epochs);
}

// Job-level multiplexing onto the parallel context must not change a
// single bit of any trajectory — and, in the LIGHTNAS_TSAN build, this
// doubles as the concurrent K-target data-race smoke test.
TEST_F(CampaignTest, ThreadedCampaignMatchesSerialBitExactly) {
  const CampaignResult serial = make_orchestrator(tiny_config()).run();

  nn::ParallelConfig parallel_config;
  parallel_config.threads = 4;
  const nn::ParallelContext context(parallel_config);
  CampaignConfig threaded_config = tiny_config();
  threaded_config.search.parallel = &context;
  const CampaignResult threaded =
      make_orchestrator(threaded_config).run();

  expect_identical(serial, threaded);
}

}  // namespace
}  // namespace lightnas::campaign
