#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <optional>
#include <string>

#include "core/lightnas.hpp"
#include "io/serialize.hpp"
#include "nn/ops.hpp"

namespace lightnas::core {
namespace {

/// Noise-free linear predictor (same construction as the core tests):
/// the engine under test must be deterministic, so the predictor is too.
class LinearOracle : public predictors::HardwarePredictor {
 public:
  LinearOracle(const space::SearchSpace& space, const hw::CostModel& model)
      : space_(&space) {
    weights_.resize(space.num_layers() * space.num_ops());
    const space::Architecture base =
        space.uniform_architecture(space.ops().skip_index());
    base_ = model.network_latency_ms(space, base);
    for (std::size_t l = 0; l < space.num_layers(); ++l) {
      for (std::size_t k = 0; k < space.num_ops(); ++k) {
        space::Architecture probe = base;
        if (space.layers()[l].searchable) probe.set_op(l, k);
        weights_[l * space.num_ops() + k] =
            model.network_latency_ms(space, probe) - base_;
      }
    }
  }
  double predict(const space::Architecture& arch) const override {
    const auto enc = arch.encode_one_hot(space_->num_ops());
    double total = base_;
    for (std::size_t i = 0; i < enc.size(); ++i) total += enc[i] * weights_[i];
    return total;
  }
  nn::VarPtr forward_var(const nn::VarPtr& encoding) const override {
    nn::Tensor w(weights_.size(), 1);
    for (std::size_t i = 0; i < weights_.size(); ++i) {
      w[i] = static_cast<float>(weights_[i]);
    }
    return nn::ops::add_scalar(
        nn::ops::matmul(encoding, nn::make_const(std::move(w))), base_);
  }
  std::string unit() const override { return "ms"; }

 private:
  const space::SearchSpace* space_;
  std::vector<double> weights_;
  double base_ = 0.0;
};

class CheckpointTest : public ::testing::Test {
 protected:
  CheckpointTest()
      : space_(space::SearchSpace::fbnet_xavier()),
        model_(hw::DeviceProfile::jetson_xavier_maxn(), 8),
        task_(nn::make_synthetic_task(tiny_task())),
        predictor_(space_, model_) {}

  static LightNasConfig tiny_config() {
    LightNasConfig config;
    config.target = 22.0;
    config.epochs = 8;
    config.warmup_epochs = 3;
    config.w_steps_per_epoch = 4;
    config.alpha_steps_per_epoch = 4;
    config.batch_size = 32;
    config.seed = 2;
    return config;
  }
  static nn::SyntheticTaskConfig tiny_task() {
    nn::SyntheticTaskConfig config;
    config.train_size = 512;
    config.valid_size = 256;
    return config;
  }

  LightNas make_engine(const LightNasConfig& config) {
    return LightNas(space_, predictor_, task_, SupernetConfig{}, config);
  }

  /// Asserts every observable of two runs matches bit-for-bit.
  static void expect_identical(const SearchResult& a, const SearchResult& b,
                               std::size_t from_epoch) {
    ASSERT_EQ(a.trace.size(), b.trace.size());
    EXPECT_EQ(a.architecture.ops(), b.architecture.ops());
    EXPECT_EQ(a.final_predicted_cost, b.final_predicted_cost);
    EXPECT_EQ(a.final_lambda, b.final_lambda);
    EXPECT_EQ(a.weight_updates, b.weight_updates);
    EXPECT_EQ(a.alpha_updates, b.alpha_updates);
    for (std::size_t e = from_epoch; e < a.trace.size(); ++e) {
      SCOPED_TRACE("epoch " + std::to_string(e));
      EXPECT_EQ(a.trace[e].derived.ops(), b.trace[e].derived.ops());
      EXPECT_EQ(a.trace[e].lambda, b.trace[e].lambda);
      EXPECT_EQ(a.trace[e].predicted_cost, b.trace[e].predicted_cost);
      EXPECT_EQ(a.trace[e].sampled_cost_mean, b.trace[e].sampled_cost_mean);
      EXPECT_EQ(a.trace[e].valid_loss, b.trace[e].valid_loss);
      EXPECT_EQ(a.trace[e].valid_accuracy, b.trace[e].valid_accuracy);
    }
  }

  space::SearchSpace space_;
  hw::CostModel model_;
  nn::SyntheticTask task_;
  LinearOracle predictor_;
};

TEST_F(CheckpointTest, HooksSearchMatchesPlainSearch) {
  const SearchResult plain = make_engine(tiny_config()).search();
  const SearchResult hooked = make_engine(tiny_config()).search(SearchHooks{});
  expect_identical(plain, hooked, 0);
}

TEST_F(CheckpointTest, ResumeReproducesUninterruptedRun) {
  const SearchResult full = make_engine(tiny_config()).search();

  // Kill the run after epoch 4, keeping only the last checkpoint — the
  // simulated power cut.
  constexpr std::size_t kKillAt = 4;
  std::optional<SearchCheckpoint> saved;
  SearchHooks hooks;
  hooks.on_checkpoint = [&](const SearchCheckpoint& ck) { saved = ck; };
  hooks.should_stop = [](std::size_t done) { return done >= kKillAt; };
  const SearchResult partial = make_engine(tiny_config()).search(hooks);
  EXPECT_TRUE(partial.health.interrupted);
  EXPECT_EQ(partial.trace.size(), kKillAt);
  ASSERT_TRUE(saved.has_value());
  ASSERT_EQ(saved->next_epoch, kKillAt);

  SearchHooks resume;
  resume.resume = &*saved;
  const SearchResult resumed = make_engine(tiny_config()).search(resume);
  EXPECT_TRUE(resumed.health.resumed);
  EXPECT_EQ(resumed.health.resumed_from_epoch, kKillAt);
  expect_identical(full, resumed, 0);
}

TEST_F(CheckpointTest, ResumeThroughJsonFileIsStillExact) {
  const SearchResult full = make_engine(tiny_config()).search();

  const std::string path =
      (std::filesystem::temp_directory_path() / "lightnas_ck_test.json")
          .string();
  SearchHooks hooks;
  hooks.checkpoint_every = 3;
  hooks.on_checkpoint = [&](const SearchCheckpoint& ck) {
    io::save_checkpoint(path, ck);
  };
  hooks.should_stop = [](std::size_t done) { return done >= 3; };
  (void)make_engine(tiny_config()).search(hooks);
  ASSERT_TRUE(std::filesystem::exists(path));
  // Atomic write: the temp file never survives a successful save.
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));

  const SearchCheckpoint loaded = io::load_checkpoint(path);
  EXPECT_EQ(loaded.next_epoch, 3u);
  SearchHooks resume;
  resume.resume = &loaded;
  const SearchResult resumed = make_engine(tiny_config()).search(resume);
  expect_identical(full, resumed, 0);
  std::filesystem::remove(path);
}

TEST_F(CheckpointTest, CheckpointJsonRoundTripPreservesState) {
  std::optional<SearchCheckpoint> saved;
  SearchHooks hooks;
  hooks.on_checkpoint = [&](const SearchCheckpoint& ck) { saved = ck; };
  hooks.should_stop = [](std::size_t done) { return done >= 5; };
  (void)make_engine(tiny_config()).search(hooks);
  ASSERT_TRUE(saved.has_value());

  const io::Json json =
      io::Json::parse(io::checkpoint_to_json(*saved).dump());
  const SearchCheckpoint back = io::checkpoint_from_json(json);
  EXPECT_EQ(back.seed, saved->seed);
  EXPECT_EQ(back.next_epoch, saved->next_epoch);
  EXPECT_EQ(back.w_step_counter, saved->w_step_counter);
  EXPECT_EQ(back.targets, saved->targets);
  EXPECT_EQ(back.lambdas, saved->lambdas);
  EXPECT_EQ(back.adam_t, saved->adam_t);
  EXPECT_EQ(back.cooldown_scale, saved->cooldown_scale);
  EXPECT_EQ(back.rng.s, saved->rng.s);
  EXPECT_EQ(back.data_rng.s, saved->data_rng.s);
  EXPECT_EQ(back.valid_rng.s, saved->valid_rng.s);
  EXPECT_EQ(back.train_batcher.order, saved->train_batcher.order);
  EXPECT_EQ(back.train_batcher.cursor, saved->train_batcher.cursor);
  EXPECT_EQ(back.alpha.data(), saved->alpha.data());
  ASSERT_EQ(back.supernet_weights.size(), saved->supernet_weights.size());
  for (std::size_t i = 0; i < back.supernet_weights.size(); ++i) {
    ASSERT_EQ(back.supernet_weights[i].data(),
              saved->supernet_weights[i].data());
  }
  ASSERT_EQ(back.trace.size(), saved->trace.size());
  for (std::size_t e = 0; e < back.trace.size(); ++e) {
    EXPECT_EQ(back.trace[e].lambda, saved->trace[e].lambda);
    EXPECT_EQ(back.trace[e].derived.ops(), saved->trace[e].derived.ops());
  }
}

TEST_F(CheckpointTest, ResumeRejectsMismatchedFingerprint) {
  std::optional<SearchCheckpoint> saved;
  SearchHooks hooks;
  hooks.on_checkpoint = [&](const SearchCheckpoint& ck) { saved = ck; };
  hooks.should_stop = [](std::size_t done) { return done >= 2; };
  (void)make_engine(tiny_config()).search(hooks);
  ASSERT_TRUE(saved.has_value());

  LightNasConfig other_seed = tiny_config();
  other_seed.seed = 99;
  SearchHooks resume;
  resume.resume = &*saved;
  EXPECT_THROW(make_engine(other_seed).search(resume), std::invalid_argument);

  LightNasConfig other_target = tiny_config();
  other_target.target = 30.0;
  EXPECT_THROW(make_engine(other_target).search(resume),
               std::invalid_argument);

  LightNasConfig other_epochs = tiny_config();
  other_epochs.epochs = 12;
  EXPECT_THROW(make_engine(other_epochs).search(resume),
               std::invalid_argument);
}

TEST_F(CheckpointTest, CheckpointEveryControlsEmissionCadence) {
  std::vector<std::size_t> emitted;
  SearchHooks hooks;
  hooks.checkpoint_every = 3;
  hooks.on_checkpoint = [&](const SearchCheckpoint& ck) {
    emitted.push_back(ck.next_epoch);
  };
  (void)make_engine(tiny_config()).search(hooks);
  // Every 3rd epoch, plus the final epoch (8) regardless of cadence.
  EXPECT_EQ(emitted, (std::vector<std::size_t>{3, 6, 8}));
}

}  // namespace
}  // namespace lightnas::core
